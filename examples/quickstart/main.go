// Quickstart: run the TPC-H Query 06 selection scan on the HIPE engine
// and compare it against the x86 baseline — the paper's headline result
// in twenty lines.
package main

import (
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	cfg := hipe.Default()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	q := hipe.DefaultQ06()

	x86, err := hipe.Run(cfg, tab, hipe.Plan{
		Arch: hipe.X86, Strategy: hipe.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q,
	})
	if err != nil {
		log.Fatal(err)
	}
	pim, err := hipe.Run(cfg, tab, hipe.Plan{
		Arch: hipe.HIPE, Strategy: hipe.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Q06 over %d tuples (selectivity %.3f)\n", tab.N, hipe.Selectivity(tab, q))
	fmt.Printf("x86 (AVX-512, caches):     %10d cycles\n", x86.Cycles)
	fmt.Printf("HIPE (predicated, in-HMC): %10d cycles\n", pim.Cycles)
	fmt.Printf("speedup:                   %10.2fx (paper: 6.46x)\n",
		float64(x86.Cycles)/float64(pim.Cycles))
	fmt.Printf("HIPE DRAM energy:          %10.0f pJ (x86: %.0f pJ)\n",
		pim.Energy.DRAMPJ(), x86.Energy.DRAMPJ())
}
