// q06comparison runs every architecture's best configuration on the same
// data — a miniature of the paper's Figure 3d — and prints speedups and
// DRAM energy side by side.
package main

import (
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	cfg := hipe.Default()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	plans := hipe.BestPlans(hipe.DefaultQ06())

	order := []hipe.Arch{hipe.X86, hipe.HMC, hipe.HIVE, hipe.HIPE}
	var base uint64
	fmt.Printf("%-42s %12s %8s %14s\n", "best configuration", "cycles", "speedup", "DRAM energy pJ")
	for _, arch := range order {
		res, err := hipe.Run(cfg, tab, plans[arch])
		if err != nil {
			log.Fatal(err)
		}
		if arch == hipe.X86 {
			base = res.Cycles
		}
		fmt.Printf("%-42s %12d %7.2fx %14.0f\n",
			plans[arch].String(), res.Cycles, float64(base)/float64(res.Cycles),
			res.Energy.DRAMPJ())
	}
	fmt.Println("\npaper reference: HMC 5.15x, HIVE 7.55x, HIPE 6.46x")
}
