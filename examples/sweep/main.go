// Sweep walkthrough: declare a grid once, let the engine fan it out
// over every core, then slice the aggregated ResultSet — the best
// configuration per architecture and a CSV export — instead of writing
// nested experiment loops by hand.
//
// The grid below is a compact version of the paper's whole evaluation:
// every architecture, both scan strategies, three operation sizes and
// three unroll depths. Invalid combinations (x86 above 64 B or unroll
// 8, HIPE tuple-at-a-time) are trimmed automatically, exactly like the
// figures trim their per-architecture ranges.
package main

import (
	"fmt"
	"log"
	"os"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	grid := hipe.Grid{
		Archs:       []hipe.Arch{hipe.X86, hipe.HMC, hipe.HIVE, hipe.HIPE},
		Strategies:  []hipe.Strategy{hipe.TupleAtATime, hipe.ColumnAtATime},
		OpSizes:     []uint32{64, 128, 256},
		Unrolls:     []int{1, 8, 32},
		Tuples:      []int{4096},
		SkipInvalid: true,
	}

	// Progress lands on stderr so stdout stays pipeable.
	opt := hipe.SweepOptions{
		OnCell: func(done, total int, r hipe.CellResult) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	rs, err := hipe.SweepWith(hipe.Default(), grid, opt)
	if err != nil {
		log.Fatal(err)
	}

	// The ResultSet is ordered by cell index — identical at any worker
	// count — with per-cell speedup against the best x86 run over the
	// same table and predicate.
	fmt.Printf("swept %d cells; best per architecture:\n", len(rs.Cells))
	for _, c := range rs.Best() {
		fmt.Printf("  %-42s %10d cycles %6.2fx vs x86 %12.0f pJ DRAM\n",
			c.Cell.Plan, c.Result.Cycles, c.Speedup, c.Result.Energy.DRAMPJ())
	}

	// Full per-cell data exports as CSV (or JSON via WriteJSON).
	f, err := os.Create("sweep.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rs.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote sweep.csv")
}
