// unrolling sweeps the loop-unroll depth for the HIVE engine — the
// paper's Figure 3c effect: deeper unrolling lets the interlocked
// register bank overlap more vault accesses, turning HIVE from slower
// than x86 into the fastest configuration.
package main

import (
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	cfg := hipe.Default()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	q := hipe.DefaultQ06()

	x86, err := hipe.Run(cfg, tab, hipe.Plan{
		Arch: hipe.X86, Strategy: hipe.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x86 baseline (64B, 8x): %d cycles\n\n", x86.Cycles)
	fmt.Printf("%-8s %12s %10s\n", "unroll", "HIVE cycles", "speedup")
	for _, u := range []int{1, 2, 8, 16, 32} {
		res, err := hipe.Run(cfg, tab, hipe.Plan{
			Arch: hipe.HIVE, Strategy: hipe.ColumnAtATime, OpSize: 256,
			Unroll: u, Fused: true, Q: q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12d %9.2fx\n", u, res.Cycles, float64(x86.Cycles)/float64(res.Cycles))
	}
	fmt.Println("\npaper reference: HIVE-256B goes from 0.5x (unrolled 1x) to 7.57x (32x)")
}
