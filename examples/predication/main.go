// predication demonstrates the paper's core mechanism: on a
// date-clustered table (an append-ordered fact table), HIPE's predicated
// loads squash the discount and quantity column reads of every chunk
// whose shipdate window is empty — only useful data is loaded and
// compared, which is where the DRAM energy saving comes from. HIVE's
// full scan reads everything regardless.
package main

import (
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	cfg := hipe.Default()
	q := hipe.DefaultQ06()
	hivePlan := hipe.Plan{Arch: hipe.HIVE, Strategy: hipe.ColumnAtATime,
		OpSize: 256, Unroll: 32, Fused: true, Q: q}
	hipePlan := hipe.Plan{Arch: hipe.HIPE, Strategy: hipe.ColumnAtATime,
		OpSize: 256, Unroll: 32, Q: q}

	for _, c := range []struct {
		name string
		tab  *hipe.Lineitem
	}{
		{"uniform shipdates ", hipe.Generate(cfg.Tuples, cfg.Seed)},
		{"clustered shipdates", hipe.GenerateClustered(cfg.Tuples, cfg.Seed, 10)},
	} {
		hive, err := hipe.Run(cfg, c.tab, hivePlan)
		if err != nil {
			log.Fatal(err)
		}
		hipeRes, err := hipe.Run(cfg, c.tab, hipePlan)
		if err != nil {
			log.Fatal(err)
		}
		saving := 100 * (1 - hipeRes.Energy.DRAMPJ()/hive.Energy.DRAMPJ())
		fmt.Printf("%s: HIVE %8d cyc / %.0f pJ   HIPE %8d cyc / %.0f pJ\n",
			c.name, hive.Cycles, hive.Energy.DRAMPJ(), hipeRes.Cycles, hipeRes.Energy.DRAMPJ())
		fmt.Printf("%s  squashed %5d predicated instructions, %7d DRAM bytes never read,"+
			" DRAM energy saving %.1f%%\n\n",
			"                   ", hipeRes.Squashed, hipeRes.SquashedDRAMBytes, saving)
	}
	fmt.Println("paper reference: HIPE saves ~4% DRAM energy vs HIVE on TPC-H Q06")
}
