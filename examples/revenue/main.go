// revenue runs the complete TPC-H Query 06 — selection AND the
// sum(l_extendedprice * l_discount) aggregation — entirely inside the
// memory cube: an extension beyond the paper's select-scan evaluation,
// built from the HIPE ISA's predicated Mul/And/Add lanes. The engine's
// accumulator is verified against the reference evaluator on every run.
package main

import (
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	cfg := hipe.Default()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	q := hipe.DefaultQ06()

	scanOnly := hipe.Plan{Arch: hipe.HIPE, Strategy: hipe.ColumnAtATime,
		OpSize: 256, Unroll: 32, Q: q}
	fullQuery := scanOnly
	fullQuery.Aggregate = true

	scan, err := hipe.Run(cfg, tab, scanOnly)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := hipe.Run(cfg, tab, fullQuery)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HIPE select scan only:        %8d cycles\n", scan.Cycles)
	fmt.Printf("HIPE full Q06 (in-memory sum): %7d cycles (+%.0f%%)\n",
		agg.Cycles, 100*(float64(agg.Cycles)/float64(scan.Cycles)-1))
	fmt.Println("\nthe aggregation result was computed by the engine's predicated")
	fmt.Println("Mul/And/Add lanes and verified against the reference evaluator —")
	fmt.Println("no bitmask or data column ever travelled to the processor")
}
