// Serving walkthrough: turn the single-experiment simulator into a
// fleet. A lineitem table is partitioned across four shards — each
// backed by its own simulated HMC machine — and queried two ways:
//
//  1. one interactive scatter-gather query, whose merged match count
//     and revenue are verified against the unsharded reference
//     evaluator before the response is returned;
//  2. a closed-loop load test over a seeded mixed-selectivity request
//     stream, reporting throughput, latency quantiles and per-shard
//     utilisation on the virtual serving timeline.
//
// Everything is deterministic: re-running this program — at any
// executor worker count — prints the same numbers and writes the same
// CSV bytes.
package main

import (
	"fmt"
	"log"
	"os"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	cfg := hipe.Default()
	cfg.Tuples = 8192
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)

	cluster, err := hipe.Serve(cfg, tab, 4)
	if err != nil {
		log.Fatal(err)
	}

	// One interactive query: HIPE's in-memory aggregation plan, so the
	// whole of Q06 — selection and revenue sum — runs inside the cubes.
	plan := hipe.ServePlan(hipe.HIPE, hipe.DefaultQ06())
	plan.Aggregate = true
	resp, err := cluster.Query(hipe.ServeRequest{Plan: plan}, hipe.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q06 over %d rows on %d shards: %d matches, revenue %d\n",
		cluster.Rows(), cluster.Shards(), resp.Matches, resp.Revenue)
	fmt.Printf("service time %d cycles (slowest shard) of %d total work cycles\n\n",
		resp.Cycles, resp.WorkCycles)

	// A closed-loop load test: 24 mixed-architecture, mixed-selectivity
	// requests drained by 6 clients, each keeping one request in
	// flight.
	reqs, err := hipe.StreamSpec{N: 24, Seed: 7, Aggregate: true}.Requests()
	if err != nil {
		log.Fatal(err)
	}
	report, err := hipe.LoadTest(cluster, hipe.ClosedLoop(reqs, 6), hipe.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())

	// Per-request traces export as CSV (or the whole report as JSON),
	// byte-identical at any worker count.
	f, err := os.Create("serve.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote serve.csv")
}
