package hipe_test

// One benchmark per table/figure of the paper's evaluation, plus
// ablations for the design choices DESIGN.md calls out. Each figure
// bench simulates the full sweep of its panel and reports simulated
// cycles per architecture point via b.ReportMetric, so `go test -bench`
// regenerates the paper's series.

import (
	"fmt"
	"math"
	"testing"
	"time"

	hipe "github.com/hipe-sim/hipe"
	"github.com/hipe-sim/hipe/internal/dram"
)

const benchTuples = 4096

func benchConfig() hipe.Config {
	c := hipe.Default()
	c.Tuples = benchTuples
	return c
}

// benchFigure runs one panel per iteration and reports each row's
// simulated cycles as a metric.
func benchFigure(b *testing.B, name string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := hipe.Figure(cfg, name)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range table.Rows {
				b.ReportMetric(float64(r.Cycles), "simcyc:"+r.Plan.String())
			}
		}
	}
}

// BenchmarkFig3aTupleAtATime regenerates Figure 3a: tuple-at-a-time
// execution time versus operation size (x86, HMC, HIVE on NSM).
func BenchmarkFig3aTupleAtATime(b *testing.B) { benchFigure(b, "3a") }

// BenchmarkFig3bColumnAtATime regenerates Figure 3b: column-at-a-time
// execution time versus operation size (x86, HMC, HIVE on DSM).
func BenchmarkFig3bColumnAtATime(b *testing.B) { benchFigure(b, "3b") }

// BenchmarkFig3cUnrolling regenerates Figure 3c: column-at-a-time
// execution time versus loop-unroll depth.
func BenchmarkFig3cUnrolling(b *testing.B) { benchFigure(b, "3c") }

// BenchmarkFig3dBestCases regenerates Figure 3d: the best configuration
// of every architecture, including HIPE, with DRAM energy.
func BenchmarkFig3dBestCases(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := hipe.Figure(cfg, "3d")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range table.Rows {
				b.ReportMetric(float64(r.Cycles), "simcyc:"+r.Plan.Arch.String())
				b.ReportMetric(r.Energy.DRAMPJ(), "drampJ:"+r.Plan.Arch.String())
			}
		}
	}
}

// BenchmarkQ1BestCases runs the TPC-H Q01-style grouped aggregation on
// each architecture's best configuration — the aggregation-workload
// counterpart of Figure 3d, reporting simulated cycles and (for HIPE)
// the DRAM reads its predication squashed.
func BenchmarkQ1BestCases(b *testing.B) {
	cfg := benchConfig()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	q := hipe.DefaultQ01()
	var results [4]hipe.Result
	archs := [...]hipe.Arch{hipe.X86, hipe.HMC, hipe.HIVE, hipe.HIPE}
	for i := 0; i < b.N; i++ {
		for j, arch := range archs {
			results[j] = runPoint(b, cfg, tab, hipe.ServeQ1Plan(arch, q))
		}
	}
	for j, arch := range archs {
		b.ReportMetric(float64(results[j].Cycles), "simcyc:"+arch.String())
	}
	b.ReportMetric(float64(results[3].SquashedDRAMBytes), "savedB:hipe")
}

// BenchmarkAutoRouting measures the adaptive planner's per-request
// overhead: one COLD routing decision per iteration (a fresh predicate
// each time, so the serving layer's per-predicate decision cache never
// hides the work — production requests repeating a predicate pay less)
// across the four serving-shape candidates. The plannerpct metric is
// the decision's wall-clock share of actually simulating the chosen
// plan once; the target is < 1% of query latency.
func BenchmarkAutoRouting(b *testing.B) {
	pr := hipe.DefaultCostParams()
	tab := hipe.GenerateClustered(benchTuples, 42, 10)
	candidates := func(q hipe.Q06) []hipe.Plan {
		archs := [...]hipe.Arch{hipe.X86, hipe.HMC, hipe.HIVE, hipe.HIPE}
		out := make([]hipe.Plan, len(archs))
		for i, a := range archs {
			out[i] = hipe.ServePlan(a, q)
		}
		return out
	}
	var chosen hipe.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := hipe.DefaultQ06()
		q.QtyHi = int32(1 + i%50) // fresh predicate: no cache, full profile+estimate
		d, err := hipe.PickPlan(pr, tab, candidates(q))
		if err != nil {
			b.Fatal(err)
		}
		chosen = d.Chosen
	}
	b.StopTimer()
	routeNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	// Simulate the last chosen plan for the overhead ratio; min of three
	// runs so first-touch page faults and cold tables don't inflate the
	// denominator.
	cfg := benchConfig()
	var res hipe.Result
	queryNs := math.Inf(1)
	for k := 0; k < 3; k++ {
		start := time.Now()
		r, err := hipe.Run(cfg, tab, chosen)
		if err != nil {
			b.Fatal(err)
		}
		if ns := float64(time.Since(start).Nanoseconds()); ns < queryNs {
			queryNs = ns
		}
		res = r
	}
	b.ReportMetric(routeNs, "routens")
	b.ReportMetric(100*routeNs/queryNs, "plannerpct")
	b.ReportMetric(float64(res.Cycles), "simcyc:"+chosen.Arch.String())
}

// BenchmarkFigCounters pairs each figure panel with itself under
// machine-counter capture: the same cell set through the sweep engine
// with Counters off (the provably-free default) and on. hipe-benchjson
// pairs the off/on lanes into BENCH_<n>.json overhead rows; the
// enabled-mode budget is < 5%.
func BenchmarkFigCounters(b *testing.B) {
	cfg := benchConfig()
	for _, fig := range hipe.Figures() {
		cells, err := hipe.FigureCells(cfg, fig)
		if err != nil {
			b.Fatal(err)
		}
		for _, counters := range []bool{false, true} {
			mode := "off"
			if counters {
				mode = "on"
			}
			b.Run(fig+"/counters-"+mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rs, err := hipe.SweepCells(cfg, cells, hipe.SweepOptions{Counters: counters})
					if err != nil {
						b.Fatal(err)
					}
					if counters != rs.HasCounters() {
						b.Fatalf("counters=%v but HasCounters=%v", counters, rs.HasCounters())
					}
				}
			})
		}
	}
}

// BenchmarkSweepGrid runs one representative sweep grid through each
// execution mode: exact whole-table simulation (the baseline), exact
// with 4-way parallel shard simulation per cell, and the cost-model
// estimate fast path. hipe-benchjson pairs the lanes into the
// BENCH_<n>.json sweep_grid section and gates the estimate lane's
// aggregate speedup (the ≥ 5x figure-of-merit for PR 9).
func BenchmarkSweepGrid(b *testing.B) {
	cfg := benchConfig()
	grid := hipe.Grid{
		Archs:      []hipe.Arch{hipe.X86, hipe.HMC, hipe.HIVE, hipe.HIPE},
		Strategies: []hipe.Strategy{hipe.ColumnAtATime},
		OpSizes:    []uint32{64, 256},
		Unrolls:    []int{8, 32},
		Fused:      []bool{false},
		Tuples:     []int{benchTuples},
		Seeds:      []uint64{42},
		Clustered:  []bool{false},
		Queries: []hipe.Q06{
			func() hipe.Q06 { q := hipe.DefaultQ06(); q.QtyHi = 10; return q }(),
			hipe.DefaultQ06(),
		},
		SkipInvalid: true,
	}
	lanes := []struct {
		name string
		opt  hipe.SweepOptions
	}{
		{"exact", hipe.SweepOptions{}},
		{"exact-sharded", hipe.SweepOptions{CellShards: 4}},
		{"estimate", hipe.SweepOptions{Exec: hipe.ExecEstimate}},
	}
	for _, lane := range lanes {
		lane := lane
		b.Run(lane.name, func(b *testing.B) {
			var rs *hipe.ResultSet
			for i := 0; i < b.N; i++ {
				var err error
				rs, err = hipe.SweepWith(cfg, grid, lane.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(rs.Cells)), "cells")
		})
	}
}

// BenchmarkFleet load-tests the replicated fleet end to end: two
// replica pools (HIPE, x86), an auto-routed two-class request stream,
// admission control shedding under an open-loop overload. The simulated
// outcome is reported as metrics; ns/op tracks the serving layer's
// wall-clock cost per load test.
func BenchmarkFleet(b *testing.B) {
	cfg := benchConfig()
	tab := hipe.GenerateClustered(cfg.Tuples, cfg.Seed, 10)
	fleet, err := hipe.ServeFleet(cfg, tab, 2, []hipe.Arch{hipe.HIPE, hipe.X86})
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := hipe.StreamSpec{
		N: 24, Seed: 7, Archs: []hipe.Arch{hipe.ArchAuto}, Classes: 2,
	}.Requests()
	if err != nil {
		b.Fatal(err)
	}
	spec := hipe.OpenLoop(reqs, 100, 0, 5)
	spec.Classes = []hipe.ClassSpec{
		{Name: "batch", SLOCycles: 40_000, PatienceCycles: 5_000},
		{Name: "rt", SLOCycles: 20_000, PatienceCycles: 0},
	}
	spec.Shed = true
	var r *hipe.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = fleet.LoadTest(spec, hipe.ServeOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Completed), "completed")
	b.ReportMetric(float64(r.Shed), "shed")
	b.ReportMetric(float64(r.LatencyP50), "simcyc:p50")
	b.ReportMetric(float64(r.LatencyP99), "simcyc:p99")
}

// BenchmarkAdaptiveRouting pits static routing against the
// feedback-driven planner on a fleet whose analytic prior has drifted
// from the served machine: engine-side cost constants inflated 4x and
// CPU-side constants deflated 4x, so the static router mispredicts x86
// as the fast backend for a selective predicate on a date-clustered
// table that HIPE actually serves fastest. The static and adaptive
// lanes replay the identical open-loop stream; hipe-benchjson pairs
// them into the BENCH_<n>.json adaptive_routing section. ns/op tracks
// the serving layer's wall-clock cost per load test (the adaptive
// lane's delta over static is the feedback loop's overhead); the
// simcyc metrics are the simulated outcome the feedback loop improves.
// The win lands in total service cycles: queue-aware static routing
// spills enough load to the fast pool that the latency medians tie,
// but every spilled-from request still burns the slow backend's
// cycles, which adaptive routing stops paying after the first few
// observations. The p99 tail stays pinned at the slow backend's
// service time by the exploration floor itself, which keeps sampling
// it on purpose.
func BenchmarkAdaptiveRouting(b *testing.B) {
	cfg := benchConfig()
	tab := hipe.GenerateClustered(cfg.Tuples, cfg.Seed, 10)
	// Drift the prior. The served machines keep their real timing —
	// Calibrate changes only what the planner believes.
	const k = 4
	drift := hipe.DefaultCostParams()
	drift.EngineSlot *= k
	drift.EngineMem *= k
	drift.SquashPipelined *= k
	drift.SquashSerial *= k
	drift.PredPipelined *= k
	drift.PredSerial *= k
	drift.HMCRoundTripBase *= k
	drift.HMCRoundTripPerB *= k
	drift.CacheMiss /= k
	drift.CPUOp /= k
	drift.CPUVecOp /= k
	drift.MispredictPenalty /= k
	q := hipe.DefaultQ06()
	reqs := make([]hipe.ServeRequest, 96)
	for i := range reqs {
		reqs[i] = hipe.ServeRequest{Plan: hipe.Plan{Arch: hipe.ArchAuto, Q: q}}
	}
	// Open loop at roughly two-thirds of the slow pool's service rate:
	// queues matter, but queue-aware static routing cannot hide the
	// mispick behind backlog spill.
	spec := hipe.OpenLoop(reqs, 14000, 0, 23)
	for _, lane := range []struct {
		name     string
		adaptive *hipe.AdaptiveSpec
	}{
		{"static", nil},
		{"adaptive", &hipe.AdaptiveSpec{ExplorePct: 10, HalfLife: 4, Seed: 5}},
	} {
		lane := lane
		b.Run(lane.name, func(b *testing.B) {
			fleet, err := hipe.ServeFleet(cfg, tab, 2, []hipe.Arch{hipe.HIPE, hipe.X86})
			if err != nil {
				b.Fatal(err)
			}
			fleet.Calibrate(drift)
			s := spec
			s.Adaptive = lane.adaptive
			var r *hipe.LoadReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err = fleet.LoadTest(s, hipe.ServeOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			var service, explored float64
			for _, tr := range r.Requests {
				service += float64(tr.Service)
				if tr.Routing != nil && tr.Routing.Explored {
					explored++
				}
			}
			b.ReportMetric(service, "simcyc:service")
			b.ReportMetric(float64(r.LatencyP50), "simcyc:p50")
			b.ReportMetric(float64(r.LatencyP99), "simcyc:p99")
			b.ReportMetric(explored, "explored")
		})
	}
}

// BenchmarkTableIConfig exercises machine construction with the full
// Table I parameter set (the paper's configuration table).
func BenchmarkTableIConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hipe.DefaultMachine()
		if m.Geometry.Vaults != 32 {
			b.Fatal("bad geometry")
		}
	}
}

// runPoint simulates one plan and reports its simulated cycles.
func runPoint(b *testing.B, cfg hipe.Config, tab *hipe.Lineitem, p hipe.Plan) hipe.Result {
	b.Helper()
	res, err := hipe.Run(cfg, tab, p)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationOpenPage compares closed-page (the paper's policy)
// against open-page vault management for the x86 streaming baseline.
func BenchmarkAblationOpenPage(b *testing.B) {
	q := hipe.DefaultQ06()
	plan := hipe.Plan{Arch: hipe.X86, Strategy: hipe.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q}
	for _, policy := range []dram.Policy{dram.ClosedPage, dram.OpenPage} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			cfg := benchConfig()
			mc := hipe.DefaultMachine()
			mc.DRAM.Policy = policy
			cfg.Machine = &mc
			tab := hipe.Generate(cfg.Tuples, cfg.Seed)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runPoint(b, cfg, tab, plan).Cycles
			}
			b.ReportMetric(float64(cycles), "simcyc")
		})
	}
}

// BenchmarkAblationLinkCount sweeps the SerDes link count (4 in the
// paper) to expose the off-chip bandwidth sensitivity of the x86 path.
func BenchmarkAblationLinkCount(b *testing.B) {
	q := hipe.DefaultQ06()
	plan := hipe.Plan{Arch: hipe.X86, Strategy: hipe.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q}
	for _, links := range []uint32{1, 2, 4} {
		links := links
		b.Run(fmt.Sprintf("links-%d", links), func(b *testing.B) {
			cfg := benchConfig()
			mc := hipe.DefaultMachine()
			mc.Links.Links = links
			cfg.Machine = &mc
			tab := hipe.Generate(cfg.Tuples, cfg.Seed)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runPoint(b, cfg, tab, plan).Cycles
			}
			b.ReportMetric(float64(cycles), "simcyc")
		})
	}
}

// BenchmarkAblationHMCWindow sweeps the host controller's in-flight HMC
// instruction window — the knob controlling how much vault parallelism
// the HMC baseline extracts.
func BenchmarkAblationHMCWindow(b *testing.B) {
	q := hipe.DefaultQ06()
	plan := hipe.Plan{Arch: hipe.HMC, Strategy: hipe.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q}
	for _, window := range []int{4, 16, 64} {
		window := window
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			cfg := benchConfig()
			mc := hipe.DefaultMachine()
			mc.HMC.MaxInFlight = window
			cfg.Machine = &mc
			tab := hipe.Generate(cfg.Tuples, cfg.Seed)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runPoint(b, cfg, tab, plan).Cycles
			}
			b.ReportMetric(float64(cycles), "simcyc")
		})
	}
}

// BenchmarkAblationPredicationGranularity sweeps HIPE's operation size:
// smaller chunks squash more often (finer skip granularity) but pay more
// per-chunk overhead — the trade-off behind the paper's per-tuple
// skipping claim.
func BenchmarkAblationPredicationGranularity(b *testing.B) {
	q := hipe.DefaultQ06()
	for _, opsize := range []uint32{16, 64, 256} {
		opsize := opsize
		b.Run(fmt.Sprintf("op-%dB", opsize), func(b *testing.B) {
			cfg := benchConfig()
			tab := hipe.Generate(cfg.Tuples, cfg.Seed)
			plan := hipe.Plan{Arch: hipe.HIPE, Strategy: hipe.ColumnAtATime,
				OpSize: opsize, Unroll: 32, Q: q}
			var res hipe.Result
			for i := 0; i < b.N; i++ {
				res = runPoint(b, cfg, tab, plan)
			}
			b.ReportMetric(float64(res.Cycles), "simcyc")
			b.ReportMetric(float64(res.Squashed), "squashed")
			b.ReportMetric(float64(res.SquashedDRAMBytes), "savedB")
		})
	}
}

// BenchmarkAblationDateClustering compares HIPE on uniform versus
// append-ordered (date-clustered) tables: clustering is what converts
// chunk-granular predication into large DRAM savings.
func BenchmarkAblationDateClustering(b *testing.B) {
	q := hipe.DefaultQ06()
	plan := hipe.Plan{Arch: hipe.HIPE, Strategy: hipe.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q}
	for _, clustered := range []bool{false, true} {
		clustered := clustered
		name := "uniform"
		if clustered {
			name = "clustered"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			var tab *hipe.Lineitem
			if clustered {
				tab = hipe.GenerateClustered(cfg.Tuples, cfg.Seed, 10)
			} else {
				tab = hipe.Generate(cfg.Tuples, cfg.Seed)
			}
			var res hipe.Result
			for i := 0; i < b.N; i++ {
				res = runPoint(b, cfg, tab, plan)
			}
			b.ReportMetric(float64(res.Cycles), "simcyc")
			b.ReportMetric(res.Energy.DRAMPJ(), "drampJ")
			b.ReportMetric(float64(res.SquashedDRAMBytes), "savedB")
		})
	}
}

// BenchmarkAblationFusedVsPerColumn compares HIVE's per-column plan
// (with processor bitmask round trips) against the fused full scan.
func BenchmarkAblationFusedVsPerColumn(b *testing.B) {
	q := hipe.DefaultQ06()
	for _, fused := range []bool{false, true} {
		fused := fused
		name := "per-column"
		if fused {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			tab := hipe.Generate(cfg.Tuples, cfg.Seed)
			plan := hipe.Plan{Arch: hipe.HIVE, Strategy: hipe.ColumnAtATime,
				OpSize: 256, Unroll: 32, Fused: fused, Q: q}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runPoint(b, cfg, tab, plan).Cycles
			}
			b.ReportMetric(float64(cycles), "simcyc")
		})
	}
}
