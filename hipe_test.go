package hipe_test

import (
	"strings"
	"testing"

	hipe "github.com/hipe-sim/hipe"
)

func smallConfig() hipe.Config {
	c := hipe.Default()
	c.Tuples = 1024
	return c
}

func TestPublicAPIQuickstart(t *testing.T) {
	cfg := smallConfig()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	res, err := hipe.Run(cfg, tab, hipe.Plan{
		Arch:     hipe.HIPE,
		Strategy: hipe.ColumnAtATime,
		OpSize:   256,
		Unroll:   32,
		Q:        hipe.DefaultQ06(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Energy.DRAMPJ() <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestPublicAPIFigure(t *testing.T) {
	table, err := hipe.Figure(smallConfig(), "3d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "hipe/column-at-a-time/256B/32x") {
		t.Fatalf("missing HIPE row:\n%s", table)
	}
	if len(hipe.Figures()) != 4 {
		t.Fatal("figure list wrong")
	}
	if _, err := hipe.Figure(smallConfig(), "9z"); err == nil {
		t.Fatal("bad figure name accepted")
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	if hipe.DefaultMachine().Geometry.Vaults != 32 {
		t.Fatal("machine default wrong")
	}
	if hipe.DefaultEnergy().ReadBitPJ <= 0 {
		t.Fatal("energy default wrong")
	}
	q := hipe.DefaultQ06()
	tab := hipe.Generate(4096, 7)
	sel := hipe.Selectivity(tab, q)
	if sel <= 0 || sel > 0.05 {
		t.Fatalf("selectivity %f", sel)
	}
	plans := hipe.BestPlans(q)
	if len(plans) != 4 {
		t.Fatal("best plans wrong")
	}
}

func TestPublicAPIServe(t *testing.T) {
	cfg := smallConfig()
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)
	cluster, err := hipe.Serve(cfg, tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := hipe.ServePlan(hipe.HIPE, hipe.DefaultQ06())
	plan.Aggregate = true
	resp, err := cluster.Query(hipe.ServeRequest{Plan: plan}, hipe.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches <= 0 || resp.Revenue <= 0 || resp.Cycles == 0 {
		t.Fatalf("degenerate response %+v", resp)
	}

	reqs, err := hipe.StreamSpec{N: 8, Seed: 3}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	open, err := hipe.LoadTest(cluster, hipe.OpenLoop(reqs, 100000, 0, 5), hipe.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := hipe.LoadTest(cluster, hipe.ClosedLoop(reqs, 4), hipe.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*hipe.LoadReport{open, closed} {
		if r.Completed == 0 || r.LatencyP99 < r.LatencyP50 || r.ThroughputRPMC <= 0 {
			t.Fatalf("degenerate report %+v", r)
		}
	}
	if open.Mode != "open" || closed.Mode != "closed" {
		t.Fatal("report modes wrong")
	}
}

func TestClusteredDataEnablesSquash(t *testing.T) {
	cfg := smallConfig()
	q := hipe.DefaultQ06()
	plan := hipe.Plan{Arch: hipe.HIPE, Strategy: hipe.ColumnAtATime,
		OpSize: 256, Unroll: 32, Q: q}

	uniform, err := hipe.Run(cfg, hipe.Generate(cfg.Tuples, 1), plan)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := hipe.Run(cfg, hipe.GenerateClustered(cfg.Tuples, 1, 10), plan)
	if err != nil {
		t.Fatal(err)
	}
	if clustered.Squashed <= uniform.Squashed {
		t.Fatalf("clustering did not raise squashes: %d vs %d",
			clustered.Squashed, uniform.Squashed)
	}
	if clustered.SquashedDRAMBytes == 0 {
		t.Fatal("no DRAM bytes saved on clustered data")
	}
}
