package hive

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

func TestHIVEConfiguration(t *testing.T) {
	cfg := Default()
	if cfg.Target != isa.TargetHIVE {
		t.Fatal("HIVE default has wrong target")
	}
	if cfg.Name != "hive" {
		t.Fatal("HIVE default has wrong stats scope")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHIVEEngineExecutes(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	ti := dram.HMC21Timing()
	ti.RefreshInterval = 0
	vaults, err := dram.New(e, mem.HMC21(), ti, reg)
	if err != nil {
		t.Fatal(err)
	}
	links, err := link.New(e, link.Default(), 32, reg)
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, 1<<16)
	for i := 0; i < 64; i++ {
		isa.SetLane(image, i, int32(i))
	}
	eng, err := New(e, Default(), links, vaults, image, reg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad, Dst: 1, Addr: 0, Size: 256},
		func(sim.Cycle) {})
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU, ALU: isa.CmpGE,
		Dst: 2, Src1: 1, UseImm: true, Imm: 32}, func(sim.Cycle) {})
	e.Run()
	if isa.LaneAt(eng.RegisterData(2), 31) != 0 || isa.LaneAt(eng.RegisterData(2), 32) != -1 {
		t.Fatal("HIVE compare lanes wrong")
	}
	if reg.Scope("hive").Get("instructions") != 2 {
		t.Fatal("instruction count wrong")
	}
}
