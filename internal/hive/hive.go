// Package hive instantiates the balanced HIVE design the paper evaluates
// as prior work (Alves et al., "Large vector extensions inside the HMC",
// DATE 2016, resized by this paper to 256 B operands and a 36×256 B
// register bank — 96% and 94% smaller than the original proposal).
//
// HIVE shares all of its machinery with the HIPE engine in internal/core:
// an in-order sequencer, lock/unlock register-bank ownership, vector
// functional units, and the interlocked register bank that overlaps
// computation with DRAM accesses. The one difference is that HIVE has no
// predication match logic: control-flow decisions over in-memory data
// must round-trip through the processor.
package hive

import (
	"github.com/hipe-sim/hipe/internal/core"
	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Engine is a HIVE logic-layer engine (a core.Engine that rejects
// predicated instructions).
type Engine = core.Engine

// Config aliases the shared engine configuration.
type Config = core.Config

// Default returns the paper's balanced HIVE configuration.
func Default() Config { return core.DefaultHIVE() }

// New builds a HIVE engine over the DRAM and link models.
func New(engine *sim.Engine, cfg Config, links *link.Controller, vaults *dram.HMC, image []byte, reg *stats.Registry) (*Engine, error) {
	return core.New(engine, cfg, links, vaults, image, reg)
}
