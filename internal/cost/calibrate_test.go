package cost_test

// Model-vs-simulator calibration: sweep selectivity across the serving
// shapes on uniform and date-clustered tables, measure real simulated
// cycles, and assert the cost model's ranking matches. This is the test
// that pins the calibrated overlap divisors in cost.go: a change to the
// simulator's timing model that shifts a ranking shows up here.

import (
	"fmt"
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/query"
)

// servePlan mirrors serve.DefaultPlan / DefaultQ1Plan — the
// per-architecture best serving shapes the router chooses among.
// (Duplicated here because serve imports cost.)
func servePlan(arch query.Arch, q db.Q06) query.Plan {
	switch arch {
	case query.X86:
		return query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q}
	case query.HIVE:
		return query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Fused: true, Q: q}
	default:
		return query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q}
	}
}

func serveQ1Plan(arch query.Arch, q db.Q01) query.Plan {
	p := servePlan(arch, db.Q06{})
	p.Fused = false
	p.Kind = query.Q1Agg
	p.Q = db.Q06{}
	p.Q1 = q
	return p
}

// measure runs one plan for real and returns simulated cycles.
func measure(t *testing.T, tab *db.Table, p query.Plan) uint64 {
	t.Helper()
	mc := machine.Default()
	mc.ImageBytes = db.ImageBytesFor(tab.N)
	m, err := machine.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.Prepare(m, tab, p)
	if err != nil {
		t.Fatalf("%s: %v", p, err)
	}
	cycles := uint64(m.Run(w.Stream()))
	if err := w.Verify(); err != nil {
		t.Fatalf("%s: %v", p, err)
	}
	return cycles
}

// grid of Q6 predicates spanning selectivity from ~0 to 1 (widening
// quantity, discount and date windows).
func q6Grid() []db.Q06 {
	base := db.DefaultQ06()
	var qs []db.Q06
	for _, qty := range []int32{1, 10, 24, 50} {
		q := base
		q.QtyHi = qty
		qs = append(qs, q)
	}
	qs = append(qs,
		db.Q06{ShipLo: base.ShipLo, ShipHi: base.ShipHi, DiscLo: 0, DiscHi: 10, QtyHi: 50},
		db.Q06{ShipLo: 0, ShipHi: db.ShipDateDays, DiscLo: 0, DiscHi: 10, QtyHi: 24},
		db.Q06{ShipLo: 0, ShipHi: db.ShipDateDays, DiscLo: 0, DiscHi: 10, QtyHi: 51},
	)
	return qs
}

func q1Grid() []db.Q01 {
	var qs []db.Q01
	for _, cut := range []int32{100, 400, 800, 1300, 1800, 2300, 2556} {
		qs = append(qs, db.Q01{ShipCut: cut})
	}
	return qs
}

var serveArchs = []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE}

// TestRankingMatchesMeasured is the calibration gate: across the
// selectivity sweep grid (Q6 and Q1, uniform and clustered tables) the
// model's chosen backend must match the measured-fastest backend on at
// least 90% of cells — the adaptive planner's acceptance bar.
func TestRankingMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full selectivity grid")
	}
	pr := cost.DefaultParams()
	type cell struct {
		label      string
		tab        *db.Table
		candidates []query.Plan
	}
	var cells []cell
	for _, n := range []int{1024, 4096} {
		for _, clustered := range []bool{false, true} {
			var tab *db.Table
			layout := "uniform"
			if clustered {
				tab = db.GenerateClusteredMemo(n, 42, 10)
				layout = "clustered"
			} else {
				tab = db.GenerateMemo(n, 42)
			}
			for qi, q := range q6Grid() {
				var cands []query.Plan
				for _, a := range serveArchs {
					cands = append(cands, servePlan(a, q))
				}
				cells = append(cells, cell{fmt.Sprintf("q6/%s/n=%d/#%d", layout, n, qi), tab, cands})
			}
			for qi, q := range q1Grid() {
				var cands []query.Plan
				for _, a := range serveArchs {
					cands = append(cands, serveQ1Plan(a, q))
				}
				cells = append(cells, cell{fmt.Sprintf("q1/%s/n=%d/#%d", layout, n, qi), tab, cands})
			}
		}
	}

	agree := 0
	for _, c := range cells {
		d, err := cost.Pick(pr, c.tab, c.candidates)
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		bestArch := query.Arch(0)
		var bestCycles uint64
		var measured []string
		for _, p := range c.candidates {
			cyc := measure(t, c.tab, p)
			measured = append(measured, fmt.Sprintf("%s=%d", p.Arch, cyc))
			if bestCycles == 0 || cyc < bestCycles {
				bestCycles, bestArch = cyc, p.Arch
			}
		}
		ok := d.Chosen.Arch == bestArch
		if ok {
			agree++
		}
		var ests []string
		for _, e := range d.Estimates {
			ests = append(ests, fmt.Sprintf("%s=%.0f", e.Plan.Arch, e.Cycles))
		}
		t.Logf("%-24s sel=%.3f chose=%-4s best=%-4s %-5t measured[%s] model[%s]",
			c.label, d.Selectivity, d.Chosen.Arch, bestArch, ok, measured, ests)
	}
	frac := float64(agree) / float64(len(cells))
	t.Logf("routing agreement: %d/%d = %.1f%%", agree, len(cells), 100*frac)
	if frac < 0.9 {
		t.Errorf("model picked the measured-fastest backend on %.1f%% of cells, want >= 90%%", 100*frac)
	}
}
