// Feedback-driven routing state: the analytic model (cost.go) is the
// prior, and this file closes the loop with what the replay actually
// observed. Observed per-request service cycles are folded into a
// per-(kind, backend, selectivity-bucket) EWMA; routing blends that
// running estimate with the analytic prior — prior-weighted while a
// bucket is cold, observation-dominated once it has samples — and a
// deterministic exploration floor keeps sampling backends the blend
// would otherwise starve. Every draw is a pure function of (seed,
// request index) on a decorrelated stream, the same discipline the
// fault injector and trace generator follow, so adaptive plan streams
// and exports are byte-identical at any worker count.
package cost

import (
	"fmt"
	"math"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Adaptive-routing defaults and bounds, shared with the CLI layer.
const (
	// DefaultAdaptiveBuckets is the selectivity-bucket count per
	// (kind, backend) pair when AdaptiveConfig.Buckets is zero.
	DefaultAdaptiveBuckets = 8
	// DefaultAdaptiveHalfLife is the observation EWMA half-life in
	// samples when AdaptiveConfig.HalfLife is zero.
	DefaultAdaptiveHalfLife = 8.0
	// DefaultAdaptiveExplorePct is the exploration floor in percent
	// when AdaptiveConfig.ExplorePct is zero.
	DefaultAdaptiveExplorePct = 1.0
	// MaxAdaptiveBuckets bounds the bucket axis; selectivity buckets
	// are halving intervals, so 64 already reaches sel = 2^-63.
	MaxAdaptiveBuckets = 64
	// adaptivePriorSamples is the analytic prior's weight in the
	// blend, expressed in equivalent samples: a cold bucket is all
	// prior, and after this many observations the blend weighs the
	// observed EWMA and the prior equally.
	adaptivePriorSamples = 4.0
)

// AdaptiveConfig declares the feedback-driven routing layer: how
// observed cycles are bucketed and averaged, how often routing explores
// a candidate the blended estimate would not pick, and the seed of the
// decorrelated exploration stream. The zero value of each knob selects
// its default, so `AdaptiveConfig{}` is a usable "just turn it on".
type AdaptiveConfig struct {
	// Buckets is the number of log2-spaced selectivity buckets per
	// (kind, backend) pair (0 = DefaultAdaptiveBuckets, max
	// MaxAdaptiveBuckets). Bucket b covers selectivities in
	// (2^-(b+1), 2^-b]; the last bucket absorbs everything rarer.
	Buckets int
	// HalfLife is the observation EWMA half-life in samples
	// (0 = DefaultAdaptiveHalfLife).
	HalfLife float64
	// ExplorePct is the exploration floor: the percentage of routed
	// requests that re-draw their pick uniformly over the candidate
	// set (0 = DefaultAdaptiveExplorePct; must stay below 100).
	ExplorePct float64
	// Seed seeds the decorrelated exploration stream. Every draw is a
	// pure function of (Seed, request index), so enabling exploration
	// perturbs no other RNG stream and replays identically at any
	// worker count.
	Seed uint64
}

// Validate rejects out-of-range knobs. Zero values are legal (they
// select defaults); explicit values must be in range.
func (c AdaptiveConfig) Validate() error {
	if c.Buckets < 0 || c.Buckets > MaxAdaptiveBuckets {
		return fmt.Errorf("cost: adaptive buckets %d outside 1..%d", c.Buckets, MaxAdaptiveBuckets)
	}
	if c.HalfLife < 0 || math.IsNaN(c.HalfLife) || math.IsInf(c.HalfLife, 0) {
		return fmt.Errorf("cost: adaptive half-life %v must be a positive finite sample count", c.HalfLife)
	}
	if c.ExplorePct < 0 || c.ExplorePct >= 100 || math.IsNaN(c.ExplorePct) {
		return fmt.Errorf("cost: adaptive explore percentage %v outside [0, 100)", c.ExplorePct)
	}
	return nil
}

// withDefaults resolves zero knobs to their documented defaults.
func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Buckets == 0 {
		c.Buckets = DefaultAdaptiveBuckets
	}
	if c.HalfLife == 0 {
		c.HalfLife = DefaultAdaptiveHalfLife
	}
	if c.ExplorePct == 0 {
		c.ExplorePct = DefaultAdaptiveExplorePct
	}
	return c
}

// obsKey addresses one observation cell: the workload family, the
// backend that served it, and the estimated-selectivity bucket.
type obsKey struct {
	kind   query.QueryKind
	arch   query.Arch
	bucket int
}

// Adaptive is the online routing state. It is deliberately not
// synchronised: the deterministic virtual-time replays are
// single-threaded, and the concurrent Query paths serialise access
// under their cluster mutex.
type Adaptive struct {
	cfg   AdaptiveConfig
	proto stats.EWMA
	cells map[obsKey]stats.EWMA
}

// NewAdaptive validates the config and returns empty (all-cold)
// adaptive routing state.
func NewAdaptive(cfg AdaptiveConfig) (*Adaptive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Adaptive{
		cfg:   cfg,
		proto: stats.NewEWMA(cfg.HalfLife),
		cells: make(map[obsKey]stats.EWMA),
	}, nil
}

// Config returns the resolved (defaults applied) configuration.
func (a *Adaptive) Config() AdaptiveConfig { return a.cfg }

// Bucket maps an estimated selectivity to its log2-spaced bucket:
// bucket 0 holds sel > 1/2, each further bucket halves the range, and
// the last bucket absorbs the tail (including sel <= 0).
func (a *Adaptive) Bucket(sel float64) int {
	last := a.cfg.Buckets - 1
	if !(sel > 0) || sel >= 1 {
		if sel >= 1 {
			return 0
		}
		return last
	}
	b := int(-math.Log2(sel))
	if b < 0 {
		b = 0
	}
	if b > last {
		b = last
	}
	return b
}

// Observe folds one completed request's observed service cycles into
// the (kind, backend, bucket) cell. This is the replay's hot feedback
// path: a load-modify-store on a value cell, no allocations once the
// cell exists.
func (a *Adaptive) Observe(kind query.QueryKind, arch query.Arch, sel, cycles float64) {
	if a == nil {
		return
	}
	k := obsKey{kind: kind, arch: arch, bucket: a.Bucket(sel)}
	cell, ok := a.cells[k]
	if !ok {
		cell = a.proto
	}
	cell.Observe(cycles)
	a.cells[k] = cell
}

// Blended combines the analytic prior with the cell's observed EWMA.
// The observation weight is n/(n+adaptivePriorSamples): a cold bucket
// returns the prior exactly, and the blend is observation-dominated
// once the cell has more samples than the prior's equivalent weight.
// It also returns the raw observed average and the cell's sample count
// for provenance.
func (a *Adaptive) Blended(kind query.QueryKind, arch query.Arch, sel, prior float64) (blended, observed float64, samples uint64) {
	if a == nil {
		return prior, 0, 0
	}
	cell, ok := a.cells[obsKey{kind: kind, arch: arch, bucket: a.Bucket(sel)}]
	if !ok || cell.Count() == 0 {
		return prior, 0, 0
	}
	n := float64(cell.Count())
	w := n / (n + adaptivePriorSamples)
	return (1-w)*prior + w*cell.Value(), cell.Value(), cell.Count()
}

// exploreSeed decorrelates the per-request exploration stream from the
// base seed with the same multiply-XOR mixing the fault injector uses
// for its per-entity streams.
func exploreSeed(seed uint64, index int) uint64 {
	h := seed ^ 0xADAB_7156_0C1A_5EED
	h ^= (uint64(index) + 1) * 0x9E37_79B9_7F4A_7C15
	h ^= h >> 31
	return h
}

// ExplorePick draws the exploration decision for one routed request:
// whether the epsilon floor fires at this request index and, if so,
// which of the n candidates to force. The draw is a pure function of
// (config seed, index) — routing order, worker count, and observation
// history cannot perturb it.
func (a *Adaptive) ExplorePick(index, n int) (int, bool) {
	if a == nil || n <= 1 || a.cfg.ExplorePct <= 0 {
		return -1, false
	}
	r := db.NewRNG(exploreSeed(a.cfg.Seed, index))
	if r.Float64()*100 >= a.cfg.ExplorePct {
		return -1, false
	}
	return int(r.Next() % uint64(n)), true
}
