package cost_test

import (
	"math"
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/query"
)

func TestAdaptiveConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  cost.AdaptiveConfig
		ok   bool
	}{
		{"zero value", cost.AdaptiveConfig{}, true},
		{"explicit", cost.AdaptiveConfig{Buckets: 16, HalfLife: 32, ExplorePct: 5, Seed: 9}, true},
		{"max buckets", cost.AdaptiveConfig{Buckets: cost.MaxAdaptiveBuckets}, true},
		{"negative buckets", cost.AdaptiveConfig{Buckets: -1}, false},
		{"too many buckets", cost.AdaptiveConfig{Buckets: cost.MaxAdaptiveBuckets + 1}, false},
		{"negative half-life", cost.AdaptiveConfig{HalfLife: -1}, false},
		{"NaN half-life", cost.AdaptiveConfig{HalfLife: math.NaN()}, false},
		{"infinite half-life", cost.AdaptiveConfig{HalfLife: math.Inf(1)}, false},
		{"negative explore", cost.AdaptiveConfig{ExplorePct: -0.5}, false},
		{"explore at 100", cost.AdaptiveConfig{ExplorePct: 100}, false},
		{"NaN explore", cost.AdaptiveConfig{ExplorePct: math.NaN()}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
		if _, err := cost.NewAdaptive(tc.cfg); (err == nil) != tc.ok {
			t.Errorf("%s: NewAdaptive error = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Defaults resolve on construction.
	ad, err := cost.NewAdaptive(cost.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := ad.Config()
	if got.Buckets != cost.DefaultAdaptiveBuckets ||
		got.HalfLife != cost.DefaultAdaptiveHalfLife ||
		got.ExplorePct != cost.DefaultAdaptiveExplorePct {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

func TestAdaptiveBucketMapping(t *testing.T) {
	ad, err := cost.NewAdaptive(cost.AdaptiveConfig{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	last := 7
	cases := []struct {
		sel  float64
		want int
	}{
		{1.5, 0}, {1, 0}, {0.75, 0}, // bucket 0: sel > 1/2 (and the >=1 clamp)
		{0.5, 1}, {0.3, 1},
		{0.25, 2}, {0.13, 2},
		{0.02, 5},
		{1.0 / 256, 7},          // exactly at the tail's edge
		{1e-9, last}, {0, last}, // rarer than the last bucket: absorbed
		{-1, last}, // nonsense selectivity: tail, never a panic
		{math.NaN(), last},
	}
	for _, tc := range cases {
		if got := ad.Bucket(tc.sel); got != tc.want {
			t.Errorf("Bucket(%g) = %d, want %d", tc.sel, got, tc.want)
		}
	}
}

// TestAdaptiveBlend pins the prior/observation blend contract: a cold
// cell returns the analytic prior exactly; samples shift the weight by
// n/(n+4); cells are distinct per (kind, backend, bucket).
func TestAdaptiveBlend(t *testing.T) {
	ad, err := cost.NewAdaptive(cost.AdaptiveConfig{Buckets: 8, HalfLife: 8})
	if err != nil {
		t.Fatal(err)
	}
	const prior = 1000.0

	// Cold: prior stands alone, no observed value, zero samples.
	b, obs, n := ad.Blended(query.Q6Select, query.HIPE, 0.02, prior)
	if b != prior || obs != 0 || n != 0 {
		t.Fatalf("cold blend = (%g, %g, %d), want (%g, 0, 0)", b, obs, n, prior)
	}

	// One observation at 5000: weight 1/(1+4), blend 1/5 toward it.
	ad.Observe(query.Q6Select, query.HIPE, 0.02, 5000)
	b, obs, n = ad.Blended(query.Q6Select, query.HIPE, 0.02, prior)
	want := 0.8*prior + 0.2*5000
	if math.Abs(b-want) > 1e-9 || obs != 5000 || n != 1 {
		t.Fatalf("1-sample blend = (%g, %g, %d), want (%g, 5000, 1)", b, obs, n, want)
	}

	// Many observations: observation-dominated, blend approaches the EWMA.
	for i := 0; i < 99; i++ {
		ad.Observe(query.Q6Select, query.HIPE, 0.02, 5000)
	}
	b, _, n = ad.Blended(query.Q6Select, query.HIPE, 0.02, prior)
	if n != 100 {
		t.Fatalf("sample count = %d, want 100", n)
	}
	wantWarm := (4.0/104)*prior + (100.0/104)*5000
	if math.Abs(b-wantWarm) > 1e-6 {
		t.Fatalf("warm blend = %g, want %g", b, wantWarm)
	}

	// Distinct cells: another backend, kind, or bucket stays cold.
	for _, probe := range []struct {
		name string
		kind query.QueryKind
		arch query.Arch
		sel  float64
	}{
		{"other backend", query.Q6Select, query.X86, 0.02},
		{"other kind", query.Q1Agg, query.HIPE, 0.02},
		{"other bucket", query.Q6Select, query.HIPE, 0.4},
	} {
		if b, _, n := ad.Blended(probe.kind, probe.arch, probe.sel, prior); b != prior || n != 0 {
			t.Fatalf("%s cell warmed by proxy: blend %g samples %d", probe.name, b, n)
		}
	}
}

// TestAdaptiveNilReceiver pins the nil-receiver no-op contract the
// serve layer leans on when adaptive routing is off.
func TestAdaptiveNilReceiver(t *testing.T) {
	var ad *cost.Adaptive
	ad.Observe(query.Q6Select, query.HIPE, 0.02, 5000) // must not panic
	if b, obs, n := ad.Blended(query.Q6Select, query.HIPE, 0.02, 777); b != 777 || obs != 0 || n != 0 {
		t.Fatalf("nil Blended = (%g, %g, %d), want prior passthrough", b, obs, n)
	}
	if j, ok := ad.ExplorePick(3, 4); ok || j != -1 {
		t.Fatalf("nil ExplorePick = (%d, %v), want (-1, false)", j, ok)
	}
}

// TestAdaptiveExploreDeterminism pins the exploration stream contract:
// the draw at a request index is a pure function of (seed, index) —
// observation history, call order, and repetition cannot perturb it —
// the empirical rate tracks ExplorePct, and forced picks stay in range.
func TestAdaptiveExploreDeterminism(t *testing.T) {
	cfg := cost.AdaptiveConfig{ExplorePct: 10, Seed: 42}
	ad1, err := cost.NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad2, err := cost.NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	const draws = 4000
	explored := 0
	for i := 0; i < draws; i++ {
		j1, ok1 := ad1.ExplorePick(i, n)
		// ad2 interleaves observations and repeated draws: no effect.
		ad2.Observe(query.Q6Select, query.HIPE, 0.02, float64(i))
		ad2.ExplorePick(i, n)
		j2, ok2 := ad2.ExplorePick(i, n)
		if j1 != j2 || ok1 != ok2 {
			t.Fatalf("draw %d diverged: (%d,%v) vs (%d,%v)", i, j1, ok1, j2, ok2)
		}
		if ok1 {
			explored++
			if j1 < 0 || j1 >= n {
				t.Fatalf("draw %d forced out-of-range candidate %d", i, j1)
			}
		}
	}
	rate := 100 * float64(explored) / draws
	if rate < 7 || rate > 13 {
		t.Fatalf("explore rate %.2f%% over %d draws, want ~10%%", rate, draws)
	}

	// Different seeds decorrelate the streams.
	ad3, err := cost.NewAdaptive(cost.AdaptiveConfig{ExplorePct: 10, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < draws; i++ {
		_, ok1 := ad1.ExplorePick(i, n)
		_, ok3 := ad3.ExplorePick(i, n)
		if ok1 && ok3 {
			same++
		}
	}
	if same > draws/50 {
		t.Fatalf("seeds 42 and 43 co-fire on %d/%d draws — streams correlated", same, draws)
	}

	// A single candidate never explores — there is nothing to sample.
	if _, ok := ad1.ExplorePick(0, 1); ok {
		t.Fatal("explored with a single candidate")
	}
}

// TestAdaptiveObserveZeroAlloc pins the observation-record path at
// zero allocations once a cell exists: every completed request in a
// load-test replay folds its cycles through Observe, so the feedback
// loop must never add GC pressure to the hot path.
func TestAdaptiveObserveZeroAlloc(t *testing.T) {
	ad, err := cost.NewAdaptive(cost.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ad.Observe(query.Q6Select, query.HIPE, 0.02, 1000) // warm the cell
	if allocs := testing.AllocsPerRun(200, func() {
		ad.Observe(query.Q6Select, query.HIPE, 0.02, 1200)
	}); allocs != 0 {
		t.Fatalf("warm Observe allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		ad.Blended(query.Q6Select, query.HIPE, 0.02, 900)
	}); allocs != 0 {
		t.Fatalf("Blended allocates %.1f objects/op, want 0", allocs)
	}
}
