package cost_test

import (
	"errors"
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func bestPlan(a query.Arch) query.Plan {
	p := query.Plan{Arch: a, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	if a == query.X86 {
		p.OpSize, p.Unroll = 64, 8
	}
	return p
}

// TestEstimateShardedMatchesPickSharded pins the refactor: a
// single-candidate PickSharded and EstimateSharded must agree exactly
// on cycles, traffic, energy and selectivity.
func TestEstimateShardedMatchesPickSharded(t *testing.T) {
	pr := cost.DefaultParams()
	tab := db.GenerateMemo(1024, 42)
	shards, err := db.Partition(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE} {
		p := bestPlan(a)
		d, err := cost.PickSharded(pr, shards, []query.Plan{p})
		if err != nil {
			t.Fatal(err)
		}
		est, sel, err := cost.EstimateSharded(pr, shards, p)
		if err != nil {
			t.Fatal(err)
		}
		if est != d.Estimates[0] || sel != d.Selectivity {
			t.Fatalf("%s: EstimateSharded %+v sel %g, PickSharded %+v sel %g",
				a, est, sel, d.Estimates[0], d.Selectivity)
		}
	}
	if _, _, err := cost.EstimateSharded(pr, nil, bestPlan(query.HIPE)); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, _, err := cost.EstimateSharded(pr, shards, query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 8}); err == nil {
		t.Fatal("invalid plan estimated")
	}
}

// TestRankLoadedQueueAwareness: with equal queue depths the fastest
// estimate wins; a big enough backlog on the fast candidate flips the
// pick to the idle slower one; ties break toward the earlier candidate.
func TestRankLoadedQueueAwareness(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	d, err := cost.RankLoaded(0.02, ests, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 || d.Chosen.Arch != query.HIPE {
		t.Fatalf("idle pick %d (%s), want the fast candidate", d.ChosenIndex, d.Chosen.Arch)
	}
	d, err = cost.RankLoaded(0.02, ests, []float64{5000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 || d.Chosen.Arch != query.X86 {
		t.Fatalf("loaded pick %d (%s), want the idle candidate", d.ChosenIndex, d.Chosen.Arch)
	}
	if d.QueueCycles[0] != 5000 || d.QueueCycles[1] != 0 {
		t.Fatalf("queue penalties not recorded: %v", d.QueueCycles)
	}
	if d.Estimates[0].Cycles != 1000 {
		t.Fatal("estimates must stay the pure model predictions")
	}
	// Exact tie: earlier candidate wins.
	d, err = cost.RankLoaded(0.02, ests, []float64{2000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Fatalf("tie broke to %d, want 0", d.ChosenIndex)
	}
}

func TestRankLoadedRejectsMalformedInput(t *testing.T) {
	if _, err := cost.RankLoaded(0, nil, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	ests := []cost.Estimate{{Plan: bestPlan(query.HIPE), Cycles: 1}}
	if _, err := cost.RankLoaded(0, ests, []float64{1, 2}); err == nil {
		t.Fatal("mismatched queue slice accepted")
	}
}

// TestRankLoadedHealthFailover: down candidates are excluded, observed
// straggler slowdowns inflate the model estimate before the queue
// penalty, a nil health slice reproduces RankLoaded exactly, and an
// all-down panel reports ErrAllDown.
func TestRankLoadedHealthFailover(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	queue := []float64{0, 0}

	// Nil health degenerates to RankLoaded, including the decision.
	plain, err := cost.RankLoaded(0.02, ests, queue)
	if err != nil {
		t.Fatal(err)
	}
	nilHealth, err := cost.RankLoadedHealth(0.02, ests, queue, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nilHealth.ChosenIndex != plain.ChosenIndex || nilHealth.Health != nil {
		t.Fatalf("nil health pick %d (health %v), want RankLoaded's %d with no health recorded",
			nilHealth.ChosenIndex, nilHealth.Health, plain.ChosenIndex)
	}

	// The fast candidate down: routing must exclude it outright even
	// though its score dominates.
	d, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Down: true}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("down candidate still chosen (pick %d)", d.ChosenIndex)
	}
	if len(d.Health) != 2 || !d.Health[0].Down {
		t.Fatalf("health snapshot not recorded on the decision: %+v", d.Health)
	}
	if d.Estimates[0].Cycles != 1000 {
		t.Fatal("estimates must stay the pure model predictions")
	}

	// A slowdown big enough flips the pick to the slower healthy pool:
	// 1000 * 4 > 3000.
	d, err = cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Slowdown: 4}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("straggler penalty did not flip the pick (got %d)", d.ChosenIndex)
	}
	// A slowdown below the flip point leaves the fast candidate in
	// front; sub-unity slowdowns never reward a candidate.
	d, err = cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Slowdown: 2}, {Slowdown: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Fatalf("mild straggler lost a race it should win (pick %d)", d.ChosenIndex)
	}

	// Everything down: ErrAllDown, so the caller can queue for the
	// earliest recovery instead.
	if _, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Down: true}, {Down: true}}); !errors.Is(err, cost.ErrAllDown) {
		t.Fatalf("all-down error = %v, want ErrAllDown", err)
	}

	// Health slice length must match the candidate list.
	if _, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{}}); err == nil {
		t.Fatal("mismatched health slice accepted")
	}
}
