package cost_test

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func bestPlan(a query.Arch) query.Plan {
	p := query.Plan{Arch: a, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	if a == query.X86 {
		p.OpSize, p.Unroll = 64, 8
	}
	return p
}

// TestEstimateShardedMatchesPickSharded pins the refactor: a
// single-candidate PickSharded and EstimateSharded must agree exactly
// on cycles, traffic, energy and selectivity.
func TestEstimateShardedMatchesPickSharded(t *testing.T) {
	pr := cost.DefaultParams()
	tab := db.GenerateMemo(1024, 42)
	shards, err := db.Partition(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE} {
		p := bestPlan(a)
		d, err := cost.PickSharded(pr, shards, []query.Plan{p})
		if err != nil {
			t.Fatal(err)
		}
		est, sel, err := cost.EstimateSharded(pr, shards, p)
		if err != nil {
			t.Fatal(err)
		}
		if est != d.Estimates[0] || sel != d.Selectivity {
			t.Fatalf("%s: EstimateSharded %+v sel %g, PickSharded %+v sel %g",
				a, est, sel, d.Estimates[0], d.Selectivity)
		}
	}
	if _, _, err := cost.EstimateSharded(pr, nil, bestPlan(query.HIPE)); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, _, err := cost.EstimateSharded(pr, shards, query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 8}); err == nil {
		t.Fatal("invalid plan estimated")
	}
}

// TestRankLoadedQueueAwareness: with equal queue depths the fastest
// estimate wins; a big enough backlog on the fast candidate flips the
// pick to the idle slower one; ties break toward the earlier candidate.
func TestRankLoadedQueueAwareness(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	d, err := cost.RankLoaded(0.02, ests, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 || d.Chosen.Arch != query.HIPE {
		t.Fatalf("idle pick %d (%s), want the fast candidate", d.ChosenIndex, d.Chosen.Arch)
	}
	d, err = cost.RankLoaded(0.02, ests, []float64{5000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 || d.Chosen.Arch != query.X86 {
		t.Fatalf("loaded pick %d (%s), want the idle candidate", d.ChosenIndex, d.Chosen.Arch)
	}
	if d.QueueCycles[0] != 5000 || d.QueueCycles[1] != 0 {
		t.Fatalf("queue penalties not recorded: %v", d.QueueCycles)
	}
	if d.Estimates[0].Cycles != 1000 {
		t.Fatal("estimates must stay the pure model predictions")
	}
	// Exact tie: earlier candidate wins.
	d, err = cost.RankLoaded(0.02, ests, []float64{2000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Fatalf("tie broke to %d, want 0", d.ChosenIndex)
	}
}

func TestRankLoadedRejectsMalformedInput(t *testing.T) {
	if _, err := cost.RankLoaded(0, nil, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	ests := []cost.Estimate{{Plan: bestPlan(query.HIPE), Cycles: 1}}
	if _, err := cost.RankLoaded(0, ests, []float64{1, 2}); err == nil {
		t.Fatal("mismatched queue slice accepted")
	}
}
