package cost_test

import (
	"errors"
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func bestPlan(a query.Arch) query.Plan {
	p := query.Plan{Arch: a, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	if a == query.X86 {
		p.OpSize, p.Unroll = 64, 8
	}
	return p
}

// TestEstimateShardedMatchesPickSharded pins the refactor: a
// single-candidate PickSharded and EstimateSharded must agree exactly
// on cycles, traffic, energy and selectivity.
func TestEstimateShardedMatchesPickSharded(t *testing.T) {
	pr := cost.DefaultParams()
	tab := db.GenerateMemo(1024, 42)
	shards, err := db.Partition(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE} {
		p := bestPlan(a)
		d, err := cost.PickSharded(pr, shards, []query.Plan{p})
		if err != nil {
			t.Fatal(err)
		}
		est, sel, err := cost.EstimateSharded(pr, shards, p)
		if err != nil {
			t.Fatal(err)
		}
		if est != d.Estimates[0] || sel != d.Selectivity {
			t.Fatalf("%s: EstimateSharded %+v sel %g, PickSharded %+v sel %g",
				a, est, sel, d.Estimates[0], d.Selectivity)
		}
	}
	if _, _, err := cost.EstimateSharded(pr, nil, bestPlan(query.HIPE)); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, _, err := cost.EstimateSharded(pr, shards, query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 8}); err == nil {
		t.Fatal("invalid plan estimated")
	}
}

// TestRankLoadedQueueAwareness: with equal queue depths the fastest
// estimate wins; a big enough backlog on the fast candidate flips the
// pick to the idle slower one; ties break toward the earlier candidate.
func TestRankLoadedQueueAwareness(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	d, err := cost.RankLoaded(0.02, ests, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 || d.Chosen.Arch != query.HIPE {
		t.Fatalf("idle pick %d (%s), want the fast candidate", d.ChosenIndex, d.Chosen.Arch)
	}
	d, err = cost.RankLoaded(0.02, ests, []float64{5000, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 || d.Chosen.Arch != query.X86 {
		t.Fatalf("loaded pick %d (%s), want the idle candidate", d.ChosenIndex, d.Chosen.Arch)
	}
	if d.QueueCycles[0] != 5000 || d.QueueCycles[1] != 0 {
		t.Fatalf("queue penalties not recorded: %v", d.QueueCycles)
	}
	if d.Estimates[0].Cycles != 1000 {
		t.Fatal("estimates must stay the pure model predictions")
	}
	// Exact tie: earlier candidate wins.
	d, err = cost.RankLoaded(0.02, ests, []float64{2000, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Fatalf("tie broke to %d, want 0", d.ChosenIndex)
	}
}

func TestRankLoadedRejectsMalformedInput(t *testing.T) {
	if _, err := cost.RankLoaded(0, nil, nil, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	ests := []cost.Estimate{{Plan: bestPlan(query.HIPE), Cycles: 1}}
	if _, err := cost.RankLoaded(0, ests, []float64{1, 2}, nil); err == nil {
		t.Fatal("mismatched queue slice accepted")
	}
}

// TestRankLoadedHealthFailover: down candidates are excluded, observed
// straggler slowdowns inflate the model estimate before the queue
// penalty, a nil health slice reproduces RankLoaded exactly, and an
// all-down panel reports ErrAllDown.
func TestRankLoadedHealthFailover(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	queue := []float64{0, 0}

	// Nil health degenerates to RankLoaded, including the decision.
	plain, err := cost.RankLoaded(0.02, ests, queue, nil)
	if err != nil {
		t.Fatal(err)
	}
	nilHealth, err := cost.RankLoadedHealth(0.02, ests, queue, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nilHealth.ChosenIndex != plain.ChosenIndex || nilHealth.Health != nil {
		t.Fatalf("nil health pick %d (health %v), want RankLoaded's %d with no health recorded",
			nilHealth.ChosenIndex, nilHealth.Health, plain.ChosenIndex)
	}

	// The fast candidate down: routing must exclude it outright even
	// though its score dominates.
	d, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Down: true}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("down candidate still chosen (pick %d)", d.ChosenIndex)
	}
	if len(d.Health) != 2 || !d.Health[0].Down {
		t.Fatalf("health snapshot not recorded on the decision: %+v", d.Health)
	}
	if d.Estimates[0].Cycles != 1000 {
		t.Fatal("estimates must stay the pure model predictions")
	}

	// A slowdown big enough flips the pick to the slower healthy pool:
	// 1000 * 4 > 3000.
	d, err = cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Slowdown: 4}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("straggler penalty did not flip the pick (got %d)", d.ChosenIndex)
	}
	// A slowdown below the flip point leaves the fast candidate in
	// front; sub-unity slowdowns never reward a candidate.
	d, err = cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Slowdown: 2}, {Slowdown: 0.25}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Fatalf("mild straggler lost a race it should win (pick %d)", d.ChosenIndex)
	}

	// Everything down: ErrAllDown, so the caller can queue for the
	// earliest recovery instead.
	if _, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Down: true}, {Down: true}}, nil); !errors.Is(err, cost.ErrAllDown) {
		t.Fatalf("all-down error = %v, want ErrAllDown", err)
	}

	// Health slice length must match the candidate list.
	if _, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{}}, nil); err == nil {
		t.Fatal("mismatched health slice accepted")
	}
}

// TestRankLoadedHealthAllDownUnequalRecovery pins the all-down
// contract end to end: the health-aware rank refuses the panel with
// ErrAllDown, and the caller's documented fallback — health-blind
// ranking with each pool's outage wait folded into its queue penalty —
// queues for the earliest recovery, not the fastest model estimate.
func TestRankLoadedHealthAllDownUnequalRecovery(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	// Both down; the fast pool recovers in 90k cycles, the slow one in 2k.
	health := []cost.Health{{Down: true}, {Down: true}}
	queue := []float64{90_000, 2_000}
	if _, err := cost.RankLoadedHealth(0.02, ests, queue, health, nil); !errors.Is(err, cost.ErrAllDown) {
		t.Fatalf("all-down error = %v, want ErrAllDown", err)
	}
	d, err := cost.RankLoaded(0.02, ests, queue, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("earliest-recovery fallback picked %d, want the sooner pool 1", d.ChosenIndex)
	}
	// Waits close enough that the model estimate still matters: 1000+4000
	// beats 3000+2500.
	d, err = cost.RankLoaded(0.02, ests, []float64{4_000, 2_500}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Fatalf("recovery-wait fold ignored the model estimate (pick %d)", d.ChosenIndex)
	}
}

// TestRankLoadedHealthStragglerCrossesThreshold replays the serve
// layer's slowdown fold (slow = 0.75*slow + 0.25*observed) against the
// rank: the pick must stay on the nominally faster pool until the EWMA
// crosses the 3x break-even point mid-stream, then flip — and flip
// back once healthy observations wash the episode out.
func TestRankLoadedHealthStragglerCrossesThreshold(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	queue := []float64{0, 0}
	pickAt := func(slow float64) int {
		t.Helper()
		d, err := cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Slowdown: slow}, {}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d.ChosenIndex
	}
	slow, flipped := 1.0, -1
	for i := 0; i < 8; i++ {
		if pickAt(slow) == 1 {
			flipped = i
			break
		}
		slow = 0.75*slow + 0.25*9 // straggling: every attempt observes 9x service
	}
	// 1.0 -> 3.0 (tie, earlier wins) -> 4.5: the flip lands on fold 2.
	if flipped != 2 {
		t.Fatalf("pick flipped after %d straggler folds, want 2 (EWMA crossing 3x)", flipped)
	}
	for i := 0; i < 16 && pickAt(slow) == 1; i++ {
		slow = 0.75*slow + 0.25*1 // recovered: nominal observations decay the EWMA
	}
	if got := pickAt(slow); got != 0 {
		t.Fatalf("pick never returned to the recovered pool (stuck on %d, slowdown %g)", got, slow)
	}
}

// TestRankLoadedHealthTieBreakAcrossOrderings pins the tie-break
// contract under reordering: equal-scored candidates always resolve to
// the earliest input index, in every presentation order, on both the
// health-aware and health-blind paths — so a fixed candidate order
// yields one deterministic pick at any worker count.
func TestRankLoadedHealthTieBreakAcrossOrderings(t *testing.T) {
	hipe := cost.Estimate{Plan: bestPlan(query.HIPE), Cycles: 2000}
	x86 := cost.Estimate{Plan: bestPlan(query.X86), Cycles: 2000}
	hmc := cost.Estimate{Plan: bestPlan(query.HMC), Cycles: 2000}
	orders := [][]cost.Estimate{
		{hipe, x86, hmc},
		{hmc, hipe, x86},
		{x86, hmc, hipe},
	}
	for oi, ests := range orders {
		queue := []float64{0, 0, 0}
		for run := 0; run < 3; run++ {
			d, err := cost.RankLoaded(0.02, ests, queue, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d.ChosenIndex != 0 || d.Chosen.Arch != ests[0].Plan.Arch {
				t.Fatalf("order %d run %d: tie broke to %d (%s), want index 0 (%s)",
					oi, run, d.ChosenIndex, d.Chosen.Arch, ests[0].Plan.Arch)
			}
			h := []cost.Health{{Slowdown: 2}, {Slowdown: 2}, {Slowdown: 2}}
			dh, err := cost.RankLoadedHealth(0.02, ests, queue, h, nil)
			if err != nil {
				t.Fatal(err)
			}
			if dh.ChosenIndex != 0 {
				t.Fatalf("order %d run %d: health-aware tie broke to %d, want 0", oi, run, dh.ChosenIndex)
			}
		}
	}
}

// TestRankLoadedObservedCycles pins the adaptive input's ranking
// contract: a positive observed entry replaces that candidate's
// analytic prediction, a zero entry keeps the prior, nil keeps the
// whole decision byte-identical to the static rank, provenance lands
// on the decision, and a mismatched slice is rejected.
func TestRankLoadedObservedCycles(t *testing.T) {
	ests := []cost.Estimate{
		{Plan: bestPlan(query.HIPE), Cycles: 1000},
		{Plan: bestPlan(query.X86), Cycles: 3000},
	}
	queue := []float64{0, 0}

	// The model thinks HIPE is 3x faster, but observation says it costs
	// 5000 cycles here: the pick must flip to x86's analytic prior.
	d, err := cost.RankLoaded(0.02, ests, queue, []float64{5000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("observed cycles did not flip the pick (got %d)", d.ChosenIndex)
	}
	if d.RouteMode != "adaptive" || len(d.ObsCycles) != 2 || d.ObsCycles[0] != 5000 {
		t.Fatalf("adaptive provenance not recorded: mode %q obs %v", d.RouteMode, d.ObsCycles)
	}
	if d.Estimates[0].Cycles != 1000 {
		t.Fatal("estimates must stay the pure model predictions")
	}

	// Observations inflate under the health penalty exactly like priors.
	d, err = cost.RankLoadedHealth(0.02, ests, queue, []cost.Health{{Slowdown: 4}, {}}, []float64{800, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 1 {
		t.Fatalf("health penalty skipped the observed base (pick %d)", d.ChosenIndex)
	}

	// Nil observations: byte-identical static decision, no provenance.
	d, err = cost.RankLoaded(0.02, ests, queue, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.RouteMode != "" || d.ObsCycles != nil || d.Explored {
		t.Fatalf("static decision grew adaptive provenance: %+v", d)
	}

	if _, err := cost.RankLoaded(0.02, ests, queue, []float64{1}); err == nil {
		t.Fatal("mismatched observed-cycles slice accepted")
	}
}
