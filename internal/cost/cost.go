// Package cost is the adaptive planner's analytic cycle and energy
// model: for a query plan and a workload profile (tuple count plus the
// per-stage chunk-survival fractions its predicate induces on the
// actual table), it estimates the simulated cycles each registered
// backend would spend — without running the simulator — and ranks
// candidate backends so the serving and sweep layers can route each
// query to its predicted-fastest backend.
//
// The model is structural: each estimator walks the plan's declarative
// query description exactly the way the backend's generator does —
// counting engine instructions, DRAM loads, offload round trips, cache
// lines and predication squashes — and multiplies the counts by
// per-operation costs derived from the simulator's own latency
// constants (dram.Timing access latencies, link round trips, the
// engines' clock divider/issue width/predication slots, Table I
// functional units). Steady-state overlap — bank-level parallelism,
// software-pipelined lock blocks, the HMC in-flight window, MOB-limited
// memory parallelism — cannot be read off a single constant, so each
// derived cost carries an overlap divisor calibrated once against the
// simulator; the calibration test in this package pins that the
// resulting ranking agrees with measured cycles across the selectivity
// grids, including the paper's crossovers.
//
// The model's job is ranking, not cycle-exact prediction: absolute
// errors of tens of percent are acceptable as long as the ordering of
// backends — including the selectivity crossovers — matches the
// simulator's measurements.
package cost

import (
	"fmt"
	"math"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/query"
)

// Params are the per-operation costs, in CPU cycles, the estimators
// multiply instruction counts by. Build them with ParamsFor (or
// DefaultParams for the Table I machine).
type Params struct {
	// EngineSlot is the steady-state cost of one engine instruction in a
	// lock block: sequencer issue (ClockDivider CPU cycles per engine
	// cycle, Width instructions per cycle) plus in-order instruction
	// delivery from the processor.
	EngineSlot float64
	// EngineMem is the extra cost of an engine VLoad/VStore/VMaskStore
	// over EngineSlot: the vault data-bus burst amortised across the
	// vault's banks (bank-level parallelism hides activation and CAS).
	// Calibrated at 256 B; the estimators scale it by operation size.
	EngineMem float64
	// SquashPipelined / SquashSerial are the costs of a squashed
	// predicated instruction: the sequencer still occupies the
	// predication flag port but skips the functional unit and DRAM.
	// Software pipelining (the Q06 waves) hides part of the slot; the
	// serial Q01 blocks (wave depth 1 — every register live) expose the
	// whole flag-port read.
	SquashPipelined float64
	SquashSerial    float64
	// PredPipelined / PredSerial are the extra cost of an ACTIVE
	// predicated instruction over its unpredicated form: the flag-port
	// read plus the data dependency on the flag producer. In pipelined
	// waves the dependency overlaps other chunks' work; in serial blocks
	// it is exposed — the "additional data dependencies" the paper
	// measures as HIPE's ~15% cost against HIVE.
	PredPipelined float64
	PredSerial    float64
	// HMCRoundTripBase/PerB give the effective cost of one HMC
	// load-compare instruction: half a link round trip plus the unloaded
	// access latency amortised over the host controller's in-flight
	// window, which scales with the operand burst.
	HMCRoundTripBase float64
	HMCRoundTripPerB float64
	// CacheMiss is the effective cost of streaming one 64 B line through
	// the cache hierarchy: the unloaded DRAM access plus link traversal
	// over the achieved memory-level parallelism of the core.
	CacheMiss float64
	// CacheMLP discounts additional independent lines issued from the
	// same loop iteration (e.g. the Q01 measure-column reloads).
	CacheMLP float64
	// CPUOp / CPUVecOp are effective costs of processor scalar/vector
	// ALU work in a streaming loop (superscalar issue hides most of it).
	CPUOp    float64
	CPUVecOp float64
	// MispredictPenalty is the branch flush cost (Table I).
	MispredictPenalty float64

	// Energy constants for the planner-level audit (DRAM array reads
	// plus, for processor-path backends, link serialisation — the two
	// components that dominate the simulator's measured breakdowns).
	DRAMReadBitPJ float64
	LinkBitPJ     float64
}

// Overlap divisors calibrated once against the simulator (see the
// package comment): they encode how much of each unloaded latency the
// steady-state machine hides.
const (
	bankOverlap    = 8.0  // banks per vault hide activation behind bursts
	mobOverlap     = 4.0  // achieved MLP of the x86 streaming scan
	deliverySlots  = 1.3  // in-order offload delivery residual per instruction
	flagPortSerial = 1.4  // exposed flag-port read in serial blocks
	flagDepSerial  = 6.2  // exposed flag-producer dependency in serial blocks
	squashHide     = 0.65 // fraction of a slot a pipelined squash still costs
	cacheMLPShare  = 0.55 // discount for extra independent lines per iteration
	cpuOpCost      = 1.5  // effective scalar op cost in a streaming loop
	cpuVecOpCost   = 0.7  // effective vector op cost (2 SIMD pipes)

	// Small-operation corrections, fitted to the simulator's measured
	// per-chunk costs across op sizes (each engine memory op below the
	// full 256 B register pays un-amortised activation and sub-burst
	// mask-write granularity; each HMC instruction's fixed command +
	// activation cost stops amortising across its shrinking burst).
	engineSmallOpPenalty = 22.0 // per engine mem op, × (256/S − 1)
	hmcSmallOpExp        = 0.7  // HMC round trip ∝ (256/S)^0.7
	// Software-pipelining slack: lock blocks shallower than the full
	// wave depth expose a share of each instruction's latency.
	pipeSlack = 0.55
)

// pipeFactor is the per-chunk cost multiplier of a pipelined engine
// plan whose block depth (the unroll factor) is shallower than the
// register bank's maximum wave depth.
func pipeFactor(unroll, wave int) float64 {
	if unroll > wave {
		unroll = wave
	}
	if unroll < 1 {
		unroll = 1
	}
	return 1 + pipeSlack*(float64(wave)/float64(unroll)-1)
}

// ParamsFor derives the model parameters from a machine configuration
// and energy model.
func ParamsFor(mc machine.Config, em energy.Model) Params {
	hipeCfg := mc.HIPE
	slot := float64(hipeCfg.ClockDivider)*(1+1/float64(hipeCfg.Width)) + deliverySlots
	// The burst term isolated from the fixed activation+CAS part.
	burst256 := float64(mc.DRAM.AccessLatency(256, mem.Read) - mc.DRAM.AccessLatency(8, mem.Read))
	linkRT := 2*float64(mc.Links.Latency) + float64(mc.Links.PacketOverhead)/float64(mc.Links.BytesPerCycle)
	access256 := float64(mc.DRAM.AccessLatency(256, mem.Read))
	access64 := float64(mc.DRAM.AccessLatency(64, mem.Read))
	predSlot := float64(hipeCfg.PredExtraSlots) * float64(hipeCfg.ClockDivider) / float64(hipeCfg.Width)
	return Params{
		EngineSlot:        slot,
		EngineMem:         burst256 / bankOverlap,
		SquashPipelined:   slot * squashHide,
		SquashSerial:      slot + flagPortSerial,
		PredPipelined:     predSlot,
		PredSerial:        flagDepSerial,
		HMCRoundTripBase:  linkRT / 2,
		HMCRoundTripPerB:  access256 / float64(mc.HMC.MaxInFlight) / 256,
		CacheMiss:         (access64 + 2*float64(mc.Links.Latency)) / mobOverlap,
		CacheMLP:          cacheMLPShare,
		CPUOp:             cpuOpCost,
		CPUVecOp:          cpuVecOpCost,
		MispredictPenalty: float64(mc.CPU.MispredictPenalty),
		DRAMReadBitPJ:     em.ReadBitPJ,
		LinkBitPJ:         em.LinkBitPJ,
	}
}

// DefaultParams derives the model from the paper's Table I machine and
// default energy constants.
func DefaultParams() Params {
	return ParamsFor(machine.Default(), energy.Default())
}

// Estimate is the model's prediction for one candidate plan.
type Estimate struct {
	Plan query.Plan
	// Cycles is the predicted simulated service time.
	Cycles float64
	// DRAMBytes is the predicted DRAM data traffic (squash-adjusted).
	DRAMBytes float64
	// EnergyPJ is the planner-level DRAM+link energy estimate.
	EnergyPJ float64
}

// Fixed per-run overheads (machine warm-up, setup blocks, accumulator
// drain), calibrated against the simulator's measured intercepts.
const (
	fixX86Q6    = 1280
	fixX86Q1    = 4400
	fixHMC      = 770
	fixEngineQ6 = 700
	fixEngineQ1 = 600
)

// q1MeasureCols is the engine plans' key/measure column count
// (returnflag, linestatus, quantity, extendedprice, discount).
const q1MeasureCols = 5

// EstimatePlan predicts the cycles and energy of one concrete plan over
// the profiled workload. Auto plans must be resolved first (use Pick).
// Only the plan's shape is validated here: callers trim candidates to
// their execution granularity's table-dependent envelope first (the
// serving layer validates against shard row counts, the sweep engine
// against the cell's tuple count — see Plan.Candidates).
func EstimatePlan(pr Params, p query.Plan, prof Profile) (Estimate, error) {
	if p.Auto() {
		return Estimate{}, fmt.Errorf("cost: estimate needs a concrete plan, got %s", p)
	}
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	switch p.Arch {
	case query.X86, query.HMC, query.HIVE, query.HIPE:
	default:
		// A newly registered backend validates through the registry but
		// has no estimator yet: report it so Pick skips the candidate
		// instead of guessing (or crashing) — the planner degrades to
		// routing among the modelled backends.
		return Estimate{}, fmt.Errorf("cost: no cost model for backend %s", p.Arch)
	}
	var est Estimate
	if p.Strategy == query.ColumnAtATime {
		est = estimateColumn(pr, p, prof)
	} else {
		est = estimateTuple(pr, p, prof)
	}
	est.Plan = p
	est.EnergyPJ = est.DRAMBytes*8*pr.DRAMReadBitPJ + est.DRAMBytes*8*pr.LinkBitPJ*linkShare(p.Arch)
	return est, nil
}

// linkShare is the fraction of DRAM traffic that crosses the SerDes
// links: all of it for the processor-side x86 and HMC-result paths,
// almost none for the engines' in-memory loads (instruction delivery
// and acks only).
func linkShare(a query.Arch) float64 {
	switch a {
	case query.X86, query.HMC:
		return 1
	default:
		return 0.05
	}
}

// estimateColumn models the column-at-a-time plans — the serving
// shapes. The instruction counts mirror the generators in
// internal/query (x86.go, hmcgen.go, pimgen.go, fused.go); the
// survival fractions come from the workload profile.
func estimateColumn(pr Params, p query.Plan, prof Profile) Estimate {
	S := float64(p.OpSize)
	chunks := float64(prof.Tuples) * db.ColumnWidth / S
	stages := prof.Stages
	memC := pr.EngineMem*S/256 + engineSmallOpPenalty*(256/S-1)
	// The processor's per-chunk bitmask decision fetch: masks are S/32
	// bytes, so a cache line amortises over 64/(S/32) chunks.
	maskFetch := math.Max(pr.CacheMiss*(S/32)/64, 2*pr.CPUOp)

	switch p.Arch {
	case query.X86:
		if p.Kind == query.Q1Agg {
			// q1x86Column: per chunk 6 column loads (overlapped at the
			// core's MLP), the filter compare, and 6 groups × 8 masked
			// vector accumulates.
			perChunk := 6*(S/64)*pr.CacheMiss*pr.CacheMLP +
				float64(1+db.NumGroups*8)*pr.CPUVecOp
			return Estimate{Cycles: fixX86Q1 + chunks*perChunk,
				DRAMBytes: 6 * float64(prof.Tuples) * db.ColumnWidth}
		}
		// x86Column: one pass per predicate stage, each streaming the
		// column through the cache plus a handful of mask ops.
		perChunk := (S/64)*pr.CacheMiss + 4*pr.CPUOp
		return Estimate{Cycles: fixX86Q6 + float64(len(stages))*chunks*perChunk,
			DRAMBytes: float64(len(stages)) * float64(prof.Tuples) * db.ColumnWidth}

	case query.HMC:
		rt := (pr.HMCRoundTripBase + pr.HMCRoundTripPerB*256) * math.Pow(256/S, hmcSmallOpExp)
		if p.Kind == query.Q1Agg {
			// q1hmcColumn: 1 filter + RFValues + LSValues CmpReads per
			// chunk, 3 measure columns reloaded through the cache, 6
			// groups × 8 scalar accumulates.
			cmpReads := float64(1 + db.RFValues + db.LSValues)
			perChunk := cmpReads*rt + 3*(S/64)*pr.CacheMiss*pr.CacheMLP +
				float64(db.NumGroups*8)*pr.CPUVecOp
			return Estimate{Cycles: fixHMC + chunks*perChunk,
				DRAMBytes: chunks * (cmpReads*S + 3*S)}
		}
		// hmcColumn: one CmpRead per stage bound plus cached mask
		// read-modify-write.
		var cmpReads float64
		for _, st := range stages {
			cmpReads += float64(len(st.Bounds))
		}
		perChunk := cmpReads*rt + 4*pr.CPUOp
		return Estimate{Cycles: fixHMC + chunks*perChunk,
			DRAMBytes: chunks * cmpReads * S}

	case query.HIVE:
		if p.Kind == query.Q1Agg {
			// q1hiveColumn: a pipelined filter pass over every chunk
			// (load, compare(s), mask store, then the processor's
			// decision fetch), then a SERIAL aggregation pass over the
			// surviving chunks only: mask reload + 5 column loads +
			// multiply + 6 groups × 11 accumulate instructions.
			st0 := stages[0]
			filterInst := 2 + float64(len(st0.Bounds)) + boolF(len(st0.Bounds) == 2)
			filter := filterInst*pr.EngineSlot + 2*memC + maskFetch
			aggInst := float64(2+q1MeasureCols) + float64(db.NumGroups*11)
			agg := aggInst*pr.EngineSlot + 6*memC
			surv := prof.FinalSurvival()
			return Estimate{
				Cycles:    fixEngineQ1 + chunks*(filter+surv*agg),
				DRAMBytes: chunks * (S + surv*6*S),
			}
		}
		if p.Fused {
			// hiveFusedColumn: every chunk pays 3 loads, 8 ALU ops and
			// one mask store, unconditionally; blocks shallower than
			// the wave depth expose latency.
			perChunk := (12*pr.EngineSlot + 4*memC) * pipeFactor(p.Unroll, 15)
			return Estimate{Cycles: fixEngineQ6 + chunks*perChunk,
				DRAMBytes: chunks * 3 * S}
		}
		// hiveColumn: per stage, surviving chunks pay the engine work
		// plus the processor's bitmask decision round trip.
		var cycles, bytes float64
		for s, st := range stages {
			surv := 1.0
			if s > 0 {
				surv = prof.Survival[s-1]
			}
			inst := 2 + float64(len(st.Bounds)) + boolF(len(st.Bounds) == 2)
			if s > 0 {
				inst += 2 // mask reload + AND with previous column
			}
			perChunk := (inst*pr.EngineSlot+2*memC)*pipeFactor(p.Unroll, 30) + maskFetch + pr.CPUOp
			cycles += chunks * surv * perChunk
			bytes += chunks * surv * S
		}
		return Estimate{Cycles: fixEngineQ6 + cycles, DRAMBytes: bytes}

	case query.HIPE:
		if p.Kind == query.Q1Agg {
			// q1hipeColumn: one SERIAL pass; per chunk the filter stage
			// always runs, the key/measure loads and every group's mask
			// ops are predicated on the filter flag (squashed when the
			// chunk is wholly past the cutoff), and the 24 accumulator
			// updates are unpredicated.
			st0 := stages[0]
			filterInst := 2 + float64(len(st0.Bounds)) + boolF(len(st0.Bounds) == 2)
			predInst := float64(q1MeasureCols) + 1 + float64(db.NumGroups*7)
			accInst := float64(db.NumGroups * 4)
			surv := prof.FinalSurvival()
			perChunk := filterInst*pr.EngineSlot + memC +
				surv*(predInst*(pr.EngineSlot+pr.PredSerial)+6*memC+accInst*pr.EngineSlot) +
				(1-surv)*((predInst+accInst)*pr.SquashSerial)
			return Estimate{
				Cycles:    fixEngineQ1 + chunks*perChunk,
				DRAMBytes: chunks * (S + surv*6*S),
			}
		}
		// hipeColumn: pipelined waves; stage 0 always runs, later
		// stages' loads and refinements are predicated on the running
		// mask — squashed chunks cost flag-read slots, not DRAM.
		pipe := pipeFactor(p.Unroll, 15)
		var cycles, bytes float64
		for s, st := range stages {
			surv := 1.0
			if s > 0 {
				surv = prof.Survival[s-1]
			}
			nb := len(st.Bounds)
			inst := 1 + float64(nb) // load + compares
			switch {
			case s == 0 && nb == 2:
				inst++ // AND into the mask register
			case s > 0 && nb == 2:
				inst += 2
			case s > 0 && nb == 1:
				inst++
			}
			memOps := 1.0
			if s == len(stages)-1 {
				inst++ // final (predicated) mask store
				memOps++
			}
			if s == 0 && len(stages) > 1 {
				cycles += chunks * (inst*pr.EngineSlot + memOps*memC) * pipe
				bytes += chunks * S
				continue
			}
			active := (inst*(pr.EngineSlot+pr.PredPipelined) + memOps*memC) * pipe
			squashed := inst * pr.SquashPipelined * pipe
			cycles += chunks * (surv*active + (1-surv)*squashed)
			bytes += chunks * surv * S
		}
		return Estimate{Cycles: fixEngineQ6 + cycles, DRAMBytes: bytes}
	}
	panic("cost: unreachable")
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// estimateTuple models the tuple-at-a-time plans at lower fidelity —
// enough to rank them against the column plans they always lose to at
// the serving shapes (the row store reads every field of every tuple
// and branches per tuple).
func estimateTuple(pr Params, p query.Plan, prof Profile) Estimate {
	n := float64(prof.Tuples)
	tupleLines := float64(db.TupleBytes) / 64
	sel := prof.Sel
	// Branch misprediction: the predictor misses on the minority side.
	minority := sel
	if minority > 0.5 {
		minority = 1 - minority
	}
	branch := minority * pr.MispredictPenalty

	switch p.Arch {
	case query.X86:
		perTuple := tupleLines*pr.CacheMiss + 4*pr.CPUVecOp + branch
		fix := float64(fixX86Q6)
		if p.Kind == query.Q1Agg {
			perTuple += sel * (8*pr.CPUOp + 2*branch)
			fix = fixX86Q1
		}
		return Estimate{Cycles: fix + n*perTuple, DRAMBytes: n * db.TupleBytes}
	case query.HMC:
		S := float64(p.OpSize)
		if S < db.TupleBytes {
			S = db.TupleBytes
		}
		tuplesPerChunk := S / db.TupleBytes
		chunks := n / tuplesPerChunk
		rt := (pr.HMCRoundTripBase + pr.HMCRoundTripPerB*256) * math.Pow(256/S, hmcSmallOpExp)
		cmpReads := 2.0
		if p.Kind == query.Q1Agg {
			cmpReads = 1
		}
		perChunk := cmpReads*rt + tuplesPerChunk*(2*pr.CPUOp+branch)
		if p.Kind == query.Q1Agg {
			perChunk += tuplesPerChunk * sel * (tupleLines*pr.CacheMiss*pr.CacheMLP + 8*pr.CPUOp)
		}
		return Estimate{Cycles: fixHMC + chunks*perChunk, DRAMBytes: chunks * cmpReads * S}
	default: // HIVE (HIPE registers no tuple plan; EstimatePlan gated the rest)
		S := float64(p.OpSize)
		if S < db.TupleBytes {
			S = db.TupleBytes
		}
		tuplesPerChunk := S / db.TupleBytes
		chunks := n / tuplesPerChunk
		memC := pr.EngineMem * S / 256
		engineInst := 5.0 // load + pattern compares + AND + mask store
		perChunk := engineInst*pr.EngineSlot + 2*memC + pr.CacheMiss +
			tuplesPerChunk*(2*pr.CPUOp+branch)
		if p.Kind == query.Q1Agg {
			perChunk += tuplesPerChunk * sel * (tupleLines*pr.CacheMiss*pr.CacheMLP + 8*pr.CPUOp)
		}
		return Estimate{Cycles: fixEngineQ6 + chunks*perChunk, DRAMBytes: chunks * S}
	}
}
