// The workload profiler: the exact, deterministic selectivity inputs
// the cost model consumes. For a given table and plan shape it computes
// the full-predicate selectivity and, at the plan's chunk granularity,
// the per-stage chunk-survival fractions — the share of chunks that
// still hold at least one live tuple entering each predicate stage,
// which is what decides how much work the engines' chunk-granular
// skipping (HIVE's processor branches, HIPE's predication squashes)
// actually avoids. On a date-clustered table survival tracks the
// predicate's date window; on a uniform table it saturates toward 1
// within a few percent selectivity — both effects the simulator
// measures and the model must reproduce.
package cost

import (
	"math"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/query"
)

// Profile is the selectivity profile of one (table, plan shape) pair.
type Profile struct {
	// Tuples is the table's row count.
	Tuples int
	// Sel is the full-predicate selectivity: the fraction of tuples
	// passing every stage.
	Sel float64
	// Stages is the plan's compiled predicate pipeline.
	Stages []query.Stage
	// Survival[s] is the fraction of chunks (at the plan's operation
	// size) with at least one tuple passing stages 0..s — the active
	// fraction for work gated on stage s's outcome.
	Survival []float64
}

// FinalSurvival is the surviving-chunk fraction after the whole
// pipeline (1 when the profile has no stages).
func (p Profile) FinalSurvival() float64 {
	if len(p.Survival) == 0 {
		return 1
	}
	return p.Survival[len(p.Survival)-1]
}

// ProfileFor computes the exact profile of plan p's predicate over tab
// at p's chunk granularity. O(tuples × stages), deterministic; the
// serving layer caches it per distinct predicate.
func ProfileFor(tab *db.Table, p query.Plan) Profile {
	d := p.Desc()
	tuplesPerChunk := int(p.OpSize) / db.ColumnWidth
	if p.Strategy == query.TupleAtATime {
		tuplesPerChunk = int(p.OpSize) / db.TupleBytes
	}
	if tuplesPerChunk < 1 {
		tuplesPerChunk = 1
	}
	prof := Profile{
		Tuples:   tab.N,
		Stages:   d.Stages,
		Survival: make([]float64, len(d.Stages)),
	}
	if tab.N == 0 {
		return prof
	}
	// alive[i] tracks whether tuple i has passed every stage so far.
	alive := make([]bool, tab.N)
	for i := range alive {
		alive[i] = true
	}
	matches := 0
	chunks := (tab.N + tuplesPerChunk - 1) / tuplesPerChunk
	for s, st := range d.Stages {
		col := query.Column(tab, st.Col)
		liveChunks := 0
		last := s == len(d.Stages)-1
		// The planner runs once per distinct predicate but on the whole
		// table, so the per-tuple test matters: stages whose bounds form
		// a plain range (every shipped predicate) compare inline instead
		// of walking the bound list per tuple.
		lo, hi, ranged := stageRange(st)
		for c := 0; c < chunks; c++ {
			base := c * tuplesPerChunk
			end := base + tuplesPerChunk
			if end > tab.N {
				end = tab.N
			}
			live := false
			for i := base; i < end; i++ {
				if !alive[i] {
					continue
				}
				v := col[i]
				if ranged {
					if v < lo || v > hi {
						alive[i] = false
						continue
					}
				} else if !st.Match(v) {
					alive[i] = false
					continue
				}
				live = true
				if last {
					matches++
				}
			}
			if live {
				liveChunks++
			}
		}
		prof.Survival[s] = float64(liveChunks) / float64(chunks)
	}
	prof.Sel = float64(matches) / float64(tab.N)
	return prof
}

// stageRange reduces a stage's bound list to one [lo, hi] range when
// possible (GE/GT/LE/LT/EQ bounds AND together into a range; NE does
// not).
func stageRange(st query.Stage) (lo, hi int32, ok bool) {
	lo, hi = math.MinInt32, math.MaxInt32
	for _, b := range st.Bounds {
		switch b.Kind {
		case isa.CmpGE:
			lo = max32(lo, b.Imm)
		case isa.CmpGT:
			if b.Imm == math.MaxInt32 {
				return 0, 0, false
			}
			lo = max32(lo, b.Imm+1)
		case isa.CmpLE:
			hi = min32(hi, b.Imm)
		case isa.CmpLT:
			if b.Imm == math.MinInt32 {
				return 0, 0, false
			}
			hi = min32(hi, b.Imm-1)
		case isa.CmpEQ:
			lo, hi = max32(lo, b.Imm), min32(hi, b.Imm)
		default:
			return 0, 0, false
		}
	}
	return lo, hi, true
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// profileCache shares profiles across candidates within one routing
// decision: candidates over the same predicate differ only in chunk
// granularity, so a four-backend pick needs two profiles, not four.
type profileCache struct {
	tab   *db.Table
	profs map[profileKey]Profile
}

type profileKey struct {
	strat query.Strategy
	op    uint32
	kind  query.QueryKind
	q     db.Q06
	q1    db.Q01
}

func newProfileCache(tab *db.Table) *profileCache {
	return &profileCache{tab: tab, profs: make(map[profileKey]Profile)}
}

func (pc *profileCache) get(p query.Plan) Profile {
	key := profileKey{strat: p.Strategy, op: p.OpSize, kind: p.Kind, q: p.Q, q1: p.Q1}
	if prof, ok := pc.profs[key]; ok {
		return prof
	}
	prof := ProfileFor(pc.tab, p)
	pc.profs[key] = prof
	return prof
}
