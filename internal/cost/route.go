// The routing decision: rank candidate plans by estimated cycles and
// pick the predicted-fastest. The decision object carries every
// candidate's estimate so routing is auditable — serve reports and
// sweep exports record it column for column.
package cost

import (
	"errors"
	"fmt"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// Decision is one routing outcome: the profiled selectivity, every
// candidate's estimate (in candidate order), and the chosen plan.
type Decision struct {
	// Selectivity is the full-predicate selectivity the candidates were
	// profiled at (taken from the first candidate's profile; candidates
	// share a predicate, so chunk granularity is the only difference).
	Selectivity float64
	// Estimates holds one estimate per candidate, in input order.
	Estimates []Estimate
	// QueueCycles holds the per-candidate queue-depth penalty a loaded
	// pick (RankLoaded) added to each estimate, in candidate order. Nil
	// for unloaded decisions, so pre-fleet exports are unchanged.
	QueueCycles []float64 `json:",omitempty"`
	// Health holds the per-candidate replica health a health-aware pick
	// (RankLoadedHealth) ranked under, in candidate order. Nil for
	// health-blind decisions, so fault-free exports are unchanged.
	Health []Health `json:",omitempty"`
	// ObsCycles holds the per-candidate blended observed-cycles
	// estimate an adaptive pick ranked with (0 where the candidate's
	// bucket was cold and the analytic prior stood alone), in candidate
	// order. Nil for static decisions, so adaptive-off exports are
	// unchanged.
	ObsCycles []float64 `json:",omitempty"`
	// BucketSamples holds the per-candidate observation count behind
	// ObsCycles, in candidate order. Nil for static decisions.
	BucketSamples []uint64 `json:",omitempty"`
	// RouteMode records how the pick was made: "" for static (analytic
	// model only), "adaptive" when observed cycles were blended in.
	RouteMode string `json:",omitempty"`
	// Explored reports that the deterministic exploration floor
	// overrode the blended ranking for this request.
	Explored bool `json:",omitempty"`
	// Chosen is the predicted-fastest candidate's plan.
	Chosen query.Plan
	// ChosenIndex is its position in Estimates.
	ChosenIndex int
}

// EstimateFor returns the decision's estimate for an architecture (nil
// when the architecture was not a candidate).
func (d *Decision) EstimateFor(a query.Arch) *Estimate {
	for i := range d.Estimates {
		if d.Estimates[i].Plan.Arch == a {
			return &d.Estimates[i]
		}
	}
	return nil
}

// Pick profiles tab for each candidate plan, estimates them all, and
// returns the decision for the lowest predicted cycle count. Ties break
// toward the earlier candidate, so the decision is deterministic for a
// fixed candidate order. Candidates whose envelope rejects the workload
// (e.g. Q01 accumulator-overflow bounds) are skipped; an error is
// returned only when no candidate survives.
func Pick(pr Params, tab *db.Table, candidates []query.Plan) (*Decision, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("cost: no candidate plans")
	}
	d := &Decision{ChosenIndex: -1}
	profs := newProfileCache(tab)
	for _, p := range candidates {
		prof := profs.get(p)
		est, err := EstimatePlan(pr, p, prof)
		if err != nil {
			continue
		}
		if d.Estimates == nil {
			d.Selectivity = prof.Sel
		}
		d.Estimates = append(d.Estimates, est)
		if d.ChosenIndex < 0 || est.Cycles < d.Estimates[d.ChosenIndex].Cycles {
			d.ChosenIndex = len(d.Estimates) - 1
		}
	}
	if d.ChosenIndex < 0 {
		return nil, fmt.Errorf("cost: no candidate plan fits the workload (%d candidates rejected)", len(candidates))
	}
	d.Chosen = d.Estimates[d.ChosenIndex].Plan
	return d, nil
}

// PickSharded ranks candidates over a horizontally partitioned table —
// the serving cluster's shape. A request's service time is its
// scatter-gather critical path, so each candidate's cost is its
// predicted cycles on the SLOWEST shard; this matters on clustered
// layouts, where contiguous shards cover different date ranges and a
// predicate's chunk survival concentrates in a few shards. The
// decision's estimate carries the max-shard cycles and the summed DRAM
// traffic/energy; its selectivity is the whole-table (row-weighted)
// fraction.
func PickSharded(pr Params, shards []*db.Table, candidates []query.Plan) (*Decision, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cost: no shards")
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("cost: no candidate plans")
	}
	d := &Decision{ChosenIndex: -1}
	caches := make([]*profileCache, len(shards))
	for i, s := range shards {
		caches[i] = newProfileCache(s)
	}
	for _, p := range candidates {
		agg, sel, err := estimateShardedWith(pr, shards, caches, p)
		if err != nil {
			continue
		}
		if d.Estimates == nil {
			d.Selectivity = sel
		}
		d.Estimates = append(d.Estimates, agg)
		if d.ChosenIndex < 0 || agg.Cycles < d.Estimates[d.ChosenIndex].Cycles {
			d.ChosenIndex = len(d.Estimates) - 1
		}
	}
	if d.ChosenIndex < 0 {
		return nil, fmt.Errorf("cost: no candidate plan fits the sharded workload (%d candidates rejected)", len(candidates))
	}
	d.Chosen = d.Estimates[d.ChosenIndex].Plan
	return d, nil
}

// EstimateSharded aggregates one plan's estimate over a horizontally
// partitioned table — max-shard (critical path) cycles, summed DRAM
// traffic and energy — and the whole-table row-weighted selectivity.
// This is the fleet router's cacheable per-(pool, plan) input: it is a
// pure function of (shards, plan), so the serving layer computes it
// once per distinct plan and re-ranks per request as queues move.
func EstimateSharded(pr Params, shards []*db.Table, p query.Plan) (Estimate, float64, error) {
	if len(shards) == 0 {
		return Estimate{}, 0, fmt.Errorf("cost: no shards")
	}
	caches := make([]*profileCache, len(shards))
	for i, s := range shards {
		caches[i] = newProfileCache(s)
	}
	return estimateShardedWith(pr, shards, caches, p)
}

// estimateShardedWith is EstimateSharded over caller-owned profile
// caches, so PickSharded shares profiles across candidates that differ
// only in chunk granularity.
func estimateShardedWith(pr Params, shards []*db.Table, caches []*profileCache, p query.Plan) (Estimate, float64, error) {
	var agg Estimate
	var matchRows float64
	totalRows := 0
	for si, s := range shards {
		totalRows += s.N
		prof := caches[si].get(p)
		est, err := EstimatePlan(pr, p, prof)
		if err != nil {
			return Estimate{}, 0, err
		}
		if est.Cycles > agg.Cycles {
			agg.Cycles = est.Cycles
		}
		agg.DRAMBytes += est.DRAMBytes
		agg.EnergyPJ += est.EnergyPJ
		matchRows += prof.Sel * float64(s.N)
	}
	agg.Plan = p
	sel := 0.0
	if totalRows > 0 {
		sel = matchRows / float64(totalRows)
	}
	return agg, sel, nil
}

// RankLoaded is the fleet router's joint (replica, backend) pick: it
// ranks pre-computed candidate estimates by predicted critical path
// PLUS the candidate replica's current virtual-time queue depth, so an
// idle slower pool can beat a backed-up faster one. Estimates keep the
// pure model predictions; the queue penalties are recorded on the
// decision (QueueCycles) so every pick stays auditable. The obs slice
// carries per-candidate blended observed cycles from adaptive routing
// (Adaptive.Blended); a positive entry replaces that candidate's
// analytic prediction in the score, a zero entry means the bucket was
// cold and the prior stands, and a nil slice is a fully static pick.
// Ties break toward the earlier candidate — deterministic for a fixed
// candidate order at any worker count.
func RankLoaded(sel float64, ests []Estimate, queue []float64, obs []float64) (*Decision, error) {
	return RankLoadedHealth(sel, ests, queue, nil, obs)
}

// Health is one candidate replica's observed health at routing time:
// whether it is down (crashed and not yet recovered) and the observed
// multiplicative service slowdown its recent work showed (1 = nominal;
// values below 1 are treated as 1).
type Health struct {
	Down     bool    `json:",omitempty"`
	Slowdown float64 `json:",omitempty"`
}

// penalty returns the score multiplier this health imposes.
func (h Health) penalty() float64 {
	if h.Slowdown > 1 {
		return h.Slowdown
	}
	return 1
}

// ErrAllDown is returned by RankLoadedHealth when every candidate
// replica is down — the caller decides whether to queue for the
// earliest recovery or fail the request.
var ErrAllDown = errors.New("cost: every candidate replica is down")

// RankLoadedHealth is RankLoaded made failover-aware: candidates whose
// replica is down are excluded outright, and candidates on straggling
// replicas have their predicted critical path inflated by the observed
// slowdown factor before the queue penalty is added — so a nominally
// faster but straggling pool loses to a healthy one the model ranks
// close. A nil health slice degenerates to RankLoaded exactly, and a
// nil obs slice keeps the analytic prediction as every candidate's
// base cost (see RankLoaded for the obs contract). The health snapshot
// and blended observations are recorded on the decision
// (Decision.Health, Decision.ObsCycles, Decision.RouteMode) so
// failover and adaptive picks stay auditable; when every candidate is
// down the error wraps ErrAllDown. Ties break toward the earlier
// candidate.
func RankLoadedHealth(sel float64, ests []Estimate, queue []float64, health []Health, obs []float64) (*Decision, error) {
	if len(ests) == 0 {
		return nil, fmt.Errorf("cost: no candidate estimates")
	}
	if len(queue) != len(ests) {
		return nil, fmt.Errorf("cost: %d queue penalties for %d candidates", len(queue), len(ests))
	}
	if health != nil && len(health) != len(ests) {
		return nil, fmt.Errorf("cost: %d health entries for %d candidates", len(health), len(ests))
	}
	if obs != nil && len(obs) != len(ests) {
		return nil, fmt.Errorf("cost: %d observed-cycle entries for %d candidates", len(obs), len(ests))
	}
	d := &Decision{
		Selectivity: sel,
		Estimates:   append([]Estimate(nil), ests...),
		QueueCycles: append([]float64(nil), queue...),
		ChosenIndex: -1,
	}
	if health != nil {
		d.Health = append([]Health(nil), health...)
	}
	if obs != nil {
		d.ObsCycles = append([]float64(nil), obs...)
		d.RouteMode = "adaptive"
	}
	var best float64
	for i := range ests {
		if health != nil && health[i].Down {
			continue
		}
		base := ests[i].Cycles
		if obs != nil && obs[i] > 0 {
			base = obs[i]
		}
		score := base + queue[i]
		if health != nil {
			score = base*health[i].penalty() + queue[i]
		}
		if d.ChosenIndex < 0 || score < best {
			best = score
			d.ChosenIndex = i
		}
	}
	if d.ChosenIndex < 0 {
		return nil, fmt.Errorf("cost: ranking %d candidates: %w", len(ests), ErrAllDown)
	}
	d.Chosen = d.Estimates[d.ChosenIndex].Plan
	return d, nil
}
