package cost_test

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// syntheticProfile builds a profile with every survival fraction (and
// the selectivity) pinned to s — the knob the monotonicity law is
// stated over.
func syntheticProfile(p query.Plan, tuples int, s float64) cost.Profile {
	d := p.Desc()
	surv := make([]float64, len(d.Stages))
	for i := range surv {
		surv[i] = s
	}
	return cost.Profile{Tuples: tuples, Sel: s, Stages: d.Stages, Survival: surv}
}

// TestMonotonicSelectivity pins the model's shape law: for every
// accumulating plan (the Q01 aggregations on all four backends, plus
// HIPE's predicated Q06 scan and its in-memory aggregation extension),
// estimated cycles must be non-decreasing in selectivity — more
// surviving chunks can only add work.
func TestMonotonicSelectivity(t *testing.T) {
	pr := cost.DefaultParams()
	plans := []query.Plan{
		{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Kind: query.Q1Agg, Q1: db.DefaultQ01()},
		{Arch: query.HMC, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Kind: query.Q1Agg, Q1: db.DefaultQ01()},
		{Arch: query.HIVE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Kind: query.Q1Agg, Q1: db.DefaultQ01()},
		{Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Kind: query.Q1Agg, Q1: db.DefaultQ01()},
		{Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()},
		{Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Aggregate: true, Q: db.DefaultQ06()},
	}
	const tuples = 4096
	for _, p := range plans {
		prev := -1.0
		for _, s := range []float64{0, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			est, err := cost.EstimatePlan(pr, p, syntheticProfile(p, tuples, s))
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			if est.Cycles < prev {
				t.Errorf("%s: estimate decreased from %.0f to %.0f at selectivity %.2f",
					p, prev, est.Cycles, s)
			}
			prev = est.Cycles
		}
	}
}

// TestCrossovers pins the paper's selectivity crossovers in the model,
// against real measured cycles on a date-clustered table.
//
// Q6: HIPE (predication skips whole chunks of the later columns) wins
// at low selectivity; at high selectivity nothing squashes, the
// predication tax dominates, and HIVE's unconditional fused scan wins.
//
// Q1: HIPE's one predicated pass beats the HMC baseline's round-trip
// bitmasks at low selectivity and loses above the crossover; and the
// x86 DSM baseline — hopeless at low selectivity — closes most of its
// gap at selectivity 1, where every backend must touch every byte.
func TestCrossovers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the crossover endpoints")
	}
	pr := cost.DefaultParams()
	const n = 4096
	tab := db.GenerateClusteredMemo(n, 42, 10)

	estimate := func(p query.Plan) float64 {
		est, err := cost.EstimatePlan(pr, p, cost.ProfileFor(tab, p))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		return est.Cycles
	}

	// --- Q6: HIPE vs HIVE crossover ---
	lowQ6 := db.DefaultQ06() // ~2% selectivity, 1-year date window
	highQ6 := db.Q06{ShipLo: 0, ShipHi: db.ShipDateDays, DiscLo: 0, DiscHi: 10, QtyHi: 51}
	for _, tc := range []struct {
		q    db.Q06
		want query.Arch
	}{
		{lowQ6, query.HIPE},
		{highQ6, query.HIVE},
	} {
		hipeEst := estimate(servePlan(query.HIPE, tc.q))
		hiveEst := estimate(servePlan(query.HIVE, tc.q))
		modelWinner := query.HIPE
		if hiveEst < hipeEst {
			modelWinner = query.HIVE
		}
		if modelWinner != tc.want {
			t.Errorf("q6 sel=%.3f: model winner %s, want %s (hipe=%.0f hive=%.0f)",
				db.Selectivity(tab, tc.q), modelWinner, tc.want, hipeEst, hiveEst)
		}
		// The model's winner must agree with the simulator.
		hipeMeas := measure(t, tab, servePlan(query.HIPE, tc.q))
		hiveMeas := measure(t, tab, servePlan(query.HIVE, tc.q))
		measWinner := query.HIPE
		if hiveMeas < hipeMeas {
			measWinner = query.HIVE
		}
		if modelWinner != measWinner {
			t.Errorf("q6 sel=%.3f: model winner %s, measured winner %s",
				db.Selectivity(tab, tc.q), modelWinner, measWinner)
		}
	}

	// --- Q1: HIPE vs HMC crossover ---
	lowQ1 := db.Q01{ShipCut: 100}
	highQ1 := db.Q01{ShipCut: db.ShipDateDays - 1}
	for _, tc := range []struct {
		q    db.Q01
		want query.Arch
	}{
		{lowQ1, query.HIPE},
		{highQ1, query.HMC},
	} {
		hipeEst := estimate(serveQ1Plan(query.HIPE, tc.q))
		hmcEst := estimate(serveQ1Plan(query.HMC, tc.q))
		modelWinner := query.HIPE
		if hmcEst < hipeEst {
			modelWinner = query.HMC
		}
		if modelWinner != tc.want {
			t.Errorf("q1 sel=%.3f: model HIPE-vs-HMC winner %s, want %s (hipe=%.0f hmc=%.0f)",
				db.SelectivityQ1(tab, tc.q), modelWinner, tc.want, hipeEst, hmcEst)
		}
		hipeMeas := measure(t, tab, serveQ1Plan(query.HIPE, tc.q))
		hmcMeas := measure(t, tab, serveQ1Plan(query.HMC, tc.q))
		measWinner := query.HIPE
		if hmcMeas < hipeMeas {
			measWinner = query.HMC
		}
		if modelWinner != measWinner {
			t.Errorf("q1 sel=%.3f: model winner %s, measured winner %s",
				db.SelectivityQ1(tab, tc.q), modelWinner, measWinner)
		}
	}

	// --- x86 DSM competitiveness narrows with selectivity ---
	gap := func(x86, best float64) float64 { return x86 / best }
	for _, tc := range []struct {
		name     string
		lowX86   float64
		lowBest  float64
		highX86  float64
		highBest float64
	}{
		{
			"q6",
			estimate(servePlan(query.X86, lowQ6)), estimate(servePlan(query.HIPE, lowQ6)),
			estimate(servePlan(query.X86, highQ6)), estimate(servePlan(query.HIVE, highQ6)),
		},
		{
			"q1",
			estimate(serveQ1Plan(query.X86, lowQ1)), estimate(serveQ1Plan(query.HIVE, lowQ1)),
			estimate(serveQ1Plan(query.X86, highQ1)), estimate(serveQ1Plan(query.HIVE, highQ1)),
		},
	} {
		low, high := gap(tc.lowX86, tc.lowBest), gap(tc.highX86, tc.highBest)
		if high >= low {
			t.Errorf("%s: x86's estimated gap should narrow with selectivity: low-sel %.1fx, high-sel %.1fx",
				tc.name, low, high)
		}
	}
}

// TestPickDeterministicTies pins the tie-break: equal estimates choose
// the earlier candidate, so routing decisions are reproducible.
func TestPickDeterministicTies(t *testing.T) {
	pr := cost.DefaultParams()
	tab := db.GenerateMemo(1024, 42)
	q := db.DefaultQ06()
	// The same plan twice: identical estimates, first one must win.
	p := servePlan(query.HIVE, q)
	d, err := cost.Pick(pr, tab, []query.Plan{p, p})
	if err != nil {
		t.Fatal(err)
	}
	if d.ChosenIndex != 0 {
		t.Errorf("tie broke to index %d, want 0", d.ChosenIndex)
	}
	if _, err := cost.Pick(pr, tab, nil); err == nil {
		t.Error("Pick accepted an empty candidate list")
	}
}

// TestProfileSurvival checks the profiler against a hand-computed
// clustered layout: a date cut at half the range must leave about half
// the chunks alive.
func TestProfileSurvival(t *testing.T) {
	tab := db.GenerateClusteredMemo(4096, 42, 0) // exactly date-ordered
	p := serveQ1Plan(query.HIPE, db.Q01{ShipCut: db.ShipDateDays / 2})
	prof := cost.ProfileFor(tab, p)
	if len(prof.Survival) != 1 {
		t.Fatalf("Q1 profile has %d stages, want 1", len(prof.Survival))
	}
	if s := prof.Survival[0]; s < 0.45 || s > 0.55 {
		t.Errorf("half-range cut on a date-ordered table: survival %.3f, want ~0.5", s)
	}
	if prof.Sel < 0.45 || prof.Sel > 0.55 {
		t.Errorf("selectivity %.3f, want ~0.5", prof.Sel)
	}
	// Uniform table at the same tiny selectivity: nearly every chunk
	// survives (64-tuple chunks almost always hold one match).
	uni := db.GenerateMemo(4096, 42)
	profU := cost.ProfileFor(uni, p)
	if profU.Survival[0] < 0.95 {
		t.Errorf("uniform table survival %.3f, want ~1", profU.Survival[0])
	}
}
