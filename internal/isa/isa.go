// Package isa defines the instruction formats shared by the processor
// model and the in-memory engines:
//
//   - CPU micro-ops (µops) consumed by the out-of-order core model,
//     including AVX-512-style vector operations and offload ops that
//     carry HMC/HIVE/HIPE instructions toward the memory cube;
//   - the offload instruction sets themselves: the HMC 2.1-style
//     read-update/compare instructions, the HIVE register-bank vector ISA
//     (lock/unlock, vload/vstore, vector ALU), and the HIPE extension
//     that adds a predicate field to every load/store/ALU instruction;
//   - the functional lane semantics (32-bit lanes over 256-byte vector
//     registers) used by the engines so that simulated queries compute
//     real answers.
package isa

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/mem"
)

// Reg is a virtual CPU register name. The OoO model treats register
// numbers as already renamed: every producer µop names a fresh Reg.
type Reg uint32

// RegNone marks an absent operand.
const RegNone Reg = 0

// OpClass classifies a µop for functional-unit selection.
type OpClass uint8

// µop classes. Latencies and port counts are configured in the cpu
// package (Table I).
const (
	Nop OpClass = iota
	IntALU
	IntMul
	IntDiv
	FPALU
	FPMul
	FPDiv
	// VecALU / VecCmp are AVX-style vector ops executed on the FP/SIMD
	// pipes; Size carries the vector width in bytes (up to 64 = AVX-512).
	VecALU
	VecCmp
	Load
	Store
	Branch
	// Offload carries an OffloadInst toward the memory cube. The core
	// treats it like an uncacheable memory operation: it occupies a
	// load-queue entry until the cube's response arrives.
	Offload
)

var opClassNames = [...]string{
	"nop", "int-alu", "int-mul", "int-div", "fp-alu", "fp-mul", "fp-div",
	"vec-alu", "vec-cmp", "load", "store", "branch", "offload",
}

// String implements fmt.Stringer.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// MicroOp is one instruction as seen by the core model. The stream is a
// post-resolution trace: Taken records the actual branch outcome, and
// wrong-path work is charged as a flush penalty rather than simulated.
type MicroOp struct {
	PC    uint64
	Class OpClass

	Dst  Reg
	Src1 Reg
	Src2 Reg

	// Addr/Size describe memory operands (Load/Store/Offload) and vector
	// widths (VecALU/VecCmp).
	Addr mem.Addr
	Size uint32

	// Taken is the actual direction of a Branch µop.
	Taken bool

	// Uncacheable routes Load/Store around the cache hierarchy (used for
	// streaming stores and bitmask reads declared non-temporal).
	Uncacheable bool

	// Offload is the cube instruction carried by an Offload µop.
	Offload *OffloadInst
}

// IsMem reports whether the µop occupies a memory-order-buffer entry.
func (u *MicroOp) IsMem() bool {
	return u.Class == Load || u.Class == Store || u.Class == Offload
}

// Target selects which in-memory engine executes an offload instruction.
type Target uint8

// Offload targets.
const (
	TargetHMC Target = iota
	TargetHIVE
	TargetHIPE
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetHMC:
		return "hmc"
	case TargetHIVE:
		return "hive"
	case TargetHIPE:
		return "hipe"
	default:
		return fmt.Sprintf("target(%d)", uint8(t))
	}
}

// OffloadOp is the operation of a cube instruction.
type OffloadOp uint8

// Offload operations. Lock/Unlock/VLoad/VStore/VMaskStore/VALU form the
// HIVE/HIPE register-bank ISA; CmpRead/AddImm/CompareSwap are the HMC
// baseline's read-operate instructions.
const (
	// Lock acquires the engine's register bank for the issuing thread.
	Lock OffloadOp = iota
	// Unlock releases the register bank and acknowledges the CPU.
	Unlock
	// VLoad moves Size bytes from DRAM at Addr into register Dst.
	VLoad
	// VStore moves Size bytes from register Src1 to DRAM at Addr.
	VStore
	// VMaskStore compacts register Src1 (one bit per 32-bit lane) and
	// stores the bitmask (Size/32 bytes) to DRAM at Addr.
	VMaskStore
	// VMaskLoad reads a compacted bitmask of Size/32 bytes from Addr and
	// expands it into SIMD lane masks in register Dst (the inverse of
	// VMaskStore) — how a column-at-a-time scan reloads the previous
	// column's intermediate result into the engine.
	VMaskLoad
	// VALU performs a lane-wise ALU operation: Dst = Src1 op Src2/Imm.
	VALU
	// CmpRead is the HMC baseline load-compare: read Size bytes at Addr,
	// lane-compare against Imm, return the compacted bitmask to the CPU.
	CmpRead
	// AddImm is the classic HMC read-modify-write: add Imm to every lane
	// at Addr in place.
	AddImm
	// CompareSwap is the original HMC compare-and-swap update
	// instruction: if the first lane equals Imm, overwrite it with Imm2.
	CompareSwap
)

var offloadOpNames = [...]string{
	"lock", "unlock", "vload", "vstore", "vmaskstore", "vmaskload", "valu",
	"cmpread", "addimm", "cas",
}

// String implements fmt.Stringer.
func (o OffloadOp) String() string {
	if int(o) < len(offloadOpNames) {
		return offloadOpNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ALUKind selects the lane operation of a VALU or CmpRead instruction.
type ALUKind uint8

// Lane operations over 32-bit signed lanes. Compare operations produce
// all-ones (match) or all-zeros (no match) lanes, SIMD style.
const (
	ALUNone ALUKind = iota
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	And
	Or
	Xor
	Add
	Sub
	Mul
)

var aluKindNames = [...]string{
	"none", "cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge",
	"and", "or", "xor", "add", "sub", "mul",
}

// String implements fmt.Stringer.
func (k ALUKind) String() string {
	if int(k) < len(aluKindNames) {
		return aluKindNames[k]
	}
	return fmt.Sprintf("alu(%d)", uint8(k))
}

// IsCompare reports whether the kind produces a lane mask.
func (k ALUKind) IsCompare() bool { return k >= CmpEQ && k <= CmpGE }

// Register-bank shape shared by HIVE (balanced design) and HIPE, from the
// paper: 36 registers of 256 bytes (9 KB total), 64 32-bit lanes each.
const (
	NumRegisters  = 36
	RegisterBytes = 256
	LaneBytes     = 4
	LanesPerReg   = RegisterBytes / LaneBytes
)

// Predicate gates a HIPE instruction on another register's zero flag.
type Predicate struct {
	// Valid marks the instruction as predicated at all.
	Valid bool
	// Reg names the register whose zero flag is tested.
	Reg uint8
	// WhenZero executes the instruction when the flag is set (true) or
	// clear (false). Q06-style plans use WhenZero=false: "touch the next
	// column only if something matched".
	WhenZero bool
}

// String implements fmt.Stringer.
func (p Predicate) String() string {
	if !p.Valid {
		return ""
	}
	if p.WhenZero {
		return fmt.Sprintf("@z(r%d)", p.Reg)
	}
	return fmt.Sprintf("@nz(r%d)", p.Reg)
}

// OffloadInst is one instruction executed by an in-memory engine.
type OffloadInst struct {
	Target Target
	Op     OffloadOp
	ALU    ALUKind

	Dst  uint8
	Src1 uint8
	Src2 uint8

	Addr mem.Addr
	Size uint32
	Imm  int32
	Imm2 int32

	// Pattern, when non-empty, supplies per-lane immediates for CmpRead
	// (tiled across the operand): the 16-byte immediate field of an HMC
	// instruction packet interpreted as lane constants, which is how a
	// row-store compare evaluates different predicates on different
	// tuple fields in a single instruction.
	Pattern []int32

	// UseImm makes VALU use Imm as the second operand instead of Src2.
	UseImm bool

	// FP selects floating-point functional-unit latency for VALU.
	FP bool

	// Pred is the HIPE predication field. Must be zero-valued for
	// TargetHMC and TargetHIVE instructions.
	Pred Predicate

	// OnResult, if non-nil, receives the functional result an engine
	// computes for this instruction (the compacted bitmask of a CmpRead,
	// the old value of a CompareSwap). The slice is only valid during
	// the call: engines hand out scratch buffers, so consumers must
	// compare or copy, never retain. Used by the query runner and the
	// tests to cross-check engine results against reference evaluation.
	OnResult func(result []byte) `json:"-"`

	// validated memoises a successful Validate: the engines validate on
	// Submit, and a window-full rejection resubmits the same instruction
	// every cycle — revalidating an immutable instruction each retry was
	// a measurable share of simulation time. Mutating an instruction
	// after validation is a programming error.
	validated bool
}

// Validate checks structural well-formedness of an instruction.
func (in *OffloadInst) Validate() error {
	if in.validated {
		return nil
	}
	switch in.Op {
	case Lock, Unlock:
		if in.Pred.Valid {
			return fmt.Errorf("isa: %s cannot be predicated", in.Op)
		}
		return nil
	case VLoad, VStore, VMaskStore, VMaskLoad, VALU:
		if in.Target == TargetHMC {
			return fmt.Errorf("isa: %s is not an HMC baseline instruction", in.Op)
		}
	case CmpRead, AddImm, CompareSwap:
		if in.Target != TargetHMC {
			return fmt.Errorf("isa: %s only exists in the HMC baseline ISA", in.Op)
		}
	default:
		return fmt.Errorf("isa: unknown op %d", in.Op)
	}
	if in.Pred.Valid {
		if in.Target != TargetHIPE {
			return fmt.Errorf("isa: predication requires the HIPE target, got %s", in.Target)
		}
		if int(in.Pred.Reg) >= NumRegisters {
			return fmt.Errorf("isa: predicate register %d out of range", in.Pred.Reg)
		}
	}
	switch in.Op {
	case VLoad, VStore, VMaskStore, VMaskLoad:
		if in.Size == 0 || in.Size > RegisterBytes {
			return fmt.Errorf("isa: %s size %d outside 1..%d", in.Op, in.Size, RegisterBytes)
		}
		if in.Size%LaneBytes != 0 {
			return fmt.Errorf("isa: %s size %d not lane-aligned", in.Op, in.Size)
		}
	case CmpRead:
		if in.Size == 0 || in.Size > RegisterBytes || in.Size%LaneBytes != 0 {
			return fmt.Errorf("isa: cmpread size %d invalid", in.Size)
		}
		if !in.ALU.IsCompare() {
			return fmt.Errorf("isa: cmpread needs a compare kind, got %s", in.ALU)
		}
		if len(in.Pattern) != 0 && int(in.Size)/LaneBytes%len(in.Pattern) != 0 {
			return fmt.Errorf("isa: cmpread pattern of %d lanes does not tile %d bytes",
				len(in.Pattern), in.Size)
		}
	case VALU:
		if in.ALU == ALUNone {
			return fmt.Errorf("isa: valu without ALU kind")
		}
	}
	// Checked individually (not via a slice literal): Validate runs once
	// per instruction on the submit path and must not allocate.
	if int(in.Dst) >= NumRegisters {
		return fmt.Errorf("isa: register %d out of range (bank has %d)", in.Dst, NumRegisters)
	}
	if int(in.Src1) >= NumRegisters {
		return fmt.Errorf("isa: register %d out of range (bank has %d)", in.Src1, NumRegisters)
	}
	if int(in.Src2) >= NumRegisters {
		return fmt.Errorf("isa: register %d out of range (bank has %d)", in.Src2, NumRegisters)
	}
	in.validated = true
	return nil
}

// String renders a compact disassembly, e.g.
// "hipe vload r3, [0x1000], 256B @nz(r1)".
func (in *OffloadInst) String() string {
	s := fmt.Sprintf("%s %s", in.Target, in.Op)
	switch in.Op {
	case VLoad, VMaskLoad:
		s += fmt.Sprintf(" r%d, [%#x], %dB", in.Dst, in.Addr, in.Size)
	case VStore, VMaskStore:
		s += fmt.Sprintf(" [%#x], r%d, %dB", in.Addr, in.Src1, in.Size)
	case VALU:
		if in.UseImm {
			s += fmt.Sprintf(".%s r%d, r%d, #%d", in.ALU, in.Dst, in.Src1, in.Imm)
		} else {
			s += fmt.Sprintf(".%s r%d, r%d, r%d", in.ALU, in.Dst, in.Src1, in.Src2)
		}
	case CmpRead:
		s += fmt.Sprintf(".%s [%#x], #%d, %dB", in.ALU, in.Addr, in.Imm, in.Size)
	case AddImm:
		s += fmt.Sprintf(" [%#x], #%d, %dB", in.Addr, in.Imm, in.Size)
	case CompareSwap:
		s += fmt.Sprintf(" [%#x], #%d -> #%d", in.Addr, in.Imm, in.Imm2)
	}
	if in.Pred.Valid {
		s += " " + in.Pred.String()
	}
	return s
}
