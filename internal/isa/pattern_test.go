package isa

import "testing"

func TestLaneOpPatternTiles(t *testing.T) {
	// 8 lanes, pattern of 4: lane i compares against pattern[i%4].
	a := make([]byte, 32)
	for i := 0; i < 8; i++ {
		SetLane(a, i, int32(i))
	}
	pattern := []int32{0, 10, 2, 10} // lanes 0,2 match CmpGE at even spots
	dst := make([]byte, 32)
	LaneOpPattern(CmpGE, dst, a, pattern, 32)
	want := []int32{-1, 0, -1, 0, -1, 0, -1, 0}
	for i, w := range want {
		if LaneAt(dst, i) != w {
			t.Fatalf("lane %d = %d, want %d", i, LaneAt(dst, i), w)
		}
	}
	// Arithmetic with pattern.
	LaneOpPattern(Add, dst, a, []int32{100, 200}, 32)
	if LaneAt(dst, 0) != 100 || LaneAt(dst, 1) != 201 || LaneAt(dst, 2) != 102 {
		t.Fatal("pattern add wrong")
	}
}

func TestLaneOpPatternPanics(t *testing.T) {
	a := make([]byte, 8)
	for _, f := range []func(){
		func() { LaneOpPattern(Add, a, a, []int32{1}, 6) },
		func() { LaneOpPattern(Add, a, a, nil, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCmpReadPatternValidation(t *testing.T) {
	ok := OffloadInst{Target: TargetHMC, Op: CmpRead, ALU: CmpGE, Size: 64,
		Pattern: []int32{1, 2, 3, 4}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := OffloadInst{Target: TargetHMC, Op: CmpRead, ALU: CmpGE, Size: 64,
		Pattern: []int32{1, 2, 3}} // 16 lanes not divisible by 3
	if bad.Validate() == nil {
		t.Fatal("non-tiling pattern accepted")
	}
}

func TestVMaskLoadValidationAndDisasm(t *testing.T) {
	in := OffloadInst{Target: TargetHIVE, Op: VMaskLoad, Dst: 2, Addr: 0x300, Size: 256}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := in.String(); got != "hive vmaskload r2, [0x300], 256B" {
		t.Fatalf("disasm = %q", got)
	}
	hmcBad := OffloadInst{Target: TargetHMC, Op: VMaskLoad, Size: 64}
	if hmcBad.Validate() == nil {
		t.Fatal("vmaskload accepted on HMC target")
	}
}
