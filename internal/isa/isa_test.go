package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/hipe-sim/hipe/internal/mem"
)

func TestOpClassStrings(t *testing.T) {
	if IntALU.String() != "int-alu" || Offload.String() != "offload" {
		t.Fatal("op class strings wrong")
	}
	if !strings.Contains(OpClass(200).String(), "200") {
		t.Fatal("unknown class string")
	}
}

func TestMicroOpIsMem(t *testing.T) {
	for _, c := range []OpClass{Load, Store, Offload} {
		if !(&MicroOp{Class: c}).IsMem() {
			t.Errorf("%s not mem", c)
		}
	}
	for _, c := range []OpClass{Nop, IntALU, Branch, VecCmp} {
		if (&MicroOp{Class: c}).IsMem() {
			t.Errorf("%s is mem", c)
		}
	}
}

func TestTargetAndOpStrings(t *testing.T) {
	if TargetHMC.String() != "hmc" || TargetHIVE.String() != "hive" || TargetHIPE.String() != "hipe" {
		t.Fatal("target strings")
	}
	if VLoad.String() != "vload" || CompareSwap.String() != "cas" {
		t.Fatal("op strings")
	}
	if CmpGE.String() != "cmpge" || Mul.String() != "mul" {
		t.Fatal("alu strings")
	}
	if !strings.Contains(Target(9).String(), "9") ||
		!strings.Contains(OffloadOp(99).String(), "99") ||
		!strings.Contains(ALUKind(99).String(), "99") {
		t.Fatal("unknown enum strings")
	}
}

func TestPredicateString(t *testing.T) {
	if (Predicate{}).String() != "" {
		t.Fatal("invalid predicate renders")
	}
	p := Predicate{Valid: true, Reg: 3}
	if p.String() != "@nz(r3)" {
		t.Fatalf("pred = %q", p.String())
	}
	p.WhenZero = true
	if p.String() != "@z(r3)" {
		t.Fatalf("pred = %q", p.String())
	}
}

func validVLoad() OffloadInst {
	return OffloadInst{Target: TargetHIVE, Op: VLoad, Dst: 1, Addr: 0x100, Size: 256}
}

func TestValidateAccepts(t *testing.T) {
	cases := []OffloadInst{
		{Target: TargetHIVE, Op: Lock},
		{Target: TargetHIVE, Op: Unlock},
		validVLoad(),
		{Target: TargetHIVE, Op: VStore, Src1: 2, Addr: 0x40, Size: 64},
		{Target: TargetHIVE, Op: VMaskStore, Src1: 2, Addr: 0x40, Size: 256},
		{Target: TargetHIVE, Op: VALU, ALU: CmpGE, Dst: 2, Src1: 1, UseImm: true, Imm: 5},
		{Target: TargetHIPE, Op: VLoad, Dst: 1, Size: 128, Pred: Predicate{Valid: true, Reg: 2}},
		{Target: TargetHMC, Op: CmpRead, ALU: CmpLT, Addr: 0x200, Size: 256, Imm: 9},
		{Target: TargetHMC, Op: AddImm, Addr: 0, Size: 16, Imm: 1},
		{Target: TargetHMC, Op: CompareSwap, Addr: 0, Imm: 1, Imm2: 2},
	}
	for i, in := range cases {
		in := in
		if err := in.Validate(); err != nil {
			t.Errorf("case %d (%s): %v", i, in.String(), err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []OffloadInst{
		{Target: TargetHMC, Op: VLoad, Size: 64},                                         // vload on HMC
		{Target: TargetHIVE, Op: CmpRead, ALU: CmpEQ, Size: 64},                          // cmpread on HIVE
		{Target: TargetHIVE, Op: VLoad, Size: 0},                                         // zero size
		{Target: TargetHIVE, Op: VLoad, Size: 512},                                       // > register
		{Target: TargetHIVE, Op: VLoad, Size: 6},                                         // not lane aligned
		{Target: TargetHIVE, Op: VALU},                                                   // no ALU kind
		{Target: TargetHMC, Op: CmpRead, ALU: Add, Size: 64},                             // non-compare cmpread
		{Target: TargetHMC, Op: CmpRead, ALU: CmpEQ, Size: 0},                            // bad size
		{Target: TargetHIVE, Op: VLoad, Size: 64, Pred: Predicate{Valid: true}},          // pred on HIVE
		{Target: TargetHIPE, Op: VLoad, Size: 64, Pred: Predicate{Valid: true, Reg: 40}}, // pred reg range
		{Target: TargetHIPE, Op: Lock, Pred: Predicate{Valid: true}},                     // predicated lock
		{Target: TargetHIVE, Op: VLoad, Size: 64, Dst: 36},                               // reg out of range
		{Target: TargetHIVE, Op: OffloadOp(99)},                                          // unknown op
	}
	for i, in := range cases {
		in := in
		if err := in.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, in)
		}
	}
}

func TestDisassembly(t *testing.T) {
	in := OffloadInst{Target: TargetHIPE, Op: VLoad, Dst: 3, Addr: 0x1000, Size: 256,
		Pred: Predicate{Valid: true, Reg: 1}}
	want := "hipe vload r3, [0x1000], 256B @nz(r1)"
	if got := in.String(); got != want {
		t.Fatalf("disasm = %q, want %q", got, want)
	}
	alu := OffloadInst{Target: TargetHIVE, Op: VALU, ALU: And, Dst: 2, Src1: 1, Src2: 0}
	if got := alu.String(); got != "hive valu.and r2, r1, r0" {
		t.Fatalf("disasm = %q", got)
	}
	imm := OffloadInst{Target: TargetHIVE, Op: VALU, ALU: CmpGE, Dst: 2, Src1: 1, UseImm: true, Imm: 7}
	if got := imm.String(); got != "hive valu.cmpge r2, r1, #7" {
		t.Fatalf("disasm = %q", got)
	}
	cr := OffloadInst{Target: TargetHMC, Op: CmpRead, ALU: CmpLT, Addr: 0x40, Imm: 9, Size: 64}
	if got := cr.String(); got != "hmc cmpread.cmplt [0x40], #9, 64B" {
		t.Fatalf("disasm = %q", got)
	}
	st := OffloadInst{Target: TargetHIVE, Op: VStore, Src1: 5, Addr: 0x80, Size: 128}
	if got := st.String(); got != "hive vstore [0x80], r5, 128B" {
		t.Fatalf("disasm = %q", got)
	}
	ai := OffloadInst{Target: TargetHMC, Op: AddImm, Addr: 0x10, Imm: 3, Size: 16}
	if got := ai.String(); got != "hmc addimm [0x10], #3, 16B" {
		t.Fatalf("disasm = %q", got)
	}
	cas := OffloadInst{Target: TargetHMC, Op: CompareSwap, Addr: 0, Imm: 1, Imm2: 2}
	if got := cas.String(); got != "hmc cas [0x0], #1 -> #2" {
		t.Fatalf("disasm = %q", got)
	}
	lk := OffloadInst{Target: TargetHIVE, Op: Lock}
	if got := lk.String(); got != "hive lock" {
		t.Fatalf("disasm = %q", got)
	}
}

func TestLaneAccessors(t *testing.T) {
	b := make([]byte, 16)
	SetLane(b, 0, -7)
	SetLane(b, 3, 123456)
	if LaneAt(b, 0) != -7 || LaneAt(b, 3) != 123456 || LaneAt(b, 1) != 0 {
		t.Fatal("lane accessors wrong")
	}
}

func TestLaneOpCompare(t *testing.T) {
	a := make([]byte, 16)
	c := make([]byte, 16)
	dst := make([]byte, 16)
	for i, v := range []int32{1, 5, 5, 9} {
		SetLane(a, i, v)
	}
	for i, v := range []int32{5, 5, 5, 5} {
		SetLane(c, i, v)
	}
	LaneOp(CmpGE, dst, a, c, 16)
	want := []int32{0, -1, -1, -1}
	for i, w := range want {
		if LaneAt(dst, i) != w {
			t.Fatalf("lane %d = %d, want %d", i, LaneAt(dst, i), w)
		}
	}
	LaneOp(CmpLT, dst, a, c, 16)
	if LaneAt(dst, 0) != -1 || LaneAt(dst, 1) != 0 {
		t.Fatal("cmplt wrong")
	}
	LaneOp(CmpEQ, dst, a, c, 16)
	if LaneAt(dst, 0) != 0 || LaneAt(dst, 1) != -1 {
		t.Fatal("cmpeq wrong")
	}
	LaneOp(CmpNE, dst, a, c, 16)
	if LaneAt(dst, 0) != -1 || LaneAt(dst, 1) != 0 {
		t.Fatal("cmpne wrong")
	}
	LaneOp(CmpLE, dst, a, c, 16)
	if LaneAt(dst, 3) != 0 || LaneAt(dst, 2) != -1 {
		t.Fatal("cmple wrong")
	}
	LaneOp(CmpGT, dst, a, c, 16)
	if LaneAt(dst, 3) != -1 || LaneAt(dst, 2) != 0 {
		t.Fatal("cmpgt wrong")
	}
}

func TestLaneOpArith(t *testing.T) {
	a := make([]byte, 8)
	b := make([]byte, 8)
	dst := make([]byte, 8)
	SetLane(a, 0, 6)
	SetLane(a, 1, -4)
	SetLane(b, 0, 3)
	SetLane(b, 1, 5)
	LaneOp(Add, dst, a, b, 8)
	if LaneAt(dst, 0) != 9 || LaneAt(dst, 1) != 1 {
		t.Fatal("add wrong")
	}
	LaneOp(Sub, dst, a, b, 8)
	if LaneAt(dst, 0) != 3 || LaneAt(dst, 1) != -9 {
		t.Fatal("sub wrong")
	}
	LaneOp(Mul, dst, a, b, 8)
	if LaneAt(dst, 0) != 18 || LaneAt(dst, 1) != -20 {
		t.Fatal("mul wrong")
	}
	LaneOp(And, dst, a, b, 8)
	if LaneAt(dst, 0) != 6&3 {
		t.Fatal("and wrong")
	}
	LaneOp(Or, dst, a, b, 8)
	if LaneAt(dst, 0) != 6|3 {
		t.Fatal("or wrong")
	}
	LaneOp(Xor, dst, a, b, 8)
	if LaneAt(dst, 0) != 6^3 {
		t.Fatal("xor wrong")
	}
}

func TestLaneOpImm(t *testing.T) {
	a := make([]byte, 12)
	dst := make([]byte, 12)
	for i, v := range []int32{2, 24, 50} {
		SetLane(a, i, v)
	}
	LaneOpImm(CmpLT, dst, a, 24, 12)
	if LaneAt(dst, 0) != -1 || LaneAt(dst, 1) != 0 || LaneAt(dst, 2) != 0 {
		t.Fatal("cmplt imm wrong")
	}
	LaneOpImm(Add, dst, a, 10, 12)
	if LaneAt(dst, 2) != 60 {
		t.Fatal("add imm wrong")
	}
}

func TestLaneOpAliasing(t *testing.T) {
	a := make([]byte, 8)
	SetLane(a, 0, 4)
	SetLane(a, 1, 9)
	LaneOpImm(Add, a, a, 1, 8) // dst aliases src
	if LaneAt(a, 0) != 5 || LaneAt(a, 1) != 10 {
		t.Fatal("aliased lane op wrong")
	}
}

func TestLaneOpPanics(t *testing.T) {
	a := make([]byte, 8)
	for _, f := range []func(){
		func() { LaneOp(Add, a, a, a, 6) },
		func() { LaneOpImm(Add, a, a, 1, 7) },
		func() { compare1(Add, 1, 2) },
		func() { arith1(CmpEQ, 1, 2) },
		func() { CompactMask(a, a, 5) },
		func() { ExpandMask(a, a, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIsZero(t *testing.T) {
	b := make([]byte, 64)
	if !IsZero(b, 64) {
		t.Fatal("zero buffer not zero")
	}
	b[63] = 1
	if IsZero(b, 64) {
		t.Fatal("nonzero buffer reported zero")
	}
	if !IsZero(b, 63) {
		t.Fatal("prefix should be zero")
	}
}

func TestMaskBytes(t *testing.T) {
	if MaskBytes(256) != 8 {
		t.Fatalf("MaskBytes(256) = %d", MaskBytes(256))
	}
	if MaskBytes(16) != 1 {
		t.Fatalf("MaskBytes(16) = %d", MaskBytes(16))
	}
	if MaskBytes(4) != 1 {
		t.Fatalf("MaskBytes(4) = %d", MaskBytes(4))
	}
}

func TestCompactExpandRoundTrip(t *testing.T) {
	f := func(pattern []bool) bool {
		n := len(pattern)
		if n == 0 || n > 64 {
			n = 8
		}
		lanes := make([]byte, n*4)
		for i := 0; i < n; i++ {
			if i < len(pattern) && pattern[i] {
				SetLane(lanes, i, -1)
			}
		}
		packed := make([]byte, MaskBytes(uint32(n*4)))
		CompactMask(packed, lanes, n*4)
		expanded := make([]byte, n*4)
		ExpandMask(expanded, packed, n*4)
		// Expanded must equal canonical lanes.
		for i := 0; i < n; i++ {
			want := int32(0)
			if i < len(pattern) && pattern[i] {
				want = -1
			}
			if LaneAt(expanded, i) != want {
				return false
			}
		}
		// Popcount must equal number of true lanes used.
		count := 0
		for i := 0; i < n && i < len(pattern); i++ {
			if pattern[i] {
				count++
			}
		}
		return PopcountMask(packed) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactMaskClearsDst(t *testing.T) {
	lanes := make([]byte, 32)
	packed := []byte{0xFF}
	CompactMask(packed, lanes, 32)
	if packed[0] != 0 {
		t.Fatal("CompactMask did not clear stale bits")
	}
}

func TestMicroOpAddrField(t *testing.T) {
	u := MicroOp{Class: Load, Addr: mem.Addr(0x40), Size: 8}
	if u.Addr != 0x40 || !u.IsMem() {
		t.Fatal("addr field")
	}
}
