package isa

import (
	"encoding/binary"
	"fmt"
)

// The engines execute instructions functionally over byte images so the
// simulated queries compute real answers. Vector registers and DRAM rows
// are treated as sequences of little-endian signed 32-bit lanes.

// LaneAt reads the i-th 32-bit lane of b.
func LaneAt(b []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(b[i*LaneBytes:]))
}

// SetLane writes the i-th 32-bit lane of b.
func SetLane(b []byte, i int, v int32) {
	binary.LittleEndian.PutUint32(b[i*LaneBytes:], uint32(v))
}

// compare1 applies a scalar compare.
func compare1(k ALUKind, a, b int32) bool {
	switch k {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	default:
		panic(fmt.Sprintf("isa: compare1 with non-compare kind %s", k))
	}
}

// arith1 applies a scalar arithmetic/logic op.
func arith1(k ALUKind, a, b int32) int32 {
	switch k {
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	default:
		panic(fmt.Sprintf("isa: arith1 with kind %s", k))
	}
}

// LaneOp computes dst = a op b lane-wise over n bytes. Compare kinds
// produce SIMD-style masks: all-ones lanes on match, zero lanes otherwise.
// dst may alias a or b. n must be lane-aligned and within all slices.
func LaneOp(k ALUKind, dst, a, b []byte, n int) {
	if n%LaneBytes != 0 {
		panic(fmt.Sprintf("isa: LaneOp size %d not lane aligned", n))
	}
	lanes := n / LaneBytes
	if k.IsCompare() {
		for i := 0; i < lanes; i++ {
			if compare1(k, LaneAt(a, i), LaneAt(b, i)) {
				SetLane(dst, i, -1)
			} else {
				SetLane(dst, i, 0)
			}
		}
		return
	}
	for i := 0; i < lanes; i++ {
		SetLane(dst, i, arith1(k, LaneAt(a, i), LaneAt(b, i)))
	}
}

// LaneOpImm computes dst = a op imm lane-wise over n bytes.
func LaneOpImm(k ALUKind, dst, a []byte, imm int32, n int) {
	if n%LaneBytes != 0 {
		panic(fmt.Sprintf("isa: LaneOpImm size %d not lane aligned", n))
	}
	lanes := n / LaneBytes
	if k.IsCompare() {
		for i := 0; i < lanes; i++ {
			if compare1(k, LaneAt(a, i), imm) {
				SetLane(dst, i, -1)
			} else {
				SetLane(dst, i, 0)
			}
		}
		return
	}
	for i := 0; i < lanes; i++ {
		SetLane(dst, i, arith1(k, LaneAt(a, i), imm))
	}
}

// LaneOpPattern computes dst = a op pattern lane-wise over n bytes, with
// the pattern tiled across the lanes (pattern[i % len(pattern)]). This is
// the semantics of an HMC CmpRead whose 16-byte immediate field holds
// per-lane constants.
func LaneOpPattern(k ALUKind, dst, a []byte, pattern []int32, n int) {
	if n%LaneBytes != 0 {
		panic(fmt.Sprintf("isa: LaneOpPattern size %d not lane aligned", n))
	}
	if len(pattern) == 0 {
		panic("isa: empty pattern")
	}
	lanes := n / LaneBytes
	if k.IsCompare() {
		for i := 0; i < lanes; i++ {
			if compare1(k, LaneAt(a, i), pattern[i%len(pattern)]) {
				SetLane(dst, i, -1)
			} else {
				SetLane(dst, i, 0)
			}
		}
		return
	}
	for i := 0; i < lanes; i++ {
		SetLane(dst, i, arith1(k, LaneAt(a, i), pattern[i%len(pattern)]))
	}
}

// IsZero reports whether the first n bytes of b are all zero — the zero
// flag HIPE stores alongside every register write.
func IsZero(b []byte, n int) bool {
	for _, v := range b[:n] {
		if v != 0 {
			return false
		}
	}
	return true
}

// MaskBytes reports the size of a compacted bitmask covering dataBytes of
// 32-bit lanes (one bit per lane, rounded up to whole bytes).
func MaskBytes(dataBytes uint32) uint32 {
	lanes := dataBytes / LaneBytes
	return (lanes + 7) / 8
}

// CompactMask converts SIMD lane masks (from compare ops) into a packed
// bitmask, one bit per lane, LSB-first — the representation the paper's
// column-at-a-time scan stores as its intermediate result.
func CompactMask(dst, lanesrc []byte, dataBytes int) {
	if dataBytes%LaneBytes != 0 {
		panic(fmt.Sprintf("isa: CompactMask size %d not lane aligned", dataBytes))
	}
	lanes := dataBytes / LaneBytes
	for i := range dst[:MaskBytes(uint32(dataBytes))] {
		dst[i] = 0
	}
	for i := 0; i < lanes; i++ {
		if LaneAt(lanesrc, i) != 0 {
			dst[i/8] |= 1 << (i % 8)
		}
	}
}

// ExpandMask is the inverse of CompactMask: packed bits to lane masks.
func ExpandMask(dst, packed []byte, dataBytes int) {
	if dataBytes%LaneBytes != 0 {
		panic(fmt.Sprintf("isa: ExpandMask size %d not lane aligned", dataBytes))
	}
	lanes := dataBytes / LaneBytes
	for i := 0; i < lanes; i++ {
		if packed[i/8]&(1<<(i%8)) != 0 {
			SetLane(dst, i, -1)
		} else {
			SetLane(dst, i, 0)
		}
	}
}

// PopcountMask counts set bits in a packed bitmask.
func PopcountMask(packed []byte) int {
	n := 0
	for _, b := range packed {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}
