package core

import (
	"bytes"
	"testing"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

func newEngine(t *testing.T, cfg Config) (*sim.Engine, *Engine, []byte, *stats.Registry) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	ti := dram.HMC21Timing()
	ti.RefreshInterval = 0
	vaults, err := dram.New(e, mem.HMC21(), ti, reg)
	if err != nil {
		t.Fatal(err)
	}
	links, err := link.New(e, link.Default(), 32, reg)
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, 1<<20)
	eng, err := New(e, cfg, links, vaults, image, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, eng, image, reg
}

// submit posts an instruction ignoring the done callback.
func submit(t *testing.T, eng *Engine, inst *isa.OffloadInst) {
	t.Helper()
	if !eng.Submit(inst, func(sim.Cycle) {}) {
		t.Fatalf("submit refused: %s", inst)
	}
}

func hipeInst(op isa.OffloadOp) *isa.OffloadInst {
	return &isa.OffloadInst{Target: isa.TargetHIPE, Op: op}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultHIPE().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultHIVE().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultHIPE()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = DefaultHIPE()
	bad.Target = isa.TargetHMC
	if bad.Validate() == nil {
		t.Fatal("HMC target accepted")
	}
	bad = DefaultHIPE()
	bad.Width = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}
	bad = DefaultHIPE()
	bad.IntALULatency = 0
	if bad.Validate() == nil {
		t.Fatal("zero latency accepted")
	}
}

func TestLockUnlockRoundTrip(t *testing.T) {
	e, eng, _, reg := newEngine(t, DefaultHIPE())
	var lockAt, unlockAt sim.Cycle
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.Lock},
		func(now sim.Cycle) { lockAt = now })
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.Unlock},
		func(now sim.Cycle) { unlockAt = now })
	e.Run()
	if lockAt == 0 || unlockAt == 0 || unlockAt <= lockAt {
		t.Fatalf("lock at %d, unlock at %d", lockAt, unlockAt)
	}
	if eng.Locked() {
		t.Fatal("engine still locked")
	}
	if reg.Scope("hipe").Get("lock_blocks") != 1 {
		t.Fatal("lock block not counted")
	}
}

func TestVLoadSetsDataAndZeroFlag(t *testing.T) {
	e, eng, image, _ := newEngine(t, DefaultHIPE())
	for i := 0; i < 64; i++ {
		isa.SetLane(image[0x400:], i, int32(i))
	}
	ld := &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 1, Addr: 0x400, Size: 256}
	submit(t, eng, ld)
	// A second load from a zero region to test the zero flag.
	ld2 := &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 2, Addr: 0x800, Size: 256}
	submit(t, eng, ld2)
	e.Run()
	data := eng.RegisterData(1)
	if isa.LaneAt(data, 5) != 5 || isa.LaneAt(data, 63) != 63 {
		t.Fatalf("register data wrong: %d %d", isa.LaneAt(data, 5), isa.LaneAt(data, 63))
	}
	if eng.RegisterZero(1) {
		t.Fatal("nonzero load set zero flag")
	}
	if !eng.RegisterZero(2) {
		t.Fatal("zero load cleared zero flag")
	}
	if eng.RegisterPending(1) || eng.RegisterPending(2) {
		t.Fatal("registers still pending after run")
	}
}

func TestVALUComputesAndSetsFlags(t *testing.T) {
	e, eng, image, _ := newEngine(t, DefaultHIPE())
	for i := 0; i < 64; i++ {
		isa.SetLane(image[0:], i, int32(i)) // 0..63
	}
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	// r1 = r0 >= 32 → half the lanes match → nonzero.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpGE,
		Dst: 1, Src1: 0, UseImm: true, Imm: 32})
	// r2 = r0 >= 100 → no lanes match → zero flag set.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpGE,
		Dst: 2, Src1: 0, UseImm: true, Imm: 100})
	// r3 = r1 AND r2 → all zero.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.And,
		Dst: 3, Src1: 1, Src2: 2})
	e.Run()
	if eng.RegisterZero(1) {
		t.Fatal("r1 should be nonzero")
	}
	if !eng.RegisterZero(2) || !eng.RegisterZero(3) {
		t.Fatal("r2/r3 zero flags wrong")
	}
	r1 := eng.RegisterData(1)
	if isa.LaneAt(r1, 31) != 0 || isa.LaneAt(r1, 32) != -1 {
		t.Fatal("compare lanes wrong")
	}
}

func TestVStoreWritesImageAndDRAM(t *testing.T) {
	e, eng, image, reg := newEngine(t, DefaultHIPE())
	for i := 0; i < 64; i++ {
		isa.SetLane(image[0:], i, 7)
	}
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VStore, Src1: 0, Addr: 0x1000, Size: 256})
	e.Run()
	if isa.LaneAt(image[0x1000:], 63) != 7 {
		t.Fatal("store did not reach the image")
	}
	if reg.Total("dram.", "writes") != 1 {
		t.Fatalf("dram writes = %d", reg.Total("dram.", "writes"))
	}
}

func TestVMaskStoreCompacts(t *testing.T) {
	e, eng, image, _ := newEngine(t, DefaultHIPE())
	for i := 0; i < 64; i++ {
		isa.SetLane(image[0:], i, int32(i%2)) // alternating 0,1
	}
	var got []byte
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpEQ,
		Dst: 1, Src1: 0, UseImm: true, Imm: 1})
	ms := &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VMaskStore, Src1: 1, Addr: 0x2000, Size: 256,
		OnResult: func(r []byte) { got = append([]byte(nil), r...) }}
	submit(t, eng, ms)
	e.Run()
	want := bytes.Repeat([]byte{0xAA}, 8) // odd lanes set
	if !bytes.Equal(got, want) {
		t.Fatalf("mask = %x, want %x", got, want)
	}
	if !bytes.Equal(image[0x2000:0x2008], want) {
		t.Fatalf("image mask = %x", image[0x2000:0x2008])
	}
}

func TestInterlockOverlapsLoads(t *testing.T) {
	// Loads to different vaults issued back-to-back must overlap: the
	// sequencer does not wait for load data unless a consumer needs it.
	e, eng, _, _ := newEngine(t, DefaultHIPE())
	start := sim.Cycle(0)
	var last sim.Cycle
	for i := 0; i < 8; i++ {
		inst := &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad,
			Dst: uint8(i), Addr: mem.Addr(i * 256), Size: 256}
		submit(t, eng, inst)
	}
	done := false
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.Unlock},
		func(now sim.Cycle) { last = now; done = true })
	e.Run()
	if !done {
		t.Fatal("unlock never acknowledged")
	}
	// 8 parallel 280-cycle vault reads + engine overhead: well under the
	// 8*280 = 2240 a serial engine would need.
	if last-start > 1200 {
		t.Fatalf("8 overlapping loads took %d cycles", last)
	}
}

func TestInterlockStallsOnRealDependency(t *testing.T) {
	e, eng, _, reg := newEngine(t, DefaultHIPE())
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	// Consumer of r0 must stall until the load returns.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpGE,
		Dst: 1, Src1: 0, UseImm: true, Imm: 0})
	e.Run()
	if reg.Scope("hipe").Get("interlock_stall_cycles") == 0 {
		t.Fatal("no interlock stalls recorded for a real dependency")
	}
}

func TestPredicationSquashesOnZeroFlag(t *testing.T) {
	e, eng, image, reg := newEngine(t, DefaultHIPE())
	// Region A (0x0): all zeros → compare produces zero mask → z flag.
	// Region B (0x400): values 1 → compare matches.
	for i := 0; i < 64; i++ {
		isa.SetLane(image[0x400:], i, 1)
	}
	// Load A, compare→r1 (zero), predicated load of 0x800 on r1 nonzero:
	// must squash.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpEQ,
		Dst: 1, Src1: 0, UseImm: true, Imm: 1})
	squashedLoad := &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 2,
		Addr: 0x800, Size: 256, Pred: isa.Predicate{Valid: true, Reg: 1, WhenZero: false}}
	submit(t, eng, squashedLoad)
	// Load B, compare→r4 (nonzero), predicated load executes.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 3, Addr: 0x400, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpEQ,
		Dst: 4, Src1: 3, UseImm: true, Imm: 1})
	executedLoad := &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 5,
		Addr: 0x400, Size: 256, Pred: isa.Predicate{Valid: true, Reg: 4, WhenZero: false}}
	submit(t, eng, executedLoad)
	e.Run()
	sc := reg.Scope("hipe")
	if sc.Get("squashed") != 1 || sc.Get("squashed_loads") != 1 {
		t.Fatalf("squashed = %d", sc.Get("squashed"))
	}
	if sc.Get("squashed_dram_bytes") != 256 {
		t.Fatalf("squashed bytes = %d", sc.Get("squashed_dram_bytes"))
	}
	// The executed predicated load must have real data.
	if eng.RegisterZero(5) {
		t.Fatal("predicated load that should execute was squashed")
	}
	// The squashed destination register must remain untouched (zero).
	if !eng.RegisterZero(2) {
		t.Fatal("squashed load modified its destination")
	}
	// DRAM reads: 3 loads executed, 1 squashed.
	if reg.Total("dram.", "reads") != 3 {
		t.Fatalf("dram reads = %d, want 3", reg.Total("dram.", "reads"))
	}
}

func TestPredicationWhenZeroVariant(t *testing.T) {
	e, eng, _, reg := newEngine(t, DefaultHIPE())
	// r0 loads zeros → zero flag set → WhenZero predicate executes.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.Add,
		Dst: 1, Src1: 0, UseImm: true, Imm: 1,
		Pred: isa.Predicate{Valid: true, Reg: 0, WhenZero: true}})
	e.Run()
	if reg.Scope("hipe").Get("squashed") != 0 {
		t.Fatal("when-zero predicate squashed on a zero register")
	}
	if eng.RegisterZero(1) {
		t.Fatal("predicated add did not execute")
	}
}

func TestPredicateStallCountsAsDataDependency(t *testing.T) {
	e, eng, _, reg := newEngine(t, DefaultHIPE())
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	// Predicated on r0 which is pending: the predication match logic must
	// wait for the flag — the cost HIPE pays vs HIVE.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 1, Addr: 0x400,
		Size: 256, Pred: isa.Predicate{Valid: true, Reg: 0, WhenZero: true}})
	e.Run()
	if reg.Scope("hipe").Get("predicate_stall_cycles") == 0 {
		t.Fatal("no predicate stalls recorded")
	}
}

func TestHIVEModeRejectsPredication(t *testing.T) {
	_, eng, _, _ := newEngine(t, DefaultHIVE())
	defer func() {
		if recover() == nil {
			t.Fatal("predicated instruction on HIVE did not panic")
		}
	}()
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad, Dst: 0, Size: 256,
		Pred: isa.Predicate{Valid: true, Reg: 1}}, func(sim.Cycle) {})
}

func TestWrongTargetPanics(t *testing.T) {
	_, eng, _, _ := newEngine(t, DefaultHIPE())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong target did not panic")
		}
	}()
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock}, func(sim.Cycle) {})
}

func TestUnlockWaitsForStores(t *testing.T) {
	e, eng, _, _ := newEngine(t, DefaultHIPE())
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.Lock})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VStore, Src1: 0, Addr: 0x1000, Size: 256})
	var unlockAt sim.Cycle
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.Unlock},
		func(now sim.Cycle) { unlockAt = now })
	e.Run()
	// Unlock must be later than a load (280) + store (208) chain plus
	// link traversal: conservatively > 450.
	if unlockAt < 450 {
		t.Fatalf("unlock acked at %d; did not wait for the block", unlockAt)
	}
}

func TestRowStraddlingLoadFansOut(t *testing.T) {
	e, eng, image, reg := newEngine(t, DefaultHIPE())
	isa.SetLane(image[0x80:], 0, 5)
	// 256B load at offset 0x80 crosses a row boundary: two vault accesses.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 0x80, Size: 256})
	e.Run()
	if reg.Total("dram.", "reads") != 2 {
		t.Fatalf("straddling load issued %d reads, want 2", reg.Total("dram.", "reads"))
	}
	if isa.LaneAt(eng.RegisterData(0), 0) != 5 {
		t.Fatal("straddling load data wrong")
	}
}

func TestQueueDepthAccessor(t *testing.T) {
	_, eng, _, _ := newEngine(t, DefaultHIPE())
	if eng.QueueDepth() != 0 {
		t.Fatal("fresh engine has queued instructions")
	}
}
