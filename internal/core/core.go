// Package core implements the paper's contribution: the HIPE engine — an
// instruction sequencer in the HMC logic layer with a 36×256 B
// interlocked register bank, unified vector functional units, and the
// predication match logic that turns control-flow dependencies into
// data-flow dependencies inside the memory.
//
// The same machinery, with predication disabled, is the balanced HIVE
// design the paper evaluates as prior work (DATE 2016, resized to 256 B
// operands and 36 registers); the internal/hive package instantiates that
// mode.
//
// Mechanism summary (paper §III):
//
//   - Instructions arrive from the processor over the SerDes links into
//     an instruction buffer and execute in order at the 1 GHz engine
//     clock.
//   - Three instruction classes: lock/unlock (register-bank ownership),
//     load/store (DRAM ↔ register bank), and ALU operations.
//   - The register bank is interlocked: a load marks its destination
//     pending and execution continues; only an instruction that *uses* a
//     pending register stalls. This overlaps computation with DRAM
//     accesses.
//   - Every register write also stores a zero flag. A HIPE instruction
//     may carry a predicate naming a register and a wanted flag value;
//     the predication match logic squashes the instruction (no DRAM
//     access, no FU occupancy — one sequencer slot only) when the flag
//     does not match. Waiting for the predicate register's flag is a real
//     data dependency and is the 15% performance cost the paper reports
//     against HIVE; the squashed DRAM reads are the energy win.
package core

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config parameterises the engine.
type Config struct {
	// Name is the stats scope ("hipe", "hive").
	Name string
	// Target declares which ISA the engine accepts; predication is only
	// legal when Target == isa.TargetHIPE.
	Target isa.Target

	// ClockDivider is CPU cycles per engine cycle (2 ⇒ 1 GHz under the
	// paper's 2 GHz core).
	ClockDivider sim.Cycle
	// Width is instructions issued per engine cycle.
	Width int

	// Functional-unit latencies in CPU cycles (Table I).
	IntALULatency sim.Cycle // 2
	IntMulLatency sim.Cycle // 6
	IntDivLatency sim.Cycle // 40
	FPALULatency  sim.Cycle // 10
	FPMulLatency  sim.Cycle // 10
	FPDivLatency  sim.Cycle // 40

	// InstructionVault routes instruction packets on the links (all
	// engine instructions share one ordered path to the sequencer).
	InstructionVault uint32

	// PredExtraSlots is the additional sequencer occupancy of a
	// predicated instruction: the predication match logic reads the
	// predicate register's zero flag through a dedicated port before the
	// instruction may issue, costing extra engine cycles. This — plus
	// the stalls waiting for flags of in-flight producers — is the
	// "additional data dependencies" cost the paper measures as HIPE
	// losing ~15% against HIVE.
	PredExtraSlots int

	// ZeroingSquash makes a squashed predicated instruction zero its
	// destination register and set its zero flag (AVX-512 zeroing-mask
	// style) instead of leaving it unchanged. This lets plans chain
	// predicates (stage 3 predicated on stage 2's result even when stage
	// 2 was itself squashed) without reading stale flags. The paper does
	// not pin this down; the ablation bench compares both.
	ZeroingSquash bool
}

// DefaultHIPE returns the paper's HIPE engine configuration.
func DefaultHIPE() Config {
	return Config{
		Name:          "hipe",
		Target:        isa.TargetHIPE,
		ClockDivider:  2,
		Width:         2,
		IntALULatency: 2, IntMulLatency: 6, IntDivLatency: 40,
		FPALULatency: 10, FPMulLatency: 10, FPDivLatency: 40,
		PredExtraSlots: 1,
		ZeroingSquash:  true,
	}
}

// DefaultHIVE returns the balanced HIVE design the paper evaluates
// (identical resources, no predication).
func DefaultHIVE() Config {
	c := DefaultHIPE()
	c.Name = "hive"
	c.Target = isa.TargetHIVE
	return c
}

// Validate rejects broken configurations.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: empty name")
	}
	if c.Target != isa.TargetHIVE && c.Target != isa.TargetHIPE {
		return fmt.Errorf("core: target %s is not an engine ISA", c.Target)
	}
	if c.ClockDivider == 0 || c.Width <= 0 {
		return fmt.Errorf("core: bad clocking %+v", c)
	}
	for _, l := range []sim.Cycle{c.IntALULatency, c.IntMulLatency, c.IntDivLatency,
		c.FPALULatency, c.FPMulLatency, c.FPDivLatency} {
		if l == 0 {
			return fmt.Errorf("core: zero FU latency")
		}
	}
	return nil
}

// register is one entry of the interlocked register bank.
type register struct {
	data    [isa.RegisterBytes]byte
	zero    bool
	pending bool
}

// rowFetch tracks one logic-layer row read and the mask loads waiting on
// it. A superseded fetch (the buffer moved to another row) still
// completes its own waiters when its DRAM read returns. Fetches are
// pooled: one returns to the free list once it is both finished and no
// longer the engine's current read buffer.
type rowFetch struct {
	e       *Engine
	row     mem.Addr
	done    bool
	doneAt  sim.Cycle
	waiting []func(now sim.Cycle)
	doneFn  func(now sim.Cycle) // pre-bound DRAM completion
}

func (f *rowFetch) fetchDone(now sim.Cycle) {
	f.done = true
	f.doneAt = now
	for _, wfn := range f.waiting {
		wfn(now)
	}
	f.waiting = f.waiting[:0]
	if f.e.maskRead != f {
		// Superseded while in flight: nothing references it any more.
		f.e.rfFree = append(f.e.rfFree, f)
	}
}

// queued is one buffered instruction plus its link-level context.
type queued struct {
	inst *isa.OffloadInst
	op   *subOp
}

// complete releases the instruction's link context; for acknowledged
// instructions (Unlock) it serialises the response to the CPU.
func (q queued) complete() {
	op := q.op
	if op.acked {
		// The response packet releases the op at delivery.
		op.pkt.Complete()
		return
	}
	op.release()
}

// subOp is one pooled Submit context: the instruction's link packet and
// the pre-bound callbacks for its cube arrival and (for acknowledged
// instructions) its response delivery.
type subOp struct {
	e     *Engine
	inst  *isa.OffloadInst
	done  func(now sim.Cycle)
	acked bool
	pkt   link.Packet

	execFn    func(p *link.Packet)
	deliverFn func(now sim.Cycle)
}

// exec runs cube-side on instruction arrival: enter the in-order queue.
func (op *subOp) exec(*link.Packet) {
	op.e.enqueue(queued{inst: op.inst, op: op})
}

// deliver fires requester-side when an acknowledgement arrives.
func (op *subOp) deliver(now sim.Cycle) {
	done := op.done
	op.release()
	if done != nil {
		done(now)
	}
}

func (op *subOp) release() {
	op.inst, op.done = nil, nil
	op.e.subFree = append(op.e.subFree, op)
}

// ldOp is one pooled vector-load completion: fills the destination
// register from the image when the DRAM fan-out finishes.
type ldOp struct {
	e    *Engine
	dst  *register
	addr mem.Addr
	size uint32
	fn   func(now sim.Cycle) // pre-bound completion
}

func (op *ldOp) complete(sim.Cycle) {
	dst := op.dst
	copy(dst.data[:op.size], op.e.image[op.addr:uint64(op.addr)+uint64(op.size)])
	dst.zero = isa.IsZero(dst.data[:], int(op.size))
	dst.pending = false
	op.dst = nil
	op.e.ldFree = append(op.e.ldFree, op)
}

// mlOp is one pooled mask-load fill: expands the packed bitmask into
// the destination register when its row data is available.
type mlOp struct {
	e    *Engine
	dst  *register
	addr mem.Addr
	nb   uint32
	size uint32
	fn   func(now sim.Cycle) // pre-bound fill
}

func (op *mlOp) fill(sim.Cycle) {
	dst := op.dst
	packed := op.e.image[op.addr : uint64(op.addr)+uint64(op.nb)]
	isa.ExpandMask(dst.data[:], packed, int(op.size))
	dst.zero = isa.IsZero(dst.data[:], int(op.size))
	dst.pending = false
	op.dst = nil
	op.e.mlFree = append(op.e.mlFree, op)
}

// aluOp is one pooled ALU completion: the result buffer plus the
// register writeback scheduled after the FU latency.
type aluOp struct {
	e   *Engine
	dst *register
	buf [isa.RegisterBytes]byte
}

// OnEvent implements sim.Handler: the FU latency elapsed; commit the
// result.
func (op *aluOp) OnEvent(sim.Cycle, uint64) {
	dst := op.dst
	copy(dst.data[:], op.buf[:])
	dst.zero = isa.IsZero(dst.data[:], len(dst.data))
	dst.pending = false
	op.dst = nil
	op.e.aluFree = append(op.e.aluFree, op)
}

// fanOp tracks one (possibly row-straddling) DRAM fan-out: the chunk
// requests share one reusable request struct (the vault consumes each
// synchronously), and the last completion forwards to done.
type fanOp struct {
	e         *Engine
	remaining int
	done      func(now sim.Cycle)
	req       mem.Request
	chunkFn   func(now sim.Cycle) // pre-bound per-chunk completion
}

func (op *fanOp) chunkDone(now sim.Cycle) {
	op.remaining--
	if op.remaining == 0 {
		done := op.done
		op.done = nil
		op.e.fanFree = append(op.e.fanFree, op)
		done(now)
	}
}

// Engine is a HIPE (or HIVE) logic-layer engine.
type Engine struct {
	cfg    Config
	engine *sim.Engine
	links  *link.Controller
	vaults *dram.HMC
	geom   mem.Geometry
	image  []byte

	regs  [isa.NumRegisters]register
	queue sim.Queue[queued]

	locked            bool
	outstandingStores int
	domain            *sim.ClockDomain

	// Free lists for the pooled event objects of the hot instruction
	// path, plus pre-bound shared callbacks and the mask scratch buffer
	// (valid only within one VMaskStore; OnResult consumers compare and
	// discard).
	subFree        []*subOp
	ldFree         []*ldOp
	mlFree         []*mlOp
	aluFree        []*aluOp
	fanFree        []*fanOp
	rfFree         []*rowFetch
	storeDrainedFn func(now sim.Cycle)
	maskScratch    [isa.RegisterBytes / 8]byte

	// maskBuf is the engine's bitmask write-combine buffer: one DRAM row
	// that accumulates VMaskStore output, so that 8-byte mask pieces do
	// not each pay a closed-page activation. Dirty contents flush as one
	// row write when the row changes or a lock block ends.
	maskBuf struct {
		valid bool
		dirty bool
		row   mem.Addr
	}
	// maskRead is the matching read-side row buffer: a VMaskLoad miss
	// fetches the whole row once and later same-row loads are served
	// from the logic layer (coalescing onto an in-flight fetch).
	maskRead *rowFetch

	instructions   *stats.Counter
	loads          *stats.Counter
	stores         *stats.Counter
	aluOps         *stats.Counter
	squashed       *stats.Counter
	squashedLoads  *stats.Counter
	squashedBytes  *stats.Counter
	interlockStall *stats.Counter
	predStall      *stats.Counter
	lockBlocks     *stats.Counter
	dramReadBytes  *stats.Counter
	dramWriteBytes *stats.Counter
	maskBufHits    *stats.Counter
	maskBufMisses  *stats.Counter
	maskBufFlushes *stats.Counter
}

// New builds an engine over the DRAM and link models. image is the
// functional backing store shared with the rest of the machine.
func New(engine *sim.Engine, cfg Config, links *link.Controller, vaults *dram.HMC, image []byte, reg *stats.Registry) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		engine: engine,
		links:  links,
		vaults: vaults,
		geom:   vaults.Geom,
		image:  image,
	}
	for i := range e.regs {
		e.regs[i].zero = true // fresh registers hold all-zero data
	}
	sc := reg.Scope(cfg.Name)
	e.instructions = sc.Counter("instructions")
	e.loads = sc.Counter("vloads")
	e.stores = sc.Counter("vstores")
	e.aluOps = sc.Counter("alu_ops")
	e.squashed = sc.Counter("squashed")
	e.squashedLoads = sc.Counter("squashed_loads")
	e.squashedBytes = sc.Counter("squashed_dram_bytes")
	e.interlockStall = sc.Counter("interlock_stall_cycles")
	e.predStall = sc.Counter("predicate_stall_cycles")
	e.lockBlocks = sc.Counter("lock_blocks")
	e.dramReadBytes = sc.Counter("dram_read_bytes")
	e.dramWriteBytes = sc.Counter("dram_write_bytes")
	e.maskBufHits = sc.Counter("maskbuf_hits")
	e.maskBufMisses = sc.Counter("maskbuf_misses")
	e.maskBufFlushes = sc.Counter("maskbuf_flushes")
	e.domain = sim.NewClockDomain(engine, cfg.ClockDivider, e)
	e.storeDrainedFn = func(sim.Cycle) { e.outstandingStores-- }
	return e, nil
}

// Pool accessors: each draws a free object or constructs one with its
// callbacks pre-bound (a one-time cost per pooled object).

func (e *Engine) getSub() *subOp {
	if n := len(e.subFree); n > 0 {
		op := e.subFree[n-1]
		e.subFree = e.subFree[:n-1]
		return op
	}
	op := &subOp{e: e}
	op.execFn = op.exec
	op.deliverFn = op.deliver
	return op
}

func (e *Engine) getLd() *ldOp {
	if n := len(e.ldFree); n > 0 {
		op := e.ldFree[n-1]
		e.ldFree = e.ldFree[:n-1]
		return op
	}
	op := &ldOp{e: e}
	op.fn = op.complete
	return op
}

func (e *Engine) getMl() *mlOp {
	if n := len(e.mlFree); n > 0 {
		op := e.mlFree[n-1]
		e.mlFree = e.mlFree[:n-1]
		return op
	}
	op := &mlOp{e: e}
	op.fn = op.fill
	return op
}

func (e *Engine) getAlu() *aluOp {
	if n := len(e.aluFree); n > 0 {
		op := e.aluFree[n-1]
		e.aluFree = e.aluFree[:n-1]
		return op
	}
	return &aluOp{e: e}
}

func (e *Engine) getFan() *fanOp {
	if n := len(e.fanFree); n > 0 {
		op := e.fanFree[n-1]
		e.fanFree = e.fanFree[:n-1]
		return op
	}
	op := &fanOp{e: e}
	op.chunkFn = op.chunkDone
	return op
}

func (e *Engine) getRowFetch(row mem.Addr) *rowFetch {
	var f *rowFetch
	if n := len(e.rfFree); n > 0 {
		f = e.rfFree[n-1]
		e.rfFree = e.rfFree[:n-1]
	} else {
		f = &rowFetch{e: e}
		f.doneFn = f.fetchDone
	}
	f.row = row
	f.done = false
	f.doneAt = 0
	f.waiting = f.waiting[:0]
	return f
}

// Submit implements the processor offload port. Unlock returns a
// response to the CPU (the block-completion acknowledgement that orders
// later bitmask reads); all other instructions — including Lock, since a
// single-host system needs no grant message — are posted: the done
// callback fires as soon as the instruction has left the core, which is
// what lets the processor stream whole lock blocks back to back while
// the engine's in-order queue serialises their execution.
func (e *Engine) Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool {
	if inst.Target != e.cfg.Target {
		panic(fmt.Sprintf("core %s: wrong target %s", e.cfg.Name, inst.Target))
	}
	if err := inst.Validate(); err != nil {
		panic("core: invalid instruction: " + err.Error())
	}
	acked := inst.Op == isa.Unlock
	op := e.getSub()
	op.inst = inst
	op.acked = acked
	op.pkt = link.Packet{
		Vault:       e.cfg.InstructionVault,
		ReqPayload:  0, // one 16 B instruction packet
		RespPayload: 0, // lock/unlock acks are header-only
		Execute:     op.execFn,
	}
	if acked {
		op.done = done
		op.pkt.Done = op.deliverFn
	}
	e.links.Send(&op.pkt)
	if !acked && done != nil {
		// Posted: the CPU retires the µop once the packet is on its way.
		e.engine.AfterCall(1, done)
	}
	return true
}

func (e *Engine) enqueue(q queued) {
	e.queue.Push(q)
	e.domain.Kick()
}

// Tick implements sim.Ticker: one engine cycle of in-order issue. A
// predicated instruction costs extra issue slots (the predication match
// logic's flag read).
func (e *Engine) Tick(now sim.Cycle) bool {
	issued := 0
	for issued < e.cfg.Width {
		if e.queue.Len() == 0 {
			break
		}
		head := *e.queue.Front()
		cost := 1
		if head.inst.Pred.Valid {
			cost += e.cfg.PredExtraSlots
		}
		if issued+cost > e.cfg.Width && issued > 0 {
			break // does not fit in this cycle's remaining slots
		}
		if !e.canIssue(head.inst, now) {
			break
		}
		e.queue.Pop()
		e.issue(head, now)
		issued += cost
	}
	return e.queue.Len() > 0
}

// canIssue applies the interlock and predication-readiness rules.
func (e *Engine) canIssue(inst *isa.OffloadInst, now sim.Cycle) bool {
	if inst.Pred.Valid && e.regs[inst.Pred.Reg].pending {
		// Predication match logic needs the flag: data dependency.
		e.predStall.Inc()
		return false
	}
	switch inst.Op {
	case isa.Lock:
		return true
	case isa.Unlock:
		// Unlock drains the block: every register write completed, the
		// mask buffer flushed, and every store accepted by DRAM.
		if e.maskBuf.dirty {
			e.flushMaskBuf()
			e.interlockStall.Inc()
			return false
		}
		if e.outstandingStores > 0 {
			e.interlockStall.Inc()
			return false
		}
		for i := range e.regs {
			if e.regs[i].pending {
				e.interlockStall.Inc()
				return false
			}
		}
		return true
	case isa.VLoad, isa.VMaskLoad:
		if e.regs[inst.Dst].pending {
			e.interlockStall.Inc()
			return false
		}
		return true
	case isa.VStore, isa.VMaskStore:
		if e.regs[inst.Src1].pending {
			e.interlockStall.Inc()
			return false
		}
		return true
	case isa.VALU:
		if e.regs[inst.Dst].pending || e.regs[inst.Src1].pending ||
			(!inst.UseImm && e.regs[inst.Src2].pending) {
			e.interlockStall.Inc()
			return false
		}
		return true
	default:
		panic(fmt.Sprintf("core: cannot issue %s", inst.Op))
	}
}

// issue executes one instruction (or squashes it under predication).
func (e *Engine) issue(q queued, now sim.Cycle) {
	inst := q.inst
	e.instructions.Inc()

	if inst.Pred.Valid {
		flag := e.regs[inst.Pred.Reg].zero
		if flag != inst.Pred.WhenZero {
			// Predicate mismatch: squash. One sequencer slot consumed,
			// no DRAM traffic, no FU occupancy.
			e.squashed.Inc()
			switch inst.Op {
			case isa.VLoad, isa.VMaskLoad:
				e.squashedLoads.Inc()
				if inst.Op == isa.VLoad {
					e.squashedBytes.Add(uint64(inst.Size))
				} else {
					e.squashedBytes.Add(uint64(isa.MaskBytes(inst.Size)))
				}
			}
			if e.cfg.ZeroingSquash {
				switch inst.Op {
				case isa.VLoad, isa.VMaskLoad, isa.VALU:
					dst := &e.regs[inst.Dst]
					dst.data = [isa.RegisterBytes]byte{}
					dst.zero = true
				}
			}
			q.complete()
			return
		}
	}

	switch inst.Op {
	case isa.Lock:
		e.locked = true
		e.lockBlocks.Inc()
		q.complete()

	case isa.Unlock:
		e.locked = false
		q.complete()

	case isa.VLoad:
		e.loads.Inc()
		e.dramReadBytes.Add(uint64(inst.Size))
		dst := &e.regs[inst.Dst]
		dst.pending = true
		op := e.getLd()
		op.dst, op.addr, op.size = dst, inst.Addr, inst.Size
		e.fanOut(inst.Addr, inst.Size, mem.Read, op.fn)
		q.complete()

	case isa.VMaskLoad:
		e.loads.Inc()
		nb := isa.MaskBytes(inst.Size)
		dst := &e.regs[inst.Dst]
		dst.pending = true
		op := e.getMl()
		op.dst, op.addr, op.nb, op.size = dst, inst.Addr, nb, inst.Size
		row := e.geom.RowBase(inst.Addr)
		switch {
		case e.maskBuf.valid && e.maskBuf.row == row:
			// Forwarded from the write-combine buffer: no DRAM access.
			e.maskBufHits.Inc()
			e.engine.ScheduleCall(now+e.cfg.ClockDivider, op.fn)
		case e.maskRead != nil && e.maskRead.row == row:
			e.maskBufHits.Inc()
			f := e.maskRead
			if !f.done {
				// The row fetch is still in flight: coalesce onto it.
				f.waiting = append(f.waiting, op.fn)
				break
			}
			at := now + e.cfg.ClockDivider
			if f.doneAt > at {
				at = f.doneAt
			}
			e.engine.ScheduleCall(at, op.fn)
		default:
			// Miss: fetch the whole row once into the logic layer.
			e.maskBufMisses.Inc()
			e.dramReadBytes.Add(uint64(e.geom.RowBytes))
			if old := e.maskRead; old != nil && old.done {
				// The superseded fetch has completed its waiters; it
				// becomes reusable the moment it loses currency.
				e.rfFree = append(e.rfFree, old)
			}
			f := e.getRowFetch(row)
			f.waiting = append(f.waiting, op.fn)
			e.maskRead = f
			e.fanOut(row, e.geom.RowBytes, mem.Read, f.doneFn)
		}
		q.complete()

	case isa.VStore:
		e.stores.Inc()
		e.dramWriteBytes.Add(uint64(inst.Size))
		src := &e.regs[inst.Src1]
		copy(e.image[inst.Addr:uint64(inst.Addr)+uint64(inst.Size)], src.data[:inst.Size])
		e.outstandingStores++
		e.fanOut(inst.Addr, inst.Size, mem.Write, e.storeDrainedFn)
		q.complete()

	case isa.VMaskStore:
		e.stores.Inc()
		src := &e.regs[inst.Src1]
		nb := isa.MaskBytes(inst.Size)
		mask := e.maskScratch[:nb]
		isa.CompactMask(mask, src.data[:], int(inst.Size))
		copy(e.image[inst.Addr:uint64(inst.Addr)+uint64(nb)], mask)
		if inst.OnResult != nil {
			inst.OnResult(mask)
		}
		// Accumulate in the mask write-combine buffer; the row flushes
		// to DRAM when the target row changes or at unlock.
		row := e.geom.RowBase(inst.Addr)
		if e.maskBuf.valid && e.maskBuf.row != row && e.maskBuf.dirty {
			e.flushMaskBuf()
		}
		e.maskBuf.valid = true
		e.maskBuf.row = row
		e.maskBuf.dirty = true
		q.complete()

	case isa.VALU:
		e.aluOps.Inc()
		dst := &e.regs[inst.Dst]
		src1 := &e.regs[inst.Src1]
		n := int(isa.RegisterBytes)
		op := e.getAlu()
		if inst.UseImm {
			isa.LaneOpImm(inst.ALU, op.buf[:], src1.data[:], inst.Imm, n)
		} else {
			isa.LaneOp(inst.ALU, op.buf[:], src1.data[:], e.regs[inst.Src2].data[:], n)
		}
		dst.pending = true
		op.dst = dst
		e.engine.ScheduleEvent(now+e.aluLatency(inst), op, 0)
		q.complete()

	default:
		panic(fmt.Sprintf("core: cannot execute %s", inst.Op))
	}
}

// aluLatency maps an ALU kind to its Table I latency.
func (e *Engine) aluLatency(inst *isa.OffloadInst) sim.Cycle {
	if inst.FP {
		switch inst.ALU {
		case isa.Mul:
			return e.cfg.FPMulLatency
		default:
			return e.cfg.FPALULatency
		}
	}
	switch inst.ALU {
	case isa.Mul:
		return e.cfg.IntMulLatency
	default:
		return e.cfg.IntALULatency
	}
}

// flushMaskBuf writes the mask buffer's row to DRAM as one row-sized
// store.
func (e *Engine) flushMaskBuf() {
	e.maskBufFlushes.Inc()
	e.maskBuf.dirty = false
	e.dramWriteBytes.Add(uint64(e.geom.RowBytes))
	e.outstandingStores++
	e.fanOut(e.maskBuf.row, e.geom.RowBytes, mem.Write, e.storeDrainedFn)
}

// fanOut issues the DRAM accesses for a (possibly row-straddling) engine
// memory operation and invokes done when all complete. The row walk is
// inlined (no chunk slice) and every chunk reuses the fan-out's one
// request struct: the vault consumes a request synchronously, retaining
// only its Done callback.
func (e *Engine) fanOut(addr mem.Addr, size uint32, kind mem.Kind, done func(now sim.Cycle)) {
	rowBytes := mem.Addr(e.geom.RowBytes)
	// First walk: count the row-contained chunks.
	n := 0
	for a, s := addr, size; s > 0; {
		c := uint32(e.geom.RowBase(a) + rowBytes - a)
		if c > s {
			c = s
		}
		n++
		a += mem.Addr(c)
		s -= c
	}
	op := e.getFan()
	op.remaining = n
	op.done = done
	// Second walk: issue the accesses.
	for a, s := addr, size; s > 0; {
		c := uint32(e.geom.RowBase(a) + rowBytes - a)
		if c > s {
			c = s
		}
		op.req = mem.Request{Addr: a, Size: c, Kind: kind, Done: op.chunkFn}
		e.vaults.Access(&op.req)
		a += mem.Addr(c)
		s -= c
	}
}

// Reset returns the engine to its post-New state: registers zeroed
// (with zero flags set, as on a fresh bank), queue empty, no lock held,
// mask buffers invalidated, clock domain never ticked. Counters are
// zeroed by the registry reset the machine performs alongside.
func (e *Engine) Reset() {
	for i := range e.regs {
		e.regs[i] = register{zero: true}
	}
	e.queue.Reset()
	e.locked = false
	e.outstandingStores = 0
	e.maskBuf.valid, e.maskBuf.dirty, e.maskBuf.row = false, false, 0
	e.maskRead = nil
	e.domain.Reset()
}

// Locked reports whether a lock block is open (for tests).
func (e *Engine) Locked() bool { return e.locked }

// ZeroingSquash reports whether squashed predicated instructions zero
// their destination register (Config.ZeroingSquash). Plans that
// accumulate through predicated temporaries are only correct under
// zeroing-mask semantics and check this before compiling.
func (e *Engine) ZeroingSquash() bool { return e.cfg.ZeroingSquash }

// RegisterData returns a copy of a register's contents (for tests).
func (e *Engine) RegisterData(i int) []byte {
	out := make([]byte, isa.RegisterBytes)
	copy(out, e.regs[i].data[:])
	return out
}

// RegisterZero reports a register's zero flag (for tests).
func (e *Engine) RegisterZero(i int) bool { return e.regs[i].zero }

// RegisterPending reports whether a register is interlocked (for tests).
func (e *Engine) RegisterPending(i int) bool { return e.regs[i].pending }

// QueueDepth reports buffered instructions (for tests).
func (e *Engine) QueueDepth() int { return e.queue.Len() }
