// Package core implements the paper's contribution: the HIPE engine — an
// instruction sequencer in the HMC logic layer with a 36×256 B
// interlocked register bank, unified vector functional units, and the
// predication match logic that turns control-flow dependencies into
// data-flow dependencies inside the memory.
//
// The same machinery, with predication disabled, is the balanced HIVE
// design the paper evaluates as prior work (DATE 2016, resized to 256 B
// operands and 36 registers); the internal/hive package instantiates that
// mode.
//
// Mechanism summary (paper §III):
//
//   - Instructions arrive from the processor over the SerDes links into
//     an instruction buffer and execute in order at the 1 GHz engine
//     clock.
//   - Three instruction classes: lock/unlock (register-bank ownership),
//     load/store (DRAM ↔ register bank), and ALU operations.
//   - The register bank is interlocked: a load marks its destination
//     pending and execution continues; only an instruction that *uses* a
//     pending register stalls. This overlaps computation with DRAM
//     accesses.
//   - Every register write also stores a zero flag. A HIPE instruction
//     may carry a predicate naming a register and a wanted flag value;
//     the predication match logic squashes the instruction (no DRAM
//     access, no FU occupancy — one sequencer slot only) when the flag
//     does not match. Waiting for the predicate register's flag is a real
//     data dependency and is the 15% performance cost the paper reports
//     against HIVE; the squashed DRAM reads are the energy win.
package core

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config parameterises the engine.
type Config struct {
	// Name is the stats scope ("hipe", "hive").
	Name string
	// Target declares which ISA the engine accepts; predication is only
	// legal when Target == isa.TargetHIPE.
	Target isa.Target

	// ClockDivider is CPU cycles per engine cycle (2 ⇒ 1 GHz under the
	// paper's 2 GHz core).
	ClockDivider sim.Cycle
	// Width is instructions issued per engine cycle.
	Width int

	// Functional-unit latencies in CPU cycles (Table I).
	IntALULatency sim.Cycle // 2
	IntMulLatency sim.Cycle // 6
	IntDivLatency sim.Cycle // 40
	FPALULatency  sim.Cycle // 10
	FPMulLatency  sim.Cycle // 10
	FPDivLatency  sim.Cycle // 40

	// InstructionVault routes instruction packets on the links (all
	// engine instructions share one ordered path to the sequencer).
	InstructionVault uint32

	// PredExtraSlots is the additional sequencer occupancy of a
	// predicated instruction: the predication match logic reads the
	// predicate register's zero flag through a dedicated port before the
	// instruction may issue, costing extra engine cycles. This — plus
	// the stalls waiting for flags of in-flight producers — is the
	// "additional data dependencies" cost the paper measures as HIPE
	// losing ~15% against HIVE.
	PredExtraSlots int

	// ZeroingSquash makes a squashed predicated instruction zero its
	// destination register and set its zero flag (AVX-512 zeroing-mask
	// style) instead of leaving it unchanged. This lets plans chain
	// predicates (stage 3 predicated on stage 2's result even when stage
	// 2 was itself squashed) without reading stale flags. The paper does
	// not pin this down; the ablation bench compares both.
	ZeroingSquash bool
}

// DefaultHIPE returns the paper's HIPE engine configuration.
func DefaultHIPE() Config {
	return Config{
		Name:          "hipe",
		Target:        isa.TargetHIPE,
		ClockDivider:  2,
		Width:         2,
		IntALULatency: 2, IntMulLatency: 6, IntDivLatency: 40,
		FPALULatency: 10, FPMulLatency: 10, FPDivLatency: 40,
		PredExtraSlots: 1,
		ZeroingSquash:  true,
	}
}

// DefaultHIVE returns the balanced HIVE design the paper evaluates
// (identical resources, no predication).
func DefaultHIVE() Config {
	c := DefaultHIPE()
	c.Name = "hive"
	c.Target = isa.TargetHIVE
	return c
}

// Validate rejects broken configurations.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: empty name")
	}
	if c.Target != isa.TargetHIVE && c.Target != isa.TargetHIPE {
		return fmt.Errorf("core: target %s is not an engine ISA", c.Target)
	}
	if c.ClockDivider == 0 || c.Width <= 0 {
		return fmt.Errorf("core: bad clocking %+v", c)
	}
	for _, l := range []sim.Cycle{c.IntALULatency, c.IntMulLatency, c.IntDivLatency,
		c.FPALULatency, c.FPMulLatency, c.FPDivLatency} {
		if l == 0 {
			return fmt.Errorf("core: zero FU latency")
		}
	}
	return nil
}

// register is one entry of the interlocked register bank.
type register struct {
	data    [isa.RegisterBytes]byte
	zero    bool
	pending bool
}

// rowFetch tracks one logic-layer row read and the mask loads waiting on
// it. A superseded fetch (the buffer moved to another row) still
// completes its own waiters when its DRAM read returns.
type rowFetch struct {
	row     mem.Addr
	done    bool
	doneAt  sim.Cycle
	waiting []func(now sim.Cycle)
}

type queued struct {
	inst *isa.OffloadInst
	// complete, when non-nil, serialises a response to the CPU (lock and
	// unlock acknowledgements).
	complete func()
}

// Engine is a HIPE (or HIVE) logic-layer engine.
type Engine struct {
	cfg    Config
	engine *sim.Engine
	links  *link.Controller
	vaults *dram.HMC
	geom   mem.Geometry
	image  []byte

	regs  [isa.NumRegisters]register
	queue []queued

	locked            bool
	outstandingStores int
	domain            *sim.ClockDomain

	// maskBuf is the engine's bitmask write-combine buffer: one DRAM row
	// that accumulates VMaskStore output, so that 8-byte mask pieces do
	// not each pay a closed-page activation. Dirty contents flush as one
	// row write when the row changes or a lock block ends.
	maskBuf struct {
		valid bool
		dirty bool
		row   mem.Addr
	}
	// maskRead is the matching read-side row buffer: a VMaskLoad miss
	// fetches the whole row once and later same-row loads are served
	// from the logic layer (coalescing onto an in-flight fetch).
	maskRead *rowFetch

	instructions   *stats.Counter
	loads          *stats.Counter
	stores         *stats.Counter
	aluOps         *stats.Counter
	squashed       *stats.Counter
	squashedLoads  *stats.Counter
	squashedBytes  *stats.Counter
	interlockStall *stats.Counter
	predStall      *stats.Counter
	lockBlocks     *stats.Counter
	dramReadBytes  *stats.Counter
	dramWriteBytes *stats.Counter
	maskBufHits    *stats.Counter
	maskBufMisses  *stats.Counter
	maskBufFlushes *stats.Counter
}

// New builds an engine over the DRAM and link models. image is the
// functional backing store shared with the rest of the machine.
func New(engine *sim.Engine, cfg Config, links *link.Controller, vaults *dram.HMC, image []byte, reg *stats.Registry) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		engine: engine,
		links:  links,
		vaults: vaults,
		geom:   vaults.Geom,
		image:  image,
	}
	for i := range e.regs {
		e.regs[i].zero = true // fresh registers hold all-zero data
	}
	sc := reg.Scope(cfg.Name)
	e.instructions = sc.Counter("instructions")
	e.loads = sc.Counter("vloads")
	e.stores = sc.Counter("vstores")
	e.aluOps = sc.Counter("alu_ops")
	e.squashed = sc.Counter("squashed")
	e.squashedLoads = sc.Counter("squashed_loads")
	e.squashedBytes = sc.Counter("squashed_dram_bytes")
	e.interlockStall = sc.Counter("interlock_stall_cycles")
	e.predStall = sc.Counter("predicate_stall_cycles")
	e.lockBlocks = sc.Counter("lock_blocks")
	e.dramReadBytes = sc.Counter("dram_read_bytes")
	e.dramWriteBytes = sc.Counter("dram_write_bytes")
	e.maskBufHits = sc.Counter("maskbuf_hits")
	e.maskBufMisses = sc.Counter("maskbuf_misses")
	e.maskBufFlushes = sc.Counter("maskbuf_flushes")
	e.domain = sim.NewClockDomain(engine, cfg.ClockDivider, e)
	return e, nil
}

// Submit implements the processor offload port. Unlock returns a
// response to the CPU (the block-completion acknowledgement that orders
// later bitmask reads); all other instructions — including Lock, since a
// single-host system needs no grant message — are posted: the done
// callback fires as soon as the instruction has left the core, which is
// what lets the processor stream whole lock blocks back to back while
// the engine's in-order queue serialises their execution.
func (e *Engine) Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool {
	if inst.Target != e.cfg.Target {
		panic(fmt.Sprintf("core %s: wrong target %s", e.cfg.Name, inst.Target))
	}
	if err := inst.Validate(); err != nil {
		panic("core: invalid instruction: " + err.Error())
	}
	acked := inst.Op == isa.Unlock
	var respond func()
	e.links.Send(&link.Packet{
		Vault:       e.cfg.InstructionVault,
		ReqPayload:  0, // one 16 B instruction packet
		RespPayload: 0, // lock/unlock acks are header-only
		Execute: func(complete func()) {
			if acked {
				respond = complete
			}
			e.enqueue(queued{inst: inst, complete: func() {
				if respond != nil {
					respond()
				}
			}})
		},
		Done: func(now sim.Cycle) {
			if acked && done != nil {
				done(now)
			}
		},
	})
	if !acked && done != nil {
		// Posted: the CPU retires the µop once the packet is on its way.
		e.engine.After(1, func() { done(e.engine.Now()) })
	}
	return true
}

func (e *Engine) enqueue(q queued) {
	e.queue = append(e.queue, q)
	e.domain.Kick()
}

// Tick implements sim.Ticker: one engine cycle of in-order issue. A
// predicated instruction costs extra issue slots (the predication match
// logic's flag read).
func (e *Engine) Tick(now sim.Cycle) bool {
	issued := 0
	for issued < e.cfg.Width {
		if len(e.queue) == 0 {
			break
		}
		head := e.queue[0]
		cost := 1
		if head.inst.Pred.Valid {
			cost += e.cfg.PredExtraSlots
		}
		if issued+cost > e.cfg.Width && issued > 0 {
			break // does not fit in this cycle's remaining slots
		}
		if !e.canIssue(head.inst, now) {
			break
		}
		e.queue = e.queue[1:]
		e.issue(head, now)
		issued += cost
	}
	return len(e.queue) > 0
}

// canIssue applies the interlock and predication-readiness rules.
func (e *Engine) canIssue(inst *isa.OffloadInst, now sim.Cycle) bool {
	if inst.Pred.Valid && e.regs[inst.Pred.Reg].pending {
		// Predication match logic needs the flag: data dependency.
		e.predStall.Inc()
		return false
	}
	switch inst.Op {
	case isa.Lock:
		return true
	case isa.Unlock:
		// Unlock drains the block: every register write completed, the
		// mask buffer flushed, and every store accepted by DRAM.
		if e.maskBuf.dirty {
			e.flushMaskBuf()
			e.interlockStall.Inc()
			return false
		}
		if e.outstandingStores > 0 {
			e.interlockStall.Inc()
			return false
		}
		for i := range e.regs {
			if e.regs[i].pending {
				e.interlockStall.Inc()
				return false
			}
		}
		return true
	case isa.VLoad, isa.VMaskLoad:
		if e.regs[inst.Dst].pending {
			e.interlockStall.Inc()
			return false
		}
		return true
	case isa.VStore, isa.VMaskStore:
		if e.regs[inst.Src1].pending {
			e.interlockStall.Inc()
			return false
		}
		return true
	case isa.VALU:
		if e.regs[inst.Dst].pending || e.regs[inst.Src1].pending ||
			(!inst.UseImm && e.regs[inst.Src2].pending) {
			e.interlockStall.Inc()
			return false
		}
		return true
	default:
		panic(fmt.Sprintf("core: cannot issue %s", inst.Op))
	}
}

// issue executes one instruction (or squashes it under predication).
func (e *Engine) issue(q queued, now sim.Cycle) {
	inst := q.inst
	e.instructions.Inc()

	if inst.Pred.Valid {
		flag := e.regs[inst.Pred.Reg].zero
		if flag != inst.Pred.WhenZero {
			// Predicate mismatch: squash. One sequencer slot consumed,
			// no DRAM traffic, no FU occupancy.
			e.squashed.Inc()
			switch inst.Op {
			case isa.VLoad, isa.VMaskLoad:
				e.squashedLoads.Inc()
				if inst.Op == isa.VLoad {
					e.squashedBytes.Add(uint64(inst.Size))
				} else {
					e.squashedBytes.Add(uint64(isa.MaskBytes(inst.Size)))
				}
			}
			if e.cfg.ZeroingSquash {
				switch inst.Op {
				case isa.VLoad, isa.VMaskLoad, isa.VALU:
					dst := &e.regs[inst.Dst]
					dst.data = [isa.RegisterBytes]byte{}
					dst.zero = true
				}
			}
			q.complete()
			return
		}
	}

	switch inst.Op {
	case isa.Lock:
		e.locked = true
		e.lockBlocks.Inc()
		q.complete()

	case isa.Unlock:
		e.locked = false
		q.complete()

	case isa.VLoad:
		e.loads.Inc()
		e.dramReadBytes.Add(uint64(inst.Size))
		dst := &e.regs[inst.Dst]
		dst.pending = true
		e.fanOut(inst.Addr, inst.Size, mem.Read, func(sim.Cycle) {
			copy(dst.data[:inst.Size], e.image[inst.Addr:uint64(inst.Addr)+uint64(inst.Size)])
			dst.zero = isa.IsZero(dst.data[:], int(inst.Size))
			dst.pending = false
		})
		q.complete()

	case isa.VMaskLoad:
		e.loads.Inc()
		nb := isa.MaskBytes(inst.Size)
		dst := &e.regs[inst.Dst]
		dst.pending = true
		fill := func(sim.Cycle) {
			packed := e.image[inst.Addr : uint64(inst.Addr)+uint64(nb)]
			isa.ExpandMask(dst.data[:], packed, int(inst.Size))
			dst.zero = isa.IsZero(dst.data[:], int(inst.Size))
			dst.pending = false
		}
		row := e.geom.RowBase(inst.Addr)
		switch {
		case e.maskBuf.valid && e.maskBuf.row == row:
			// Forwarded from the write-combine buffer: no DRAM access.
			e.maskBufHits.Inc()
			at := now + e.cfg.ClockDivider
			e.engine.Schedule(at, func() { fill(at) })
		case e.maskRead != nil && e.maskRead.row == row:
			e.maskBufHits.Inc()
			f := e.maskRead
			if !f.done {
				// The row fetch is still in flight: coalesce onto it.
				f.waiting = append(f.waiting, fill)
				break
			}
			at := now + e.cfg.ClockDivider
			if f.doneAt > at {
				at = f.doneAt
			}
			e.engine.Schedule(at, func() { fill(at) })
		default:
			// Miss: fetch the whole row once into the logic layer.
			e.maskBufMisses.Inc()
			e.dramReadBytes.Add(uint64(e.geom.RowBytes))
			f := &rowFetch{row: row, waiting: []func(sim.Cycle){fill}}
			e.maskRead = f
			e.fanOut(row, e.geom.RowBytes, mem.Read, func(done sim.Cycle) {
				f.done = true
				f.doneAt = done
				for _, wfn := range f.waiting {
					wfn(done)
				}
				f.waiting = nil
			})
		}
		q.complete()

	case isa.VStore:
		e.stores.Inc()
		e.dramWriteBytes.Add(uint64(inst.Size))
		src := &e.regs[inst.Src1]
		copy(e.image[inst.Addr:uint64(inst.Addr)+uint64(inst.Size)], src.data[:inst.Size])
		e.outstandingStores++
		e.fanOut(inst.Addr, inst.Size, mem.Write, func(sim.Cycle) {
			e.outstandingStores--
		})
		q.complete()

	case isa.VMaskStore:
		e.stores.Inc()
		src := &e.regs[inst.Src1]
		nb := isa.MaskBytes(inst.Size)
		mask := make([]byte, nb)
		isa.CompactMask(mask, src.data[:], int(inst.Size))
		copy(e.image[inst.Addr:uint64(inst.Addr)+uint64(nb)], mask)
		if inst.OnResult != nil {
			inst.OnResult(mask)
		}
		// Accumulate in the mask write-combine buffer; the row flushes
		// to DRAM when the target row changes or at unlock.
		row := e.geom.RowBase(inst.Addr)
		if e.maskBuf.valid && e.maskBuf.row != row && e.maskBuf.dirty {
			e.flushMaskBuf()
		}
		e.maskBuf.valid = true
		e.maskBuf.row = row
		e.maskBuf.dirty = true
		q.complete()

	case isa.VALU:
		e.aluOps.Inc()
		dst := &e.regs[inst.Dst]
		src1 := &e.regs[inst.Src1]
		n := int(isa.RegisterBytes)
		result := make([]byte, n)
		if inst.UseImm {
			isa.LaneOpImm(inst.ALU, result, src1.data[:], inst.Imm, n)
		} else {
			isa.LaneOp(inst.ALU, result, src1.data[:], e.regs[inst.Src2].data[:], n)
		}
		dst.pending = true
		done := now + e.aluLatency(inst)
		e.engine.Schedule(done, func() {
			copy(dst.data[:], result)
			dst.zero = isa.IsZero(dst.data[:], n)
			dst.pending = false
		})
		q.complete()

	default:
		panic(fmt.Sprintf("core: cannot execute %s", inst.Op))
	}
}

// aluLatency maps an ALU kind to its Table I latency.
func (e *Engine) aluLatency(inst *isa.OffloadInst) sim.Cycle {
	if inst.FP {
		switch inst.ALU {
		case isa.Mul:
			return e.cfg.FPMulLatency
		default:
			return e.cfg.FPALULatency
		}
	}
	switch inst.ALU {
	case isa.Mul:
		return e.cfg.IntMulLatency
	default:
		return e.cfg.IntALULatency
	}
}

// flushMaskBuf writes the mask buffer's row to DRAM as one row-sized
// store.
func (e *Engine) flushMaskBuf() {
	e.maskBufFlushes.Inc()
	e.maskBuf.dirty = false
	e.dramWriteBytes.Add(uint64(e.geom.RowBytes))
	e.outstandingStores++
	e.fanOut(e.maskBuf.row, e.geom.RowBytes, mem.Write, func(sim.Cycle) {
		e.outstandingStores--
	})
}

// fanOut issues the DRAM accesses for a (possibly row-straddling) engine
// memory operation and invokes done when all complete.
func (e *Engine) fanOut(addr mem.Addr, size uint32, kind mem.Kind, done func(now sim.Cycle)) {
	chunks := e.geom.Split(addr, size)
	remaining := len(chunks)
	for _, ch := range chunks {
		e.vaults.Access(&mem.Request{Addr: ch.Addr, Size: ch.Size, Kind: kind,
			Done: func(now sim.Cycle) {
				remaining--
				if remaining == 0 {
					done(now)
				}
			}})
	}
}

// Locked reports whether a lock block is open (for tests).
func (e *Engine) Locked() bool { return e.locked }

// RegisterData returns a copy of a register's contents (for tests).
func (e *Engine) RegisterData(i int) []byte {
	out := make([]byte, isa.RegisterBytes)
	copy(out, e.regs[i].data[:])
	return out
}

// RegisterZero reports a register's zero flag (for tests).
func (e *Engine) RegisterZero(i int) bool { return e.regs[i].zero }

// RegisterPending reports whether a register is interlocked (for tests).
func (e *Engine) RegisterPending(i int) bool { return e.regs[i].pending }

// QueueDepth reports buffered instructions (for tests).
func (e *Engine) QueueDepth() int { return len(e.queue) }
