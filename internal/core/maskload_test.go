package core

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/sim"
)

func TestVMaskLoadExpandsAndRoundTrips(t *testing.T) {
	e, eng, image, reg := newEngine(t, DefaultHIPE())
	// Put a packed mask (alternating bits) at 0x3000.
	for i := 0; i < 8; i++ {
		image[0x3000+i] = 0x55 // even lanes set
	}
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VMaskLoad,
		Dst: 0, Addr: 0x3000, Size: 256})
	// AND it with an all-ones compare to prove it is usable as lane masks.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU, ALU: isa.CmpGE,
		Dst: 1, Src1: 0, UseImm: true, Imm: 0}) // >= 0: lanes 0 or -1 both... -1 < 0
	// Store it back compacted elsewhere.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VMaskStore,
		Src1: 0, Addr: 0x4000, Size: 256})
	e.Run()
	data := eng.RegisterData(0)
	if isa.LaneAt(data, 0) != -1 || isa.LaneAt(data, 1) != 0 {
		t.Fatalf("expanded lanes wrong: %d %d", isa.LaneAt(data, 0), isa.LaneAt(data, 1))
	}
	if eng.RegisterZero(0) {
		t.Fatal("nonzero mask load set zero flag")
	}
	for i := 0; i < 8; i++ {
		if image[0x4000+i] != 0x55 {
			t.Fatalf("round-tripped mask byte %d = %#x", i, image[0x4000+i])
		}
	}
	// A mask-load miss fetches the whole row into the logic layer once;
	// later same-row loads are served from the buffer.
	if got := reg.Total("dram.", "bytes_read"); got != 256 {
		t.Fatalf("mask load read %d bytes, want one 256 B row", got)
	}
}

func TestVMaskLoadZeroFlag(t *testing.T) {
	e, eng, _, _ := newEngine(t, DefaultHIPE())
	// Mask region left zero → zero flag set → a predicate on it squashes.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VMaskLoad,
		Dst: 0, Addr: 0x5000, Size: 256})
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad,
		Dst: 1, Addr: 0, Size: 256,
		Pred: isa.Predicate{Valid: true, Reg: 0, WhenZero: false}})
	e.Run()
	if !eng.RegisterZero(0) {
		t.Fatal("zero mask load did not set zero flag")
	}
	if !eng.RegisterZero(1) {
		t.Fatal("load predicated on empty mask was not squashed")
	}
}

// With ZeroingSquash disabled (the paper-literal "leave dst unchanged"
// semantics), a squashed instruction preserves its destination.
func TestNonZeroingSquashPreservesDst(t *testing.T) {
	cfg := DefaultHIPE()
	cfg.ZeroingSquash = false
	e, eng, image, reg := newEngine(t, cfg)
	for i := 0; i < 64; i++ {
		isa.SetLane(image[0x400:], i, 7)
	}
	// Put a known value in r2, then squash a load into it.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 2, Addr: 0x400, Size: 256})
	// r0 stays zero (fresh) → @nz(r0) squashes.
	submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 2, Addr: 0, Size: 256,
		Pred: isa.Predicate{Valid: true, Reg: 0, WhenZero: false}})
	e.Run()
	if isa.LaneAt(eng.RegisterData(2), 0) != 7 {
		t.Fatal("non-zeroing squash clobbered the destination")
	}
	if eng.RegisterZero(2) {
		t.Fatal("non-zeroing squash rewrote the zero flag")
	}
	if reg.Scope("hipe").Get("squashed") != 1 {
		t.Fatal("squash not counted")
	}
}

// Predicated instructions cost extra sequencer slots: with a large
// PredExtraSlots the same program must take longer.
func TestPredExtraSlotsCost(t *testing.T) {
	run := func(extra int) sim.Cycle {
		cfg := DefaultHIPE()
		cfg.PredExtraSlots = extra
		e, eng, _, _ := newEngine(t, cfg)
		// r0 is fresh (zero flag set) → @z predicates execute. The ops
		// are independent so the sequencer issue rate is the limiter.
		for i := 0; i < 30; i++ {
			submit(t, eng, &isa.OffloadInst{Target: isa.TargetHIPE, Op: isa.VALU,
				ALU: isa.Add, Dst: uint8(1 + i%30), Src1: 0, UseImm: true, Imm: 1,
				Pred: isa.Predicate{Valid: true, Reg: 0, WhenZero: true}})
		}
		return e.Run()
	}
	if run(4) <= run(0) {
		t.Fatal("extra predication slots did not slow the sequencer")
	}
}
