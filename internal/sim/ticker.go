package sim

// Ticker is a component that wants to be stepped at a fixed cadence while
// it has work outstanding. It is a convenience layer over the raw event
// queue used by pipelined models (the OoO core, the HIVE/HIPE sequencers)
// that are most naturally written as "advance one cycle" loops.
type Ticker interface {
	// Tick advances the component to the given cycle and reports whether
	// the component still has work pending (and therefore wants another
	// tick at cycle+Period).
	Tick(now Cycle) bool
}

// ClockDomain drives a Ticker every Period cycles while it reports work.
// When the ticker goes idle the domain stops scheduling; Kick restarts
// it on the next edge of its clock grid (a slower domain does not
// overclock just because work arrives between its edges).
type ClockDomain struct {
	Engine *Engine
	Period Cycle
	T      Ticker

	running    bool
	everTicked bool
	lastTick   Cycle
}

// NewClockDomain couples t to engine at the given period (>= 1).
func NewClockDomain(engine *Engine, period Cycle, t Ticker) *ClockDomain {
	if period == 0 {
		panic("sim: clock domain period must be >= 1")
	}
	return &ClockDomain{Engine: engine, Period: period, T: t}
}

// Kick ensures the domain is scheduled. Safe to call redundantly; extra
// calls while running are no-ops. A restart lands on the domain's next
// clock edge relative to its previous tick.
func (d *ClockDomain) Kick() {
	if d.running {
		return
	}
	d.running = true
	var delay Cycle
	if d.everTicked {
		now := d.Engine.Now()
		elapsed := now - d.lastTick
		if elapsed < d.Period {
			delay = d.Period - elapsed
		} else if rem := elapsed % d.Period; rem != 0 {
			delay = d.Period - rem
		}
	}
	d.Engine.AfterEvent(delay, d, 0)
}

// OnEvent implements Handler: the domain is its own pre-bound tick
// event, so ticking never allocates (a method value per tick would).
func (d *ClockDomain) OnEvent(now Cycle, _ uint64) {
	d.everTicked = true
	d.lastTick = now
	if d.T.Tick(now) {
		d.Engine.AfterEvent(d.Period, d, 0)
		return
	}
	d.running = false
}

// Running reports whether the domain currently has a tick scheduled.
func (d *ClockDomain) Running() bool { return d.running }

// Reset returns the domain to its never-ticked state. The owning
// component calls it as part of a machine reset, after the engine's own
// Reset dropped any scheduled tick.
func (d *ClockDomain) Reset() {
	d.running = false
	d.everTicked = false
	d.lastTick = 0
}
