package sim

// Queue is a growable ring-buffer FIFO that reuses its storage. The
// timing models' instruction buffers and store queues previously used
// the append-then-reslice idiom (q = append(q, x); q = q[1:]), which
// marches the slice window through memory and forces a fresh allocation
// every time the window reaches the end of its backing array — on hot
// pipelines, one allocation every few µops. A ring touches the
// allocator only when occupancy exceeds the high-water mark.
//
// The zero value is an empty queue ready for use.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push appends v at the tail.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// grow doubles the ring (min 8 slots, always a power of two so index
// masking stays branch-free) and linearises the live window.
func (q *Queue[T]) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]T, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// Front returns a pointer to the head element without removing it. It
// panics on an empty queue.
func (q *Queue[T]) Front() *T {
	if q.n == 0 {
		panic("sim: Front on empty queue")
	}
	return &q.buf[q.head]
}

// Pop removes and returns the head element. The vacated slot is zeroed
// so pooled pointers are not retained. It panics on an empty queue.
func (q *Queue[T]) Pop() T {
	if q.n == 0 {
		panic("sim: Pop on empty queue")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Reset empties the queue, retaining capacity. Live slots are zeroed so
// pooled pointers are not retained across a reset.
func (q *Queue[T]) Reset() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = zero
	}
	q.head, q.n = 0, 0
}
