package sim

// Tests for the two-lane scheduler: a randomized equivalence property
// against the pre-refactor container/heap ordering semantics, the
// zero-alloc steady-state guarantee, and the RunUntil boundary contract.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap reproduce the old scheduler's ordering semantics
// exactly: a container/heap priority queue over (cycle, seq), seq
// assigned in scheduling order. The property tests replay identical
// schedule sequences through this reference and the real engine and
// demand identical firing orders, same-cycle FIFO ties included.
type refEvent struct {
	cycle Cycle
	seq   uint64
	id    int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)       { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any         { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }
func (h *refHeap) push(ev refEvent) { heap.Push(h, ev) }
func (h *refHeap) pop() refEvent    { return heap.Pop(h).(refEvent) }
func (h *refHeap) schedule(now Cycle, at Cycle, seq *uint64, id int) {
	if at < now {
		panic("ref: schedule in the past")
	}
	h.push(refEvent{cycle: at, seq: *seq, id: id})
	*seq++
}

// scheduleOp is one replayable scheduling decision, drawn once per trial
// and applied identically to both schedulers.
type scheduleOp struct {
	delay Cycle
	// nested, when >= 0, schedules a follow-up event with this op index
	// from inside the event body (exercising schedule-during-fire).
	nested int
}

// TestSchedulerMatchesReferenceOrder replays random schedule sequences —
// bursts of same-cycle ties, deltas straddling the ring horizon, and
// nested scheduling from inside firing events — through the reference
// heap and the engine, asserting identical firing order.
func TestSchedulerMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		ops := make([]scheduleOp, n)
		for i := range ops {
			var delay Cycle
			switch rng.Intn(4) {
			case 0:
				delay = Cycle(rng.Intn(4)) // same-cycle ties and tiny deltas
			case 1:
				delay = Cycle(rng.Intn(ringSize)) // inside the near-future ring
			case 2:
				delay = Cycle(ringSize - 2 + rng.Intn(5)) // straddling the horizon
			default:
				delay = Cycle(rng.Intn(5 * ringSize)) // far heap lane
			}
			nested := -1
			if rng.Intn(3) == 0 {
				nested = rng.Intn(n)
			}
			ops[i] = scheduleOp{delay: delay, nested: nested}
		}
		// Nested events may chain; bound the replay length.
		const maxFired = 4000

		// Reference run: simulate the old heap with the same nesting rule.
		ref := &refHeap{}
		var refOrder []int
		{
			var now Cycle
			var seq uint64
			nextID := 0
			emit := func(op scheduleOp) int {
				id := nextID
				nextID++
				ref.schedule(now, now+op.delay, &seq, id)
				return id
			}
			pendingNested := map[int]int{} // id -> op index of nested schedule
			for i, op := range ops {
				id := emit(op)
				pendingNested[id] = op.nested
				_ = i
			}
			for ref.Len() > 0 && len(refOrder) < maxFired {
				ev := ref.pop()
				now = ev.cycle
				refOrder = append(refOrder, ev.id)
				if nestedIdx := pendingNested[ev.id]; nestedIdx >= 0 {
					op := ops[nestedIdx]
					nid := emit(scheduleOp{delay: op.delay})
					pendingNested[nid] = -1
				}
			}
		}

		// Engine run with the identical sequence of decisions.
		e := NewEngine()
		var engOrder []int
		{
			nextID := 0
			var schedule func(op scheduleOp, nested int)
			schedule = func(op scheduleOp, nested int) {
				id := nextID
				nextID++
				e.Schedule(e.Now()+op.delay, func() {
					engOrder = append(engOrder, id)
					if nested >= 0 {
						schedule(scheduleOp{delay: ops[nested].delay}, -1)
					}
				})
			}
			for _, op := range ops {
				schedule(op, op.nested)
			}
			for len(engOrder) < maxFired && e.Step() {
			}
		}

		if len(refOrder) != len(engOrder) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(engOrder), len(refOrder))
		}
		for i := range refOrder {
			if refOrder[i] != engOrder[i] {
				t.Fatalf("trial %d: firing order diverges at %d: engine %v, reference %v",
					trial, i, engOrder[:i+1], refOrder[:i+1])
			}
		}
	}
}

// TestSchedulerMixedLaneSameCycleFIFO pins the trickiest ordering case:
// an event that entered the far heap, whose cycle later falls inside the
// ring window, must still fire before a ring event at the same cycle
// scheduled after it — and after one scheduled... it can't be scheduled
// before it without being in the heap too. Sequence numbers decide.
func TestSchedulerMixedLaneSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []string
	target := Cycle(ringSize + 10)
	// seq 0: goes to the heap (beyond the horizon).
	e.Schedule(target, func() { order = append(order, "heap") })
	// Advance time into the window via an intermediate event.
	e.Schedule(ringSize, func() {
		// Now target-now < ringSize: this lands in the ring with seq 2.
		e.Schedule(target, func() { order = append(order, "ring") })
	})
	e.Run()
	if len(order) != 2 || order[0] != "heap" || order[1] != "ring" {
		t.Fatalf("mixed-lane same-cycle order = %v, want [heap ring]", order)
	}
}

// TestSchedulerRingWrap exercises bucket reuse across many horizons.
func TestSchedulerRingWrap(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < 10*ringSize {
			e.After(1, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if fired != 10*ringSize {
		t.Fatalf("fired %d, want %d", fired, 10*ringSize)
	}
	if e.Now() != Cycle(10*ringSize-1) {
		t.Fatalf("clock at %d after wrap run", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events left pending", e.Pending())
	}
}

// TestScheduleStepZeroAllocSteadyState pins the zero-alloc guarantee:
// once bucket slices and the heap have reached their high-water
// capacity, Schedule and Step must not allocate — for plain funcs,
// completion callbacks, and pre-bound handlers alike.
func TestScheduleStepZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	cb := func(Cycle) {}
	h := &countingHandler{}
	// Warm-up: bring every ring bucket and the heap to their high-water
	// capacity (steady state means capacities stop growing, the same
	// condition a long simulation reaches after its first moments).
	for i := 0; i < 16*ringSize; i++ {
		e.Schedule(e.Now()+Cycle(i%ringSize), fn)
	}
	for i := 0; i < 64; i++ {
		e.ScheduleEvent(e.Now()+Cycle(ringSize+i), h, 0)
	}
	e.Run()

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.Schedule(e.Now()+Cycle(i%7), fn)
			e.ScheduleCall(e.Now()+Cycle(i%5), cb)
			e.ScheduleEvent(e.Now()+Cycle(ringSize+i), h, uint64(i))
		}
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule/Step allocated %.1f times per run, want 0", allocs)
	}
}

type countingHandler struct{ fired int }

func (c *countingHandler) OnEvent(Cycle, uint64) { c.fired++ }

// TestScheduleEventHandlerTagAndNow verifies pre-bound events receive
// their scheduled cycle and tag.
func TestScheduleEventHandlerTagAndNow(t *testing.T) {
	e := NewEngine()
	var got []struct {
		now Cycle
		tag uint64
	}
	h := handlerFunc(func(now Cycle, tag uint64) {
		got = append(got, struct {
			now Cycle
			tag uint64
		}{now, tag})
	})
	e.ScheduleEvent(5, h, 101)
	e.ScheduleEvent(3, h, 100)
	e.AfterEvent(ringSize*2, h, 102)
	e.Run()
	want := []struct {
		now Cycle
		tag uint64
	}{{3, 100}, {5, 101}, {ringSize * 2, 102}}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

type handlerFunc func(now Cycle, tag uint64)

func (f handlerFunc) OnEvent(now Cycle, tag uint64) { f(now, tag) }

// TestRunUntilBoundary pins the drained-vs-remaining contract exactly at
// the limit cycle: an event AT limit fires (and the clock lands on it);
// an event one past limit does not (and the clock stays put).
func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	e.Schedule(10, func() { fired = append(fired, 10) })
	e.Schedule(11, func() { fired = append(fired, 11) })

	if e.RunUntil(10) {
		t.Fatal("RunUntil(10) claimed the queue drained with cycle-11 work pending")
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("RunUntil(10) fired %v, want [10]", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock at %d after RunUntil(10), want 10 (cycle of last fired event)", e.Now())
	}

	// Nothing in (10, 11): the clock must NOT advance to the probe limit.
	if e.RunUntil(10) {
		t.Fatal("second RunUntil(10) claimed drained")
	}
	if e.Now() != 10 {
		t.Fatalf("clock moved to %d on a no-op RunUntil, want 10", e.Now())
	}

	if !e.RunUntil(11) {
		t.Fatal("RunUntil(11) did not drain")
	}
	if len(fired) != 2 || fired[1] != 11 {
		t.Fatalf("final fired %v, want [10 11]", fired)
	}
	if e.Now() != 11 {
		t.Fatalf("clock at %d after drain, want 11", e.Now())
	}

	// Empty queue: drained, clock untouched even with a far limit.
	if !e.RunUntil(1 << 40) {
		t.Fatal("RunUntil on empty queue reported events remaining")
	}
	if e.Now() != 11 {
		t.Fatalf("clock at %d after empty RunUntil, want 11", e.Now())
	}
}

// --- Scheduler microbenches (the BENCH_*.json trajectory set) ---

// BenchmarkScheduleNear measures the common case: schedule a few cycles
// ahead, fire, repeat — the ring lane.
func BenchmarkScheduleNear(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+3, fn)
		e.Step()
	}
}

// BenchmarkScheduleFar measures the heap lane: events beyond the ring
// horizon.
func BenchmarkScheduleFar(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Keep a standing population so the heap has real depth.
	for i := 0; i < 1024; i++ {
		e.Schedule(e.Now()+Cycle(ringSize+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Cycle(ringSize+1+(i&1023)), fn)
		e.Step()
	}
}

// BenchmarkScheduleMixed interleaves ring and heap traffic with
// same-cycle bursts, approximating the timing models' profile.
func BenchmarkScheduleMixed(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	cb := func(Cycle) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.ScheduleCall(e.Now()+1, cb) // same-cycle tie
		e.Schedule(e.Now()+Cycle(ringSize*2), fn)
		e.Step()
		e.Step()
		e.Step()
	}
}

// BenchmarkScheduleEventPrebound measures the zero-alloc pre-bound
// handler path the timing models use.
func BenchmarkScheduleEventPrebound(b *testing.B) {
	e := NewEngine()
	h := &countingHandler{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleEvent(e.Now()+2, h, uint64(i))
		e.Step()
	}
}

// BenchmarkEngineRandom1000 is the legacy whole-queue benchmark shape:
// 1000 random-cycle events scheduled then drained.
func BenchmarkEngineRandom1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cycles := make([]Cycle, 1000)
	for i := range cycles {
		cycles[i] = Cycle(rng.Intn(5000))
	}
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for _, c := range cycles {
			e.Schedule(c, fn)
		}
		e.Run()
	}
}
