package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at cycle %d, want 0", got)
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(5, func() { order = append(order, 0) })
	e.Schedule(10, func() { order = append(order, 2) }) // FIFO at same cycle
	e.Schedule(20, func() { order = append(order, 3) })
	end := e.Run()
	if end != 20 {
		t.Fatalf("run ended at %d, want 20", end)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("events fired out of order: %v", order)
		}
	}
}

func TestEngineSameCycleFIFOUnderLoad(t *testing.T) {
	e := NewEngine()
	const n = 1000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if i != v {
			t.Fatalf("same-cycle events reordered at %d: got %d", i, v)
		}
	}
}

func TestEngineSchedulingFromEvent(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.After(4, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 5 {
		t.Fatalf("nested scheduling produced %v, want [1 5]", hits)
	}
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(3, func() {})
	})
	e.Run()
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	for _, c := range []Cycle{2, 4, 6, 8} {
		c := c
		e.Schedule(c, func() { fired = append(fired, c) })
	}
	if e.RunUntil(5) {
		t.Fatal("RunUntil(5) claimed the queue drained")
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil(5) fired %v", fired)
	}
	if !e.RunUntil(100) {
		t.Fatal("RunUntil(100) did not drain")
	}
	if len(fired) != 4 {
		t.Fatalf("final fired %v", fired)
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		e.After(1, reschedule)
	}
	e.After(0, reschedule)
	fired := e.RunLimit(50)
	if fired != 50 || count != 50 {
		t.Fatalf("RunLimit fired %d (count %d), want 50", fired, count)
	}
}

// Property: for any multiset of scheduled cycles, events fire in
// non-decreasing cycle order and the engine clock equals the max cycle.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(cycles []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		for _, c := range cycles {
			c := Cycle(c)
			e.Schedule(c, func() { fired = append(fired, c) })
		}
		end := e.Run()
		var max Cycle
		prev := Cycle(0)
		for _, c := range fired {
			if c < prev {
				return false
			}
			prev = c
			if c > max {
				max = c
			}
		}
		if len(cycles) == 0 {
			return end == 0
		}
		return end == max && len(fired) == len(cycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClockDomain(t *testing.T) {
	e := NewEngine()
	ticks := 0
	td := &countdownTicker{n: 5, hit: func() { ticks++ }}
	d := NewClockDomain(e, 3, td)
	d.Kick()
	d.Kick() // redundant kick must be harmless
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticker ran %d times, want 5", ticks)
	}
	if e.Now() != 12 { // ticks at 0,3,6,9,12
		t.Fatalf("domain finished at %d, want 12", e.Now())
	}
	if d.Running() {
		t.Fatal("domain still marked running after drain")
	}
	// Kick again: ticker is exhausted, should run once more and stop.
	td.n = 2
	d.Kick()
	e.Run()
	if ticks != 7 {
		t.Fatalf("restarted ticker total %d, want 7", ticks)
	}
}

type countdownTicker struct {
	n   int
	hit func()
}

func (c *countdownTicker) Tick(now Cycle) bool {
	c.hit()
	c.n--
	return c.n > 0
}

func TestClockDomainZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewClockDomain(NewEngine(), 0, &countdownTicker{})
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Cycle(rng.Intn(5000)), func() {})
		}
		e.Run()
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	e.Schedule(0, nop)     // ring lane
	e.Schedule(10, nop)    // ring lane
	e.Schedule(1<<20, nop) // far future: heap lane
	got := e.Stats()
	want := Stats{Scheduled: 3, Executed: 0, RingEvents: 2, HeapEvents: 1}
	if got != want {
		t.Fatalf("Stats before run = %+v, want %+v", got, want)
	}
	e.Run()
	got = e.Stats()
	if got.Executed != 3 || got.Scheduled != 3 {
		t.Fatalf("Stats after run = %+v", got)
	}
	e.Reset()
	if e.Stats() != (Stats{}) {
		t.Fatalf("Stats after Reset = %+v, want zero", e.Stats())
	}
}
