// Package sim provides the deterministic discrete-event simulation engine
// that drives every timing model in the HIPE reproduction.
//
// The engine keeps a monotonically increasing cycle counter (CPU cycles at
// the core frequency) and a priority queue of events. Events scheduled for
// the same cycle fire in FIFO order of their scheduling, which makes every
// simulation run bit-reproducible regardless of map iteration order or
// goroutine scheduling: the engine is strictly single-threaded.
//
// # Scheduler structure
//
// The queue is split into two lanes that together behave exactly like one
// priority queue ordered by (cycle, sequence number):
//
//   - a near-future ring of ringSize per-cycle FIFO buckets covering
//     [now, now+ringSize), with a bitmap tracking occupied buckets. The
//     overwhelming majority of events in the timing models are "a few
//     cycles ahead" (pipeline ticks, FU latencies, DRAM bank timings),
//     so they enqueue and dequeue in O(1) with no comparisons at all;
//   - a concrete-typed 4-ary min-heap for events at or beyond the ring
//     horizon (long DRAM refresh intervals, far ALU completions). 4-ary
//     halves the tree depth of a binary heap and keeps children of a node
//     in one cache line; there is no container/heap indirection and no
//     interface{} boxing of queue entries.
//
// Step compares the earliest ring event with the heap root under the
// global (cycle, seq) order, so an event that entered the heap when it
// was far away and a later event scheduled into the ring for the same
// cycle still fire in their scheduling order. See docs/ARCHITECTURE.md
// for the full determinism argument.
//
// Steady-state scheduling is allocation-free: bucket slices and the heap
// array retain their high-water capacity, and both event forms — a
// Handler implemented by a pre-bound model object, or a plain func —
// store into the queue entry without boxing (func values are
// pointer-shaped, so the Handler interface conversion does not allocate).
package sim

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// Handler is a pre-bound event target: a model object that receives the
// event directly, with no closure allocation at the scheduling site. The
// tag disambiguates multiple event kinds scheduled on one object, and
// now is the cycle the event fires at (== the cycle it was scheduled
// for). Schedule a Handler with ScheduleEvent/AfterEvent.
type Handler interface {
	OnEvent(now Cycle, tag uint64)
}

// fnHandler adapts a plain func() to Handler. A func value is
// pointer-shaped, so converting fnHandler to Handler does not allocate.
type fnHandler func()

func (f fnHandler) OnEvent(Cycle, uint64) { f() }

// callHandler adapts a completion callback func(Cycle) to Handler —
// the shape of mem.Request.Done and link.Packet.Done — passing the
// firing cycle through. Pointer-shaped: no boxing.
type callHandler func(now Cycle)

func (f callHandler) OnEvent(now Cycle, _ uint64) { f(now) }

// queuedEvent is one queue entry. Entries are stored by value in the
// ring buckets and the heap array; nothing is boxed.
type queuedEvent struct {
	cycle Cycle
	seq   uint64
	h     Handler
	tag   uint64
}

// before reports the global firing order: cycle, then scheduling
// sequence (FIFO within a cycle).
func (a *queuedEvent) before(b *queuedEvent) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

// Near-future ring geometry. 256 cycles covers the overwhelming
// majority of the Table I models' delays (pipeline ticks, FU
// latencies up to the 40-cycle divider, link hops, most DRAM bank
// timings) while keeping the occupancy bitmap at four words; the few
// longer delays — closed-page DRAM worst cases around ~300 cycles,
// refresh intervals in the thousands — correctly fall to the heap
// lane, which preserves the same total order.
const (
	ringBits = 8
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// bucket is one ring slot: a FIFO of events for a single cycle. head
// indexes the next event to fire so dequeue never shifts; the slice
// resets to [:0] when drained, retaining capacity.
type bucket struct {
	evs  []queuedEvent
	head int
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now Cycle
	seq uint64

	// ring holds events with cycle in [now, now+ringSize), indexed by
	// cycle & ringMask. occ is the occupancy bitmap (bit i ⇔ ring[i]
	// has unfired events). ringCount is the total across buckets.
	ring      [ringSize]bucket
	occ       [ringSize / 64]uint64
	ringCount int

	// heap is a 4-ary min-heap (by queuedEvent.before) of events at or
	// beyond the ring horizon.
	heap []queuedEvent

	// executed counts events that have fired, for diagnostics.
	executed uint64
	// scheduled counts events enqueued; ringEvents/heapEvents split it by
	// the lane enqueue routed to. Plain field increments, so the Schedule
	// and Step zero-allocation pins are unaffected.
	scheduled  uint64
	ringEvents uint64
	heapEvents uint64
}

// Stats is a snapshot of the scheduler's event accounting: how many
// events were enqueued, how many fired, and which lane — the near-future
// ring or the far-future heap — each enqueue routed to. The counters are
// cumulative since construction or the last Reset.
type Stats struct {
	Scheduled  uint64
	Executed   uint64
	RingEvents uint64
	HeapEvents uint64
}

// NewEngine returns an engine positioned at cycle 0 with no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its post-NewEngine state — cycle 0, empty
// queue, sequence numbers restarted — while keeping the ring buckets'
// and heap's high-water capacity, so a reused engine schedules without
// reallocating. Pending events are dropped.
func (e *Engine) Reset() {
	e.now, e.seq, e.executed = 0, 0, 0
	e.scheduled, e.ringEvents, e.heapEvents = 0, 0, 0
	if e.ringCount != 0 {
		for i := range e.ring {
			b := &e.ring[i]
			for j := b.head; j < len(b.evs); j++ {
				b.evs[j].h = nil
			}
			b.evs = b.evs[:0]
			b.head = 0
		}
		e.ringCount = 0
	}
	for i := range e.heap {
		e.heap[i] = queuedEvent{}
	}
	e.heap = e.heap[:0]
	for i := range e.occ {
		e.occ[i] = 0
	}
}

// Now reports the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return e.ringCount + len(e.heap) }

// Executed reports the total number of events that have fired.
func (e *Engine) Executed() uint64 { return e.executed }

// Stats reports the scheduler's cumulative event accounting.
func (e *Engine) Stats() Stats {
	return Stats{
		Scheduled:  e.scheduled,
		Executed:   e.executed,
		RingEvents: e.ringEvents,
		HeapEvents: e.heapEvents,
	}
}

// Schedule queues fn to run at absolute cycle at. Scheduling in the past
// (at < Now) is a programming error and panics: allowing it would silently
// corrupt causality in the timing models.
func (e *Engine) Schedule(at Cycle, fn Event) {
	if fn == nil {
		panic("sim: schedule nil event")
	}
	e.enqueue(at, fnHandler(fn), 0)
}

// After queues fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) {
	e.Schedule(e.now+delay, fn)
}

// ScheduleCall queues cb to run at absolute cycle at, receiving that
// cycle as its argument. It is the allocation-free form for completion
// callbacks (mem.Request.Done and friends): where Schedule(at, func() {
// cb(at) }) would allocate a closure per event, ScheduleCall stores cb
// directly.
func (e *Engine) ScheduleCall(at Cycle, cb func(now Cycle)) {
	if cb == nil {
		panic("sim: schedule nil event")
	}
	e.enqueue(at, callHandler(cb), 0)
}

// AfterCall queues cb to run delay cycles from now, receiving the firing
// cycle.
func (e *Engine) AfterCall(delay Cycle, cb func(now Cycle)) {
	e.ScheduleCall(e.now+delay, cb)
}

// ScheduleEvent queues a pre-bound handler to fire at absolute cycle at
// with the given tag. This is the zero-alloc path for model objects that
// schedule themselves: the object pointer stores directly into the
// queue entry.
func (e *Engine) ScheduleEvent(at Cycle, h Handler, tag uint64) {
	if h == nil {
		panic("sim: schedule nil event")
	}
	e.enqueue(at, h, tag)
}

// AfterEvent queues a pre-bound handler tag cycles of delay from now.
func (e *Engine) AfterEvent(delay Cycle, h Handler, tag uint64) {
	e.ScheduleEvent(e.now+delay, h, tag)
}

// enqueue routes an event to the ring or the heap.
func (e *Engine) enqueue(at Cycle, h Handler, tag uint64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at cycle %d before now %d", at, e.now))
	}
	ev := queuedEvent{cycle: at, seq: e.seq, h: h, tag: tag}
	e.seq++
	e.scheduled++
	if at-e.now < ringSize {
		i := int(at & ringMask)
		b := &e.ring[i]
		b.evs = append(b.evs, ev)
		e.occ[i>>6] |= 1 << (uint(i) & 63)
		e.ringCount++
		e.ringEvents++
		return
	}
	e.heapEvents++
	e.heapPush(ev)
}

// nextRingBucket returns the index of the occupied ring bucket with the
// earliest cycle, scanning the occupancy bitmap from now's slot forward
// (at most four word reads plus one trailing-zeros). Call only when
// ringCount > 0.
func (e *Engine) nextRingBucket() int {
	start := int(e.now & ringMask)
	w := start >> 6
	// Mask off bits below start in the first word, then rotate through
	// the (wrapped) remaining words.
	if m := e.occ[w] &^ ((1 << (uint(start) & 63)) - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	for k := 1; k <= len(e.occ); k++ {
		i := (w + k) & (len(e.occ) - 1)
		if m := e.occ[i]; i == w {
			// Wrapped fully: only bits below start remain.
			if m &= (1 << (uint(start) & 63)) - 1; m != 0 {
				return i<<6 + bits.TrailingZeros64(m)
			}
		} else if m != 0 {
			return i<<6 + bits.TrailingZeros64(m)
		}
	}
	panic("sim: ringCount > 0 with empty occupancy bitmap")
}

// ringCycle converts an occupied bucket index to the absolute cycle its
// events fire at. Ring events always lie in [now, now+ringSize), so the
// offset is the index distance from now's slot, modulo the ring.
func (e *Engine) ringCycle(i int) Cycle {
	return e.now + Cycle((i-int(e.now&ringMask))&ringMask)
}

// Step fires the earliest pending event, advancing the clock to its cycle.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	ev, ok := e.dequeue()
	if !ok {
		return false
	}
	e.now = ev.cycle
	e.executed++
	ev.h.OnEvent(ev.cycle, ev.tag)
	return true
}

// dequeue removes and returns the globally earliest event under the
// (cycle, seq) order, merging the ring and heap lanes.
func (e *Engine) dequeue() (queuedEvent, bool) {
	if e.ringCount == 0 {
		if len(e.heap) == 0 {
			return queuedEvent{}, false
		}
		return e.heapPop(), true
	}
	i := e.nextRingBucket()
	b := &e.ring[i]
	ringEv := &b.evs[b.head]
	// A heap event can precede the ring head: its cycle may have entered
	// the ring window as now advanced, or tie the ring head's cycle with
	// an earlier sequence number.
	if len(e.heap) > 0 && e.heap[0].before(ringEv) {
		return e.heapPop(), true
	}
	ev := *ringEv
	ringEv.h = nil // release the reference; the slot is reused
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		e.occ[i>>6] &^= 1 << (uint(i) & 63)
	}
	e.ringCount--
	return ev, true
}

// peekCycle reports the cycle of the earliest pending event.
func (e *Engine) peekCycle() (Cycle, bool) {
	var best Cycle
	have := false
	if e.ringCount > 0 {
		best = e.ringCycle(e.nextRingBucket())
		have = true
	}
	if len(e.heap) > 0 && (!have || e.heap[0].cycle < best) {
		best = e.heap[0].cycle
		have = true
	}
	return best, have
}

// heapPush inserts into the 4-ary min-heap.
func (e *Engine) heapPush(ev queuedEvent) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// heapPop removes the heap root.
func (e *Engine) heapPop() queuedEvent {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = queuedEvent{} // clear the vacated slot for the GC
	h = h[:n]
	e.heap = h
	// Sift down: promote the smallest of up to four children.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return root
}

// Run fires events until the queue is empty and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires every event with cycle <= limit, in order. It reports
// true if that drained the queue, false if events at cycles beyond limit
// remain. The clock is left at the cycle of the last event fired; it
// does not advance to limit when no event lands exactly there (and does
// not move at all if nothing fires), so after RunUntil(limit) the clock
// reads the last real activity, not the probe horizon.
func (e *Engine) RunUntil(limit Cycle) bool {
	for {
		c, ok := e.peekCycle()
		if !ok {
			return true
		}
		if c > limit {
			return false
		}
		e.Step()
	}
}

// RunLimit fires at most n events; it reports the number actually fired.
// Useful as a watchdog in tests to catch livelock in timing models.
func (e *Engine) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && e.Step() {
		fired++
	}
	return fired
}
