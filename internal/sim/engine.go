// Package sim provides the deterministic discrete-event simulation engine
// that drives every timing model in the HIPE reproduction.
//
// The engine keeps a monotonically increasing cycle counter (CPU cycles at
// the core frequency) and a priority queue of events. Events scheduled for
// the same cycle fire in FIFO order of their scheduling, which makes every
// simulation run bit-reproducible regardless of map iteration order or
// goroutine scheduling: the engine is strictly single-threaded.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type queuedEvent struct {
	cycle Cycle
	seq   uint64
	fn    Event
}

type eventHeap []queuedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(queuedEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = queuedEvent{}
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	// executed counts events that have fired, for diagnostics.
	executed uint64
}

// NewEngine returns an engine positioned at cycle 0 with no pending events.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now reports the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Executed reports the total number of events that have fired.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule queues fn to run at absolute cycle at. Scheduling in the past
// (at < Now) is a programming error and panics: allowing it would silently
// corrupt causality in the timing models.
func (e *Engine) Schedule(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at cycle %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	heap.Push(&e.events, queuedEvent{cycle: at, seq: e.seq, fn: fn})
	e.seq++
}

// After queues fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) {
	e.Schedule(e.now+delay, fn)
}

// Step fires the earliest pending event, advancing the clock to its cycle.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(queuedEvent)
	e.now = ev.cycle
	e.executed++
	ev.fn()
	return true
}

// Run fires events until the queue is empty and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with cycle <= limit. It returns true if the queue
// drained, false if events at cycles beyond limit remain. The clock is left
// at the cycle of the last fired event (or limit if nothing fired beyond it).
func (e *Engine) RunUntil(limit Cycle) bool {
	for len(e.events) > 0 && e.events[0].cycle <= limit {
		e.Step()
	}
	return len(e.events) == 0
}

// RunLimit fires at most n events; it reports the number actually fired.
// Useful as a watchdog in tests to catch livelock in timing models.
func (e *Engine) RunLimit(n uint64) uint64 {
	var fired uint64
	for fired < n && e.Step() {
		fired++
	}
	return fired
}
