// Package db is the database substrate of the reproduction: a
// deterministic TPC-H-style lineitem generator (the columns TPC-H Query
// 06 touches, with dbgen's value distributions), the two physical layouts
// the paper evaluates — NSM (row-store, 64-byte tuples) and DSM
// (column-store) — and a pure-Go reference evaluator used as the
// correctness oracle for every simulated architecture.
package db

import (
	"fmt"
	"sync"

	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// Day numbers use an epoch of 1992-01-01 (the start of dbgen's date
// range), so TPC-H date literals become small integers.
const (
	// ShipDateDays is the span of l_shipdate values (7 years).
	ShipDateDays = 2557
	// Day19940101 is '1994-01-01', the Q06 lower bound.
	Day19940101 = 731
	// Day19950101 is '1995-01-01', the Q06 upper bound.
	Day19950101 = 1096
	// Day19950617 is '1995-06-17', dbgen's CURRENTDATE: the pivot that
	// derives l_returnflag and l_linestatus from the shipping dates.
	Day19950617 = 1263
	// Day19980902 is '1998-09-02' ('1998-12-01' minus the 90-day
	// default interval), the TPC-H Query 01 shipdate cutoff.
	Day19980902 = 2436
)

// Tuple field layout in the NSM (row-store) image: 16 little-endian
// int32 fields = 64 bytes per tuple, one cache line (paper §IV:
// "each tuple in the table occupies 64-bytes").
const (
	FieldShipDate = iota
	FieldDiscount
	FieldQuantity
	FieldExtendedPrice
	FieldReturnFlag
	FieldLineStatus
	NumFields   = 16
	TupleBytes  = NumFields * 4
	ColumnWidth = 4 // bytes per value in the DSM layout
)

// Group-key cardinalities of the aggregation workload: l_returnflag
// takes three values (A, R, N) and l_linestatus two (F, O), so a Q01
// group-by spans at most NumGroups = 6 (rf, ls) combinations. dbgen's
// date-derived correlation populates the same four groups TPC-H Query
// 01 reports (A/F, R/F, N/F, N/O); the remaining two stay empty.
const (
	ReturnFlagA = 0 // returned, accepted
	ReturnFlagR = 1 // returned, rejected
	ReturnFlagN = 2 // not yet returned (receipt after CURRENTDATE)

	LineStatusF = 0 // fulfilled (shipped on or before CURRENTDATE)
	LineStatusO = 1 // open (shipped after CURRENTDATE)

	RFValues  = 3
	LSValues  = 2
	NumGroups = RFValues * LSValues
)

// GroupID maps an (rf, ls) pair to its dense group index 0..NumGroups-1.
func GroupID(rf, ls int32) int { return int(rf)*LSValues + int(ls) }

// Table is the in-memory (pre-layout) lineitem subset.
type Table struct {
	N             int
	ShipDate      []int32 // days since 1992-01-01
	Discount      []int32 // percent ×1 (0..10)
	Quantity      []int32 // 1..50
	ExtendedPrice []int32 // cents
	ReturnFlag    []int32 // ReturnFlagA/R/N
	LineStatus    []int32 // LineStatusF/O
}

// RNG is a splitmix64 generator: tiny, fast and deterministic across
// platforms, so every experiment is reproducible bit-for-bit. The
// serving layer draws its request streams and arrival processes from
// the same generator.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 uniform bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int64) int64 { return int64(r.Next() % uint64(n)) }

// Float64 returns a uniform float in (0, 1] — open at zero, so it is
// safe under a logarithm.
func (r *RNG) Float64() float64 {
	return (float64(r.Next()>>11) + 1) / (1 << 53)
}

// Generate builds a lineitem table of n tuples with dbgen-like
// distributions, deterministically from seed.
func Generate(n int, seed uint64) *Table {
	r := NewRNG(seed)
	t := &Table{
		N:             n,
		ShipDate:      make([]int32, n),
		Discount:      make([]int32, n),
		Quantity:      make([]int32, n),
		ExtendedPrice: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		// dbgen: shipdate = orderdate + uniform(1..121); orderdates are
		// uniform over the 7-year range. The sum is near-uniform over the
		// range, which is what Q06's ~15% date selectivity relies on.
		t.ShipDate[i] = int32(r.Intn(ShipDateDays))
		t.Discount[i] = int32(r.Intn(11))     // 0.00 .. 0.10
		t.Quantity[i] = int32(1 + r.Intn(50)) // 1 .. 50
		t.ExtendedPrice[i] = int32(90000 + r.Intn(16000))
	}
	deriveFlags(t, seed)
	return t
}

// deriveFlags fills ReturnFlag and LineStatus with dbgen's correlation:
// linestatus is O for lineitems shipped after CURRENTDATE and F
// otherwise; returnflag is N when the receipt (ship + 1..30 days) falls
// after CURRENTDATE, else a fair A/R coin. The draws come from their own
// generator so the four Q06 columns stay bit-identical to tables
// generated before the flags existed.
func deriveFlags(t *Table, seed uint64) {
	r := NewRNG(seed ^ 0xF1A6_5EED_0B5E_55ED)
	t.ReturnFlag = make([]int32, t.N)
	t.LineStatus = make([]int32, t.N)
	for i := 0; i < t.N; i++ {
		receipt := t.ShipDate[i] + 1 + int32(r.Intn(30))
		coin := r.Next()&1 == 0
		if receipt > Day19950617 {
			t.ReturnFlag[i] = ReturnFlagN
		} else if coin {
			t.ReturnFlag[i] = ReturnFlagA
		} else {
			t.ReturnFlag[i] = ReturnFlagR
		}
		if t.ShipDate[i] > Day19950617 {
			t.LineStatus[i] = LineStatusO
		} else {
			t.LineStatus[i] = LineStatusF
		}
	}
}

// GenerateClustered builds a table whose shipdates increase with the
// physical row order, plus ±noiseDays of jitter — the layout of an
// append-ordered fact table where rows arrive in shipping order. Date
// clustering concentrates Q06's one-year window in a contiguous slice of
// the table, which is what lets HIPE's chunk-granular predication squash
// the discount/quantity loads of out-of-window chunks.
func GenerateClustered(n int, seed uint64, noiseDays int32) *Table {
	t := Generate(n, seed)
	r := NewRNG(seed ^ 0xC1D5_7E8E_D00D_F00D)
	for i := 0; i < n; i++ {
		base := int64(i) * ShipDateDays / int64(n)
		jitter := int64(0)
		if noiseDays > 0 {
			jitter = r.Intn(int64(2*noiseDays+1)) - int64(noiseDays)
		}
		d := base + jitter
		if d < 0 {
			d = 0
		}
		if d >= ShipDateDays {
			d = ShipDateDays - 1
		}
		t.ShipDate[i] = int32(d)
	}
	// The flags correlate with shipping dates, so they re-derive from
	// the clustered dates — a date-ordered table also clusters its
	// linestatus transition, which is what lets predication skip whole
	// chunks of absent groups.
	deriveFlags(t, seed)
	return t
}

// ImageBytesFor sizes a simulated-machine backing image for an n-row
// workload: the NSM layout is the hungriest client (tuples +
// materialisation region + lane masks ≈ 130 bytes/row); triple the
// tuple bytes plus fixed slack bounds every plan with room to spare,
// rounded up to a whole MiB. Layouts bump-allocate from address zero,
// so the image size never changes addresses or timing — only the bytes
// a machine build or reset touches.
func ImageBytesFor(n int) uint64 {
	need := uint64(n)*3*TupleBytes + (64 << 10)
	const mib = 1 << 20
	return (need + mib - 1) &^ (mib - 1)
}

// tableKey identifies one distinct generated workload table.
type tableKey struct {
	n         int
	seed      uint64
	clustered bool
	noiseDays int32
}

// tableMemo caches generated tables process-wide: every sweep cell,
// figure-bench iteration and serving shard replay over the same
// (tuples, seed, clustering) triple shares one table instead of
// regenerating it. Guarded for the sweep and serve layers' concurrent
// workers; generation runs outside the lock so a slow build never
// serialises unrelated lookups.
var tableMemo struct {
	mu sync.Mutex
	m  map[tableKey]*Table
}

// maxMemoTables bounds the memo: a long-lived process sweeping many
// distinct workloads must not grow without limit (a 4M-row table is
// ~100 MB). On overflow the memo drops wholesale — callers that need a
// table across a whole sweep hold their own reference (the sweep
// layer's per-run cache does), so eviction only costs a regeneration
// on the next cross-run reuse.
const maxMemoTables = 16

func memoised(k tableKey, build func() *Table) *Table {
	tableMemo.mu.Lock()
	if tableMemo.m == nil {
		tableMemo.m = make(map[tableKey]*Table)
	}
	t, ok := tableMemo.m[k]
	tableMemo.mu.Unlock()
	if ok {
		return t
	}
	built := build()
	tableMemo.mu.Lock()
	// A racing builder may have won; keep the first so every caller
	// shares one instance.
	if t, ok = tableMemo.m[k]; !ok {
		if len(tableMemo.m) >= maxMemoTables {
			clear(tableMemo.m)
		}
		tableMemo.m[k] = built
		t = built
	}
	tableMemo.mu.Unlock()
	return t
}

// GenerateMemo returns the memoised table for (n, seed): equal to
// Generate(n, seed), generated at most once per process. The returned
// table is shared — callers must treat it as read-only (every layout
// and evaluator in the reproduction already does).
func GenerateMemo(n int, seed uint64) *Table {
	return memoised(tableKey{n: n, seed: seed}, func() *Table { return Generate(n, seed) })
}

// GenerateClusteredMemo is the memoised GenerateClustered. The returned
// table is shared and must be treated as read-only.
func GenerateClusteredMemo(n int, seed uint64, noiseDays int32) *Table {
	return memoised(tableKey{n: n, seed: seed, clustered: true, noiseDays: noiseDays},
		func() *Table { return GenerateClustered(n, seed, noiseDays) })
}

// Q06 is the paper's benchmark query predicate — the selection scan of
// TPC-H Query 06:
//
//	l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
//	AND l_discount BETWEEN 0.05 AND 0.07
//	AND l_quantity < 24
type Q06 struct {
	ShipLo, ShipHi int32 // [ShipLo, ShipHi)
	DiscLo, DiscHi int32 // [DiscLo, DiscHi]
	QtyHi          int32 // < QtyHi
}

// DefaultQ06 returns the TPC-H Query 06 parameters.
func DefaultQ06() Q06 {
	return Q06{
		ShipLo: Day19940101, ShipHi: Day19950101,
		DiscLo: 5, DiscHi: 7,
		QtyHi: 24,
	}
}

// Match evaluates the full predicate for tuple i.
func (q Q06) Match(t *Table, i int) bool {
	return t.ShipDate[i] >= q.ShipLo && t.ShipDate[i] < q.ShipHi &&
		t.Discount[i] >= q.DiscLo && t.Discount[i] <= q.DiscHi &&
		t.Quantity[i] < q.QtyHi
}

// ReferenceResult is the oracle outcome of the Q06 selection scan.
type ReferenceResult struct {
	// Bitmask has one bit per tuple (LSB-first within each byte).
	Bitmask []byte
	// Matches is the popcount of Bitmask.
	Matches int
	// Revenue is sum(l_extendedprice * l_discount) over matches — the
	// Q06 aggregate, useful as an end-to-end checksum.
	Revenue int64
}

// Reference evaluates the scan in plain Go.
func Reference(t *Table, q Q06) *ReferenceResult {
	res := &ReferenceResult{Bitmask: make([]byte, (t.N+7)/8)}
	for i := 0; i < t.N; i++ {
		if q.Match(t, i) {
			res.Bitmask[i/8] |= 1 << (i % 8)
			res.Matches++
			res.Revenue += int64(t.ExtendedPrice[i]) * int64(t.Discount[i])
		}
	}
	return res
}

// ColumnMask evaluates a single column's predicate for all tuples —
// the oracle for column-at-a-time intermediate bitmasks.
// col selects FieldShipDate, FieldDiscount or FieldQuantity.
func ColumnMask(t *Table, q Q06, col int) []byte {
	mask := make([]byte, (t.N+7)/8)
	for i := 0; i < t.N; i++ {
		var ok bool
		switch col {
		case FieldShipDate:
			ok = t.ShipDate[i] >= q.ShipLo && t.ShipDate[i] < q.ShipHi
		case FieldDiscount:
			ok = t.Discount[i] >= q.DiscLo && t.Discount[i] <= q.DiscHi
		case FieldQuantity:
			ok = t.Quantity[i] < q.QtyHi
		default:
			panic(fmt.Sprintf("db: column %d has no predicate", col))
		}
		if ok {
			mask[i/8] |= 1 << (i % 8)
		}
	}
	return mask
}

// Selectivity reports the fraction of tuples matching the full predicate.
func Selectivity(t *Table, q Q06) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(Reference(t, q).Matches) / float64(t.N)
}

// Q01 is the aggregation benchmark predicate — the filter of TPC-H
// Query 01, whose body groups by (l_returnflag, l_linestatus) and
// accumulates per-group sums and counts:
//
//	l_shipdate <= date '1998-12-01' - interval ':delta' day
type Q01 struct {
	// ShipCut is the inclusive shipdate upper bound in days since
	// 1992-01-01 (TPC-H delta=90 puts it at Day19980902).
	ShipCut int32
}

// DefaultQ01 returns the TPC-H Query 01 parameters at the default
// 90-day delta (≈95% selectivity).
func DefaultQ01() Q01 {
	return Q01{ShipCut: Day19980902}
}

// Match evaluates the Q01 filter for tuple i.
func (q Q01) Match(t *Table, i int) bool {
	return t.ShipDate[i] <= q.ShipCut
}

// GroupAgg is one (returnflag, linestatus) group's aggregates. Averages
// are derived (Sum/Count) at presentation time; keeping exact integer
// sums is what lets sharded partials recompose losslessly.
type GroupAgg struct {
	ReturnFlag int32
	LineStatus int32
	// Count is the group's row count (count(*)).
	Count int64
	// SumQty is sum(l_quantity).
	SumQty int64
	// SumPrice is sum(l_extendedprice), in cents.
	SumPrice int64
	// SumRevenue is sum(l_extendedprice * l_discount) — the discounted
	// revenue measure the Q06 path also reports, here per group.
	SumRevenue int64
}

// Add folds another partial for the same group into g.
func (g *GroupAgg) Add(o GroupAgg) {
	g.Count += o.Count
	g.SumQty += o.SumQty
	g.SumPrice += o.SumPrice
	g.SumRevenue += o.SumRevenue
}

// Q1Result is the oracle outcome of the Q01 aggregation scan.
type Q1Result struct {
	// Bitmask has one bit per tuple passing the shipdate filter.
	Bitmask []byte
	// Matches is the popcount of Bitmask.
	Matches int
	// Groups holds every (rf, ls) combination in GroupID order, empty
	// groups included (Count == 0), so per-shard partials align by
	// index when they recompose.
	Groups [NumGroups]GroupAgg
}

// Revenue sums the discounted revenue across groups — the whole-query
// checksum mirroring ReferenceResult.Revenue.
func (r *Q1Result) Revenue() int64 {
	var sum int64
	for _, g := range r.Groups {
		sum += g.SumRevenue
	}
	return sum
}

// ReferenceQ1 evaluates the grouped aggregation in plain Go — the
// correctness oracle for every simulated Q01 plan.
func ReferenceQ1(t *Table, q Q01) *Q1Result {
	res := &Q1Result{Bitmask: make([]byte, (t.N+7)/8)}
	for g := range res.Groups {
		res.Groups[g].ReturnFlag = int32(g / LSValues)
		res.Groups[g].LineStatus = int32(g % LSValues)
	}
	for i := 0; i < t.N; i++ {
		if !q.Match(t, i) {
			continue
		}
		res.Bitmask[i/8] |= 1 << (i % 8)
		res.Matches++
		agg := &res.Groups[GroupID(t.ReturnFlag[i], t.LineStatus[i])]
		agg.Count++
		agg.SumQty += int64(t.Quantity[i])
		agg.SumPrice += int64(t.ExtendedPrice[i])
		agg.SumRevenue += int64(t.ExtendedPrice[i]) * int64(t.Discount[i])
	}
	return res
}

// SelectivityQ1 reports the fraction of tuples passing the Q01 filter.
func SelectivityQ1(t *Table, q Q01) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(ReferenceQ1(t, q).Matches) / float64(t.N)
}

// Arena is a bump allocator for laying regions into the physical image.
type Arena struct {
	next mem.Addr
	size uint64
}

// NewArena manages [0, size).
func NewArena(size uint64) *Arena { return &Arena{size: size} }

// Alloc reserves n bytes aligned to align (a power of two) and returns
// the base address.
func (a *Arena) Alloc(n uint64, align uint64) mem.Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("db: alignment %d not a power of two", align))
	}
	base := (uint64(a.next) + align - 1) &^ (align - 1)
	if base+n > a.size {
		panic(fmt.Sprintf("db: arena exhausted: need %d at %#x of %#x", n, base, a.size))
	}
	a.next = mem.Addr(base + n)
	return mem.Addr(base)
}

// Used reports the bytes consumed so far.
func (a *Arena) Used() uint64 { return uint64(a.next) }

// NSMLayout is the row-store physical placement.
type NSMLayout struct {
	Base  mem.Addr
	N     int
	Bytes uint64
}

// TupleAddr returns the address of tuple i.
func (l NSMLayout) TupleAddr(i int) mem.Addr {
	return l.Base + mem.Addr(i*TupleBytes)
}

// FieldAddr returns the address of a field of tuple i.
func (l NSMLayout) FieldAddr(i, field int) mem.Addr {
	return l.TupleAddr(i) + mem.Addr(field*4)
}

// LayoutNSM writes the table into the image as 64-byte tuples, base
// aligned to the 256 B row buffer so four tuples share one DRAM row
// (the property behind the paper's HMC-256B result).
func LayoutNSM(image []byte, a *Arena, t *Table) NSMLayout {
	bytes := uint64(t.N * TupleBytes)
	base := a.Alloc(bytes, 256)
	l := NSMLayout{Base: base, N: t.N, Bytes: bytes}
	for i := 0; i < t.N; i++ {
		off := uint64(l.TupleAddr(i))
		isa.SetLane(image[off:], FieldShipDate, t.ShipDate[i])
		isa.SetLane(image[off:], FieldDiscount, t.Discount[i])
		isa.SetLane(image[off:], FieldQuantity, t.Quantity[i])
		isa.SetLane(image[off:], FieldExtendedPrice, t.ExtendedPrice[i])
		isa.SetLane(image[off:], FieldReturnFlag, t.ReturnFlag[i])
		isa.SetLane(image[off:], FieldLineStatus, t.LineStatus[i])
		// Filler fields carry a deterministic pattern so that accidental
		// reads of the wrong field fail tests loudly rather than seeing
		// zeros.
		for f := FieldLineStatus + 1; f < NumFields; f++ {
			isa.SetLane(image[off:], f, int32(0x0F00+f))
		}
	}
	return l
}

// DSMLayout is the column-store physical placement.
type DSMLayout struct {
	N int
	// ColBase maps field index → base address of its contiguous array.
	ColBase map[int]mem.Addr
	Bytes   uint64
}

// ValueAddr returns the address of tuple i's value in column col.
func (l DSMLayout) ValueAddr(col, i int) mem.Addr {
	return l.ColBase[col] + mem.Addr(i*ColumnWidth)
}

// LayoutDSM writes lineitem columns as contiguous arrays, each aligned
// to the 256 B row buffer (64 values per row). With no explicit column
// list it lays the four Q06 columns, exactly as it always has — a
// caller whose query touches the group keys (Q01) appends them, so the
// selection scan's physical layout is unchanged by their existence.
func LayoutDSM(image []byte, a *Arena, t *Table, columns ...int) DSMLayout {
	l := DSMLayout{N: t.N, ColBase: make(map[int]mem.Addr)}
	cols := map[int][]int32{
		FieldShipDate:      t.ShipDate,
		FieldDiscount:      t.Discount,
		FieldQuantity:      t.Quantity,
		FieldExtendedPrice: t.ExtendedPrice,
		FieldReturnFlag:    t.ReturnFlag,
		FieldLineStatus:    t.LineStatus,
	}
	if len(columns) == 0 {
		columns = []int{FieldShipDate, FieldDiscount, FieldQuantity, FieldExtendedPrice}
	}
	// Deterministic placement order. Each column is padded to whole rows
	// and staggered by one extra row so that chunk k of different
	// columns lands in different vaults: column lengths are typically
	// exact multiples of the vault interleave stride, and without the
	// stagger every per-tuple-range access to shipdate, discount and
	// quantity would serialise on one vault's bank timing.
	stagger := 0
	for _, col := range columns {
		vals := cols[col]
		bytes := uint64(len(vals) * ColumnWidth)
		// Round up to whole rows so vector ops never straddle columns.
		padded := (bytes + 255) &^ 255
		base := a.Alloc(padded+uint64(stagger+1)*256, 256)
		base += mem.Addr((stagger + 1) * 256)
		stagger++
		l.ColBase[col] = base
		for i, v := range vals {
			isa.SetLane(image[uint64(base):], i, v)
		}
		l.Bytes += padded
	}
	return l
}
