package db

import "testing"

func TestPartitionInvariantsAndRecomposition(t *testing.T) {
	tab := Generate(64*37, 9) // 37 blocks: uneven across most shard counts
	q := DefaultQ06()
	whole := Reference(tab, q)
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 37} {
		shards, err := Partition(tab, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(shards) != n {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
		rows, matches, minN, maxN := 0, 0, tab.N, 0
		var revenue int64
		for _, s := range shards {
			if s.N <= 0 || s.N%64 != 0 {
				t.Fatalf("n=%d: shard size %d breaks the 64-multiple invariant", n, s.N)
			}
			if s.N < minN {
				minN = s.N
			}
			if s.N > maxN {
				maxN = s.N
			}
			// Shard boundary alignment: the shard's first row must be the
			// row right after the previous shard's last (checked via total).
			rows += s.N
			ref := Reference(s, q)
			matches += ref.Matches
			revenue += ref.Revenue
		}
		if rows != tab.N {
			t.Fatalf("n=%d: shards cover %d of %d rows", n, rows, tab.N)
		}
		if maxN-minN > 64 {
			t.Fatalf("n=%d: shard sizes unbalanced: min %d max %d", n, minN, maxN)
		}
		if matches != whole.Matches {
			t.Fatalf("n=%d: per-shard matches %d do not recompose to %d", n, matches, whole.Matches)
		}
		if revenue != whole.Revenue {
			t.Fatalf("n=%d: per-shard revenue %d does not recompose to %d", n, revenue, whole.Revenue)
		}
		// Per-shard selectivities, weighted by shard size, recompose to
		// the whole-table selectivity.
		var weighted float64
		for _, s := range shards {
			weighted += Selectivity(s, q) * float64(s.N) / float64(tab.N)
		}
		if got := Selectivity(tab, q); !closeEnough(weighted, got) {
			t.Fatalf("n=%d: weighted shard selectivity %g != table selectivity %g", n, weighted, got)
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestPartitionRowsAreAliased(t *testing.T) {
	tab := Generate(256, 3)
	shards, err := Partition(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 2 row 0 is table row 128.
	if &shards[2].ShipDate[0] != &tab.ShipDate[128] {
		t.Fatal("shard does not alias the parent table's storage")
	}
}

func TestPartitionRejectsBadShapes(t *testing.T) {
	tab := Generate(128, 1)
	if _, err := Partition(tab, 0); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := Partition(tab, -1); err == nil {
		t.Fatal("accepted negative shards")
	}
	if _, err := Partition(tab, 3); err == nil {
		t.Fatal("accepted more shards than 64-row blocks")
	}
	if _, err := Partition(&Table{N: 100}, 2); err == nil {
		t.Fatal("accepted non-multiple-of-64 table")
	}
}
