package db

import (
	"testing"
	"testing/quick"

	"github.com/hipe-sim/hipe/internal/isa"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1000, 42)
	b := Generate(1000, 42)
	for i := 0; i < 1000; i++ {
		if a.ShipDate[i] != b.ShipDate[i] || a.Discount[i] != b.Discount[i] ||
			a.Quantity[i] != b.Quantity[i] || a.ExtendedPrice[i] != b.ExtendedPrice[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := Generate(1000, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.ShipDate[i] == c.ShipDate[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d identical shipdates", same)
	}
}

func TestGenerateRanges(t *testing.T) {
	tab := Generate(5000, 7)
	for i := 0; i < tab.N; i++ {
		if d := tab.ShipDate[i]; d < 0 || d >= ShipDateDays {
			t.Fatalf("shipdate %d out of range", d)
		}
		if d := tab.Discount[i]; d < 0 || d > 10 {
			t.Fatalf("discount %d out of range", d)
		}
		if q := tab.Quantity[i]; q < 1 || q > 50 {
			t.Fatalf("quantity %d out of range", q)
		}
		if p := tab.ExtendedPrice[i]; p < 90000 || p >= 106000 {
			t.Fatalf("extendedprice %d out of range", p)
		}
	}
}

func TestQ06SelectivityNearTPCH(t *testing.T) {
	tab := Generate(200000, 1)
	sel := Selectivity(tab, DefaultQ06())
	// TPC-H Q06 selects ~1.9% of lineitem. Expected here:
	// (365/2557) * (3/11) * (23/50) ≈ 0.0179.
	if sel < 0.012 || sel > 0.026 {
		t.Fatalf("Q06 selectivity = %.4f, want ≈ 0.018", sel)
	}
}

func TestPerColumnSelectivities(t *testing.T) {
	tab := Generate(100000, 2)
	q := DefaultQ06()
	ship := float64(isa.PopcountMask(ColumnMask(tab, q, FieldShipDate))) / float64(tab.N)
	disc := float64(isa.PopcountMask(ColumnMask(tab, q, FieldDiscount))) / float64(tab.N)
	qty := float64(isa.PopcountMask(ColumnMask(tab, q, FieldQuantity))) / float64(tab.N)
	if ship < 0.12 || ship > 0.17 {
		t.Fatalf("shipdate selectivity %.3f, want ≈ 0.143", ship)
	}
	if disc < 0.24 || disc > 0.31 {
		t.Fatalf("discount selectivity %.3f, want ≈ 0.27", disc)
	}
	if qty < 0.42 || qty > 0.50 {
		t.Fatalf("quantity selectivity %.3f, want ≈ 0.46", qty)
	}
}

func TestReferenceAgainstBruteForce(t *testing.T) {
	tab := Generate(777, 5)
	q := DefaultQ06()
	ref := Reference(tab, q)
	matches := 0
	var revenue int64
	for i := 0; i < tab.N; i++ {
		m := tab.ShipDate[i] >= q.ShipLo && tab.ShipDate[i] < q.ShipHi &&
			tab.Discount[i] >= q.DiscLo && tab.Discount[i] <= q.DiscHi &&
			tab.Quantity[i] < q.QtyHi
		if m != (ref.Bitmask[i/8]&(1<<(i%8)) != 0) {
			t.Fatalf("bitmask wrong at %d", i)
		}
		if m {
			matches++
			revenue += int64(tab.ExtendedPrice[i]) * int64(tab.Discount[i])
		}
	}
	if matches != ref.Matches || revenue != ref.Revenue {
		t.Fatalf("matches/revenue = %d/%d, want %d/%d",
			ref.Matches, ref.Revenue, matches, revenue)
	}
}

// Property: the AND of the three column masks equals the full bitmask.
func TestColumnMasksComposeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		tab := Generate(n, seed)
		q := DefaultQ06()
		ref := Reference(tab, q)
		s := ColumnMask(tab, q, FieldShipDate)
		d := ColumnMask(tab, q, FieldDiscount)
		qt := ColumnMask(tab, q, FieldQuantity)
		for i := range ref.Bitmask {
			if ref.Bitmask[i] != s[i]&d[i]&qt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnMaskPanicsOnNonPredicateColumn(t *testing.T) {
	tab := Generate(8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for extendedprice mask")
		}
	}()
	ColumnMask(tab, DefaultQ06(), FieldExtendedPrice)
}

func TestArena(t *testing.T) {
	a := NewArena(1024)
	p0 := a.Alloc(10, 1)
	if p0 != 0 {
		t.Fatalf("first alloc at %d", p0)
	}
	p1 := a.Alloc(16, 256)
	if p1 != 256 {
		t.Fatalf("aligned alloc at %d, want 256", p1)
	}
	if a.Used() != 272 {
		t.Fatalf("used = %d", a.Used())
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena(64)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	a.Alloc(100, 1)
}

func TestArenaBadAlignPanics(t *testing.T) {
	a := NewArena(64)
	defer func() {
		if recover() == nil {
			t.Fatal("bad alignment did not panic")
		}
	}()
	a.Alloc(8, 3)
}

func TestLayoutNSM(t *testing.T) {
	tab := Generate(100, 9)
	image := make([]byte, 1<<16)
	a := NewArena(uint64(len(image)))
	l := LayoutNSM(image, a, tab)
	if l.Base%256 != 0 {
		t.Fatal("NSM base not row aligned")
	}
	for i := 0; i < tab.N; i++ {
		off := uint64(l.TupleAddr(i))
		if isa.LaneAt(image[off:], FieldShipDate) != tab.ShipDate[i] {
			t.Fatalf("shipdate wrong at tuple %d", i)
		}
		if isa.LaneAt(image[off:], FieldQuantity) != tab.Quantity[i] {
			t.Fatalf("quantity wrong at tuple %d", i)
		}
		// Filler pattern present.
		if isa.LaneAt(image[off:], 10) != 0x0F0A {
			t.Fatalf("filler wrong at tuple %d: %#x", i, isa.LaneAt(image[off:], 10))
		}
	}
	if l.FieldAddr(3, FieldDiscount) != l.Base+3*64+4 {
		t.Fatal("FieldAddr arithmetic wrong")
	}
}

func TestLayoutDSM(t *testing.T) {
	tab := Generate(100, 9)
	image := make([]byte, 1<<16)
	a := NewArena(uint64(len(image)))
	l := LayoutDSM(image, a, tab)
	for _, col := range []int{FieldShipDate, FieldDiscount, FieldQuantity, FieldExtendedPrice} {
		base := l.ColBase[col]
		if base%256 != 0 {
			t.Fatalf("column %d base %d not row aligned", col, base)
		}
	}
	for i := 0; i < tab.N; i++ {
		if isa.LaneAt(image[l.ColBase[FieldDiscount]:], i) != tab.Discount[i] {
			t.Fatalf("discount wrong at %d", i)
		}
	}
	if l.ValueAddr(FieldQuantity, 10) != l.ColBase[FieldQuantity]+40 {
		t.Fatal("ValueAddr arithmetic wrong")
	}
	// Columns must not overlap: each column occupies N*4 bytes rounded up
	// to whole 256 B rows.
	padded := (uint64(tab.N*ColumnWidth) + 255) &^ 255
	if uint64(l.ColBase[FieldDiscount]) < uint64(l.ColBase[FieldShipDate])+padded {
		t.Fatal("columns overlap")
	}
}
