package db

import (
	"reflect"
	"testing"
)

func TestGroupKeysDeterministicAndSeparate(t *testing.T) {
	// Same seed, same flags.
	a := Generate(2048, 7)
	b := Generate(2048, 7)
	if !reflect.DeepEqual(a.ReturnFlag, b.ReturnFlag) || !reflect.DeepEqual(a.LineStatus, b.LineStatus) {
		t.Fatal("group keys are not deterministic")
	}
	// The flag draws come from a separate generator: the Q06 columns of
	// a table generated today must match a table generated before the
	// flags existed (spot-pinned values from the seed corpus).
	tab := Generate(64, 42)
	if tab.ShipDate[0] != 688 || tab.Quantity[0] != 9 {
		t.Fatalf("Q06 columns changed under the flag draws: shipdate[0]=%d quantity[0]=%d",
			tab.ShipDate[0], tab.Quantity[0])
	}
}

func TestGroupKeyRangesAndCorrelation(t *testing.T) {
	tab := Generate(8192, 42)
	for i := 0; i < tab.N; i++ {
		rf, ls := tab.ReturnFlag[i], tab.LineStatus[i]
		if rf < 0 || rf >= RFValues || ls < 0 || ls >= LSValues {
			t.Fatalf("tuple %d: flags (%d, %d) out of range", i, rf, ls)
		}
		// dbgen correlation: anything shipped after CURRENTDATE is open
		// and cannot have been returned yet.
		if tab.ShipDate[i] > Day19950617 {
			if ls != LineStatusO {
				t.Fatalf("tuple %d: shipped after CURRENTDATE but linestatus F", i)
			}
			if rf != ReturnFlagN {
				t.Fatalf("tuple %d: shipped after CURRENTDATE but returnflag %d", i, rf)
			}
		} else if ls != LineStatusF {
			t.Fatalf("tuple %d: shipped before CURRENTDATE but linestatus O", i)
		}
	}
}

func TestClusteredRederivesFlags(t *testing.T) {
	tab := GenerateClustered(4096, 42, 10)
	for i := 0; i < tab.N; i++ {
		want := int32(LineStatusF)
		if tab.ShipDate[i] > Day19950617 {
			want = LineStatusO
		}
		if tab.LineStatus[i] != want {
			t.Fatalf("clustered tuple %d: linestatus %d does not follow its clustered shipdate %d",
				i, tab.LineStatus[i], tab.ShipDate[i])
		}
	}
}

func TestReferenceQ1AgainstBruteForce(t *testing.T) {
	tab := Generate(4096, 3)
	q := DefaultQ01()
	res := ReferenceQ1(tab, q)

	var want Q1Result
	for g := range want.Groups {
		want.Groups[g].ReturnFlag = int32(g / LSValues)
		want.Groups[g].LineStatus = int32(g % LSValues)
	}
	matches := 0
	for i := 0; i < tab.N; i++ {
		if tab.ShipDate[i] > q.ShipCut {
			continue
		}
		matches++
		a := &want.Groups[GroupID(tab.ReturnFlag[i], tab.LineStatus[i])]
		a.Count++
		a.SumQty += int64(tab.Quantity[i])
		a.SumPrice += int64(tab.ExtendedPrice[i])
		a.SumRevenue += int64(tab.ExtendedPrice[i]) * int64(tab.Discount[i])
	}
	if res.Matches != matches {
		t.Fatalf("matches %d, brute force %d", res.Matches, matches)
	}
	if res.Groups != want.Groups {
		t.Fatalf("groups %+v, brute force %+v", res.Groups, want.Groups)
	}
	// The group counts tile the filtered rows exactly.
	var rows int64
	for _, g := range res.Groups {
		rows += g.Count
	}
	if rows != int64(matches) {
		t.Fatalf("group counts sum to %d, matches %d", rows, matches)
	}
}

func TestQ1SelectivityNearTPCH(t *testing.T) {
	tab := Generate(65536, 42)
	sel := SelectivityQ1(tab, DefaultQ01())
	if sel < 0.90 || sel > 0.99 {
		t.Fatalf("Q01 filter selectivity %.4f outside the TPC-H ~0.95 ballpark", sel)
	}
	// The populated groups mirror TPC-H Query 01's four result rows.
	res := ReferenceQ1(tab, DefaultQ01())
	populated := 0
	for _, g := range res.Groups {
		if g.Count > 0 {
			populated++
		}
	}
	if populated != 4 {
		t.Fatalf("%d populated groups, want the TPC-H 4 (A/F, R/F, N/F, N/O)", populated)
	}
}

func TestQ1GroupPartialsRecomposeAcrossShards(t *testing.T) {
	tab := Generate(4096, 42)
	q := DefaultQ01()
	whole := ReferenceQ1(tab, q)
	for _, n := range []int{1, 2, 4, 8} {
		shards, err := Partition(tab, n)
		if err != nil {
			t.Fatal(err)
		}
		var merged Q1Result
		for g := range merged.Groups {
			merged.Groups[g].ReturnFlag = int32(g / LSValues)
			merged.Groups[g].LineStatus = int32(g % LSValues)
		}
		for _, s := range shards {
			part := ReferenceQ1(s, q)
			merged.Matches += part.Matches
			for g := range merged.Groups {
				merged.Groups[g].Add(part.Groups[g])
			}
		}
		if merged.Matches != whole.Matches {
			t.Fatalf("%d shards: merged matches %d, whole %d", n, merged.Matches, whole.Matches)
		}
		if merged.Groups != whole.Groups {
			t.Fatalf("%d shards: merged groups diverge from the whole-table reference", n)
		}
		if merged.Revenue() != whole.Revenue() {
			t.Fatalf("%d shards: merged revenue %d, whole %d", n, merged.Revenue(), whole.Revenue())
		}
	}
}

func TestLayoutDSMAppendsGroupKeyColumns(t *testing.T) {
	tab := Generate(256, 1)
	imgA := make([]byte, 1<<20)
	imgB := make([]byte, 1<<20)
	// The default four-column layout must place those columns exactly
	// where the six-column layout places them — the Q06 paths depend on
	// the group keys appending after, never reshuffling.
	la := LayoutDSM(imgA, NewArena(uint64(len(imgA))), tab)
	lb := LayoutDSM(imgB, NewArena(uint64(len(imgB))), tab,
		FieldShipDate, FieldDiscount, FieldQuantity, FieldExtendedPrice,
		FieldReturnFlag, FieldLineStatus)
	for _, col := range []int{FieldShipDate, FieldDiscount, FieldQuantity, FieldExtendedPrice} {
		if la.ColBase[col] != lb.ColBase[col] {
			t.Fatalf("column %d moved: %#x with four columns, %#x with six", col, la.ColBase[col], lb.ColBase[col])
		}
	}
	for _, col := range []int{FieldReturnFlag, FieldLineStatus} {
		base := lb.ColBase[col]
		if base == 0 {
			t.Fatalf("column %d missing from the six-column layout", col)
		}
		vals := tab.ReturnFlag
		if col == FieldLineStatus {
			vals = tab.LineStatus
		}
		for i, v := range vals {
			addr := uint64(lb.ValueAddr(col, i))
			if got := int32(uint32(imgB[addr]) | uint32(imgB[addr+1])<<8 | uint32(imgB[addr+2])<<16 | uint32(imgB[addr+3])<<24); got != v {
				t.Fatalf("column %d value %d: image %d, table %d", col, i, got, v)
			}
		}
	}
}
