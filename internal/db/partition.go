// Horizontal partitioning for the serving layer: a table is split into
// contiguous row-range shards, each a standalone Table that satisfies
// the generator's n%64==0 invariant, so every shard can be laid out and
// scanned exactly like a whole table. Partials computed per shard
// (match counts, bitmask cardinalities, revenue sums) recompose to the
// whole-table answer because the ranges tile the table exactly.
package db

import "fmt"

// Partition splits t into n contiguous shards. Row blocks of 64 (the
// layout/scan granularity) are distributed as evenly as possible —
// shard sizes differ by at most 64 rows — and every shard's size is a
// positive multiple of 64, preserving the invariant Generate and the
// query compilers rely on. Shards alias t's column storage; neither
// side may mutate values afterwards.
func Partition(t *Table, n int) ([]*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("db: shard count %d must be positive", n)
	}
	if t.N <= 0 || t.N%64 != 0 {
		return nil, fmt.Errorf("db: table size %d is not a positive multiple of 64", t.N)
	}
	blocks := t.N / 64
	if blocks < n {
		return nil, fmt.Errorf("db: cannot cut %d rows into %d shards of at least 64 rows", t.N, n)
	}
	shards := make([]*Table, n)
	lo := 0
	for i := 0; i < n; i++ {
		// First blocks%n shards take one extra 64-row block.
		b := blocks / n
		if i < blocks%n {
			b++
		}
		hi := lo + b*64
		shards[i] = &Table{
			N:             hi - lo,
			ShipDate:      t.ShipDate[lo:hi:hi],
			Discount:      t.Discount[lo:hi:hi],
			Quantity:      t.Quantity[lo:hi:hi],
			ExtendedPrice: t.ExtendedPrice[lo:hi:hi],
			ReturnFlag:    t.ReturnFlag[lo:hi:hi],
			LineStatus:    t.LineStatus[lo:hi:hi],
		}
		lo = hi
	}
	return shards, nil
}
