package cliutil

import (
	"flag"
	"strings"
	"testing"
)

func testFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.String("alpha", "a", "first `list`")
	fs.Int("beta", 3, "second")
	fs.Bool("gamma", false, "third")
	return fs
}

func TestPrintGroupedUsage(t *testing.T) {
	fs := testFlagSet()
	var b strings.Builder
	PrintGroupedUsage(&b, []FlagGroup{
		{Title: "one", Flags: []string{"alpha"}},
		{Title: "two", Flags: []string{"beta", "gamma"}},
	}, fs)
	out := b.String()
	for _, want := range []string{"one:", "two:", "-alpha list", "-beta int", "-gamma", "(default a)", "(default 3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ungrouped") {
		t.Errorf("fully-grouped flag set produced an ungrouped section:\n%s", out)
	}
	if strings.Index(out, "one:") > strings.Index(out, "two:") {
		t.Error("groups printed out of declared order")
	}
}

func TestPrintGroupedUsageStray(t *testing.T) {
	fs := testFlagSet()
	var b strings.Builder
	PrintGroupedUsage(&b, []FlagGroup{{Title: "one", Flags: []string{"alpha"}}}, fs)
	out := b.String()
	if !strings.Contains(out, "ungrouped flags:") || !strings.Contains(out, "-beta") {
		t.Errorf("stray flags not surfaced:\n%s", out)
	}
}
