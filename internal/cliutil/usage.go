// Package cliutil holds the small pieces the hipe-* commands share.
// Its grouped-usage renderer replaces flag.PrintDefaults for commands
// whose flag count has outgrown one flat alphabetical list: flags print
// by subsystem, in a declared order, so -h reads as a map of the tool
// rather than a dictionary of it.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// FlagGroup is one subsystem section of a command's usage output: a
// title plus the flag names it owns, printed in the listed order.
type FlagGroup struct {
	Title string
	Flags []string
}

// PrintGroupedUsage renders fs's flags grouped by subsystem. Every
// group flag must be registered; a registered flag missing from every
// group falls into a trailing "ungrouped flags" section — tests pin
// that section's absence, so adding a flag without filing it under a
// subsystem fails the build's usage test rather than silently
// degrading the help text.
func PrintGroupedUsage(w io.Writer, groups []FlagGroup, fs *flag.FlagSet) {
	grouped := map[string]bool{}
	for _, g := range groups {
		fmt.Fprintf(w, "%s:\n", g.Title)
		for _, name := range g.Flags {
			f := fs.Lookup(name)
			if f == nil {
				fmt.Fprintf(w, "  -%s\n    \t(group lists unregistered flag)\n", name)
				continue
			}
			grouped[name] = true
			printFlag(w, f)
		}
		fmt.Fprintln(w)
	}
	var stray []*flag.Flag
	fs.VisitAll(func(f *flag.Flag) {
		if !grouped[f.Name] {
			stray = append(stray, f)
		}
	})
	if len(stray) > 0 {
		fmt.Fprintln(w, "ungrouped flags:")
		for _, f := range stray {
			printFlag(w, f)
		}
	}
}

// printFlag renders one flag in flag.PrintDefaults' two-line shape.
func printFlag(w io.Writer, f *flag.Flag) {
	arg, usage := flag.UnquoteUsage(f)
	line := "  -" + f.Name
	if arg != "" {
		line += " " + arg
	}
	line += "\n    \t" + strings.ReplaceAll(usage, "\n", "\n    \t")
	if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
		line += fmt.Sprintf(" (default %s)", f.DefValue)
	}
	fmt.Fprintln(w, line)
}
