package fault

import (
	"math"
	"testing"
)

// FuzzSpecValidate is the satellite fuzz target: Validate and New must
// reject any malformed spec with an error — never a panic, never an
// accepted NaN/Inf knob — and every accepted spec must build an
// injector whose queries behave (bounded stalls, factor-or-1 slowdowns,
// half-open outage windows) and replay deterministically. Run with
// `go test -fuzz FuzzSpecValidate ./internal/fault/`; the committed
// corpus under testdata/fuzz seeds each rejection branch (and runs as
// plain tests on every `go test`).
func FuzzSpecValidate(f *testing.F) {
	// Seeds: the happy path, each rejection branch, boundary values.
	f.Add(uint64(7), uint64(500), uint64(150), uint64(300), uint64(100), 3.0,
		uint64(400), uint64(20), uint64(60), 1, uint64(40), uint64(120), 2, 2)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), 0.0,
		uint64(0), uint64(0), uint64(0), -1, uint64(0), uint64(0), 0, 0)
	f.Add(uint64(1), uint64(100), uint64(0), uint64(100), uint64(0), 1.0,
		uint64(100), uint64(0), uint64(5), 0, uint64(10), uint64(0), 1, 1)
	f.Add(uint64(2), uint64(0), uint64(40), uint64(0), uint64(20), math.NaN(),
		uint64(0), uint64(10), uint64(30), 5, uint64(50), uint64(20), 2, 4)
	f.Add(uint64(3), uint64(1), uint64(1), uint64(1), uint64(1), math.Inf(1),
		uint64(1), uint64(1), uint64(1), 0, ^uint64(0)-5, uint64(20), 8, 8)

	f.Fuzz(func(t *testing.T, seed uint64,
		crashEvery, crashDown uint64,
		straggleEvery, straggleFor uint64, straggleFactor float64,
		stallEvery, stallFor, stallMax uint64,
		crashPool int, crashAt, crashDur uint64,
		pools, shards int) {
		// Bound the means so accepted specs cannot make extend() crawl
		// cycle-by-cycle across huge probe ranges.
		spec := Spec{
			Seed:           seed,
			CrashEvery:     crashEvery % 100_000,
			CrashDown:      crashDown % 100_000,
			StraggleEvery:  straggleEvery % 100_000,
			StraggleFor:    straggleFor % 100_000,
			StraggleFactor: straggleFactor,
			StallEvery:     stallEvery % 100_000,
			StallFor:       stallFor % 100_000,
			StallMax:       stallMax % 100_000,
		}
		if crashDur != 0 || crashAt != 0 || crashPool != 0 {
			spec.Crashes = []Crash{{Pool: crashPool, At: crashAt, Down: crashDur}}
		}
		if err := spec.Validate(); err != nil {
			// Rejection is the contract for malformed specs; New must
			// agree.
			if _, nerr := New(spec, pools%16, shards%16); nerr == nil {
				t.Fatal("Validate rejected a spec New accepted")
			}
			return
		}
		// Accepted specs must never carry a non-finite factor.
		if spec.StraggleEvery > 0 &&
			(math.IsNaN(spec.StraggleFactor) || math.IsInf(spec.StraggleFactor, 0)) {
			t.Fatalf("accepted straggler factor %g", spec.StraggleFactor)
		}
		in, err := New(spec, pools%16, shards%16)
		if err != nil {
			// Geometry rejection (pool bounds, non-positive fleet) is fine.
			return
		}
		if in == nil {
			if spec.Enabled() {
				t.Fatal("enabled spec built a nil injector")
			}
			return
		}
		p, s := 0, 0
		if n := pools % 16; n > 0 {
			p = int(seed % uint64(n))
		}
		if n := shards % 16; n > 0 {
			s = int(crashAt % uint64(n))
		}
		for _, tt := range []uint64{0, 1, 999, 12_345, 500_000} {
			until, down := in.DownUntil(p, tt)
			if down && until <= tt {
				t.Fatalf("outage at %d recovers at non-future cycle %d", tt, until)
			}
			if slow := in.Slowdown(p, s, tt); slow != 1 && slow != spec.StraggleFactor {
				t.Fatalf("slowdown %g at %d, want 1 or %g", slow, tt, spec.StraggleFactor)
			}
			if st := in.StallUntil(p, s, tt); st < tt {
				t.Fatalf("stall at %d resolves backwards to %d", tt, st)
			}
			if start, end, ok := in.NextCrash(p, tt, tt+10_000); ok &&
				(start <= tt || start > tt+10_000 || end <= start) {
				t.Fatalf("NextCrash(%d) window (%d, %d) malformed", tt, start, end)
			}
		}
		// Determinism: a fresh injector answers identically.
		in2, err := New(spec, pools%16, shards%16)
		if err != nil {
			t.Fatalf("second build failed: %v", err)
		}
		for _, tt := range []uint64{0, 999, 12_345, 500_000} {
			u1, d1 := in.DownUntil(p, tt)
			u2, d2 := in2.DownUntil(p, tt)
			if u1 != u2 || d1 != d2 {
				t.Fatalf("DownUntil(%d) differs across identical builds", tt)
			}
			if in.StallUntil(p, s, tt) != in2.StallUntil(p, s, tt) {
				t.Fatalf("StallUntil(%d) differs across identical builds", tt)
			}
		}
	})
}
