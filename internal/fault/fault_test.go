package fault

import (
	"math"
	"testing"
)

// TestSpecValidate is the malformed-spec table: incomplete component
// declarations and non-finite knobs must all be rejected.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"crash", Spec{CrashEvery: 100, CrashDown: 40}, true},
		{"crash no down", Spec{CrashEvery: 100}, false},
		{"down no crash", Spec{CrashDown: 40}, false},
		{"straggle", Spec{StraggleEvery: 100, StraggleFor: 20, StraggleFactor: 3}, true},
		{"straggle no duration", Spec{StraggleEvery: 100, StraggleFactor: 3}, false},
		{"straggle factor 1", Spec{StraggleEvery: 100, StraggleFor: 20, StraggleFactor: 1}, false},
		{"straggle factor below 1", Spec{StraggleEvery: 100, StraggleFor: 20, StraggleFactor: 0.5}, false},
		{"straggle factor NaN", Spec{StraggleEvery: 100, StraggleFor: 20, StraggleFactor: math.NaN()}, false},
		{"straggle factor Inf", Spec{StraggleEvery: 100, StraggleFor: 20, StraggleFactor: math.Inf(1)}, false},
		{"straggle knobs no rate", Spec{StraggleFor: 20}, false},
		{"stall", Spec{StallEvery: 100, StallFor: 10}, true},
		{"stall bounded", Spec{StallEvery: 100, StallFor: 10, StallMax: 30}, true},
		{"stall no duration", Spec{StallEvery: 100}, false},
		{"stall bound below mean", Spec{StallEvery: 100, StallFor: 10, StallMax: 5}, false},
		{"stall knobs no rate", Spec{StallMax: 30}, false},
		{"scheduled", Spec{Crashes: []Crash{{Pool: 0, At: 50, Down: 20}}}, true},
		{"scheduled zero outage", Spec{Crashes: []Crash{{Pool: 0, At: 50}}}, false},
		{"scheduled negative pool", Spec{Crashes: []Crash{{Pool: -1, At: 50, Down: 20}}}, false},
		{"scheduled overflow", Spec{Crashes: []Crash{{Pool: 0, At: math.MaxUint64 - 5, Down: 20}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestNewGeometry: the injector rejects scheduled crashes outside the
// fleet and non-positive geometries; a disabled spec builds nil.
func TestNewGeometry(t *testing.T) {
	if in, err := New(Spec{}, 2, 4); err != nil || in != nil {
		t.Fatalf("disabled spec built (%v, %v), want nil injector", in, err)
	}
	if _, err := New(Spec{Crashes: []Crash{{Pool: 2, At: 10, Down: 5}}}, 2, 4); err == nil {
		t.Fatal("scheduled crash on pool 2 accepted by a 2-pool fleet")
	}
	if _, err := New(Spec{CrashEvery: 100, CrashDown: 10}, 0, 4); err == nil {
		t.Fatal("zero-pool geometry accepted")
	}
}

// TestNilInjectorIsHealthy: every query on the nil injector
// short-circuits to the healthy answer.
func TestNilInjectorIsHealthy(t *testing.T) {
	var in *Injector
	if _, down := in.DownUntil(0, 100); down {
		t.Fatal("nil injector reports an outage")
	}
	if _, _, ok := in.NextCrash(0, 0, 1000); ok {
		t.Fatal("nil injector reports a crash")
	}
	if s := in.Slowdown(0, 0, 100); s != 1 {
		t.Fatalf("nil injector slowdown %g, want 1", s)
	}
	if u := in.StallUntil(0, 0, 100); u != 100 {
		t.Fatalf("nil injector stall until %d, want 100", u)
	}
	if sp := in.Spec(); sp.Enabled() {
		t.Fatal("nil injector echoes an enabled spec")
	}
}

// TestScheduledCrashWindows: DownUntil and NextCrash agree exactly with
// a pinned outage's half-open [At, At+Down) window.
func TestScheduledCrashWindows(t *testing.T) {
	in, err := New(Spec{Crashes: []Crash{{Pool: 1, At: 100, Down: 50}}}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, down := in.DownUntil(1, 99); down {
		t.Fatal("down before the scheduled start")
	}
	for _, tt := range []uint64{100, 125, 149} {
		until, down := in.DownUntil(1, tt)
		if !down || until != 150 {
			t.Fatalf("at %d: down=%v until=%d, want down until 150", tt, down, until)
		}
	}
	if _, down := in.DownUntil(1, 150); down {
		t.Fatal("still down at the recovery cycle")
	}
	if _, down := in.DownUntil(0, 125); down {
		t.Fatal("outage leaked onto pool 0")
	}
	start, end, ok := in.NextCrash(1, 60, 200)
	if !ok || start != 100 || end != 150 {
		t.Fatalf("NextCrash = (%d, %d, %v), want (100, 150, true)", start, end, ok)
	}
	if _, _, ok := in.NextCrash(1, 100, 200); ok {
		t.Fatal("NextCrash includes a crash at the exclusive `from` bound")
	}
	if _, _, ok := in.NextCrash(1, 10, 99); ok {
		t.Fatal("NextCrash found a crash before the window")
	}
}

// TestQueryOrderIndependence is the determinism pin: fault state at any
// cycle must be a pure function of (spec, geometry, cycle), so querying
// in scrambled order — or twice — returns identical answers to a fresh
// injector queried in time order.
func TestQueryOrderIndependence(t *testing.T) {
	spec := Spec{
		Seed:       3,
		CrashEvery: 400, CrashDown: 90,
		StraggleEvery: 300, StraggleFor: 80, StraggleFactor: 2.5,
		StallEvery: 250, StallFor: 30, StallMax: 70,
		Crashes: []Crash{{Pool: 0, At: 500, Down: 120}},
	}
	build := func() *Injector {
		in, err := New(spec, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	type probe struct {
		until, stall uint64
		down         bool
		slow         float64
	}
	sample := func(in *Injector, ts []uint64) []probe {
		out := make([]probe, 0, len(ts)*4)
		for _, tt := range ts {
			for p := 0; p < 2; p++ {
				for s := 0; s < 2; s++ {
					until, down := in.DownUntil(p, tt)
					out = append(out, probe{
						until: until, down: down,
						slow:  in.Slowdown(p, s, tt),
						stall: in.StallUntil(p, s, tt),
					})
				}
			}
		}
		return out
	}
	forward := []uint64{0, 100, 500, 900, 1400, 2000, 5000}
	scrambled := []uint64{5000, 100, 2000, 0, 900, 500, 1400}
	a := sample(build(), forward)
	// Index scrambled probes back into forward order for comparison.
	bByTime := map[uint64][]probe{}
	inB := build()
	for _, tt := range scrambled {
		bByTime[tt] = sample(inB, []uint64{tt})
	}
	for i, tt := range forward {
		for j := 0; j < 4; j++ {
			if a[i*4+j] != bByTime[tt][j] {
				t.Fatalf("cycle %d probe %d: forward %+v, scrambled %+v", tt, j, a[i*4+j], bByTime[tt][j])
			}
		}
	}
	// Re-querying the same injector is idempotent.
	if c := sample(inB, forward); len(c) != len(a) {
		t.Fatal("sample size mismatch")
	} else {
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("probe %d: fresh %+v, re-queried %+v", i, a[i], c[i])
			}
		}
	}
}

// TestStallBounded: every stall window respects the hard bound, and
// StallUntil never moves time backwards.
func TestStallBounded(t *testing.T) {
	const bound = 25
	in, err := New(Spec{Seed: 9, StallEvery: 50, StallFor: 20, StallMax: bound}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for tt := uint64(0); tt < 20_000; tt += 7 {
		until := in.StallUntil(0, 0, tt)
		if until < tt {
			t.Fatalf("stall at %d resolves to earlier cycle %d", tt, until)
		}
		if until > tt && until-tt > bound {
			t.Fatalf("stall at %d lasts %d cycles, bound %d", tt, until-tt, bound)
		}
	}
}

// TestStragglerEpisodes: Slowdown returns exactly the configured factor
// inside episodes and 1 outside, and episodes do occur.
func TestStragglerEpisodes(t *testing.T) {
	in, err := New(Spec{Seed: 4, StraggleEvery: 100, StraggleFor: 60, StraggleFactor: 3.5}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	slowed, healthy := false, false
	for tt := uint64(0); tt < 10_000; tt += 11 {
		switch s := in.Slowdown(0, 1, tt); s {
		case 3.5:
			slowed = true
		case 1:
			healthy = true
		default:
			t.Fatalf("slowdown %g at %d, want 1 or 3.5", s, tt)
		}
	}
	if !slowed || !healthy {
		t.Fatalf("episodes did not alternate (slowed=%v healthy=%v)", slowed, healthy)
	}
}

// TestSeedsDecorrelate: distinct seeds produce distinct fault
// timelines, equal seeds identical ones.
func TestSeedsDecorrelate(t *testing.T) {
	mk := func(seed uint64) *Injector {
		in, err := New(Spec{Seed: seed, CrashEvery: 200, CrashDown: 50}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	signature := func(in *Injector) []uint64 {
		var sig []uint64
		for tt := uint64(0); tt < 50_000; tt += 13 {
			if until, down := in.DownUntil(0, tt); down {
				sig = append(sig, tt, until)
			}
		}
		return sig
	}
	a, b, c := signature(mk(1)), signature(mk(1)), signature(mk(2))
	if len(a) == 0 {
		t.Fatal("seed 1 produced no outage in 50k cycles")
	}
	equal := func(x, y []uint64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !equal(a, b) {
		t.Fatal("equal seeds produced different timelines")
	}
	if equal(a, c) {
		t.Fatal("distinct seeds produced identical timelines")
	}
}

// TestZeroInjectorQueriesDoNotAllocate pins the healthy fast path: the
// nil injector must answer every query without touching the heap, which
// is what lets the serving replay keep its zero-alloc gates with faults
// off.
func TestZeroInjectorQueriesDoNotAllocate(t *testing.T) {
	var in *Injector
	allocs := testing.AllocsPerRun(200, func() {
		in.DownUntil(0, 1000)
		in.NextCrash(0, 0, 1000)
		in.Slowdown(0, 0, 1000)
		in.StallUntil(0, 0, 1000)
	})
	if allocs != 0 {
		t.Fatalf("nil injector queries allocate %.1f times per run, want 0", allocs)
	}
}
