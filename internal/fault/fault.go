// Package fault is the deterministic fault-injection layer of the
// serving fleet: a seeded specification of replica crashes (with later
// recovery), per-shard straggler slowdowns and transient stalls, and an
// Injector that answers point-in-virtual-time health queries during the
// fleet's single-threaded timeline replay.
//
// Determinism is the whole design. Every stochastic component draws
// from its own decorrelated RNG stream — one per pool for crashes, one
// per (pool, shard) for stragglers and stalls — derived from Spec.Seed
// exactly the way StreamSpec.Classes decorrelates class draws, so
// enabling faults never disturbs which predicates, plans or arrival
// times a load test contains: plan streams stay byte-identical.
// Schedules are materialised lazily but append-only per stream, so the
// state at cycle t is a pure function of (Spec, geometry, t) no matter
// in which order queries arrive. The replay that issues the queries is
// single-threaded, hence faulted reports stay byte-identical at any
// executor worker count.
//
// The zero Spec and the nil (or zero) Injector mean "perfectly healthy
// fleet": every query short-circuits without touching memory, which is
// what lets the serving layer keep its zero-alloc replay gates when no
// faults are configured.
package fault

import (
	"fmt"
	"math"
	"sort"

	"github.com/hipe-sim/hipe/internal/db"
)

// Crash is one scheduled replica-pool outage: pool goes down at cycle
// At and recovers Down cycles later. Scheduled crashes compose with the
// stochastic crash process — tests and demos pin a mid-run outage while
// background faults keep arriving.
type Crash struct {
	// Pool is the replica pool index the outage hits.
	Pool int
	// At is the virtual cycle the pool goes down.
	At uint64
	// Down is the outage duration in cycles (must be positive).
	Down uint64
}

// Spec declares a deterministic fault schedule. The zero value injects
// nothing. All durations are virtual (simulated) cycles; all stochastic
// components are exponential renewal processes seeded from Seed.
type Spec struct {
	// Seed derives every fault stream. Two equal specs replay the
	// identical fault timeline.
	Seed uint64

	// CrashEvery is the mean up-time between stochastic crashes of one
	// replica pool (0 disables stochastic crashes); CrashDown is the
	// mean outage duration before the pool recovers.
	CrashEvery uint64
	CrashDown  uint64

	// StraggleEvery is the mean healthy time between straggler episodes
	// of one (pool, shard) pair (0 disables); StraggleFor the mean
	// episode duration; StraggleFactor the multiplicative service-cycle
	// inflation while the episode lasts (> 1).
	StraggleEvery  uint64
	StraggleFor    uint64
	StraggleFactor float64

	// StallEvery is the mean quiet time between transient stalls of one
	// (pool, shard) pair (0 disables); StallFor the mean stall duration;
	// StallMax a hard per-stall bound (0 defaults to 4 x StallFor), so
	// every stall is of bounded duration by construction.
	StallEvery uint64
	StallFor   uint64
	StallMax   uint64

	// Crashes are scheduled outages, validated against the fleet's pool
	// count when the injector is built.
	Crashes []Crash
}

// Enabled reports whether the spec injects any fault at all.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.CrashEvery > 0 || s.StraggleEvery > 0 || s.StallEvery > 0 || len(s.Crashes) > 0
}

// Validate rejects malformed specs: NaN/Inf/negative knobs, incomplete
// component declarations, and non-positive scheduled outages. Pool
// bounds of scheduled crashes are checked by New, which knows the
// fleet geometry.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.CrashEvery > 0 && s.CrashDown == 0 {
		return fmt.Errorf("fault: crash process needs a positive mean outage duration")
	}
	if s.CrashEvery == 0 && s.CrashDown > 0 {
		return fmt.Errorf("fault: crash outage duration set without a crash rate")
	}
	if s.StraggleEvery > 0 {
		if s.StraggleFor == 0 {
			return fmt.Errorf("fault: straggler process needs a positive mean episode duration")
		}
		if math.IsNaN(s.StraggleFactor) || math.IsInf(s.StraggleFactor, 0) || s.StraggleFactor <= 1 {
			return fmt.Errorf("fault: straggler factor %g must be a finite multiplier > 1", s.StraggleFactor)
		}
	} else if s.StraggleFor > 0 || s.StraggleFactor != 0 {
		return fmt.Errorf("fault: straggler knobs set without a straggler rate")
	}
	if s.StallEvery > 0 {
		if s.StallFor == 0 {
			return fmt.Errorf("fault: stall process needs a positive mean duration")
		}
		if s.StallMax > 0 && s.StallMax < s.StallFor {
			return fmt.Errorf("fault: stall bound %d below the mean duration %d", s.StallMax, s.StallFor)
		}
	} else if s.StallFor > 0 || s.StallMax > 0 {
		return fmt.Errorf("fault: stall knobs set without a stall rate")
	}
	for i, c := range s.Crashes {
		if c.Pool < 0 {
			return fmt.Errorf("fault: scheduled crash %d: negative pool %d", i, c.Pool)
		}
		if c.Down == 0 {
			return fmt.Errorf("fault: scheduled crash %d: outage duration must be positive", i)
		}
		if c.At > math.MaxUint64-c.Down {
			return fmt.Errorf("fault: scheduled crash %d: outage overflows the cycle counter", i)
		}
	}
	return nil
}

// window is one half-open fault interval [Start, End).
type window struct{ start, end uint64 }

// stream is one entity's lazily-materialised renewal schedule:
// alternating healthy gaps and fault windows, drawn from the entity's
// own RNG. Windows are appended in time order and never mutated, so the
// schedule covering any cycle t is a pure function of the seed — query
// order cannot change it.
type stream struct {
	r        db.RNG
	meanUp   uint64
	meanDown uint64
	maxDown  uint64 // 0 = unbounded
	frontier uint64 // generation has covered [0, frontier)
	windows  []window
}

// expGap draws one exponential gap with the given mean, quantised to
// whole cycles; the clamp keeps the log finite, the +1 keeps every
// segment strictly advancing the clock.
func expGap(r *db.RNG, mean uint64) uint64 {
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return uint64(math.Round(-math.Log(u)*float64(mean))) + 1
}

// extend materialises windows until the generation frontier passes t,
// so every window overlapping [0, t] exists.
func (st *stream) extend(t uint64) {
	for st.frontier <= t {
		up := expGap(&st.r, st.meanUp)
		start := st.frontier + up
		down := expGap(&st.r, st.meanDown)
		if st.maxDown > 0 && down > st.maxDown {
			down = st.maxDown
		}
		st.windows = append(st.windows, window{start: start, end: start + down})
		st.frontier = start + down
	}
}

// at returns the window containing cycle t, if any.
func (st *stream) at(t uint64) (window, bool) {
	st.extend(t)
	i := sort.Search(len(st.windows), func(i int) bool { return st.windows[i].end > t })
	if i < len(st.windows) && st.windows[i].start <= t {
		return st.windows[i], true
	}
	return window{}, false
}

// nextIn returns the first window starting strictly inside (from, to],
// if any.
func (st *stream) nextIn(from, to uint64) (window, bool) {
	st.extend(to)
	i := sort.Search(len(st.windows), func(i int) bool { return st.windows[i].start > from })
	if i < len(st.windows) && st.windows[i].start <= to {
		return st.windows[i], true
	}
	return window{}, false
}

// Injector answers point-in-time health queries for one fleet geometry.
// Build it with New; a nil or zero Injector reports a perfectly healthy
// fleet on every query without allocating. Not safe for concurrent use
// — it is queried only from the fleet's single-threaded virtual-time
// replay.
type Injector struct {
	spec   Spec
	pools  int
	shards int

	// crash[p] is pool p's stochastic outage schedule; scheduled[p] its
	// sorted scheduled outages. straggle and stall are indexed
	// [pool*shards + shard].
	crash     []stream
	scheduled [][]window
	straggle  []stream
	stall     []stream
}

// streamSeed decorrelates one entity's RNG stream from the spec seed:
// a distinct odd-constant mix per fault kind and entity index, the
// same construction StreamSpec uses to decorrelate class draws.
func streamSeed(seed uint64, kind, entity int) uint64 {
	h := seed ^ (uint64(kind+1) * 0x9E37_79B9_7F4A_7C15)
	h ^= (uint64(entity) + 1) * 0xBF58_476D_1CE4_E5B9
	h ^= h >> 31
	return h
}

// New validates spec against the fleet geometry and builds its
// injector. A disabled spec returns a nil injector — the healthy,
// zero-alloc fast path.
func New(spec Spec, pools, shards int) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Enabled() {
		return nil, nil
	}
	if pools <= 0 || shards <= 0 {
		return nil, fmt.Errorf("fault: injector needs a positive fleet geometry (%d pools, %d shards)", pools, shards)
	}
	in := &Injector{spec: spec, pools: pools, shards: shards}
	in.scheduled = make([][]window, pools)
	for i, c := range spec.Crashes {
		if c.Pool >= pools {
			return nil, fmt.Errorf("fault: scheduled crash %d: pool %d outside the %d-pool fleet", i, c.Pool, pools)
		}
		in.scheduled[c.Pool] = append(in.scheduled[c.Pool], window{start: c.At, end: c.At + c.Down})
	}
	for p := range in.scheduled {
		ws := in.scheduled[p]
		sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
	}
	if spec.CrashEvery > 0 {
		in.crash = make([]stream, pools)
		for p := range in.crash {
			in.crash[p] = stream{
				r:        *db.NewRNG(streamSeed(spec.Seed, 0, p)),
				meanUp:   spec.CrashEvery,
				meanDown: spec.CrashDown,
			}
		}
	}
	if spec.StraggleEvery > 0 {
		in.straggle = make([]stream, pools*shards)
		for i := range in.straggle {
			in.straggle[i] = stream{
				r:        *db.NewRNG(streamSeed(spec.Seed, 1, i)),
				meanUp:   spec.StraggleEvery,
				meanDown: spec.StraggleFor,
			}
		}
	}
	if spec.StallEvery > 0 {
		maxDown := spec.StallMax
		if maxDown == 0 {
			maxDown = 4 * spec.StallFor
		}
		in.stall = make([]stream, pools*shards)
		for i := range in.stall {
			in.stall[i] = stream{
				r:        *db.NewRNG(streamSeed(spec.Seed, 2, i)),
				meanUp:   spec.StallEvery,
				meanDown: spec.StallFor,
				maxDown:  maxDown,
			}
		}
	}
	return in, nil
}

// Spec echoes the injector's spec (zero for a nil injector).
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// DownUntil reports whether pool p is inside an outage at cycle t and,
// if so, the cycle it recovers.
func (in *Injector) DownUntil(p int, t uint64) (until uint64, down bool) {
	if in == nil || p < 0 || p >= in.pools {
		return 0, false
	}
	for _, w := range in.scheduled[p] {
		if w.start <= t && t < w.end {
			return w.end, true
		}
	}
	if in.crash != nil {
		if w, ok := in.crash[p].at(t); ok {
			return w.end, true
		}
	}
	return 0, false
}

// NextCrash returns the first outage of pool p beginning strictly
// inside (from, to] — the query the replay uses to decide whether a
// crash kills a shard task executing over that interval.
func (in *Injector) NextCrash(p int, from, to uint64) (start, end uint64, ok bool) {
	if in == nil || p < 0 || p >= in.pools || to <= from {
		return 0, 0, false
	}
	best := window{start: math.MaxUint64}
	for _, w := range in.scheduled[p] {
		if w.start > from && w.start <= to && w.start < best.start {
			best = w
		}
	}
	if in.crash != nil {
		if w, found := in.crash[p].nextIn(from, to); found && w.start < best.start {
			best = w
		}
	}
	if best.start == math.MaxUint64 {
		return 0, 0, false
	}
	return best.start, best.end, true
}

// Slowdown returns the multiplicative service-cycle inflation for work
// of (pool, shard) starting at cycle t — Spec.StraggleFactor inside a
// straggler episode, 1 when healthy.
func (in *Injector) Slowdown(p, s int, t uint64) float64 {
	if in == nil || in.straggle == nil || p < 0 || p >= in.pools || s < 0 || s >= in.shards {
		return 1
	}
	if _, ok := in.straggle[p*in.shards+s].at(t); ok {
		return in.spec.StraggleFactor
	}
	return 1
}

// StallUntil returns the cycle a transient stall keeps (pool, shard)
// work arriving at cycle t from starting — t itself when no stall is
// active. Stalls delay starts; they never kill running work.
func (in *Injector) StallUntil(p, s int, t uint64) uint64 {
	if in == nil || in.stall == nil || p < 0 || p >= in.pools || s < 0 || s >= in.shards {
		return t
	}
	if w, ok := in.stall[p*in.shards+s].at(t); ok {
		return w.end
	}
	return t
}
