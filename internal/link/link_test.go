package link

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

func newCtl(t *testing.T) (*sim.Engine, *Controller, *stats.Registry) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	c, err := New(e, Default(), 32, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, c, reg
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{Links: 3, BytesPerCycle: 16}).Validate() == nil {
		t.Fatal("non-power-of-two links accepted")
	}
	if (Config{Links: 4}).Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
	e := sim.NewEngine()
	if _, err := New(e, Default(), 30, stats.NewRegistry()); err == nil {
		t.Fatal("vaults not divisible by links accepted")
	}
}

func TestPacketRoundTripTiming(t *testing.T) {
	e, c, _ := newCtl(t)
	var doneAt sim.Cycle
	executed := false
	c.Send(&Packet{
		Vault:       0,
		ReqPayload:  0,  // 16B header only → 1 cycle at 16B/cyc
		RespPayload: 16, // 32B → 2 cycles
		Execute: func(p *Packet) {
			executed = true
			if e.Now() != 9 { // 1 serialisation + 8 latency
				t.Fatalf("request arrived at %d, want 9", e.Now())
			}
			p.Complete()
		},
		Done: func(now sim.Cycle) { doneAt = now },
	})
	e.Run()
	if !executed {
		t.Fatal("Execute never ran")
	}
	// 9 (arrive) + 2 (resp serialisation) + 8 (latency) = 19.
	if doneAt != 19 {
		t.Fatalf("response delivered at %d, want 19", doneAt)
	}
}

func TestRequestSerialisationQueues(t *testing.T) {
	e, c, _ := newCtl(t)
	var arrivals []sim.Cycle
	for i := 0; i < 3; i++ {
		c.Send(&Packet{
			Vault:      0,
			ReqPayload: 48, // 64B → 4 cycles each
			Execute: func(p *Packet) {
				arrivals = append(arrivals, e.Now())
				p.Complete()
			},
		})
	}
	e.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Serialisation finishes at 4, 8, 12; +8 latency → 12, 16, 20.
	want := []sim.Cycle{12, 16, 20}
	for i, a := range arrivals {
		if a != want[i] {
			t.Fatalf("arrival %d at %d, want %d", i, a, want[i])
		}
	}
}

func TestVaultQuadrantRouting(t *testing.T) {
	e, c, reg := newCtl(t)
	// Vaults 0..7 → link0, 8..15 → link1, etc.
	for v := uint32(0); v < 32; v++ {
		c.Send(&Packet{Vault: v, Execute: func(p *Packet) { p.Complete() }})
	}
	e.Run()
	for l := 0; l < 4; l++ {
		if got := reg.Total(formatLink(l), "req_packets"); got != 8 {
			t.Fatalf("link %d carried %d packets, want 8", l, got)
		}
	}
}

func formatLink(i int) string { return "link" + string(rune('0'+i)) }

func TestPacketsOnDifferentLinksDoNotContend(t *testing.T) {
	e, c, _ := newCtl(t)
	var arrivals []sim.Cycle
	for _, v := range []uint32{0, 8, 16, 24} {
		c.Send(&Packet{Vault: v, ReqPayload: 48,
			Execute: func(p *Packet) {
				arrivals = append(arrivals, e.Now())
				p.Complete()
			}})
	}
	e.Run()
	for i, a := range arrivals {
		if a != 12 {
			t.Fatalf("packet %d arrived at %d, want 12 (no contention)", i, a)
		}
	}
}

func TestSendWithoutExecutePanics(t *testing.T) {
	_, c, _ := newCtl(t)
	defer func() {
		if recover() == nil {
			t.Fatal("nil Execute did not panic")
		}
	}()
	c.Send(&Packet{})
}

func TestMemPortReadThroughDRAM(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	ti := dram.HMC21Timing()
	ti.RefreshInterval = 0
	h, err := dram.New(e, mem.HMC21(), ti, reg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(e, Default(), 32, reg)
	if err != nil {
		t.Fatal(err)
	}
	port := &MemPort{Ctl: c, Geom: mem.HMC21(), Inner: h}

	var doneAt sim.Cycle
	port.Access(&mem.Request{Addr: 0, Size: 64, Kind: mem.Read,
		Done: func(now sim.Cycle) { doneAt = now }})
	e.Run()
	// 1 (req ser) + 8 + 232 (64B read) + 5 (80B resp ser) + 8 = 254.
	if doneAt != 254 {
		t.Fatalf("cache-line fill completed at %d, want 254", doneAt)
	}
	if reg.Total("dram.", "reads") != 1 {
		t.Fatal("DRAM read not performed")
	}
	if reg.Total("link", "resp_bytes") != 80 {
		t.Fatalf("response bytes = %d, want 80", reg.Total("link", "resp_bytes"))
	}
}

func TestMemPortWrite(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	ti := dram.HMC21Timing()
	ti.RefreshInterval = 0
	h, _ := dram.New(e, mem.HMC21(), ti, reg)
	c, _ := New(e, Default(), 32, reg)
	port := &MemPort{Ctl: c, Geom: mem.HMC21(), Inner: h}

	fired := false
	port.Access(&mem.Request{Addr: 256, Size: 64, Kind: mem.Write,
		Done: func(now sim.Cycle) { fired = true }})
	e.Run()
	if !fired {
		t.Fatal("write ack never delivered")
	}
	if reg.Total("dram.", "writes") != 1 {
		t.Fatal("DRAM write not performed")
	}
	// Write request carries 64B payload + 16B header = 80 bytes.
	if reg.Total("link", "req_bytes") != 80 {
		t.Fatalf("request bytes = %d, want 80", reg.Total("link", "req_bytes"))
	}
}

func TestAggregateLinkBandwidth(t *testing.T) {
	// Saturating all 4 links: aggregate response bandwidth ≈ 64 B/cycle.
	e, c, _ := newCtl(t)
	const pkts = 400
	var last sim.Cycle
	for i := 0; i < pkts; i++ {
		c.Send(&Packet{
			Vault:       uint32(i) % 32,
			RespPayload: 240, // 256B packets → 16 cycles each
			Execute:     func(p *Packet) { p.Complete() },
			Done: func(now sim.Cycle) {
				if now > last {
					last = now
				}
			},
		})
	}
	e.Run()
	bw := float64(pkts*240) / float64(last)
	if bw < 48 || bw > 64.1 {
		t.Fatalf("aggregate payload bandwidth = %.1f B/cyc, want near 60", bw)
	}
}
