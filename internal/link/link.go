// Package link models the off-chip SerDes links that connect the processor
// to the Hybrid Memory Cube: 4 full-duplex links (Table I: 4-links@8GHz),
// each carrying packetised traffic with a 16-byte header/tail overhead per
// packet, a fixed traversal latency, and a serialisation rate.
//
// Traffic is routed to a link by vault quadrant, matching the HMC
// specification's association of links with vault groups. Each direction
// of each link is an independent serialisation resource.
package link

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config describes the link subsystem.
type Config struct {
	Links uint32 // number of links (4)
	// BytesPerCycle is the serialisation rate of one direction of one
	// link in bytes per CPU cycle. 16 lanes at 8 GHz against a 2 GHz core
	// yields 16 B/cycle per direction.
	BytesPerCycle uint32
	// Latency is the fixed one-way traversal latency in CPU cycles
	// (SerDes, package, controller).
	Latency sim.Cycle
	// PacketOverhead is the header+tail bytes added to every packet
	// (16 B in HMC 2.1).
	PacketOverhead uint32
}

// Default returns the paper's link configuration.
func Default() Config {
	return Config{Links: 4, BytesPerCycle: 16, Latency: 8, PacketOverhead: 16}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.Links == 0 || c.Links&(c.Links-1) != 0 {
		return fmt.Errorf("link: link count %d not a power of two", c.Links)
	}
	if c.BytesPerCycle == 0 {
		return fmt.Errorf("link: zero bandwidth")
	}
	return nil
}

// Packet is one request/response exchange across the links.
type Packet struct {
	// Vault selects the destination vault, which determines the link.
	Vault uint32
	// ReqPayload is the request payload size in bytes (0 for reads).
	ReqPayload uint32
	// RespPayload is the response payload size in bytes.
	RespPayload uint32
	// Execute runs on the cube side when the request arrives; the
	// callee must invoke the supplied completion function exactly once
	// when the in-cube operation finishes, which triggers response
	// serialisation back to the requester.
	Execute func(complete func())
	// Done fires on the requester side when the response has fully
	// arrived. May be nil.
	Done func(now sim.Cycle)
}

type direction struct {
	freeAt sim.Cycle
	bytes  *stats.Counter
	pkts   *stats.Counter
}

type phyLink struct {
	req  direction
	resp direction
}

// Controller is the CPU-side link controller plus the cube-side response
// scheduler.
type Controller struct {
	cfg    Config
	engine *sim.Engine
	links  []phyLink
	vaults uint32
}

// New builds a link controller for a cube with the given vault count.
func New(engine *sim.Engine, cfg Config, vaults uint32, reg *stats.Registry) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if vaults%cfg.Links != 0 {
		return nil, fmt.Errorf("link: %d vaults not divisible by %d links", vaults, cfg.Links)
	}
	c := &Controller{cfg: cfg, engine: engine, vaults: vaults}
	for i := uint32(0); i < cfg.Links; i++ {
		sc := reg.Scope(fmt.Sprintf("link%d", i))
		c.links = append(c.links, phyLink{
			req:  direction{bytes: sc.Counter("req_bytes"), pkts: sc.Counter("req_packets")},
			resp: direction{bytes: sc.Counter("resp_bytes"), pkts: sc.Counter("resp_packets")},
		})
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// linkFor maps a vault to its link (vault quadrants).
func (c *Controller) linkFor(vault uint32) *phyLink {
	perLink := c.vaults / c.cfg.Links
	return &c.links[(vault/perLink)%c.cfg.Links]
}

func (c *Controller) serialize(d *direction, payload uint32) sim.Cycle {
	bytes := payload + c.cfg.PacketOverhead
	cycles := sim.Cycle((bytes + c.cfg.BytesPerCycle - 1) / c.cfg.BytesPerCycle)
	start := c.engine.Now()
	if d.freeAt > start {
		start = d.freeAt
	}
	d.freeAt = start + cycles
	d.bytes.Add(uint64(bytes))
	d.pkts.Inc()
	return d.freeAt
}

// Send transmits a packet: request serialisation + latency, Execute at the
// cube, then response serialisation + latency, then Done.
func (c *Controller) Send(p *Packet) {
	if p.Execute == nil {
		panic("link: packet without Execute")
	}
	l := c.linkFor(p.Vault)
	txDone := c.serialize(&l.req, p.ReqPayload)
	arrive := txDone + c.cfg.Latency
	c.engine.Schedule(arrive, func() {
		p.Execute(func() {
			respDone := c.serialize(&l.resp, p.RespPayload)
			deliver := respDone + c.cfg.Latency
			if p.Done != nil {
				c.engine.Schedule(deliver, func() { p.Done(deliver) })
			}
		})
	})
}

// MemPort adapts the link controller into a mem.Port in front of the
// DRAM (the plain "HMC as main memory" path used by the cache hierarchy):
// reads carry a header-only request and a payload response; writes carry a
// payload request and a header-only acknowledgement.
type MemPort struct {
	Ctl   *Controller
	Geom  mem.Geometry
	Inner mem.Port
}

// Access implements mem.Port. Requests must be row-contained (cache lines
// and HMC operands always are); larger transfers must be pre-split.
func (m *MemPort) Access(req *mem.Request) bool {
	loc := m.Geom.Decompose(req.Addr)
	var reqPayload, respPayload uint32
	if req.Kind == mem.Write {
		reqPayload = req.Size
	} else {
		respPayload = req.Size
	}
	inner := &mem.Request{Addr: req.Addr, Size: req.Size, Kind: req.Kind}
	m.Ctl.Send(&Packet{
		Vault:       loc.Vault,
		ReqPayload:  reqPayload,
		RespPayload: respPayload,
		Execute: func(complete func()) {
			inner.Done = func(sim.Cycle) { complete() }
			m.Inner.Access(inner)
		},
		Done: req.Done,
	})
	return true
}

var _ mem.Port = (*MemPort)(nil)
