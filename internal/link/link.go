// Package link models the off-chip SerDes links that connect the processor
// to the Hybrid Memory Cube: 4 full-duplex links (Table I: 4-links@8GHz),
// each carrying packetised traffic with a 16-byte header/tail overhead per
// packet, a fixed traversal latency, and a serialisation rate.
//
// Traffic is routed to a link by vault quadrant, matching the HMC
// specification's association of links with vault groups. Each direction
// of each link is an independent serialisation resource.
package link

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config describes the link subsystem.
type Config struct {
	Links uint32 // number of links (4)
	// BytesPerCycle is the serialisation rate of one direction of one
	// link in bytes per CPU cycle. 16 lanes at 8 GHz against a 2 GHz core
	// yields 16 B/cycle per direction.
	BytesPerCycle uint32
	// Latency is the fixed one-way traversal latency in CPU cycles
	// (SerDes, package, controller).
	Latency sim.Cycle
	// PacketOverhead is the header+tail bytes added to every packet
	// (16 B in HMC 2.1).
	PacketOverhead uint32
}

// Default returns the paper's link configuration.
func Default() Config {
	return Config{Links: 4, BytesPerCycle: 16, Latency: 8, PacketOverhead: 16}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.Links == 0 || c.Links&(c.Links-1) != 0 {
		return fmt.Errorf("link: link count %d not a power of two", c.Links)
	}
	if c.BytesPerCycle == 0 {
		return fmt.Errorf("link: zero bandwidth")
	}
	return nil
}

// Packet is one request/response exchange across the links. The packet
// itself is the scheduler event for both link traversals (request
// arrival at the cube, response delivery at the requester), so sending
// one allocates nothing beyond what the caller provides; hot callers
// keep packets in free lists and reuse them.
type Packet struct {
	// Vault selects the destination vault, which determines the link.
	Vault uint32
	// ReqPayload is the request payload size in bytes (0 for reads).
	ReqPayload uint32
	// RespPayload is the response payload size in bytes.
	RespPayload uint32
	// Execute runs on the cube side when the request arrives; the
	// callee must invoke p.Complete exactly once when the in-cube
	// operation finishes, which triggers response serialisation back to
	// the requester.
	Execute func(p *Packet)
	// Done fires on the requester side when the response has fully
	// arrived. May be nil.
	Done func(now sim.Cycle)

	// Bound by Send for the response path.
	ctl *Controller
	l   *phyLink
}

// Packet event tags.
const (
	pktArrive uint64 = iota
	pktDeliver
)

// OnEvent implements sim.Handler: the packet dispatches its own link
// traversals.
func (p *Packet) OnEvent(now sim.Cycle, tag uint64) {
	switch tag {
	case pktArrive:
		p.Execute(p)
	default:
		p.Done(now)
	}
}

// Complete serialises the response back to the requester: the cube side
// must call it exactly once, when the in-cube operation has finished.
// Done (if set) fires once the response has fully arrived.
func (p *Packet) Complete() {
	respDone := p.ctl.serialize(&p.l.resp, p.RespPayload)
	deliver := respDone + p.ctl.cfg.Latency
	if p.Done != nil {
		p.ctl.engine.ScheduleEvent(deliver, p, pktDeliver)
	}
}

type direction struct {
	freeAt sim.Cycle
	bytes  *stats.Counter
	pkts   *stats.Counter
}

type phyLink struct {
	req  direction
	resp direction
}

// Controller is the CPU-side link controller plus the cube-side response
// scheduler.
type Controller struct {
	cfg    Config
	engine *sim.Engine
	links  []phyLink
	vaults uint32
}

// New builds a link controller for a cube with the given vault count.
func New(engine *sim.Engine, cfg Config, vaults uint32, reg *stats.Registry) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if vaults%cfg.Links != 0 {
		return nil, fmt.Errorf("link: %d vaults not divisible by %d links", vaults, cfg.Links)
	}
	c := &Controller{cfg: cfg, engine: engine, vaults: vaults}
	for i := uint32(0); i < cfg.Links; i++ {
		sc := reg.Scope(fmt.Sprintf("link%d", i))
		c.links = append(c.links, phyLink{
			req:  direction{bytes: sc.Counter("req_bytes"), pkts: sc.Counter("req_packets")},
			resp: direction{bytes: sc.Counter("resp_bytes"), pkts: sc.Counter("resp_packets")},
		})
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset idles both directions of every link. Counters are zeroed by the
// registry reset the machine performs alongside.
func (c *Controller) Reset() {
	for i := range c.links {
		c.links[i].req.freeAt = 0
		c.links[i].resp.freeAt = 0
	}
}

// Reset drops the port's in-flight state. Pooled free ops survive; ops
// that were in flight are abandoned with the engine's event queue.
func (m *MemPort) Reset() {}

// linkFor maps a vault to its link (vault quadrants).
func (c *Controller) linkFor(vault uint32) *phyLink {
	perLink := c.vaults / c.cfg.Links
	return &c.links[(vault/perLink)%c.cfg.Links]
}

func (c *Controller) serialize(d *direction, payload uint32) sim.Cycle {
	bytes := payload + c.cfg.PacketOverhead
	cycles := sim.Cycle((bytes + c.cfg.BytesPerCycle - 1) / c.cfg.BytesPerCycle)
	start := c.engine.Now()
	if d.freeAt > start {
		start = d.freeAt
	}
	d.freeAt = start + cycles
	d.bytes.Add(uint64(bytes))
	d.pkts.Inc()
	return d.freeAt
}

// Send transmits a packet: request serialisation + latency, Execute at the
// cube, then response serialisation + latency (Complete), then Done.
func (c *Controller) Send(p *Packet) {
	if p.Execute == nil {
		panic("link: packet without Execute")
	}
	p.ctl = c
	p.l = c.linkFor(p.Vault)
	txDone := c.serialize(&p.l.req, p.ReqPayload)
	arrive := txDone + c.cfg.Latency
	c.engine.ScheduleEvent(arrive, p, pktArrive)
}

// MemPort adapts the link controller into a mem.Port in front of the
// DRAM (the plain "HMC as main memory" path used by the cache hierarchy):
// reads carry a header-only request and a payload response; writes carry a
// payload request and a header-only acknowledgement.
//
// MemPort pools its in-flight operation state: each access draws a
// memOp (packet + inner DRAM request + pre-bound callbacks) from a free
// list and returns it when the response delivers, so the steady-state
// uncacheable path allocates nothing.
type MemPort struct {
	Ctl   *Controller
	Geom  mem.Geometry
	Inner mem.Port

	free []*memOp
}

// memOp is one pooled in-flight MemPort access.
type memOp struct {
	m     *MemPort
	pkt   Packet
	inner mem.Request
	done  func(now sim.Cycle) // the original requester's Done (may be nil)

	// Pre-bound method values, created once per pooled op.
	execFn      func(p *Packet)
	innerDoneFn func(now sim.Cycle)
	deliverFn   func(now sim.Cycle)
}

func (m *MemPort) getOp() *memOp {
	if n := len(m.free); n > 0 {
		op := m.free[n-1]
		m.free = m.free[:n-1]
		return op
	}
	op := &memOp{m: m}
	op.execFn = op.exec
	op.innerDoneFn = op.innerDone
	op.deliverFn = op.deliver
	return op
}

// exec runs cube-side on request arrival: forward to the DRAM.
func (op *memOp) exec(*Packet) {
	op.inner.Done = op.innerDoneFn
	op.m.Inner.Access(&op.inner)
}

// innerDone fires when the DRAM access completes: serialise the response.
func (op *memOp) innerDone(sim.Cycle) { op.pkt.Complete() }

// deliver fires requester-side when the response arrives: release the
// op, then complete the original request.
func (op *memOp) deliver(now sim.Cycle) {
	done := op.done
	op.done = nil
	op.m.free = append(op.m.free, op)
	if done != nil {
		done(now)
	}
}

// Access implements mem.Port. Requests must be row-contained (cache lines
// and HMC operands always are); larger transfers must be pre-split.
func (m *MemPort) Access(req *mem.Request) bool {
	loc := m.Geom.Decompose(req.Addr)
	var reqPayload, respPayload uint32
	if req.Kind == mem.Write {
		reqPayload = req.Size
	} else {
		respPayload = req.Size
	}
	op := m.getOp()
	op.inner = mem.Request{Addr: req.Addr, Size: req.Size, Kind: req.Kind}
	op.done = req.Done
	op.pkt = Packet{
		Vault:       loc.Vault,
		ReqPayload:  reqPayload,
		RespPayload: respPayload,
		Execute:     op.execFn,
		// Always set, so the op is always released at delivery even
		// when the requester passed no Done. The extra no-op event
		// cannot reorder other same-cycle events (pairwise FIFO order
		// depends only on their own scheduling order).
		Done: op.deliverFn,
	}
	m.Ctl.Send(&op.pkt)
	return true
}

var _ mem.Port = (*MemPort)(nil)
