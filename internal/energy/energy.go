// Package energy models DRAM and link energy for the HMC, following the
// Micron-style current-based accounting the paper's toolchain uses:
// per-activation, per-read/write-bit and background components for the
// DRAM layers, plus per-bit SerDes energy for the off-chip links and a
// per-operation cost for the logic-layer functional units.
//
// Absolute joules are not the point of the reproduction (the paper's
// constants are not published); the *relative* DRAM energy of the four
// architectures is, because it follows from countable events: HIPE saves
// the 3-5% the paper reports by squashing predicated loads and by never
// moving intermediate bitmasks, while x86 pays for streaming every byte
// through the links.
package energy

import (
	"fmt"
	"strings"

	"github.com/hipe-sim/hipe/internal/stats"
)

// Model holds the energy constants in picojoules.
type Model struct {
	// DRAM components.
	ActivationPJ  float64 // per row activation (ACT+PRE pair)
	ReadBitPJ     float64 // per bit read from the DRAM arrays
	WriteBitPJ    float64 // per bit written
	RefreshPJ     float64 // per refresh command
	BackgroundPJC float64 // per DRAM-cycle-equivalent background, per vault

	// Link components.
	LinkBitPJ float64 // per bit serialised across a SerDes link

	// Logic-layer components.
	EngineOpPJ float64 // per HIVE/HIPE instruction executed
	HMCOpPJ    float64 // per HMC baseline instruction executed
}

// Default returns constants in the range published for HMC-class stacks
// (≈3.7 pJ/bit DRAM access, ≈1.5 pJ/bit link, sub-nanojoule activations).
func Default() Model {
	return Model{
		ActivationPJ:  900,
		ReadBitPJ:     3.7,
		WriteBitPJ:    3.7,
		RefreshPJ:     2400,
		BackgroundPJC: 0.4,
		LinkBitPJ:     1.5,
		EngineOpPJ:    30,
		HMCOpPJ:       20,
	}
}

// Breakdown is the audited energy of one simulation run.
type Breakdown struct {
	ActivationPJ float64
	ReadPJ       float64
	WritePJ      float64
	RefreshPJ    float64
	BackgroundPJ float64
	LinkPJ       float64
	LogicPJ      float64
}

// DRAMPJ is the DRAM-only total (the quantity the paper reports savings
// on).
func (b Breakdown) DRAMPJ() float64 {
	return b.ActivationPJ + b.ReadPJ + b.WritePJ + b.RefreshPJ + b.BackgroundPJ
}

// TotalPJ includes links and logic-layer units.
func (b Breakdown) TotalPJ() float64 {
	return b.DRAMPJ() + b.LinkPJ + b.LogicPJ
}

// String renders the breakdown for reports.
func (b Breakdown) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "activation %.0f pJ, read %.0f pJ, write %.0f pJ, ", b.ActivationPJ, b.ReadPJ, b.WritePJ)
	fmt.Fprintf(&s, "background %.0f pJ, link %.0f pJ, logic %.0f pJ, ", b.BackgroundPJ, b.LinkPJ, b.LogicPJ)
	fmt.Fprintf(&s, "dram %.0f pJ, total %.0f pJ", b.DRAMPJ(), b.TotalPJ())
	return s.String()
}

// Audit derives the energy of a completed run from its statistics
// registry and duration in CPU cycles.
func (m Model) Audit(reg *stats.Registry, cpuCycles uint64, vaults int, clockRatio uint64) Breakdown {
	var b Breakdown
	acts := reg.Total("dram.", "activations")
	readBytes := reg.Total("dram.", "bytes_read")
	writeBytes := reg.Total("dram.", "bytes_written")
	refreshes := reg.Total("dram.", "refreshes")

	b.ActivationPJ = float64(acts) * m.ActivationPJ
	b.ReadPJ = float64(readBytes*8) * m.ReadBitPJ
	b.WritePJ = float64(writeBytes*8) * m.WriteBitPJ
	b.RefreshPJ = float64(refreshes) * m.RefreshPJ
	if clockRatio > 0 {
		dramCycles := cpuCycles / clockRatio
		b.BackgroundPJ = float64(dramCycles) * float64(vaults) * m.BackgroundPJC
	}

	var linkBytes uint64
	for _, scope := range reg.Scopes() {
		if strings.HasPrefix(scope.Name(), "link") {
			linkBytes += scope.Get("req_bytes") + scope.Get("resp_bytes")
		}
	}
	b.LinkPJ = float64(linkBytes*8) * m.LinkBitPJ

	engineOps := reg.Total("hive", "instructions") + reg.Total("hipe", "instructions")
	hmcOps := reg.Total("hmc", "instructions")
	b.LogicPJ = float64(engineOps)*m.EngineOpPJ + float64(hmcOps)*m.HMCOpPJ
	return b
}
