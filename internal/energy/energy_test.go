package energy

import (
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/stats"
)

func TestAuditCountsComponents(t *testing.T) {
	reg := stats.NewRegistry()
	v := reg.Scope("dram.vault00")
	v.Counter("activations").Add(10)
	v.Counter("bytes_read").Add(1000)
	v.Counter("bytes_written").Add(500)
	v.Counter("refreshes").Add(2)
	reg.Scope("link0").Counter("req_bytes").Add(100)
	reg.Scope("link0").Counter("resp_bytes").Add(200)
	reg.Scope("hive").Counter("instructions").Add(50)
	reg.Scope("hmc").Counter("instructions").Add(20)

	m := Default()
	b := m.Audit(reg, 24000, 32, 12)

	if b.ActivationPJ != 10*m.ActivationPJ {
		t.Fatalf("activation = %f", b.ActivationPJ)
	}
	if b.ReadPJ != 8000*m.ReadBitPJ {
		t.Fatalf("read = %f", b.ReadPJ)
	}
	if b.WritePJ != 4000*m.WriteBitPJ {
		t.Fatalf("write = %f", b.WritePJ)
	}
	if b.RefreshPJ != 2*m.RefreshPJ {
		t.Fatalf("refresh = %f", b.RefreshPJ)
	}
	wantBG := float64(24000/12) * 32 * m.BackgroundPJC
	if b.BackgroundPJ != wantBG {
		t.Fatalf("background = %f, want %f", b.BackgroundPJ, wantBG)
	}
	if b.LinkPJ != 300*8*m.LinkBitPJ {
		t.Fatalf("link = %f", b.LinkPJ)
	}
	if b.LogicPJ != 50*m.EngineOpPJ+20*m.HMCOpPJ {
		t.Fatalf("logic = %f", b.LogicPJ)
	}
	if b.DRAMPJ() <= 0 || b.TotalPJ() <= b.DRAMPJ() {
		t.Fatal("aggregates inconsistent")
	}
	if !strings.Contains(b.String(), "dram") {
		t.Fatal("String() missing dram total")
	}
}

func TestAuditZeroClockRatio(t *testing.T) {
	b := Default().Audit(stats.NewRegistry(), 1000, 32, 0)
	if b.BackgroundPJ != 0 {
		t.Fatal("background charged with zero clock ratio")
	}
}

// More DRAM traffic must mean more DRAM energy (monotonicity property the
// paper's comparison rests on).
func TestMonotoneInTraffic(t *testing.T) {
	mk := func(bytes uint64) Breakdown {
		reg := stats.NewRegistry()
		v := reg.Scope("dram.vault00")
		v.Counter("bytes_read").Add(bytes)
		v.Counter("activations").Add(bytes / 256)
		return Default().Audit(reg, 1000, 32, 12)
	}
	if mk(10000).DRAMPJ() <= mk(1000).DRAMPJ() {
		t.Fatal("DRAM energy not monotone in bytes read")
	}
}
