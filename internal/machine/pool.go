// A free list of reusable machines. Building a machine allocates its
// whole world (memory image, caches, vault engines); Reset restores a
// used machine to a state bit-identical to a freshly built one
// (machine_test.go pins this), so pooling changes wall-clock and
// allocation cost only — never simulated results. The serving cluster
// and the sweep engine's parallel shard path both draw per-task
// machines from a Pool instead of rebuilding the world per task.
package machine

import "sync"

// Pool recycles machines of one configuration. The zero value is not
// usable; build pools with NewPool. Safe for concurrent Get/Put.
type Pool struct {
	cfg  Config
	mu   sync.Mutex
	free []*Machine
}

// NewPool returns an empty pool building machines from cfg on demand.
func NewPool(cfg Config) *Pool { return &Pool{cfg: cfg} }

// Get draws a pooled (already Reset) machine, or builds one.
func (p *Pool) Get() (*Machine, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return m, nil
	}
	p.mu.Unlock()
	return New(p.cfg)
}

// Put resets a machine and returns it to the free list. Reset is safe
// even after a run abandoned mid-flight, so failed tasks keep the pool
// warm.
func (p *Pool) Put(m *Machine) {
	m.Reset()
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}
