// Package machine assembles the full simulated system of the paper: one
// active out-of-order core with its three-level cache hierarchy, the four
// SerDes links, the 32-vault HMC DRAM, and the three offload engines
// (HMC baseline, HIVE, HIPE) sharing the logic layer.
//
// Every experiment in the reproduction builds a Machine, lays the
// database into its physical image, generates a µop stream with the query
// code generators, and runs the core to completion.
package machine

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/cache"
	"github.com/hipe-sim/hipe/internal/core"
	"github.com/hipe-sim/hipe/internal/cpu"
	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/hive"
	"github.com/hipe-sim/hipe/internal/hmc"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config selects the sizes and parameters of every component. The zero
// value is not usable; start from Default.
type Config struct {
	// ImageBytes is the size of the functional backing image (the
	// simulated physical memory actually touched by experiments). It can
	// be far smaller than the HMC's 8 GiB address space.
	ImageBytes uint64

	Geometry mem.Geometry
	DRAM     dram.Timing
	Links    link.Config
	CPU      cpu.Config
	L1, L2   cache.Config
	L3       cache.Config
	HMC      hmc.Config
	HIVE     core.Config
	HIPE     core.Config
}

// Default returns the paper's Table I configuration.
func Default() Config {
	return Config{
		ImageBytes: 64 << 20,
		Geometry:   mem.HMC21(),
		DRAM:       dram.HMC21Timing(),
		Links:      link.Default(),
		CPU:        cpu.TableI("cpu0"),
		L1:         cache.TableIL1(),
		L2:         cache.TableIL2(),
		L3:         cache.TableIL3(),
		HMC:        hmc.Default(),
		HIVE:       hive.Default(),
		HIPE:       core.DefaultHIPE(),
	}
}

// Machine is one fully wired system instance.
type Machine struct {
	Engine   *sim.Engine
	Registry *stats.Registry
	Image    []byte

	DRAM   *dram.HMC
	Links  *link.Controller
	Caches *cache.Hierarchy
	CPU    *cpu.Core
	HMC    *hmc.Engine
	HIVE   *core.Engine
	HIPE   *core.Engine

	// UMem is the uncacheable CPU path to DRAM (through the links).
	UMem mem.Port
}

// offloadMux routes offload instructions to the engine their target
// names.
type offloadMux struct {
	hmc  *hmc.Engine
	hive *core.Engine
	hipe *core.Engine
}

// Submit implements cpu.OffloadPort.
func (m *offloadMux) Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool {
	switch inst.Target {
	case isa.TargetHMC:
		return m.hmc.Submit(inst, done)
	case isa.TargetHIVE:
		return m.hive.Submit(inst, done)
	case isa.TargetHIPE:
		return m.hipe.Submit(inst, done)
	default:
		panic(fmt.Sprintf("machine: unroutable offload target %s", inst.Target))
	}
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	if cfg.ImageBytes == 0 {
		return nil, fmt.Errorf("machine: zero image size")
	}
	if cfg.ImageBytes > cfg.Geometry.Total {
		return nil, fmt.Errorf("machine: image %d exceeds HMC capacity %d", cfg.ImageBytes, cfg.Geometry.Total)
	}
	engine := sim.NewEngine()
	reg := stats.NewRegistry()
	image := make([]byte, cfg.ImageBytes)

	d, err := dram.New(engine, cfg.Geometry, cfg.DRAM, reg)
	if err != nil {
		return nil, err
	}
	links, err := link.New(engine, cfg.Links, cfg.Geometry.Vaults, reg)
	if err != nil {
		return nil, err
	}
	umem := &link.MemPort{Ctl: links, Geom: cfg.Geometry, Inner: d}
	caches, err := cache.NewHierarchy(engine, cfg.L1, cfg.L2, cfg.L3, umem, reg)
	if err != nil {
		return nil, err
	}
	hmcEng, err := hmc.New(engine, cfg.HMC, links, d, image, reg)
	if err != nil {
		return nil, err
	}
	hiveEng, err := hive.New(engine, cfg.HIVE, links, d, image, reg)
	if err != nil {
		return nil, err
	}
	hipeEng, err := core.New(engine, cfg.HIPE, links, d, image, reg)
	if err != nil {
		return nil, err
	}
	mux := &offloadMux{hmc: hmcEng, hive: hiveEng, hipe: hipeEng}
	c, err := cpu.New(engine, cfg.CPU, caches, umem, mux, reg)
	if err != nil {
		return nil, err
	}
	return &Machine{
		Engine:   engine,
		Registry: reg,
		Image:    image,
		DRAM:     d,
		Links:    links,
		Caches:   caches,
		CPU:      c,
		HMC:      hmcEng,
		HIVE:     hiveEng,
		HIPE:     hipeEng,
		UMem:     umem,
	}, nil
}

// Run executes a µop stream to completion and returns the consumed
// cycles.
func (m *Machine) Run(stream cpu.Stream) sim.Cycle {
	m.CPU.Start(stream, nil)
	m.Engine.Run()
	return m.CPU.Cycles()
}

// Reset returns the machine to its post-New state — clock at zero, no
// pending events, caches cold, predictor untrained, image zeroed,
// counters at zero — while keeping every allocation (event queue
// capacity, pooled requests, cache arrays, the image itself). A reset
// machine produces bit-identical results to a freshly constructed one,
// which is what lets sweep cells and serving shard replays reuse
// machines instead of rebuilding the world per run (verified by
// TestResetMatchesFreshMachine and the worker-count determinism tests).
func (m *Machine) Reset() {
	// The engine resets first: dropping every pending event is what
	// makes it safe for the components to reclaim their in-flight state.
	m.Engine.Reset()
	m.Registry.Reset()
	clear(m.Image)
	m.DRAM.Reset()
	m.Links.Reset()
	m.Caches.Reset()
	m.CPU.Reset()
	m.HMC.Reset()
	m.HIVE.Reset()
	m.HIPE.Reset()
}
