package machine

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/cpu"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
)

func TestDefaultMachineBuilds(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	if m.CPU == nil || m.DRAM == nil || m.Links == nil || m.Caches == nil ||
		m.HMC == nil || m.HIVE == nil || m.HIPE == nil {
		t.Fatal("machine missing components")
	}
	if len(m.Image) != int(Default().ImageBytes) {
		t.Fatal("image size wrong")
	}
}

func TestBadConfigsRejected(t *testing.T) {
	cfg := Default()
	cfg.ImageBytes = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero image accepted")
	}
	cfg = Default()
	cfg.ImageBytes = cfg.Geometry.Total * 2
	if _, err := New(cfg); err == nil {
		t.Fatal("oversized image accepted")
	}
	cfg = Default()
	cfg.CPU.ROBSize = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad CPU config accepted")
	}
	cfg = Default()
	cfg.L1.Ways = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad cache config accepted")
	}
	cfg = Default()
	cfg.HIVE.Width = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad engine config accepted")
	}
}

func TestRunSimpleStream(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	// A load through the cache hierarchy, an uncacheable load, and one
	// offload instruction to each engine.
	ops := []isa.MicroOp{
		{PC: 0, Class: isa.Load, Dst: 1, Addr: 0, Size: 8},
		{PC: 4, Class: isa.Load, Dst: 2, Addr: 4096, Size: 8, Uncacheable: true},
		{PC: 8, Class: isa.Offload, Dst: 3, Offload: &isa.OffloadInst{
			Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpGE, Addr: 0, Size: 64}},
		{PC: 12, Class: isa.Offload, Dst: 4, Offload: &isa.OffloadInst{
			Target: isa.TargetHIVE, Op: isa.VLoad, Dst: 0, Addr: 256, Size: 256}},
		{PC: 16, Class: isa.Offload, Dst: 5, Offload: &isa.OffloadInst{
			Target: isa.TargetHIPE, Op: isa.VLoad, Dst: 0, Addr: 512, Size: 256}},
	}
	cycles := m.Run(&cpu.SliceStream{Ops: ops})
	if cycles == 0 {
		t.Fatal("no time elapsed")
	}
	if m.Registry.Total("dram.", "reads") < 3 {
		t.Fatalf("dram reads = %d", m.Registry.Total("dram.", "reads"))
	}
	if m.Registry.Scope("hmc").Get("instructions") != 1 {
		t.Fatal("HMC engine not reached")
	}
	if m.Registry.Scope("hive").Get("vloads") != 1 {
		t.Fatal("HIVE engine not reached")
	}
	if m.Registry.Scope("hipe").Get("vloads") != 1 {
		t.Fatal("HIPE engine not reached")
	}
}

func TestOffloadMuxPanicsOnBadTarget(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad target routed")
		}
	}()
	m.Run(&cpu.SliceStream{Ops: []isa.MicroOp{
		{Class: isa.Offload, Offload: &isa.OffloadInst{Target: isa.Target(7)}},
	}})
}

func TestMemoryPathsShareDRAM(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	// The uncacheable path reaches the same DRAM model as the cache path.
	fired := false
	m.UMem.Access(&mem.Request{Addr: 0, Size: 64, Kind: mem.Read,
		Done: func(sim.Cycle) { fired = true }})
	m.Engine.Run()
	if !fired {
		t.Fatal("uncacheable read never completed")
	}
	if m.Registry.Total("dram.", "reads") != 1 {
		t.Fatal("uncacheable read did not reach DRAM")
	}
}
