package machine

import "testing"

func TestPoolRecyclesMachines(t *testing.T) {
	p := NewPool(Default())
	m1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(m1)
	m2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("pool built a new machine instead of recycling the freed one")
	}
	// The pool is now empty: a second Get must build fresh.
	m3, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m2 {
		t.Error("pool handed out the same machine twice concurrently")
	}
	p.Put(m2)
	p.Put(m3)
	if got := len(p.free); got != 2 {
		t.Errorf("free list holds %d machines, want 2", got)
	}
}
