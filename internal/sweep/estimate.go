// The estimate-mode fast path: no machines are built. Each cell's
// cycle figure comes from the analytic cost model's structural
// estimators (internal/cost) walking the query description the same way
// the backend generators do, and its energy figure from the model's
// DRAM+link prediction. Auto cells route through the identical
// cost.Pick call the exact path uses, so routing decisions — and their
// export columns — are byte-identical across modes. What estimate mode
// cannot produce, it refuses up front (Options.validate): machine
// counters and anything else that needs a real simulation.
package sweep

import (
	"fmt"
	"math"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/energy"
)

// estimateBreakdown maps a cost estimate onto the energy-report shape:
// the model predicts DRAM read traffic and link energy only, so those
// are the populated components — DRAMPJ() and TotalPJ() then reproduce
// the model's own figures in the shared export columns.
func estimateBreakdown(pr cost.Params, est cost.Estimate) energy.Breakdown {
	dram := est.DRAMBytes * 8 * pr.DRAMReadBitPJ
	return energy.Breakdown{ReadPJ: dram, LinkPJ: est.EnergyPJ - dram}
}

// runCellsEstimate executes a cell list in estimate mode: the worker
// pool fans the cells out, but each "run" is a profile walk plus a
// closed-form estimate — typically orders of magnitude faster than
// simulation. Results are slot-indexed by cell, so exports stay
// byte-identical at any worker count, and the returned error is the
// first failure in cell order, matching the exact path's contract.
func runCellsEstimate(cfg Config, cells []Cell, opt Options) (*ResultSet, error) {
	rs := &ResultSet{Cells: make([]CellResult, len(cells))}
	errs := make([]error, len(cells))
	cache := &tableCache{tables: map[workload]*tableEntry{}}
	params := cost.ParamsFor(cfg.machineConfig(), cfg.energyModel())

	indices := make(chan int)
	var done sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	for w := 0; w < opt.EffectiveWorkers(); w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for i := range indices {
				cell := cells[i]
				tab, sel := cache.get(cell.workload())
				cr := CellResult{Index: i, Cell: cell, Selectivity: sel, Mode: ExecEstimate}
				plan := cell.Plan
				var est cost.Estimate
				var err error
				if plan.Auto() {
					// The same whole-table routing call the exact path
					// makes, so a mixed exact/estimate pipeline sees one
					// decision per cell shape.
					var d *cost.Decision
					d, err = cost.Pick(params, tab, plan.Candidates(cell.Tuples))
					if err == nil {
						plan = d.Chosen
						cr.Routing = d
						est = d.Estimates[d.ChosenIndex]
					}
				} else {
					est, err = cost.EstimatePlan(params, plan, cost.ProfileFor(tab, plan))
				}
				if err != nil {
					errs[i] = fmt.Errorf("sweep: cell %d (%s): %w", i, cell, err)
				} else {
					cr.Result = Result{
						Plan:   plan,
						Cycles: uint64(math.Round(est.Cycles)),
						Energy: estimateBreakdown(params, est),
					}
					rs.Cells[i] = cr
				}
				if opt.OnCell != nil {
					progressMu.Lock()
					completed++
					opt.OnCell(completed, len(cells), cr)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		indices <- i
	}
	close(indices)
	done.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rs.computeSpeedups()
	return rs, nil
}
