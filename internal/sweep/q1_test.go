package sweep

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func TestGridQ1AxisConcatenatesQueries(t *testing.T) {
	g := Grid{
		Archs:     []query.Arch{query.HIPE},
		Queries:   []db.Q06{db.DefaultQ06()},
		Q1Queries: []db.Q01{db.DefaultQ01(), {ShipCut: db.Day19950617}},
		Tuples:    []int{256},
	}
	if g.Size() != 3 {
		t.Fatalf("size %d, want 3", g.Size())
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("expanded to %d cells", len(cells))
	}
	// Q06 variants first, then the Q01 variants in declaration order.
	if cells[0].Plan.Kind != query.Q6Select {
		t.Fatalf("cell 0 kind %v", cells[0].Plan.Kind)
	}
	if cells[1].Plan.Kind != query.Q1Agg || cells[1].Plan.Q1 != db.DefaultQ01() {
		t.Fatalf("cell 1 = %+v", cells[1].Plan)
	}
	if cells[2].Plan.Q1.ShipCut != db.Day19950617 {
		t.Fatalf("cell 2 = %+v", cells[2].Plan)
	}
	// A pure-Q01 grid needs no Q06 entries.
	only := Grid{Q1Queries: []db.Q01{db.DefaultQ01()}, Tuples: []int{256}}
	cells, err = only.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Plan.Kind != query.Q1Agg {
		t.Fatalf("pure-Q01 grid expanded to %+v", cells)
	}
}

func TestQ1OverflowCellsTrimNotAbort(t *testing.T) {
	// At 16384 tuples, 16 B ops put the engine architectures past the
	// accumulator-overflow envelope; SkipInvalid must trim exactly
	// those cells (the documented CLI op-size sweep must not abort).
	g := Grid{
		Archs:       []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE},
		OpSizes:     []uint32{16, 256},
		Unrolls:     []int{8},
		Q1Queries:   []db.Q01{db.DefaultQ01()},
		Tuples:      []int{16384},
		SkipInvalid: true,
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Plan.OpSize == 16 && (c.Plan.Arch == query.HIVE || c.Plan.Arch == query.HIPE) {
			t.Fatalf("overflow-prone cell survived trimming: %s", c)
		}
	}
	// x86 and HMC keep their 16 B points (processor-side accumulation).
	saw16 := false
	for _, c := range cells {
		if c.Plan.OpSize == 16 {
			saw16 = true
		}
	}
	if !saw16 {
		t.Fatal("trimming removed the baseline 16 B cells too")
	}
	// Without SkipInvalid the same grid reports the envelope error.
	g.SkipInvalid = false
	if _, err := g.Expand(); err == nil {
		t.Fatal("strict expansion accepted an overflow-prone cell")
	}
}

func TestQ1CellsCarryGroupsAndFilterSelectivity(t *testing.T) {
	rs, err := Run(small(), Grid{
		Archs:     []query.Arch{query.HIPE, query.HIVE},
		Q1Queries: []db.Q01{db.DefaultQ01()},
		Unrolls:   []int{8},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Generate(256, 42)
	wantSel := db.SelectivityQ1(tab, db.DefaultQ01())
	ref := db.ReferenceQ1(tab, db.DefaultQ01())
	for _, c := range rs.Cells {
		if c.Selectivity != wantSel {
			t.Errorf("%s: selectivity %f, want the Q01 filter's %f", c.Cell, c.Selectivity, wantSel)
		}
		if len(c.Result.Groups) != db.NumGroups {
			t.Fatalf("%s: %d groups", c.Cell, len(c.Result.Groups))
		}
		for g, agg := range c.Result.Groups {
			if agg != ref.Groups[g] {
				t.Errorf("%s group %d: %+v, reference %+v", c.Cell, g, agg, ref.Groups[g])
			}
		}
	}
}

func TestQ1DeterministicAcrossWorkerCounts(t *testing.T) {
	grid := Grid{
		Archs:       []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE},
		OpSizes:     []uint32{64, 256},
		Unrolls:     []int{8},
		Queries:     []db.Q06{db.DefaultQ06()},
		Q1Queries:   []db.Q01{db.DefaultQ01()},
		Tuples:      []int{256},
		SkipInvalid: true,
	}
	var base *ResultSet
	for _, workers := range []int{1, 2, 8} {
		rs, err := Run(small(), grid, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rs
			continue
		}
		if !reflect.DeepEqual(base, rs) {
			t.Fatalf("results differ at %d workers", workers)
		}
	}
	var csvA, csvB bytes.Buffer
	if err := base.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	rs, err := Run(small(), grid, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
		t.Fatal("CSV export differs across worker counts")
	}
}

func TestQ1CSVRendersFilterInDateColumns(t *testing.T) {
	rs, err := Run(small(), Grid{
		Archs:     []query.Arch{query.HIPE},
		Q1Queries: []db.Q01{db.DefaultQ01()},
		Unrolls:   []int{8},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header, row := recs[0], recs[1]
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	if col("ship_lo") != "0" || col("ship_hi") != "2437" {
		t.Errorf("Q01 filter rendered as [%s, %s), want [0, 2437)", col("ship_lo"), col("ship_hi"))
	}
	// Zero discount/quantity bounds mark the row as an aggregation.
	if col("disc_hi") != "0" || col("qty_hi") != "0" {
		t.Errorf("Q01 marker columns: disc_hi=%s qty_hi=%s", col("disc_hi"), col("qty_hi"))
	}
}

func TestQ1JSONRoundTripKeepsGroupsAndKind(t *testing.T) {
	rs, err := Run(small(), Grid{
		Archs:     []query.Arch{query.HIPE},
		Q1Queries: []db.Q01{db.DefaultQ01()},
		Unrolls:   []int{8},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, back) {
		t.Fatal("JSON round trip lost data")
	}
	if back.Cells[0].Cell.Plan.Kind != query.Q1Agg {
		t.Fatal("kind lost in round trip")
	}
	if len(back.Cells[0].Result.Groups) != db.NumGroups {
		t.Fatal("groups lost in round trip")
	}
}

func TestQ6ResultJSONOmitsAggregationFields(t *testing.T) {
	// The Q06 export schema must not change shape because the
	// aggregation fields exist: a selection cell's JSON carries no
	// Kind, Q1 or Groups keys.
	rs, err := Run(small(), Grid{Unrolls: []int{8}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"Kind"`, `"Q1"`, `"Groups"`} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("Q06 JSON export contains %s", key)
		}
	}
}
