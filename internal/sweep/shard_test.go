package sweep

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func shardTestGrid() Grid {
	return Grid{
		Archs:       []query.Arch{query.X86, query.HIPE, query.ArchAuto},
		Queries:     []db.Q06{q6WithQty(10), q6WithQty(24)},
		Q1Queries:   nil,
		Tuples:      []int{4096},
		Clustered:   []bool{false, true},
		SkipInvalid: true,
	}
}

// TestShardedMergeInvariants checks the sharded path against the
// whole-table path on the fields the merge contract fixes: the same
// resolved plan and routing, cycles equal to the critical path over an
// independent per-shard replay, verification counts summing to the
// whole table, and Q1 group tables recomposing to the unsharded
// reference.
func TestShardedMergeInvariants(t *testing.T) {
	const nShards = 4
	cfg := Config{Tuples: 4096, Seed: 42}
	g := shardTestGrid()
	g.Q1Queries = []db.Q01{q1WithCut(1278)}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	whole, err := RunCells(cfg, cells, Options{})
	if err != nil {
		t.Fatalf("whole-table: %v", err)
	}
	sharded, err := RunCells(cfg, cells, Options{CellShards: nShards})
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	for i, cell := range cells {
		w, s := whole.Cells[i], sharded.Cells[i]
		if s.Shards != nShards {
			t.Fatalf("cell %d: Shards = %d, want %d", i, s.Shards, nShards)
		}
		if w.Shards != 0 {
			t.Fatalf("cell %d: whole-table run recorded Shards = %d", i, w.Shards)
		}
		if s.Result.Plan != w.Result.Plan {
			t.Errorf("cell %d (%s): sharded resolved %s, whole-table %s",
				i, cell, s.Result.Plan, w.Result.Plan)
		}
		if (s.Routing == nil) != (w.Routing == nil) {
			t.Errorf("cell %d: routing presence differs", i)
		}
		if s.Routing != nil && s.Routing.Chosen != w.Routing.Chosen {
			t.Errorf("cell %d: sharded routed %s, whole-table %s",
				i, s.Routing.Chosen, w.Routing.Chosen)
		}
		if s.Result.Checked != w.Result.Checked {
			t.Errorf("cell %d (%s): sharded checked %d rows, whole-table %d",
				i, cell, s.Result.Checked, w.Result.Checked)
		}
		// Replay each shard independently and recompute the critical
		// path — the merged cycle figure must be exactly max over
		// shards, and Q1 groups the exact recomposition.
		var tab *db.Table
		if cell.Clustered {
			tab = db.GenerateClusteredMemo(cell.Tuples, cell.Seed, cell.NoiseDays)
		} else {
			tab = db.GenerateMemo(cell.Tuples, cell.Seed)
		}
		shards, err := db.Partition(tab, nShards)
		if err != nil {
			t.Fatal(err)
		}
		var critical uint64
		for _, shard := range shards {
			res, err := cfg.Run(shard, s.Result.Plan)
			if err != nil {
				t.Fatalf("cell %d shard replay: %v", i, err)
			}
			if res.Cycles > critical {
				critical = res.Cycles
			}
		}
		if s.Result.Cycles != critical {
			t.Errorf("cell %d (%s): merged cycles %d, independent critical path %d",
				i, cell, s.Result.Cycles, critical)
		}
		if cell.Plan.Kind == query.Q1Agg {
			ref := db.ReferenceQ1(tab, cell.Plan.Q1)
			if len(s.Result.Groups) != db.NumGroups {
				t.Fatalf("cell %d: merged %d groups, want %d", i, len(s.Result.Groups), db.NumGroups)
			}
			for gi := range s.Result.Groups {
				if s.Result.Groups[gi] != ref.Groups[gi] {
					t.Errorf("cell %d group %d: merged %+v, reference %+v",
						i, gi, s.Result.Groups[gi], ref.Groups[gi])
				}
			}
		}
	}
}

// TestShardedDeterminism pins worker-count independence of the parallel
// shard path: byte-identical CSV and JSON at any worker count.
func TestShardedDeterminism(t *testing.T) {
	cfg := Config{Tuples: 4096, Seed: 42}
	cells, err := shardTestGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var exports [2]struct{ csv, json bytes.Buffer }
	for i, workers := range []int{1, 7} {
		rs, err := RunCells(cfg, cells, Options{CellShards: 4, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := rs.WriteCSV(&exports[i].csv); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteJSON(&exports[i].json); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(exports[0].csv.Bytes(), exports[1].csv.Bytes()) {
		t.Error("sharded CSV differs across worker counts")
	}
	if !bytes.Equal(exports[0].json.Bytes(), exports[1].json.Bytes()) {
		t.Error("sharded JSON differs across worker counts")
	}
}

// TestShardedCSVColumns pins the conditional schema: sharded exports
// carry the shards column; whole-table exports do not.
func TestShardedCSVColumns(t *testing.T) {
	cfg := Config{Tuples: 1024, Seed: 42}
	cells := []Cell{{
		Plan: query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
			OpSize: 256, Unroll: 32, Q: db.DefaultQ06()},
		Tuples: 1024, Seed: 42,
	}}
	for _, tc := range []struct {
		name string
		opt  Options
		want bool
	}{
		{"sharded", Options{CellShards: 4}, true},
		{"whole", Options{}, false},
	} {
		rs, err := RunCells(cfg, cells, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var buf bytes.Buffer
		if err := rs.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		header := strings.SplitN(buf.String(), "\n", 2)[0]
		if got := strings.Contains(header, "shards"); got != tc.want {
			t.Errorf("%s: shards column present = %v, want %v (header %q)",
				tc.name, got, tc.want, header)
		}
	}
}

// TestShardedCounters checks that counter capture composes with the
// sharded path: the merged snapshot is the shard snapshots summed, so
// traffic totals match the whole-table run's within DRAM row-boundary
// effects — here pinned exactly for the deterministic squash counters.
func TestShardedCounters(t *testing.T) {
	cfg := Config{Tuples: 4096, Seed: 42}
	cells := []Cell{{
		Plan: query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
			OpSize: 256, Unroll: 32, Q: db.DefaultQ06()},
		Tuples: 4096, Seed: 42, Clustered: true,
	}}
	rs, err := RunCells(cfg, cells, Options{CellShards: 4, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	c := rs.Cells[0]
	if c.Counters.Len() == 0 {
		t.Fatal("sharded run with Counters captured nothing")
	}
	if v, ok := c.Counters.Get("hipe.squashed"); !ok || v != c.Result.Squashed {
		t.Errorf("merged counter hipe.squashed = %d (ok=%v), Result.Squashed = %d",
			v, ok, c.Result.Squashed)
	}
}
