// Execution modes: the knob that selects how a cell (or, through
// internal/serve, a request) obtains its cycle figure. Exact mode runs
// the full machine simulation; estimate mode prices the plan with the
// analytic cost model (internal/cost) instead — orders of magnitude
// faster, with a bounded cycle error pinned by test and documented in
// docs/PERFORMANCE.md. Estimate mode hard-refuses every output only a
// real simulation can produce (µop-level machine counters, virtual-time
// traces), so a fast-path result can never silently impersonate an
// exact one.
package sweep

import (
	"encoding/json"
	"fmt"
)

// ExecMode selects the execution mode of a sweep or serving run.
type ExecMode int

const (
	// ExecExact runs every cell or shard task as a full machine
	// simulation — the default, and the only mode that produces machine
	// counters, traces and verified engine results.
	ExecExact ExecMode = iota
	// ExecEstimate skips simulation entirely: cycle figures come from
	// the analytic cost model's structural estimators walking the query
	// description, and answers (matches, revenue, groups) come from the
	// reference evaluator, so merged results stay exact while timing is
	// approximate. See docs/PERFORMANCE.md for the error contract.
	ExecEstimate
)

// String renders the mode the way flags and exports spell it.
func (m ExecMode) String() string {
	if m == ExecEstimate {
		return "estimate"
	}
	return "exact"
}

// ParseExecMode resolves a -exec flag spelling to its mode.
func ParseExecMode(s string) (ExecMode, bool) {
	switch s {
	case "exact":
		return ExecExact, true
	case "estimate":
		return ExecEstimate, true
	}
	return ExecExact, false
}

// ExecModeChoices renders the valid -exec spellings for usage errors.
func ExecModeChoices() string { return "exact, estimate" }

// MarshalJSON emits the mode by name, so exports read "estimate"
// rather than a bare enum value.
func (m ExecMode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON is the inverse of MarshalJSON.
func (m *ExecMode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	mode, ok := ParseExecMode(s)
	if !ok {
		return fmt.Errorf("sweep: unknown exec mode %q (have %s)", s, ExecModeChoices())
	}
	*m = mode
	return nil
}
