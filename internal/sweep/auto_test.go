package sweep

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// TestAutoArchAxis: a grid naming query.ArchAuto runs planner-routed
// cells — each cell's Result carries the concrete backend the planner
// chose, the Cell keeps the auto marker for audit, and the decision is
// recorded.
func TestAutoArchAxis(t *testing.T) {
	cfg := Default()
	cfg.Tuples = 1024
	g := Grid{
		Archs:     []query.Arch{query.ArchAuto, query.HIPE},
		OpSizes:   []uint32{256},
		Unrolls:   []int{32},
		Queries:   []db.Q06{db.DefaultQ06()},
		Q1Queries: []db.Q01{db.DefaultQ01()},
	}
	rs, err := Run(cfg, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HasRouting() {
		t.Fatal("auto-axis sweep recorded no routing decisions")
	}
	var autoCells, fixedCells int
	for _, c := range rs.Cells {
		if c.Cell.Plan.Auto() {
			autoCells++
			if c.Routing == nil {
				t.Errorf("cell %s: auto cell without routing decision", c.Cell)
				continue
			}
			if c.Result.Plan.Auto() {
				t.Errorf("cell %s: result plan still auto", c.Cell)
			}
			if c.Result.Plan != c.Routing.Chosen {
				t.Errorf("cell %s: ran %s, decision says %s", c.Cell, c.Result.Plan, c.Routing.Chosen)
			}
			if _, ok := query.BackendFor(c.Result.Plan.Arch); !ok {
				t.Errorf("cell %s: routed to unregistered arch %s", c.Cell, c.Result.Plan.Arch)
			}
		} else {
			fixedCells++
			if c.Routing != nil {
				t.Errorf("cell %s: fixed cell carries a routing decision", c.Cell)
			}
		}
	}
	if autoCells != 2 || fixedCells != 2 {
		t.Fatalf("got %d auto and %d fixed cells, want 2 and 2", autoCells, fixedCells)
	}

	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range RoutingCSVHeader() {
		if !strings.Contains(header, col) {
			t.Errorf("auto sweep CSV header missing %q: %q", col, header)
		}
	}
	if !strings.Contains(buf.String(), "auto,") {
		t.Error("auto cells should keep \"auto\" in the arch column for audit")
	}
}

// TestAutoArchDeterministicAcrossWorkers: routed sweeps export
// byte-identically at any worker count — resolution happens inside
// workers but is a pure function of (table, plan).
func TestAutoArchDeterministicAcrossWorkers(t *testing.T) {
	cfg := Default()
	cfg.Tuples = 1024
	g := Grid{
		Archs:     []query.Arch{query.ArchAuto},
		OpSizes:   []uint32{64, 256},
		Unrolls:   []int{8},
		Queries:   []db.Q06{db.DefaultQ06()},
		Q1Queries: []db.Q01{{ShipCut: 800}},
	}
	render := func(workers int) string {
		rs, err := Run(cfg, g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if one, many := render(1), render(8); one != many {
		t.Fatal("auto sweep CSV differs between 1 and 8 workers")
	}
}

// TestFixedSweepSchemaUnchanged: a sweep without auto cells must not
// grow routing columns.
func TestFixedSweepSchemaUnchanged(t *testing.T) {
	cfg := Default()
	cfg.Tuples = 1024
	rs, err := Run(cfg, Grid{Archs: []query.Arch{query.HIPE}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if strings.Contains(header, "routed_arch") {
		t.Errorf("fixed sweep header gained routing columns: %q", header)
	}
}
