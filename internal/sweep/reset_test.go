package sweep

// Machine-reuse equivalence: a Reset machine must be indistinguishable
// from a freshly constructed one — same cycles, same energy audit, same
// full counter registry — for every architecture. This is the property
// that lets the worker pool and the serving layer recycle machines.

import (
	"reflect"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/query"
)

func TestResetMatchesFreshMachine(t *testing.T) {
	cfg := Config{Tuples: 1024, Seed: 42}
	q := db.DefaultQ06()
	plans := []query.Plan{
		{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q},
		{Arch: query.HMC, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q},
		{Arch: query.HIVE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Fused: true, Q: q},
		{Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q},
		{Arch: query.X86, Strategy: query.TupleAtATime, OpSize: 64, Unroll: 1, Q: q},
	}
	tab := db.GenerateMemo(cfg.Tuples, cfg.Seed)

	// Fresh machine per plan: the reference outcomes.
	fresh := make([]Result, len(plans))
	freshRegs := make([]string, len(plans))
	for i, p := range plans {
		m, err := machine.New(cfg.machineConfig())
		if err != nil {
			t.Fatal(err)
		}
		fresh[i], err = cfg.runOn(m, tab, p)
		if err != nil {
			t.Fatalf("fresh %s: %v", p, err)
		}
		freshRegs[i] = m.Registry.String()
	}

	// One machine, Reset between plans — in two different orders, so a
	// leak that only shows under a particular predecessor is caught.
	for _, order := range [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}} {
		m, err := machine.New(cfg.machineConfig())
		if err != nil {
			t.Fatal(err)
		}
		for runIdx, i := range order {
			if runIdx > 0 {
				m.Reset()
			}
			got, err := cfg.runOn(m, tab, plans[i])
			if err != nil {
				t.Fatalf("reused %s: %v", plans[i], err)
			}
			if !reflect.DeepEqual(got, fresh[i]) {
				t.Fatalf("plan %s on reused machine: %+v, fresh machine: %+v", plans[i], got, fresh[i])
			}
			if reg := m.Registry.String(); reg != freshRegs[i] {
				t.Fatalf("plan %s: registry diverges on reused machine\n--- reused ---\n%s\n--- fresh ---\n%s",
					plans[i], reg, freshRegs[i])
			}
		}
	}

	// Mid-run abandonment: resetting a machine whose simulation was cut
	// short (pending events dropped) must still restore equivalence.
	{
		m, err := machine.New(cfg.machineConfig())
		if err != nil {
			t.Fatal(err)
		}
		w, err := query.Prepare(m, tab, plans[0])
		if err != nil {
			t.Fatal(err)
		}
		m.CPU.Start(w.Stream(), nil)
		m.Engine.RunLimit(5000) // abandon mid-flight
		m.Reset()
		got, err := cfg.runOn(m, tab, plans[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, fresh[1]) {
			t.Fatalf("after mid-run reset: %+v, fresh: %+v", got, fresh[1])
		}
	}
}
