// The worker pool: cells fan out over GOMAXPROCS goroutines, each
// simulation runs single-threaded, and results land in an index-ordered
// ResultSet so the outcome is independent of scheduling.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
)

// Options tune a sweep run.
type Options struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	// The worker count never changes results, only wall-clock time.
	Workers int
	// OnCell, when non-nil, is called once per finished cell — failed
	// cells included, with a zero Result — with the number of cells
	// finished so far and the grid total. Calls are serialised but
	// arrive in completion order, not index order — use it for
	// progress reporting, not aggregation.
	OnCell func(completed, total int, r CellResult)
	// Counters enables machine-counter capture: each cell's machine
	// registry (plus its event engine's scheduler accounting) is
	// snapshotted into CellResult.Counters after the run, before the
	// machine is reused. Off by default; when off no capture code runs
	// and exports are byte-identical to their pre-observability form.
	// Counters need real simulation: estimate mode refuses them.
	Counters bool
	// Exec selects the execution mode. ExecExact (the zero value) runs
	// full machine simulations; ExecEstimate prices each cell with the
	// analytic cost model instead — no machines are built — and marks
	// every result with CellResult.Mode. Exact-mode results and exports
	// are byte-identical to runs made before this knob existed.
	Exec ExecMode
	// CellShards, when above 1, runs each exact cell as a parallel
	// shard simulation: the cell's table is partitioned into CellShards
	// contiguous shards (db.Partition), the per-shard machines simulate
	// concurrently on the worker pool, and the partials merge in shard
	// order — cycles as the critical path (slowest shard), energy and
	// counter totals summed — so results are byte-identical at any
	// worker count. 0 or 1 keeps the whole-table single-machine path.
	CellShards int
}

// validate rejects option combinations the engine refuses to run:
// estimate mode can produce neither machine counters nor per-shard
// machine simulations, because there are no machines.
func (o Options) validate() error {
	switch o.Exec {
	case ExecExact:
	case ExecEstimate:
		if o.Counters {
			return fmt.Errorf("sweep: estimate mode cannot capture machine counters (µop-level counters need exact simulation)")
		}
		if o.CellShards > 1 {
			return fmt.Errorf("sweep: estimate mode prices whole cells analytically and has no shard machines to parallelise")
		}
	default:
		return fmt.Errorf("sweep: unknown exec mode %d", int(o.Exec))
	}
	if o.CellShards < 0 {
		return fmt.Errorf("sweep: negative cell shard count %d", o.CellShards)
	}
	return nil
}

// EffectiveWorkers resolves the worker-pool size these options produce.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CellResult is one aggregated sweep outcome.
type CellResult struct {
	// Index is the cell's position in the expanded grid.
	Index int
	// Cell is the experiment that ran.
	Cell Cell
	// Result is the simulation outcome.
	Result Result
	// Selectivity is the fraction of the cell's table matching its
	// predicate (computed once per workload group).
	Selectivity float64
	// Speedup is the cell's speedup against its workload group's
	// baseline: the best x86 cycles over the same table and predicate,
	// or the group's best cycles when the group has no x86 cell.
	Speedup float64
	// Routing records the adaptive planner's decision for an auto-arch
	// cell: the candidates were the cell's shape with each registered
	// backend's architecture substituted (trimmed to fitting
	// envelopes), and Result.Plan is the chosen backend's plan. Nil —
	// and JSON-omitted — for fixed-architecture cells.
	Routing *cost.Decision `json:",omitempty"`
	// Counters is the cell's machine-counter snapshot when
	// Options.Counters was set; nil — and JSON-omitted — otherwise, so
	// counter-off exports are unchanged.
	Counters *obs.Counters `json:",omitempty"`
	// Mode records the execution mode that produced Result: ExecEstimate
	// cells carry model-predicted cycles over reference-evaluator
	// answers. ExecExact (the zero value) is JSON-omitted, so exact
	// exports are byte-identical to their pre-mode form.
	Mode ExecMode `json:",omitempty"`
	// Shards records the intra-cell shard count when the cell ran as a
	// parallel shard simulation (Options.CellShards > 1): Result.Cycles
	// is then the critical path over Shards concurrent machines. 0 —
	// and JSON-omitted — for whole-table runs.
	Shards int `json:",omitempty"`
}

// ResultSet is the aggregate outcome of a sweep, ordered by cell index.
type ResultSet struct {
	Cells []CellResult
}

// Results flattens the set into its simulation results, in cell order.
func (rs *ResultSet) Results() []Result {
	out := make([]Result, len(rs.Cells))
	for i, c := range rs.Cells {
		out[i] = c.Result
	}
	return out
}

// BestCycles reports the lowest cycle count among cells of arch, or 0
// when the set has none — the normalisation baseline figure tables use.
func (rs *ResultSet) BestCycles(arch query.Arch) uint64 {
	var best uint64
	for _, c := range rs.Cells {
		if c.Cell.Plan.Arch == arch && (best == 0 || c.Result.Cycles < best) {
			best = c.Result.Cycles
		}
	}
	return best
}

// Best returns the lowest-cycle cell per architecture, in architecture
// order.
func (rs *ResultSet) Best() []CellResult {
	best := map[query.Arch]CellResult{}
	for _, c := range rs.Cells {
		b, ok := best[c.Cell.Plan.Arch]
		if !ok || c.Result.Cycles < b.Result.Cycles {
			best[c.Cell.Plan.Arch] = c
		}
	}
	archs := make([]query.Arch, 0, len(best))
	for a := range best {
		archs = append(archs, a)
	}
	sort.Slice(archs, func(i, j int) bool { return archs[i] < archs[j] })
	out := make([]CellResult, len(archs))
	for i, a := range archs {
		out[i] = best[a]
	}
	return out
}

// Run expands the grid and executes every cell through the worker pool.
// Empty Tuples/Seeds axes inherit cfg's values, so a grid that doesn't
// sweep the workload runs at the scale the caller configured — matching
// how Config.Tuples governs Run and Figure.
func Run(cfg Config, g Grid, opt Options) (*ResultSet, error) {
	if len(g.Tuples) == 0 && cfg.Tuples > 0 {
		g.Tuples = []int{cfg.Tuples}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{cfg.Seed}
	}
	cells, err := g.Expand()
	if err != nil {
		return nil, err
	}
	return RunCells(cfg, cells, opt)
}

// tableCache resolves each distinct workload's table and selectivity
// exactly once per sweep, even when many workers ask concurrently. The
// tables themselves come from the process-wide db memo, so repeated
// sweeps and figure runs over the same (tuples, seed, clustering)
// triples share one generated table.
type tableCache struct {
	mu     sync.Mutex
	tables map[workload]*tableEntry
}

type tableEntry struct {
	once sync.Once
	tab  *db.Table
	sel  float64
}

func (tc *tableCache) get(w workload) (*db.Table, float64) {
	tc.mu.Lock()
	e, ok := tc.tables[w]
	if !ok {
		e = &tableEntry{}
		tc.tables[w] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() {
		if w.Clustered {
			e.tab = db.GenerateClusteredMemo(w.Tuples, w.Seed, w.NoiseDays)
		} else {
			e.tab = db.GenerateMemo(w.Tuples, w.Seed)
		}
		if w.Kind == query.Q1Agg {
			e.sel = db.SelectivityQ1(e.tab, w.Q1)
		} else {
			e.sel = db.Selectivity(e.tab, w.Q)
		}
	})
	return e.tab, e.sel
}

// RunCells executes an explicit cell list through the worker pool. The
// cells' Tuples/Seed fields select their tables; cfg contributes the
// machine and energy models. Every cell runs even if another fails, and
// the returned error is the first failure in cell order (deterministic
// regardless of worker count); the ResultSet is nil on error.
func RunCells(cfg Config, cells []Cell, opt Options) (*ResultSet, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Exec == ExecEstimate {
		return runCellsEstimate(cfg, cells, opt)
	}
	if opt.CellShards > 1 {
		return runCellsSharded(cfg, cells, opt)
	}
	rs := &ResultSet{Cells: make([]CellResult, len(cells))}
	errs := make([]error, len(cells))
	cache := &tableCache{tables: map[workload]*tableEntry{}}

	// Size the default machine image to the sweep's largest workload
	// instead of the full 64 MiB default: layouts bump-allocate from
	// address zero, so the image size changes no addresses and no
	// timing — only how many bytes each machine build and reset touches.
	// An explicit cfg.Machine is honoured untouched.
	mc := cfg.machineConfig()
	if cfg.Machine == nil {
		maxTuples := 0
		for _, c := range cells {
			if c.Tuples > maxTuples {
				maxTuples = c.Tuples
			}
		}
		if ib := db.ImageBytesFor(maxTuples); ib < mc.ImageBytes {
			mc.ImageBytes = ib
		}
	}
	cfg.Machine = &mc

	// The planner parameters for auto-arch cells, derived once from the
	// sweep's machine and energy models. Resolution happens per cell
	// inside the workers, but a decision is a pure function of (table,
	// plan), so the outcome is independent of worker scheduling.
	params := cost.ParamsFor(cfg.machineConfig(), cfg.energyModel())

	indices := make(chan int)
	var done sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	for w := 0; w < opt.EffectiveWorkers(); w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			// Each worker builds one machine lazily and Reset-reuses it
			// across its cells: a reset machine is bit-identical to a
			// fresh one (machine.Reset), so reuse changes wall-clock
			// only — the worker-count determinism tests double as reuse
			// determinism tests.
			var m *machine.Machine
			for i := range indices {
				cell := cells[i]
				tab, sel := cache.get(cell.workload())
				cr := CellResult{Index: i, Cell: cell, Selectivity: sel}
				var res Result
				var err error
				plan := cell.Plan
				if plan.Auto() {
					// Resolve the auto cell: substitute each registered
					// backend into the cell's shape and run the
					// predicted-fastest.
					var d *cost.Decision
					d, err = cost.Pick(params, tab, plan.Candidates(cell.Tuples))
					if err == nil {
						plan = d.Chosen
						cr.Routing = d
					}
				}
				if err == nil {
					if m == nil {
						m, err = machine.New(cfg.machineConfig())
					} else {
						m.Reset()
					}
				}
				if err == nil {
					res, err = cfg.runOn(m, tab, plan)
				}
				if err == nil && opt.Counters {
					// Snapshot before the next cell's Reset clears the
					// registry. A snapshot is a pure function of the
					// single-threaded cell run, so worker scheduling
					// cannot leak into it.
					cr.Counters = obs.Capture(m.Registry, m.Engine)
				}
				if err != nil {
					errs[i] = fmt.Errorf("sweep: cell %d (%s): %w", i, cell, err)
				} else {
					cr.Result = res
					rs.Cells[i] = cr
				}
				if opt.OnCell != nil {
					progressMu.Lock()
					completed++
					opt.OnCell(completed, len(cells), cr)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		indices <- i
	}
	close(indices)
	done.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rs.computeSpeedups()
	return rs, nil
}

// computeSpeedups fills the per-cell speedup against each workload
// group's baseline (best x86 cycles in the group, else the group best).
func (rs *ResultSet) computeSpeedups() {
	baseline := map[workload]uint64{}
	groupBest := map[workload]uint64{}
	for _, c := range rs.Cells {
		w := c.Cell.workload()
		cyc := c.Result.Cycles
		if b, ok := groupBest[w]; !ok || cyc < b {
			groupBest[w] = cyc
		}
		if c.Cell.Plan.Arch == query.X86 {
			if b, ok := baseline[w]; !ok || cyc < b {
				baseline[w] = cyc
			}
		}
	}
	for i := range rs.Cells {
		w := rs.Cells[i].Cell.workload()
		base, ok := baseline[w]
		if !ok {
			base = groupBest[w]
		}
		rs.Cells[i].Speedup = rs.Cells[i].Result.Speedup(base)
	}
}
