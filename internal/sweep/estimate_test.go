package sweep

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// errorBoundGrid is the calibration grid the estimate-mode error
// contract is pinned over: every backend, both layouts, Q6 across the
// selectivity range (≈0.1% to ~100%) and Q1 across its shipdate-cut
// range.
func errorBoundGrid() Grid {
	return Grid{
		Archs:      []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE},
		Strategies: []query.Strategy{query.ColumnAtATime},
		Tuples:     []int{4096},
		Clustered:  []bool{false, true},
		Queries: []db.Q06{
			q6WithQty(1), q6WithQty(10), q6WithQty(24), q6WithQty(50),
		},
		SkipInvalid: true,
	}
}

func q6WithQty(qty int32) db.Q06 {
	q := db.DefaultQ06()
	q.QtyHi = qty
	return q
}

func q1WithCut(cut int32) db.Q01 {
	q := db.DefaultQ01()
	q.ShipCut = cut
	return q
}

// estimateErrorCeiling is the estimate-mode error contract: across the
// calibration grid (both layouts, Q6 over the selectivity range, Q1
// over its cut range, every backend) the relative cycle error of
// estimate mode against exact simulation stays under this bound. The
// measured worst case is ~0.36 (HIVE at the lowest-selectivity Q6
// point); the ceiling pins 0.40 with headroom and is documented in
// docs/PERFORMANCE.md — if an estimator change pushes past it, that is
// a contract break, not a tolerance to bump casually.
const estimateErrorCeiling = 0.40

// TestEstimateErrorBound pins the estimate-vs-exact cycle error across
// the calibration grid for both workload families.
func TestEstimateErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration grid in -short mode")
	}
	grids := map[string]Grid{"q6": errorBoundGrid()}
	q1g := errorBoundGrid()
	q1g.Queries = nil
	q1g.Q1Queries = []db.Q01{q1WithCut(100), q1WithCut(1278), q1WithCut(2556)}
	grids["q1"] = q1g

	cfg := Config{Tuples: 4096, Seed: 42}
	for name, g := range grids {
		cells, err := g.Expand()
		if err != nil {
			t.Fatalf("%s: expand: %v", name, err)
		}
		exact, err := RunCells(cfg, cells, Options{})
		if err != nil {
			t.Fatalf("%s: exact: %v", name, err)
		}
		fast, err := RunCells(cfg, cells, Options{Exec: ExecEstimate})
		if err != nil {
			t.Fatalf("%s: estimate: %v", name, err)
		}
		var worst float64
		var worstCell string
		for i := range cells {
			ex := float64(exact.Cells[i].Result.Cycles)
			es := float64(fast.Cells[i].Result.Cycles)
			if ex == 0 {
				t.Fatalf("%s: cell %d (%s): exact ran 0 cycles", name, i, cells[i])
			}
			rel := (es - ex) / ex
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst, worstCell = rel, cells[i].String()
			}
			if fast.Cells[i].Mode != ExecEstimate {
				t.Fatalf("%s: cell %d not marked estimate", name, i)
			}
		}
		t.Logf("%s: worst relative cycle error %.4f (%s)", name, worst, worstCell)
		if worst > estimateErrorCeiling {
			t.Errorf("%s: worst relative cycle error %.4f exceeds the %.2f contract (%s)",
				name, worst, estimateErrorCeiling, worstCell)
		}
	}
}

// TestEstimatePickAgreement is the estimator-drift property test: on
// every calibration shape, the backend estimate mode routes an auto
// cell to must be the measured-fastest backend of the same candidate
// set in at least 90% of shapes — the PR 5 planner gate, now guarding
// the fast path against silent divergence.
func TestEstimatePickAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration grid in -short mode")
	}
	type shape struct {
		q         db.Q06
		clustered bool
		tuples    int
	}
	var shapes []shape
	for _, n := range []int{1024, 4096} {
		for _, clustered := range []bool{false, true} {
			for _, qty := range []int32{1, 10, 24, 50} {
				shapes = append(shapes, shape{q: q6WithQty(qty), clustered: clustered, tuples: n})
			}
		}
	}
	cfg := Config{Tuples: 4096, Seed: 42}
	agree := 0
	for _, s := range shapes {
		auto := Cell{
			Plan: query.Plan{Arch: query.ArchAuto, Strategy: query.ColumnAtATime,
				OpSize: 256, Unroll: 32, Q: s.q},
			Tuples: s.tuples, Seed: 42, Clustered: s.clustered,
		}
		est, err := RunCells(cfg, []Cell{auto}, Options{Exec: ExecEstimate})
		if err != nil {
			t.Fatalf("estimate %s: %v", auto, err)
		}
		routed := est.Cells[0].Result.Plan.Arch

		// Measure the same candidate set exactly and find the true
		// fastest.
		cands := auto.Plan.Candidates(s.tuples)
		cells := make([]Cell, len(cands))
		for i, p := range cands {
			cells[i] = Cell{Plan: p, Tuples: s.tuples, Seed: 42, Clustered: s.clustered}
		}
		exact, err := RunCells(cfg, cells, Options{})
		if err != nil {
			t.Fatalf("exact %s: %v", auto, err)
		}
		fastest := exact.Cells[0]
		for _, c := range exact.Cells[1:] {
			if c.Result.Cycles < fastest.Result.Cycles {
				fastest = c
			}
		}
		if routed == fastest.Result.Plan.Arch {
			agree++
		} else {
			t.Logf("disagreement: qty=%d clustered=%v n=%d routed %s, measured fastest %s",
				s.q.QtyHi, s.clustered, s.tuples, routed, fastest.Result.Plan.Arch)
		}
	}
	frac := float64(agree) / float64(len(shapes))
	t.Logf("estimate-mode pick agreement: %d/%d (%.0f%%)", agree, len(shapes), 100*frac)
	if frac < 0.90 {
		t.Errorf("estimate-mode picks agree with measured-fastest on %.0f%% of shapes, want >= 90%%", 100*frac)
	}
}

// TestEstimateRefusals pins the hard refusals: estimate mode cannot
// produce machine counters or shard machines, and unknown modes are
// rejected before any work runs.
func TestEstimateRefusals(t *testing.T) {
	cfg := Config{Tuples: 1024, Seed: 42}
	cells := []Cell{{
		Plan: query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
			OpSize: 256, Unroll: 32, Q: db.DefaultQ06()},
		Tuples: 1024, Seed: 42,
	}}
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"counters", Options{Exec: ExecEstimate, Counters: true}, "cannot capture machine counters"},
		{"cell-shards", Options{Exec: ExecEstimate, CellShards: 4}, "no shard machines"},
		{"unknown-mode", Options{Exec: ExecMode(7)}, "unknown exec mode"},
		{"negative-shards", Options{CellShards: -1}, "negative cell shard count"},
	}
	for _, tc := range cases {
		_, err := RunCells(cfg, cells, tc.opt)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestEstimateDeterminism pins worker-count independence: an
// estimate-mode sweep exports byte-identical CSV and JSON at any
// worker count.
func TestEstimateDeterminism(t *testing.T) {
	g := Grid{
		Archs: []query.Arch{query.X86, query.HIPE, query.ArchAuto},
		Queries: []db.Q06{
			q6WithQty(10), q6WithQty(24),
		},
		Tuples:      []int{1024},
		SkipInvalid: true,
	}
	cfg := Config{Tuples: 1024, Seed: 42}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var exports [2]struct{ csv, json bytes.Buffer }
	for i, workers := range []int{1, 7} {
		rs, err := RunCells(cfg, cells, Options{Exec: ExecEstimate, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := rs.WriteCSV(&exports[i].csv); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteJSON(&exports[i].json); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(exports[0].csv.Bytes(), exports[1].csv.Bytes()) {
		t.Error("estimate-mode CSV differs across worker counts")
	}
	if !bytes.Equal(exports[0].json.Bytes(), exports[1].json.Bytes()) {
		t.Error("estimate-mode JSON differs across worker counts")
	}
}

// TestEstimateCSVColumns pins the conditional schema: estimate exports
// carry the exec_mode column, exact exports do not.
func TestEstimateCSVColumns(t *testing.T) {
	cfg := Config{Tuples: 1024, Seed: 42}
	cells := []Cell{{
		Plan: query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
			OpSize: 256, Unroll: 32, Q: db.DefaultQ06()},
		Tuples: 1024, Seed: 42,
	}}
	for _, tc := range []struct {
		name string
		opt  Options
		want bool
	}{
		{"estimate", Options{Exec: ExecEstimate}, true},
		{"exact", Options{}, false},
	} {
		rs, err := RunCells(cfg, cells, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var buf bytes.Buffer
		if err := rs.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		header := strings.SplitN(buf.String(), "\n", 2)[0]
		if got := strings.Contains(header, "exec_mode"); got != tc.want {
			t.Errorf("%s: exec_mode column present = %v, want %v (header %q)",
				tc.name, got, tc.want, header)
		}
	}
}
