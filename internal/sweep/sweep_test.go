package sweep

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func small() Config {
	c := Default()
	c.Tuples = 256
	return c
}

func TestZeroGridIsOneDefaultCell(t *testing.T) {
	cells, err := Grid{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("zero grid expanded to %d cells", len(cells))
	}
	c := cells[0]
	want := query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
		OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	if c.Plan != want || c.Tuples != 16384 || c.Seed != 42 || c.Clustered {
		t.Fatalf("default cell wrong: %+v", c)
	}
	if (Grid{}).Size() != 1 {
		t.Fatal("zero grid size wrong")
	}
}

func TestGridExpansionOrderAndSkip(t *testing.T) {
	g := Grid{
		Archs:       []query.Arch{query.X86, query.HMC},
		Strategies:  []query.Strategy{query.ColumnAtATime},
		OpSizes:     []uint32{16, 32, 64, 128, 256},
		Unrolls:     []int{1, 2},
		Tuples:      []int{128},
		Seeds:       []uint64{1},
		SkipInvalid: true,
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// x86 is trimmed to ≤64 B: 3 op sizes × 2 unrolls, then HMC's 5 × 2.
	if len(cells) != 6+10 {
		t.Fatalf("expanded to %d cells, want 16", len(cells))
	}
	if g.Size() != 20 {
		t.Fatalf("pre-skip size %d, want 20", g.Size())
	}
	// Nesting order: arch outermost, then op size, unroll innermost.
	wantPrefix := []string{
		"x86/column-at-a-time/16B/1x", "x86/column-at-a-time/16B/2x",
		"x86/column-at-a-time/32B/1x", "x86/column-at-a-time/32B/2x",
		"x86/column-at-a-time/64B/1x", "x86/column-at-a-time/64B/2x",
		"hmc/column-at-a-time/16B/1x",
	}
	for i, want := range wantPrefix {
		if got := cells[i].Plan.String(); got != want {
			t.Fatalf("cell %d = %s, want %s", i, got, want)
		}
	}
}

func TestExpandRejectsInvalid(t *testing.T) {
	g := Grid{Archs: []query.Arch{query.X86}, OpSizes: []uint32{256},
		Tuples: []int{128}}
	if _, err := g.Expand(); err == nil {
		t.Fatal("x86/256B accepted without SkipInvalid")
	}
	g.SkipInvalid = true
	if _, err := g.Expand(); err == nil {
		t.Fatal("grid that skips every cell should error")
	}
	bad := Grid{Tuples: []int{100}}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("tuple count 100 accepted")
	}
}

func TestExpandAllConcatenatesInOrder(t *testing.T) {
	cells, err := ExpandAll(
		Grid{Archs: []query.Arch{query.HMC}, Tuples: []int{128}},
		Grid{Archs: []query.Arch{query.HIVE}, Tuples: []int{128}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Plan.Arch != query.HMC || cells[1].Plan.Arch != query.HIVE {
		t.Fatalf("wrong concat: %+v", cells)
	}
}

func TestPlanCells(t *testing.T) {
	q := db.DefaultQ06()
	cells := PlanCells(128, 7,
		query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q},
		query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q})
	if len(cells) != 2 || cells[1].Tuples != 128 || cells[1].Seed != 7 {
		t.Fatalf("wrong cells: %+v", cells)
	}
}

// acceptanceGrid is a ≥48-cell sweep spanning every deterministic axis:
// architectures, op sizes, seeds and two selectivity variants.
func acceptanceGrid() Grid {
	loose := db.DefaultQ06()
	loose.QtyHi = 50
	return Grid{
		Archs:       []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE},
		Strategies:  []query.Strategy{query.ColumnAtATime},
		OpSizes:     []uint32{64, 128, 256},
		Unrolls:     []int{1, 8},
		Queries:     []db.Q06{db.DefaultQ06(), loose},
		Tuples:      []int{256},
		Seeds:       []uint64{1, 2},
		SkipInvalid: true,
	}
}

func export(t *testing.T, rs *ResultSet) (csvBytes, jsonBytes []byte) {
	t.Helper()
	var cbuf, jbuf bytes.Buffer
	if err := rs.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	return cbuf.Bytes(), jbuf.Bytes()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := acceptanceGrid()
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 48 {
		t.Fatalf("acceptance grid has %d cells, want ≥48", len(cells))
	}

	workerCounts := []int{1, 2, 8, runtime.GOMAXPROCS(0)}
	var refCSV, refJSON []byte
	for _, w := range workerCounts {
		rs, err := Run(small(), g, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		csvB, jsonB := export(t, rs)
		if refCSV == nil {
			refCSV, refJSON = csvB, jsonB
			continue
		}
		if !bytes.Equal(refCSV, csvB) {
			t.Errorf("CSV differs between 1 and %d workers", w)
		}
		if !bytes.Equal(refJSON, jsonB) {
			t.Errorf("JSON differs between 1 and %d workers", w)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	g := Grid{Archs: []query.Arch{query.HIPE}, Unrolls: []int{1, 32}, Tuples: []int{128}}
	seen := 0
	last := 0
	_, err := Run(small(), g, Options{Workers: 2, OnCell: func(done, total int, r CellResult) {
		seen++
		if total != 2 {
			t.Errorf("total = %d", total)
		}
		if done <= last {
			t.Errorf("done not monotonic: %d after %d", done, last)
		}
		last = done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("callback fired %d times", seen)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rs, err := Run(small(), Grid{
		Archs:   []query.Arch{query.X86, query.HIPE},
		Unrolls: []int{8}, OpSizes: []uint32{64, 256},
		Tuples: []int{256}, SkipInvalid: true,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs[0], CSVHeader) {
		t.Fatalf("header %v", recs[0])
	}
	if len(recs) != len(rs.Cells)+1 {
		t.Fatalf("%d records for %d cells", len(recs)-1, len(rs.Cells))
	}
	col := map[string]int{}
	for i, name := range CSVHeader {
		col[name] = i
	}
	// The x86 64 B cell is its group's baseline: speedup exactly 1.
	x86 := recs[1]
	if x86[col["arch"]] != "x86" || x86[col["speedup"]] != "1" {
		t.Fatalf("x86 row wrong: %v", x86)
	}
	for i, rec := range recs[1:] {
		if rec[col["tuples"]] != "256" {
			t.Errorf("row %d tuples = %s", i, rec[col["tuples"]])
		}
		if rec[col["cycles"]] == "0" {
			t.Errorf("row %d has zero cycles", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rs, err := Run(small(), Grid{Tuples: []int{256}, Seeds: []uint64{1, 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, back) {
		t.Fatalf("JSON round trip diverged:\n%+v\n%+v", rs, back)
	}
}

func TestErrorPropagation(t *testing.T) {
	q := db.DefaultQ06()
	good := Cell{Plan: query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
		OpSize: 256, Unroll: 32, Q: q}, Tuples: 128, Seed: 1}
	// HIPE tuple-at-a-time fails plan validation inside query.Prepare —
	// a runtime cell failure from the engine's point of view.
	bad := func(u int) Cell {
		return Cell{Plan: query.Plan{Arch: query.HIPE, Strategy: query.TupleAtATime,
			OpSize: 256, Unroll: u, Q: q}, Tuples: 128, Seed: 1}
	}
	for _, workers := range []int{1, 8} {
		fired := 0
		rs, err := RunCells(small(), []Cell{good, bad(1), bad(2)}, Options{
			Workers: workers,
			OnCell:  func(done, total int, r CellResult) { fired++ },
		})
		if err == nil {
			t.Fatalf("workers=%d: failing cell did not propagate", workers)
		}
		if rs != nil {
			t.Fatalf("workers=%d: non-nil result set on error", workers)
		}
		// The reported failure is the first in cell order, whatever
		// order the workers hit them in.
		if !strings.Contains(err.Error(), "cell 1") {
			t.Fatalf("workers=%d: error %q does not name cell 1", workers, err)
		}
		// Progress still reaches the total: failed cells count too.
		if fired != 3 {
			t.Fatalf("workers=%d: OnCell fired %d times, want 3", workers, fired)
		}
	}
}

func TestRunInheritsConfigWorkload(t *testing.T) {
	cfg := Default()
	cfg.Tuples = 128
	cfg.Seed = 7
	rs, err := Run(cfg, Grid{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := rs.Cells[0].Cell; c.Tuples != 128 || c.Seed != 7 {
		t.Fatalf("grid did not inherit config workload: %+v", c)
	}
	// An explicit axis still wins over the config.
	rs, err = Run(cfg, Grid{Tuples: []int{256}, Seeds: []uint64{9}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := rs.Cells[0].Cell; c.Tuples != 256 || c.Seed != 9 {
		t.Fatalf("explicit axis overridden: %+v", c)
	}
}

func TestZeroNoiseClusteredLayout(t *testing.T) {
	cells, err := Grid{Clustered: []bool{true}, Tuples: []int{128}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].NoiseDays != 0 {
		t.Fatalf("zero noise coerced to %d", cells[0].NoiseDays)
	}
}

func TestSpeedupBaselines(t *testing.T) {
	// With x86 in the group, the best x86 cell is the 1.0 baseline and
	// the cube architectures land above it.
	rs, err := Run(small(), Grid{
		Archs:   []query.Arch{query.X86, query.HIPE},
		OpSizes: []uint32{64, 256}, Unrolls: []int{8},
		Tuples: []int{256}, SkipInvalid: true,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var x86Speedup, hipeSpeedup float64
	for _, c := range rs.Cells {
		switch c.Cell.Plan.Arch {
		case query.X86:
			x86Speedup = c.Speedup
		case query.HIPE:
			if c.Cell.Plan.OpSize == 256 {
				hipeSpeedup = c.Speedup
			}
		}
	}
	if x86Speedup != 1.0 {
		t.Fatalf("x86 baseline speedup %f", x86Speedup)
	}
	if hipeSpeedup <= 1.0 {
		t.Fatalf("HIPE speedup %f not above x86 baseline", hipeSpeedup)
	}

	// Without x86, the group's best cell is the 1.0 reference.
	rs, err = Run(small(), Grid{Unrolls: []int{1, 32}, Tuples: []int{256}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, c := range rs.Cells {
		if c.Speedup > best {
			best = c.Speedup
		}
	}
	if best != 1.0 {
		t.Fatalf("group-best speedup %f, want 1.0", best)
	}
}

func TestBestPerArch(t *testing.T) {
	rs, err := Run(small(), Grid{
		Archs:   []query.Arch{query.HMC, query.HIPE},
		Unrolls: []int{1, 32}, Tuples: []int{256},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := rs.Best()
	if len(best) != 2 || best[0].Cell.Plan.Arch != query.HMC || best[1].Cell.Plan.Arch != query.HIPE {
		t.Fatalf("best per arch wrong: %+v", best)
	}
	for _, b := range best {
		for _, c := range rs.Cells {
			if c.Cell.Plan.Arch == b.Cell.Plan.Arch && c.Result.Cycles < b.Result.Cycles {
				t.Fatalf("%s best is not minimal", b.Cell.Plan.Arch)
			}
		}
	}
}

func TestClusteredAxis(t *testing.T) {
	rs, err := Run(small(), Grid{
		Clustered: []bool{false, true}, NoiseDays: 10, Tuples: []int{256},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 2 {
		t.Fatalf("%d cells", len(rs.Cells))
	}
	uniform, clustered := rs.Cells[0], rs.Cells[1]
	if uniform.Cell.Clustered || !clustered.Cell.Clustered {
		t.Fatalf("clustered axis order wrong")
	}
	if clustered.Result.Squashed <= uniform.Result.Squashed {
		t.Fatalf("clustering did not raise squashes: %d vs %d",
			clustered.Result.Squashed, uniform.Result.Squashed)
	}
}
