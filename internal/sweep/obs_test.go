package sweep

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/query"
)

func obsTestCells(t *testing.T) []Cell {
	t.Helper()
	g := Grid{
		Archs:      []query.Arch{query.X86, query.HIPE},
		Strategies: []query.Strategy{query.ColumnAtATime},
		OpSizes:    []uint32{64},
		Unrolls:    []int{8},
		Tuples:     []int{512},
		Seeds:      []uint64{42},
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestSweepCountersCaptured: counters on, every cell carries a sorted
// machine-counter snapshot with the engine and component keys, and the
// CSV export grows the ctr_ columns.
func TestSweepCountersCaptured(t *testing.T) {
	cfg := Default()
	cfg.Tuples = 512
	rs, err := RunCells(cfg, obsTestCells(t), Options{Workers: 2, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HasCounters() {
		t.Fatal("counters on but HasCounters false")
	}
	for _, c := range rs.Cells {
		if c.Counters.Len() == 0 {
			t.Fatalf("cell %d has no counter snapshot", c.Index)
		}
		for _, key := range []string{"engine.events_executed", "dram.reads"} {
			if v, ok := c.Counters.Get(key); !ok || v == 0 {
				t.Errorf("cell %d missing counter %s (= %d, %v)", c.Index, key, v, ok)
			}
		}
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(header, "ctr_engine.events_executed") {
		t.Fatalf("CSV header missing ctr_ columns: %s", header)
	}
	// Counter-off export keeps the original schema.
	rsOff, err := RunCells(cfg, obsTestCells(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rsOff.HasCounters() {
		t.Fatal("counters off but HasCounters true")
	}
	buf.Reset()
	if err := rsOff.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ctr_") {
		t.Fatal("counter-off CSV grew ctr_ columns")
	}
}

// TestSweepCountersDeterministicAcrossWorkers: counter-bearing exports
// are byte-identical at any worker count.
func TestSweepCountersDeterministicAcrossWorkers(t *testing.T) {
	cfg := Default()
	cfg.Tuples = 512
	run := func(workers int) []byte {
		t.Helper()
		rs, err := RunCells(cfg, obsTestCells(t), Options{Workers: workers, Counters: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		if !bytes.Equal(base, run(w)) {
			t.Fatalf("counter CSV differs between 1 and %d workers", w)
		}
	}
}
