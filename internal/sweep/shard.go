// The parallel shard simulation path: each exact cell's table is cut
// into Options.CellShards contiguous shards (db.Partition), the
// per-shard machines simulate concurrently on the worker pool, and the
// partials merge in shard order. Shard machines share no state until
// the merge, so parallelism cannot perturb any simulated result; the
// merge itself is a pure fold over an index-ordered slice, so a sharded
// sweep is byte-identical at any worker count — the same invariant the
// serving cluster's scatter-gather path holds, and the same shape its
// reports use (cycles as the critical path over shards, totals summed).
package sweep

import (
	"fmt"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/obs"
)

// addBreakdown accumulates o into b component-wise.
func addBreakdown(b *energy.Breakdown, o energy.Breakdown) {
	b.ActivationPJ += o.ActivationPJ
	b.ReadPJ += o.ReadPJ
	b.WritePJ += o.WritePJ
	b.RefreshPJ += o.RefreshPJ
	b.BackgroundPJ += o.BackgroundPJ
	b.LinkPJ += o.LinkPJ
	b.LogicPJ += o.LogicPJ
}

// shardTask is one (cell, shard) unit of work, slot-indexed so partials
// land at cell*CellShards+shard regardless of scheduling.
type shardTask struct {
	cell  int
	shard int
}

// shardPartial is one shard's simulation outcome plus the counter
// snapshot taken before its machine went back to the pool.
type shardPartial struct {
	res      Result
	counters *obs.Counters
}

// runCellsSharded executes a cell list with intra-cell shard
// parallelism. Routing for auto-arch cells is resolved on the whole
// table before fan-out — the same cost.Pick call the whole-table path
// makes, so routing decisions and export columns are byte-identical
// across shard counts. Merged results report cycles as the critical
// path (slowest shard: the shards would run concurrently on real
// hardware), and sum energy, verification, squash and counter totals
// in shard order.
func runCellsSharded(cfg Config, cells []Cell, opt Options) (*ResultSet, error) {
	nShards := opt.CellShards
	rs := &ResultSet{Cells: make([]CellResult, len(cells))}
	errs := make([]error, len(cells))
	cache := &tableCache{tables: map[workload]*tableEntry{}}
	params := cost.ParamsFor(cfg.machineConfig(), cfg.energyModel())

	// Partition each distinct workload's table once, and resolve every
	// auto cell's routing on the whole table, serially before fan-out:
	// routing is part of the result contract and must not depend on the
	// shard or worker count. Cells whose tables cannot be cut (fewer
	// than nShards 64-row blocks) or whose routing fails error here, in
	// cell order.
	shardSets := map[workload][]*db.Table{}
	resolved := make([]Cell, len(cells))
	routings := make([]*cost.Decision, len(cells))
	sels := make([]float64, len(cells))
	for i, cell := range cells {
		w := cell.workload()
		tab, sel := cache.get(w)
		sels[i] = sel
		if _, ok := shardSets[w]; !ok {
			shards, err := db.Partition(tab, nShards)
			if err != nil {
				return nil, fmt.Errorf("sweep: cell %d (%s): %w", i, cell, err)
			}
			shardSets[w] = shards
		}
		resolved[i] = cell
		if cell.Plan.Auto() {
			d, err := cost.Pick(params, tab, cell.Plan.Candidates(cell.Tuples))
			if err != nil {
				return nil, fmt.Errorf("sweep: cell %d (%s): %w", i, cell, err)
			}
			resolved[i].Plan = d.Chosen
			routings[i] = d
		}
	}

	// Shard machines only ever see shard-sized tables, so the default
	// image sizes to the largest shard, not the largest table — the
	// same bump-allocation argument the whole-table path makes. An
	// explicit cfg.Machine is honoured untouched.
	mc := cfg.machineConfig()
	if cfg.Machine == nil {
		maxRows := 0
		for _, shards := range shardSets {
			for _, s := range shards {
				if s.N > maxRows {
					maxRows = s.N
				}
			}
		}
		if ib := db.ImageBytesFor(maxRows); ib < mc.ImageBytes {
			mc.ImageBytes = ib
		}
	}
	cfg.Machine = &mc
	pool := machine.NewPool(mc)

	// Fan out (cell, shard) tasks. Partials are slot-indexed; the
	// per-cell merge below runs after every worker is done, so no
	// ordering between workers is observable.
	tasks := make([]shardTask, 0, len(cells)*nShards)
	for c := range cells {
		for s := 0; s < nShards; s++ {
			tasks = append(tasks, shardTask{cell: c, shard: s})
		}
	}
	partials := make([]shardPartial, len(tasks))
	taskErrs := make([]error, len(tasks))
	workers := opt.EffectiveWorkers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	indices := make(chan int)
	var done sync.WaitGroup
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for ti := range indices {
				t := tasks[ti]
				cell := resolved[t.cell]
				shard := shardSets[cell.workload()][t.shard]
				m, err := pool.Get()
				if err == nil {
					var res Result
					res, err = cfg.runOn(m, shard, cell.Plan)
					if err == nil {
						partials[ti].res = res
						if opt.Counters {
							partials[ti].counters = obs.Capture(m.Registry, m.Engine)
						}
					}
					pool.Put(m)
				}
				if err != nil {
					taskErrs[ti] = fmt.Errorf("sweep: cell %d (%s) shard %d: %w",
						t.cell, cell, t.shard, err)
				}
			}
		}()
	}
	for i := range tasks {
		indices <- i
	}
	close(indices)
	done.Wait()

	// Merge per cell in shard order; report progress in cell-index
	// order (the sharded path completes cells all at once, so index
	// order is the natural completion order).
	completed := 0
	for c, cell := range cells {
		base := c * nShards
		var mergeErr error
		for s := 0; s < nShards; s++ {
			if err := taskErrs[base+s]; err != nil {
				mergeErr = err
				break
			}
		}
		cr := CellResult{
			Index:       c,
			Cell:        cell,
			Selectivity: sels[c],
			Routing:     routings[c],
			Shards:      nShards,
		}
		if mergeErr == nil {
			merged := Result{Plan: resolved[c].Plan}
			var ctr *obs.Counters
			for s := 0; s < nShards; s++ {
				p := partials[base+s]
				if p.res.Cycles > merged.Cycles {
					merged.Cycles = p.res.Cycles
				}
				addBreakdown(&merged.Energy, p.res.Energy)
				merged.Checked += p.res.Checked
				merged.Squashed += p.res.Squashed
				merged.SquashedDRAMBytes += p.res.SquashedDRAMBytes
				if len(p.res.Groups) > 0 {
					if merged.Groups == nil {
						merged.Groups = append([]db.GroupAgg(nil), p.res.Groups...)
					} else {
						for g := range merged.Groups {
							merged.Groups[g].Add(p.res.Groups[g])
						}
					}
				}
				if p.counters != nil {
					if ctr == nil {
						ctr = p.counters.Clone()
					} else {
						ctr.Add(p.counters)
					}
				}
			}
			cr.Result = merged
			cr.Counters = ctr
			rs.Cells[c] = cr
		} else if errs[c] == nil {
			errs[c] = mergeErr
		}
		if opt.OnCell != nil {
			completed++
			if mergeErr != nil {
				cr = CellResult{Index: c, Cell: cell, Selectivity: sels[c], Shards: nShards}
			}
			opt.OnCell(completed, len(cells), cr)
		}
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rs.computeSpeedups()
	return rs, nil
}
