// Package sweep is the experiment-execution engine of the reproduction:
// the single-plan runner (Config.Run — build a machine, lay out the
// table, generate the µop stream, simulate, verify, audit energy) and a
// worker-pool fan-out that executes whole parameter sweeps — declarative
// cross-products over architecture, scan strategy, operation size,
// unroll depth, Query 06 selectivity knobs, tuple counts, seeds and
// table clustering — across all cores.
//
// Sweeps are deterministic by construction: each simulation is
// single-threaded and bit-reproducible (see internal/sim), cells are
// indexed by their position in the expanded grid, and results are
// aggregated by index. A sweep therefore produces byte-identical
// exported results regardless of the worker count; only wall-clock time
// changes. The harness's Figure runners are thin grids over this
// engine, and cmd/hipe-sweep exposes it on the command line.
package sweep

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/query"
)

// Config parameterises experiment runs.
type Config struct {
	// Tuples is the lineitem row count (multiple of 64). The paper uses
	// TPC-H SF1 (~6M rows); the default is large enough for steady-state
	// behaviour while keeping runs interactive.
	Tuples int
	// Seed drives the deterministic generator.
	Seed uint64
	// Machine overrides the default Table I machine when non-nil.
	Machine *machine.Config
	// Energy overrides the default energy constants when non-nil.
	Energy *energy.Model
}

// Default returns the standard experiment configuration.
func Default() Config {
	return Config{Tuples: 16384, Seed: 42}
}

func (c Config) machineConfig() machine.Config {
	if c.Machine != nil {
		return *c.Machine
	}
	return machine.Default()
}

func (c Config) energyModel() energy.Model {
	if c.Energy != nil {
		return *c.Energy
	}
	return energy.Default()
}

// Result is the outcome of one simulated plan.
type Result struct {
	Plan    query.Plan
	Cycles  uint64
	Energy  energy.Breakdown
	Checked int
	// Squashed reports HIPE predication squashes (0 elsewhere).
	Squashed uint64
	// SquashedDRAMBytes reports DRAM reads avoided by predication.
	SquashedDRAMBytes uint64
	// Groups holds the per-group aggregates of a Q01 aggregation plan
	// in db.GroupID order, verified against the reference evaluator
	// (nil — and JSON-omitted — for selection scans).
	Groups []db.GroupAgg `json:",omitempty"`
}

// Speedup reports baseCycles / this result's cycles.
func (r Result) Speedup(baseCycles uint64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(r.Cycles)
}

// Run executes one plan on a fresh machine, verifies the computed
// bitmask against the reference evaluator, and audits energy.
func (c Config) Run(tab *db.Table, p query.Plan) (Result, error) {
	m, err := machine.New(c.machineConfig())
	if err != nil {
		return Result{}, err
	}
	return c.runOn(m, tab, p)
}

// runOn executes one plan on an already-built machine in a pristine
// (fresh or Reset) state — the worker pool's machine-reuse path. The
// machine is left dirty; callers Reset it before the next run.
func (c Config) runOn(m *machine.Machine, tab *db.Table, p query.Plan) (Result, error) {
	w, err := query.Prepare(m, tab, p)
	if err != nil {
		return Result{}, err
	}
	cycles := uint64(m.Run(w.Stream()))
	if err := w.Verify(); err != nil {
		return Result{}, err
	}
	mc := c.machineConfig()
	breakdown := c.energyModel().Audit(m.Registry, cycles,
		int(mc.Geometry.Vaults), uint64(mc.DRAM.ClockRatio))
	scope := "hipe"
	if p.Arch == query.HIVE {
		scope = "hive"
	}
	return Result{
		Plan:              p,
		Cycles:            cycles,
		Energy:            breakdown,
		Checked:           w.Checked(),
		Squashed:          m.Registry.Scope(scope).Get("squashed"),
		SquashedDRAMBytes: m.Registry.Scope(scope).Get("squashed_dram_bytes"),
		Groups:            w.GroupResults(),
	}, nil
}
