// Grid declaration and expansion: a sweep is the cross-product of every
// populated axis, expanded in a fixed nesting order so cell indices are
// stable across runs, worker counts and machines.
package sweep

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// Cell is one fully-instantiated experiment: a plan plus the workload it
// runs over. Cells are the unit of work the engine schedules.
type Cell struct {
	Plan   query.Plan
	Tuples int
	Seed   uint64
	// Clustered selects the date-clustered (append-ordered) table; see
	// db.GenerateClustered.
	Clustered bool
	// NoiseDays is the clustering noise (only meaningful when Clustered).
	NoiseDays int32
}

// workload identifies the table + query group a cell belongs to. Cells
// sharing a workload share a generated table and a speedup baseline.
type workload struct {
	Tuples    int
	Seed      uint64
	Clustered bool
	NoiseDays int32
	Kind      query.QueryKind
	Q         db.Q06
	Q1        db.Q01
}

func (c Cell) workload() workload {
	return workload{Tuples: c.Tuples, Seed: c.Seed,
		Clustered: c.Clustered, NoiseDays: c.NoiseDays,
		Kind: c.Plan.Kind, Q: c.Plan.Q, Q1: c.Plan.Q1}
}

// String renders a cell identifier like
// "hipe/column-at-a-time/256B/32x n=16384 seed=42".
func (c Cell) String() string {
	s := fmt.Sprintf("%s n=%d seed=%d", c.Plan, c.Tuples, c.Seed)
	if c.Clustered {
		s += fmt.Sprintf(" clustered(±%dd)", c.NoiseDays)
	}
	return s
}

// Grid declares a parameter sweep as the cross-product of its axes.
// Empty axes take the documented singleton default, so a zero Grid is
// one default HIPE cell. Expansion nests in a fixed order, outermost to
// innermost: Tuples, Seeds, Clustered, Queries, Archs, Strategies,
// Fused, Aggregate, OpSizes, Unrolls — i.e. the plan axes vary
// fastest, with unroll depth innermost, which is the row order the
// paper's figures use.
type Grid struct {
	// Archs are the architectures to sweep. Default: {HIPE}. The axis
	// may include query.ArchAuto: an auto cell keeps the grid's shape
	// axes and the engine routes it to the predicted-fastest registered
	// backend whose envelope admits that shape (the routing decision is
	// recorded in the cell result and the exports' routing columns).
	Archs []query.Arch
	// Strategies are the scan strategies. Default: {ColumnAtATime}.
	Strategies []query.Strategy
	// OpSizes are memory operation widths in bytes. Default: {256}.
	OpSizes []uint32
	// Unrolls are loop unrolling depths. Default: {32}.
	Unrolls []int
	// Fused sweeps HIVE's fused full-scan variant. Default: {false}.
	Fused []bool
	// Aggregate sweeps HIPE's in-memory Q06 aggregation extension.
	// Default: {false}.
	Aggregate []bool
	// Queries are the Q06 predicate variants (the selectivity knobs).
	// Default: {db.DefaultQ06()} when Q1Queries is also empty.
	Queries []db.Q06
	// Q1Queries are TPC-H Q01-style aggregation variants. The query
	// axis is the concatenation of Queries and Q1Queries, so one grid
	// can sweep selection and aggregation workloads side by side; cells
	// from this list carry Kind == Q1Agg.
	Q1Queries []db.Q01
	// Tuples are lineitem row counts (multiples of 64). When empty,
	// Run inherits the Config's Tuples; a bare Expand uses 16384.
	Tuples []int
	// Seeds drive the deterministic generator. When empty, Run
	// inherits the Config's Seed; a bare Expand uses 42.
	Seeds []uint64
	// Clustered sweeps the date-clustered table layout. Default: {false}.
	Clustered []bool
	// NoiseDays is the clustering noise applied to clustered cells
	// (scalar — it parameterises the layout, it is not a swept axis).
	// Zero means an exactly date-ordered table.
	NoiseDays int32
	// SkipInvalid drops cells whose plan fails query.Plan.Validate
	// (e.g. x86 at 128 B, HIPE tuple-at-a-time) instead of failing the
	// expansion. This is what lets one grid span architectures with
	// different evaluated envelopes, as the paper's figures do.
	SkipInvalid bool
}

// Defaults for empty grid axes.
var (
	defaultArchs      = []query.Arch{query.HIPE}
	defaultStrategies = []query.Strategy{query.ColumnAtATime}
	defaultOpSizes    = []uint32{256}
	defaultUnrolls    = []int{32}
	defaultBools      = []bool{false}
	defaultTuples     = []int{16384}
	defaultSeeds      = []uint64{42}
)

func orArchs(v []query.Arch, d []query.Arch) []query.Arch {
	if len(v) == 0 {
		return d
	}
	return v
}

// Size reports the number of cells the grid expands to before invalid
// plans are skipped.
func (g Grid) Size() int {
	n := 1
	for _, l := range []int{len(orInt(g.Tuples, defaultTuples)), len(orU64(g.Seeds, defaultSeeds)),
		len(orBool(g.Clustered, defaultBools)), max(len(g.Queries)+len(g.Q1Queries), 1),
		len(orArchs(g.Archs, defaultArchs)), max(len(g.Strategies), 1),
		len(orBool(g.Fused, defaultBools)), len(orBool(g.Aggregate, defaultBools)),
		len(orU32(g.OpSizes, defaultOpSizes)), len(orInt(g.Unrolls, defaultUnrolls))} {
		n *= l
	}
	return n
}

func orInt(v, d []int) []int {
	if len(v) == 0 {
		return d
	}
	return v
}
func orU32(v, d []uint32) []uint32 {
	if len(v) == 0 {
		return d
	}
	return v
}
func orU64(v, d []uint64) []uint64 {
	if len(v) == 0 {
		return d
	}
	return v
}
func orBool(v, d []bool) []bool {
	if len(v) == 0 {
		return d
	}
	return v
}

// Expand materialises the grid's cells in their deterministic order.
// Without SkipInvalid, any cell whose plan fails validation aborts the
// expansion with that cell's error.
func (g Grid) Expand() ([]Cell, error) {
	strategies := g.Strategies
	if len(strategies) == 0 {
		strategies = defaultStrategies
	}
	// The query axis spans the Q06 variants followed by the Q01
	// variants; a grid naming neither sweeps the default Q06.
	type queryVariant struct {
		kind query.QueryKind
		q    db.Q06
		q1   db.Q01
	}
	var queries []queryVariant
	for _, q := range g.Queries {
		queries = append(queries, queryVariant{kind: query.Q6Select, q: q})
	}
	for _, q1 := range g.Q1Queries {
		queries = append(queries, queryVariant{kind: query.Q1Agg, q1: q1})
	}
	if len(queries) == 0 {
		queries = []queryVariant{{kind: query.Q6Select, q: db.DefaultQ06()}}
	}
	var cells []Cell
	for _, n := range orInt(g.Tuples, defaultTuples) {
		if n <= 0 || n%64 != 0 {
			return nil, fmt.Errorf("sweep: tuple count %d is not a positive multiple of 64", n)
		}
		for _, seed := range orU64(g.Seeds, defaultSeeds) {
			for _, clustered := range orBool(g.Clustered, defaultBools) {
				for _, qv := range queries {
					for _, arch := range orArchs(g.Archs, defaultArchs) {
						for _, strat := range strategies {
							for _, fused := range orBool(g.Fused, defaultBools) {
								for _, agg := range orBool(g.Aggregate, defaultBools) {
									for _, op := range orU32(g.OpSizes, defaultOpSizes) {
										for _, u := range orInt(g.Unrolls, defaultUnrolls) {
											c := Cell{
												Plan: query.Plan{Arch: arch, Strategy: strat,
													OpSize: op, Unroll: u, Fused: fused,
													Aggregate: agg, Kind: qv.kind,
													Q: qv.q, Q1: qv.q1},
												Tuples: n, Seed: seed,
											}
											if clustered {
												c.Clustered = true
												c.NoiseDays = g.NoiseDays
											}
											// ValidateFor also applies the
											// table-dependent envelope (e.g.
											// Q01 accumulator-overflow bounds),
											// so SkipInvalid trims such cells
											// instead of aborting the run.
											if err := c.Plan.ValidateFor(n); err != nil {
												if g.SkipInvalid {
													continue
												}
												return nil, fmt.Errorf("sweep: cell %s: %w", c, err)
											}
											cells = append(cells, c)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: grid expands to no valid cells")
	}
	return cells, nil
}

// ExpandAll concatenates the expansions of several grids, in order —
// the shape of a figure whose per-architecture axes differ (e.g.
// Figure 3c sweeps unroll depth at 64 B on x86 but 256 B on the cubes).
func ExpandAll(grids ...Grid) ([]Cell, error) {
	var cells []Cell
	for i, g := range grids {
		c, err := g.Expand()
		if err != nil {
			return nil, fmt.Errorf("sweep: grid %d: %w", i, err)
		}
		cells = append(cells, c...)
	}
	return cells, nil
}

// PlanCells builds one cell per plan over a single workload — the shape
// of a "best configurations" comparison like Figure 3d.
func PlanCells(tuples int, seed uint64, plans ...query.Plan) []Cell {
	cells := make([]Cell, len(plans))
	for i, p := range plans {
		cells[i] = Cell{Plan: p, Tuples: tuples, Seed: seed}
	}
	return cells
}
