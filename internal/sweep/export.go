// Exporters: CSV for spreadsheets/plotting toolchains, JSON for
// programmatic consumers. Both emit cells in index order with
// deterministic number formatting, so a sweep's export is byte-stable
// across runs and worker counts.
package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// CSVHeader is the column layout of WriteCSV, one column per cell axis
// and per reported metric. Result sets containing auto-arch cells
// append RoutingCSVHeader's routing-decision columns, so fixed-arch
// exports stay byte-identical to their pre-planner form.
var CSVHeader = []string{
	"index", "arch", "strategy", "opsize_b", "unroll", "fused", "aggregate",
	"tuples", "seed", "clustered", "noise_days",
	"ship_lo", "ship_hi", "disc_lo", "disc_hi", "qty_hi", "selectivity",
	"cycles", "cycles_per_tuple", "speedup",
	"dram_pj", "total_pj", "squashed", "squashed_dram_bytes", "checked",
}

// RoutingCSVHeader returns the columns appended for sweeps with
// auto-arch cells: the backend the planner chose and its estimated
// cycles (the arch column keeps "auto", so the routing is auditable
// against the estimate and the measured cycles side by side).
func RoutingCSVHeader() []string { return []string{"routed_arch", "est_cycles"} }

// HasRouting reports whether any cell in the set was routed by the
// adaptive planner.
func (rs *ResultSet) HasRouting() bool {
	for i := range rs.Cells {
		if rs.Cells[i].Routing != nil {
			return true
		}
	}
	return false
}

// HasModes reports whether any cell ran in a non-default execution
// mode (estimate): only then does the CSV carry an exec_mode column, so
// exact exports are byte-identical to their pre-mode form.
func (rs *ResultSet) HasModes() bool {
	for i := range rs.Cells {
		if rs.Cells[i].Mode != ExecExact {
			return true
		}
	}
	return false
}

// HasSharding reports whether any cell ran as a parallel shard
// simulation: only then does the CSV carry a shards column, so
// whole-table exports are byte-identical to their pre-sharding form.
func (rs *ResultSet) HasSharding() bool {
	for i := range rs.Cells {
		if rs.Cells[i].Shards > 0 {
			return true
		}
	}
	return false
}

// HasCounters reports whether any cell carries a machine-counter
// snapshot (sweeps run with Options.Counters).
func (rs *ResultSet) HasCounters() bool {
	for i := range rs.Cells {
		if rs.Cells[i].Counters.Len() > 0 {
			return true
		}
	}
	return false
}

// counterKeys returns the sorted union of every cell's counter keys —
// the "ctr_<key>" column set. Snapshot keys are already sorted, so the
// union is a sorted merge.
func (rs *ResultSet) counterKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for i := range rs.Cells {
		for _, k := range rs.Cells[i].Counters.Keys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV writes the set as CSV with CSVHeader's columns, plus — in
// this order, each only when active — RoutingCSVHeader's columns for
// auto-arch cells, an exec_mode column for estimate-mode runs, a shards
// column for parallel shard simulations, and one "ctr_<key>" column per
// captured machine counter. A plain exact whole-table counter-off
// export keeps the original schema byte-for-byte.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	routed := rs.HasRouting()
	modes := rs.HasModes()
	sharded := rs.HasSharding()
	var ctrKeys []string
	if rs.HasCounters() {
		ctrKeys = rs.counterKeys()
	}
	header := CSVHeader
	if routed || modes || sharded || len(ctrKeys) > 0 {
		header = append([]string{}, CSVHeader...)
		if routed {
			header = append(header, RoutingCSVHeader()...)
		}
		if modes {
			header = append(header, "exec_mode")
		}
		if sharded {
			header = append(header, "shards")
		}
		for _, k := range ctrKeys {
			header = append(header, "ctr_"+k)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range rs.Cells {
		p, q, r := c.Cell.Plan, c.Cell.Plan.Q, c.Result
		if p.Kind == query.Q1Agg {
			// Aggregation rows render their filter in the shared date
			// columns, [0, ShipCut] as a half-open range; the discount
			// and quantity bounds read zero, which no Q06 row has — the
			// schema stays fixed, so Q06-only exports are byte-stable.
			q = db.Q06{ShipLo: 0, ShipHi: p.Q1.ShipCut + 1}
		}
		rec := []string{
			strconv.Itoa(c.Index),
			p.Arch.String(),
			p.Strategy.String(),
			strconv.FormatUint(uint64(p.OpSize), 10),
			strconv.Itoa(p.Unroll),
			strconv.FormatBool(p.Fused),
			strconv.FormatBool(p.Aggregate),
			strconv.Itoa(c.Cell.Tuples),
			strconv.FormatUint(c.Cell.Seed, 10),
			strconv.FormatBool(c.Cell.Clustered),
			strconv.FormatInt(int64(c.Cell.NoiseDays), 10),
			strconv.FormatInt(int64(q.ShipLo), 10),
			strconv.FormatInt(int64(q.ShipHi), 10),
			strconv.FormatInt(int64(q.DiscLo), 10),
			strconv.FormatInt(int64(q.DiscHi), 10),
			strconv.FormatInt(int64(q.QtyHi), 10),
			formatFloat(c.Selectivity),
			strconv.FormatUint(r.Cycles, 10),
			formatFloat(float64(r.Cycles) / float64(c.Cell.Tuples)),
			formatFloat(c.Speedup),
			formatFloat(r.Energy.DRAMPJ()),
			formatFloat(r.Energy.TotalPJ()),
			strconv.FormatUint(r.Squashed, 10),
			strconv.FormatUint(r.SquashedDRAMBytes, 10),
			strconv.Itoa(r.Checked),
		}
		if routed {
			if d := c.Routing; d != nil {
				rec = append(rec, d.Chosen.Arch.String(),
					strconv.FormatFloat(d.Estimates[d.ChosenIndex].Cycles, 'f', 0, 64))
			} else {
				rec = append(rec, "", "")
			}
		}
		if modes {
			rec = append(rec, c.Mode.String())
		}
		if sharded {
			rec = append(rec, strconv.Itoa(c.Shards))
		}
		for _, k := range ctrKeys {
			if v, ok := c.Counters.Get(k); ok {
				rec = append(rec, strconv.FormatUint(v, 10))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the set as indented JSON: {"cells": [...]}.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadJSON decodes a set previously written by WriteJSON.
func ReadJSON(r io.Reader) (*ResultSet, error) {
	rs := &ResultSet{}
	if err := json.NewDecoder(r).Decode(rs); err != nil {
		return nil, err
	}
	return rs, nil
}

// MarshalJSON emits the cells under a stable "cells" key.
func (rs *ResultSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Cells []CellResult `json:"cells"`
	}{rs.Cells})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (rs *ResultSet) UnmarshalJSON(data []byte) error {
	var v struct {
		Cells []CellResult `json:"cells"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	rs.Cells = v.Cells
	return nil
}
