package harness

import (
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

func small() Config {
	c := Default()
	c.Tuples = 1024
	return c
}

func TestRunSinglePlan(t *testing.T) {
	c := small()
	tab := db.Generate(c.Tuples, c.Seed)
	r, err := c.Run(tab, query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime,
		OpSize: 256, Unroll: 8, Q: db.DefaultQ06()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Energy.DRAMPJ() <= 0 || r.Checked == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.Speedup(r.Cycles*2) != 2.0 {
		t.Fatal("Speedup arithmetic wrong")
	}
}

func TestRunRejectsBadPlan(t *testing.T) {
	c := small()
	tab := db.Generate(c.Tuples, c.Seed)
	_, err := c.Run(tab, query.Plan{Arch: query.X86, Strategy: query.TupleAtATime,
		OpSize: 128, Unroll: 1, Q: db.DefaultQ06()})
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestFig3d(t *testing.T) {
	table, err := Fig3d(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("fig3d rows = %d", len(table.Rows))
	}
	// Headline orderings of the paper, at small scale: every cube
	// architecture beats x86 at its best configuration.
	base := table.Baseline
	for _, r := range table.Rows[1:] {
		if r.Cycles >= base {
			t.Errorf("%s (%d cycles) not faster than x86 (%d)", r.Plan, r.Cycles, base)
		}
	}
	out := table.String()
	if !strings.Contains(out, "Figure 3d") || !strings.Contains(out, "hipe") {
		t.Fatalf("table render wrong:\n%s", out)
	}
}

func TestFigureDispatch(t *testing.T) {
	if _, err := Figure(small(), "nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(Figures()) != 4 {
		t.Fatal("figure list wrong")
	}
}

func TestBestPlansValidate(t *testing.T) {
	for arch, p := range BestPlans(db.DefaultQ06()) {
		if err := p.Validate(); err != nil {
			t.Errorf("best plan for %s invalid: %v", arch, err)
		}
	}
}
