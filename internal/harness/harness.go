// Package harness defines and runs the paper's experiments: one runner
// per panel of Figure 3 (the paper's only results figure) plus the
// Table I configuration dump, producing the same rows/series the paper
// reports — execution time normalised to the x86 baseline, and DRAM
// energy for the best configurations.
package harness

import (
	"fmt"
	"strings"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/query"
)

// Config parameterises a harness run.
type Config struct {
	// Tuples is the lineitem row count (multiple of 64). The paper uses
	// TPC-H SF1 (~6M rows); the default is large enough for steady-state
	// behaviour while keeping runs interactive.
	Tuples int
	// Seed drives the deterministic generator.
	Seed uint64
	// Machine overrides the default Table I machine when non-nil.
	Machine *machine.Config
	// Energy overrides the default energy constants when non-nil.
	Energy *energy.Model
}

// Default returns the standard harness configuration.
func Default() Config {
	return Config{Tuples: 16384, Seed: 42}
}

func (c Config) machineConfig() machine.Config {
	if c.Machine != nil {
		return *c.Machine
	}
	return machine.Default()
}

func (c Config) energyModel() energy.Model {
	if c.Energy != nil {
		return *c.Energy
	}
	return energy.Default()
}

// Result is the outcome of one simulated plan.
type Result struct {
	Plan    query.Plan
	Cycles  uint64
	Energy  energy.Breakdown
	Checked int
	// Squashed reports HIPE predication squashes (0 elsewhere).
	Squashed uint64
	// SquashedDRAMBytes reports DRAM reads avoided by predication.
	SquashedDRAMBytes uint64
}

// Speedup reports baseCycles / this result's cycles.
func (r Result) Speedup(baseCycles uint64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(r.Cycles)
}

// Run executes one plan on a fresh machine and verifies the result.
func (c Config) Run(tab *db.Table, p query.Plan) (Result, error) {
	m, err := machine.New(c.machineConfig())
	if err != nil {
		return Result{}, err
	}
	w, err := query.Prepare(m, tab, p)
	if err != nil {
		return Result{}, err
	}
	cycles := uint64(m.Run(w.Stream()))
	if err := w.Verify(); err != nil {
		return Result{}, err
	}
	mc := c.machineConfig()
	breakdown := c.energyModel().Audit(m.Registry, cycles,
		int(mc.Geometry.Vaults), uint64(mc.DRAM.ClockRatio))
	scope := "hipe"
	if p.Arch == query.HIVE {
		scope = "hive"
	}
	return Result{
		Plan:              p,
		Cycles:            cycles,
		Energy:            breakdown,
		Checked:           w.Checked(),
		Squashed:          m.Registry.Scope(scope).Get("squashed"),
		SquashedDRAMBytes: m.Registry.Scope(scope).Get("squashed_dram_bytes"),
	}, nil
}

// Table renders a result series as an aligned text table with speedups
// against the first row flagged as baseline.
type Table struct {
	Title    string
	Baseline uint64 // cycles of the normalisation baseline
	Rows     []Result
	Notes    []string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-40s %14s %10s %14s\n", "configuration", "cycles", "vs x86", "DRAM energy pJ")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-40s %14d %9.2fx %14.0f\n",
			r.Plan.String(), r.Cycles, r.Speedup(t.Baseline), r.Energy.DRAMPJ())
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

var opSizesCube = []uint32{16, 32, 64, 128, 256}
var opSizesX86 = []uint32{16, 32, 64}

// Fig3a reproduces "Tuple-at-a-time execution varying operation size":
// x86 (16..64 B), HMC and HIVE (16..256 B) on the NSM layout, unroll 1.
func (c Config) Fig3a() (*Table, error) {
	tab := db.Generate(c.Tuples, c.Seed)
	t := &Table{Title: "Figure 3a — tuple-at-a-time (NSM) vs operation size"}
	q := db.DefaultQ06()

	var bestX86 uint64
	for _, s := range opSizesX86 {
		r, err := c.Run(tab, query.Plan{Arch: query.X86, Strategy: query.TupleAtATime, OpSize: s, Unroll: 1, Q: q})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, r)
		if bestX86 == 0 || r.Cycles < bestX86 {
			bestX86 = r.Cycles
		}
	}
	t.Baseline = bestX86
	for _, arch := range []query.Arch{query.HMC, query.HIVE} {
		for _, s := range opSizesCube {
			r, err := c.Run(tab, query.Plan{Arch: arch, Strategy: query.TupleAtATime, OpSize: s, Unroll: 1, Q: q})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, r)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: HMC/HIVE small ops lose badly; HMC-256B beats x86; HIVE-256B near x86")
	return t, nil
}

// Fig3b reproduces "Column-at-a-time execution varying operation size":
// same sweep on the DSM layout, unroll 1 (HIVE with per-column bitmask
// round trips through the processor).
func (c Config) Fig3b() (*Table, error) {
	tab := db.Generate(c.Tuples, c.Seed)
	t := &Table{Title: "Figure 3b — column-at-a-time (DSM) vs operation size"}
	q := db.DefaultQ06()

	var bestX86 uint64
	for _, s := range opSizesX86 {
		r, err := c.Run(tab, query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: s, Unroll: 1, Q: q})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, r)
		if bestX86 == 0 || r.Cycles < bestX86 {
			bestX86 = r.Cycles
		}
	}
	t.Baseline = bestX86
	for _, arch := range []query.Arch{query.HMC, query.HIVE} {
		for _, s := range opSizesCube {
			r, err := c.Run(tab, query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: s, Unroll: 1, Q: q})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, r)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: HMC-256B ≈4.4x over x86; HIVE-256B ≈2x slower (bitmask round trips)")
	return t, nil
}

var unrolls = []int{1, 2, 8, 16, 32}
var unrollsX86 = []int{1, 2, 8}

// Fig3c reproduces "Column-at-a-time execution varying loop unrolling
// depth": 256 B cube ops (64 B for x86), unroll 1..32 (x86 capped at 8).
// Both the per-column HIVE plan and the fused full-scan variant are
// reported; the fused one is HIVE's best case (Figure 3d).
func (c Config) Fig3c() (*Table, error) {
	tab := db.Generate(c.Tuples, c.Seed)
	t := &Table{Title: "Figure 3c — column-at-a-time (DSM) vs unroll depth"}
	q := db.DefaultQ06()

	var bestX86 uint64
	for _, u := range unrollsX86 {
		r, err := c.Run(tab, query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: u, Q: q})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, r)
		if bestX86 == 0 || r.Cycles < bestX86 {
			bestX86 = r.Cycles
		}
	}
	t.Baseline = bestX86
	for _, u := range unrolls {
		r, err := c.Run(tab, query.Plan{Arch: query.HMC, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: u, Q: q})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, r)
	}
	for _, fused := range []bool{false, true} {
		for _, u := range unrolls {
			r, err := c.Run(tab, query.Plan{Arch: query.HIVE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: u, Fused: fused, Q: q})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, r)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: unrolling lifts HIVE past HMC (7.57x vs 5.15x at 32x)")
	return t, nil
}

// BestPlans returns the per-architecture best configurations compared in
// Figure 3d.
func BestPlans(q db.Q06) map[query.Arch]query.Plan {
	return map[query.Arch]query.Plan{
		query.X86:  {Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q},
		query.HMC:  {Arch: query.HMC, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q},
		query.HIVE: {Arch: query.HIVE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Fused: true, Q: q},
		query.HIPE: {Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q},
	}
}

// Fig3d reproduces "Best cases of each architecture compared to HIPE":
// speedup over x86 and DRAM energy of each architecture's best
// configuration.
func (c Config) Fig3d() (*Table, error) {
	tab := db.Generate(c.Tuples, c.Seed)
	t := &Table{Title: "Figure 3d — best case of each architecture"}
	plans := BestPlans(db.DefaultQ06())

	for _, arch := range []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE} {
		r, err := c.Run(tab, plans[arch])
		if err != nil {
			return nil, err
		}
		if arch == query.X86 {
			t.Baseline = r.Cycles
		}
		t.Rows = append(t.Rows, r)
	}
	hive := t.Rows[2]
	hipe := t.Rows[3]
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: HMC 5.15x, HIVE 7.55x, HIPE 6.46x vs x86; HIPE ~15%% behind HIVE"),
		fmt.Sprintf("HIPE DRAM energy vs HIVE: %.1f%% (paper: ~4%% lower; mask traffic + %d squashed loads)",
			100*(1-hipe.Energy.DRAMPJ()/hive.Energy.DRAMPJ()), hipe.Squashed),
	)
	return t, nil
}

// Figure runs one panel by name ("3a".."3d").
func (c Config) Figure(name string) (*Table, error) {
	switch name {
	case "3a":
		return c.Fig3a()
	case "3b":
		return c.Fig3b()
	case "3c":
		return c.Fig3c()
	case "3d":
		return c.Fig3d()
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have 3a..3d)", name)
	}
}

// Figures lists the reproducible panels.
func Figures() []string { return []string{"3a", "3b", "3c", "3d"} }
