// Package harness defines the paper's experiments: one runner per panel
// of Figure 3 (the paper's only results figure) plus the Table I
// configuration dump, producing the same rows/series the paper reports —
// execution time normalised to the x86 baseline, and DRAM energy for the
// best configurations.
//
// Each figure is a declarative grid (or explicit cell list) executed by
// the internal/sweep worker-pool engine; the harness owns only the
// figure definitions and their table rendering. The single-run
// Config/Result machinery lives in internal/sweep and is re-exported
// here for the public API.
package harness

import (
	"fmt"
	"strings"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// Config parameterises a harness run (re-export of the sweep engine's
// run configuration: tuples, seed, machine and energy overrides).
type Config = sweep.Config

// Result is the outcome of one simulated plan (re-export).
type Result = sweep.Result

// Default returns the standard harness configuration.
func Default() Config { return sweep.Default() }

// Table renders a result series as an aligned text table with speedups
// against the first row flagged as baseline.
type Table struct {
	Title    string
	Baseline uint64 // cycles of the normalisation baseline
	Rows     []Result
	Notes    []string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-40s %14s %10s %14s\n", "configuration", "cycles", "vs x86", "DRAM energy pJ")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-40s %14d %9.2fx %14.0f\n",
			r.Plan.String(), r.Cycles, r.Speedup(t.Baseline), r.Energy.DRAMPJ())
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

var opSizesCube = []uint32{16, 32, 64, 128, 256}
var unrolls = []int{1, 2, 8, 16, 32}

// runTable executes cells through the sweep engine and wraps them as a
// figure table normalised to the best x86 row.
func runTable(c Config, title string, cells []sweep.Cell, notes ...string) (*Table, error) {
	rs, err := sweep.RunCells(c, cells, sweep.Options{})
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:    title,
		Baseline: rs.BestCycles(query.X86),
		Rows:     rs.Results(),
		Notes:    notes,
	}, nil
}

// opSizeGrid is the Figure 3a/3b sweep: x86, HMC and HIVE across every
// operation size, one grid — SkipInvalid trims x86 to its AVX-512
// ≤ 64 B envelope, exactly the per-architecture ranges the paper plots.
func opSizeGrid(c Config, strat query.Strategy) sweep.Grid {
	return sweep.Grid{
		Archs:       []query.Arch{query.X86, query.HMC, query.HIVE},
		Strategies:  []query.Strategy{strat},
		OpSizes:     opSizesCube,
		Unrolls:     []int{1},
		Tuples:      []int{c.Tuples},
		Seeds:       []uint64{c.Seed},
		SkipInvalid: true,
	}
}

// Fig3a reproduces "Tuple-at-a-time execution varying operation size":
// x86 (16..64 B), HMC and HIVE (16..256 B) on the NSM layout, unroll 1.
func Fig3a(c Config) (*Table, error) {
	cells, err := FigureCells(c, "3a")
	if err != nil {
		return nil, err
	}
	return runTable(c, "Figure 3a — tuple-at-a-time (NSM) vs operation size", cells,
		"paper shape: HMC/HIVE small ops lose badly; HMC-256B beats x86; HIVE-256B near x86")
}

// Fig3b reproduces "Column-at-a-time execution varying operation size":
// same sweep on the DSM layout, unroll 1 (HIVE with per-column bitmask
// round trips through the processor).
func Fig3b(c Config) (*Table, error) {
	cells, err := FigureCells(c, "3b")
	if err != nil {
		return nil, err
	}
	return runTable(c, "Figure 3b — column-at-a-time (DSM) vs operation size", cells,
		"paper shape: HMC-256B ≈4.4x over x86; HIVE-256B ≈2x slower (bitmask round trips)")
}

// Fig3c reproduces "Column-at-a-time execution varying loop unrolling
// depth": 256 B cube ops (64 B for x86), unroll 1..32 (x86 capped at 8,
// by SkipInvalid). Both the per-column HIVE plan and the fused full-scan
// variant are reported; the fused one is HIVE's best case (Figure 3d).
func Fig3c(c Config) (*Table, error) {
	cells, err := FigureCells(c, "3c")
	if err != nil {
		return nil, err
	}
	return runTable(c, "Figure 3c — column-at-a-time (DSM) vs unroll depth", cells,
		"paper shape: unrolling lifts HIVE past HMC (7.57x vs 5.15x at 32x)")
}

// BestPlans returns the per-architecture best configurations compared in
// Figure 3d.
func BestPlans(q db.Q06) map[query.Arch]query.Plan {
	return map[query.Arch]query.Plan{
		query.X86:  {Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q},
		query.HMC:  {Arch: query.HMC, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q},
		query.HIVE: {Arch: query.HIVE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Fused: true, Q: q},
		query.HIPE: {Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q},
	}
}

// Fig3d reproduces "Best cases of each architecture compared to HIPE":
// speedup over x86 and DRAM energy of each architecture's best
// configuration.
func Fig3d(c Config) (*Table, error) {
	cells, err := FigureCells(c, "3d")
	if err != nil {
		return nil, err
	}
	t, err := runTable(c, "Figure 3d — best case of each architecture", cells)
	if err != nil {
		return nil, err
	}
	hive := t.Rows[2]
	hipe := t.Rows[3]
	t.Notes = append(t.Notes,
		"paper: HMC 5.15x, HIVE 7.55x, HIPE 6.46x vs x86; HIPE ~15% behind HIVE",
		fmt.Sprintf("HIPE DRAM energy vs HIVE: %.1f%% (paper: ~4%% lower; mask traffic + %d squashed loads)",
			100*(1-hipe.Energy.DRAMPJ()/hive.Energy.DRAMPJ()), hipe.Squashed),
	)
	return t, nil
}

// FigureCells expands one panel's cell set without running it — the
// exact workload Figure(name) simulates, for callers that want to drive
// it through the sweep engine with their own Options (e.g. the
// counters-on overhead benches).
func FigureCells(c Config, name string) ([]sweep.Cell, error) {
	switch name {
	case "3a":
		return opSizeGrid(c, query.TupleAtATime).Expand()
	case "3b":
		return opSizeGrid(c, query.ColumnAtATime).Expand()
	case "3c":
		column := []query.Strategy{query.ColumnAtATime}
		workTuples, workSeeds := []int{c.Tuples}, []uint64{c.Seed}
		return sweep.ExpandAll(
			sweep.Grid{Archs: []query.Arch{query.X86}, Strategies: column,
				OpSizes: []uint32{64}, Unrolls: unrolls,
				Tuples: workTuples, Seeds: workSeeds, SkipInvalid: true},
			sweep.Grid{Archs: []query.Arch{query.HMC}, Strategies: column,
				OpSizes: []uint32{256}, Unrolls: unrolls,
				Tuples: workTuples, Seeds: workSeeds},
			sweep.Grid{Archs: []query.Arch{query.HIVE}, Strategies: column,
				Fused: []bool{false, true}, OpSizes: []uint32{256}, Unrolls: unrolls,
				Tuples: workTuples, Seeds: workSeeds},
		)
	case "3d":
		plans := BestPlans(db.DefaultQ06())
		return sweep.PlanCells(c.Tuples, c.Seed,
			plans[query.X86], plans[query.HMC], plans[query.HIVE], plans[query.HIPE]), nil
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have 3a..3d)", name)
	}
}

// Figure runs one panel by name ("3a".."3d").
func Figure(c Config, name string) (*Table, error) {
	switch name {
	case "3a":
		return Fig3a(c)
	case "3b":
		return Fig3b(c)
	case "3c":
		return Fig3c(c)
	case "3d":
		return Fig3d(c)
	default:
		return nil, fmt.Errorf("harness: unknown figure %q (have 3a..3d)", name)
	}
}

// Figures lists the reproducible panels.
func Figures() []string { return []string{"3a", "3b", "3c", "3d"} }
