package stats

import (
	"math"
	"testing"
)

func TestEWMASeedAndDecay(t *testing.T) {
	e := NewEWMA(4)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatalf("fresh EWMA not zero: value %g count %d", e.Value(), e.Count())
	}
	// The first sample seeds exactly — no decay from zero.
	e.Observe(1000)
	if e.Value() != 1000 || e.Count() != 1 {
		t.Fatalf("first sample did not seed: value %g count %d", e.Value(), e.Count())
	}
	// Subsequent samples blend with alpha = 1 - 2^(-1/halfLife).
	alpha := 1 - math.Exp2(-1.0/4)
	e.Observe(2000)
	want := 1000 + alpha*(2000-1000)
	if math.Abs(e.Value()-want) > 1e-9 {
		t.Fatalf("second sample blend = %g, want %g", e.Value(), want)
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d, want 2", e.Count())
	}
}

// TestEWMAHalfLife pins the parameterisation: after exactly HalfLife
// further samples of a new level, the average has closed half the gap.
func TestEWMAHalfLife(t *testing.T) {
	const hl = 8
	e := NewEWMA(hl)
	e.Observe(0)
	for i := 0; i < hl; i++ {
		e.Observe(1)
	}
	// Distance remaining from the new level must be one half.
	if got := 1 - e.Value(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("after %d samples the remaining gap is %g, want 0.5", hl, got)
	}
}

func TestEWMADegenerateHalfLife(t *testing.T) {
	for _, hl := range []float64{0, -3, math.Inf(1), math.NaN()} {
		e := NewEWMA(hl)
		e.Observe(10)
		e.Observe(20)
		v := e.Value()
		if math.IsNaN(v) || v < 10 || v > 20 {
			t.Fatalf("half-life %v produced value %g outside the sample range", hl, v)
		}
	}
}
