package stats

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("cpu0")
	c := s.Counter("commits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if s.Get("commits") != 10 {
		t.Fatalf("scope get = %d, want 10", s.Get("commits"))
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	// Counter identity: same name returns same counter.
	if s.Counter("commits") != c {
		t.Fatal("Counter did not return the existing counter")
	}
}

func TestRegistryLookupAndTotal(t *testing.T) {
	r := NewRegistry()
	for i, v := range []uint64{3, 5, 7} {
		r.Scope("dram.vault" + string(rune('0'+i))).Counter("reads").Add(v)
	}
	if got := r.Total("dram.", "reads"); got != 15 {
		t.Fatalf("Total = %d, want 15", got)
	}
	if v, ok := r.Lookup("dram.vault1.reads"); !ok || v != 5 {
		t.Fatalf("Lookup = %d,%v want 5,true", v, ok)
	}
	if _, ok := r.Lookup("nosuch.reads"); ok {
		t.Fatal("Lookup of missing scope succeeded")
	}
	if _, ok := r.Lookup("nodot"); ok {
		t.Fatal("Lookup without dot succeeded")
	}
	if _, ok := r.Lookup("dram.vault1.nosuch"); ok {
		t.Fatal("Lookup of missing counter succeeded")
	}
}

func TestRegistryStringStable(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("z")
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	r.Scope("a").Counter("x").Add(9)
	r.Scope("empty")
	out := r.String()
	// Scopes in creation order, counters sorted.
	zi := strings.Index(out, "[z]")
	ai := strings.Index(out, "[a]")
	if zi < 0 || ai < 0 || zi > ai {
		t.Fatalf("scope order wrong:\n%s", out)
	}
	if strings.Contains(out, "[empty]") {
		t.Fatalf("empty scope rendered:\n%s", out)
	}
	if strings.Index(out, "a ") > strings.Index(out, "b ") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestScopesOrder(t *testing.T) {
	r := NewRegistry()
	r.Scope("one")
	r.Scope("two")
	r.Scope("one") // re-fetch must not duplicate
	got := r.Scopes()
	if len(got) != 2 || got[0].Name() != "one" || got[1].Name() != "two" {
		t.Fatalf("scopes = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
	wantMean := float64(0+1+2+3+4+100) / 6
	if h.Mean() != wantMean {
		t.Fatalf("mean = %f, want %f", h.Mean(), wantMean)
	}
	if h.Bucket(0) != 1 { // v==0
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // v==1
		t.Fatalf("bucket1 = %d", h.Bucket(1))
	}
	if h.Bucket(2) != 2 { // v in {2,3}
		t.Fatalf("bucket2 = %d", h.Bucket(2))
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Fatal("out-of-range bucket not 0")
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean != 0")
	}
}

// Property: histogram count equals samples, sum of buckets equals count,
// and mean*count equals the true sum.
func TestHistogramProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		var sum uint64
		for _, s := range samples {
			h.Observe(uint64(s))
			sum += uint64(s)
		}
		var bsum uint64
		for i := 0; i < 32; i++ {
			bsum += h.Bucket(i)
		}
		if h.Count() != uint64(len(samples)) || bsum != h.Count() {
			return false
		}
		if len(samples) == 0 {
			return h.Mean() == 0
		}
		return h.Mean() == float64(sum)/float64(len(samples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("cpu0").Counter("commits")
	c.Add(42)
	r.Scope("l1d").Counter("read_hits").Add(7)
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after Reset = %d, want 0", c.Value())
	}
	if got := r.Total("", "read_hits"); got != 0 {
		t.Fatalf("Total after Reset = %d, want 0", got)
	}
	// Scopes and counter identity survive a reset.
	if len(r.Scopes()) != 2 {
		t.Fatalf("scopes after Reset = %d, want 2", len(r.Scopes()))
	}
	if r.Scope("cpu0").Counter("commits") != c {
		t.Fatal("Reset broke counter identity")
	}
}

func TestScopeCounters(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("cache")
	s.Counter("misses")
	s.Counter("hits")
	s.Counter("misses") // re-fetch must not duplicate
	got := s.Counters()
	if len(got) != 2 || got[0] != "misses" || got[1] != "hits" {
		t.Fatalf("Counters() = %v, want [misses hits]", got)
	}
	// The returned slice is a copy: mutating it must not corrupt the scope.
	got[0] = "clobbered"
	if s.Counters()[0] != "misses" {
		t.Fatal("Counters() exposed internal order slice")
	}
}

// TestConcurrentScopes exercises the registry's locked paths from many
// goroutines — scope creation racing registry-wide reads — and relies on
// the -race runs in CI to flag unsynchronised access. Counter bumps stay
// single-threaded per scope, matching how machines use the registry.
func TestConcurrentScopes(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "worker" + strconv.Itoa(g)
			for i := 0; i < 200; i++ {
				r.Scope(name).Counter("ops").Inc()
				switch i % 4 {
				case 0:
					r.Scopes()
				case 1:
					r.Total("worker", "ops")
				case 2:
					r.Lookup(name + ".ops")
				case 3:
					_ = r.String()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Total("worker", "ops"); got != 8*200 {
		t.Fatalf("Total after concurrent bumps = %d, want %d", got, 8*200)
	}
}
