package stats

import "testing"

func TestAttainmentExactCounts(t *testing.T) {
	a := Attainment{Bound: 100}
	for _, v := range []uint64{0, 50, 100, 101, 1000} {
		a.Observe(v)
	}
	if a.Total != 5 || a.Met != 3 {
		t.Fatalf("total %d met %d, want 5/3", a.Total, a.Met)
	}
	if got, want := a.Fraction(), 3.0/5.0; got != want {
		t.Fatalf("fraction %g, want %g", got, want)
	}
}

func TestAttainmentBoundaryIsInclusive(t *testing.T) {
	a := Attainment{Bound: 7}
	a.Observe(7)
	a.Observe(8)
	if a.Met != 1 {
		t.Fatalf("bound must be inclusive: met %d", a.Met)
	}
}

func TestAttainmentEmptyAndZeroBound(t *testing.T) {
	var a Attainment
	if a.Fraction() != 0 {
		t.Fatal("empty counter must report 0")
	}
	// Bound 0: only exact zeros attain.
	a.Observe(0)
	a.Observe(1)
	if a.Met != 1 || a.Total != 2 {
		t.Fatalf("zero bound counts wrong: %+v", a)
	}
}

func TestAttainmentMerge(t *testing.T) {
	a := Attainment{Bound: 10}
	b := Attainment{Bound: 10}
	a.Observe(5)
	b.Observe(50)
	b.Observe(10)
	a.Merge(&b)
	if a.Total != 3 || a.Met != 2 {
		t.Fatalf("merged %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bound merge must panic")
		}
	}()
	c := Attainment{Bound: 11}
	a.Merge(&c)
}

func TestAttainmentMissCountsAgainst(t *testing.T) {
	a := Attainment{Bound: 100}
	a.Observe(1) // would attain
	a.Miss()     // degraded answer: a miss at any latency
	if a.Total != 2 || a.Met != 1 {
		t.Fatalf("after one observe and one miss: %+v", a)
	}
	if got, want := a.Fraction(), 0.5; got != want {
		t.Fatalf("fraction %g, want %g", got, want)
	}
	// Merge carries misses through: missed samples stay missed.
	b := Attainment{Bound: 100}
	b.Miss()
	a.Merge(&b)
	if a.Total != 3 || a.Met != 1 {
		t.Fatalf("merged %+v", a)
	}
}
