package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogBucketEdges(t *testing.T) {
	// Every bucket's high edge must map back into that bucket, and the
	// next value must map into the next bucket.
	for i := 0; i < logHistBuckets-1; i++ {
		hi := logBucketHigh(i)
		if got := logBucket(hi); got != i {
			t.Fatalf("bucket %d: high edge %d maps to bucket %d", i, hi, got)
		}
		if got := logBucket(hi + 1); got != i+1 {
			t.Fatalf("bucket %d: %d maps to bucket %d, want %d", i, hi+1, got, i+1)
		}
	}
	if got := logBucket(^uint64(0)); got != logHistBuckets-1 {
		t.Fatalf("max uint64 maps to bucket %d, want %d", got, logHistBuckets-1)
	}
}

func TestLogHistExactCounts(t *testing.T) {
	var h LogHist
	var wantSum uint64
	const n = 10000
	for i := uint64(1); i <= n; i++ {
		h.Observe(i)
		wantSum += i
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum %d, want %d", h.Sum(), wantSum)
	}
	if h.Min() != 1 || h.Max() != n {
		t.Fatalf("min/max %d/%d, want 1/%d", h.Min(), h.Max(), n)
	}
	if h.Mean() != float64(wantSum)/n {
		t.Fatalf("mean %f", h.Mean())
	}
	// Bucket counts must sum exactly to the observation count.
	var total uint64
	for _, c := range h.buckets {
		total += c
	}
	if total != n {
		t.Fatalf("bucket total %d, want %d", total, n)
	}
}

func TestLogHistSmallValuesExact(t *testing.T) {
	// Values below 16 occupy exact buckets: quantiles are exact.
	var h LogHist
	for _, v := range []uint64{3, 3, 5, 7, 9, 11, 13, 15} {
		h.Observe(v)
	}
	cases := []struct {
		p    float64
		want uint64
	}{{0, 3}, {0.25, 3}, {0.5, 7}, {0.75, 11}, {1, 15}}
	for _, c := range cases {
		if got := h.Quantile(c.p); got != c.want {
			t.Fatalf("Quantile(%g) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestLogHistQuantileErrorBound(t *testing.T) {
	// Against a sorted sample set, every quantile must land within one
	// sub-bucket (12.5%) above the true order statistic.
	r := rand.New(rand.NewSource(7))
	var h LogHist
	samples := make([]uint64, 5000)
	for i := range samples {
		samples[i] = uint64(r.Int63n(1 << 40))
		h.Observe(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(p * float64(len(samples)))
		if float64(rank) < p*float64(len(samples)) {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		truth := samples[rank-1]
		got := h.Quantile(p)
		if got < truth {
			t.Fatalf("Quantile(%g) = %d below true order statistic %d", p, got, truth)
		}
		if float64(got) > float64(truth)*1.125+1 {
			t.Fatalf("Quantile(%g) = %d exceeds error bound over %d", p, got, truth)
		}
	}
}

func TestLogHistMergeEqualsCombinedStream(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var a, b, all LogHist
	for i := 0; i < 3000; i++ {
		v := uint64(r.Int63n(1 << 30))
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a != all {
		t.Fatal("merged histogram differs from single-stream histogram")
	}
	// Merging into an empty histogram copies exactly.
	var empty LogHist
	empty.Merge(&all)
	if empty != all {
		t.Fatal("merge into empty histogram differs")
	}
	// Merging an empty histogram is a no-op.
	before := all
	var zero LogHist
	all.Merge(&zero)
	if all != before {
		t.Fatal("merging empty histogram changed state")
	}
}

func TestLogHistQuantileEndpointsExact(t *testing.T) {
	// Neither sample sits on a bucket edge: the extreme quantiles must
	// still return the exact observed extremes, not bucket edges.
	var h LogHist
	h.Observe(100)
	h.Observe(1000)
	if got := h.Quantile(0); got != 100 {
		t.Fatalf("Quantile(0) = %d, want exact min 100", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %d, want exact max 1000", got)
	}
	// The median resolves to min's bucket; its upper edge is 103.
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("Quantile(0.5) = %d, want 100 (rank-1 exact)", got)
	}
	h.Observe(500)
	if got := h.Quantile(0.5); got < 500 || got > 511 {
		t.Fatalf("Quantile(0.5) = %d outside 500's bucket", got)
	}
}

func TestLogHistEmpty(t *testing.T) {
	var h LogHist
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

// TestLogHistObserveZeroAlloc pins Observe as allocation-free: it sits
// on the serving layer's per-request hot path and inside the DRAM
// vaults' latency accounting, where one alloc per sample would dominate
// the simulator's memory traffic.
func TestLogHistObserveZeroAlloc(t *testing.T) {
	var h LogHist
	v := uint64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v = v*2862933555777941757 + 3037000493 // cheap LCG, varied buckets
	})
	if allocs != 0 {
		t.Fatalf("LogHist.Observe allocated %.1f times per call, want 0", allocs)
	}
}
