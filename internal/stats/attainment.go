// Attainment is the SLO accounting primitive of the serving layer: an
// exact, per-sample counter of how many observations meet a fixed
// latency bound. LogHist answers "what is P99"; Attainment answers
// "what fraction met the target" — and unlike the bucket-resolved
// quantiles it is exact for any bound, which is what lets SLO columns
// sit next to P50/P95/P99 in a byte-stable report.
package stats

// Attainment counts samples against a fixed upper bound. The zero
// value (bound 0) is ready to use; like LogHist it is not safe for
// concurrent use — shard it and Merge.
type Attainment struct {
	// Bound is the inclusive target: a sample v attains when v <= Bound.
	Bound uint64
	// Total and Met are the exact sample and attaining-sample counts.
	Total uint64
	Met   uint64
}

// Observe records one sample.
func (a *Attainment) Observe(v uint64) {
	a.Total++
	if v <= a.Bound {
		a.Met++
	}
}

// Miss records one sample as missed regardless of its latency — the
// serving layer's accounting for degraded (partial) answers, which
// break the objective however quickly they were returned.
func (a *Attainment) Miss() {
	a.Total++
}

// Fraction reports the attained fraction Met/Total (0 if empty).
func (a *Attainment) Fraction() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Met) / float64(a.Total)
}

// Merge folds other into a. Both counters must share a bound; merging
// mismatched bounds would silently change what "met" means, so Merge
// panics on disagreement (a programming error, not a data condition).
func (a *Attainment) Merge(other *Attainment) {
	if a.Bound != other.Bound {
		panic("stats: merging Attainment counters with different bounds")
	}
	a.Total += other.Total
	a.Met += other.Met
}
