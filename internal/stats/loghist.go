// LogHist is the streaming latency histogram of the serving layer: a
// fixed-size log-linear bucket array (HDR-histogram style) over uint64
// samples. Memory is constant, Observe is O(1), and quantiles are read
// back with a bounded relative error of 1/8 (one sub-bucket within an
// octave), which keeps P50/P95/P99 reports byte-stable no matter how
// many samples stream through or in what order they arrive.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Log-linear geometry: every power-of-two octave is split into 2^3 = 8
// linear sub-buckets, and values below 2^3 get one exact bucket each.
const (
	logSubBits = 3
	logSub     = 1 << logSubBits
	// logHistBuckets covers the full uint64 range: logSub exact small
	// buckets plus 8 sub-buckets for each octave 2^3 .. 2^63.
	logHistBuckets = logSub + (64-logSubBits)*logSub
)

// LogHist is a streaming log-bucket histogram of uint64 samples.
// The zero value is ready to use. Count, Sum, Min and Max are exact;
// Quantile is bucket-resolved (relative error at most 1/8, exact for
// samples below 16). It is not safe for concurrent use; shard it and
// Merge, like the serving layer does.
type LogHist struct {
	buckets [logHistBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// logBucket maps a sample to its bucket index.
func logBucket(v uint64) int {
	if v < logSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v < 2^(e+1), e >= logSubBits
	sub := (v >> (uint(e) - logSubBits)) & (logSub - 1)
	return logSub + (e-logSubBits)*logSub + int(sub)
}

// logBucketHigh returns the largest sample value bucket i holds.
func logBucketHigh(i int) uint64 {
	if i < 2*logSub {
		// Buckets 0..15 are exact: octave e=3 has sub-width 1.
		return uint64(i)
	}
	e := logSubBits + uint((i-logSub)/logSub)
	sub := uint64((i - logSub) % logSub)
	width := uint64(1) << (e - logSubBits)
	return (uint64(1) << e) + (sub+1)*width - 1
}

// Observe records one sample.
func (h *LogHist) Observe(v uint64) {
	h.buckets[logBucket(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples (exact).
func (h *LogHist) Count() uint64 { return h.count }

// Sum reports the total of all samples (exact).
func (h *LogHist) Sum() uint64 { return h.sum }

// Min reports the smallest sample (exact; 0 if empty).
func (h *LogHist) Min() uint64 { return h.min }

// Max reports the largest sample (exact; 0 if empty).
func (h *LogHist) Max() uint64 { return h.max }

// Mean reports the average sample (0 if empty).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile p in [0, 1]: the upper edge of
// the bucket holding the sample of rank ceil(p·count), clamped into
// [Min, Max]. The extreme ranks are the exact observed extremes, so
// Quantile(0) == Min and Quantile(1) == Max. Returns 0 when the
// histogram is empty.
func (h *LogHist) Quantile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(p * float64(h.count))
	if float64(rank) < p*float64(h.count) { // ceil
		rank++
	}
	if rank <= 1 {
		return h.min // rank 1 is the smallest sample itself
	}
	if rank >= h.count {
		return h.max // rank count is the largest sample itself
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			v := logBucketHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max // unreachable: counts always sum to h.count
}

// Merge folds other into h. Bucket geometry is fixed, so merging is
// exact: the result is identical to observing both sample streams into
// one histogram, in any order.
func (h *LogHist) Merge(other *LogHist) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// String renders the non-empty buckets — stable output for debugging
// and golden tests.
func (h *LogHist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loghist count=%d sum=%d min=%d max=%d\n", h.count, h.sum, h.min, h.max)
	for i, c := range h.buckets {
		if c != 0 {
			fmt.Fprintf(&b, "  <=%-20d %d\n", logBucketHigh(i), c)
		}
	}
	return b.String()
}
