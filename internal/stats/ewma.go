package stats

import "math"

// EWMA is an exponentially weighted moving average parameterised by a
// half-life in samples: after HalfLife observations the weight of the
// oldest sample has decayed to one half. The zero value is unusable —
// construct with NewEWMA so the decay factor is derived once.
//
// It is a value type on purpose: callers embed it in map cells and
// update it with load-modify-store, which keeps the observation path
// free of allocations and pointer chasing.
type EWMA struct {
	alpha float64
	value float64
	count uint64
}

// NewEWMA returns an EWMA whose per-sample blend weight is derived from
// the given half-life in samples (must be positive and finite).
func NewEWMA(halfLife float64) EWMA {
	if !(halfLife > 0) || math.IsInf(halfLife, 1) {
		halfLife = 1
	}
	return EWMA{alpha: 1 - math.Exp2(-1/halfLife)}
}

// Observe folds one sample into the average. The first sample seeds the
// average exactly, so a freshly warmed cell reports the observation it
// saw rather than a decay from zero.
func (e *EWMA) Observe(x float64) {
	if e.count == 0 {
		e.value = x
	} else {
		e.value += e.alpha * (x - e.value)
	}
	e.count++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Count returns the number of samples folded in.
func (e *EWMA) Count() uint64 { return e.count }
