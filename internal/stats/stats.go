// Package stats collects simulation statistics: named counters and
// histograms grouped per component, with deterministic report formatting.
//
// Every timing model in the reproduction registers a Scope and bumps
// counters through it; the experiment harness then snapshots the registry
// to build the figure tables.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds all scopes for one simulated system instance.
//
// Scope creation and the registry-wide read paths (Lookup, Total,
// Scopes, String, Reset) are safe for concurrent callers: observability
// consumers snapshot registries while executor pools build machines.
// Counter bumps through an obtained *Scope/*Counter stay unsynchronised
// — each simulated machine is single-threaded, and keeping the hot path
// lock-free is what keeps it free.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]*Scope)}
}

// Scope returns the scope with the given component name, creating it on
// first use. Names are hierarchical by convention ("cpu0.l1d").
func (r *Registry) Scope(name string) *Scope {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.scopes[name]; ok {
		return s
	}
	s := &Scope{name: name, counters: make(map[string]*Counter)}
	r.scopes[name] = s
	r.order = append(r.order, name)
	return s
}

// Reset zeroes every counter in every scope, preserving the registered
// scope/counter structure (a reset registry reports the same counter
// names as a fresh machine, all at zero).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.scopes {
		for _, c := range s.counters {
			c.v = 0
		}
	}
}

// Scopes returns all scopes in creation order.
func (r *Registry) Scopes() []*Scope {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Scope, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.scopes[n])
	}
	return out
}

// Lookup returns the named counter value across the whole registry using
// "scope.counter" syntax; it reports false if absent.
func (r *Registry) Lookup(path string) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := strings.LastIndex(path, ".")
	if i < 0 {
		return 0, false
	}
	s, ok := r.scopes[path[:i]]
	if !ok {
		return 0, false
	}
	c, ok := s.counters[path[i+1:]]
	if !ok {
		return 0, false
	}
	return c.v, true
}

// Total sums counters with the given name across all scopes whose name has
// the given prefix. Used e.g. to sum dram.reads over all 32 vaults.
func (r *Registry) Total(scopePrefix, counter string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	for _, n := range r.order {
		if strings.HasPrefix(n, scopePrefix) {
			if c, ok := r.scopes[n].counters[counter]; ok {
				sum += c.v
			}
		}
	}
	return sum
}

// String renders every scope and counter, sorted within scope, in creation
// order of scopes. Stable output for golden tests.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, n := range r.order {
		s := r.scopes[n]
		if len(s.counters) == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%s]\n", s.name)
		names := make([]string, 0, len(s.counters))
		for cn := range s.counters {
			names = append(names, cn)
		}
		sort.Strings(names)
		for _, cn := range names {
			fmt.Fprintf(&b, "  %-28s %d\n", cn, s.counters[cn].v)
		}
	}
	return b.String()
}

// Scope is a named group of counters belonging to one component.
type Scope struct {
	name     string
	counters map[string]*Counter
	order    []string
}

// Name returns the scope's component name.
func (s *Scope) Name() string { return s.name }

// Counter returns (creating on first use) the named counter.
func (s *Scope) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Counters returns the scope's counter names in creation order.
func (s *Scope) Counters() []string { return append([]string(nil), s.order...) }

// Get returns the current value of a counter (0 if never created).
func (s *Scope) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.v
	}
	return 0
}

// Counter is a monotonically increasing event count.
type Counter struct{ v uint64 }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram is a fixed-bucket latency histogram (power-of-two buckets).
type Histogram struct {
	buckets [32]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	b := 0
	for x := v; x > 0 && b < len(h.buckets)-1; x >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the average sample (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Bucket reports the count of samples in power-of-two bucket i
// (bucket 0 holds v==0, bucket i holds 2^(i-1) <= v < 2^i).
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Reset returns the histogram to empty.
func (h *Histogram) Reset() { *h = Histogram{} }
