// Package dram models the DRAM layers of the Hybrid Memory Cube: 32
// vaults, each with its own controller, 8 banks, a 256 B row buffer and a
// closed-page policy, using the Table I timings of the paper
// (CAS-RP-RCD-RAS-CWD = 9-9-9-24-7 DRAM cycles at 166 MHz under a 2 GHz
// core clock).
//
// The model is a resource-reservation timing model: each request, on
// arrival at its vault, reserves its bank (activation + restore +
// precharge) and the vault's TSV data bus (burst), respecting FIFO
// arrival order. This reproduces bank-level parallelism, closed-page
// activation cost, and data-bus serialisation without simulating every
// DRAM command edge, which is sufficient because the paper's results
// depend on row-buffer utilisation and vault parallelism, not on command
// bus scheduling minutiae.
package dram

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Policy selects the row-buffer management policy.
type Policy uint8

const (
	// ClosedPage precharges after every access (the paper's setting).
	ClosedPage Policy = iota
	// OpenPage leaves the row open and skips activation on row hits
	// (implemented for the ablation study).
	OpenPage
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == OpenPage {
		return "open-page"
	}
	return "closed-page"
}

// Timing holds DRAM timing parameters. DRAM-cycle fields are converted to
// CPU cycles through ClockRatio.
type Timing struct {
	CAS uint32 // column access strobe latency, DRAM cycles
	RP  uint32 // row precharge, DRAM cycles
	RCD uint32 // RAS-to-CAS (activation), DRAM cycles
	RAS uint32 // row active minimum, DRAM cycles
	CWD uint32 // column write delay, DRAM cycles

	// ClockRatio is CPU cycles per DRAM cycle (2 GHz / 166 MHz ≈ 12).
	ClockRatio uint32
	// BurstBytes is bytes moved per data-bus beat (8 B).
	BurstBytes uint32
	// BeatCycles is CPU cycles per data-bus beat (2, the paper's 2:1
	// core-to-bus frequency ratio).
	BeatCycles uint32

	Policy Policy

	// RefreshInterval, if non-zero, blocks a vault's banks for
	// RefreshCycles every RefreshInterval CPU cycles (lazy model).
	RefreshInterval uint64
	RefreshCycles   uint32
}

// HMC21Timing returns the paper's Table I timing at a 2 GHz core.
func HMC21Timing() Timing {
	return Timing{
		CAS: 9, RP: 9, RCD: 9, RAS: 24, CWD: 7,
		ClockRatio: 12,
		BurstBytes: 8,
		BeatCycles: 2,
		Policy:     ClosedPage,
		// 64 ms / 8192 refresh commands ≈ 7.8 µs tREFI → 15600 CPU
		// cycles; tRFC ≈ 160 ns → 320 CPU cycles.
		RefreshInterval: 15600,
		RefreshCycles:   320,
	}
}

// Validate rejects degenerate timing configurations.
func (t Timing) Validate() error {
	if t.ClockRatio == 0 || t.BurstBytes == 0 || t.BeatCycles == 0 {
		return fmt.Errorf("dram: zero ratio/burst/beat in %+v", t)
	}
	if t.RefreshInterval != 0 && uint64(t.RefreshCycles) >= t.RefreshInterval {
		return fmt.Errorf("dram: refresh busy %d >= interval %d", t.RefreshCycles, t.RefreshInterval)
	}
	return nil
}

func (t Timing) cpu(dramCycles uint32) sim.Cycle {
	return sim.Cycle(dramCycles * t.ClockRatio)
}

// burst returns the CPU cycles needed to move size bytes over the vault
// data bus (rounded up to whole beats; zero-size moves one beat, which
// covers command-only artifacts defensively).
func (t Timing) burst(size uint32) sim.Cycle {
	beats := (size + t.BurstBytes - 1) / t.BurstBytes
	if beats == 0 {
		beats = 1
	}
	return sim.Cycle(beats * t.BeatCycles)
}

// AccessLatency reports the unloaded latency of one closed-page access of
// the given size (activation + column access + data burst). Useful for
// calibration tests and documentation.
func (t Timing) AccessLatency(size uint32, kind mem.Kind) sim.Cycle {
	col := t.CAS
	if kind == mem.Write {
		col = t.CWD
	}
	return t.cpu(t.RCD) + t.cpu(col) + t.burst(size)
}

type bank struct {
	// freeAt is when the bank can accept its next activation.
	freeAt sim.Cycle
	// openRow is the currently open row (OpenPage only); ^0 when closed.
	openRow uint64
}

// Vault is one HMC vault: 8 banks behind a shared TSV data bus.
type Vault struct {
	id     uint32
	geom   mem.Geometry
	timing Timing
	engine *sim.Engine

	banks     []bank
	busFreeAt sim.Cycle
	// arrivalFree serialises controller occupancy: one request decoded
	// per controller slot to preserve FIFO arbitration.
	arrivalFree sim.Cycle

	nextRefresh uint64

	acts         *stats.Counter
	reads        *stats.Counter
	writes       *stats.Counter
	rowHits      *stats.Counter
	bytesRead    *stats.Counter
	bytesWritten *stats.Counter
	refreshes    *stats.Counter
	latency      stats.Histogram
}

// HMC is the full DRAM assembly: all vaults of one cube.
type HMC struct {
	Geom   mem.Geometry
	Timing Timing
	vaults []*Vault
	engine *sim.Engine
}

// New builds an HMC DRAM model. The registry receives one scope per vault
// named "dram.vaultNN".
func New(engine *sim.Engine, geom mem.Geometry, timing Timing, reg *stats.Registry) (*HMC, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	h := &HMC{Geom: geom, Timing: timing, engine: engine}
	for v := uint32(0); v < geom.Vaults; v++ {
		sc := reg.Scope(fmt.Sprintf("dram.vault%02d", v))
		vault := &Vault{
			id:           v,
			geom:         geom,
			timing:       timing,
			engine:       engine,
			banks:        make([]bank, geom.Banks),
			nextRefresh:  timing.RefreshInterval,
			acts:         sc.Counter("activations"),
			reads:        sc.Counter("reads"),
			writes:       sc.Counter("writes"),
			rowHits:      sc.Counter("row_hits"),
			bytesRead:    sc.Counter("bytes_read"),
			bytesWritten: sc.Counter("bytes_written"),
			refreshes:    sc.Counter("refreshes"),
		}
		for b := range vault.banks {
			vault.banks[b].openRow = ^uint64(0)
		}
		h.vaults = append(h.vaults, vault)
	}
	return h, nil
}

// Reset returns every vault to its post-New state: banks closed and
// free, buses idle, refresh schedule restarted. Counters are zeroed by
// the registry reset the machine performs alongside.
func (h *HMC) Reset() {
	for _, v := range h.vaults {
		for b := range v.banks {
			v.banks[b] = bank{openRow: ^uint64(0)}
		}
		v.busFreeAt = 0
		v.arrivalFree = 0
		v.nextRefresh = v.timing.RefreshInterval
		v.latency.Reset()
	}
}

// Vault returns vault i.
func (h *HMC) Vault(i uint32) *Vault { return h.vaults[i] }

// NumVaults reports the vault count.
func (h *HMC) NumVaults() uint32 { return uint32(len(h.vaults)) }

// Access routes a row-contained request to its vault. It panics if the
// request crosses a row boundary: callers must pre-split with
// Geometry.Split. Access always accepts; queueing delay is modelled by
// resource reservation inside the vault.
func (h *HMC) Access(req *mem.Request) bool {
	if req.Size == 0 {
		panic("dram: zero-size request")
	}
	last := req.Addr + mem.Addr(req.Size-1)
	if h.Geom.RowBase(req.Addr) != h.Geom.RowBase(last) {
		panic(fmt.Sprintf("dram: request %x+%d crosses a row boundary", req.Addr, req.Size))
	}
	loc := h.Geom.Decompose(req.Addr)
	h.vaults[loc.Vault].access(req, loc)
	return true
}

var _ mem.Port = (*HMC)(nil)

// access reserves the bank and bus for one request and schedules Done.
func (v *Vault) access(req *mem.Request, loc mem.Location) {
	now := v.engine.Now()
	t := &v.timing

	// Controller slot: one request decode per CPU cycle keeps FIFO order.
	start := now
	if v.arrivalFree > start {
		start = v.arrivalFree
	}
	v.arrivalFree = start + 1

	// Lazy refresh: consume every refresh due before this access; only a
	// refresh whose busy window overlaps the access pushes it out (start
	// must never move backward).
	if t.RefreshInterval != 0 {
		for uint64(start) >= v.nextRefresh {
			refEnd := v.nextRefresh + uint64(t.RefreshCycles)
			if uint64(start) < refEnd {
				start = sim.Cycle(refEnd)
			}
			v.nextRefresh += t.RefreshInterval
			v.refreshes.Inc()
		}
	}

	b := &v.banks[loc.Bank]
	if b.freeAt > start {
		start = b.freeAt
	}

	// Activation unless the row is already open under OpenPage.
	var colReady sim.Cycle
	rowHit := t.Policy == OpenPage && b.openRow == loc.Row
	if rowHit {
		v.rowHits.Inc()
		colReady = start
	} else {
		v.acts.Inc()
		colReady = start + t.cpu(t.RCD)
	}

	colLat := t.CAS
	if req.Kind == mem.Write {
		colLat = t.CWD
	}
	dataReady := colReady + t.cpu(colLat)

	// TSV data bus: serialise bursts within the vault.
	burstStart := dataReady
	if v.busFreeAt > burstStart {
		burstStart = v.busFreeAt
	}
	done := burstStart + t.burst(req.Size)
	v.busFreeAt = done

	// Bank recovery: respect tRAS from activation, then precharge under
	// closed page. Under open page the bank stays open and is free once
	// the burst drains.
	switch t.Policy {
	case ClosedPage:
		rasDone := start + t.cpu(t.RAS)
		if !rowHit && rasDone > done {
			b.freeAt = rasDone + t.cpu(t.RP)
		} else {
			b.freeAt = done + t.cpu(t.RP)
		}
		b.openRow = ^uint64(0)
	case OpenPage:
		b.freeAt = done
		b.openRow = loc.Row
	}

	if req.Kind == mem.Read {
		v.reads.Inc()
		v.bytesRead.Add(uint64(req.Size))
	} else {
		v.writes.Inc()
		v.bytesWritten.Add(uint64(req.Size))
	}
	v.latency.Observe(uint64(done - now))

	if req.Done != nil {
		// ScheduleCall stores the callback without a wrapper closure:
		// this is the hottest event in the simulator (one per DRAM
		// access) and must not allocate.
		v.engine.ScheduleCall(done, req.Done)
	}
}

// LatencyStats exposes the vault's observed request latency histogram.
func (v *Vault) LatencyStats() *stats.Histogram { return &v.latency }

// ID reports the vault index.
func (v *Vault) ID() uint32 { return v.id }
