package dram

import (
	"testing"
	"testing/quick"

	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

func newHMC(t *testing.T, timing Timing) (*sim.Engine, *HMC, *stats.Registry) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	h, err := New(e, mem.HMC21(), timing, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, h, reg
}

func noRefresh() Timing {
	ti := HMC21Timing()
	ti.RefreshInterval = 0
	return ti
}

func TestTimingValidate(t *testing.T) {
	if err := HMC21Timing().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := HMC21Timing()
	bad.ClockRatio = 0
	if bad.Validate() == nil {
		t.Fatal("zero clock ratio accepted")
	}
	bad = HMC21Timing()
	bad.RefreshCycles = 20000
	if bad.Validate() == nil {
		t.Fatal("refresh busy >= interval accepted")
	}
}

func TestAccessLatencyFormula(t *testing.T) {
	ti := HMC21Timing()
	// Read 256 B: tRCD(9*12) + CAS(9*12) + 32 beats * 2 = 108+108+64 = 280.
	if got := ti.AccessLatency(256, mem.Read); got != 280 {
		t.Fatalf("256B read latency = %d, want 280", got)
	}
	// Read 16 B: 108+108+2*2 = 220.
	if got := ti.AccessLatency(16, mem.Read); got != 220 {
		t.Fatalf("16B read latency = %d, want 220", got)
	}
	// Write 64 B: tRCD + CWD(7*12=84) + 8*2 = 108+84+16 = 208.
	if got := ti.AccessLatency(64, mem.Write); got != 208 {
		t.Fatalf("64B write latency = %d, want 208", got)
	}
}

func TestSingleReadCompletesAtUnloadedLatency(t *testing.T) {
	e, h, _ := newHMC(t, noRefresh())
	var doneAt sim.Cycle
	h.Access(&mem.Request{Addr: 0, Size: 256, Kind: mem.Read,
		Done: func(now sim.Cycle) { doneAt = now }})
	e.Run()
	if doneAt != 280 {
		t.Fatalf("read completed at %d, want 280", doneAt)
	}
}

func TestRowBoundaryCrossingPanics(t *testing.T) {
	_, h, _ := newHMC(t, noRefresh())
	defer func() {
		if recover() == nil {
			t.Fatal("row-crossing request did not panic")
		}
	}()
	h.Access(&mem.Request{Addr: 200, Size: 100, Kind: mem.Read})
}

func TestZeroSizePanics(t *testing.T) {
	_, h, _ := newHMC(t, noRefresh())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size request did not panic")
		}
	}()
	h.Access(&mem.Request{Addr: 0, Size: 0, Kind: mem.Read})
}

// Two reads to the same bank must serialise on the bank cycle time; two
// reads to different banks of the same vault overlap except on the bus.
func TestBankLevelParallelism(t *testing.T) {
	e, h, _ := newHMC(t, noRefresh())
	g := mem.HMC21()
	sameBank2 := g.Compose(mem.Location{Vault: 0, Bank: 0, Row: 1})
	otherBank := g.Compose(mem.Location{Vault: 0, Bank: 1, Row: 0})

	var t1, t2, t3 sim.Cycle
	h.Access(&mem.Request{Addr: 0, Size: 256, Kind: mem.Read, Done: func(c sim.Cycle) { t1 = c }})
	h.Access(&mem.Request{Addr: sameBank2, Size: 256, Kind: mem.Read, Done: func(c sim.Cycle) { t2 = c }})
	e.Run()

	e2, h2, _ := newHMC(t, noRefresh())
	h2.Access(&mem.Request{Addr: 0, Size: 256, Kind: mem.Read, Done: func(c sim.Cycle) { t1 = c }})
	h2.Access(&mem.Request{Addr: otherBank, Size: 256, Kind: mem.Read, Done: func(c sim.Cycle) { t3 = c }})
	e2.Run()

	if t2 <= t1 {
		t.Fatalf("same-bank second read at %d not after first %d", t2, t1)
	}
	if t3 >= t2 {
		t.Fatalf("different-bank read (%d) should finish before same-bank read (%d)", t3, t2)
	}
	// Different banks: second burst queues behind the first on the bus:
	// finish ≈ first burst end + 64.
	if t3 != t1+64 {
		t.Fatalf("bank-parallel read finished at %d, want %d", t3, t1+64)
	}
}

// Reads to different vaults must be fully independent.
func TestVaultParallelism(t *testing.T) {
	e, h, _ := newHMC(t, noRefresh())
	var done []sim.Cycle
	for v := 0; v < 32; v++ {
		h.Access(&mem.Request{Addr: mem.Addr(v * 256), Size: 256, Kind: mem.Read,
			Done: func(c sim.Cycle) { done = append(done, c) }})
	}
	e.Run()
	if len(done) != 32 {
		t.Fatalf("completed %d of 32", len(done))
	}
	for i, c := range done {
		// Each vault sees one request; only the 1-cycle controller slots
		// distinguish arrival order... but arrival slots are per vault, so
		// all complete at exactly the unloaded latency.
		if c != 280 {
			t.Fatalf("vault %d completed at %d, want 280", i, c)
		}
	}
}

func TestClosedPageNeverRowHits(t *testing.T) {
	e, h, reg := newHMC(t, noRefresh())
	for i := 0; i < 4; i++ {
		h.Access(&mem.Request{Addr: 0, Size: 64, Kind: mem.Read})
	}
	e.Run()
	if hits := reg.Total("dram.", "row_hits"); hits != 0 {
		t.Fatalf("closed page produced %d row hits", hits)
	}
	if acts := reg.Total("dram.", "activations"); acts != 4 {
		t.Fatalf("closed page activations = %d, want 4", acts)
	}
}

func TestOpenPageRowHits(t *testing.T) {
	ti := noRefresh()
	ti.Policy = OpenPage
	e, h, reg := newHMC(t, ti)
	var last sim.Cycle
	for i := 0; i < 4; i++ {
		h.Access(&mem.Request{Addr: mem.Addr(i * 64), Size: 64, Kind: mem.Read,
			Done: func(c sim.Cycle) { last = c }})
	}
	e.Run()
	if hits := reg.Total("dram.", "row_hits"); hits != 3 {
		t.Fatalf("open page row hits = %d, want 3", hits)
	}
	if acts := reg.Total("dram.", "activations"); acts != 1 {
		t.Fatalf("open page activations = %d, want 1", acts)
	}
	// Open-page stream must be faster than closed-page stream.
	e2, h2, _ := newHMC(t, noRefresh())
	var lastClosed sim.Cycle
	for i := 0; i < 4; i++ {
		h2.Access(&mem.Request{Addr: mem.Addr(i * 64), Size: 64, Kind: mem.Read,
			Done: func(c sim.Cycle) { lastClosed = c }})
	}
	e2.Run()
	if last >= lastClosed {
		t.Fatalf("open page (%d) not faster than closed page (%d)", last, lastClosed)
	}
}

func TestBusSerialisesBursts(t *testing.T) {
	e, h, _ := newHMC(t, noRefresh())
	g := mem.HMC21()
	// 8 reads, one per bank of vault 0: activations overlap, bursts serialise.
	var finishes []sim.Cycle
	for b := uint32(0); b < 8; b++ {
		addr := g.Compose(mem.Location{Vault: 0, Bank: b})
		h.Access(&mem.Request{Addr: addr, Size: 256, Kind: mem.Read,
			Done: func(c sim.Cycle) { finishes = append(finishes, c) }})
	}
	e.Run()
	if len(finishes) != 8 {
		t.Fatalf("completed %d", len(finishes))
	}
	for i := 1; i < len(finishes); i++ {
		gap := finishes[i] - finishes[i-1]
		if gap != 64 { // 256B burst = 32 beats * 2 cycles
			t.Fatalf("burst gap %d at %d, want 64", gap, i)
		}
	}
}

func TestSameBankThroughputLimitedByRC(t *testing.T) {
	e, h, _ := newHMC(t, noRefresh())
	// Many reads to the same bank: steady-state spacing = tRC = tRAS+tRP
	// = (24+9)*12 = 396 cycles (RAS dominates the 280-cycle access).
	var finishes []sim.Cycle
	g := mem.HMC21()
	for r := uint64(0); r < 6; r++ {
		addr := g.Compose(mem.Location{Vault: 0, Bank: 0, Row: r})
		h.Access(&mem.Request{Addr: addr, Size: 256, Kind: mem.Read,
			Done: func(c sim.Cycle) { finishes = append(finishes, c) }})
	}
	e.Run()
	for i := 2; i < len(finishes); i++ {
		gap := finishes[i] - finishes[i-1]
		if gap != 396 {
			t.Fatalf("same-bank steady gap = %d, want 396", gap)
		}
	}
}

func TestRefreshStallsAccesses(t *testing.T) {
	ti := noRefresh()
	ti.RefreshInterval = 1000
	ti.RefreshCycles = 300
	e, h, reg := newHMC(t, ti)
	var doneAt sim.Cycle
	// Schedule an access that starts right at the refresh boundary.
	e.Schedule(1000, func() {
		h.Access(&mem.Request{Addr: 0, Size: 16, Kind: mem.Read,
			Done: func(c sim.Cycle) { doneAt = c }})
	})
	e.Run()
	// Start pushed to 1300, plus unloaded 220.
	if doneAt != 1520 {
		t.Fatalf("refresh-stalled read done at %d, want 1520", doneAt)
	}
	if reg.Total("dram.", "refreshes") != 1 {
		t.Fatalf("refresh count = %d", reg.Total("dram.", "refreshes"))
	}
}

func TestStatsCounts(t *testing.T) {
	e, h, reg := newHMC(t, noRefresh())
	h.Access(&mem.Request{Addr: 0, Size: 256, Kind: mem.Read})
	h.Access(&mem.Request{Addr: 512, Size: 64, Kind: mem.Write})
	e.Run()
	if reg.Total("dram.", "reads") != 1 || reg.Total("dram.", "writes") != 1 {
		t.Fatal("read/write counts wrong")
	}
	if reg.Total("dram.", "bytes_read") != 256 || reg.Total("dram.", "bytes_written") != 64 {
		t.Fatal("byte counts wrong")
	}
	if h.Vault(0).LatencyStats().Count() != 1 {
		t.Fatal("latency histogram not recorded")
	}
	if h.Vault(0).ID() != 0 || h.NumVaults() != 32 {
		t.Fatal("vault identity accessors wrong")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	e := sim.NewEngine()
	_, err := New(e, mem.Geometry{Vaults: 3, Banks: 8, RowBytes: 256, Total: 1 << 30},
		HMC21Timing(), stats.NewRegistry())
	if err == nil {
		t.Fatal("bad geometry accepted")
	}
	_, err = New(e, mem.HMC21(), Timing{}, stats.NewRegistry())
	if err == nil {
		t.Fatal("bad timing accepted")
	}
}

// Property: completion time is never before arrival + unloaded latency,
// and all Done callbacks fire exactly once.
func TestLatencyLowerBoundProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		e, h, _ := newHMC(t, noRefresh())
		g := mem.HMC21()
		fired := 0
		ok := true
		for _, raw := range addrs {
			a := g.RowBase(mem.Addr(uint64(raw) % g.Total))
			h.Access(&mem.Request{Addr: a, Size: 64, Kind: mem.Read,
				Done: func(c sim.Cycle) {
					fired++
					if c < 232 { // unloaded 64B read: 108+108+16
						ok = false
					}
				}})
		}
		e.Run()
		return ok && fired == len(addrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if ClosedPage.String() != "closed-page" || OpenPage.String() != "open-page" {
		t.Fatal("policy strings wrong")
	}
}

// Aggregate streaming bandwidth across all vaults should approach the
// TSV-bus limit: 4 B/cycle per vault × 32 vaults = 128 B/cycle.
func TestAggregateStreamBandwidth(t *testing.T) {
	e, h, _ := newHMC(t, noRefresh())
	const rows = 32 * 64 // 64 rows per vault
	var last sim.Cycle
	for i := 0; i < rows; i++ {
		h.Access(&mem.Request{Addr: mem.Addr(i * 256), Size: 256, Kind: mem.Read,
			Done: func(c sim.Cycle) {
				if c > last {
					last = c
				}
			}})
	}
	e.Run()
	bytes := float64(rows * 256)
	bw := bytes / float64(last)
	if bw < 100 || bw > 128.1 {
		t.Fatalf("aggregate stream bandwidth = %.1f B/cycle, want ~128", bw)
	}
}
