package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
)

// TestLoadTestCountersRollUp: counters on, the report's total must
// carry the simulator's machine counters, shard partials and responses
// must carry their own snapshots, and the total must equal the sum
// over distinct (plan, shard) runs — never the per-request sum, which
// double-counts plans shared by several requests.
func TestLoadTestCountersRollUp(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 8)
	spec := OpenLoop(reqs, 50_000, 0, 11)
	r, err := c.LoadTest(spec, Options{Workers: 2, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Len() == 0 {
		t.Fatal("counters on but report total empty")
	}
	for _, key := range []string{
		"engine.events_scheduled", "engine.events_executed", "dram.reads",
	} {
		if v, ok := r.Counters.Get(key); !ok || v == 0 {
			t.Errorf("report counters missing %s (= %d, %v)", key, v, ok)
		}
	}
	// The total sums each distinct (plan, shard) simulation once. An
	// 8-request round-robin stream repeats plans, so summing the
	// per-request responses — where shared runs appear once per request
	// — must come out strictly larger than the report total.
	total, _ := r.Counters.Get("engine.events_executed")
	var reqSum uint64
	for _, req := range reqs {
		resp, err := c.Query(req, Options{Workers: 2, Counters: true})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Counters.Len() == 0 {
			t.Fatal("response counters empty with counters on")
		}
		for _, sp := range resp.Shards {
			if sp.Counters.Len() == 0 {
				t.Fatal("shard partial counters empty with counters on")
			}
		}
		v, _ := resp.Counters.Get("engine.events_executed")
		reqSum += v
	}
	if reqSum <= total {
		t.Fatalf("per-request sum %d not larger than distinct-run total %d — dedup suspect", reqSum, total)
	}
	if !strings.Contains(r.Summary(), "machine counters") {
		t.Fatal("Summary missing the counters section")
	}
}

// TestLoadTestCountersOffIsClean: with counters off nothing carries a
// snapshot and exports keep their pre-observability schema.
func TestLoadTestCountersOffIsClean(t *testing.T) {
	c := testCluster(t, 2)
	spec := OpenLoop(testStream(t, 4), 50_000, 0, 11)
	r, err := c.LoadTest(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters != nil || r.Trace != nil {
		t.Fatal("counters/trace present with observability off")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("Counters")) {
		t.Fatal("counter-off JSON mentions Counters")
	}
	if strings.Contains(r.Summary(), "machine counters") {
		t.Fatal("counter-off Summary has a counters section")
	}
	// The span exporters still produce valid (empty) documents.
	buf.Reset()
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("empty Chrome trace invalid")
	}
}

// TestLoadTestTraceSpans: tracing on, both load disciplines emit the
// request span tree — async request spans bracketing shard complete
// spans — and the Chrome export is valid and Perfetto-shaped.
func TestLoadTestTraceSpans(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 6)
	for _, spec := range []LoadSpec{
		OpenLoop(reqs, 50_000, 0, 11),
		ClosedLoop(reqs, 3),
	} {
		r, err := c.LoadTest(spec, Options{Workers: 2, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Trace.Len() == 0 {
			t.Fatalf("%s: tracing on but no spans", spec.Mode)
		}
		var begins, ends, completes int
		for _, s := range r.Trace.Spans() {
			switch s.Phase {
			case obs.PhaseBegin:
				begins++
			case obs.PhaseEnd:
				ends++
			case obs.PhaseComplete:
				completes++
			}
		}
		if begins != len(r.Requests) || ends != begins {
			t.Fatalf("%s: %d begins / %d ends for %d requests", spec.Mode, begins, ends, len(r.Requests))
		}
		if completes != len(r.Requests)*c.Shards() {
			t.Fatalf("%s: %d shard spans, want %d", spec.Mode, completes, len(r.Requests)*c.Shards())
		}
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("%s: Chrome trace invalid JSON", spec.Mode)
		}
		if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
			t.Fatalf("%s: Chrome trace missing traceEvents", spec.Mode)
		}
	}
}

// TestFleetTraceAndCounters: the fleet replay emits routing instants
// with pool picks, shed instants for refused arrivals, and pool-track
// shard spans; counters roll up once per distinct simulation.
func TestFleetTraceAndCounters(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86)
	reqs, err := StreamSpec{N: 12, Seed: 3, Archs: []query.Arch{ArchAuto}, Classes: 2}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	spec := OpenLoop(reqs, 2_000, 0, 9)
	spec.Classes = []ClassSpec{
		{Name: "batch", PatienceCycles: 1},
		{Name: "interactive", PatienceCycles: 1_000_000_000},
	}
	spec.Shed = true
	r, err := f.LoadTest(spec, Options{Workers: 2, Trace: true, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Len() == 0 {
		t.Fatal("fleet counters empty with counters on")
	}
	var route, shed int
	for _, s := range r.Trace.Spans() {
		switch s.Cat {
		case "routing":
			route++
		case "admission":
			shed++
		}
	}
	if route != len(r.Requests) {
		t.Fatalf("%d routing instants for %d served requests", route, len(r.Requests))
	}
	if shed != r.Shed {
		t.Fatalf("%d shed instants for %d shed requests", shed, r.Shed)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("pool 0 (hipe)")) {
		t.Fatal("Chrome trace missing pool track names")
	}
}

// TestObsExportsDeterministicAcrossWorkerCounts is the tentpole
// acceptance check: counter and span exports are byte-identical at any
// executor worker count, for cluster and fleet load tests.
func TestObsExportsDeterministicAcrossWorkerCounts(t *testing.T) {
	reqs := testStream(t, 8)
	type export struct{ chrome, spans, counters []byte }
	run := func(workers int) (cluster, fleet export) {
		t.Helper()
		c := testCluster(t, 2)
		r, err := c.LoadTest(OpenLoop(reqs, 50_000, 0, 11), Options{Workers: workers, Trace: true, Counters: true})
		if err != nil {
			t.Fatal(err)
		}
		var ch, sp bytes.Buffer
		if err := r.WriteChromeTrace(&ch); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteSpanCSV(&sp); err != nil {
			t.Fatal(err)
		}
		ctr, err := json.Marshal(r.Counters)
		if err != nil {
			t.Fatal(err)
		}
		cluster = export{ch.Bytes(), sp.Bytes(), ctr}

		f := testFleet(t, 2, query.HIPE, query.X86)
		autoReqs, err := StreamSpec{N: 8, Seed: 3, Archs: []query.Arch{ArchAuto}}.Requests()
		if err != nil {
			t.Fatal(err)
		}
		fr, err := f.LoadTest(OpenLoop(autoReqs, 20_000, 0, 5), Options{Workers: workers, Trace: true, Counters: true})
		if err != nil {
			t.Fatal(err)
		}
		var fch, fsp bytes.Buffer
		if err := fr.WriteChromeTrace(&fch); err != nil {
			t.Fatal(err)
		}
		if err := fr.WriteSpanCSV(&fsp); err != nil {
			t.Fatal(err)
		}
		fctr, err := json.Marshal(fr.Counters)
		if err != nil {
			t.Fatal(err)
		}
		fleet = export{fch.Bytes(), fsp.Bytes(), fctr}
		return cluster, fleet
	}
	c1, f1 := run(1)
	for _, workers := range []int{2, 8} {
		cN, fN := run(workers)
		for _, pair := range [][2][]byte{
			{c1.chrome, cN.chrome}, {c1.spans, cN.spans}, {c1.counters, cN.counters},
			{f1.chrome, fN.chrome}, {f1.spans, fN.spans}, {f1.counters, fN.counters},
		} {
			if !bytes.Equal(pair[0], pair[1]) {
				t.Fatalf("observability export differs between 1 and %d workers", workers)
			}
		}
	}
}
