package serve

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
)

// FuzzStreamSpecRequests is the satellite fuzz target: Requests() must
// reject any malformed spec with an error — never a panic — and every
// accepted spec must materialise deterministically with its declared
// shape. Run with `go test -fuzz FuzzStreamSpecRequests ./internal/serve/`;
// the committed corpus under testdata/fuzz seeds the interesting
// regions (and runs as plain tests on every `go test`).
func FuzzStreamSpecRequests(f *testing.F) {
	// Seeds: the happy path, each rejection branch, and the boundary
	// values overflow-prone arithmetic sees.
	f.Add(8, uint64(7), 255, 2, int32(10), int32(50), true, 3, int32(2400), 2)
	f.Add(0, uint64(0), 0, 0, int32(0), int32(0), false, 0, int32(0), 0)
	f.Add(-5, uint64(1), 1, 1, int32(-3), int32(0), false, -1, int32(-9), -2)
	f.Add(1, uint64(^uint64(0)), 0x42, 1, int32(1<<30), int32(1), true, 1, int32(1<<30), 1)
	f.Add(64, uint64(42), 3, 2, int32(24), int32(24), false, 2, int32(0), 8)

	f.Fuzz(func(t *testing.T, n int, seed uint64, rawArch int,
		nQty int, qtyA, qtyB int32, aggregate bool, q1every int, q1cut int32, classes int) {
		spec := StreamSpec{
			N:         n,
			Seed:      seed,
			Archs:     []query.Arch{query.Arch(rawArch)},
			Q1Every:   q1every,
			Q1Query:   db.Q01{ShipCut: q1cut},
			Classes:   classes,
			Aggregate: aggregate,
		}
		if rawArch < 0 {
			spec.Archs = nil // default mix
		}
		switch {
		case nQty <= 0:
			// default quantity bounds
		case nQty == 1:
			spec.QtyHi = []int32{qtyA}
		default:
			spec.QtyHi = []int32{qtyA, qtyB}
		}
		reqs, err := spec.Requests()
		if err != nil {
			// Rejection is the contract for malformed specs; the only
			// failure mode is a panic, which the harness catches.
			return
		}
		if len(reqs) != n {
			t.Fatalf("accepted spec produced %d requests, want %d", len(reqs), n)
		}
		for i, r := range reqs {
			if r.Class < 0 || (classes > 1 && r.Class >= classes) {
				t.Fatalf("request %d: class %d outside [0, %d)", i, r.Class, classes)
			}
			if classes <= 1 && r.Class != 0 {
				t.Fatalf("request %d: classless spec drew class %d", i, r.Class)
			}
		}
		again, err := spec.Requests()
		if err != nil {
			t.Fatalf("second materialisation failed: %v", err)
		}
		for i := range reqs {
			if reqs[i] != again[i] {
				t.Fatalf("request %d differs across identical materialisations", i)
			}
		}
	})
}
