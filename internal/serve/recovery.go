// Request-level recovery for the replicated fleet: per-class
// virtual-time attempt timeouts, capped exponential-backoff retries,
// hedged second attempts, health-aware failover routing, and — when
// the retry budget runs out — graceful degradation to a partial result
// with exact coverage and answer-error accounting.
//
// The whole mechanism lives inside the fleet's single-threaded
// virtual-time replay, so faulted runs are exactly as deterministic —
// and as worker-count-independent — as healthy ones. The replay keeps
// arrival-order priority: a request's retries and hedges book shard
// capacity when the request is processed, ahead of later arrivals —
// a deterministic simplification of real contention between retried
// and fresh work.
package serve

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/obs"
)

// RecoverySpec declares the fleet's request-level recovery policy.
// The zero value (or a nil pointer on the load spec) disables every
// mechanism; per-class timeouts and hedge delays live on ClassSpec.
type RecoverySpec struct {
	// MaxRetries bounds the re-dispatch attempts after the first try.
	// A request whose final attempt fails degrades to a partial result.
	MaxRetries int
	// BackoffCycles is the virtual-time delay between a failed attempt
	// and its retry; each further retry doubles it (capped exponential
	// backoff). Zero retries immediately.
	BackoffCycles uint64
	// BackoffCapCycles caps the doubling (0 = uncapped).
	BackoffCapCycles uint64
	// Hedge honours the classes' HedgeCycles delays: a primary attempt
	// still incomplete that long after dispatch gets a second attempt
	// on the next-ranked distinct replica pool, first completion wins.
	Hedge bool
	// Failover makes routing health-aware (cost.RankLoadedHealth): down
	// replica pools are excluded and straggling pools are penalised by
	// the replay's observed-slowdown factor.
	Failover bool
}

// validate rejects malformed recovery policies.
func (r *RecoverySpec) validate() error {
	if r == nil {
		return nil
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("serve: negative retry budget %d", r.MaxRetries)
	}
	if r.BackoffCapCycles > 0 && r.BackoffCapCycles < r.BackoffCycles {
		return fmt.Errorf("serve: backoff cap %d below the base backoff %d",
			r.BackoffCapCycles, r.BackoffCycles)
	}
	return nil
}

// FaultStats totals a faulted/recovering load test's fault events and
// recovery actions. It appears on the report (and, with counters on,
// as serve.* keys in Report.Counters) only when fault injection or a
// recovery policy was configured.
type FaultStats struct {
	// CrashKills counts shard tasks killed mid-flight by a replica
	// outage; StallDelays dispatches delayed by a transient stall;
	// Straggles shard tasks inflated by a straggler episode.
	CrashKills  int
	StallDelays int
	Straggles   int
	// Retries, Hedges, HedgeWins and Failovers total the recovery
	// actions; Degraded the requests answered with a partial result.
	Retries   int
	Hedges    int
	HedgeWins int
	Failovers int
	Degraded  int
}

// recoveryCounters renders the totals as obs counter keys so
// BENCH-style overhead checks can read recovery cost next to the
// machine counters.
func (fs *FaultStats) recoveryCounters(shed int) *obs.Counters {
	return obs.NewCounters(map[string]uint64{
		"serve.crash_kills":  uint64(fs.CrashKills),
		"serve.stall_delays": uint64(fs.StallDelays),
		"serve.straggles":    uint64(fs.Straggles),
		"serve.retries":      uint64(fs.Retries),
		"serve.hedges":       uint64(fs.Hedges),
		"serve.hedge_wins":   uint64(fs.HedgeWins),
		"serve.failovers":    uint64(fs.Failovers),
		"serve.shed":         uint64(shed),
		"serve.degraded":     uint64(fs.Degraded),
	})
}

// recovering reports whether this replay runs the fault/recovery path.
// False — the only state reachable without a fault spec or recovery
// policy — keeps the legacy dispatch byte-for-byte, allocation-free on
// the gate itself.
func (rp *fleetReplay) recovering() bool { return rp.inj != nil || rp.rec != nil }

// coverage accumulates the shards a request actually scanned across
// all its attempts. Any attempt's completion of shard s yields the
// identical verified partial (candidate plans share the predicate), so
// first-completion accounting is exact.
type coverage struct {
	rows    int
	matches int
	revenue int64
}

// attemptOutcome is one attempt's resolution: success when every shard
// completed inside the deadline with no crash kill; completion is the
// slowest completed shard's end; resolve is the cycle the outcome is
// known (completion on success, the last kill/deadline otherwise).
type attemptOutcome struct {
	pool       int
	success    bool
	completion uint64
	resolve    uint64
}

// backlogAt is one candidate's booked critical-path backlog at cycle t
// — the same signal the legacy dispatch uses, exclusive of outages.
func (rp *fleetReplay) backlogAt(c fleetCand, t uint64) uint64 {
	var backlog uint64
	for _, free := range rp.poolFree[c.pool] {
		if free > t && free-t > backlog {
			backlog = free - t
		}
	}
	return backlog
}

// routeHealth ranks one request's candidates at cycle t. With failover
// on, down pools are excluded and straggling pools penalised by the
// observed slowdown; when every candidate is down the pick falls back
// to queue-for-earliest-recovery: health-blind ranking with the outage
// wait folded into each queue penalty. Adaptive routing (rp.ad) blends
// the observed-cycles EWMA into every leg, next to the health EWMA,
// and may explore — never onto a down replica. Returns the decision,
// the chosen candidate, and whether the pick failed over (excluded at
// least one down pool).
func (rp *fleetReplay) routeHealth(index int, cands []fleetCand, t uint64) (*cost.Decision, fleetCand, bool, error) {
	ests := make([]cost.Estimate, len(cands))
	queue := make([]float64, len(cands))
	for ci, c := range cands {
		ests[ci] = c.est
		queue[ci] = float64(rp.backlogAt(c, t))
	}
	obsCycles, samples := rp.adaptiveInputs(cands)
	failover := rp.rec != nil && rp.rec.Failover
	if !failover {
		d, err := cost.RankLoaded(cands[0].sel, ests, queue, obsCycles)
		if err != nil {
			return nil, fleetCand{}, false, err
		}
		rp.adaptivePick(d, index, nil, samples)
		return d, cands[d.ChosenIndex], false, nil
	}
	health := make([]cost.Health, len(cands))
	nDown := 0
	for ci, c := range cands {
		until, down := rp.inj.DownUntil(c.pool, t)
		health[ci] = cost.Health{Down: down, Slowdown: rp.slow[c.pool]}
		if down {
			nDown++
			// Pre-fold the outage wait so the all-down fallback ranks by
			// earliest recovery plus backlog.
			queue[ci] += float64(until - t)
		}
	}
	d, err := cost.RankLoadedHealth(cands[0].sel, ests, queue, health, obsCycles)
	if errors.Is(err, cost.ErrAllDown) {
		d, err = cost.RankLoaded(cands[0].sel, ests, queue, obsCycles)
	}
	if err != nil {
		return nil, fleetCand{}, false, err
	}
	rp.adaptivePick(d, index, health, samples)
	return d, cands[d.ChosenIndex], nDown > 0 && !health[d.ChosenIndex].Down, nil
}

// hedgeCandidate picks the hedge attempt's target: the best-scored
// candidate on a pool distinct from primary (healthy pools only under
// failover), or ok=false when no distinct pool can serve.
func (rp *fleetReplay) hedgeCandidate(cands []fleetCand, primary int, t uint64) (fleetCand, bool) {
	failover := rp.rec != nil && rp.rec.Failover
	best, found := fleetCand{}, false
	var bestScore float64
	for _, c := range cands {
		if c.pool == primary {
			continue
		}
		if failover {
			if _, down := rp.inj.DownUntil(c.pool, t); down {
				continue
			}
		}
		score := c.est.Cycles + float64(rp.backlogAt(c, t))
		if failover && rp.slow[c.pool] > 1 {
			score = c.est.Cycles*rp.slow[c.pool] + float64(rp.backlogAt(c, t))
		}
		if !found || score < bestScore {
			best, bestScore, found = c, score, true
		}
	}
	return best, found
}

// runAttempt books one attempt of request index on candidate c's pool,
// dispatched at cycle t under the class timeout. Per shard it applies,
// in order: FIFO queueing behind the pool's booked work, transient
// stall delay, outage wait, straggler service inflation; then resolves
// the task as completed, killed by a crash beginning mid-execution, or
// cancelled at the deadline. Booked busy cycles — including wasted
// work of killed and cancelled tasks — land on the pool's accounting,
// and first-time shard completions accumulate into cov.
func (rp *fleetReplay) runAttempt(reqName string, c fleetCand, t uint64,
	timeout uint64, done []bool, cov *coverage) attemptOutcome {
	parts := rp.byPlan[rp.planIndex[c.plan]]
	free := rp.poolFree[c.pool]
	pool := &rp.report.Pools[c.pool]
	deadline := uint64(math.MaxUint64)
	if timeout > 0 {
		deadline = t + timeout
	}
	out := attemptOutcome{pool: c.pool, success: true}
	maxRatio := 0.0
	for s, p := range parts {
		start := t
		if free[s] > start {
			start = free[s]
		}
		if st := rp.inj.StallUntil(c.pool, s, start); st > start {
			start = st
			rp.fstats.StallDelays++
		}
		if until, down := rp.inj.DownUntil(c.pool, start); down {
			start = until
		}
		if start >= deadline {
			// The shard never starts inside the attempt's budget; its
			// queue state is untouched.
			out.success = false
			if deadline > out.resolve {
				out.resolve = deadline
			}
			continue
		}
		svc := p.Cycles
		if slow := rp.inj.Slowdown(c.pool, s, start); slow > 1 {
			svc = uint64(math.Ceil(float64(svc) * slow))
			rp.fstats.Straggles++
		}
		end := start + svc
		pool.Tasks++
		switch crashAt, _, killed := rp.inj.NextCrash(c.pool, start, end); {
		case killed:
			// The outage kills the task mid-flight; work up to the crash
			// is wasted. Later starts on this shard pass through
			// DownUntil, which parks them past the recovery.
			pool.BusyCycles += crashAt - start
			free[s] = crashAt
			rp.fstats.CrashKills++
			out.success = false
			if crashAt > out.resolve {
				out.resolve = crashAt
			}
			if rp.tr.On() {
				rp.tr.Complete(reqName, "shard-killed", 1+c.pool, s, start, crashAt,
					obs.Arg{Key: "fault", Val: "crash"})
			}
		case end > deadline:
			// Cancelled at the class deadline; partial work is wasted.
			pool.BusyCycles += deadline - start
			free[s] = deadline
			out.success = false
			if deadline > out.resolve {
				out.resolve = deadline
			}
			if rp.tr.On() {
				rp.tr.Complete(reqName, "shard-timeout", 1+c.pool, s, start, deadline,
					obs.Arg{Key: "fault", Val: "timeout"})
			}
		default:
			pool.BusyCycles += svc
			free[s] = end
			if end > out.completion {
				out.completion = end
			}
			if end > out.resolve {
				out.resolve = end
			}
			if ratio := float64(svc) / float64(p.Cycles); ratio > maxRatio {
				maxRatio = ratio
			}
			if !done[s] {
				done[s] = true
				cov.rows += rp.fleet.shards[s].N
				cov.matches += p.Matches
				cov.revenue += p.Revenue
			}
			if rp.tr.On() {
				rp.tr.Complete(reqName, "shard", 1+c.pool, s, start, end,
					obs.Arg{Key: "matches", Val: strconv.Itoa(p.Matches)})
			}
		}
	}
	// Fold the attempt's observed service inflation into the pool's
	// slowdown estimate — the failover router's straggler signal. Only
	// completed tasks observe a ratio; kills are caught by DownUntil.
	if maxRatio > 0 {
		rp.slow[c.pool] = 0.75*rp.slow[c.pool] + 0.25*maxRatio
	}
	return out
}

// relErr is the relative error of a partial answer against the
// reference value (exact 0 when they agree; |ref| saturates at 1 so a
// zero reference cannot divide by zero).
func relErr(seen, ref float64) float64 {
	den := math.Abs(ref)
	if den < 1 {
		den = 1
	}
	return math.Abs(ref-seen) / den
}

// dispatchRecover is the fault/recovery twin of dispatch: it sheds,
// routes (health-aware under failover), and then drives the attempt
// loop — timeout, capped-backoff retries, optional hedging — until the
// request completes or its budget degrades it to a partial result.
func (rp *fleetReplay) dispatchRecover(index, client int, arrival uint64, req Request, cands []fleetCand) (RequestTrace, error) {
	spec := rp.classes[req.Class]
	acc := &rp.accums[req.Class]
	acc.row.Offered++

	// Admission: identical policy to the healthy path — the class's
	// patience against the least-loaded candidate's booked backlog.
	// Under failover, down pools cannot absorb the request, so the
	// bound is taken over the healthy candidates (all-down keeps every
	// candidate, extended by its outage wait).
	failover := rp.rec != nil && rp.rec.Failover
	minBacklog, seen := uint64(0), false
	allDownMin, allSeen := uint64(0), false
	for _, c := range cands {
		backlog := rp.backlogAt(c, arrival)
		if until, down := rp.inj.DownUntil(c.pool, arrival); down && failover {
			wait := until - arrival + backlog
			if !allSeen || wait < allDownMin {
				allDownMin, allSeen = wait, true
			}
			continue
		}
		if !seen || backlog < minBacklog {
			minBacklog, seen = backlog, true
		}
	}
	if !seen && allSeen {
		minBacklog = allDownMin
	}
	if rp.shed && spec.PatienceCycles > 0 && minBacklog > spec.PatienceCycles {
		acc.row.Shed++
		rp.report.Shed++
		rp.report.ShedRequests = append(rp.report.ShedRequests, ShedTrace{
			Index: index, Class: req.Class, Arrival: arrival, QueueCycles: minBacklog,
		})
		if rp.tr.On() {
			rp.tr.Instant("shed", "admission", 0, 0, arrival,
				obs.Arg{Key: "class", Val: spec.Name},
				obs.Arg{Key: "backlog_cycles", Val: strconv.FormatUint(minBacklog, 10)})
		}
		return RequestTrace{}, nil
	}

	maxRetries := 0
	var backoff, backoffCap uint64
	hedging := false
	if rp.rec != nil {
		maxRetries = rp.rec.MaxRetries
		backoff = rp.rec.BackoffCycles
		backoffCap = rp.rec.BackoffCapCycles
		hedging = rp.rec.Hedge && spec.HedgeCycles > 0
	}

	var reqName string
	if rp.tr.On() {
		reqName = fmt.Sprintf("q%d", index)
		rp.tr.Begin(reqName, "request", 0, index, arrival,
			obs.Arg{Key: "class", Val: spec.Name})
	}

	for s := range rp.done {
		rp.done[s] = false
	}
	var cov coverage
	t := arrival
	attempts, hedges := 0, 0
	hedgeWon, degraded := false, false
	var completion uint64
	var chosen fleetCand
	var d *cost.Decision
	for {
		attempts++
		dec, cand, failedOver, err := rp.routeHealth(index, cands, t)
		if err != nil {
			return RequestTrace{}, fmt.Errorf("serve: request %d: %w", index, err)
		}
		chosen, d = cand, dec
		if failedOver {
			rp.fstats.Failovers++
			acc.row.Failovers++
			if rp.tr.On() {
				rp.tr.Instant("failover", "routing", 0, 0, t,
					obs.Arg{Key: "pool", Val: strconv.Itoa(cand.pool)})
			}
		}
		if rp.tr.On() {
			rp.tr.Instant("route", "routing", 0, 0, t,
				obs.Arg{Key: "pool", Val: strconv.Itoa(cand.pool)},
				obs.Arg{Key: "arch", Val: rp.fleet.pools[cand.pool].String()},
				obs.Arg{Key: "attempt", Val: strconv.Itoa(attempts)})
		}
		primary := rp.runAttempt(reqName, cand, t, spec.TimeoutCycles, rp.done, &cov)

		var hedge attemptOutcome
		hedged := false
		if hedging && !(primary.success && primary.completion <= t+spec.HedgeCycles) {
			if hc, ok := rp.hedgeCandidate(cands, cand.pool, t+spec.HedgeCycles); ok {
				hedged = true
				hedges++
				rp.fstats.Hedges++
				acc.row.Hedges++
				if rp.tr.On() {
					rp.tr.Instant("hedge", "recovery", 0, 0, t+spec.HedgeCycles,
						obs.Arg{Key: "pool", Val: strconv.Itoa(hc.pool)})
				}
				hedge = rp.runAttempt(reqName, hc, t+spec.HedgeCycles, spec.TimeoutCycles, rp.done, &cov)
			}
		}

		if primary.success || (hedged && hedge.success) {
			completion = primary.completion
			if hedged && hedge.success && (!primary.success || hedge.completion < primary.completion) {
				completion = hedge.completion
				hedgeWon = true
				rp.fstats.HedgeWins++
				acc.row.HedgeWins++
				chosen = fleetCand{} // re-resolved below
				for _, c := range cands {
					if c.pool == hedge.pool {
						chosen = c
						break
					}
				}
			}
			break
		}

		failAt := primary.resolve
		if hedged && hedge.resolve > failAt {
			failAt = hedge.resolve
		}
		if attempts-1 >= maxRetries {
			degraded = true
			completion = failAt
			break
		}
		rp.fstats.Retries++
		acc.row.Retries++
		t = failAt + backoff
		if rp.tr.On() {
			rp.tr.Instant("retry", "recovery", 0, 0, t,
				obs.Arg{Key: "attempt", Val: strconv.Itoa(attempts + 1)},
				obs.Arg{Key: "backoff_cycles", Val: strconv.FormatUint(backoff, 10)})
		}
		if next := backoff * 2; next > backoff {
			backoff = next
			if backoffCap > 0 && backoff > backoffCap {
				backoff = backoffCap
			}
		}
	}

	pi := rp.planIndex[chosen.plan]
	resp := rp.planResp[pi]
	rp.report.Pools[chosen.pool].Requests++
	latency := completion - arrival
	totalRows := rp.fleet.whole.N
	covFrac := 1.0
	matches, revenue := resp.Matches, resp.Revenue
	errMatches, errRevenue := 0.0, 0.0
	if degraded {
		rp.fstats.Degraded++
		covFrac = float64(cov.rows) / float64(totalRows)
		matches, revenue = cov.matches, cov.revenue
		errMatches = relErr(float64(matches), float64(resp.Matches))
		errRevenue = relErr(float64(revenue), float64(resp.Revenue))
		if rp.tr.On() {
			rp.tr.Instant("degraded", "recovery", 0, 0, completion,
				obs.Arg{Key: "coverage", Val: strconv.FormatFloat(covFrac, 'g', -1, 64)})
		}
	}
	acc.observeRecovered(latency, spec.SLOCycles > 0, degraded, covFrac, errRevenue)
	rp.observeAdaptive(d, chosen, float64(resp.Cycles))
	if rp.tr.On() {
		rp.tr.Instant("merge", "merge", 0, 0, completion,
			obs.Arg{Key: "matches", Val: strconv.Itoa(matches)})
		rp.tr.End(reqName, "request", 0, index, completion,
			obs.Arg{Key: "latency_cycles", Val: strconv.FormatUint(latency, 10)},
			obs.Arg{Key: "attempts", Val: strconv.Itoa(attempts)})
	}
	tr := RequestTrace{
		Index:   index,
		Client:  client,
		Plan:    chosen.plan,
		Routing: d,
		Class:   req.Class,
		Pool: &PoolPick{
			Pool: chosen.pool, Arch: rp.fleet.pools[chosen.pool].String(),
			QueueCycles: uint64(d.QueueCycles[d.ChosenIndex]), EstCycles: chosen.est.Cycles,
		},
		Arrival:    arrival,
		Completion: completion,
		Latency:    latency,
		Service:    resp.Cycles,
		Work:       resp.WorkCycles,
		Matches:    matches,
		Revenue:    revenue,
		Attempts:   attempts,
		Hedges:     hedges,
		HedgeWon:   hedgeWon,
		Degraded:   degraded,
		Coverage:   covFrac,
		ErrMatches: errMatches,
		ErrRevenue: errRevenue,
	}
	rp.report.Requests = append(rp.report.Requests, tr)
	return tr, nil
}
