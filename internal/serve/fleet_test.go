package serve

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

func testFleet(t *testing.T, nShards int, pools ...query.Arch) *Fleet {
	t.Helper()
	f, err := NewFleet(sweep.Default(), testTable(), nShards, pools)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// testClassStream draws an auto-routed stream carrying admission
// classes, the shape fleet tests route and shed.
func testClassStream(t *testing.T, n, classes int) []Request {
	t.Helper()
	reqs, err := StreamSpec{
		N: n, Seed: 11, Archs: []query.Arch{ArchAuto}, Classes: classes,
	}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestNewFleetRejectsBadPools(t *testing.T) {
	tab := testTable()
	if _, err := NewFleet(sweep.Default(), tab, 2, nil); err == nil {
		t.Fatal("empty pool list accepted")
	}
	if _, err := NewFleet(sweep.Default(), tab, 2, []query.Arch{query.HIPE, ArchAuto}); err == nil {
		t.Fatal("auto pool accepted")
	}
	if _, err := NewFleet(sweep.Default(), tab, 2, []query.Arch{query.Arch(0x42)}); err == nil {
		t.Fatal("unregistered backend accepted as a pool")
	}
}

// TestFleetFixedArchRouting: a fixed-architecture request may only land
// on pools pinned to that architecture, and is refused when no pool is.
func TestFleetFixedArchRouting(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86)
	resp, err := f.Query(Request{Plan: DefaultPlan(query.X86, testStream(t, 1)[0].Plan.Q)}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Pool == nil || resp.Pool.Pool != 1 || resp.Pool.Arch != query.X86.String() {
		t.Fatalf("fixed x86 request routed to %+v, want pool 1 (x86)", resp.Pool)
	}
	if err := f.Admit(Request{Plan: DefaultPlan(query.HMC, testStream(t, 1)[0].Plan.Q)}); err == nil {
		t.Fatal("request for an architecture no pool pins was admitted")
	}
	if err := f.Admit(Request{Plan: DefaultPlan(query.HIPE, testStream(t, 1)[0].Plan.Q), Class: -1}); err == nil {
		t.Fatal("negative class admitted")
	}
}

// TestFleetQueueAwareBalancing: two replicas of the same backend must
// split back-to-back identical arrivals — the second pick pays the
// first's backlog and flips to the idle replica.
func TestFleetQueueAwareBalancing(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.HIPE)
	req := Request{Plan: DefaultPlan(query.HIPE, testStream(t, 1)[0].Plan.Q)}
	reqs := []Request{req, req, req, req}
	// Mean gap 1 cycle: every arrival sees the previous one still
	// queued, so routing must alternate pools.
	rep, err := f.LoadTest(OpenLoop(reqs, 1, 0, 3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pools[0].Requests == 0 || rep.Pools[1].Requests == 0 {
		t.Fatalf("back-to-back arrivals did not split across replicas: %+v", rep.Pools)
	}
	if rep.Requests[0].Pool.Pool == rep.Requests[1].Pool.Pool {
		t.Fatalf("second arrival stayed on the backed-up replica %d", rep.Requests[0].Pool.Pool)
	}
	for _, tr := range rep.Requests {
		if tr.Routing == nil || len(tr.Routing.QueueCycles) != 2 {
			t.Fatalf("request %d: queue penalties not recorded on the decision", tr.Index)
		}
	}
}

// fleetSpecs returns the Poisson and trace-driven open-loop specs the
// determinism tests replay.
func fleetSpecs(t *testing.T) map[string]LoadSpec {
	t.Helper()
	reqs := testClassStream(t, 24, 2)
	classes := []ClassSpec{
		{Name: "batch", SLOCycles: 2_000_000, PatienceCycles: 500_000},
		{Name: "interactive", SLOCycles: 800_000},
	}
	poisson := OpenLoop(reqs, 120_000, 0, 9)
	poisson.Classes = classes
	poisson.Shed = true
	trace := TraceLoop(reqs, TraceSpec{
		Mean:          120_000,
		DiurnalPeriod: 4_000_000,
		DiurnalAmp:    0.6,
		BurstFactor:   3,
		BurstOn:       400_000,
		BurstOff:      1_200_000,
	}, 0, 9)
	trace.Classes = classes
	trace.Shed = true
	return map[string]LoadSpec{"poisson": poisson, "trace": trace}
}

// TestFleetReportDeterministicAcrossWorkerCounts is the tentpole
// acceptance check: fleet reports — CSV and JSON — are byte-identical
// at 1, 2, 8 and GOMAXPROCS executor workers for both Poisson and
// trace-driven arrivals.
func TestFleetReportDeterministicAcrossWorkerCounts(t *testing.T) {
	for name, spec := range fleetSpecs(t) {
		t.Run(name, func(t *testing.T) {
			f := testFleet(t, 2, query.HIPE, query.X86, query.HMC)
			var wantCSV, wantJSON []byte
			for _, workers := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
				rep, err := f.LoadTest(spec, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var csvBuf, jsonBuf bytes.Buffer
				if err := rep.WriteCSV(&csvBuf); err != nil {
					t.Fatal(err)
				}
				if err := rep.WriteJSON(&jsonBuf); err != nil {
					t.Fatal(err)
				}
				if wantCSV == nil {
					wantCSV, wantJSON = csvBuf.Bytes(), jsonBuf.Bytes()
					if rep.Shed == 0 && name == "trace" {
						t.Log("trace spec shed nothing; burst overload may be under-sized")
					}
					continue
				}
				if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
					t.Fatalf("CSV differs at %d workers", workers)
				}
				if !bytes.Equal(jsonBuf.Bytes(), wantJSON) {
					t.Fatalf("JSON differs at %d workers", workers)
				}
			}
		})
	}
}

// TestFleetShedImprovesHighClassAttainment is the admission-control
// acceptance pin: under a 2x-overload trace, shedding low-patience
// batch work must leave the premium class with strictly better SLO
// attainment than the unsheded baseline. The test self-calibrates to
// the simulated service time, so it holds on any timing model.
func TestFleetShedImprovesHighClassAttainment(t *testing.T) {
	f := testFleet(t, 2, query.HIPE)
	reqs := testClassStream(t, 60, 3)
	// Calibrate: S is one representative request's idle critical path.
	resp, err := f.Query(reqs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := resp.Cycles
	classes := []ClassSpec{
		{Name: "batch", SLOCycles: 8 * s, PatienceCycles: s},
		{Name: "normal", SLOCycles: 6 * s, PatienceCycles: 2 * s},
		{Name: "premium", SLOCycles: 4 * s}, // zero patience: never shed
	}
	trace := TraceSpec{Mean: s / 2, DiurnalPeriod: 64 * s, DiurnalAmp: 0.3}
	run := func(shed bool) *Report {
		spec := TraceLoop(reqs, trace, 0, 17)
		spec.Classes = classes
		spec.Shed = shed
		rep, err := f.LoadTest(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, shed := run(false), run(true)
	if base.Shed != 0 {
		t.Fatalf("baseline shed %d requests with shedding disabled", base.Shed)
	}
	if shed.Shed == 0 {
		t.Fatal("2x overload shed nothing")
	}
	if got := shed.Classes[2].Shed; got != 0 {
		t.Fatalf("premium class shed %d requests despite zero patience", got)
	}
	if shed.Classes[0].Shed == 0 {
		t.Fatal("lowest-patience batch class shed nothing under overload")
	}
	b, p := base.Classes[2].Attainment, shed.Classes[2].Attainment
	if p <= b {
		t.Fatalf("premium attainment %.3f with shedding, %.3f without — shedding must improve it", p, b)
	}
}

// TestFleetLoadTestHighConcurrency hammers one fleet from several
// concurrent load tests at full executor width — the race detector's
// target — and checks every caller still gets the identical report.
func TestFleetLoadTestHighConcurrency(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86)
	spec := fleetSpecs(t)["poisson"]
	opt := Options{Workers: runtime.GOMAXPROCS(0)}
	const callers = 4
	outs := make([][]byte, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := f.LoadTest(spec, opt)
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				errs[i] = err
				return
			}
			outs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], outs[0]) {
			t.Fatalf("caller %d produced a different report", i)
		}
	}
}

// TestFleetClosedLoop: the closed-loop discipline works over replicas
// too — every request completes, pools share the work, and class rows
// account for every completion.
func TestFleetClosedLoop(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86)
	reqs := testClassStream(t, 16, 2)
	spec := ClosedLoop(reqs, 4)
	spec.Classes = []ClassSpec{{Name: "a", SLOCycles: 1_000_000}, {Name: "b"}}
	rep, err := f.LoadTest(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(reqs) || rep.Concurrency != 4 {
		t.Fatalf("completed %d concurrency %d, want %d/4", rep.Completed, rep.Concurrency, len(reqs))
	}
	total := 0
	for _, p := range rep.Pools {
		total += p.Requests
	}
	if total != len(reqs) {
		t.Fatalf("pool request counts sum to %d, want %d", total, len(reqs))
	}
	done := 0
	for _, cs := range rep.Classes {
		done += cs.Completed
	}
	if done != len(reqs) {
		t.Fatalf("class completions sum to %d, want %d", done, len(reqs))
	}
	// Closed mode cannot shed.
	spec.Shed = true
	if _, err := f.LoadTest(spec, Options{Workers: 1}); err == nil {
		t.Fatal("closed-loop shedding accepted")
	}
}

// TestFleetQueryRecordsRouting: every fleet answer carries the loaded
// decision and the pool pick, and still verifies against the cluster
// path's answer for the same plan.
func TestFleetQueryRecordsRouting(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86, query.HMC)
	req := testClassStream(t, 1, 0)[0]
	resp, err := f.Query(req, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Routing == nil || resp.Pool == nil {
		t.Fatal("fleet answer missing routing or pool pick")
	}
	if len(resp.Routing.Estimates) != 3 {
		t.Fatalf("decision carries %d candidates, want 3", len(resp.Routing.Estimates))
	}
	if resp.Pool.EstCycles != resp.Routing.Estimates[resp.Routing.ChosenIndex].Cycles {
		t.Fatal("pool pick's estimate disagrees with the decision")
	}
	want, err := f.Cluster.Query(Request{Plan: resp.Request.Plan}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != want.Matches || resp.Revenue != want.Revenue {
		t.Fatalf("fleet answer %d/%d, cluster answer %d/%d",
			resp.Matches, resp.Revenue, want.Matches, want.Revenue)
	}
}

// TestClusterLoadTestRejectsFleetFields: classes and shedding need the
// replicated fleet; the single-replica path refuses them loudly.
func TestClusterLoadTestRejectsFleetFields(t *testing.T) {
	c := testCluster(t, 2)
	spec := OpenLoop(testStream(t, 4), 1000, 0, 1)
	spec.Classes = []ClassSpec{{Name: "a"}}
	if _, err := c.LoadTest(spec, Options{Workers: 1}); err == nil {
		t.Fatal("cluster load test accepted admission classes")
	}
	spec = OpenLoop(testStream(t, 4), 1000, 0, 1)
	spec.Shed = true
	if _, err := c.LoadTest(spec, Options{Workers: 1}); err == nil {
		t.Fatal("cluster load test accepted shedding")
	}
}

// TestFleetClassStreamsClassless pins the decorrelation contract: the
// class knob must not disturb any other field of the stream.
func TestFleetClassStreamsClassless(t *testing.T) {
	with, err := StreamSpec{N: 12, Seed: 5, Classes: 3}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	without, err := StreamSpec{N: 12, Seed: 5}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := range with {
		if with[i].Plan != without[i].Plan {
			t.Fatalf("request %d: class knob changed the plan", i)
		}
		if with[i].Class < 0 || with[i].Class >= 3 {
			t.Fatalf("request %d: class %d outside [0, 3)", i, with[i].Class)
		}
		seen[with[i].Class] = true
		if without[i].Class != 0 {
			t.Fatalf("request %d: classless stream drew class %d", i, without[i].Class)
		}
	}
	if len(seen) < 2 {
		t.Fatal("class draw is not mixing")
	}
}

// TestFleetRequestClassOutOfRange: a class the spec never declared is
// rejected before any simulation runs.
func TestFleetRequestClassOutOfRange(t *testing.T) {
	f := testFleet(t, 2, query.HIPE)
	reqs := testClassStream(t, 2, 0)
	reqs[1].Class = 7
	spec := OpenLoop(reqs, 1000, 0, 1)
	spec.Classes = []ClassSpec{{Name: "only"}}
	_, err := f.LoadTest(spec, Options{Workers: 1})
	if err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if want := fmt.Sprintf("class %d outside", 7); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the class", err)
	}
}
