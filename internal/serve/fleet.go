// The fleet layer: R replica pools over one sharded table, each pool
// pinned to a backend family, with a router that picks the (replica,
// backend) pair jointly from the cost model's predicted critical path
// plus the replica's current virtual-time backlog — and, under
// overload, admission control that sheds low-patience classes first.
//
// Replicas hold the same data, so a (plan, shard) service time is
// identical on every pool that can run the plan; the fleet therefore
// shares the Cluster's executor pool and memoised shard simulations,
// and only the virtual-time replay — which is single-threaded — knows
// about pools. Reports stay byte-identical at any worker count.
package serve

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/fault"
	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// Fleet is a replicated serving fleet: the embedded Cluster's shards,
// replicated across len(pools) complete replicas, each pinned to one
// backend family. Immutable after NewFleet and safe for concurrent
// Query calls.
type Fleet struct {
	*Cluster
	pools []query.Arch

	// ests caches the sharded cost estimate per distinct plan — the
	// router's per-candidate input, a pure function of (shards, plan).
	estMu sync.Mutex
	ests  map[query.Plan]poolEstimate
}

type poolEstimate struct {
	est cost.Estimate
	sel float64
}

// NewFleet builds a fleet over tab cut into nShards shards, with one
// complete replica per entry of pools, pinned to that architecture.
// Pools must name registered concrete backends — ArchAuto names no
// backend family to pin a replica to and is rejected.
func NewFleet(cfg sweep.Config, tab *db.Table, nShards int, pools []query.Arch) (*Fleet, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("serve: a fleet needs at least one replica pool")
	}
	for i, a := range pools {
		if a == query.ArchAuto {
			return nil, fmt.Errorf("serve: pool %d: replica pools must pin a concrete backend, not auto", i)
		}
		if _, ok := query.BackendFor(a); !ok {
			return nil, fmt.Errorf("serve: pool %d: architecture %d is not a registered backend", i, a)
		}
	}
	c, err := New(cfg, tab, nShards)
	if err != nil {
		return nil, err
	}
	return &Fleet{
		Cluster: c,
		pools:   append([]query.Arch(nil), pools...),
		ests:    make(map[query.Plan]poolEstimate),
	}, nil
}

// Pools reports the replica pools' pinned architectures, in pool order.
func (f *Fleet) Pools() []query.Arch { return append([]query.Arch(nil), f.pools...) }

// Calibrate replaces the fleet's routing cost model (see
// Cluster.Calibrate) and additionally invalidates the cached sharded
// estimates the fleet router ranks candidates by.
func (f *Fleet) Calibrate(p cost.Params) {
	f.Cluster.Calibrate(p)
	f.estMu.Lock()
	f.ests = make(map[query.Plan]poolEstimate)
	f.estMu.Unlock()
}

// fleetCand is one routable (replica pool, plan) pair with its cached
// cost estimate.
type fleetCand struct {
	pool int
	plan query.Plan
	est  cost.Estimate
	sel  float64
}

// estimate returns the sharded estimate for one plan, cached.
func (f *Fleet) estimate(p query.Plan) (cost.Estimate, float64, error) {
	f.estMu.Lock()
	e, ok := f.ests[p]
	f.estMu.Unlock()
	if ok {
		return e.est, e.sel, nil
	}
	est, sel, err := cost.EstimateSharded(f.params, f.shards, p)
	if err != nil {
		return cost.Estimate{}, 0, err
	}
	f.estMu.Lock()
	f.ests[p] = poolEstimate{est: est, sel: sel}
	f.estMu.Unlock()
	return est, sel, nil
}

// candidatesFor expands one request into its routable (pool, plan)
// candidates, in pool order. An ArchAuto request is a candidate on
// every pool (each pool's pinned backend's best serving shape over the
// request's predicate); a fixed-architecture request only on pools
// pinned to that architecture. Pools whose plan the envelope rejects
// are skipped; an error is returned only when no pool survives.
func (f *Fleet) candidatesFor(req Request) ([]fleetCand, error) {
	maxRows := f.maxShardRows()
	var cands []fleetCand
	for pi, arch := range f.pools {
		var p query.Plan
		if req.Plan.Auto() {
			b, _ := query.BackendFor(arch)
			if req.Plan.Kind == query.Q1Agg {
				p = DefaultQ1Plan(arch, req.Plan.Q1)
			} else {
				p = DefaultPlan(arch, req.Plan.Q)
				p.Aggregate = req.Plan.Aggregate && b.Caps().Aggregate
			}
		} else {
			if req.Plan.Arch != arch {
				continue
			}
			p = req.Plan
		}
		if p.ValidateFor(maxRows) != nil {
			continue
		}
		est, sel, err := f.estimate(p)
		if err != nil {
			continue
		}
		cands = append(cands, fleetCand{pool: pi, plan: p, est: est, sel: sel})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("serve: no replica pool can serve %s", req.Plan)
	}
	return cands, nil
}

// Admit validates a request against the fleet: its class must be
// non-negative and at least one replica pool must be able to execute
// it.
func (f *Fleet) Admit(req Request) error {
	if req.Class < 0 {
		return fmt.Errorf("serve: negative admission class %d", req.Class)
	}
	_, err := f.candidatesFor(req)
	return err
}

// route ranks one request's candidates under the given queue penalties
// and returns the decision plus the chosen candidate. With adaptive
// routing on (ad non-nil), each candidate's analytic prior is blended
// with the observed-cycles EWMA of its (kind, backend, selectivity
// bucket) cell, and the deterministic exploration floor may override
// the pick for this request index; the decision records the blend and
// the override so every adaptive pick stays auditable.
func (f *Fleet) route(ad *cost.Adaptive, index int, cands []fleetCand, queue []float64) (*cost.Decision, fleetCand, error) {
	ests := make([]cost.Estimate, len(cands))
	for i, c := range cands {
		ests[i] = c.est
	}
	var obsCycles []float64
	var samples []uint64
	if ad != nil {
		obsCycles = make([]float64, len(cands))
		samples = make([]uint64, len(cands))
		for i, c := range cands {
			blended, _, n := ad.Blended(c.plan.Kind, c.plan.Arch, c.sel, c.est.Cycles)
			if n > 0 {
				obsCycles[i] = blended
			}
			samples[i] = n
		}
	}
	d, err := cost.RankLoaded(cands[0].sel, ests, queue, obsCycles)
	if err != nil {
		return nil, fleetCand{}, err
	}
	if ad != nil {
		d.BucketSamples = samples
		if j, ok := ad.ExplorePick(index, len(cands)); ok {
			d.ChosenIndex = j
			d.Chosen = d.Estimates[j].Plan
			d.Explored = true
		}
	}
	return d, cands[d.ChosenIndex], nil
}

// Query routes one request across the fleet's replica pools — on an
// idle fleet the queues are zero, so the pick is the predicted-fastest
// (replica, backend) pair — executes it on the shared shard engines,
// and returns the verified answer with the routing decision and pool
// pick attached. Safe for concurrent callers.
func (f *Fleet) Query(req Request, opt Options) (*Response, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := f.Admit(req); err != nil {
		return nil, err
	}
	cands, err := f.candidatesFor(req)
	if err != nil {
		return nil, err
	}
	// Online adaptive state (EnableAdaptive): route under the lock so
	// concurrent queries see a consistent observation snapshot, and take
	// a sequence number for the deterministic exploration stream.
	f.adaptMu.Lock()
	ad := f.adapt
	var adIndex int
	if ad != nil {
		adIndex = f.adaptSeq
		f.adaptSeq++
	}
	d, chosen, err := f.route(ad, adIndex, cands, make([]float64, len(cands)))
	f.adaptMu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, err := f.Cluster.Query(Request{Plan: chosen.plan, Class: req.Class}, opt)
	if err != nil {
		return nil, err
	}
	if ad != nil {
		f.adaptMu.Lock()
		ad.Observe(chosen.plan.Kind, chosen.plan.Arch, chosen.sel, float64(resp.Cycles))
		f.adaptMu.Unlock()
	}
	resp.Routing = d
	resp.Pool = &PoolPick{
		Pool: chosen.pool, Arch: f.pools[chosen.pool].String(),
		EstCycles: chosen.est.Cycles,
	}
	return resp, nil
}

// LoadTest runs the load spec against the fleet. The compute stage is
// shared with the cluster path: every distinct candidate plan's (plan,
// shard) service times are computed once on the bounded executor pool
// and each plan's merged answer is verified against the unsharded
// reference evaluator. The serving timeline is then replayed
// single-threaded in virtual time — per arrival, the router ranks the
// request's (pool, plan) candidates by predicted critical path plus
// the candidate replica's current backlog; admission control (Shed)
// refuses requests whose class's patience even the least-loaded
// candidate exceeds; the pick dispatches FIFO onto the chosen
// replica's shard queues. Reports are byte-identical at any worker
// count.
func (f *Fleet) LoadTest(spec LoadSpec, opt Options) (*Report, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	classes := spec.Classes
	if len(classes) == 0 {
		classes = []ClassSpec{{Name: "default"}}
	}
	cands := make([][]fleetCand, len(spec.Requests))
	for i, req := range spec.Requests {
		if req.Class < 0 || req.Class >= len(classes) {
			return nil, fmt.Errorf("serve: request %d: class %d outside the %d declared classes",
				i, req.Class, len(classes))
		}
		cs, err := f.candidatesFor(req)
		if err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		cands[i] = cs
	}

	// Open loop fixes the issued set (and arrival times) up front;
	// closed loop issues every request.
	reqs := spec.Requests
	offered := len(reqs)
	var arrivalTimes []uint64
	if spec.Mode == Open {
		arrivalTimes = spec.arrivals()
		reqs = reqs[:len(arrivalTimes)]
		cands = cands[:len(arrivalTimes)]
		if len(reqs) == 0 {
			return nil, fmt.Errorf("serve: no request arrives inside %d cycles", spec.DurationCycles)
		}
	}

	// Compute stage: every distinct candidate plan, first-occurrence
	// order, each (plan, shard) simulated exactly once; merge + verify
	// once per plan.
	planIndex := make(map[query.Plan]int)
	var plans []query.Plan
	for _, cs := range cands {
		for _, c := range cs {
			if _, ok := planIndex[c.plan]; !ok {
				planIndex[c.plan] = len(plans)
				plans = append(plans, c.plan)
			}
		}
	}
	byPlan, err := f.runPlanSet(plans, opt)
	if err != nil {
		return nil, err
	}
	planResp := make([]*Response, len(plans))
	for pi, p := range plans {
		resp, err := f.merge(Request{Plan: p}, byPlan[pi])
		if err != nil {
			return nil, fmt.Errorf("serve: plan %s: %w", p, err)
		}
		planResp[pi] = resp
	}

	// Virtual-time replay, single-threaded.
	r := &Report{
		Mode:    spec.Mode.String(),
		Shards:  len(f.shards),
		Rows:    f.whole.N,
		Offered: offered,
		Pools:   make([]PoolStats, len(f.pools)),
	}
	for i, a := range f.pools {
		r.Pools[i] = PoolStats{Pool: i, Arch: a.String()}
	}
	if opt.Exec == sweep.ExecEstimate {
		r.ExecMode = opt.Exec.String()
	}
	// Counter totals sum each distinct (plan, shard) simulation once —
	// replica pools share the memoised runs, so per-request summing
	// would double-count them.
	if opt.Counters {
		r.Counters = sumPlanCounters(byPlan)
	}
	var tr *obs.Trace
	if opt.Trace {
		tr = obs.NewTrace()
		tr.NameProcess(0, "requests")
		for pi, a := range f.pools {
			tr.NameProcess(1+pi, fmt.Sprintf("pool %d (%s)", pi, a))
			for s := range f.shards {
				tr.NameThread(1+pi, s, fmt.Sprintf("shard %d", s))
			}
		}
	}
	rp := &fleetReplay{
		fleet:     f,
		report:    r,
		classes:   classes,
		accums:    newClassAccums(classes),
		shed:      spec.Shed,
		planIndex: planIndex,
		byPlan:    byPlan,
		planResp:  planResp,
		poolFree:  make([][]uint64, len(f.pools)),
		tr:        tr,
	}
	// Adaptive routing state is built fresh per load test from the spec:
	// the replay is single-threaded, so observations fold in arrival
	// order and the report is byte-identical at any worker count.
	if spec.Adaptive != nil {
		ad, err := cost.NewAdaptive(*spec.Adaptive)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		rp.ad = ad
	}
	for i := range rp.poolFree {
		rp.poolFree[i] = make([]uint64, len(f.shards))
	}
	// Fault injection and the recovery policy switch the replay onto the
	// dispatchRecover path; without either, the legacy dispatch runs
	// untouched and reports stay byte-identical to the pre-fault layer.
	if spec.Faults != nil {
		inj, err := fault.New(*spec.Faults, len(f.pools), len(f.shards))
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		rp.inj = inj
	}
	rp.rec = spec.Recovery
	if rp.recovering() {
		rp.fstats = &FaultStats{}
		rp.slow = make([]float64, len(f.pools))
		for i := range rp.slow {
			rp.slow[i] = 1
		}
		rp.done = make([]bool, len(f.shards))
	}
	dispatch := rp.dispatch
	if rp.recovering() {
		dispatch = rp.dispatchRecover
	}
	switch spec.Mode {
	case Open:
		for i := range reqs {
			if _, err := dispatch(i, -1, arrivalTimes[i], reqs[i], cands[i]); err != nil {
				return nil, err
			}
		}
	case Closed:
		concurrency := spec.Concurrency
		if concurrency > len(reqs) {
			concurrency = len(reqs)
		}
		clientFree := make([]uint64, concurrency)
		for i := range reqs {
			// The next issue slot is the earliest-free client; ties break
			// on client index, keeping the replay fully deterministic.
			client := 0
			for cl := 1; cl < concurrency; cl++ {
				if clientFree[cl] < clientFree[client] {
					client = cl
				}
			}
			tr, err := dispatch(i, client, clientFree[client], reqs[i], cands[i])
			if err != nil {
				return nil, err
			}
			clientFree[client] = tr.Completion
		}
		r.Concurrency = concurrency
	}
	r.Trace = tr
	r.finish()
	r.finishFleet(rp.accums)
	if rp.fstats != nil {
		r.Faults = rp.fstats
		r.Degraded = rp.fstats.Degraded
		if opt.Counters && r.Counters != nil {
			r.Counters.Add(rp.fstats.recoveryCounters(r.Shed))
		}
	}
	if rp.ad != nil && opt.Counters && r.Counters != nil {
		r.Counters.Add(obs.NewCounters(map[string]uint64{
			"serve.adaptive_routed":       rp.adRouted,
			"serve.adaptive_explored":     rp.adExplored,
			"serve.adaptive_observations": rp.adObserved,
		}))
	}
	return r, nil
}

// fleetReplay is the single-threaded virtual-time state of one fleet
// load test.
type fleetReplay struct {
	fleet     *Fleet
	report    *Report
	classes   []ClassSpec
	accums    []classAccum
	shed      bool
	planIndex map[query.Plan]int
	byPlan    [][]ShardPartial
	planResp  []*Response
	// poolFree is each replica pool's per-shard free time, in virtual
	// cycles — the router's queue-depth signal and the FIFO state.
	poolFree [][]uint64
	// tr records the request span tree when tracing is on (nil when
	// off). The replay is single-threaded, so recording is race-free
	// and byte-deterministic.
	tr *obs.Trace

	// ad is the per-run adaptive routing state (LoadSpec.Adaptive); nil
	// keeps routing fully static and the replay byte-identical to the
	// pre-adaptive layer. adRouted/adExplored/adObserved total the
	// feedback loop's events for the serve.* counter roll-up.
	ad         *cost.Adaptive
	adRouted   uint64
	adExplored uint64
	adObserved uint64

	// Fault/recovery state (recovery.go); all nil on the legacy path.
	// inj injects the scheduled faults; rec is the recovery policy;
	// fstats totals fault events and recovery actions; slow is the
	// per-pool observed-slowdown EWMA the failover router penalises
	// stragglers by; done is dispatchRecover's per-shard first-completion
	// scratch (coverage accounting).
	inj    *fault.Injector
	rec    *RecoverySpec
	fstats *FaultStats
	slow   []float64
	done   []bool
}

// dispatch routes and queues one arrival. A shed request produces a
// zero trace (and false-equivalent Completion) but is fully accounted
// in the report; a served request's trace lands in report.Requests.
func (rp *fleetReplay) dispatch(index, client int, arrival uint64, req Request, cands []fleetCand) (RequestTrace, error) {
	// Each candidate's queue penalty is the critical-path backlog its
	// replica would impose on this arrival: the worst per-shard excess
	// of free time over the arrival cycle.
	queue := make([]float64, len(cands))
	var minBacklog uint64
	for ci, c := range cands {
		var backlog uint64
		for _, free := range rp.poolFree[c.pool] {
			if free > arrival && free-arrival > backlog {
				backlog = free - arrival
			}
		}
		queue[ci] = float64(backlog)
		if ci == 0 || backlog < minBacklog {
			minBacklog = backlog
		}
	}
	acc := &rp.accums[req.Class]
	acc.row.Offered++
	spec := rp.classes[req.Class]
	if rp.shed && spec.PatienceCycles > 0 && minBacklog > spec.PatienceCycles {
		acc.row.Shed++
		rp.report.Shed++
		rp.report.ShedRequests = append(rp.report.ShedRequests, ShedTrace{
			Index: index, Class: req.Class, Arrival: arrival, QueueCycles: minBacklog,
		})
		if rp.tr.On() {
			rp.tr.Instant("shed", "admission", 0, 0, arrival,
				obs.Arg{Key: "class", Val: spec.Name},
				obs.Arg{Key: "backlog_cycles", Val: strconv.FormatUint(minBacklog, 10)})
		}
		return RequestTrace{}, nil
	}

	d, chosen, err := rp.fleet.route(rp.ad, index, cands, queue)
	if err != nil {
		return RequestTrace{}, fmt.Errorf("serve: request %d: %w", index, err)
	}
	if rp.ad != nil {
		rp.adRouted++
		if d.Explored {
			rp.adExplored++
		}
	}
	pi := rp.planIndex[chosen.plan]
	parts := rp.byPlan[pi]
	free := rp.poolFree[chosen.pool]
	pool := &rp.report.Pools[chosen.pool]
	// The request's span tree: async span on the router track (pid 0),
	// a routing instant carrying the pick and candidate count, shard
	// tasks on the chosen pool's track (pid 1+pool, tid = shard).
	var reqName string
	if rp.tr.On() {
		reqName = fmt.Sprintf("q%d %s", index, chosen.plan.Arch)
		rp.tr.Begin(reqName, "request", 0, index, arrival,
			obs.Arg{Key: "class", Val: spec.Name})
		rp.tr.Instant("route", "routing", 0, 0, arrival,
			obs.Arg{Key: "pool", Val: strconv.Itoa(chosen.pool)},
			obs.Arg{Key: "arch", Val: rp.fleet.pools[chosen.pool].String()},
			obs.Arg{Key: "candidates", Val: strconv.Itoa(len(cands))},
			obs.Arg{Key: "queue_cycles", Val: strconv.FormatUint(uint64(queue[d.ChosenIndex]), 10)})
	}
	var completion uint64
	for s, p := range parts {
		start := arrival
		if free[s] > start {
			start = free[s]
		}
		end := start + p.Cycles
		free[s] = end
		pool.Tasks++
		pool.BusyCycles += p.Cycles
		if end > completion {
			completion = end
		}
		if rp.tr.On() {
			rp.tr.Complete(reqName, "shard", 1+chosen.pool, s, start, end,
				obs.Arg{Key: "matches", Val: strconv.Itoa(p.Matches)})
		}
	}
	pool.Requests++
	if rp.tr.On() {
		rp.tr.Instant("merge", "merge", 0, 0, completion,
			obs.Arg{Key: "matches", Val: strconv.Itoa(rp.planResp[pi].Matches)})
		rp.tr.End(reqName, "request", 0, index, completion,
			obs.Arg{Key: "latency_cycles", Val: strconv.FormatUint(completion-arrival, 10)})
	}
	resp := rp.planResp[pi]
	latency := completion - arrival
	acc.observe(latency, spec.SLOCycles > 0)
	rp.observeAdaptive(d, chosen, float64(resp.Cycles))
	tr := RequestTrace{
		Index:   index,
		Client:  client,
		Plan:    chosen.plan,
		Routing: d,
		Class:   req.Class,
		Pool: &PoolPick{
			Pool: chosen.pool, Arch: rp.fleet.pools[chosen.pool].String(),
			QueueCycles: uint64(queue[d.ChosenIndex]), EstCycles: chosen.est.Cycles,
		},
		Arrival:    arrival,
		Completion: completion,
		Latency:    latency,
		Service:    resp.Cycles,
		Work:       resp.WorkCycles,
		Matches:    resp.Matches,
		Revenue:    resp.Revenue,
	}
	rp.report.Requests = append(rp.report.Requests, tr)
	return tr, nil
}

// adaptiveInputs computes the per-candidate blended observed cycles
// and bucket sample counts for one routing decision. Nil, nil when
// adaptive routing is off, which keeps static ranking byte-identical.
func (rp *fleetReplay) adaptiveInputs(cands []fleetCand) ([]float64, []uint64) {
	if rp.ad == nil {
		return nil, nil
	}
	obsCycles := make([]float64, len(cands))
	samples := make([]uint64, len(cands))
	for i, c := range cands {
		blended, _, n := rp.ad.Blended(c.plan.Kind, c.plan.Arch, c.sel, c.est.Cycles)
		if n > 0 {
			obsCycles[i] = blended
		}
		samples[i] = n
	}
	return obsCycles, samples
}

// adaptivePick finalises one adaptive decision: records the bucket
// sample counts and applies the deterministic exploration floor. An
// exploration draw that lands on a down replica is dropped rather than
// redirected, so the draw stays a pure function of (seed, index).
func (rp *fleetReplay) adaptivePick(d *cost.Decision, index int, health []cost.Health, samples []uint64) {
	if rp.ad == nil {
		return
	}
	d.BucketSamples = samples
	rp.adRouted++
	if j, ok := rp.ad.ExplorePick(index, len(d.Estimates)); ok && (health == nil || !health[j].Down) {
		d.ChosenIndex = j
		d.Chosen = d.Estimates[j].Plan
		d.Explored = true
		rp.adExplored++
	}
}

// observeAdaptive closes the feedback loop for one completed request:
// the chosen backend's (kind, selectivity-bucket) cell absorbs the
// observed nominal service cycles. Fault-driven inflation stays out of
// the cells on purpose — the slowdown EWMA and health-aware routing
// already carry it — so adaptive state converges on the workload, not
// on transient faults.
func (rp *fleetReplay) observeAdaptive(d *cost.Decision, chosen fleetCand, cycles float64) {
	if rp.ad == nil || d == nil {
		return
	}
	rp.ad.Observe(chosen.plan.Kind, chosen.plan.Arch, chosen.sel, cycles)
	rp.adObserved++
}

// finishFleet derives the fleet-only aggregates: per-class rows and
// per-pool utilisation (each pool runs len(shards) engines, so its
// denominator is makespan x shards).
func (r *Report) finishFleet(accums []classAccum) {
	for i := range accums {
		r.Classes = append(r.Classes, accums[i].finish())
	}
	if r.MakespanCycles > 0 && r.Shards > 0 {
		denom := float64(r.MakespanCycles) * float64(r.Shards)
		for i := range r.Pools {
			r.Pools[i].Utilisation = float64(r.Pools[i].BusyCycles) / denom
		}
	}
}
