package serve

import (
	"sync"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

const testRows = 512

func testTable() *db.Table { return db.Generate(testRows, 42) }

// TestShardedAnswersExactAcrossShardCounts is the tentpole acceptance
// check: for every architecture (including the HIPE in-memory
// aggregation plan), the merged match count and revenue equal the
// unsharded reference evaluator's at shard counts {1, 2, 4, 8}.
func TestShardedAnswersExactAcrossShardCounts(t *testing.T) {
	tab := testTable()
	q := db.DefaultQ06()
	ref := db.Reference(tab, q)
	plans := []query.Plan{
		DefaultPlan(query.X86, q),
		DefaultPlan(query.HMC, q),
		DefaultPlan(query.HIVE, q),
		DefaultPlan(query.HIPE, q),
	}
	agg := DefaultPlan(query.HIPE, q)
	agg.Aggregate = true
	plans = append(plans, agg)

	for _, nShards := range []int{1, 2, 4, 8} {
		c, err := New(sweep.Default(), tab, nShards)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plans {
			resp, err := c.Query(Request{Plan: p}, Options{})
			if err != nil {
				t.Fatalf("shards=%d plan=%s: %v", nShards, p, err)
			}
			if resp.Matches != ref.Matches {
				t.Fatalf("shards=%d plan=%s: matches %d, reference %d",
					nShards, p, resp.Matches, ref.Matches)
			}
			if resp.Revenue != ref.Revenue {
				t.Fatalf("shards=%d plan=%s: revenue %d, reference %d",
					nShards, p, resp.Revenue, ref.Revenue)
			}
			if len(resp.Shards) != nShards {
				t.Fatalf("shards=%d: %d partials", nShards, len(resp.Shards))
			}
			// Cycles is the slowest shard; WorkCycles the sum.
			var maxC, sumC uint64
			var sumMatches int
			for _, sp := range resp.Shards {
				sumC += sp.Cycles
				sumMatches += sp.Matches
				if sp.Cycles > maxC {
					maxC = sp.Cycles
				}
			}
			if resp.Cycles != maxC || resp.WorkCycles != sumC {
				t.Fatalf("shards=%d plan=%s: cycle accounting wrong: %+v", nShards, p, resp)
			}
			if sumMatches != resp.Matches {
				t.Fatalf("shards=%d plan=%s: partial cardinalities do not sum", nShards, p)
			}
		}
	}
}

// TestSingleShardMatchesSweepRun pins the shard runner to the sweep
// engine's single-run machinery: a 1-shard cluster query costs exactly
// the cycles of a whole-table sweep run (the shard-sized image changes
// no addresses or timing).
func TestSingleShardMatchesSweepRun(t *testing.T) {
	tab := testTable()
	cfg := sweep.Default()
	plan := DefaultPlan(query.HIPE, db.DefaultQ06())

	res, err := cfg.Run(tab, plan)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(Request{Plan: plan}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cycles != res.Cycles {
		t.Fatalf("1-shard cluster %d cycles, sweep run %d", resp.Cycles, res.Cycles)
	}
}

func TestConcurrentQueriesAreSafeAndExact(t *testing.T) {
	tab := testTable()
	c, err := New(sweep.Default(), tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed-selectivity predicates from concurrent callers: the race
	// detector gates the reference cache and executor pool here.
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		q := db.DefaultQ06()
		q.QtyHi = int32(10 + 5*i)
		wg.Add(1)
		go func(q db.Q06) {
			defer wg.Done()
			resp, err := c.Query(Request{Plan: DefaultPlan(query.HIPE, q)}, Options{Workers: 2})
			if err != nil {
				errc <- err
				return
			}
			if want := db.Reference(tab, q).Matches; resp.Matches != want {
				errc <- errMismatch(resp.Matches, want)
			}
		}(q)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type errMismatchT struct{ got, want int }

func errMismatch(got, want int) error { return errMismatchT{got, want} }
func (e errMismatchT) Error() string  { return "match count mismatch" }

func TestAdmitRejectsInvalidPlans(t *testing.T) {
	c, err := New(sweep.Default(), testTable(), 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := query.Plan{Arch: query.X86, Strategy: query.ColumnAtATime,
		OpSize: 256, Unroll: 1, Q: db.DefaultQ06()}
	if _, err := c.Query(Request{Plan: bad}, Options{}); err == nil {
		t.Fatal("x86/256B plan admitted")
	}
}

func TestNewRejectsBadShardCounts(t *testing.T) {
	tab := testTable()
	if _, err := New(sweep.Default(), tab, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := New(sweep.Default(), tab, testRows/64+1); err == nil {
		t.Fatal("more shards than 64-row blocks accepted")
	}
	rows := (&Cluster{whole: tab, shards: []*db.Table{tab}}).Rows()
	if rows != testRows {
		t.Fatalf("rows %d", rows)
	}
}

func TestShardRows(t *testing.T) {
	c, err := New(sweep.Default(), testTable(), 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range c.ShardRows() {
		if n%64 != 0 {
			t.Fatalf("shard rows %d not a multiple of 64", n)
		}
		total += n
	}
	if total != testRows || c.Shards() != 3 {
		t.Fatalf("shards cover %d rows across %d shards", total, c.Shards())
	}
}
