package serve

import (
	"bytes"
	"runtime"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

func testCluster(t *testing.T, nShards int) *Cluster {
	t.Helper()
	c, err := New(sweep.Default(), testTable(), nShards)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testStream(t *testing.T, n int) []Request {
	t.Helper()
	reqs, err := StreamSpec{N: n, Seed: 7, Aggregate: true}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestStreamSpecDeterministicAndMixed(t *testing.T) {
	a := testStream(t, 16)
	b := testStream(t, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical specs", i)
		}
	}
	// Architectures cycle round-robin; quantity bounds stay in the set.
	seenQty := map[int32]bool{}
	for i, r := range a {
		if want := []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE}[i%4]; r.Plan.Arch != want {
			t.Fatalf("request %d arch %s, want %s", i, r.Plan.Arch, want)
		}
		if r.Plan.Arch == query.HIPE && !r.Plan.Aggregate {
			t.Fatalf("request %d: HIPE request not upgraded to aggregation", i)
		}
		seenQty[r.Plan.Q.QtyHi] = true
	}
	if len(seenQty) < 2 {
		t.Fatal("stream is not selectivity-mixed")
	}
	if _, err := (StreamSpec{N: 0}).Requests(); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestReportDeterministicAcrossWorkerCounts is the satellite acceptance
// check: a load-test report — CSV and JSON — is byte-identical at 1, 2,
// 8 and GOMAXPROCS executor workers, for both load disciplines.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	c := testCluster(t, 4)
	reqs := testStream(t, 8)
	specs := map[string]LoadSpec{
		"open":   OpenLoop(reqs, 200000, 0, 99),
		"closed": ClosedLoop(reqs, 3),
	}
	for name, spec := range specs {
		var wantCSV, wantJSON []byte
		for _, workers := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
			r, err := c.LoadTest(spec, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			var csvBuf, jsonBuf bytes.Buffer
			if err := r.WriteCSV(&csvBuf); err != nil {
				t.Fatal(err)
			}
			if err := r.WriteJSON(&jsonBuf); err != nil {
				t.Fatal(err)
			}
			if wantCSV == nil {
				wantCSV, wantJSON = csvBuf.Bytes(), jsonBuf.Bytes()
				continue
			}
			if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
				t.Fatalf("%s: CSV differs at %d workers", name, workers)
			}
			if !bytes.Equal(jsonBuf.Bytes(), wantJSON) {
				t.Fatalf("%s: JSON differs at %d workers", name, workers)
			}
		}
	}
}

func TestOpenLoopTimeline(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 6)
	// Huge interarrival gaps: the fleet is idle at each arrival, so
	// every latency must equal the request's idle-fleet service time.
	idle, err := c.LoadTest(OpenLoop(reqs, 1<<40, 0, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range idle.Requests {
		if tr.Latency != tr.Service {
			t.Fatalf("idle fleet queued: request %d latency %d, service %d",
				tr.Index, tr.Latency, tr.Service)
		}
		if tr.Client != -1 {
			t.Fatalf("open-loop trace carries client %d", tr.Client)
		}
	}
	// Back-to-back arrivals: queueing must push tail latency above the
	// idle fleet's.
	slam, err := c.LoadTest(OpenLoop(reqs, 1, 0, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slam.LatencyP99 <= idle.LatencyP99 {
		t.Fatalf("overload P99 %d not above idle P99 %d", slam.LatencyP99, idle.LatencyP99)
	}
	if slam.MakespanCycles >= idle.MakespanCycles {
		t.Fatal("overloaded makespan should be shorter than the idle-spread one")
	}
}

func TestClosedLoopTimeline(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 9)
	r, err := c.LoadTest(ClosedLoop(reqs, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Concurrency != 3 || r.Completed != 9 || r.Offered != 9 {
		t.Fatalf("report header wrong: %+v", r)
	}
	// Each client keeps exactly one request outstanding: its next
	// arrival is its previous completion, and arrivals are globally
	// nondecreasing.
	lastCompletion := map[int]uint64{}
	var prevArrival uint64
	for _, tr := range r.Requests {
		if tr.Arrival < prevArrival {
			t.Fatalf("request %d arrives before its predecessor", tr.Index)
		}
		prevArrival = tr.Arrival
		if c, ok := lastCompletion[tr.Client]; ok && tr.Arrival != c {
			t.Fatalf("client %d: arrival %d != previous completion %d", tr.Client, tr.Arrival, c)
		}
		lastCompletion[tr.Client] = tr.Completion
		if tr.Latency != tr.Completion-tr.Arrival {
			t.Fatalf("request %d latency inconsistent", tr.Index)
		}
	}
	// Shard accounting: every request visits every shard; busy cycles
	// fit inside the makespan.
	for _, s := range r.PerShard {
		if s.Tasks != len(reqs) {
			t.Fatalf("shard %d served %d of %d tasks", s.Shard, s.Tasks, len(reqs))
		}
		if s.BusyCycles > r.MakespanCycles {
			t.Fatalf("shard %d busy %d beyond makespan %d", s.Shard, s.BusyCycles, r.MakespanCycles)
		}
		if s.Utilisation <= 0 || s.Utilisation > 1 {
			t.Fatalf("shard %d utilisation %f", s.Shard, s.Utilisation)
		}
	}
	if r.ThroughputRPMC <= 0 || r.LatencyP50 == 0 || r.LatencyMax < r.LatencyP50 {
		t.Fatalf("degenerate aggregate figures: %+v", r)
	}
	// More clients must not lower throughput on this saturated fleet.
	r1, err := c.LoadTest(ClosedLoop(reqs, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MakespanCycles > r1.MakespanCycles {
		t.Fatalf("3 clients slower (%d) than 1 client (%d)", r.MakespanCycles, r1.MakespanCycles)
	}
}

func TestOpenLoopDurationTruncatesStream(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 8)
	full, err := c.LoadTest(OpenLoop(reqs, 1000, 0, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cut the duration at the 4th arrival: the tail must be dropped but
	// still counted as offered.
	cut := full.Requests[3].Arrival
	r, err := c.LoadTest(OpenLoop(reqs, 1000, cut, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 3 || r.Offered != 8 {
		t.Fatalf("completed %d offered %d, want 3/8", r.Completed, r.Offered)
	}
	if _, err := c.LoadTest(OpenLoop(reqs, 1000, 1, 3), Options{}); err == nil {
		t.Fatal("duration admitting no request should error")
	}
}

func TestLoadSpecValidation(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 4)
	cases := []LoadSpec{
		{},
		OpenLoop(reqs, 0, 0, 1),
		ClosedLoop(reqs, 0),
		{Requests: reqs, Mode: Mode(9)},
	}
	for i, spec := range cases {
		if _, err := c.LoadTest(spec, Options{}); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
	bad := reqs
	bad[0].Plan.OpSize = 7
	if _, err := c.LoadTest(ClosedLoop(bad, 1), Options{}); err == nil {
		t.Fatal("invalid request admitted into load test")
	}
}

func TestLoadTestProgressCallback(t *testing.T) {
	c := testCluster(t, 2)
	reqs := testStream(t, 4)
	var calls, lastDone, total int
	_, err := c.LoadTest(ClosedLoop(reqs, 2), Options{
		Workers: 2,
		OnTask: func(done, tot int) {
			calls++
			lastDone, total = done, tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One simulation per distinct (plan, shard) pair.
	distinct := map[query.Plan]bool{}
	for _, r := range reqs {
		distinct[r.Plan] = true
	}
	want := len(distinct) * c.Shards()
	if calls != want || lastDone != want || total != want {
		t.Fatalf("progress: %d calls, last %d/%d, want %d", calls, lastDone, total, want)
	}
}

func TestLoadTestMemoisesRepeatedPlans(t *testing.T) {
	c := testCluster(t, 2)
	// The same plan issued five times must simulate once per shard, yet
	// the timeline still schedules every request.
	req := Request{Plan: DefaultPlan(query.HIPE, db.DefaultQ06())}
	reqs := []Request{req, req, req, req, req}
	var tasks int
	r, err := c.LoadTest(ClosedLoop(reqs, 2), Options{
		OnTask: func(done, total int) { tasks = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	if tasks != c.Shards() {
		t.Fatalf("%d simulations for 1 distinct plan on %d shards", tasks, c.Shards())
	}
	if r.Completed != len(reqs) || r.PerShard[0].Tasks != len(reqs) {
		t.Fatalf("memoisation leaked into scheduling: %+v", r)
	}
	// Identical requests have identical service times; a lone client
	// therefore sees identical latencies.
	solo, err := c.LoadTest(ClosedLoop(reqs, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range solo.Requests {
		if tr.Latency != solo.Requests[0].Latency {
			t.Fatalf("identical requests served with different latencies: %+v", solo.Requests)
		}
	}
}

func TestQueryProgressCallback(t *testing.T) {
	c := testCluster(t, 4)
	var calls, total int
	_, err := c.Query(Request{Plan: DefaultPlan(query.HIPE, db.DefaultQ06())}, Options{
		OnTask: func(done, tot int) {
			calls++
			total = tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != c.Shards() || total != c.Shards() {
		t.Fatalf("query progress %d calls of %d, want %d", calls, total, c.Shards())
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	c := testCluster(t, 2)
	r, err := c.LoadTest(ClosedLoop(testStream(t, 4), 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Completed != r.Completed || back.LatencyP99 != r.LatencyP99 ||
		len(back.Requests) != len(r.Requests) {
		t.Fatal("JSON round trip lost data")
	}
	if s := r.Summary(); len(s) == 0 || !bytes.Contains([]byte(s), []byte("latency p50/p95/p99")) {
		t.Fatalf("summary malformed:\n%s", s)
	}
}
