package serve

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// TestAutoQueryRoutesAndVerifies: an ArchAuto request resolves to a
// registered backend, executes, verifies against the reference, and
// carries the full routing decision in the response.
func TestAutoQueryRoutesAndVerifies(t *testing.T) {
	tab := db.GenerateClusteredMemo(1024, 42, 10)
	c, err := New(sweep.Default(), tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Plan: DefaultPlan(ArchAuto, db.DefaultQ06())}
	resp, err := c.Query(req, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Routing == nil {
		t.Fatal("auto response carries no routing decision")
	}
	if resp.Request.Plan.Auto() {
		t.Fatal("auto request was not resolved")
	}
	if _, ok := query.BackendFor(resp.Request.Plan.Arch); !ok {
		t.Fatalf("resolved to unregistered arch %s", resp.Request.Plan.Arch)
	}
	if resp.Request.Plan != resp.Routing.Chosen {
		t.Errorf("executed plan %s differs from routing decision %s",
			resp.Request.Plan, resp.Routing.Chosen)
	}
	if len(resp.Routing.Estimates) < 2 {
		t.Errorf("routing decision holds %d candidate estimates, want several", len(resp.Routing.Estimates))
	}
	// The answer must be the verified whole-table answer regardless of
	// which backend served it.
	ref := db.Reference(tab, db.DefaultQ06())
	if resp.Matches != ref.Matches || resp.Revenue != ref.Revenue {
		t.Errorf("routed answer (%d, %d) differs from reference (%d, %d)",
			resp.Matches, resp.Revenue, ref.Matches, ref.Revenue)
	}
	// A fixed-architecture request must carry no routing decision.
	fixed, err := c.Query(Request{Plan: DefaultPlan(query.HIPE, db.DefaultQ06())}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Routing != nil {
		t.Error("fixed-arch response unexpectedly carries a routing decision")
	}
}

// TestAutoRoutingDeterministicAcrossWorkers: an auto-routed load test's
// CSV report — routing-decision columns included — is byte-identical
// at 1 worker and at many.
func TestAutoRoutingDeterministicAcrossWorkers(t *testing.T) {
	tab := db.GenerateClusteredMemo(1024, 42, 10)
	reqs, err := StreamSpec{N: 12, Seed: 7, Archs: []query.Arch{ArchAuto}, Q1Every: 4}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		// A fresh cluster per worker count: the route cache must not
		// leak determinism between runs for the comparison to mean
		// anything.
		cl, err := New(sweep.Default(), tab, 2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.LoadTest(ClosedLoop(reqs, 3), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := render(1)
	many := render(8)
	if one != many {
		t.Fatal("auto-routed CSV reports differ between 1 and 8 workers")
	}
	header := strings.SplitN(one, "\n", 2)[0]
	for _, col := range RoutingCSVHeader() {
		if !strings.Contains(header, col) {
			t.Errorf("routed report header %q missing column %q", header, col)
		}
	}
}

// TestRoutingColumnsOnlyWhenRouted: fixed-architecture reports keep the
// pre-planner schema byte for byte.
func TestRoutingColumnsOnlyWhenRouted(t *testing.T) {
	tab := db.GenerateMemo(1024, 42)
	c, err := New(sweep.Default(), tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := StreamSpec{N: 4, Seed: 7, Archs: []query.Arch{query.HIPE}}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.LoadTest(ClosedLoop(reqs, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if strings.Contains(header, "routed") {
		t.Errorf("fixed-arch report header gained routing columns: %q", header)
	}
	if rep.HasRouting() {
		t.Error("fixed-arch report claims routed requests")
	}
}

// TestAutoResolutionRespectsShardEnvelope: when the shards are too
// large for the engine backends' Q01 accumulator bound, the router must
// resolve among the remaining backends instead of failing.
func TestAutoResolutionRespectsShardEnvelope(t *testing.T) {
	// 1 shard × 16384 rows at 256 B ops: 256 chunks — fine for the
	// engines. Validate the small case resolves to SOME backend, then
	// check the oversized case trims them.
	small := db.GenerateMemo(1024, 42)
	c, err := New(sweep.Default(), small, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Plan: DefaultQ1Plan(ArchAuto, db.DefaultQ01())}
	resolved, d, err := c.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Plan.Auto() || d == nil {
		t.Fatal("Q1 auto request did not resolve")
	}
	// An engine plan needs chunks <= 2025; 64-tuple chunks put the
	// limit at 129600 rows. A 132096-row single shard excludes HIVE
	// and HIPE, so resolution must land on x86 or HMC.
	big := db.GenerateMemo(132096, 42)
	cBig, err := New(sweep.Default(), big, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, dBig, err := cBig.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range dBig.Estimates {
		if est.Plan.Arch == query.HIVE || est.Plan.Arch == query.HIPE {
			t.Errorf("oversized shard still offered engine candidate %s", est.Plan)
		}
	}
	if a := dBig.Chosen.Arch; a != query.X86 && a != query.HMC {
		t.Errorf("oversized shard routed to %s, want x86 or hmc", a)
	}
}

// TestRoutedBackendMatchesMeasuredFastest is the serving-layer
// acceptance gate: across a selectivity sweep grid on the cluster, the
// backend the ArchAuto router picks must match the backend with the
// lowest measured service time on at least 90% of cells.
func TestRoutedBackendMatchesMeasuredFastest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the selectivity grid on the cluster")
	}
	// 1024-row shards: the scale the cost model is calibrated at. At
	// toy shard sizes (a few hundred rows) fixed overheads dominate and
	// near-ties between the engine backends flip below the model's
	// resolution.
	tab := db.GenerateClusteredMemo(4096, 42, 10)
	c, err := New(sweep.Default(), tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Workers: 4}
	archs := []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE}

	type cell struct {
		auto  Request
		fixed func(query.Arch) Request
	}
	var cells []cell
	base := db.DefaultQ06()
	for _, qty := range []int32{1, 10, 24, 50} {
		q := base
		q.QtyHi = qty
		cells = append(cells, cell{
			auto:  Request{Plan: DefaultPlan(ArchAuto, q)},
			fixed: func(a query.Arch) Request { return Request{Plan: DefaultPlan(a, q)} },
		})
	}
	wide := db.Q06{ShipLo: 0, ShipHi: db.ShipDateDays, DiscLo: 0, DiscHi: 10, QtyHi: 51}
	cells = append(cells, cell{
		auto:  Request{Plan: DefaultPlan(ArchAuto, wide)},
		fixed: func(a query.Arch) Request { return Request{Plan: DefaultPlan(a, wide)} },
	})
	for _, cut := range []int32{100, 800, 1800, 2556} {
		q := db.Q01{ShipCut: cut}
		cells = append(cells, cell{
			auto:  Request{Plan: DefaultQ1Plan(ArchAuto, q)},
			fixed: func(a query.Arch) Request { return Request{Plan: DefaultQ1Plan(a, q)} },
		})
	}

	agree := 0
	for i, cl := range cells {
		resp, err := c.Query(cl.auto, opt)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		var bestArch query.Arch
		var bestCycles uint64
		for _, a := range archs {
			r, err := c.Query(cl.fixed(a), opt)
			if err != nil {
				t.Fatalf("cell %d arch %s: %v", i, a, err)
			}
			if bestCycles == 0 || r.Cycles < bestCycles {
				bestCycles, bestArch = r.Cycles, a
			}
		}
		if resp.Request.Plan.Arch == bestArch {
			agree++
		} else {
			t.Logf("cell %d: routed to %s, measured best %s (%d cycles)",
				i, resp.Request.Plan.Arch, bestArch, bestCycles)
		}
	}
	frac := float64(agree) / float64(len(cells))
	t.Logf("cluster routing agreement: %d/%d = %.0f%%", agree, len(cells), 100*frac)
	if frac < 0.9 {
		t.Errorf("router matched the measured-fastest backend on %.0f%% of cells, want >= 90%%", 100*frac)
	}
}
