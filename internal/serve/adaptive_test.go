package serve

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// misCalibrate skews the cost model so the processor path looks k×
// cheaper and the engine path k× dearer than calibration (or the
// reverse), without touching the simulator — the shape of model drift
// the feedback loop exists to absorb.
func misCalibrate(p cost.Params, k float64, cheapCPU bool) cost.Params {
	up, down := k, 1/k
	if !cheapCPU {
		up, down = down, up
	}
	p.EngineSlot *= up
	p.EngineMem *= up
	p.SquashPipelined *= up
	p.SquashSerial *= up
	p.PredPipelined *= up
	p.PredSerial *= up
	p.HMCRoundTripBase *= up
	p.HMCRoundTripPerB *= up
	p.CacheMiss *= down
	p.CPUOp *= down
	p.CPUVecOp *= down
	p.MispredictPenalty *= down
	return p
}

// resetEstimates drops the fleet's cached analytic priors so a params
// change takes effect.
func (f *Fleet) resetEstimates() {
	f.estMu.Lock()
	f.ests = make(map[query.Plan]poolEstimate)
	f.estMu.Unlock()
}

func sumService(rep *Report) uint64 {
	var total uint64
	for i := range rep.Requests {
		total += rep.Requests[i].Service
	}
	return total
}

// TestFleetAdaptiveBeatsStaticWhenMisCalibrated is the PR's acceptance
// pin: on a clustered panel whose cost model is deliberately
// mis-calibrated — the analytically "cheapest" pool is measurably the
// slowest — feedback-driven routing must strictly reduce both the total
// replay cycles and the premium class's P99 latency versus static
// ArchAuto routing, because the observed-cycles EWMA overrides the
// wrong prior within a few samples while static routing keeps paying
// for it on every request.
func TestFleetAdaptiveBeatsStaticWhenMisCalibrated(t *testing.T) {
	tab := db.GenerateClusteredMemo(512, 42, 10)
	f, err := NewFleet(sweep.Default(), tab, 2, []query.Arch{query.HIPE, query.X86})
	if err != nil {
		t.Fatal(err)
	}
	q := db.DefaultQ06()

	// Measure each pool's real idle critical path for the panel shape.
	measure := func(arch query.Arch) float64 {
		t.Helper()
		resp, err := f.Query(Request{Plan: DefaultPlan(arch, q)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(resp.Cycles)
	}
	rHIPE, rX86 := measure(query.HIPE), measure(query.X86)
	fastArch, slowArch, rFast, rSlow := query.HIPE, query.X86, rHIPE, rX86
	if rX86 < rHIPE {
		fastArch, slowArch, rFast, rSlow = query.X86, query.HIPE, rX86, rHIPE
	}
	if rSlow < 1.5*rFast {
		t.Fatalf("panel pools too close to separate: %s %.0f vs %s %.0f cycles",
			fastArch, rFast, slowArch, rSlow)
	}
	planFast := DefaultPlan(fastArch, q)
	planSlow := DefaultPlan(slowArch, q)

	// Mis-calibrate: walk the distortion ladder until the model ranks
	// the slow pool cheapest (static mispicks it on every request) while
	// the feedback loop can still recover — the slow pool's blended
	// estimate crosses the fast pool's wrong prior within a dozen
	// samples, and the fast pool's warmed estimate keeps the flip.
	truth := f.params
	calibrated := false
	for _, k := range []float64{1.5, 2, 3, 4, 6, 9, 13, 20} {
		cand := misCalibrate(truth, k, slowArch == query.X86)
		eFast, _, err := cost.EstimateSharded(cand, f.shards, planFast)
		if err != nil {
			t.Fatal(err)
		}
		eSlow, _, err := cost.EstimateSharded(cand, f.shards, planSlow)
		if err != nil {
			t.Fatal(err)
		}
		mispicks := eSlow.Cycles < eFast.Cycles
		canFlip := (4*eSlow.Cycles+12*rSlow)/16 > eFast.Cycles
		staysFlipped := (4*eFast.Cycles+rFast)/5 < rSlow
		if mispicks && canFlip && staysFlipped {
			f.params = cand
			f.resetEstimates()
			calibrated = true
			break
		}
	}
	if !calibrated {
		t.Fatalf("no distortion factor produced a recoverable mispick (real %s %.0f vs %s %.0f)",
			fastArch, rFast, slowArch, rSlow)
	}

	// The panel: one shape at realistic load — the slow pool alone would
	// run at ~2/3 utilisation, so queues matter but don't dominate.
	const n = 48
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Plan: DefaultPlan(ArchAuto, q), Class: i % 2}
	}
	classes := []ClassSpec{
		{Name: "batch", SLOCycles: uint64(8 * rSlow)},
		{Name: "premium", SLOCycles: uint64(4 * rFast)},
	}
	run := func(adaptive *cost.AdaptiveConfig) *Report {
		t.Helper()
		spec := OpenLoop(reqs, uint64(1.5*rSlow), 0, 23)
		spec.Classes = classes
		spec.Adaptive = adaptive
		rep, err := f.LoadTest(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	static := run(nil)
	adaptive := run(&cost.AdaptiveConfig{Seed: 1})

	// Sanity: the mis-calibrated static router must actually mispick.
	slowPicks := 0
	for _, tr := range static.Requests {
		if tr.Plan.Arch == slowArch {
			slowPicks++
		}
	}
	if slowPicks <= n/2 {
		t.Fatalf("static routed only %d/%d requests to the mispredicted pool — panel not mis-calibrated", slowPicks, n)
	}

	// The pin: strictly fewer total replay cycles AND strictly better
	// premium P99.
	sStatic, sAdaptive := sumService(static), sumService(adaptive)
	if sAdaptive >= sStatic {
		t.Errorf("adaptive total replay cycles %d, static %d — adaptive must be strictly cheaper", sAdaptive, sStatic)
	}
	p99Static := static.Classes[1].LatencyP99
	p99Adaptive := adaptive.Classes[1].LatencyP99
	if p99Adaptive >= p99Static {
		t.Errorf("adaptive premium P99 %d, static %d — adaptive must be strictly better", p99Adaptive, p99Static)
	}

	// Provenance: every adaptive pick is marked, and the slow pool's
	// bucket visibly warmed before the flip.
	flipped := false
	for _, tr := range adaptive.Requests {
		if tr.Routing == nil {
			continue
		}
		if tr.Routing.RouteMode != "adaptive" {
			t.Fatalf("request %d routed without adaptive provenance: %+v", tr.Index, tr.Routing)
		}
		if tr.Plan.Arch == fastArch && !tr.Routing.Explored {
			flipped = true
		}
	}
	if !flipped {
		t.Error("adaptive routing never flipped to the truly fast pool")
	}
}

// TestFleetAdaptiveWithinNoiseWhenCalibrated is the no-worse pin: on
// the well-calibrated fleet, feedback routing (including its 1%
// exploration floor) must stay within noise of static routing's total
// replay cycles.
func TestFleetAdaptiveWithinNoiseWhenCalibrated(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86, query.HMC)
	reqs := testClassStream(t, 36, 2)
	classes := []ClassSpec{
		{Name: "batch", SLOCycles: 2_000_000},
		{Name: "interactive", SLOCycles: 800_000},
	}
	run := func(adaptive *cost.AdaptiveConfig) *Report {
		t.Helper()
		spec := OpenLoop(reqs, 120_000, 0, 9)
		spec.Classes = classes
		spec.Adaptive = adaptive
		rep, err := f.LoadTest(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	static := run(nil)
	adaptive := run(&cost.AdaptiveConfig{Seed: 3})
	sStatic, sAdaptive := sumService(static), sumService(adaptive)
	if float64(sAdaptive) > 1.10*float64(sStatic) {
		t.Errorf("calibrated-grid adaptive total %d cycles vs static %d — more than 10%% worse", sAdaptive, sStatic)
	}
}

// TestFleetAdaptiveDeterministicAcrossWorkerCounts: adaptive-on fleet
// exports — with exploration firing — are byte-identical at any
// executor worker count, because observations fold in during the
// single-threaded replay and exploration draws are pure functions of
// (seed, request index).
func TestFleetAdaptiveDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := fleetSpecs(t)["poisson"]
	spec.Adaptive = &cost.AdaptiveConfig{ExplorePct: 10, Seed: 5}
	f := testFleet(t, 2, query.HIPE, query.X86, query.HMC)
	var wantCSV, wantJSON []byte
	explored := false
	for _, workers := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		rep, err := f.LoadTest(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range rep.Requests {
			if tr.Routing != nil && tr.Routing.Explored {
				explored = true
			}
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := rep.WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&jsonBuf); err != nil {
			t.Fatal(err)
		}
		if wantCSV == nil {
			wantCSV, wantJSON = csvBuf.Bytes(), jsonBuf.Bytes()
			continue
		}
		if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
			t.Fatalf("adaptive CSV differs at %d workers", workers)
		}
		if !bytes.Equal(jsonBuf.Bytes(), wantJSON) {
			t.Fatalf("adaptive JSON differs at %d workers", workers)
		}
	}
	if !explored {
		t.Error("10% exploration floor never fired over the panel — determinism check under-exercised")
	}
}

// TestAdaptiveColumnsOnlyWhenAdaptive pins the export contract:
// adaptive-off reports carry no adaptive columns (so pre-PR exports
// stay byte-identical), and adaptive-on reports append exactly
// route_mode, obs_cycles, bucket_samples, explored after the routing
// block.
func TestAdaptiveColumnsOnlyWhenAdaptive(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86)
	reqs := testClassStream(t, 8, 0)
	run := func(adaptive *cost.AdaptiveConfig) string {
		t.Helper()
		spec := OpenLoop(reqs, 120_000, 0, 9)
		spec.Adaptive = adaptive
		rep, err := f.LoadTest(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	static := run(nil)
	if strings.Contains(static, "route_mode") {
		t.Fatal("adaptive-off CSV grew adaptive columns")
	}

	adaptive := run(&cost.AdaptiveConfig{Seed: 2})
	header := strings.SplitN(adaptive, "\n", 2)[0]
	if !strings.Contains(header, "route_mode,obs_cycles,bucket_samples,explored") {
		t.Fatalf("adaptive CSV header lacks the adaptive block: %s", header)
	}
	rows := strings.Split(strings.TrimSpace(adaptive), "\n")[1:]
	marked := 0
	for _, row := range rows {
		if strings.Contains(row, "adaptive") {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no request row carries route_mode=adaptive")
	}

	// Spec validation: a broken adaptive config is rejected up front,
	// and the single-replica cluster path refuses adaptive specs.
	bad := OpenLoop(reqs, 120_000, 0, 9)
	bad.Adaptive = &cost.AdaptiveConfig{ExplorePct: 100}
	if _, err := f.LoadTest(bad, Options{}); err == nil || !strings.Contains(err.Error(), "explore") {
		t.Fatalf("invalid explore percentage accepted: %v", err)
	}
	c := testCluster(t, 2)
	cl := OpenLoop(testStream(t, 4), 120_000, 0, 9)
	cl.Adaptive = &cost.AdaptiveConfig{}
	if _, err := c.LoadTest(cl, Options{}); err == nil || !strings.Contains(err.Error(), "replicated fleet") {
		t.Fatalf("cluster load test accepted an adaptive spec: %v", err)
	}
}

// TestClusterAdaptiveQueryLearns exercises the online Cluster.Query
// loop: with a mis-calibrated model and EnableAdaptive on, repeated
// auto queries must carry adaptive provenance, warm their buckets, and
// converge on a backend strictly cheaper than the mispredicted one.
func TestClusterAdaptiveQueryLearns(t *testing.T) {
	tab := db.GenerateClusteredMemo(512, 42, 10)
	c, err := New(sweep.Default(), tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := db.DefaultQ06()
	measure := func(arch query.Arch) uint64 {
		t.Helper()
		resp, err := c.Query(Request{Plan: DefaultPlan(arch, q)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Cycles
	}
	rHIPE, rX86 := measure(query.HIPE), measure(query.X86)
	slowArch := query.X86
	if rX86 < rHIPE {
		slowArch = query.HIPE
	}
	// Skew the model toward the measurably slower processor-vs-engine
	// side, walking the ladder until the static pick lands on it.
	truth := c.params
	req := Request{Plan: DefaultPlan(ArchAuto, q)}
	var first *Response
	for _, k := range []float64{3, 6, 9, 13, 20} {
		c.params = misCalibrate(truth, k, slowArch == query.X86)
		c.mu.Lock()
		c.routes = make(map[routeKey]*cost.Decision)
		c.mu.Unlock()
		if err := c.EnableAdaptive(cost.AdaptiveConfig{Seed: 4}); err != nil {
			t.Fatal(err)
		}
		if first, err = c.Query(req, Options{}); err != nil {
			t.Fatal(err)
		}
		if first.Request.Plan.Arch == slowArch {
			break
		}
	}
	if first.Routing == nil || first.Routing.RouteMode != "adaptive" {
		t.Fatalf("adaptive cluster query carries no adaptive provenance: %+v", first.Routing)
	}
	if first.Request.Plan.Arch != slowArch {
		t.Fatalf("no distortion factor made the cold pick land on %s (last pick %s)",
			slowArch, first.Request.Plan.Arch)
	}
	var last *Response
	for i := 0; i < 24; i++ {
		last, err = c.Query(req, Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Request.Plan.Arch == slowArch {
		t.Fatalf("after 25 observed queries the router still picks the mispredicted %s", slowArch)
	}
	if last.Cycles >= first.Cycles {
		t.Errorf("learning did not reduce replay cycles: first %d, settled %d", first.Cycles, last.Cycles)
	}
	samples := last.Routing.BucketSamples
	var warmed uint64
	for _, n := range samples {
		warmed += n
	}
	if warmed == 0 {
		t.Error("bucket samples never recorded on the decision")
	}
}
