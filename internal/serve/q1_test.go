package serve

// Serving-layer verification of the Q01 aggregation workload: per-shard
// group partials must recompose into the whole-table group table for
// every architecture at shard counts {1, 2, 4, 8}, and mixed Q06/Q01
// load tests must stay byte-deterministic at any executor worker count.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// TestQ1ShardedGroupsExactAcrossShardCounts is the aggregation
// acceptance check: for all four architectures the merged per-group
// aggregates equal the unsharded reference evaluator's at shard counts
// {1, 2, 4, 8}.
func TestQ1ShardedGroupsExactAcrossShardCounts(t *testing.T) {
	tab := testTable()
	q := db.DefaultQ01()
	ref := db.ReferenceQ1(tab, q)
	plans := []query.Plan{
		DefaultQ1Plan(query.X86, q),
		DefaultQ1Plan(query.HMC, q),
		DefaultQ1Plan(query.HIVE, q),
		DefaultQ1Plan(query.HIPE, q),
	}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatalf("default Q1 plan invalid: %v", err)
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		cluster, err := New(sweep.Config{Tuples: tab.N, Seed: 42}, tab, shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plans {
			resp, err := cluster.Query(Request{Plan: p}, Options{})
			if err != nil {
				t.Fatalf("%d shards, %s: %v", shards, p, err)
			}
			if resp.Matches != ref.Matches {
				t.Fatalf("%d shards, %s: matches %d, reference %d", shards, p, resp.Matches, ref.Matches)
			}
			if len(resp.Groups) != db.NumGroups {
				t.Fatalf("%d shards, %s: %d groups", shards, p, len(resp.Groups))
			}
			for g, agg := range resp.Groups {
				if agg != ref.Groups[g] {
					t.Fatalf("%d shards, %s: group %d %+v, reference %+v", shards, p, g, agg, ref.Groups[g])
				}
			}
			if resp.Revenue != ref.Revenue() {
				t.Fatalf("%d shards, %s: revenue %d, reference %d", shards, p, resp.Revenue, ref.Revenue())
			}
		}
	}
}

func TestStreamSpecQ1Mix(t *testing.T) {
	reqs, err := StreamSpec{N: 12, Seed: 5, Q1Every: 3}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		wantQ1 := (i+1)%3 == 0
		gotQ1 := req.Plan.Kind == query.Q1Agg
		if gotQ1 != wantQ1 {
			t.Fatalf("request %d: kind %v, Q1Every=3", i, req.Plan.Kind)
		}
		if err := req.Plan.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
	}
	// Enabling the mix must not disturb the Q06 positions' predicates.
	pure, err := StreamSpec{N: 12, Seed: 5}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if reqs[i].Plan.Kind == query.Q1Agg {
			continue
		}
		if reqs[i] != pure[i] {
			t.Fatalf("request %d changed when the Q01 mix was enabled", i)
		}
	}
	// A negative cadence is rejected.
	if _, err := (StreamSpec{N: 4, Seed: 1, Q1Every: -1}).Requests(); err == nil {
		t.Fatal("negative Q1Every accepted")
	}
}

func TestQ1MixedLoadTestDeterministicAcrossWorkerCounts(t *testing.T) {
	tab := testTable()
	cluster, err := New(sweep.Config{Tuples: tab.N, Seed: 42}, tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := StreamSpec{N: 16, Seed: 9, Q1Every: 4}.Requests()
	if err != nil {
		t.Fatal(err)
	}
	spec := OpenLoop(reqs, 40_000, 0, 11)
	var base *Report
	var baseCSV, baseJSON bytes.Buffer
	for _, workers := range []int{1, 2, 8} {
		rep, err := cluster.LoadTest(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			if err := rep.WriteCSV(&baseCSV); err != nil {
				t.Fatal(err)
			}
			if err := rep.WriteJSON(&baseJSON); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("report differs at %d workers", workers)
		}
		var csvB, jsonB bytes.Buffer
		if err := rep.WriteCSV(&csvB); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&jsonB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseCSV.Bytes(), csvB.Bytes()) || !bytes.Equal(baseJSON.Bytes(), jsonB.Bytes()) {
			t.Fatalf("exports differ at %d workers", workers)
		}
	}
	// Every Q01 trace carries the verified whole-table answers.
	ref := db.ReferenceQ1(tab, db.DefaultQ01())
	sawQ1 := false
	for _, tr := range base.Requests {
		if tr.Plan.Kind != query.Q1Agg {
			continue
		}
		sawQ1 = true
		if tr.Matches != ref.Matches || tr.Revenue != ref.Revenue() {
			t.Fatalf("Q01 trace %d: matches %d revenue %d, reference %d/%d",
				tr.Index, tr.Matches, tr.Revenue, ref.Matches, ref.Revenue())
		}
	}
	if !sawQ1 {
		t.Fatal("no Q01 request in the mixed stream")
	}
}
