// Load-test reports and their exporters. Following the sweep engine's
// export conventions: CSV rows in request-index order with
// deterministic number formatting, JSON as one indented document — a
// report's export is byte-stable across runs and executor worker
// counts.
package serve

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
)

// RequestTrace is one served request on the virtual timeline. All
// times are simulated cycles.
type RequestTrace struct {
	// Index is the request's position in the admitted stream.
	Index int
	// Client is the issuing closed-loop client, -1 under open loop.
	Client int
	// Plan is the executed plan — for routed (ArchAuto) requests, the
	// backend the planner chose.
	Plan query.Plan
	// Routing is the planner's decision for an ArchAuto request:
	// profiled selectivity and every candidate backend's estimate. Nil
	// for fixed-architecture requests (and JSON-omitted, so fixed-arch
	// reports are unchanged). Under a fleet it is the router's loaded
	// decision — every candidate (replica, backend) estimate plus the
	// queue penalties in effect at arrival.
	Routing *cost.Decision `json:",omitempty"`
	// Class is the request's admission class (0 when classes are
	// unused); Pool records the fleet router's pick. Both are zero /
	// nil — and JSON-omitted — on single-replica cluster reports.
	Class int       `json:",omitempty"`
	Pool  *PoolPick `json:",omitempty"`
	// Arrival is when the request entered the system.
	Arrival uint64
	// Completion is when the slowest shard task finished.
	Completion uint64
	// Latency is Completion - Arrival: queueing plus service.
	Latency uint64
	// Service is the idle-fleet critical path (slowest shard's cycles).
	Service uint64
	// Work is the total simulated cycles across all shards.
	Work uint64
	// Matches and Revenue are the merged, verified answers. On a
	// degraded request they are the partial sums over the shards that
	// completed.
	Matches int
	Revenue int64
	// Recovery accounting, set only by faulted/recovering replays and
	// JSON-omitted otherwise, so fault-free reports are byte-identical
	// to their pre-fault form. Attempts counts the dispatches (1 =
	// first try succeeded); Hedges the hedged second attempts; HedgeWon
	// whether a hedge supplied the winning completion.
	Attempts int  `json:",omitempty"`
	Hedges   int  `json:",omitempty"`
	HedgeWon bool `json:",omitempty"`
	// Degraded marks a partial answer after the retry budget ran out;
	// Coverage is the exact fraction of table rows scanned (1 when not
	// degraded); ErrMatches and ErrRevenue the relative errors of the
	// partial answer against the reference evaluator's exact one.
	Degraded   bool    `json:",omitempty"`
	Coverage   float64 `json:",omitempty"`
	ErrMatches float64 `json:",omitempty"`
	ErrRevenue float64 `json:",omitempty"`
}

// ShardStats is one shard's load accounting over a test.
type ShardStats struct {
	Shard int
	// Tasks is the number of shard tasks served.
	Tasks int
	// BusyCycles is the total simulated service time.
	BusyCycles uint64
	// Utilisation is BusyCycles over the test makespan.
	Utilisation float64
}

// PoolPick records the fleet router's choice for one request.
type PoolPick struct {
	// Pool is the chosen replica pool's index; Arch names its pinned
	// backend family.
	Pool int
	Arch string
	// QueueCycles is the chosen replica's backlog (critical-path
	// queueing delay) at arrival.
	QueueCycles uint64
	// EstCycles is the cost model's predicted critical path on the
	// chosen (replica, backend) pair.
	EstCycles float64
}

// PoolStats is one replica pool's load accounting over a fleet test.
type PoolStats struct {
	// Pool is the pool index; Arch names its pinned backend family.
	Pool int
	Arch string
	// Requests counts the requests routed to the pool; Tasks its shard
	// tasks; BusyCycles the total simulated service time across its
	// shards.
	Requests   int
	Tasks      int
	BusyCycles uint64
	// Utilisation is BusyCycles over (makespan x shards) — the pool's
	// mean per-shard busy fraction.
	Utilisation float64
}

// Report is the outcome of one load test.
type Report struct {
	// Mode is "open" or "closed".
	Mode string
	// ExecMode is "estimate" when the test priced shard service times
	// with the analytic cost model instead of machine simulation
	// (answers stay exact; only timing is approximate). Empty — and
	// JSON-omitted — on exact reports, so they are byte-identical to
	// their pre-mode form. Exported CSV rows gain an exec_mode column
	// only when this is set.
	ExecMode string `json:",omitempty"`
	// Shards is the fleet size; Rows the whole-table row count.
	Shards int
	Rows   int
	// Concurrency is the closed-loop client count (0 under open loop).
	Concurrency int
	// Offered is the generated request count; Completed the admitted
	// and served count (open-loop duration bounds can drop the tail).
	Offered   int
	Completed int
	// MakespanCycles is the completion time of the last request.
	MakespanCycles uint64
	// ThroughputRPMC is completed requests per million simulated cycles.
	ThroughputRPMC float64
	// Latency quantiles over all completed requests, in simulated
	// cycles, from the streaming log-bucket histogram.
	LatencyP50  uint64
	LatencyP95  uint64
	LatencyP99  uint64
	LatencyMean float64
	LatencyMax  uint64
	// PerShard is the per-shard utilisation accounting, in shard order.
	// Fleet reports leave it nil (per-shard accounting lives under
	// Pools) — omitted from JSON so either shape stays clean.
	PerShard []ShardStats `json:",omitempty"`
	// Fleet-only fields, all empty — and JSON-omitted — on
	// single-replica cluster reports.
	// Pools is the per-replica-pool accounting, in pool order.
	Pools []PoolStats `json:",omitempty"`
	// Classes is the per-admission-class accounting — offered / shed /
	// completed counts, latency quantiles and exact SLO attainment — in
	// class order.
	Classes []ClassStats `json:",omitempty"`
	// Shed is the total request count admission control refused;
	// ShedRequests are their traces, in arrival order.
	Shed         int         `json:",omitempty"`
	ShedRequests []ShedTrace `json:",omitempty"`
	// Degraded is the total request count answered with a partial
	// result, and Faults the fault-event and recovery-action totals.
	// Both set only by faulted/recovering load tests (Faults non-nil is
	// the marker) and JSON-omitted otherwise.
	Degraded int         `json:",omitempty"`
	Faults   *FaultStats `json:",omitempty"`
	// Counters is the machine-counter total over the test — every
	// distinct (plan, shard) simulation summed exactly once — when
	// Options.Counters was set; nil (and JSON-omitted) otherwise, so
	// counter-off reports are byte-identical to their pre-observability
	// form.
	Counters *obs.Counters `json:",omitempty"`
	// Trace is the virtual-time span timeline when Options.Trace was
	// set; nil otherwise. It exports through WriteChromeTrace and
	// WriteSpanCSV, not the report JSON (spans repeat everything the
	// request traces carry).
	Trace *obs.Trace `json:"-"`
	// Requests are the per-request traces, in issue order.
	Requests []RequestTrace
}

// CSVHeader is the column layout of WriteCSV: one row per request.
// Reports containing routed (ArchAuto) requests append the
// routing-decision columns of RoutingCSVHeader, so fixed-architecture
// exports stay byte-identical to their pre-planner form.
var CSVHeader = []string{
	"index", "client", "arch", "strategy", "opsize_b", "unroll", "fused", "aggregate",
	"ship_lo", "ship_hi", "disc_lo", "disc_hi", "qty_hi",
	"arrival_cycles", "completion_cycles", "latency_cycles",
	"service_cycles", "work_cycles", "matches", "revenue",
}

// RoutingCSVHeader returns the routing-decision columns appended for
// reports with routed requests: the routed flag, the profiled
// selectivity, and one estimated-cycles column per registered backend
// — the full audit trail of each pick.
func RoutingCSVHeader() []string {
	cols := []string{"routed", "est_selectivity"}
	for _, name := range query.BackendNames() {
		cols = append(cols, "est_"+name+"_cycles")
	}
	return cols
}

// FleetCSVHeader returns the columns appended for fleet reports: the
// request's class, the routed (pool, backend) pair, the backlog the
// pick absorbed, and the class's SLO bound plus whether this request
// met it.
func FleetCSVHeader() []string {
	return []string{"class", "pool", "pool_arch", "queue_cycles", "slo_cycles", "slo_met"}
}

// FaultCSVHeader returns the columns appended for faulted/recovering
// reports: the request's attempt and hedge counts, whether it
// degraded, and the partial answer's coverage and relative errors.
func FaultCSVHeader() []string {
	return []string{"attempts", "hedges", "degraded", "coverage", "err_matches", "err_revenue"}
}

// AdaptiveCSVHeader returns the columns appended for adaptive-routing
// reports: the pick's route mode ("adaptive", or "static" for rows the
// feedback router never saw), the chosen candidate's blended observed
// cycles (blank while its bucket was cold), its bucket's sample count,
// and whether the exploration floor overrode the pick.
func AdaptiveCSVHeader() []string {
	return []string{"route_mode", "obs_cycles", "bucket_samples", "explored"}
}

// HasFaults reports whether the report came from a faulted/recovering
// load test.
func (r *Report) HasFaults() bool { return r.Faults != nil }

// HasAdaptive reports whether any request in the report was routed
// with observed-cycles feedback.
func (r *Report) HasAdaptive() bool {
	for i := range r.Requests {
		if d := r.Requests[i].Routing; d != nil && d.RouteMode != "" {
			return true
		}
	}
	return false
}

// adaptiveTotals counts the adaptively routed and explored requests.
func (r *Report) adaptiveTotals() (routed, explored int) {
	for i := range r.Requests {
		if d := r.Requests[i].Routing; d != nil && d.RouteMode != "" {
			routed++
			if d.Explored {
				explored++
			}
		}
	}
	return routed, explored
}

// HasRouting reports whether any request in the report was routed by
// the adaptive planner.
func (r *Report) HasRouting() bool {
	for _, tr := range r.Requests {
		if tr.Routing != nil {
			return true
		}
	}
	return false
}

// HasFleet reports whether the report came from a replicated fleet.
func (r *Report) HasFleet() bool {
	return len(r.Pools) > 0
}

// WriteCSV writes the per-request traces as CSV with CSVHeader's
// columns (plus FleetCSVHeader for fleet reports, plus FaultCSVHeader
// for faulted runs, plus RoutingCSVHeader when the report contains
// routed requests, plus AdaptiveCSVHeader when any pick blended
// observed cycles, plus an exec_mode column for estimate-mode reports
// — in that order), in request-index order. Pre-fleet, exact,
// fixed-architecture exports stay byte-identical to their original
// form, and adaptive-off exports to their pre-adaptive form.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	routed := r.HasRouting()
	fleet := r.HasFleet()
	faults := r.HasFaults()
	adaptive := r.HasAdaptive()
	header := CSVHeader
	backends := query.Backends()
	if fleet || routed || faults || adaptive || r.ExecMode != "" {
		header = append([]string{}, CSVHeader...)
		if fleet {
			header = append(header, FleetCSVHeader()...)
		}
		if faults {
			header = append(header, FaultCSVHeader()...)
		}
		if routed {
			header = append(header, RoutingCSVHeader()...)
		}
		if adaptive {
			header = append(header, AdaptiveCSVHeader()...)
		}
		if r.ExecMode != "" {
			header = append(header, "exec_mode")
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, tr := range r.Requests {
		p, q := tr.Plan, tr.Plan.Q
		if p.Kind == query.Q1Agg {
			// Aggregation rows render their filter in the shared date
			// columns ([0, ShipCut] as a half-open range); the zero
			// discount/quantity bounds mark the row as Q01, keeping the
			// schema — and Q06-only exports — byte-stable.
			q = db.Q06{ShipLo: 0, ShipHi: p.Q1.ShipCut + 1}
		}
		rec := []string{
			strconv.Itoa(tr.Index),
			strconv.Itoa(tr.Client),
			p.Arch.String(),
			p.Strategy.String(),
			strconv.FormatUint(uint64(p.OpSize), 10),
			strconv.Itoa(p.Unroll),
			strconv.FormatBool(p.Fused),
			strconv.FormatBool(p.Aggregate),
			strconv.FormatInt(int64(q.ShipLo), 10),
			strconv.FormatInt(int64(q.ShipHi), 10),
			strconv.FormatInt(int64(q.DiscLo), 10),
			strconv.FormatInt(int64(q.DiscHi), 10),
			strconv.FormatInt(int64(q.QtyHi), 10),
			strconv.FormatUint(tr.Arrival, 10),
			strconv.FormatUint(tr.Completion, 10),
			strconv.FormatUint(tr.Latency, 10),
			strconv.FormatUint(tr.Service, 10),
			strconv.FormatUint(tr.Work, 10),
			strconv.Itoa(tr.Matches),
			strconv.FormatInt(tr.Revenue, 10),
		}
		if fleet {
			rec = append(rec, r.fleetColumns(&tr)...)
		}
		if faults {
			rec = append(rec, faultColumns(&tr)...)
		}
		if routed {
			rec = append(rec, routingColumns(tr.Routing, backends)...)
		}
		if adaptive {
			rec = append(rec, adaptiveColumns(tr.Routing)...)
		}
		if r.ExecMode != "" {
			rec = append(rec, r.ExecMode)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// fleetColumns renders one trace's fleet cells. The slo_met cell is
// blank for classes without an SLO, "true"/"false" otherwise.
func (r *Report) fleetColumns(tr *RequestTrace) []string {
	pool, arch, queue := "", "", ""
	if tr.Pool != nil {
		pool = strconv.Itoa(tr.Pool.Pool)
		arch = tr.Pool.Arch
		queue = strconv.FormatUint(tr.Pool.QueueCycles, 10)
	}
	slo, met := "", ""
	if tr.Class >= 0 && tr.Class < len(r.Classes) {
		if bound := r.Classes[tr.Class].SLOCycles; bound > 0 {
			slo = strconv.FormatUint(bound, 10)
			// A degraded answer misses its SLO however fast the fleet gave
			// up; Degraded is always false on fault-free reports, so their
			// cells are unchanged.
			met = strconv.FormatBool(!tr.Degraded && tr.Latency <= bound)
		}
	}
	return []string{strconv.Itoa(tr.Class), pool, arch, queue, slo, met}
}

// faultColumns renders one trace's recovery cells.
func faultColumns(tr *RequestTrace) []string {
	return []string{
		strconv.Itoa(tr.Attempts),
		strconv.Itoa(tr.Hedges),
		strconv.FormatBool(tr.Degraded),
		strconv.FormatFloat(tr.Coverage, 'g', -1, 64),
		strconv.FormatFloat(tr.ErrMatches, 'g', -1, 64),
		strconv.FormatFloat(tr.ErrRevenue, 'g', -1, 64),
	}
}

// routingColumns renders one trace's routing-decision cells: empty
// estimates for fixed-architecture rows in a mixed stream, whole-cycle
// estimates (deterministic integer formatting) for routed rows.
func routingColumns(d *cost.Decision, backends []query.Backend) []string {
	cols := make([]string, 0, 2+len(backends))
	if d == nil {
		cols = append(cols, "false", "")
		for range backends {
			cols = append(cols, "")
		}
		return cols
	}
	cols = append(cols, "true", strconv.FormatFloat(d.Selectivity, 'g', -1, 64))
	for _, b := range backends {
		if est := d.EstimateFor(b.Arch()); est != nil {
			cols = append(cols, strconv.FormatFloat(est.Cycles, 'f', 0, 64))
		} else {
			cols = append(cols, "")
		}
	}
	return cols
}

// adaptiveColumns renders one trace's adaptive-routing cells. Rows the
// feedback router never saw — fixed-architecture requests in a mixed
// stream, or static decisions — read "static" with blank provenance.
func adaptiveColumns(d *cost.Decision) []string {
	if d == nil || d.RouteMode == "" {
		return []string{"static", "", "", ""}
	}
	obsCell, samplesCell := "", ""
	if d.ChosenIndex >= 0 && d.ChosenIndex < len(d.ObsCycles) {
		if v := d.ObsCycles[d.ChosenIndex]; v > 0 {
			obsCell = strconv.FormatFloat(v, 'f', 0, 64)
		}
	}
	if d.ChosenIndex >= 0 && d.ChosenIndex < len(d.BucketSamples) {
		samplesCell = strconv.FormatUint(d.BucketSamples[d.ChosenIndex], 10)
	}
	return []string{d.RouteMode, obsCell, samplesCell, strconv.FormatBool(d.Explored)}
}

// WriteChromeTrace writes the load test's span timeline in Chrome
// trace_event JSON (loadable in Perfetto or chrome://tracing); with
// tracing off it writes a valid empty trace document.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	return r.Trace.WriteChromeJSON(w)
}

// WriteSpanCSV writes the span timeline as a flat CSV
// (obs.SpanCSVHeader columns); with tracing off, just the header.
func (r *Report) WriteSpanCSV(w io.Writer) error {
	return r.Trace.WriteCSV(w)
}

// WriteJSON writes the whole report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON decodes a report previously written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	r := &Report{}
	if err := json.NewDecoder(rd).Decode(r); err != nil {
		return nil, err
	}
	return r, nil
}

// micros converts simulated cycles to microseconds at the nominal
// Table I clock — presentation only.
func micros(cycles uint64) float64 {
	return float64(cycles) / NominalHz * 1e6
}

// Summary renders the operator-facing overview: throughput, latency
// quantiles (cycles and nominal-clock microseconds) and per-shard
// utilisation.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s-loop load test: %d shards, %d rows ==\n", r.Mode, r.Shards, r.Rows)
	if r.ExecMode != "" {
		fmt.Fprintf(&b, "exec mode            %s (cost-model cycles, exact answers)\n", r.ExecMode)
	}
	if r.Concurrency > 0 {
		fmt.Fprintf(&b, "concurrency          %d clients\n", r.Concurrency)
	}
	fmt.Fprintf(&b, "requests             %d completed / %d offered\n", r.Completed, r.Offered)
	fmt.Fprintf(&b, "makespan             %d cycles (%.1f µs @2GHz)\n",
		r.MakespanCycles, micros(r.MakespanCycles))
	fmt.Fprintf(&b, "throughput           %.3f req/Mcycle (%.0f QPS @2GHz)\n",
		r.ThroughputRPMC, r.ThroughputRPMC*NominalHz/1e6)
	fmt.Fprintf(&b, "latency p50/p95/p99  %d / %d / %d cycles (%.1f / %.1f / %.1f µs)\n",
		r.LatencyP50, r.LatencyP95, r.LatencyP99,
		micros(r.LatencyP50), micros(r.LatencyP95), micros(r.LatencyP99))
	fmt.Fprintf(&b, "latency mean/max     %.0f / %d cycles\n", r.LatencyMean, r.LatencyMax)
	if r.Shed > 0 {
		fmt.Fprintf(&b, "shed                 %d requests refused by admission control\n", r.Shed)
	}
	if routed, explored := r.adaptiveTotals(); routed > 0 {
		fmt.Fprintf(&b, "adaptive routing     %d picks blended with observed cycles, %d explored\n",
			routed, explored)
	}
	if r.Faults != nil {
		fs := r.Faults
		fmt.Fprintf(&b, "faults               %d crash kills, %d stall delays, %d straggles\n",
			fs.CrashKills, fs.StallDelays, fs.Straggles)
		fmt.Fprintf(&b, "recovery             %d retries, %d hedges (%d won), %d failovers\n",
			fs.Retries, fs.Hedges, fs.HedgeWins, fs.Failovers)
		fmt.Fprintf(&b, "degraded             %d requests answered partially\n", r.Degraded)
	}
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "shard %-3d            %4d tasks %12d busy cycles %6.1f%% utilised\n",
			s.Shard, s.Tasks, s.BusyCycles, 100*s.Utilisation)
	}
	for _, p := range r.Pools {
		fmt.Fprintf(&b, "pool %-2d %-5s        %4d reqs %5d tasks %12d busy cycles %6.1f%% utilised\n",
			p.Pool, p.Arch, p.Requests, p.Tasks, p.BusyCycles, 100*p.Utilisation)
	}
	for _, cs := range r.Classes {
		att := "    —"
		if cs.SLOCycles > 0 {
			att = fmt.Sprintf("%5.1f%%", 100*cs.Attainment)
		}
		fmt.Fprintf(&b, "class %d %-12s %4d/%d done, shed %d, p50/p95/p99 %d/%d/%d cycles, SLO %s\n",
			cs.Class, cs.Name, cs.Completed, cs.Offered, cs.Shed,
			cs.LatencyP50, cs.LatencyP95, cs.LatencyP99, att)
	}
	if r.Counters.Len() > 0 {
		b.WriteString("-- machine counters (each distinct shard simulation summed once) --\n")
		b.WriteString(r.Counters.String())
	}
	return b.String()
}
