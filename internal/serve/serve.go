// Package serve is the query-serving layer of the reproduction: it
// treats the simulated HMC machines as a fleet. A large lineitem table
// is horizontally partitioned across N shards, each shard backed by its
// own simulated machine instance, and concurrent Q06-family requests —
// arbitrary predicates, any of the four architectures, optionally
// HIPE's in-memory aggregation — scatter across the shards and gather
// into exact whole-table answers verified against the db reference
// evaluator.
//
// The layer sits above internal/sweep in the stack: sweep answers "how
// fast is one configuration", serve answers "what throughput and tail
// latency does a fleet of such machines deliver under load". Its load
// generators and latency accounting live in traffic.go; its exporters
// in report.go.
//
// Determinism: each shard simulation is single-threaded and
// bit-reproducible, shard-task results are aggregated by (request,
// shard) index, and the serving timeline — arrivals, per-shard FIFO
// queueing, completions — is computed in virtual simulated time from
// those indexed results. Executor workers only parallelise the
// simulations themselves, so every answer, latency sample and exported
// report is byte-identical at any worker count.
package serve

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// NominalHz is the Table I core clock (2 GHz), used to convert between
// simulated cycles and wall-clock-style figures (QPS, microseconds) in
// reports and CLI flags. Simulated results are always kept in cycles;
// the conversion is presentation only.
const NominalHz = 2e9

// Request is one admitted query: a full plan (architecture, strategy,
// op size, unroll, fused/aggregate variants and the Q06 predicate)
// executed over every shard of the cluster. A request whose plan
// carries query.ArchAuto names no backend: the cluster's adaptive
// planner resolves it at admission to the predicted-fastest backend's
// best serving shape, given the predicate's selectivity profile on the
// served table (internal/cost).
type Request struct {
	Plan query.Plan
	// Class is the request's admission class: an index into the load
	// spec's declared ClassSpec table (0, the zero value, when classes
	// are unused). Under fleet admission control, overload sheds
	// lower-class work first and SLO attainment is reported per class.
	Class int `json:",omitempty"`
}

// ArchAuto re-exports the planner sentinel for serving callers.
const ArchAuto = query.ArchAuto

// DefaultPlan returns the per-architecture best configuration (the
// Figure 3d shapes) over predicate q — the natural plan for a serving
// request that only picks an architecture. ArchAuto returns the
// unresolved auto request plan; the cluster routes it at admission.
func DefaultPlan(arch query.Arch, q db.Q06) query.Plan {
	switch arch {
	case query.ArchAuto:
		return query.Plan{Arch: query.ArchAuto, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q}
	case query.X86:
		return query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: 64, Unroll: 8, Q: q}
	case query.HIVE:
		return query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Fused: true, Q: q}
	default: // HMC, HIPE
		return query.Plan{Arch: arch, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q}
	}
}

// DefaultQ1Plan returns the per-architecture best configuration for the
// Q01 aggregation workload: the column-at-a-time shapes of DefaultPlan
// with the query description swapped (the fused variant is a pure-Q06
// plan, so HIVE serves Q01 unfused).
func DefaultQ1Plan(arch query.Arch, q db.Q01) query.Plan {
	p := DefaultPlan(arch, db.Q06{})
	p.Fused = false
	p.Kind = query.Q1Agg
	p.Q = db.Q06{}
	p.Q1 = q
	return p
}

// ShardPartial is one shard's contribution to a request: the simulated
// service time plus the partials that merge into the whole-table
// answer. Matches is the cardinality of the shard's result bitmask,
// which the shard run verifies against the shard reference evaluator
// before the partial is released.
type ShardPartial struct {
	Shard   int
	Cycles  uint64
	Matches int
	Revenue int64
	// Groups holds the shard's per-group aggregates for Q01 requests,
	// in db.GroupID order (nil for selection requests). Contiguous
	// shards tile the table, so group partials recompose by index.
	Groups []db.GroupAgg `json:",omitempty"`
	// Counters is the shard run's machine-counter snapshot, captured
	// only when Options.Counters is set (nil — and JSON-omitted —
	// otherwise, so counter-off exports are unchanged).
	Counters *obs.Counters `json:",omitempty"`
}

// Response is a merged, verified whole-table answer.
type Response struct {
	Request Request
	// Matches is the merged match count (sum of shard bitmask
	// cardinalities), equal to the unsharded reference evaluator's.
	Matches int
	// Revenue is the merged sum(l_extendedprice*l_discount) over
	// matches. For Aggregate plans each addend was computed by the HIPE
	// engine's predicated Mul/Add lanes and checked in-shard.
	Revenue int64
	// Groups is the merged per-group aggregate table of a Q01 request
	// (nil for selection requests): shard partials summed group-wise
	// and verified against the unsharded reference evaluator.
	Groups []db.GroupAgg `json:",omitempty"`
	// Cycles is the request's service time on an idle fleet: the
	// critical path, i.e. the slowest shard's simulation.
	Cycles uint64
	// WorkCycles is the total simulated work across all shards.
	WorkCycles uint64
	// Shards are the per-shard partials, in shard order.
	Shards []ShardPartial
	// Routing records the adaptive planner's decision for an ArchAuto
	// request — the profiled selectivity, every candidate backend's
	// cost estimate, and the chosen plan (which Request now carries).
	// Nil for fixed-architecture requests, so fixed-arch exports are
	// unchanged.
	Routing *cost.Decision `json:",omitempty"`
	// Pool records the fleet router's (replica, backend) pick for
	// requests served through a Fleet. Nil on single-replica clusters.
	Pool *PoolPick `json:",omitempty"`
	// Counters is the request's machine-counter snapshot — the shard
	// snapshots summed — when Options.Counters is set; nil (and
	// JSON-omitted) otherwise.
	Counters *obs.Counters `json:",omitempty"`
	// ExecMode is "estimate" when the response's shard cycles came from
	// the analytic cost model rather than machine simulation (answers
	// are exact either way; only timing is approximate). Empty — and
	// JSON-omitted — for exact responses, so exact exports are
	// byte-identical to their pre-mode form.
	ExecMode string `json:",omitempty"`
}

// Options tune cluster execution.
type Options struct {
	// Workers bounds the executor pool that runs shard simulations;
	// <= 0 means runtime.GOMAXPROCS(0). The worker count never changes
	// answers or reports, only wall-clock time.
	Workers int
	// OnTask, when non-nil, is called after each finished shard task
	// with the number completed so far and the total. Calls are
	// serialised but arrive in completion order — progress only.
	OnTask func(completed, total int)
	// Counters enables machine-counter capture: each shard run
	// snapshots its machine's counter registry (plus the event engine's
	// scheduler accounting) into the shard partial before the machine is
	// recycled, and the snapshots roll up into responses and reports.
	// Off by default — when off, no capture code runs and exports are
	// byte-identical to their pre-observability form.
	Counters bool
	// Trace enables the virtual-time request tracer in load tests:
	// per-request spans (arrival, routing/shed decisions, per-shard
	// machine replay, merge) recorded in simulated cycles during the
	// single-threaded timeline replay, exported via the report's
	// WriteChromeTrace/WriteSpanCSV. Off by default and free when off.
	Trace bool
	// Exec selects the execution mode. ExecExact (the zero value) runs
	// every shard task as a full machine simulation; ExecEstimate prices
	// shard service times with the analytic cost model — no machines are
	// built — while answers still come from the shard reference
	// evaluators, so merges verify exactly and only timing is
	// approximate. Estimate responses and reports carry an "estimate"
	// mode marker; exact exports are byte-identical to runs made before
	// this knob existed. See internal/sweep's ExecMode and
	// docs/PERFORMANCE.md for the error contract.
	Exec sweep.ExecMode
}

// validate rejects option combinations the cluster refuses to serve:
// estimate mode builds no machines, so it can produce neither machine
// counters nor machine-replay traces.
func (o Options) validate() error {
	switch o.Exec {
	case sweep.ExecExact:
	case sweep.ExecEstimate:
		if o.Counters {
			return fmt.Errorf("serve: estimate mode cannot produce machine counters (µop-level counters need exact simulation)")
		}
		if o.Trace {
			return fmt.Errorf("serve: estimate mode cannot produce machine-replay traces (spans need exact simulation)")
		}
	default:
		return fmt.Errorf("serve: unknown exec mode %d", int(o.Exec))
	}
	return nil
}

// EffectiveWorkers resolves the executor-pool size these options
// produce.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Cluster is a sharded serving fleet: one table cut into contiguous
// shards, each scanned by its own simulated machine. A Cluster is
// immutable after New and safe for concurrent Query calls.
type Cluster struct {
	mc     machine.Config
	whole  *db.Table
	shards []*db.Table

	// params is the adaptive planner's cost model, derived from the
	// cluster's machine and energy configuration at New.
	params cost.Params

	mu    sync.Mutex
	refs  map[db.Q06]*db.ReferenceResult
	refs1 map[db.Q01]*db.Q1Result
	// routes caches routing decisions per distinct (kind, predicate):
	// profiling the table is O(rows), so repeated predicates — the
	// common case in serving streams — route from the cache. Decisions
	// are pure functions of (table, predicate, candidates), hence
	// deterministic at any worker count.
	routes map[routeKey]*cost.Decision

	// mpool recycles simulated machines across shard replays: a Reset
	// machine is bit-identical to a fresh one, so reuse never changes
	// answers or timelines — it only stops the fleet from rebuilding
	// (and re-allocating) the world once per shard task.
	mpool *machine.Pool

	// adaptMu guards the online feedback-routing state used by the
	// concurrent Query paths (EnableAdaptive). Load-test replays never
	// touch it — they build per-run state from LoadSpec.Adaptive so a
	// load test stays a pure function of its inputs.
	adaptMu  sync.Mutex
	adapt    *cost.Adaptive
	adaptSeq int
}

// New partitions tab into nShards contiguous shards (each a multiple of
// 64 rows, see db.Partition) and returns the serving cluster. cfg
// contributes the machine model; when cfg.Machine is nil the Table I
// machine is used with its backing image sized to the shard footprint,
// which changes no addresses or timing — only allocation cost per
// simulated instance.
func New(cfg sweep.Config, tab *db.Table, nShards int) (*Cluster, error) {
	shards, err := db.Partition(tab, nShards)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	mc := machine.Default()
	if cfg.Machine != nil {
		mc = *cfg.Machine
	} else {
		mc.ImageBytes = shardImageBytes(shards[0].N)
	}
	em := energy.Default()
	if cfg.Energy != nil {
		em = *cfg.Energy
	}
	return &Cluster{
		mc:     mc,
		whole:  tab,
		shards: shards,
		params: cost.ParamsFor(mc, em),
		refs:   make(map[db.Q06]*db.ReferenceResult),
		refs1:  make(map[db.Q01]*db.Q1Result),
		routes: make(map[routeKey]*cost.Decision),
		mpool:  machine.NewPool(mc),
	}, nil
}

// EnableAdaptive turns feedback-driven routing on for the online Query
// paths: subsequent ArchAuto resolutions (and Fleet.Query routes) blend
// each candidate's analytic prior with the observed-cycles EWMA of its
// (kind, backend, selectivity-bucket) cell, completed queries feed
// their observed service cycles back in, and the deterministic
// exploration floor keeps sampling the candidates the blend would
// starve. Load tests do not read this state — they take a per-run
// cost.AdaptiveConfig on the LoadSpec instead, so a load test stays a
// pure function of (spec, options).
func (c *Cluster) EnableAdaptive(cfg cost.AdaptiveConfig) error {
	a, err := cost.NewAdaptive(cfg)
	if err != nil {
		return err
	}
	c.adaptMu.Lock()
	c.adapt = a
	c.adaptSeq = 0
	c.adaptMu.Unlock()
	return nil
}

// Calibrate replaces the routing planner's cost model and drops every
// cached routing decision. Answers and exact-mode service times are
// untouched — the simulated machines keep their real timing — so a
// drifted calibration changes only which backend the planner predicts
// fastest. This is the hook mis-calibration experiments and the
// adaptive-routing benchmarks use to pull the analytic prior away from
// the served machine. Estimate-mode runs price service times from the
// same model and would inherit the drift.
func (c *Cluster) Calibrate(p cost.Params) {
	c.mu.Lock()
	c.params = p
	c.routes = make(map[routeKey]*cost.Decision)
	c.mu.Unlock()
}

// adaptiveRerank re-ranks a routing decision under adaptive state: the
// candidate set and analytic estimates are reused, queue penalties are
// zero (no replica backlog on a single cluster), and the blend and
// exploration provenance land on a fresh decision, leaving the cached
// static decision untouched.
func adaptiveRerank(ad *cost.Adaptive, index int, d *cost.Decision) *cost.Decision {
	kind := d.Chosen.Kind
	obsCycles := make([]float64, len(d.Estimates))
	samples := make([]uint64, len(d.Estimates))
	for i := range d.Estimates {
		blended, _, n := ad.Blended(kind, d.Estimates[i].Plan.Arch, d.Selectivity, d.Estimates[i].Cycles)
		if n > 0 {
			obsCycles[i] = blended
		}
		samples[i] = n
	}
	nd, err := cost.RankLoaded(d.Selectivity, d.Estimates, make([]float64, len(d.Estimates)), obsCycles)
	if err != nil {
		return d
	}
	nd.BucketSamples = samples
	if j, ok := ad.ExplorePick(index, len(nd.Estimates)); ok {
		nd.ChosenIndex = j
		nd.Chosen = nd.Estimates[j].Plan
		nd.Explored = true
	}
	return nd
}

// routeKey identifies one distinct routable query.
type routeKey struct {
	kind query.QueryKind
	q    db.Q06
	q1   db.Q01
	agg  bool
}

// shardImageBytes sizes a machine image for an n-row shard (see
// db.ImageBytesFor).
func shardImageBytes(n int) uint64 { return db.ImageBytesFor(n) }

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// ShardRows reports each shard's row count, in shard order.
func (c *Cluster) ShardRows() []int {
	rows := make([]int, len(c.shards))
	for i, s := range c.shards {
		rows[i] = s.N
	}
	return rows
}

// Rows reports the whole table's row count.
func (c *Cluster) Rows() int { return c.whole.N }

// Admit validates a request against the cluster: the plan must be
// inside the evaluated envelope — including the table-dependent
// bounds, checked against the largest shard — and executable on every
// shard. ArchAuto requests are validated through their resolution.
func (c *Cluster) Admit(req Request) error {
	if req.Plan.Auto() {
		_, _, err := c.resolve(req)
		return err
	}
	if err := req.Plan.ValidateFor(c.maxShardRows()); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

func (c *Cluster) maxShardRows() int {
	maxRows := 0
	for _, s := range c.shards {
		if s.N > maxRows {
			maxRows = s.N
		}
	}
	return maxRows
}

// resolve routes an ArchAuto request to the predicted-fastest backend:
// the candidates are every registered backend's best serving shape over
// the request's predicate, trimmed to the plans every shard can
// execute, ranked by the cost model against the served table's
// selectivity profile. Fixed-architecture requests pass through
// untouched. Decisions are cached per distinct predicate and are pure
// functions of the cluster's table, so routing is deterministic and
// auditable (the decision lands in Response.Routing and the report's
// routing columns).
func (c *Cluster) resolve(req Request) (Request, *cost.Decision, error) {
	if !req.Plan.Auto() {
		return req, nil, nil
	}
	key := routeKey{kind: req.Plan.Kind, q: req.Plan.Q, q1: req.Plan.Q1, agg: req.Plan.Aggregate}
	c.mu.Lock()
	d, ok := c.routes[key]
	c.mu.Unlock()
	if !ok {
		maxRows := c.maxShardRows()
		var candidates []query.Plan
		for _, b := range query.Backends() {
			var p query.Plan
			if req.Plan.Kind == query.Q1Agg {
				p = DefaultQ1Plan(b.Arch(), req.Plan.Q1)
			} else {
				p = DefaultPlan(b.Arch(), req.Plan.Q)
				p.Aggregate = req.Plan.Aggregate && b.Caps().Aggregate
			}
			if p.ValidateFor(maxRows) != nil {
				continue
			}
			candidates = append(candidates, p)
		}
		var err error
		d, err = cost.PickSharded(c.params, c.shards, candidates)
		if err != nil {
			return req, nil, fmt.Errorf("serve: routing %s: %w", req.Plan, err)
		}
		c.mu.Lock()
		c.routes[key] = d
		c.mu.Unlock()
	}
	// With online adaptive routing enabled, the cached static decision
	// only supplies the candidate set and analytic priors; the pick
	// itself is re-made against the current observation state, so it can
	// evolve as completed queries feed cycles back in.
	c.adaptMu.Lock()
	if c.adapt != nil {
		d = adaptiveRerank(c.adapt, c.adaptSeq, d)
		c.adaptSeq++
	}
	c.adaptMu.Unlock()
	req.Plan = d.Chosen
	return req, d, nil
}

// reference returns the whole-table oracle for predicate q, computed
// once per distinct predicate.
func (c *Cluster) reference(q db.Q06) *db.ReferenceResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.refs[q]; ok {
		return r
	}
	r := db.Reference(c.whole, q)
	c.refs[q] = r
	return r
}

// referenceQ1 returns the whole-table aggregation oracle for predicate
// q, computed once per distinct predicate.
func (c *Cluster) referenceQ1(q db.Q01) *db.Q1Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.refs1[q]; ok {
		return r
	}
	r := db.ReferenceQ1(c.whole, q)
	c.refs1[q] = r
	return r
}

// runShard produces req's plan's shard-s partial under opt's execution
// mode. Exact mode runs the plan on a pooled machine instance, verifies
// the engine-computed result against the shard reference, and — when
// opt.Counters is set — snapshots the machine's counter registry into
// the partial before the machine is recycled (Reset clears the
// registry). Estimate mode prices the shard analytically instead; see
// estimateShard.
func (c *Cluster) runShard(s int, p query.Plan, opt Options) (ShardPartial, error) {
	if opt.Exec == sweep.ExecEstimate {
		return c.estimateShard(s, p)
	}
	m, err := c.mpool.Get()
	if err != nil {
		return ShardPartial{}, err
	}
	// Recycle on every path: Reset is proven safe even after a run
	// abandoned mid-flight, so failed shard tasks keep the pool warm.
	defer c.mpool.Put(m)
	w, err := query.Prepare(m, c.shards[s], p)
	if err != nil {
		return ShardPartial{}, err
	}
	cycles := uint64(m.Run(w.Stream()))
	if err := w.Verify(); err != nil {
		return ShardPartial{}, err
	}
	var ctrs *obs.Counters
	if opt.Counters {
		ctrs = obs.Capture(m.Registry, m.Engine)
	}
	// Verify passed: the engine's bitmask (and, for aggregation plans,
	// its in-memory accumulators) equals the shard reference, so the
	// reference values ARE the engine-computed partials.
	if w.Ref1 != nil {
		return ShardPartial{
			Shard:    s,
			Cycles:   cycles,
			Matches:  w.Ref1.Matches,
			Revenue:  w.Ref1.Revenue(),
			Groups:   w.GroupResults(),
			Counters: ctrs,
		}, nil
	}
	return ShardPartial{
		Shard:    s,
		Cycles:   cycles,
		Matches:  w.Ref.Matches,
		Revenue:  w.Ref.Revenue,
		Counters: ctrs,
	}, nil
}

// estimateShard is runShard's estimate-mode leg: no machine is built.
// The shard's service time comes from the analytic cost model walking
// the shard's selectivity profile — the same estimator the adaptive
// planner ranks candidates with — and the answer partials come from the
// shard reference evaluator, so the merge step's whole-table
// verification still passes exactly; only the cycle figure is
// approximate (bounded error, pinned by test — see docs/PERFORMANCE.md).
func (c *Cluster) estimateShard(s int, p query.Plan) (ShardPartial, error) {
	shard := c.shards[s]
	est, err := cost.EstimatePlan(c.params, p, cost.ProfileFor(shard, p))
	if err != nil {
		return ShardPartial{}, err
	}
	cycles := uint64(math.Round(est.Cycles))
	if p.Kind == query.Q1Agg {
		ref := db.ReferenceQ1(shard, p.Q1)
		return ShardPartial{
			Shard:   s,
			Cycles:  cycles,
			Matches: ref.Matches,
			Revenue: ref.Revenue(),
			Groups:  append([]db.GroupAgg(nil), ref.Groups[:]...),
		}, nil
	}
	ref := db.Reference(shard, p.Q)
	return ShardPartial{
		Shard:   s,
		Cycles:  cycles,
		Matches: ref.Matches,
		Revenue: ref.Revenue,
	}, nil
}

// merge folds shard partials into a verified Response.
func (c *Cluster) merge(req Request, parts []ShardPartial) (*Response, error) {
	resp := &Response{Request: req, Shards: parts}
	for _, p := range parts {
		resp.Matches += p.Matches
		resp.Revenue += p.Revenue
		resp.WorkCycles += p.Cycles
		if p.Cycles > resp.Cycles {
			resp.Cycles = p.Cycles
		}
		if p.Counters != nil {
			if resp.Counters == nil {
				resp.Counters = p.Counters.Clone()
			} else {
				resp.Counters.Add(p.Counters)
			}
		}
	}
	if req.Plan.Kind == query.Q1Agg {
		return c.mergeQ1(req, resp, parts)
	}
	ref := c.reference(req.Plan.Q)
	if resp.Matches != ref.Matches {
		return nil, fmt.Errorf("serve: %s: merged matches %d, reference %d",
			req.Plan, resp.Matches, ref.Matches)
	}
	if resp.Revenue != ref.Revenue {
		return nil, fmt.Errorf("serve: %s: merged revenue %d, reference %d",
			req.Plan, resp.Revenue, ref.Revenue)
	}
	return resp, nil
}

// mergeQ1 recomposes per-shard group aggregates — contiguous shards
// tile the table, so every (group, aggregate) sum is the plain sum of
// the shard values — and verifies the merged table against the
// unsharded reference evaluator.
func (c *Cluster) mergeQ1(req Request, resp *Response, parts []ShardPartial) (*Response, error) {
	merged := make([]db.GroupAgg, db.NumGroups)
	for g := range merged {
		merged[g].ReturnFlag = int32(g / db.LSValues)
		merged[g].LineStatus = int32(g % db.LSValues)
	}
	for _, p := range parts {
		if len(p.Groups) != db.NumGroups {
			return nil, fmt.Errorf("serve: %s: shard %d returned %d groups, want %d",
				req.Plan, p.Shard, len(p.Groups), db.NumGroups)
		}
		for g := range merged {
			merged[g].Add(p.Groups[g])
		}
	}
	resp.Groups = merged
	ref := c.referenceQ1(req.Plan.Q1)
	if resp.Matches != ref.Matches {
		return nil, fmt.Errorf("serve: %s: merged matches %d, reference %d",
			req.Plan, resp.Matches, ref.Matches)
	}
	for g := range merged {
		if merged[g] != ref.Groups[g] {
			return nil, fmt.Errorf("serve: %s: merged group %d %+v, reference %+v",
				req.Plan, g, merged[g], ref.Groups[g])
		}
	}
	return resp, nil
}

// Query admits one request — routing ArchAuto requests to the
// predicted-fastest backend first — scatters it across every shard
// (shard simulations run concurrently, bounded by opt's executor
// pool), gathers the partials, and returns the merged answer verified
// against the unsharded reference evaluator. Safe for concurrent
// callers.
func (c *Cluster) Query(req Request, opt Options) (*Response, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	req, routing, err := c.resolve(req)
	if err != nil {
		return nil, err
	}
	if err := c.Admit(req); err != nil {
		return nil, err
	}
	parts := make([]ShardPartial, len(c.shards))
	errs := make([]error, len(c.shards))
	workers := opt.EffectiveWorkers()
	if workers > len(c.shards) {
		workers = len(c.shards)
	}
	indices := make(chan int)
	var done sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for s := range indices {
				parts[s], errs[s] = c.runShard(s, req.Plan, opt)
				if opt.OnTask != nil {
					progressMu.Lock()
					completed++
					opt.OnTask(completed, len(c.shards))
					progressMu.Unlock()
				}
			}
		}()
	}
	for s := range c.shards {
		indices <- s
	}
	close(indices)
	done.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", s, err)
		}
	}
	resp, err := c.merge(req, parts)
	if err != nil {
		return nil, err
	}
	resp.Routing = routing
	// Close the feedback loop for routed online queries: the observed
	// critical-path cycles of the completed request update the chosen
	// backend's (kind, selectivity-bucket) cell.
	if routing != nil {
		c.adaptMu.Lock()
		if c.adapt != nil {
			c.adapt.Observe(req.Plan.Kind, req.Plan.Arch, routing.Selectivity, float64(resp.Cycles))
		}
		c.adaptMu.Unlock()
	}
	if opt.Exec == sweep.ExecEstimate {
		resp.ExecMode = opt.Exec.String()
	}
	return resp, nil
}
