package serve

import (
	"runtime"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// TestNewEdgeCases: shard-count edges against a fixed table.
func TestNewEdgeCases(t *testing.T) {
	tab := testTable()
	cases := []struct {
		name    string
		shards  int
		wantErr bool
	}{
		{"zero shards", 0, true},
		{"negative shards", -1, true},
		{"one shard", 1, false},
		{"max shards", testRows / 64, false},
		{"more shards than 64-row groups", testRows/64 + 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(sweep.Default(), tab, tc.shards)
			if tc.wantErr && err == nil {
				t.Fatalf("%d shards accepted", tc.shards)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("%d shards rejected: %v", tc.shards, err)
			}
		})
	}
}

// TestAdmitEdgeCases: the admission table — malformed plans, plans
// outside the envelope, auto plans with no surviving candidate.
func TestAdmitEdgeCases(t *testing.T) {
	c := testCluster(t, 2)
	q := db.DefaultQ06()
	cases := []struct {
		name    string
		req     Request
		wantErr string
	}{
		{"valid hipe", Request{Plan: DefaultPlan(query.HIPE, q)}, ""},
		{"valid auto", Request{Plan: DefaultPlan(query.ArchAuto, q)}, ""},
		{"unknown backend", Request{Plan: query.Plan{
			Arch: query.Arch(0x42), Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 32, Q: q,
		}}, "arch"},
		{"bad op size", Request{Plan: query.Plan{
			Arch: query.X86, Strategy: query.ColumnAtATime, OpSize: 7, Unroll: 8, Q: q,
		}}, "op size"},
		{"zero unroll", Request{Plan: query.Plan{
			Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 256, Unroll: 0, Q: q,
		}}, "unroll"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := c.Admit(tc.req)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("admitted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestFleetAdmitAllReplicasUnavailable: when every pool's plan is
// rejected by the envelope, admission fails with the no-replica error
// rather than panicking or queueing undeliverable work.
func TestFleetAdmitAllReplicasUnavailable(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.HIPE)
	// An x86 request on an all-HIPE fleet: no pool matches.
	err := f.Admit(Request{Plan: DefaultPlan(query.X86, db.DefaultQ06())})
	if err == nil || !strings.Contains(err.Error(), "no replica pool") {
		t.Fatalf("want the no-replica-pool error, got %v", err)
	}
	// A malformed plan is undeliverable on every pool even when the
	// architecture matches.
	bad := query.Plan{Arch: query.HIPE, Strategy: query.ColumnAtATime, OpSize: 7, Unroll: 32, Q: db.DefaultQ06()}
	if err := f.Admit(Request{Plan: bad}); err == nil {
		t.Fatal("malformed plan admitted")
	}
}

// TestEffectiveWorkersTable: the worker-count resolution table,
// including the GOMAXPROCS default at zero and negative counts.
func TestEffectiveWorkersTable(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name    string
		workers int
		want    int
	}{
		{"zero defaults to GOMAXPROCS", 0, procs},
		{"negative defaults to GOMAXPROCS", -3, procs},
		{"one", 1, 1},
		{"GOMAXPROCS explicit", procs, procs},
		{"beyond GOMAXPROCS honoured", procs + 5, procs + 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (Options{Workers: tc.workers}).EffectiveWorkers(); got != tc.want {
				t.Fatalf("EffectiveWorkers(%d) = %d, want %d", tc.workers, got, tc.want)
			}
		})
	}
}

// TestLoadSpecZeroCapacityEdges: empty request sets, zero concurrency
// and zero rates are refused before any simulation runs.
func TestLoadSpecZeroCapacityEdges(t *testing.T) {
	reqs := make([]Request, 2)
	cases := []struct {
		name string
		spec LoadSpec
	}{
		{"no requests open", OpenLoop(nil, 100, 0, 1)},
		{"no requests closed", ClosedLoop(nil, 2)},
		{"zero interarrival", OpenLoop(reqs, 0, 0, 1)},
		{"zero concurrency", ClosedLoop(reqs, 0)},
		{"negative concurrency", ClosedLoop(reqs, -4)},
		{"unknown mode", LoadSpec{Requests: reqs, Mode: Mode(99)}},
		{"unnamed class", func() LoadSpec {
			s := OpenLoop(reqs, 100, 0, 1)
			s.Classes = []ClassSpec{{}}
			return s
		}()},
		{"shed without classes", func() LoadSpec {
			s := OpenLoop(reqs, 100, 0, 1)
			s.Shed = true
			return s
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.validate(); err == nil {
				t.Fatal("malformed spec accepted")
			}
		})
	}
}
