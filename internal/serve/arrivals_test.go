package serve

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
)

// randomLoadSpec draws one arrival-process spec — Poisson or
// trace-driven, uniformly — with bounded parameters so virtual time
// can never overflow.
func randomLoadSpec(r *db.RNG) LoadSpec {
	n := int(r.Intn(200)) + 1
	spec := LoadSpec{
		Requests:    make([]Request, n),
		Mode:        Open,
		ArrivalSeed: uint64(r.Intn(1 << 30)),
	}
	if r.Intn(2) == 1 {
		spec.DurationCycles = uint64(r.Intn(50_000_000)) + 1
	}
	mean := uint64(r.Intn(1_000_000)) + 1
	if r.Intn(2) == 0 {
		spec.MeanInterarrival = mean
		return spec
	}
	trace := &TraceSpec{Mean: mean}
	if r.Intn(2) == 1 {
		trace.DiurnalPeriod = uint64(r.Intn(10_000_000)) + 1
		trace.DiurnalAmp = 0.99 * float64(r.Intn(100)) / 100
	}
	if r.Intn(2) == 1 {
		trace.BurstFactor = 1 + float64(r.Intn(10))
		trace.BurstOn = uint64(r.Intn(1_000_000)) + 1
		trace.BurstOff = uint64(r.Intn(1_000_000)) + 1
	}
	spec.Trace = trace
	return spec
}

// TestArrivalsProperties is the quick-check satellite: for any random
// spec — Poisson or trace-driven — the arrival timeline is
// non-decreasing, never exceeds the declared duration, never exceeds
// the request count, and is byte-identical on repeated materialisation.
func TestArrivalsProperties(t *testing.T) {
	r := db.NewRNG(0xA11_1BA1)
	for trial := 0; trial < 200; trial++ {
		spec := randomLoadSpec(r)
		if err := spec.validate(); err != nil {
			t.Fatalf("trial %d: generator produced an invalid spec: %v", trial, err)
		}
		a := spec.arrivals()
		b := spec.arrivals()
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d then %d arrivals from the same spec", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: arrival %d is %d then %d — not replayable", trial, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("trial %d: arrivals decrease at %d: %d after %d", trial, i, a[i], a[i-1])
			}
			if spec.DurationCycles > 0 && a[i] >= spec.DurationCycles {
				t.Fatalf("trial %d: arrival %d at %d breaches duration %d",
					trial, i, a[i], spec.DurationCycles)
			}
		}
		if len(a) > len(spec.Requests) {
			t.Fatalf("trial %d: %d arrivals for %d requests", trial, len(a), len(spec.Requests))
		}
	}
}

// TestTraceSpecValidation: the trace validator rejects each malformed
// field and the mode cross-checks hold.
func TestTraceSpecValidation(t *testing.T) {
	reqs := make([]Request, 4)
	cases := []struct {
		name  string
		spec  LoadSpec
		valid bool
	}{
		{"plain trace", TraceLoop(reqs, TraceSpec{Mean: 100}, 0, 1), true},
		{"zero mean", TraceLoop(reqs, TraceSpec{}, 0, 1), false},
		{"amp without period", TraceLoop(reqs, TraceSpec{Mean: 100, DiurnalAmp: 0.5}, 0, 1), false},
		{"amp at one", TraceLoop(reqs, TraceSpec{Mean: 100, DiurnalPeriod: 10, DiurnalAmp: 1}, 0, 1), false},
		{"negative amp", TraceLoop(reqs, TraceSpec{Mean: 100, DiurnalPeriod: 10, DiurnalAmp: -0.1}, 0, 1), false},
		{"burst below one", TraceLoop(reqs, TraceSpec{Mean: 100, BurstFactor: 0.5, BurstOn: 1, BurstOff: 1}, 0, 1), false},
		{"burst without durations", TraceLoop(reqs, TraceSpec{Mean: 100, BurstFactor: 2}, 0, 1), false},
		{"full trace", TraceLoop(reqs, TraceSpec{
			Mean: 100, DiurnalPeriod: 1000, DiurnalAmp: 0.5,
			BurstFactor: 4, BurstOn: 50, BurstOff: 500,
		}, 0, 1), true},
	}
	for _, tc := range cases {
		err := tc.spec.validate()
		if tc.valid && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.valid && err == nil {
			t.Errorf("%s: malformed spec accepted", tc.name)
		}
	}
	// Trace and Poisson are mutually exclusive; closed mode takes
	// neither.
	both := TraceLoop(reqs, TraceSpec{Mean: 100}, 0, 1)
	both.MeanInterarrival = 100
	if both.validate() == nil {
		t.Error("trace plus mean interarrival accepted")
	}
	closed := ClosedLoop(reqs, 2)
	closed.Trace = &TraceSpec{Mean: 100}
	if closed.validate() == nil {
		t.Error("closed-loop trace accepted")
	}
}

// TestTraceArrivalsModulate: bursts and diurnal swing must actually
// change the timeline relative to the plain process — the knobs are
// load-bearing, not decorative.
func TestTraceArrivalsModulate(t *testing.T) {
	reqs := make([]Request, 64)
	plain := TraceLoop(reqs, TraceSpec{Mean: 10_000}, 0, 21).arrivals()
	burst := TraceLoop(reqs, TraceSpec{
		Mean: 10_000, BurstFactor: 8, BurstOn: 100_000, BurstOff: 100_000,
	}, 0, 21).arrivals()
	if plain[len(plain)-1] <= burst[len(burst)-1] {
		t.Fatalf("8x bursts did not compress the timeline: plain ends %d, burst ends %d",
			plain[len(plain)-1], burst[len(burst)-1])
	}
	diurnal := TraceLoop(reqs, TraceSpec{
		Mean: 10_000, DiurnalPeriod: 200_000, DiurnalAmp: 0.9,
	}, 0, 21).arrivals()
	same := true
	for i := range plain {
		if diurnal[i] != plain[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("diurnal modulation left the timeline untouched")
	}
}
