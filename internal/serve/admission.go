// Admission control: request classes, per-class latency SLOs, and the
// shed policy a replicated fleet applies under overload. Classes are
// declared on the load spec; requests carry an index into that table.
// Shedding is a pure function of the virtual-time queue state, so it is
// exactly as deterministic — and as worker-count-independent — as the
// rest of the timeline replay.
package serve

import "github.com/hipe-sim/hipe/internal/stats"

// ClassSpec declares one admission class.
type ClassSpec struct {
	// Name labels the class in reports ("batch", "interactive", ...).
	Name string
	// SLOCycles is the class's latency objective in simulated cycles
	// (inclusive). Zero means the class has no SLO; its attainment
	// column reports blank.
	SLOCycles uint64
	// PatienceCycles bounds the queueing delay the class tolerates when
	// shedding is enabled: a request is shed when even the least-loaded
	// candidate replica's backlog exceeds this. Zero means the class is
	// never shed — give the highest class zero patience bound and
	// overload sheds lowest-patience (typically lowest-value) work
	// first.
	PatienceCycles uint64
	// TimeoutCycles bounds one attempt's virtual-time latency (queueing
	// plus service) when a recovery policy is in force: an attempt that
	// cannot complete every shard by dispatch + timeout is abandoned at
	// the deadline and, retry budget permitting, re-dispatched. Zero
	// means attempts are never timed out (a crashed replica then parks
	// the attempt until the pool recovers).
	TimeoutCycles uint64
	// HedgeCycles is the class's hedging delay: when the recovery
	// policy enables hedging and the primary attempt has not completed
	// this many cycles after dispatch, a second attempt launches on the
	// next-ranked distinct replica pool and the first successful
	// completion wins. Zero disables hedging for the class.
	HedgeCycles uint64
}

// ClassStats is one class's row in a fleet report: offered/shed/done
// counts, latency quantiles, and exact SLO attainment.
type ClassStats struct {
	// Class is the index into the load spec's class table.
	Class int
	// Name echoes the class spec.
	Name string
	// SLOCycles echoes the class's latency objective (0 = none).
	SLOCycles uint64 `json:",omitempty"`
	// PatienceCycles echoes the class's shed bound (0 = never shed).
	PatienceCycles uint64 `json:",omitempty"`
	// Offered counts the class's arrivals; Shed the requests admission
	// control refused; Completed the requests served.
	Offered   int
	Shed      int `json:",omitempty"`
	Completed int
	// Attained counts completed requests inside the SLO; Attainment is
	// the exact fraction Attained/Completed (0 when no SLO or empty).
	Attained   int     `json:",omitempty"`
	Attainment float64 `json:",omitempty"`
	// Latency quantiles over the class's completed requests, in cycles.
	LatencyP50 uint64
	LatencyP95 uint64
	LatencyP99 uint64
	// Recovery accounting, set only when the load test injected faults
	// or declared a recovery policy (JSON-omitted otherwise, so
	// fault-free reports are byte-identical to their pre-fault form).
	// Degraded counts completed requests answered with a partial
	// result after the retry budget ran out — a degraded request counts
	// against SLO attainment no matter how fast it failed. Retries,
	// Hedges, HedgeWins and Failovers total the class's recovery
	// actions.
	Degraded  int `json:",omitempty"`
	Retries   int `json:",omitempty"`
	Hedges    int `json:",omitempty"`
	HedgeWins int `json:",omitempty"`
	Failovers int `json:",omitempty"`
	// MeanCoverage is the mean fraction of table rows actually scanned
	// across the class's completed requests (1 when nothing degraded);
	// MeanAnswerErr the mean relative revenue error of the returned
	// answers against the reference evaluator (0 when nothing
	// degraded). Both only set on faulted/recovering runs.
	MeanCoverage  float64 `json:",omitempty"`
	MeanAnswerErr float64 `json:",omitempty"`
}

// ShedTrace records one shed request for auditability.
type ShedTrace struct {
	// Index is the request's position in the admitted stream.
	Index int
	// Class is its admission class.
	Class int
	// Arrival is the virtual cycle it arrived (and was refused) at.
	Arrival uint64
	// QueueCycles is the backlog on the least-loaded candidate replica
	// at arrival — the delay bound the class's patience lost to.
	QueueCycles uint64
}

// classAccum accumulates one class's report row during the replay.
type classAccum struct {
	hist stats.LogHist
	slo  stats.Attainment
	row  ClassStats
	// recovering marks a faulted/recovering replay: coverage and error
	// means are derived (and emitted) only then.
	recovering  bool
	coverageSum float64
	errSum      float64
}

func newClassAccums(classes []ClassSpec) []classAccum {
	out := make([]classAccum, len(classes))
	for i, cs := range classes {
		out[i].slo.Bound = cs.SLOCycles
		out[i].row = ClassStats{
			Class: i, Name: cs.Name,
			SLOCycles: cs.SLOCycles, PatienceCycles: cs.PatienceCycles,
		}
	}
	return out
}

// observe folds one completed request into the class's row.
func (a *classAccum) observe(latency uint64, hasSLO bool) {
	a.row.Completed++
	a.hist.Observe(latency)
	if hasSLO {
		a.slo.Observe(latency)
	}
}

// observeRecovered folds one completed request of a faulted/recovering
// replay into the row: latency and SLO accounting as usual, except
// that a degraded (partial) answer counts as an SLO miss no matter how
// quickly the fleet gave up — a wrong answer inside the latency bound
// is still a broken objective.
func (a *classAccum) observeRecovered(latency uint64, hasSLO, degraded bool, coverage, answerErr float64) {
	a.recovering = true
	a.row.Completed++
	a.hist.Observe(latency)
	if hasSLO {
		if degraded {
			a.slo.Miss()
		} else {
			a.slo.Observe(latency)
		}
	}
	if degraded {
		a.row.Degraded++
	}
	a.coverageSum += coverage
	a.errSum += answerErr
}

// finish freezes the row.
func (a *classAccum) finish() ClassStats {
	a.row.LatencyP50 = a.hist.Quantile(0.50)
	a.row.LatencyP95 = a.hist.Quantile(0.95)
	a.row.LatencyP99 = a.hist.Quantile(0.99)
	if a.row.SLOCycles > 0 {
		a.row.Attained = int(a.slo.Met)
		a.row.Attainment = a.slo.Fraction()
	}
	if a.recovering && a.row.Completed > 0 {
		a.row.MeanCoverage = a.coverageSum / float64(a.row.Completed)
		a.row.MeanAnswerErr = a.errSum / float64(a.row.Completed)
	}
	return a.row
}
