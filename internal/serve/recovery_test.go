package serve

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/fault"
	"github.com/hipe-sim/hipe/internal/query"
)

// calibrate returns one representative request's idle critical path —
// the service-time unit the fault tests scale every duration by, so
// the pins hold on any timing model.
func calibrate(t *testing.T, f *Fleet, req Request) uint64 {
	t.Helper()
	resp, err := f.Query(req, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Cycles
}

// TestFleetFaultRecovery is the chaos acceptance pin: a mid-run replica
// crash under 2x overload, with retries + timeouts + failover on, must
// keep the premium class's SLO attainment above the pinned floor and
// strictly beat the recovery-off baseline (same faults, no recovery
// policy: requests park behind the dead replica).
func TestFleetFaultRecovery(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.HIPE)
	reqs := testClassStream(t, 120, 3)
	s := calibrate(t, f, reqs[0])
	// The schedule: pool 1 dies outright mid-run, and both pools keep
	// suffering occasional stochastic outages longer than the premium
	// SLO. Fault-blind routing parks a request behind each fresh
	// outage; health-aware failover routes around them.
	faults := &fault.Spec{
		Seed:       5,
		CrashEvery: 20 * s, CrashDown: 5 * s,
		Crashes: []fault.Crash{{Pool: 1, At: 5 * s, Down: 10 * s}},
	}
	classes := func(timeout uint64) []ClassSpec {
		return []ClassSpec{
			{Name: "batch", SLOCycles: 8 * s, PatienceCycles: s, TimeoutCycles: timeout},
			{Name: "normal", SLOCycles: 6 * s, PatienceCycles: 2 * s, TimeoutCycles: timeout},
			{Name: "premium", SLOCycles: 4 * s, TimeoutCycles: timeout}, // never shed
		}
	}
	run := func(rec *RecoverySpec, timeout uint64) *Report {
		spec := OpenLoop(reqs, s/2, 0, 17)
		spec.Classes = classes(timeout)
		spec.Shed = true
		spec.Faults = faults
		spec.Recovery = rec
		rep, err := f.LoadTest(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(nil, 0)
	// The timeout sits at the largest class SLO: it only ever fires on
	// attempts that are already doomed (parked behind the outage), so
	// cancel-and-retry can rescue coverage without manufacturing new
	// SLO misses.
	rec := run(&RecoverySpec{
		MaxRetries:    2,
		BackoffCycles: s / 16,
		Failover:      true,
	}, 8*s)

	if base.Faults == nil || rec.Faults == nil {
		t.Fatal("faulted reports missing fault totals")
	}
	if rec.Faults.Failovers == 0 {
		t.Fatal("failover routing never routed around the dead replica")
	}
	b, p := base.Classes[2].Attainment, rec.Classes[2].Attainment
	if p <= b {
		t.Fatalf("premium attainment %.3f with recovery, %.3f without — recovery must improve it", p, b)
	}
	// The pinned floor: recovery keeps the premium class serviceable
	// through the outages.
	if p < 0.9 {
		t.Fatalf("premium attainment %.3f with recovery, want >= 0.9", p)
	}
}

// TestFleetFaultFreeByteIdentical: a disabled (zero) fault spec must
// leave the whole report byte-identical to a plain fleet run — the
// legacy dispatch path, not a faulty twin of it.
func TestFleetFaultFreeByteIdentical(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86)
	spec := fleetSpecs(t)["poisson"]
	plain, err := f.LoadTest(spec, Options{Workers: 2, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = &fault.Spec{} // declared but disabled
	disabled, err := f.LoadTest(spec, Options{Workers: 2, Counters: true})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := disabled.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("zero fault spec changed the report")
	}
	var csv bytes.Buffer
	if err := plain.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(csv.String(), "\n", 2)[0], "coverage") {
		t.Fatal("fault columns leaked into a fault-free CSV header")
	}
}

// TestFleetRecoveryPathMatchesLegacyWhenHealthy: with a recovery policy
// declared but no faults and no timeouts, the recovery dispatch must
// reproduce the legacy replay's timeline exactly — same pools, same
// completions, same shed set.
func TestFleetRecoveryPathMatchesLegacyWhenHealthy(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86, query.HMC)
	spec := fleetSpecs(t)["poisson"]
	legacy, err := f.LoadTest(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Recovery = &RecoverySpec{MaxRetries: 3, BackoffCycles: 100}
	rec, err := f.LoadTest(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Faults == nil {
		t.Fatal("recovering run missing fault totals")
	}
	if legacy.Completed != rec.Completed || legacy.Shed != rec.Shed {
		t.Fatalf("healthy recovery replay served %d/shed %d, legacy %d/%d",
			rec.Completed, rec.Shed, legacy.Completed, legacy.Shed)
	}
	for i := range legacy.Requests {
		l, r := legacy.Requests[i], rec.Requests[i]
		if l.Completion != r.Completion || l.Pool.Pool != r.Pool.Pool {
			t.Fatalf("request %d: healthy recovery replay (pool %d, completion %d) diverged from legacy (pool %d, completion %d)",
				l.Index, r.Pool.Pool, r.Completion, l.Pool.Pool, l.Completion)
		}
		if r.Attempts != 1 || r.Degraded || r.Coverage != 1 {
			t.Fatalf("request %d: healthy run recorded attempts=%d degraded=%v coverage=%g",
				l.Index, r.Attempts, r.Degraded, r.Coverage)
		}
	}
}

// TestFleetHedgeWinsOverCrashedPrimary: a crash that kills the primary
// attempt mid-flight must let the hedge's second-pool attempt supply
// the completion.
func TestFleetHedgeWinsOverCrashedPrimary(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.HIPE)
	req := testClassStream(t, 1, 0)[0]
	s := calibrate(t, f, req)
	// Closed loop, one client: the request dispatches at exactly t=0,
	// so the scheduled crash window lands mid-service.
	spec := ClosedLoop([]Request{req}, 1)
	spec.Classes = []ClassSpec{{Name: "only", HedgeCycles: s / 4}}
	// Pool 0 (the idle-fleet tie-break pick) dies mid-service.
	spec.Faults = &fault.Spec{Crashes: []fault.Crash{{Pool: 0, At: s / 2, Down: 10 * s}}}
	spec.Recovery = &RecoverySpec{Hedge: true}
	rep, err := f.LoadTest(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.CrashKills == 0 {
		t.Fatal("scheduled crash killed nothing")
	}
	if rep.Faults.Hedges != 1 || rep.Faults.HedgeWins != 1 {
		t.Fatalf("hedges/wins = %d/%d, want 1/1", rep.Faults.Hedges, rep.Faults.HedgeWins)
	}
	tr := rep.Requests[0]
	if !tr.HedgeWon || tr.Degraded {
		t.Fatalf("trace hedgeWon=%v degraded=%v, want hedge win, no degradation", tr.HedgeWon, tr.Degraded)
	}
	if tr.Pool.Pool != 1 {
		t.Fatalf("winning pool %d, want the hedge pool 1", tr.Pool.Pool)
	}
	if tr.Coverage != 1 || tr.ErrRevenue != 0 {
		t.Fatalf("hedge-recovered request coverage %g err %g, want exact answer", tr.Coverage, tr.ErrRevenue)
	}
}

// TestFleetFailoverAvoidsDownPool: with the whole of pool 0 down on
// arrival, failover must route to the healthy replica immediately;
// the recovery-off baseline parks behind the outage instead.
func TestFleetFailoverAvoidsDownPool(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.HIPE)
	req := testClassStream(t, 1, 0)[0]
	s := calibrate(t, f, req)
	faults := &fault.Spec{Crashes: []fault.Crash{{Pool: 0, At: 0, Down: 20 * s}}}
	run := func(rec *RecoverySpec) *Report {
		spec := ClosedLoop([]Request{req}, 1)
		spec.Faults = faults
		spec.Recovery = rec
		rep, err := f.LoadTest(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	parked := run(nil)
	failed := run(&RecoverySpec{Failover: true})
	if parked.Requests[0].Completion < 20*s {
		t.Fatalf("recovery-off request completed at cycle %d; it should have parked behind the outage ending at %d",
			parked.Requests[0].Completion, 20*s)
	}
	if failed.Faults.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failed.Faults.Failovers)
	}
	if got := failed.Requests[0].Pool.Pool; got != 1 {
		t.Fatalf("failover routed to pool %d, want 1", got)
	}
	if failed.Requests[0].Latency >= parked.Requests[0].Latency {
		t.Fatal("failover did not improve latency over parking")
	}
}

// TestFleetDegradedPartialResults: when the retry budget runs out the
// request must degrade with exact coverage and error accounting, and
// the degraded request must count as an SLO miss however fast it gave
// up.
func TestFleetDegradedPartialResults(t *testing.T) {
	f := testFleet(t, 2, query.HIPE)
	req := testClassStream(t, 1, 0)[0]
	s := calibrate(t, f, req)
	spec := OpenLoop([]Request{req}, s, 0, 3)
	// One pool, fully down for the whole horizon, a timeout far below
	// the outage: the only attempt can never start, so the request
	// degrades with zero coverage.
	spec.Classes = []ClassSpec{{Name: "only", SLOCycles: 100 * s, TimeoutCycles: s}}
	spec.Faults = &fault.Spec{Crashes: []fault.Crash{{Pool: 0, At: 0, Down: 50 * s}}}
	rep, err := f.LoadTest(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != 1 || rep.Faults.Degraded != 1 {
		t.Fatalf("degraded totals %d/%d, want 1/1", rep.Degraded, rep.Faults.Degraded)
	}
	tr := rep.Requests[0]
	if !tr.Degraded || tr.Coverage != 0 || tr.Matches != 0 || tr.Revenue != 0 {
		t.Fatalf("zero-coverage degradation recorded %+v", tr)
	}
	if tr.ErrMatches != 1 || tr.ErrRevenue != 1 {
		t.Fatalf("relative errors %g/%g, want 1/1 against a non-zero reference", tr.ErrMatches, tr.ErrRevenue)
	}
	cs := rep.Classes[0]
	if cs.Degraded != 1 || cs.MeanCoverage != 0 {
		t.Fatalf("class row %+v, want 1 degraded with mean coverage 0", cs)
	}
	// The request returned within the (generous) SLO bound, but a
	// partial answer is a miss by definition.
	if tr.Latency > cs.SLOCycles {
		t.Fatalf("test premise broken: degraded latency %d above the SLO bound", tr.Latency)
	}
	if cs.Attained != 0 || cs.Attainment != 0 {
		t.Fatalf("degraded request attained the SLO: %+v", cs)
	}
	// The CSV gains the fault columns, and the degraded row reads
	// false SLO attainment plus its coverage.
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range FaultCSVHeader() {
		if !strings.Contains(header, col) {
			t.Fatalf("faulted CSV header %q missing column %q", header, col)
		}
	}
}

// TestFleetDegradedCoverageConsistency: across a faulted overloaded
// run, every request's coverage sits in [0, 1], full coverage implies
// exact answers, and the class rows' mean coverage reproduces the
// per-request mean exactly.
func TestFleetDegradedCoverageConsistency(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.HIPE)
	reqs := testClassStream(t, 40, 2)
	s := calibrate(t, f, reqs[0])
	spec := OpenLoop(reqs, s/2, 0, 29)
	spec.Classes = []ClassSpec{
		{Name: "a", SLOCycles: 6 * s, TimeoutCycles: 2 * s},
		{Name: "b", SLOCycles: 4 * s, TimeoutCycles: 2 * s},
	}
	spec.Faults = &fault.Spec{
		Seed:       11,
		CrashEvery: 8 * s, CrashDown: 4 * s,
		StraggleEvery: 6 * s, StraggleFor: 3 * s, StraggleFactor: 4,
	}
	spec.Recovery = &RecoverySpec{MaxRetries: 1, BackoffCycles: s / 8, Failover: true}
	rep, err := f.LoadTest(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == 0 {
		t.Fatal("hostile schedule degraded nothing; the consistency sweep needs degraded requests")
	}
	covSum := make([]float64, len(rep.Classes))
	n := make([]int, len(rep.Classes))
	for _, tr := range rep.Requests {
		if tr.Coverage < 0 || tr.Coverage > 1 {
			t.Fatalf("request %d coverage %g outside [0, 1]", tr.Index, tr.Coverage)
		}
		if tr.Coverage == 1 && (tr.ErrMatches != 0 || tr.ErrRevenue != 0) {
			t.Fatalf("request %d: full coverage with errors %g/%g", tr.Index, tr.ErrMatches, tr.ErrRevenue)
		}
		if !tr.Degraded && tr.Coverage != 1 {
			t.Fatalf("request %d: non-degraded with coverage %g", tr.Index, tr.Coverage)
		}
		covSum[tr.Class] += tr.Coverage
		n[tr.Class]++
	}
	for ci, cs := range rep.Classes {
		if n[ci] == 0 {
			continue
		}
		want := covSum[ci] / float64(n[ci])
		if math.Abs(cs.MeanCoverage-want) > 1e-12 {
			t.Fatalf("class %d mean coverage %g, per-request mean %g", ci, cs.MeanCoverage, want)
		}
	}
}

// TestFleetFaultedDeterministicAcrossWorkerCounts extends the
// determinism gate to the fault path: the full faulted, recovering
// report — CSV and JSON — is byte-identical at any executor width.
func TestFleetFaultedDeterministicAcrossWorkerCounts(t *testing.T) {
	f := testFleet(t, 2, query.HIPE, query.X86, query.HMC)
	spec := fleetSpecs(t)["poisson"]
	for i := range spec.Classes {
		spec.Classes[i].TimeoutCycles = 600_000
		spec.Classes[i].HedgeCycles = 150_000
	}
	spec.Faults = &fault.Spec{
		Seed:       13,
		CrashEvery: 900_000, CrashDown: 300_000,
		StraggleEvery: 700_000, StraggleFor: 200_000, StraggleFactor: 2.5,
		StallEvery: 500_000, StallFor: 40_000, StallMax: 100_000,
		Crashes: []fault.Crash{{Pool: 1, At: 200_000, Down: 400_000}},
	}
	spec.Recovery = &RecoverySpec{
		MaxRetries: 2, BackoffCycles: 10_000, BackoffCapCycles: 50_000,
		Hedge: true, Failover: true,
	}
	var wantCSV, wantJSON []byte
	for _, workers := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		rep, err := f.LoadTest(spec, Options{Workers: workers, Counters: true})
		if err != nil {
			t.Fatal(err)
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := rep.WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&jsonBuf); err != nil {
			t.Fatal(err)
		}
		if wantCSV == nil {
			wantCSV, wantJSON = csvBuf.Bytes(), jsonBuf.Bytes()
			continue
		}
		if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
			t.Fatalf("faulted CSV differs at %d workers", workers)
		}
		if !bytes.Equal(jsonBuf.Bytes(), wantJSON) {
			t.Fatalf("faulted JSON differs at %d workers", workers)
		}
	}
}

// TestLoadSpecRejectsBadFaultFields: malformed fault and recovery specs
// die in validation, and the single-replica cluster refuses both
// outright.
func TestLoadSpecRejectsBadFaultFields(t *testing.T) {
	f := testFleet(t, 2, query.HIPE)
	reqs := testClassStream(t, 2, 0)
	bad := []LoadSpec{}
	s1 := OpenLoop(reqs, 1000, 0, 1)
	s1.Faults = &fault.Spec{CrashEvery: 100} // no outage duration
	bad = append(bad, s1)
	s2 := OpenLoop(reqs, 1000, 0, 1)
	s2.Recovery = &RecoverySpec{MaxRetries: -1}
	bad = append(bad, s2)
	s3 := OpenLoop(reqs, 1000, 0, 1)
	s3.Recovery = &RecoverySpec{BackoffCycles: 100, BackoffCapCycles: 10}
	bad = append(bad, s3)
	s4 := OpenLoop(reqs, 1000, 0, 1)
	s4.Faults = &fault.Spec{Crashes: []fault.Crash{{Pool: 5, At: 0, Down: 10}}} // outside the fleet
	bad = append(bad, s4)
	for i, spec := range bad {
		if _, err := f.LoadTest(spec, Options{Workers: 1}); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	c := testCluster(t, 2)
	spec := OpenLoop(testStream(t, 2), 1000, 0, 1)
	spec.Faults = &fault.Spec{CrashEvery: 100, CrashDown: 10}
	if _, err := c.LoadTest(spec, Options{Workers: 1}); err == nil {
		t.Fatal("cluster load test accepted fault injection")
	}
	spec = OpenLoop(testStream(t, 2), 1000, 0, 1)
	spec.Recovery = &RecoverySpec{MaxRetries: 1}
	if _, err := c.LoadTest(spec, Options{Workers: 1}); err == nil {
		t.Fatal("cluster load test accepted a recovery policy")
	}
}

// TestRecoveryGateZeroAlloc pins the faults-off fast path: the replay
// gate plus a full set of health queries against the absent (nil)
// injector must not allocate — the legacy dispatch stays exactly as
// cheap as before the fault layer existed.
func TestRecoveryGateZeroAlloc(t *testing.T) {
	rp := &fleetReplay{}
	var sink bool
	allocs := testing.AllocsPerRun(200, func() {
		sink = rp.recovering()
		rp.inj.DownUntil(0, 1000)
		rp.inj.NextCrash(0, 0, 1000)
		rp.inj.Slowdown(0, 0, 1000)
		rp.inj.StallUntil(0, 0, 1000)
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("faults-off gate allocates %.1f times per run, want 0", allocs)
	}
}
