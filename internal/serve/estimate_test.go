package serve

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

func estimateTestCluster(t *testing.T) *Cluster {
	t.Helper()
	tab := db.GenerateMemo(4096, 42)
	c, err := New(sweep.Config{Tuples: 4096, Seed: 42}, tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEstimateQueryExactAnswers checks the serving estimate path keeps
// answers exact: the merged response passes the whole-table reference
// verification (Query errors otherwise), carries the mode marker, and
// only the cycle figures differ from an exact run.
func TestEstimateQueryExactAnswers(t *testing.T) {
	c := estimateTestCluster(t)
	for _, req := range []Request{
		{Plan: DefaultPlan(query.HIPE, db.DefaultQ06())},
		{Plan: DefaultQ1Plan(query.HIPE, db.DefaultQ01())},
		{Plan: DefaultPlan(query.ArchAuto, db.DefaultQ06())},
	} {
		exact, err := c.Query(req, Options{})
		if err != nil {
			t.Fatalf("exact %s: %v", req.Plan, err)
		}
		est, err := c.Query(req, Options{Exec: sweep.ExecEstimate})
		if err != nil {
			t.Fatalf("estimate %s: %v", req.Plan, err)
		}
		if est.ExecMode != "estimate" {
			t.Errorf("%s: ExecMode = %q, want estimate", req.Plan, est.ExecMode)
		}
		if exact.ExecMode != "" {
			t.Errorf("%s: exact response carries ExecMode %q", req.Plan, exact.ExecMode)
		}
		if est.Matches != exact.Matches || est.Revenue != exact.Revenue {
			t.Errorf("%s: estimate answers (%d, %d) differ from exact (%d, %d)",
				req.Plan, est.Matches, est.Revenue, exact.Matches, exact.Revenue)
		}
		if len(est.Groups) != len(exact.Groups) {
			t.Errorf("%s: group count differs", req.Plan)
		}
		for g := range est.Groups {
			if est.Groups[g] != exact.Groups[g] {
				t.Errorf("%s: group %d differs", req.Plan, g)
			}
		}
		if est.Cycles == 0 {
			t.Errorf("%s: estimate produced zero cycles", req.Plan)
		}
		if (est.Routing == nil) != (exact.Routing == nil) {
			t.Errorf("%s: routing presence differs across modes", req.Plan)
		}
	}
}

// TestEstimateRefusals pins the serving-side hard refusals: estimate
// mode can produce neither machine counters nor machine-replay traces.
func TestEstimateRefusals(t *testing.T) {
	c := estimateTestCluster(t)
	req := Request{Plan: DefaultPlan(query.HIPE, db.DefaultQ06())}
	spec := ClosedLoop([]Request{req}, 1)
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"counters", Options{Exec: sweep.ExecEstimate, Counters: true}, "cannot produce machine counters"},
		{"trace", Options{Exec: sweep.ExecEstimate, Trace: true}, "cannot produce machine-replay traces"},
		{"unknown", Options{Exec: sweep.ExecMode(9)}, "unknown exec mode"},
	}
	for _, tc := range cases {
		if _, err := c.Query(req, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Query %s: got %v, want error containing %q", tc.name, err, tc.want)
		}
		if _, err := c.LoadTest(spec, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("LoadTest %s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	f, err := NewFleet(sweep.Config{Tuples: 4096, Seed: 42}, db.GenerateMemo(4096, 42), 4,
		[]query.Arch{query.HIPE, query.X86})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if _, err := f.Query(req, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Fleet.Query %s: got %v, want error containing %q", tc.name, err, tc.want)
		}
		if _, err := f.LoadTest(spec, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Fleet.LoadTest %s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestEstimateLoadTestReport checks estimate-mode load tests: the
// report carries the mode marker and the exec_mode CSV column, exact
// reports carry neither, and estimate reports are byte-identical at
// any worker count.
func TestEstimateLoadTestReport(t *testing.T) {
	c := estimateTestCluster(t)
	reqs, err := (StreamSpec{N: 12, Seed: 7, Q1Every: 5}).Requests()
	if err != nil {
		t.Fatal(err)
	}
	spec := OpenLoop(reqs, 40_000, 0, 11)

	exact, err := c.LoadTest(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.ExecMode != "" {
		t.Errorf("exact report ExecMode = %q", exact.ExecMode)
	}
	var exactCSV bytes.Buffer
	if err := exact.WriteCSV(&exactCSV); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(exactCSV.String(), "\n", 2)[0], "exec_mode") {
		t.Error("exact report CSV grew an exec_mode column")
	}

	var csvs [2]bytes.Buffer
	for i, workers := range []int{1, 7} {
		r, err := c.LoadTest(spec, Options{Exec: sweep.ExecEstimate, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.ExecMode != "estimate" {
			t.Fatalf("workers=%d: report ExecMode = %q, want estimate", workers, r.ExecMode)
		}
		if err := r.WriteCSV(&csvs[i]); err != nil {
			t.Fatal(err)
		}
	}
	header := strings.SplitN(csvs[0].String(), "\n", 2)[0]
	if !strings.Contains(header, "exec_mode") {
		t.Errorf("estimate report CSV lacks exec_mode column (header %q)", header)
	}
	if !bytes.Equal(csvs[0].Bytes(), csvs[1].Bytes()) {
		t.Error("estimate-mode report CSV differs across worker counts")
	}
	if !strings.Contains(exact.Summary(), "== open-loop") {
		t.Error("summary lost its header")
	}
}

// TestEstimateFleetLoadTest checks the fleet path: estimate mode runs
// the full admission/routing/replay machinery with cost-model service
// times and marks the report.
func TestEstimateFleetLoadTest(t *testing.T) {
	tab := db.GenerateMemo(4096, 42)
	f, err := NewFleet(sweep.Config{Tuples: 4096, Seed: 42}, tab, 4,
		[]query.Arch{query.HIPE, query.X86})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := (StreamSpec{N: 10, Seed: 3, Archs: []query.Arch{query.ArchAuto}}).Requests()
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.LoadTest(OpenLoop(reqs, 50_000, 0, 5), Options{Exec: sweep.ExecEstimate})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecMode != "estimate" {
		t.Errorf("fleet report ExecMode = %q, want estimate", r.ExecMode)
	}
	if r.Completed != len(reqs) {
		t.Errorf("completed %d of %d", r.Completed, len(reqs))
	}
	if !r.HasFleet() {
		t.Error("report lost its pools")
	}
}
