// The traffic layer: deterministic request-stream generation, open- and
// closed-loop load specifications, and the virtual-time scheduler that
// turns per-(request, shard) service times into a serving timeline.
//
// The split that keeps load tests deterministic: the executor pool
// (real goroutines) only computes service times, indexed by (request,
// shard); the timeline — arrivals, per-shard FIFO queues, completions,
// latencies — is then replayed single-threaded in virtual simulated
// cycles. Reports are therefore byte-identical at any worker count.
package serve

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/fault"
	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/stats"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// StreamSpec declares a mixed request stream: N requests drawn with a
// seeded generator, cycling architectures round-robin (so every mix is
// covered at any N) and drawing the Q06 quantity bound — the
// selectivity knob — per request, which yields the mixed-selectivity
// streams an operator's traffic actually has.
type StreamSpec struct {
	// N is the number of requests.
	N int
	// Seed drives the deterministic draw.
	Seed uint64
	// Archs are the architectures in the mix. Default: all four.
	Archs []query.Arch
	// QtyHi are the Q06 quantity bounds drawn per request (uniformly).
	// Default: {10, 24, 50} — roughly 1%, 2% and 4% selectivity.
	QtyHi []int32
	// Aggregate upgrades HIPE requests (and, through routing, auto
	// requests that resolve to HIPE) to the in-memory aggregation plan
	// (whole Q06 in memory), exercising the revenue merge path.
	Aggregate bool
	// Q1Every, when positive, turns every Q1Every-th request into a
	// TPC-H Q01-style grouped aggregation over Q1Query — a mixed
	// selection/aggregation stream, the traffic shape of a reporting
	// dashboard riding on an operational fleet. Zero keeps the stream
	// pure Q06, bit-identical to streams generated before this knob
	// existed.
	Q1Every int
	// Q1Query is the aggregation predicate (zero value: DefaultQ01).
	Q1Query db.Q01
	// Classes, when above 1, draws each request's admission class
	// uniformly from [0, Classes). The draw uses its own seeded
	// generator, so enabling classes never disturbs which predicates or
	// architectures the stream contains — streams stay bit-identical to
	// their classless form in every other field.
	Classes int
}

// Requests materialises the stream. Malformed specs — a non-positive
// length, a negative cadence or class count, an architecture outside
// the backend registry — are rejected up front, never panicked on.
func (s StreamSpec) Requests() ([]Request, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("serve: stream of %d requests", s.N)
	}
	if s.Q1Every < 0 {
		return nil, fmt.Errorf("serve: negative Q1 cadence %d", s.Q1Every)
	}
	if s.Classes < 0 {
		return nil, fmt.Errorf("serve: negative class count %d", s.Classes)
	}
	archs := s.Archs
	if len(archs) == 0 {
		archs = []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE}
	}
	for _, a := range archs {
		if _, ok := query.BackendFor(a); !ok && a != query.ArchAuto {
			return nil, fmt.Errorf("serve: architecture %d is not a registered backend", a)
		}
	}
	qtys := s.QtyHi
	if len(qtys) == 0 {
		qtys = []int32{10, 24, 50}
	}
	q1 := s.Q1Query
	if q1 == (db.Q01{}) {
		q1 = db.DefaultQ01()
	}
	r := db.NewRNG(s.Seed)
	// Classes draw from their own decorrelated stream: the main
	// generator's sequence — and therefore every predicate and plan in
	// the stream — is untouched by the class knob.
	cr := db.NewRNG(s.Seed ^ 0x0C1A_55E5_C1A5_5E50)
	reqs := make([]Request, s.N)
	for i := range reqs {
		// The selectivity draw is consumed for every request — Q01
		// positions included — so enabling the aggregation mix never
		// changes which predicates the Q06 positions receive.
		q := db.DefaultQ06()
		q.QtyHi = qtys[r.Intn(int64(len(qtys)))]
		class := 0
		if s.Classes > 1 {
			class = int(cr.Intn(int64(s.Classes)))
		}
		arch := archs[i%len(archs)]
		if s.Q1Every > 0 && (i+1)%s.Q1Every == 0 {
			reqs[i] = Request{Plan: DefaultQ1Plan(arch, q1), Class: class}
			continue
		}
		p := DefaultPlan(arch, q)
		if s.Aggregate && (p.Arch == query.HIPE || p.Auto()) {
			p.Aggregate = true
		}
		reqs[i] = Request{Plan: p, Class: class}
	}
	return reqs, nil
}

// Mode selects the load-generation discipline.
type Mode uint8

const (
	// Open is open-loop load: requests arrive on a seeded deterministic
	// arrival process regardless of completions — the discipline that
	// exposes queueing delay and tail latency under overload.
	Open Mode = iota
	// Closed is closed-loop load: a fixed number of clients each keep
	// exactly one request outstanding — the discipline that measures
	// saturated fleet throughput.
	Closed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// LoadSpec declares one load test over an admitted request stream.
// Build it with OpenLoop or ClosedLoop.
type LoadSpec struct {
	Requests []Request
	Mode     Mode

	// Open-loop fields.
	// MeanInterarrival is the mean gap between arrivals in simulated
	// cycles; gaps are exponentially distributed (a Poisson process),
	// drawn deterministically from ArrivalSeed.
	MeanInterarrival uint64
	ArrivalSeed      uint64
	// DurationCycles, when non-zero, truncates the stream to requests
	// arriving inside [0, DurationCycles) of simulated time — the
	// "duration in simulated work" bound.
	DurationCycles uint64
	// Trace, when set, replaces the homogeneous Poisson process with a
	// trace-driven non-homogeneous one (diurnal rate modulation plus
	// on/off bursts) — still seeded and exactly replayable. Mutually
	// exclusive with MeanInterarrival; open mode only.
	Trace *TraceSpec

	// Closed-loop field: the fixed client count.
	Concurrency int

	// Fleet admission-control fields. Only Fleet.LoadTest honours them;
	// Cluster.LoadTest rejects specs that set either.
	// Classes declares the per-class latency SLOs and shed patience;
	// request Class values index this table. Empty means one "default"
	// class with no SLO.
	Classes []ClassSpec
	// Shed enables admission control: a request is shed — refused at
	// arrival, not queued — when every candidate replica's backlog
	// exceeds its class's patience. Lower-patience (lower-value) classes
	// shed first under overload. Open mode only.
	Shed bool

	// Fleet fault-injection fields. Only Fleet.LoadTest honours them;
	// Cluster.LoadTest rejects specs that set either.
	// Faults schedules deterministic replica crashes, straggler
	// episodes and transient stalls (nil or zero-valued = fault-free).
	Faults *fault.Spec
	// Recovery declares the request-level recovery policy — timeouts,
	// retries, hedging, failover (nil = none; a faulted run with no
	// recovery degrades on first failure).
	Recovery *RecoverySpec

	// Adaptive enables feedback-driven routing for this load test: each
	// route blends the analytic prior with the observed-cycles EWMA of
	// the candidate's (kind, backend, selectivity-bucket) cell, and
	// completed requests feed their replay cycles back in during the
	// single-threaded virtual-time replay — so adaptive reports stay
	// byte-identical at any worker count. Only Fleet.LoadTest honours
	// it; Cluster.LoadTest rejects specs that set it. Nil keeps routing
	// fully static and exports byte-identical to the pre-adaptive layer.
	Adaptive *cost.AdaptiveConfig
}

// OpenLoop declares an open-loop test: reqs arrive with exponential
// interarrival gaps of the given mean (simulated cycles), generated
// from seed; duration (0 = unlimited) truncates the admitted stream.
func OpenLoop(reqs []Request, meanInterarrival, duration uint64, seed uint64) LoadSpec {
	return LoadSpec{Requests: reqs, Mode: Open,
		MeanInterarrival: meanInterarrival, ArrivalSeed: seed, DurationCycles: duration}
}

// ClosedLoop declares a closed-loop test: concurrency clients drain
// reqs, each keeping one request outstanding with zero think time.
func ClosedLoop(reqs []Request, concurrency int) LoadSpec {
	return LoadSpec{Requests: reqs, Mode: Closed, Concurrency: concurrency}
}

// TraceLoop declares a trace-driven open-loop test: reqs arrive on the
// non-homogeneous process trace describes, generated from seed;
// duration (0 = unlimited) truncates the admitted stream.
func TraceLoop(reqs []Request, trace TraceSpec, duration uint64, seed uint64) LoadSpec {
	t := trace
	return LoadSpec{Requests: reqs, Mode: Open, Trace: &t,
		ArrivalSeed: seed, DurationCycles: duration}
}

// TraceSpec declares a trace-driven, non-homogeneous open-loop arrival
// process: a Poisson process whose instantaneous rate is modulated by a
// diurnal sinusoid and an on/off burst process. Fully seeded — equal
// specs with equal seeds replay the identical arrival timeline, so
// trace runs are replayable and their reports byte-comparable.
type TraceSpec struct {
	// Mean is the base mean interarrival gap in simulated cycles (the
	// rate before modulation).
	Mean uint64
	// DiurnalPeriod is the period of the sinusoidal rate modulation, in
	// cycles. Required when DiurnalAmp is set.
	DiurnalPeriod uint64
	// DiurnalAmp is the sinusoid's amplitude as a fraction of the base
	// rate, in [0, 1): at 0.5 the instantaneous rate swings between
	// 0.5x and 1.5x the base. Zero disables the diurnal component.
	DiurnalAmp float64
	// BurstFactor multiplies the rate while a burst is active (>= 1;
	// zero or one disables bursts).
	BurstFactor float64
	// BurstOn and BurstOff are the mean burst / quiet segment durations
	// in cycles, exponentially distributed. Drawn from a stream
	// decorrelated from the arrival draws, so toggling bursts never
	// changes which unit variates the gaps consume.
	BurstOn  uint64
	BurstOff uint64
}

// validate rejects malformed trace specs.
func (t *TraceSpec) validate() error {
	if t.Mean == 0 {
		return fmt.Errorf("serve: trace mean interarrival must be positive")
	}
	if t.DiurnalAmp < 0 || t.DiurnalAmp >= 1 {
		return fmt.Errorf("serve: diurnal amplitude %g outside [0, 1)", t.DiurnalAmp)
	}
	if t.DiurnalAmp > 0 && t.DiurnalPeriod == 0 {
		return fmt.Errorf("serve: diurnal amplitude needs a period")
	}
	if t.bursting() {
		if t.BurstFactor < 1 {
			return fmt.Errorf("serve: burst factor %g below 1", t.BurstFactor)
		}
		if t.BurstOn == 0 || t.BurstOff == 0 {
			return fmt.Errorf("serve: bursts need positive mean on/off durations")
		}
	}
	return nil
}

// bursting reports whether the burst component is enabled.
func (t *TraceSpec) bursting() bool {
	return t.BurstFactor != 0 && t.BurstFactor != 1
}

// gap draws the next interarrival gap at virtual time now: an
// exponential draw whose mean is the base mean divided by the
// instantaneous rate multiplier (diurnal x burst).
func (t *TraceSpec) gap(r *db.RNG, burst *burstProcess, now uint64) uint64 {
	rate := 1.0
	if t.DiurnalAmp > 0 {
		phase := float64(now%t.DiurnalPeriod) / float64(t.DiurnalPeriod)
		rate *= 1 + t.DiurnalAmp*math.Sin(2*math.Pi*phase)
	}
	if burst != nil && burst.active(now) {
		rate *= t.BurstFactor
	}
	return expGap(r, float64(t.Mean)/rate)
}

// burstProcess is a seeded on/off renewal process: alternating quiet
// and burst segments with exponential lengths, starting quiet.
type burstProcess struct {
	spec *TraceSpec
	r    *db.RNG
	// next is the virtual time the current segment ends; on is whether
	// that segment is a burst.
	next uint64
	on   bool
}

func newBurstProcess(t *TraceSpec, seed uint64) *burstProcess {
	b := &burstProcess{spec: t, r: db.NewRNG(seed ^ 0xB125_7B12_57B1_257B)}
	b.next = b.segment(t.BurstOff)
	return b
}

// segment draws one exponential segment length; the +1 keeps every
// segment strictly advancing the clock, so active never loops forever.
func (b *burstProcess) segment(mean uint64) uint64 {
	return expGap(b.r, float64(mean)) + 1
}

// active reports whether time now falls inside a burst, advancing
// segment boundaries as needed. Callers present non-decreasing times.
func (b *burstProcess) active(now uint64) bool {
	for now >= b.next {
		b.on = !b.on
		if b.on {
			b.next += b.segment(b.spec.BurstOn)
		} else {
			b.next += b.segment(b.spec.BurstOff)
		}
	}
	return b.on
}

// expGap draws one exponential gap with the given mean, quantised to
// whole cycles. The unit draw is clamped away from zero so the log can
// never overflow the cycle counter.
func expGap(r *db.RNG, mean float64) uint64 {
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return uint64(math.Round(-math.Log(u) * mean))
}

// validate rejects malformed specs before any simulation runs.
func (s LoadSpec) validate() error {
	if len(s.Requests) == 0 {
		return fmt.Errorf("serve: load spec has no requests")
	}
	switch s.Mode {
	case Open:
		if s.Trace != nil {
			if s.MeanInterarrival != 0 {
				return fmt.Errorf("serve: trace arrivals and a mean interarrival are mutually exclusive")
			}
			if err := s.Trace.validate(); err != nil {
				return err
			}
		} else if s.MeanInterarrival == 0 {
			return fmt.Errorf("serve: open-loop mean interarrival must be positive")
		}
	case Closed:
		if s.Concurrency <= 0 {
			return fmt.Errorf("serve: closed-loop concurrency %d must be positive", s.Concurrency)
		}
		if s.Trace != nil {
			return fmt.Errorf("serve: trace arrivals need open-loop mode")
		}
	default:
		return fmt.Errorf("serve: unknown load mode %d", s.Mode)
	}
	if s.Shed {
		if s.Mode != Open {
			return fmt.Errorf("serve: shedding needs open-loop mode")
		}
		if len(s.Classes) == 0 {
			return fmt.Errorf("serve: shedding needs declared admission classes")
		}
	}
	for i, cs := range s.Classes {
		if cs.Name == "" {
			return fmt.Errorf("serve: class %d has no name", i)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if err := s.Recovery.validate(); err != nil {
		return err
	}
	if s.Adaptive != nil {
		if err := s.Adaptive.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// arrivals materialises the open-loop arrival times and the admitted
// request count (requests past DurationCycles are dropped).
func (s LoadSpec) arrivals() []uint64 {
	r := db.NewRNG(s.ArrivalSeed)
	var burst *burstProcess
	if s.Trace != nil && s.Trace.bursting() {
		burst = newBurstProcess(s.Trace, s.ArrivalSeed)
	}
	times := make([]uint64, 0, len(s.Requests))
	var now uint64
	for range s.Requests {
		var gap uint64
		if s.Trace != nil {
			gap = s.Trace.gap(r, burst, now)
		} else {
			// Exponential gap, quantised to whole cycles.
			gap = expGap(r, float64(s.MeanInterarrival))
		}
		now += gap
		if s.DurationCycles > 0 && now >= s.DurationCycles {
			break
		}
		times = append(times, now)
	}
	return times
}

// LoadTest runs the load spec against the cluster: it admits the
// stream — routing ArchAuto requests to their predicted-fastest
// backend first — computes every (request, shard) service time on the
// bounded executor pool, verifies every merged answer against the
// unsharded reference evaluator, replays the serving timeline in
// virtual time, and returns the report. Deterministic at any worker
// count (routing happens once, single-threaded, before any worker
// runs, and decisions are pure functions of the served table).
func (c *Cluster) LoadTest(spec LoadSpec, opt Options) (*Report, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(spec.Classes) > 0 || spec.Shed {
		return nil, fmt.Errorf("serve: admission classes need a replicated fleet (use Fleet.LoadTest)")
	}
	if spec.Faults != nil || spec.Recovery != nil {
		return nil, fmt.Errorf("serve: fault injection and recovery need a replicated fleet (use Fleet.LoadTest)")
	}
	if spec.Adaptive != nil {
		return nil, fmt.Errorf("serve: adaptive routing needs a replicated fleet (use Fleet.LoadTest)")
	}
	resolved := make([]Request, len(spec.Requests))
	routings := make([]*cost.Decision, len(spec.Requests))
	for i, req := range spec.Requests {
		r, d, err := c.resolve(req)
		if err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		if err := c.Admit(r); err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		resolved[i], routings[i] = r, d
	}

	// Open loop fixes the issued set (and arrival times) up front;
	// closed loop issues every request.
	var arrivalTimes []uint64
	reqs := resolved
	offered := len(reqs)
	if spec.Mode == Open {
		arrivalTimes = spec.arrivals()
		reqs = reqs[:len(arrivalTimes)]
		if len(reqs) == 0 {
			return nil, fmt.Errorf("serve: no request arrives inside %d cycles", spec.DurationCycles)
		}
	}

	parts, byPlan, err := c.runAll(reqs, opt)
	if err != nil {
		return nil, err
	}
	responses := make([]*Response, len(reqs))
	for i, req := range reqs {
		resp, err := c.merge(req, parts[i])
		if err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		resp.Routing = routings[i]
		if opt.Exec == sweep.ExecEstimate {
			resp.ExecMode = opt.Exec.String()
		}
		responses[i] = resp
	}

	r := &Report{
		Mode:    spec.Mode.String(),
		Shards:  len(c.shards),
		Rows:    c.whole.N,
		Offered: offered,
	}
	if opt.Exec == sweep.ExecEstimate {
		r.ExecMode = opt.Exec.String()
	}
	// The report's counter total sums each distinct (plan, shard)
	// simulation exactly once — requests sharing a plan share one run,
	// so summing per-request responses would double-count it.
	if opt.Counters {
		r.Counters = sumPlanCounters(byPlan)
	}
	var tr *obs.Trace
	if opt.Trace {
		tr = obs.NewTrace()
		nameClusterTracks(tr, len(c.shards))
	}
	switch spec.Mode {
	case Open:
		c.scheduleOpen(r, responses, arrivalTimes, parts, tr)
	case Closed:
		c.scheduleClosed(r, responses, parts, spec.Concurrency, tr)
	}
	r.Trace = tr
	r.finish()
	return r, nil
}

// sumPlanCounters folds the per-(plan, shard) counter snapshots into
// one total, each distinct simulation counted once.
func sumPlanCounters(byPlan [][]ShardPartial) *obs.Counters {
	total := &obs.Counters{}
	for _, parts := range byPlan {
		for _, p := range parts {
			total.Add(p.Counters)
		}
	}
	return total
}

// nameClusterTracks labels the trace's tracks: pid 0 is the
// request/router timeline, pid 1 the (single-replica) cluster with one
// thread per shard.
func nameClusterTracks(tr *obs.Trace, shards int) {
	tr.NameProcess(0, "requests")
	tr.NameProcess(1, "cluster")
	for s := 0; s < shards; s++ {
		tr.NameThread(1, s, fmt.Sprintf("shard %d", s))
	}
}

// taskKey identifies one distinct shard simulation. Identical plans
// over the same shard are bit-identical runs, so mixed streams — which
// repeat a small set of plans — dedupe to far fewer simulations than
// (requests × shards).
type taskKey struct {
	plan  query.Plan
	shard int
}

// runAll computes every (request, shard) service time and partial on
// the executor pool, simulating each distinct (plan, shard) pair
// exactly once. Task order is first occurrence in the request stream,
// and results are indexed, so worker scheduling cannot leak into them.
// Both views of the results are returned: per request (sharing slices
// across requests with equal plans) and per distinct plan — the latter
// is what counter totals must sum over to count each simulation once.
func (c *Cluster) runAll(reqs []Request, opt Options) (parts, byPlan [][]ShardPartial, err error) {
	index := map[query.Plan]int{}
	var plans []query.Plan
	for _, req := range reqs {
		if _, ok := index[req.Plan]; !ok {
			index[req.Plan] = len(plans)
			plans = append(plans, req.Plan)
		}
	}
	byPlan, err = c.runPlanSet(plans, opt)
	if err != nil {
		return nil, nil, err
	}
	parts = make([][]ShardPartial, len(reqs))
	for ri, req := range reqs {
		parts[ri] = byPlan[index[req.Plan]]
	}
	return parts, byPlan, nil
}

// runPlanSet computes the per-shard partials for a set of distinct
// plans on the bounded executor pool, one task per (plan, shard). The
// returned slice is indexed [plan][shard], in the caller's plan order;
// results are slot-indexed so worker scheduling cannot leak into them,
// and the returned error is the first failure in (plan, shard) order.
// This is the shared compute stage under both Cluster.LoadTest (one
// plan per distinct request plan) and Fleet.LoadTest (one plan per
// distinct routing candidate across every pool).
func (c *Cluster) runPlanSet(plans []query.Plan, opt Options) ([][]ShardPartial, error) {
	nShards := len(c.shards)
	keys := make([]taskKey, 0, len(plans)*nShards)
	for _, p := range plans {
		for s := 0; s < nShards; s++ {
			keys = append(keys, taskKey{p, s})
		}
	}
	results := make([]ShardPartial, len(keys))
	errs := make([]error, len(keys))

	indices := make(chan int)
	var done sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	workers := opt.EffectiveWorkers()
	if workers > len(keys) {
		workers = len(keys)
	}
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for t := range indices {
				results[t], errs[t] = c.runShard(keys[t].shard, keys[t].plan, opt)
				if opt.OnTask != nil {
					progressMu.Lock()
					completed++
					opt.OnTask(completed, len(keys))
					progressMu.Unlock()
				}
			}
		}()
	}
	for t := range keys {
		indices <- t
	}
	close(indices)
	done.Wait()

	out := make([][]ShardPartial, len(plans))
	for pi := range plans {
		for s := 0; s < nShards; s++ {
			if err := errs[pi*nShards+s]; err != nil {
				return nil, fmt.Errorf("serve: plan %d shard %d: %w", pi, s, err)
			}
		}
		out[pi] = results[pi*nShards : (pi+1)*nShards : (pi+1)*nShards]
	}
	return out, nil
}

// scheduleOpen replays the open-loop timeline: requests fan out to
// every shard in arrival order, each shard serves its queue FIFO, and a
// request completes when its slowest shard task does.
func (c *Cluster) scheduleOpen(r *Report, responses []*Response, arrivals []uint64, parts [][]ShardPartial, tr *obs.Trace) {
	shardFree := make([]uint64, len(c.shards))
	r.PerShard = newShardStats(len(c.shards))
	for i, resp := range responses {
		r.Requests = append(r.Requests,
			c.dispatch(resp, i, -1, arrivals[i], parts[i], shardFree, r.PerShard, tr))
	}
}

// scheduleClosed replays the closed-loop timeline: concurrency clients
// share the request stream; each client issues the next unissued
// request the moment its previous one completes (zero think time).
// Ties break on client index, so the replay is fully deterministic.
func (c *Cluster) scheduleClosed(r *Report, responses []*Response, parts [][]ShardPartial, concurrency int, tr *obs.Trace) {
	if concurrency > len(responses) {
		concurrency = len(responses)
	}
	shardFree := make([]uint64, len(c.shards))
	clientFree := make([]uint64, concurrency)
	r.PerShard = newShardStats(len(c.shards))
	for i, resp := range responses {
		// The next issue slot is the earliest-free client; arrivals are
		// therefore nondecreasing, which keeps shard FIFO order valid.
		client := 0
		for cl := 1; cl < concurrency; cl++ {
			if clientFree[cl] < clientFree[client] {
				client = cl
			}
		}
		reqTr := c.dispatch(resp, i, client, clientFree[client], parts[i], shardFree, r.PerShard, tr)
		clientFree[client] = reqTr.Completion
		r.Requests = append(r.Requests, reqTr)
	}
	r.Concurrency = concurrency
}

// dispatch queues one request's shard tasks FIFO behind each shard's
// earlier work and returns its trace. When tr is recording it emits
// the request's span tree: an async request span on the router track
// (pid 0) bracketing a routing instant, one complete span per shard
// task on the cluster track (pid 1, tid = shard), and a merge instant
// at completion. All span times are virtual cycles from this
// single-threaded replay, so traces are byte-identical at any worker
// count; the On() gates keep the disabled path allocation-free.
func (c *Cluster) dispatch(resp *Response, index, client int, arrival uint64,
	parts []ShardPartial, shardFree []uint64, perShard []ShardStats, tr *obs.Trace) RequestTrace {
	var reqName string
	if tr.On() {
		reqName = fmt.Sprintf("q%d %s", index, resp.Request.Plan.Arch)
		tr.Begin(reqName, "request", 0, index, arrival,
			obs.Arg{Key: "arch", Val: resp.Request.Plan.Arch.String()})
		if resp.Routing != nil {
			tr.Instant("route", "routing", 0, 0, arrival,
				obs.Arg{Key: "chosen", Val: resp.Routing.Chosen.Arch.String()},
				obs.Arg{Key: "candidates", Val: strconv.Itoa(len(resp.Routing.Estimates))})
		}
	}
	var completion uint64
	for s, p := range parts {
		start := arrival
		if shardFree[s] > start {
			start = shardFree[s]
		}
		end := start + p.Cycles
		shardFree[s] = end
		perShard[s].Tasks++
		perShard[s].BusyCycles += p.Cycles
		if end > completion {
			completion = end
		}
		if tr.On() {
			tr.Complete(reqName, "shard", 1, s, start, end,
				obs.Arg{Key: "matches", Val: strconv.Itoa(p.Matches)})
		}
	}
	if tr.On() {
		tr.Instant("merge", "merge", 0, 0, completion,
			obs.Arg{Key: "matches", Val: strconv.Itoa(resp.Matches)})
		tr.End(reqName, "request", 0, index, completion,
			obs.Arg{Key: "latency_cycles", Val: strconv.FormatUint(completion-arrival, 10)})
	}
	return RequestTrace{
		Index:      index,
		Client:     client,
		Plan:       resp.Request.Plan,
		Routing:    resp.Routing,
		Arrival:    arrival,
		Completion: completion,
		Latency:    completion - arrival,
		Service:    resp.Cycles,
		Work:       resp.WorkCycles,
		Matches:    resp.Matches,
		Revenue:    resp.Revenue,
	}
}

func newShardStats(n int) []ShardStats {
	out := make([]ShardStats, n)
	for i := range out {
		out[i].Shard = i
	}
	return out
}

// finish derives the aggregate figures from the per-request traces.
func (r *Report) finish() {
	var hist stats.LogHist
	for _, tr := range r.Requests {
		hist.Observe(tr.Latency)
		if tr.Completion > r.MakespanCycles {
			r.MakespanCycles = tr.Completion
		}
	}
	r.Completed = len(r.Requests)
	r.LatencyP50 = hist.Quantile(0.50)
	r.LatencyP95 = hist.Quantile(0.95)
	r.LatencyP99 = hist.Quantile(0.99)
	r.LatencyMean = hist.Mean()
	r.LatencyMax = hist.Max()
	if r.MakespanCycles > 0 {
		r.ThroughputRPMC = float64(r.Completed) / (float64(r.MakespanCycles) / 1e6)
		for i := range r.PerShard {
			r.PerShard[i].Utilisation = float64(r.PerShard[i].BusyCycles) / float64(r.MakespanCycles)
		}
	}
}
