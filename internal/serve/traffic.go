// The traffic layer: deterministic request-stream generation, open- and
// closed-loop load specifications, and the virtual-time scheduler that
// turns per-(request, shard) service times into a serving timeline.
//
// The split that keeps load tests deterministic: the executor pool
// (real goroutines) only computes service times, indexed by (request,
// shard); the timeline — arrivals, per-shard FIFO queues, completions,
// latencies — is then replayed single-threaded in virtual simulated
// cycles. Reports are therefore byte-identical at any worker count.
package serve

import (
	"fmt"
	"math"
	"sync"

	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/stats"
)

// StreamSpec declares a mixed request stream: N requests drawn with a
// seeded generator, cycling architectures round-robin (so every mix is
// covered at any N) and drawing the Q06 quantity bound — the
// selectivity knob — per request, which yields the mixed-selectivity
// streams an operator's traffic actually has.
type StreamSpec struct {
	// N is the number of requests.
	N int
	// Seed drives the deterministic draw.
	Seed uint64
	// Archs are the architectures in the mix. Default: all four.
	Archs []query.Arch
	// QtyHi are the Q06 quantity bounds drawn per request (uniformly).
	// Default: {10, 24, 50} — roughly 1%, 2% and 4% selectivity.
	QtyHi []int32
	// Aggregate upgrades HIPE requests (and, through routing, auto
	// requests that resolve to HIPE) to the in-memory aggregation plan
	// (whole Q06 in memory), exercising the revenue merge path.
	Aggregate bool
	// Q1Every, when positive, turns every Q1Every-th request into a
	// TPC-H Q01-style grouped aggregation over Q1Query — a mixed
	// selection/aggregation stream, the traffic shape of a reporting
	// dashboard riding on an operational fleet. Zero keeps the stream
	// pure Q06, bit-identical to streams generated before this knob
	// existed.
	Q1Every int
	// Q1Query is the aggregation predicate (zero value: DefaultQ01).
	Q1Query db.Q01
}

// Requests materialises the stream.
func (s StreamSpec) Requests() ([]Request, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("serve: stream of %d requests", s.N)
	}
	if s.Q1Every < 0 {
		return nil, fmt.Errorf("serve: negative Q1 cadence %d", s.Q1Every)
	}
	archs := s.Archs
	if len(archs) == 0 {
		archs = []query.Arch{query.X86, query.HMC, query.HIVE, query.HIPE}
	}
	qtys := s.QtyHi
	if len(qtys) == 0 {
		qtys = []int32{10, 24, 50}
	}
	q1 := s.Q1Query
	if q1 == (db.Q01{}) {
		q1 = db.DefaultQ01()
	}
	r := db.NewRNG(s.Seed)
	reqs := make([]Request, s.N)
	for i := range reqs {
		// The selectivity draw is consumed for every request — Q01
		// positions included — so enabling the aggregation mix never
		// changes which predicates the Q06 positions receive.
		q := db.DefaultQ06()
		q.QtyHi = qtys[r.Intn(int64(len(qtys)))]
		arch := archs[i%len(archs)]
		if s.Q1Every > 0 && (i+1)%s.Q1Every == 0 {
			reqs[i] = Request{Plan: DefaultQ1Plan(arch, q1)}
			continue
		}
		p := DefaultPlan(arch, q)
		if s.Aggregate && (p.Arch == query.HIPE || p.Auto()) {
			p.Aggregate = true
		}
		reqs[i] = Request{Plan: p}
	}
	return reqs, nil
}

// Mode selects the load-generation discipline.
type Mode uint8

const (
	// Open is open-loop load: requests arrive on a seeded deterministic
	// arrival process regardless of completions — the discipline that
	// exposes queueing delay and tail latency under overload.
	Open Mode = iota
	// Closed is closed-loop load: a fixed number of clients each keep
	// exactly one request outstanding — the discipline that measures
	// saturated fleet throughput.
	Closed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// LoadSpec declares one load test over an admitted request stream.
// Build it with OpenLoop or ClosedLoop.
type LoadSpec struct {
	Requests []Request
	Mode     Mode

	// Open-loop fields.
	// MeanInterarrival is the mean gap between arrivals in simulated
	// cycles; gaps are exponentially distributed (a Poisson process),
	// drawn deterministically from ArrivalSeed.
	MeanInterarrival uint64
	ArrivalSeed      uint64
	// DurationCycles, when non-zero, truncates the stream to requests
	// arriving inside [0, DurationCycles) of simulated time — the
	// "duration in simulated work" bound.
	DurationCycles uint64

	// Closed-loop field: the fixed client count.
	Concurrency int
}

// OpenLoop declares an open-loop test: reqs arrive with exponential
// interarrival gaps of the given mean (simulated cycles), generated
// from seed; duration (0 = unlimited) truncates the admitted stream.
func OpenLoop(reqs []Request, meanInterarrival, duration uint64, seed uint64) LoadSpec {
	return LoadSpec{Requests: reqs, Mode: Open,
		MeanInterarrival: meanInterarrival, ArrivalSeed: seed, DurationCycles: duration}
}

// ClosedLoop declares a closed-loop test: concurrency clients drain
// reqs, each keeping one request outstanding with zero think time.
func ClosedLoop(reqs []Request, concurrency int) LoadSpec {
	return LoadSpec{Requests: reqs, Mode: Closed, Concurrency: concurrency}
}

// validate rejects malformed specs before any simulation runs.
func (s LoadSpec) validate() error {
	if len(s.Requests) == 0 {
		return fmt.Errorf("serve: load spec has no requests")
	}
	switch s.Mode {
	case Open:
		if s.MeanInterarrival == 0 {
			return fmt.Errorf("serve: open-loop mean interarrival must be positive")
		}
	case Closed:
		if s.Concurrency <= 0 {
			return fmt.Errorf("serve: closed-loop concurrency %d must be positive", s.Concurrency)
		}
	default:
		return fmt.Errorf("serve: unknown load mode %d", s.Mode)
	}
	return nil
}

// arrivals materialises the open-loop arrival times and the admitted
// request count (requests past DurationCycles are dropped).
func (s LoadSpec) arrivals() []uint64 {
	r := db.NewRNG(s.ArrivalSeed)
	times := make([]uint64, 0, len(s.Requests))
	var now uint64
	for range s.Requests {
		// Exponential gap, quantised to whole cycles.
		gap := uint64(math.Round(-math.Log(r.Float64()) * float64(s.MeanInterarrival)))
		now += gap
		if s.DurationCycles > 0 && now >= s.DurationCycles {
			break
		}
		times = append(times, now)
	}
	return times
}

// LoadTest runs the load spec against the cluster: it admits the
// stream — routing ArchAuto requests to their predicted-fastest
// backend first — computes every (request, shard) service time on the
// bounded executor pool, verifies every merged answer against the
// unsharded reference evaluator, replays the serving timeline in
// virtual time, and returns the report. Deterministic at any worker
// count (routing happens once, single-threaded, before any worker
// runs, and decisions are pure functions of the served table).
func (c *Cluster) LoadTest(spec LoadSpec, opt Options) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	resolved := make([]Request, len(spec.Requests))
	routings := make([]*cost.Decision, len(spec.Requests))
	for i, req := range spec.Requests {
		r, d, err := c.resolve(req)
		if err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		if err := c.Admit(r); err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		resolved[i], routings[i] = r, d
	}

	// Open loop fixes the issued set (and arrival times) up front;
	// closed loop issues every request.
	var arrivalTimes []uint64
	reqs := resolved
	offered := len(reqs)
	if spec.Mode == Open {
		arrivalTimes = spec.arrivals()
		reqs = reqs[:len(arrivalTimes)]
		if len(reqs) == 0 {
			return nil, fmt.Errorf("serve: no request arrives inside %d cycles", spec.DurationCycles)
		}
	}

	parts, err := c.runAll(reqs, opt)
	if err != nil {
		return nil, err
	}
	responses := make([]*Response, len(reqs))
	for i, req := range reqs {
		resp, err := c.merge(req, parts[i])
		if err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
		resp.Routing = routings[i]
		responses[i] = resp
	}

	r := &Report{
		Mode:    spec.Mode.String(),
		Shards:  len(c.shards),
		Rows:    c.whole.N,
		Offered: offered,
	}
	switch spec.Mode {
	case Open:
		c.scheduleOpen(r, responses, arrivalTimes, parts)
	case Closed:
		c.scheduleClosed(r, responses, parts, spec.Concurrency)
	}
	r.finish()
	return r, nil
}

// taskKey identifies one distinct shard simulation. Identical plans
// over the same shard are bit-identical runs, so mixed streams — which
// repeat a small set of plans — dedupe to far fewer simulations than
// (requests × shards).
type taskKey struct {
	plan  query.Plan
	shard int
}

// runAll computes every (request, shard) service time and partial on
// the executor pool, simulating each distinct (plan, shard) pair
// exactly once. Task order is first occurrence in the request stream,
// and results are indexed, so worker scheduling cannot leak into them;
// the returned error is the first failure in (request, shard) order.
func (c *Cluster) runAll(reqs []Request, opt Options) ([][]ShardPartial, error) {
	nShards := len(c.shards)
	index := map[taskKey]int{}
	var keys []taskKey
	for _, req := range reqs {
		for s := 0; s < nShards; s++ {
			k := taskKey{req.Plan, s}
			if _, ok := index[k]; !ok {
				index[k] = len(keys)
				keys = append(keys, k)
			}
		}
	}
	results := make([]ShardPartial, len(keys))
	errs := make([]error, len(keys))

	indices := make(chan int)
	var done sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	workers := opt.EffectiveWorkers()
	if workers > len(keys) {
		workers = len(keys)
	}
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for t := range indices {
				results[t], errs[t] = c.runShard(keys[t].shard, keys[t].plan)
				if opt.OnTask != nil {
					progressMu.Lock()
					completed++
					opt.OnTask(completed, len(keys))
					progressMu.Unlock()
				}
			}
		}()
	}
	for t := range keys {
		indices <- t
	}
	close(indices)
	done.Wait()

	parts := make([][]ShardPartial, len(reqs))
	for ri, req := range reqs {
		parts[ri] = make([]ShardPartial, nShards)
		for s := 0; s < nShards; s++ {
			t := index[taskKey{req.Plan, s}]
			if errs[t] != nil {
				return nil, fmt.Errorf("serve: request %d shard %d: %w", ri, s, errs[t])
			}
			parts[ri][s] = results[t]
		}
	}
	return parts, nil
}

// scheduleOpen replays the open-loop timeline: requests fan out to
// every shard in arrival order, each shard serves its queue FIFO, and a
// request completes when its slowest shard task does.
func (c *Cluster) scheduleOpen(r *Report, responses []*Response, arrivals []uint64, parts [][]ShardPartial) {
	shardFree := make([]uint64, len(c.shards))
	r.PerShard = newShardStats(len(c.shards))
	for i, resp := range responses {
		r.Requests = append(r.Requests,
			c.dispatch(resp, i, -1, arrivals[i], parts[i], shardFree, r.PerShard))
	}
}

// scheduleClosed replays the closed-loop timeline: concurrency clients
// share the request stream; each client issues the next unissued
// request the moment its previous one completes (zero think time).
// Ties break on client index, so the replay is fully deterministic.
func (c *Cluster) scheduleClosed(r *Report, responses []*Response, parts [][]ShardPartial, concurrency int) {
	if concurrency > len(responses) {
		concurrency = len(responses)
	}
	shardFree := make([]uint64, len(c.shards))
	clientFree := make([]uint64, concurrency)
	r.PerShard = newShardStats(len(c.shards))
	for i, resp := range responses {
		// The next issue slot is the earliest-free client; arrivals are
		// therefore nondecreasing, which keeps shard FIFO order valid.
		client := 0
		for cl := 1; cl < concurrency; cl++ {
			if clientFree[cl] < clientFree[client] {
				client = cl
			}
		}
		tr := c.dispatch(resp, i, client, clientFree[client], parts[i], shardFree, r.PerShard)
		clientFree[client] = tr.Completion
		r.Requests = append(r.Requests, tr)
	}
	r.Concurrency = concurrency
}

// dispatch queues one request's shard tasks FIFO behind each shard's
// earlier work and returns its trace.
func (c *Cluster) dispatch(resp *Response, index, client int, arrival uint64,
	parts []ShardPartial, shardFree []uint64, perShard []ShardStats) RequestTrace {
	var completion uint64
	for s, p := range parts {
		start := arrival
		if shardFree[s] > start {
			start = shardFree[s]
		}
		end := start + p.Cycles
		shardFree[s] = end
		perShard[s].Tasks++
		perShard[s].BusyCycles += p.Cycles
		if end > completion {
			completion = end
		}
	}
	return RequestTrace{
		Index:      index,
		Client:     client,
		Plan:       resp.Request.Plan,
		Routing:    resp.Routing,
		Arrival:    arrival,
		Completion: completion,
		Latency:    completion - arrival,
		Service:    resp.Cycles,
		Work:       resp.WorkCycles,
		Matches:    resp.Matches,
		Revenue:    resp.Revenue,
	}
}

func newShardStats(n int) []ShardStats {
	out := make([]ShardStats, n)
	for i := range out {
		out[i].Shard = i
	}
	return out
}

// finish derives the aggregate figures from the per-request traces.
func (r *Report) finish() {
	var hist stats.LogHist
	for _, tr := range r.Requests {
		hist.Observe(tr.Latency)
		if tr.Completion > r.MakespanCycles {
			r.MakespanCycles = tr.Completion
		}
	}
	r.Completed = len(r.Requests)
	r.LatencyP50 = hist.Quantile(0.50)
	r.LatencyP95 = hist.Quantile(0.95)
	r.LatencyP99 = hist.Quantile(0.99)
	r.LatencyMean = hist.Mean()
	r.LatencyMax = hist.Max()
	if r.MakespanCycles > 0 {
		r.ThroughputRPMC = float64(r.Completed) / (float64(r.MakespanCycles) / 1e6)
		for i := range r.PerShard {
			r.PerShard[i].Utilisation = float64(r.PerShard[i].BusyCycles) / float64(r.MakespanCycles)
		}
	}
}
