package cpu

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Stream supplies µops in program order (the correct execution path).
type Stream interface {
	// Next returns the next µop; ok=false ends the program.
	Next() (isa.MicroOp, bool)
}

// SliceStream adapts a pre-built µop slice to the Stream interface.
type SliceStream struct {
	Ops []isa.MicroOp
	pos int
}

// Next implements Stream.
func (s *SliceStream) Next() (isa.MicroOp, bool) {
	if s.pos >= len(s.Ops) {
		return isa.MicroOp{}, false
	}
	op := s.Ops[s.pos]
	s.pos++
	return op, true
}

// OffloadPort accepts HMC/HIVE/HIPE instructions departing the core.
type OffloadPort interface {
	// Submit sends one instruction toward the cube; done fires when the
	// response arrives back at the core. Submit reports false if the port
	// cannot accept this cycle (retry later).
	Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool
}

type entryState uint8

const (
	stWaiting entryState = iota
	stReady
	stExecuting
	stDone
)

type fetchedOp struct {
	uop          isa.MicroOp
	seq          uint64
	mispredicted bool
}

// robEntry event tags (sim.Handler).
const (
	tagComplete uint64 = iota
	tagBranchResolve
)

// robEntry is one in-flight µop. Entries are pooled: the core draws
// them from a free list at dispatch and returns them after commit (for
// stores, after the drained write completes), so steady-state execution
// allocates nothing per µop. The embedded request and the pre-bound
// callbacks (created once, when the entry is first constructed) replace
// the per-µop closure and request allocations of the old pipeline.
type robEntry struct {
	c *Core
	fetchedOp
	state   entryState
	deps    int
	waiters []*robEntry
	inROB   bool

	// req is the entry's memory access (load at issue, store at drain).
	req         mem.Request
	uncacheable bool

	// Pre-bound completion callbacks (one-time per pooled entry).
	loadDone  func(now sim.Cycle) // load/offload response: frees MOB read slot
	storeDone func(now sim.Cycle) // store drain: frees MOB write slot, releases entry
}

// OnEvent implements sim.Handler: FU completions and branch resolution
// are scheduled directly on the entry.
func (e *robEntry) OnEvent(now sim.Cycle, tag uint64) {
	c := e.c
	if tag == tagBranchResolve {
		if c.hasBlockingBr && c.blockingBranch == e.seq {
			// Resolving mispredicted branch: restart the front end after
			// the refill penalty.
			c.hasBlockingBr = false
			c.fetchStallUntil = now + c.cfg.MispredictPenalty
		}
	}
	c.complete(e)
}

// Core is one out-of-order processor core.
type Core struct {
	cfg    Config
	engine *sim.Engine

	dcache  mem.Port    // cacheable path (L1D)
	umem    mem.Port    // uncacheable path (directly toward the cube)
	offload OffloadPort // HMC/HIVE/HIPE instruction path

	stream     Stream
	streamDone bool
	nextSeq    uint64

	fetchBuf  sim.Queue[fetchedOp]
	decodeBuf sim.Queue[fetchedOp]
	rob       sim.Queue[*robEntry]
	readyQ    []*robEntry
	readyKeep []*robEntry // scratch for issue's keep list, swapped each cycle

	entryFree []*robEntry

	producers map[isa.Reg]*robEntry

	mobReads      int // in-flight loads + offloads
	mobWrites     int // in-flight committed stores
	pendingStores sim.Queue[*robEntry]

	fetchStallUntil sim.Cycle
	blockingBranch  uint64 // seq of the unresolved mispredicted branch
	hasBlockingBr   bool
	issuedThisCycle [fuClasses]int
	divBusyUntil    [fuClasses][]sim.Cycle
	pred            *branchPredictor
	domain          *sim.ClockDomain
	startCycle      sim.Cycle
	finishCycle     sim.Cycle
	running         bool
	onFinish        func()

	committed   *stats.Counter
	branches    *stats.Counter
	mispredicts *stats.Counter
	btbMisses   *stats.Counter
	fetchStalls *stats.Counter
	robStalls   *stats.Counter
	mobStalls   *stats.Counter
	cacheRetry  *stats.Counter
	loads       *stats.Counter
	stores      *stats.Counter
	offloads    *stats.Counter
	cycles      *stats.Counter
}

// New builds a core. dcache is the L1 entry point; umem is the
// uncacheable path to memory; offloadPort carries cube instructions (may
// be nil for a pure x86 core, in which case Offload µops panic).
func New(engine *sim.Engine, cfg Config, dcache, umem mem.Port, offloadPort OffloadPort, reg *stats.Registry) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:       cfg,
		engine:    engine,
		dcache:    dcache,
		umem:      umem,
		offload:   offloadPort,
		producers: make(map[isa.Reg]*robEntry),
		pred:      newBranchPredictor(cfg.GHRBits, cfg.PHTEntries, cfg.BTBEntries),
	}
	for i := range c.divBusyUntil {
		if !cfg.FUs[i].Pipelined {
			c.divBusyUntil[i] = make([]sim.Cycle, cfg.FUs[i].Units)
		}
	}
	sc := reg.Scope(cfg.Name)
	c.committed = sc.Counter("committed_uops")
	c.branches = sc.Counter("branches")
	c.mispredicts = sc.Counter("branch_mispredicts")
	c.btbMisses = sc.Counter("btb_misses")
	c.fetchStalls = sc.Counter("fetch_stall_cycles")
	c.robStalls = sc.Counter("rob_full_stalls")
	c.mobStalls = sc.Counter("mob_stalls")
	c.cacheRetry = sc.Counter("cache_retries")
	c.loads = sc.Counter("loads")
	c.stores = sc.Counter("stores")
	c.offloads = sc.Counter("offload_insts")
	c.cycles = sc.Counter("active_cycles")
	c.domain = sim.NewClockDomain(engine, 1, c)
	return c, nil
}

// newEntry draws a pooled entry and initialises it for f.
func (c *Core) newEntry(f fetchedOp) *robEntry {
	var e *robEntry
	if n := len(c.entryFree); n > 0 {
		e = c.entryFree[n-1]
		c.entryFree = c.entryFree[:n-1]
	} else {
		e = &robEntry{c: c}
		e.loadDone = func(now sim.Cycle) {
			e.c.mobReads--
			e.c.complete(e)
		}
		e.storeDone = func(now sim.Cycle) {
			e.c.mobWrites--
			e.c.release(e)
		}
	}
	e.fetchedOp = f
	e.state = stWaiting
	e.deps = 0
	e.waiters = e.waiters[:0]
	e.inROB = true
	e.uncacheable = false
	return e
}

// release returns an entry to the pool. Callers must guarantee nothing
// still references it (see commit and storeDone).
func (c *Core) release(e *robEntry) {
	c.entryFree = append(c.entryFree, e)
}

// Reset returns the core to its post-New state: pipeline empty,
// predictor untrained, MOB free, clock domain never ticked. In-flight
// entries are recovered into the pool (a machine reset drops their
// completion events with the engine's queue). Counters are zeroed by
// the registry reset the machine performs alongside.
func (c *Core) Reset() {
	c.stream = nil
	c.streamDone = false
	c.nextSeq = 0
	c.fetchBuf.Reset()
	c.decodeBuf.Reset()
	for c.rob.Len() > 0 {
		c.release(c.rob.Pop())
	}
	for c.pendingStores.Len() > 0 {
		c.release(c.pendingStores.Pop())
	}
	c.readyQ = c.readyQ[:0]
	c.readyKeep = c.readyKeep[:0]
	clear(c.producers)
	c.mobReads, c.mobWrites = 0, 0
	c.fetchStallUntil = 0
	c.blockingBranch, c.hasBlockingBr = 0, false
	c.issuedThisCycle = [fuClasses]int{}
	for i := range c.divBusyUntil {
		for j := range c.divBusyUntil[i] {
			c.divBusyUntil[i][j] = 0
		}
	}
	c.pred.reset()
	c.domain.Reset()
	c.startCycle, c.finishCycle = 0, 0
	c.running = false
	c.onFinish = nil
}

// Start begins executing a µop stream; onFinish (optional) fires when the
// last µop has committed and all stores have drained.
func (c *Core) Start(s Stream, onFinish func()) {
	if c.running {
		panic("cpu: core already running")
	}
	c.stream = s
	c.streamDone = false
	c.running = true
	c.onFinish = onFinish
	c.startCycle = c.engine.Now()
	c.domain.Kick()
}

// Cycles reports the cycles consumed by the last completed run.
func (c *Core) Cycles() sim.Cycle { return c.finishCycle - c.startCycle }

// Committed reports total committed µops.
func (c *Core) Committed() uint64 { return c.committed.Value() }

// Tick implements sim.Ticker: one pipeline cycle.
func (c *Core) Tick(now sim.Cycle) bool {
	c.cycles.Inc()
	for i := range c.issuedThisCycle {
		c.issuedThisCycle[i] = 0
	}
	c.commit(now)
	c.issue(now)
	c.dispatch()
	c.decode()
	c.fetch(now)
	c.drainStores()

	if c.idle() {
		c.running = false
		c.finishCycle = now
		if c.onFinish != nil {
			f := c.onFinish
			c.onFinish = nil
			f()
		}
		return false
	}
	return true
}

func (c *Core) idle() bool {
	return c.streamDone &&
		c.fetchBuf.Len() == 0 && c.decodeBuf.Len() == 0 && c.rob.Len() == 0 &&
		c.pendingStores.Len() == 0 && c.mobWrites == 0 && c.mobReads == 0
}

// fetch brings µops into the fetch buffer, honoring the fetch-group byte
// budget, the one-branch-per-fetch rule, and branch-induced stalls.
func (c *Core) fetch(now sim.Cycle) {
	if c.streamDone || c.hasBlockingBr {
		return
	}
	if now < c.fetchStallUntil {
		c.fetchStalls.Inc()
		return
	}
	budget := int(c.cfg.FetchBytes / c.cfg.InstBytes)
	branches := 0
	for budget > 0 && c.fetchBuf.Len() < c.cfg.FetchBufSize {
		uop, ok := c.stream.Next()
		if !ok {
			c.streamDone = true
			return
		}
		f := fetchedOp{uop: uop, seq: c.nextSeq}
		c.nextSeq++
		if uop.Class == isa.Branch {
			branches++
			c.branches.Inc()
			predicted := c.pred.predict(uop.PC)
			c.pred.update(uop.PC, uop.Taken)
			btbHit := c.pred.btbHit(uop.PC)
			if predicted != uop.Taken {
				// Fetch halts until this branch resolves at execute.
				f.mispredicted = true
				c.mispredicts.Inc()
				c.hasBlockingBr = true
				c.blockingBranch = f.seq
				c.fetchBuf.Push(f)
				return
			}
			if uop.Taken && !btbHit {
				// Correct direction but unknown target: redirect bubble.
				c.btbMisses.Inc()
				c.fetchStallUntil = now + c.cfg.BTBMissPenalty
				c.fetchBuf.Push(f)
				return
			}
			if uop.Taken || branches >= c.cfg.MaxBranchFetch {
				// Taken branches end the fetch group.
				c.fetchBuf.Push(f)
				return
			}
		}
		c.fetchBuf.Push(f)
		budget--
	}
}

// decode moves µops from the fetch buffer to the decode buffer.
func (c *Core) decode() {
	n := c.cfg.DecodeWidth
	for n > 0 && c.fetchBuf.Len() > 0 && c.decodeBuf.Len() < c.cfg.DecodeBufSize {
		c.decodeBuf.Push(c.fetchBuf.Pop())
		n--
	}
}

// dispatch renames µops into the ROB and resolves dependencies.
func (c *Core) dispatch() {
	n := c.cfg.IssueWidth
	for n > 0 && c.decodeBuf.Len() > 0 {
		if c.rob.Len() >= c.cfg.ROBSize {
			c.robStalls.Inc()
			return
		}
		f := c.decodeBuf.Pop()
		e := c.newEntry(f)
		if src := f.uop.Src1; src != isa.RegNone {
			if p, ok := c.producers[src]; ok && p.state != stDone {
				e.deps++
				p.waiters = append(p.waiters, e)
			}
		}
		if src := f.uop.Src2; src != isa.RegNone {
			if p, ok := c.producers[src]; ok && p.state != stDone {
				e.deps++
				p.waiters = append(p.waiters, e)
			}
		}
		if f.uop.Dst != isa.RegNone {
			c.producers[f.uop.Dst] = e
		}
		c.rob.Push(e)
		if e.deps == 0 {
			e.state = stReady
			c.readyQ = append(c.readyQ, e)
		}
		n--
	}
}

// issue selects ready µops (oldest first) respecting FU and MOB limits.
// The keep list reuses a scratch buffer swapped with readyQ each cycle.
func (c *Core) issue(now sim.Cycle) {
	issued := 0
	keep := c.readyKeep[:0]
	for _, e := range c.readyQ {
		if issued >= c.cfg.IssueWidth {
			keep = append(keep, e)
			continue
		}
		if !c.tryIssue(e, now) {
			keep = append(keep, e)
			continue
		}
		issued++
	}
	c.readyKeep = c.readyQ[:0]
	c.readyQ = keep
}

// tryIssue attempts to start execution of one µop.
func (c *Core) tryIssue(e *robEntry, now sim.Cycle) bool {
	fu := fuFor(e.uop.Class)
	fuCfg := &c.cfg.FUs[fu]
	if fuCfg.Pipelined {
		if c.issuedThisCycle[fu] >= fuCfg.Units {
			return false
		}
	} else {
		unit := -1
		for i, busy := range c.divBusyUntil[fu] {
			if busy <= now {
				unit = i
				break
			}
		}
		if unit < 0 {
			return false
		}
		c.divBusyUntil[fu][unit] = now + fuCfg.Latency
	}

	switch e.uop.Class {
	case isa.Load:
		if c.mobReads >= c.cfg.MOBReads {
			c.mobStalls.Inc()
			return false
		}
		port := c.dcache
		if e.uop.Uncacheable {
			port = c.umem
		}
		e.req = mem.Request{Addr: e.uop.Addr, Size: e.uop.Size, Kind: mem.Read, Done: e.loadDone}
		if !port.Access(&e.req) {
			c.cacheRetry.Inc()
			return false
		}
		c.mobReads++
		c.loads.Inc()
		e.state = stExecuting
		c.issuedThisCycle[fu]++
		return true

	case isa.Offload:
		if c.offload == nil {
			panic(fmt.Sprintf("cpu %s: offload µop without an offload port", c.cfg.Name))
		}
		if c.mobReads >= c.cfg.MOBReads {
			c.mobStalls.Inc()
			return false
		}
		if !c.offload.Submit(e.uop.Offload, e.loadDone) {
			c.cacheRetry.Inc()
			return false
		}
		c.mobReads++
		c.offloads.Inc()
		e.state = stExecuting
		c.issuedThisCycle[fu]++
		return true

	case isa.Store:
		// Address generation only; the write drains post-commit.
		e.state = stExecuting
		c.issuedThisCycle[fu]++
		c.engine.ScheduleEvent(now+fuCfg.Latency, e, tagComplete)
		return true

	default:
		e.state = stExecuting
		c.issuedThisCycle[fu]++
		done := now + fuCfg.Latency
		if e.uop.Class == isa.Branch && e.mispredicted {
			c.engine.ScheduleEvent(done, e, tagBranchResolve)
		} else {
			c.engine.ScheduleEvent(done, e, tagComplete)
		}
		return true
	}
}

// complete marks a µop done and wakes dependents.
func (c *Core) complete(e *robEntry) {
	e.state = stDone
	if e.uop.Dst != isa.RegNone {
		if p, ok := c.producers[e.uop.Dst]; ok && p == e {
			delete(c.producers, e.uop.Dst)
		}
	}
	for _, w := range e.waiters {
		w.deps--
		if w.deps == 0 && w.state == stWaiting {
			w.state = stReady
			c.readyQ = append(c.readyQ, w)
		}
	}
	e.waiters = e.waiters[:0]
}

// commit retires done µops in order; stores enter the store buffer here.
// Retired non-store entries return to the pool immediately: their
// completion event has fired (state is stDone), their waiters list is
// drained, and complete() removed any producer-table reference. Store
// entries return after their drained write completes (storeDone).
func (c *Core) commit(now sim.Cycle) {
	n := c.cfg.CommitWidth
	for n > 0 && c.rob.Len() > 0 {
		e := *c.rob.Front()
		if e.state != stDone {
			return
		}
		if e.uop.Class == isa.Store {
			if c.mobWrites >= c.cfg.MOBWrites {
				c.mobStalls.Inc()
				return
			}
			c.mobWrites++
			c.stores.Inc()
			e.req = mem.Request{Addr: e.uop.Addr, Size: e.uop.Size, Kind: mem.Write, Done: e.storeDone}
			e.uncacheable = e.uop.Uncacheable
			c.pendingStores.Push(e)
		}
		c.rob.Pop()
		e.inROB = false
		c.committed.Inc()
		if e.uop.Class != isa.Store {
			c.release(e)
		}
		n--
	}
}

// drainStores pushes buffered stores into the memory system in order.
func (c *Core) drainStores() {
	for c.pendingStores.Len() > 0 {
		e := *c.pendingStores.Front()
		port := c.dcache
		if e.uncacheable {
			port = c.umem
		}
		if !port.Access(&e.req) {
			return
		}
		c.pendingStores.Pop()
	}
}
