package cpu

// branchPredictor is the two-level GAs predictor of Table I: a global
// history register indexes (hashed with the branch PC) into a pattern
// history table of 2-bit saturating counters, beside a direct-mapped
// 4096-entry branch target buffer.
type branchPredictor struct {
	ghr     uint32
	ghrMask uint32
	pht     []uint8 // 2-bit counters
	btb     []uint64
	btbMask uint64
}

func newBranchPredictor(ghrBits uint8, phtEntries, btbEntries int) *branchPredictor {
	p := &branchPredictor{
		ghrMask: (1 << ghrBits) - 1,
		pht:     make([]uint8, phtEntries),
		btb:     make([]uint64, btbEntries),
		btbMask: uint64(btbEntries - 1),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for i := range p.btb {
		p.btb[i] = ^uint64(0)
	}
	return p
}

// reset restores the untrained post-construction state in place,
// keeping the PHT/BTB arrays (machine reset must not allocate).
func (p *branchPredictor) reset() {
	p.ghr = 0
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for i := range p.btb {
		p.btb[i] = ^uint64(0)
	}
}

func (p *branchPredictor) phtIndex(pc uint64) int {
	return int((uint64(p.ghr) ^ (pc >> 2)) % uint64(len(p.pht)))
}

// predict returns the predicted direction for the branch at pc.
func (p *branchPredictor) predict(pc uint64) bool {
	return p.pht[p.phtIndex(pc)] >= 2
}

// update trains the direction predictor and the global history.
func (p *branchPredictor) update(pc uint64, taken bool) {
	i := p.phtIndex(pc)
	if taken {
		if p.pht[i] < 3 {
			p.pht[i]++
		}
	} else {
		if p.pht[i] > 0 {
			p.pht[i]--
		}
	}
	p.ghr = ((p.ghr << 1) | b2u(taken)) & p.ghrMask
}

// btbHit checks and trains the BTB; taken branches missing from the BTB
// cost a fetch redirect even when the direction was predicted correctly.
func (p *branchPredictor) btbHit(pc uint64) bool {
	slot := (pc >> 2) & p.btbMask
	hit := p.btb[slot] == pc
	p.btb[slot] = pc
	return hit
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
