// Package cpu models the out-of-order x86 core of the paper's baseline
// (Table I: Sandy-Bridge-like, 2 GHz, 6-wide issue, 168-entry ROB,
// 64-read/36-write memory order buffer, two-level GAs branch predictor
// with a 4096-entry BTB, AVX-512 capable).
//
// The model is trace-driven: it consumes a program-order stream of µops
// whose branch outcomes are known, models fetch/decode/dispatch/issue/
// commit with functional-unit and memory-level-parallelism limits, and
// charges branch mispredictions as front-end refill penalties. Wrong-path
// µops are not simulated — the standard trace-driven simplification, also
// used by the paper's SiNUCA simulator traces.
package cpu

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/sim"
)

// FUClass identifies a functional-unit pool.
type FUClass uint8

// Functional-unit pools per Table I.
const (
	FUIntALU FUClass = iota
	FUIntMul
	FUIntDiv
	FUFPALU
	FUFPMul
	FUFPDiv
	FULoad
	FUStore
	fuClasses
)

// FUConfig describes one pool.
type FUConfig struct {
	Units   int
	Latency sim.Cycle
	// Pipelined pools accept one op per unit per cycle; non-pipelined
	// pools (dividers) block a unit for the full latency.
	Pipelined bool
}

// Config is the core configuration.
type Config struct {
	Name string

	FetchBytes     uint32 // bytes fetched per cycle (16)
	InstBytes      uint32 // mean instruction length used to convert fetch bytes to µops (4)
	FetchBufSize   int    // 18
	DecodeBufSize  int    // 28
	DecodeWidth    int    // µops decoded per cycle (issue width)
	IssueWidth     int    // 6
	CommitWidth    int    // 6
	ROBSize        int    // 168
	MOBReads       int    // 64 in-flight loads/offloads
	MOBWrites      int    // 36 in-flight stores
	MaxBranchFetch int    // branches per fetch group (1)

	FUs [fuClasses]FUConfig

	// MispredictPenalty is the front-end refill charged after a
	// mispredicted branch resolves.
	MispredictPenalty sim.Cycle
	// BTBMissPenalty is the fetch-redirect bubble for taken branches
	// absent from the BTB.
	BTBMissPenalty sim.Cycle

	BTBEntries int // 4096
	GHRBits    uint8
	PHTEntries int
}

// TableI returns the paper's core configuration.
func TableI(name string) Config {
	var c Config
	c.Name = name
	c.FetchBytes = 16
	c.InstBytes = 4
	c.FetchBufSize = 18
	c.DecodeBufSize = 28
	c.DecodeWidth = 6
	c.IssueWidth = 6
	c.CommitWidth = 6
	c.ROBSize = 168
	c.MOBReads = 64
	c.MOBWrites = 36
	c.MaxBranchFetch = 1
	c.FUs[FUIntALU] = FUConfig{Units: 3, Latency: 1, Pipelined: true}
	c.FUs[FUIntMul] = FUConfig{Units: 1, Latency: 3, Pipelined: true}
	c.FUs[FUIntDiv] = FUConfig{Units: 1, Latency: 32, Pipelined: false}
	c.FUs[FUFPALU] = FUConfig{Units: 1, Latency: 3, Pipelined: true}
	c.FUs[FUFPMul] = FUConfig{Units: 1, Latency: 5, Pipelined: true}
	c.FUs[FUFPDiv] = FUConfig{Units: 1, Latency: 10, Pipelined: false}
	c.FUs[FULoad] = FUConfig{Units: 1, Latency: 1, Pipelined: true}
	c.FUs[FUStore] = FUConfig{Units: 1, Latency: 1, Pipelined: true}
	c.MispredictPenalty = 14
	c.BTBMissPenalty = 8
	c.BTBEntries = 4096
	c.GHRBits = 12
	c.PHTEntries = 4096
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.FetchBytes == 0 || c.InstBytes == 0:
		return fmt.Errorf("cpu %s: zero fetch/inst bytes", c.Name)
	case c.FetchBufSize <= 0 || c.DecodeBufSize <= 0 || c.ROBSize <= 0:
		return fmt.Errorf("cpu %s: zero buffer sizes", c.Name)
	case c.IssueWidth <= 0 || c.CommitWidth <= 0 || c.DecodeWidth <= 0:
		return fmt.Errorf("cpu %s: zero widths", c.Name)
	case c.MOBReads <= 0 || c.MOBWrites <= 0:
		return fmt.Errorf("cpu %s: zero MOB entries", c.Name)
	case c.BTBEntries <= 0 || c.PHTEntries <= 0 || c.GHRBits == 0 || c.GHRBits > 30:
		return fmt.Errorf("cpu %s: bad predictor geometry", c.Name)
	}
	for i, fu := range c.FUs {
		if fu.Units <= 0 || fu.Latency == 0 {
			return fmt.Errorf("cpu %s: FU pool %d has %d units latency %d", c.Name, i, fu.Units, fu.Latency)
		}
	}
	return nil
}

// fuFor maps a µop class to its functional-unit pool.
// fuTable maps µop classes to functional units; ^FUClass(0) marks
// classes with no FU. A flat lookup because fuFor runs once per issue
// attempt, the hottest loop in the pipeline model.
var fuTable [256]FUClass

func init() {
	for i := range fuTable {
		fuTable[i] = ^FUClass(0)
	}
	for class, fu := range map[isa.OpClass]FUClass{
		isa.Nop: FUIntALU, isa.IntALU: FUIntALU, isa.Branch: FUIntALU,
		isa.IntMul: FUIntMul,
		isa.IntDiv: FUIntDiv,
		isa.FPALU:  FUFPALU, isa.VecALU: FUFPALU, isa.VecCmp: FUFPALU,
		isa.FPMul: FUFPMul,
		isa.FPDiv: FUFPDiv,
		isa.Load:  FULoad, isa.Offload: FULoad,
		isa.Store: FUStore,
	} {
		fuTable[class] = fu
	}
}

func fuFor(class isa.OpClass) FUClass {
	fu := fuTable[class]
	if fu == ^FUClass(0) {
		panic(fmt.Sprintf("cpu: no FU for class %s", class))
	}
	return fu
}
