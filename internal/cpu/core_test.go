package cpu

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// testMem is a constant-latency memory port.
type testMem struct {
	engine  *sim.Engine
	latency sim.Cycle
	reads   int
	writes  int
	maxOut  int
	out     int
}

func (m *testMem) Access(req *mem.Request) bool {
	if req.Kind == mem.Read {
		m.reads++
	} else {
		m.writes++
	}
	m.out++
	if m.out > m.maxOut {
		m.maxOut = m.out
	}
	if req.Done != nil {
		done := m.engine.Now() + m.latency
		d := req.Done
		m.engine.Schedule(done, func() {
			m.out--
			d(done)
		})
	} else {
		m.out--
	}
	return true
}

// testOffload is a constant-latency offload port.
type testOffload struct {
	engine  *sim.Engine
	latency sim.Cycle
	insts   []*isa.OffloadInst
}

func (o *testOffload) Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool {
	o.insts = append(o.insts, inst)
	at := o.engine.Now() + o.latency
	o.engine.Schedule(at, func() { done(at) })
	return true
}

func newCore(t *testing.T, memLat sim.Cycle) (*sim.Engine, *Core, *testMem, *testOffload, *stats.Registry) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	tm := &testMem{engine: e, latency: memLat}
	to := &testOffload{engine: e, latency: 50}
	c, err := New(e, TableI("cpu0"), tm, tm, to, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, c, tm, to, reg
}

func run(t *testing.T, e *sim.Engine, c *Core, ops []isa.MicroOp) sim.Cycle {
	t.Helper()
	finished := false
	c.Start(&SliceStream{Ops: ops}, func() { finished = true })
	e.Run()
	if !finished {
		t.Fatal("core never finished")
	}
	return c.Cycles()
}

func TestConfigValidation(t *testing.T) {
	if err := TableI("x").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TableI("x")
	bad.ROBSize = 0
	if bad.Validate() == nil {
		t.Fatal("zero ROB accepted")
	}
	bad = TableI("x")
	bad.FUs[FUIntALU].Units = 0
	if bad.Validate() == nil {
		t.Fatal("zero FU accepted")
	}
	bad = TableI("x")
	bad.GHRBits = 0
	if bad.Validate() == nil {
		t.Fatal("bad predictor accepted")
	}
	e := sim.NewEngine()
	if _, err := New(e, bad, nil, nil, nil, stats.NewRegistry()); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestIndependentALUOpsSuperscalar(t *testing.T) {
	e, c, _, _, _ := newCore(t, 10)
	// 30 independent int ALU ops on a 3-ALU, 6-wide machine, 4 µops/cycle
	// fetch → bound by fetch (4/cyc) and ALUs (3/cyc): ~10+pipe cycles.
	var ops []isa.MicroOp
	for i := 0; i < 30; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(4 * i), Class: isa.IntALU, Dst: isa.Reg(i + 1)})
	}
	cycles := run(t, e, c, ops)
	if cycles > 20 {
		t.Fatalf("30 independent ALU ops took %d cycles", cycles)
	}
	if c.Committed() != 30 {
		t.Fatalf("committed %d", c.Committed())
	}
}

func TestDependencyChainSerialises(t *testing.T) {
	e, c, _, _, _ := newCore(t, 10)
	// 20-deep chain of 3-cycle FP ops: at least 60 cycles.
	var ops []isa.MicroOp
	for i := 0; i < 20; i++ {
		ops = append(ops, isa.MicroOp{
			PC: uint64(4 * i), Class: isa.FPALU,
			Dst: isa.Reg(i + 1), Src1: isa.Reg(i),
		})
	}
	cycles := run(t, e, c, ops)
	if cycles < 60 {
		t.Fatalf("20-deep 3-cycle chain took only %d cycles", cycles)
	}
}

func TestDividerNotPipelined(t *testing.T) {
	e, c, _, _, _ := newCore(t, 10)
	var ops []isa.MicroOp
	for i := 0; i < 4; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(4 * i), Class: isa.IntDiv, Dst: isa.Reg(i + 1)})
	}
	cycles := run(t, e, c, ops)
	// 4 divides on one non-pipelined 32-cycle divider: >= 128 cycles.
	if cycles < 128 {
		t.Fatalf("4 divides took %d cycles; divider seems pipelined", cycles)
	}
}

func TestLoadLatencyAndMLP(t *testing.T) {
	e, c, tm, _, _ := newCore(t, 200)
	// 8 independent loads: should overlap (MLP), so total ≈ 200 + small.
	var ops []isa.MicroOp
	for i := 0; i < 8; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(4 * i), Class: isa.Load,
			Dst: isa.Reg(i + 1), Addr: mem.Addr(i * 64), Size: 8})
	}
	cycles := run(t, e, c, ops)
	if cycles > 230 {
		t.Fatalf("8 independent loads took %d cycles; no MLP", cycles)
	}
	if tm.reads != 8 {
		t.Fatalf("reads = %d", tm.reads)
	}
	if tm.maxOut < 8 {
		t.Fatalf("max outstanding = %d, want 8", tm.maxOut)
	}
}

func TestMOBLimitsOutstandingLoads(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	tm := &testMem{engine: e, latency: 500}
	cfg := TableI("cpu0")
	cfg.MOBReads = 4
	c, err := New(e, cfg, tm, tm, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	var ops []isa.MicroOp
	for i := 0; i < 16; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(4 * i), Class: isa.Load,
			Dst: isa.Reg(i + 1), Addr: mem.Addr(i * 64), Size: 8})
	}
	finished := false
	c.Start(&SliceStream{Ops: ops}, func() { finished = true })
	e.Run()
	if !finished {
		t.Fatal("never finished")
	}
	if tm.maxOut > 4 {
		t.Fatalf("outstanding loads %d exceeded MOB limit 4", tm.maxOut)
	}
	// 16 loads, 4 at a time, 500 cycles each wave → >= 2000.
	if c.Cycles() < 2000 {
		t.Fatalf("MOB-limited loads took only %d cycles", c.Cycles())
	}
}

func TestStoresDrainAfterCommit(t *testing.T) {
	e, c, tm, _, _ := newCore(t, 30)
	ops := []isa.MicroOp{
		{PC: 0, Class: isa.Store, Addr: 0x100, Size: 8},
		{PC: 4, Class: isa.Store, Addr: 0x140, Size: 8},
	}
	run(t, e, c, ops)
	if tm.writes != 2 {
		t.Fatalf("writes = %d, want 2", tm.writes)
	}
}

func TestUncacheableRouting(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	cacheMem := &testMem{engine: e, latency: 5}
	directMem := &testMem{engine: e, latency: 5}
	c, err := New(e, TableI("cpu0"), cacheMem, directMem, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	ops := []isa.MicroOp{
		{PC: 0, Class: isa.Load, Dst: 1, Addr: 0, Size: 8},
		{PC: 4, Class: isa.Load, Dst: 2, Addr: 64, Size: 8, Uncacheable: true},
		{PC: 8, Class: isa.Store, Addr: 128, Size: 8, Uncacheable: true},
	}
	finished := false
	c.Start(&SliceStream{Ops: ops}, func() { finished = true })
	e.Run()
	if !finished {
		t.Fatal("never finished")
	}
	if cacheMem.reads != 1 || directMem.reads != 1 || directMem.writes != 1 || cacheMem.writes != 0 {
		t.Fatalf("routing wrong: cache r%d w%d, direct r%d w%d",
			cacheMem.reads, cacheMem.writes, directMem.reads, directMem.writes)
	}
}

func TestOffloadRoundTrip(t *testing.T) {
	e, c, _, to, reg := newCore(t, 10)
	inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpLT, Size: 64, Imm: 5}
	ops := []isa.MicroOp{
		{PC: 0, Class: isa.Offload, Dst: 1, Offload: inst},
		// Dependent ALU op must wait for the offload response.
		{PC: 4, Class: isa.IntALU, Dst: 2, Src1: 1},
	}
	cycles := run(t, e, c, ops)
	if len(to.insts) != 1 || to.insts[0] != inst {
		t.Fatal("offload instruction not submitted")
	}
	if cycles < 50 {
		t.Fatalf("offload round trip took %d cycles, want >= 50", cycles)
	}
	if reg.Scope("cpu0").Get("offload_insts") != 1 {
		t.Fatal("offload counter wrong")
	}
}

func TestOffloadWithoutPortPanics(t *testing.T) {
	e := sim.NewEngine()
	tm := &testMem{engine: e, latency: 5}
	c, err := New(e, TableI("cpu0"), tm, tm, nil, stats.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("offload without port did not panic")
		}
	}()
	c.Start(&SliceStream{Ops: []isa.MicroOp{
		{Class: isa.Offload, Offload: &isa.OffloadInst{}},
	}}, nil)
	e.Run()
}

func TestWellPredictedLoopBranchesAreCheap(t *testing.T) {
	e, c, _, _, reg := newCore(t, 10)
	// A loop branch taken 999 times then not taken: the GAs predictor
	// pays a warmup (one mispredict per fresh GHR value until the global
	// history saturates, ~GHRBits of them) and then predicts perfectly.
	var ops []isa.MicroOp
	for i := 0; i < 1000; i++ {
		ops = append(ops, isa.MicroOp{PC: 0x40, Class: isa.IntALU, Dst: isa.Reg(i + 1)})
		ops = append(ops, isa.MicroOp{PC: 0x44, Class: isa.Branch, Taken: i != 999})
	}
	cycles := run(t, e, c, ops)
	mis := reg.Scope("cpu0").Get("branch_mispredicts")
	if mis > 20 {
		t.Fatalf("loop branch mispredicted %d times over 1000 iterations", mis)
	}
	if cycles > 1800 {
		t.Fatalf("predictable loop took %d cycles", cycles)
	}
}

func TestRandomBranchesArePunished(t *testing.T) {
	e, c, _, _, regGood := newCore(t, 10)
	// Alternating pattern is learnable by a 12-bit GAs.
	var alt []isa.MicroOp
	for i := 0; i < 200; i++ {
		alt = append(alt, isa.MicroOp{PC: 0x80, Class: isa.Branch, Taken: i%2 == 0})
	}
	altCycles := run(t, e, c, alt)

	e2, c2, _, _, regBad := newCore(t, 10)
	// LFSR-ish pseudo-random outcomes defeat the predictor.
	var rnd []isa.MicroOp
	state := uint32(0xACE1)
	for i := 0; i < 200; i++ {
		state = state*1664525 + 1013904223
		rnd = append(rnd, isa.MicroOp{PC: 0x80, Class: isa.Branch, Taken: state&0x10000 != 0})
	}
	rndCycles := run(t, e2, c2, rnd)

	altMis := regGood.Scope("cpu0").Get("branch_mispredicts")
	rndMis := regBad.Scope("cpu0").Get("branch_mispredicts")
	if rndMis <= altMis*2 {
		t.Fatalf("random branches mispredicted %d, alternating %d", rndMis, altMis)
	}
	if rndCycles <= altCycles {
		t.Fatalf("random branches (%d cyc) not slower than alternating (%d cyc)", rndCycles, altCycles)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	e, c, _, _, reg := newCore(t, 10)
	// One branch guaranteed mispredicted (predictor initialised weakly
	// not-taken; branch is taken) followed by independent work.
	ops := []isa.MicroOp{
		{PC: 0x10, Class: isa.Branch, Taken: true},
	}
	for i := 0; i < 12; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(0x20 + 4*i), Class: isa.IntALU, Dst: isa.Reg(i + 1)})
	}
	cycles := run(t, e, c, ops)
	if reg.Scope("cpu0").Get("branch_mispredicts") != 1 {
		t.Fatalf("mispredicts = %d, want 1", reg.Scope("cpu0").Get("branch_mispredicts"))
	}
	// Mispredict penalty (14) must appear in the runtime.
	if cycles < 15 {
		t.Fatalf("mispredicted branch run took only %d cycles", cycles)
	}
}

func TestROBFillsUnderLongLatencyLoad(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	tm := &testMem{engine: e, latency: 2000}
	cfg := TableI("cpu0")
	cfg.ROBSize = 16
	c, err := New(e, cfg, tm, tm, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	// A load everything depends on, then 100 dependent ALU ops: ROB (16)
	// fills; stalls counted.
	ops := []isa.MicroOp{{PC: 0, Class: isa.Load, Dst: 1, Addr: 0, Size: 8}}
	for i := 0; i < 100; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(4 + 4*i), Class: isa.IntALU,
			Dst: isa.Reg(i + 2), Src1: 1})
	}
	finished := false
	c.Start(&SliceStream{Ops: ops}, func() { finished = true })
	e.Run()
	if !finished {
		t.Fatal("never finished")
	}
	if reg.Scope("cpu0").Get("rob_full_stalls") == 0 {
		t.Fatal("ROB never filled behind a 2000-cycle load")
	}
}

func TestInOrderCommit(t *testing.T) {
	e, c, _, _, _ := newCore(t, 100)
	// Load (slow) then ALU (fast): ALU may execute early but commits after.
	ops := []isa.MicroOp{
		{PC: 0, Class: isa.Load, Dst: 1, Addr: 0, Size: 8},
		{PC: 4, Class: isa.IntALU, Dst: 2},
	}
	cycles := run(t, e, c, ops)
	if cycles < 100 {
		t.Fatalf("commit did not wait for load: %d cycles", cycles)
	}
	if c.Committed() != 2 {
		t.Fatalf("committed %d", c.Committed())
	}
}

func TestDoubleStartPanics(t *testing.T) {
	e, c, _, _, _ := newCore(t, 10)
	c.Start(&SliceStream{Ops: []isa.MicroOp{{Class: isa.IntALU, Dst: 1}}}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
		e.Run()
	}()
	c.Start(&SliceStream{}, nil)
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Ops: []isa.MicroOp{{PC: 1}, {PC: 2}}}
	a, ok := s.Next()
	if !ok || a.PC != 1 {
		t.Fatal("first op wrong")
	}
	b, ok := s.Next()
	if !ok || b.PC != 2 {
		t.Fatal("second op wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
}

func TestPredictorDirectly(t *testing.T) {
	p := newBranchPredictor(8, 256, 64)
	// Train always-taken at one PC; the GHR saturates to all-ones after 8
	// updates, then the steady-state PHT entry needs two more to go taken.
	for i := 0; i < 20; i++ {
		p.update(0x100, true)
	}
	if !p.predict(0x100) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
	// BTB: first sight misses, second hits.
	if p.btbHit(0x200) {
		t.Fatal("cold BTB hit")
	}
	if !p.btbHit(0x200) {
		t.Fatal("warm BTB miss")
	}
	// Conflicting PC evicts.
	conflicting := uint64(0x200 + 64*4)
	p.btbHit(conflicting)
	if p.btbHit(0x200) {
		t.Fatal("BTB entry survived conflict eviction")
	}
}

func TestVecOpsUseFPPipe(t *testing.T) {
	e, c, _, _, _ := newCore(t, 10)
	// 10 independent AVX compares on a single FP ALU: >= 10 cycles issue
	// serialisation even though all are independent.
	var ops []isa.MicroOp
	for i := 0; i < 10; i++ {
		ops = append(ops, isa.MicroOp{PC: uint64(4 * i), Class: isa.VecCmp,
			Dst: isa.Reg(i + 1), Size: 64})
	}
	cycles := run(t, e, c, ops)
	if cycles < 12 {
		t.Fatalf("10 vec ops on 1 FP pipe took %d cycles", cycles)
	}
}
