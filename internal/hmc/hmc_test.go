package hmc

import (
	"bytes"
	"testing"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

func newEngine(t *testing.T, cfg Config) (*sim.Engine, *Engine, []byte, *stats.Registry) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	ti := dram.HMC21Timing()
	ti.RefreshInterval = 0
	vaults, err := dram.New(e, mem.HMC21(), ti, reg)
	if err != nil {
		t.Fatal(err)
	}
	links, err := link.New(e, link.Default(), 32, reg)
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, 1<<20)
	eng, err := New(e, cfg, links, vaults, image, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, eng, image, reg
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{FULatency: 0, MaxInFlight: 4}).Validate() == nil {
		t.Fatal("zero latency accepted")
	}
	if (Config{FULatency: 1, MaxInFlight: 0}).Validate() == nil {
		t.Fatal("zero window accepted")
	}
}

func TestCmpReadComputesMask(t *testing.T) {
	e, eng, image, reg := newEngine(t, Default())
	// 16 lanes at address 0: values 0..15; compare < 8 → mask 0x00FF.
	for i := 0; i < 16; i++ {
		isa.SetLane(image, i, int32(i))
	}
	var got []byte
	var doneAt sim.Cycle
	inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpLT,
		Addr: 0, Size: 64, Imm: 8,
		OnResult: func(r []byte) { got = append([]byte(nil), r...) }}
	ok := eng.Submit(inst, func(now sim.Cycle) { doneAt = now })
	if !ok {
		t.Fatal("submit refused")
	}
	e.Run()
	if !bytes.Equal(got, []byte{0xFF, 0x00}) {
		t.Fatalf("mask = %x, want ff00", got)
	}
	if doneAt == 0 {
		t.Fatal("done never fired")
	}
	// Round trip must include link (2x) + DRAM access + FU.
	if doneAt < 240 {
		t.Fatalf("round trip = %d, implausibly fast", doneAt)
	}
	if reg.Scope("hmc").Get("cmp_reads") != 1 {
		t.Fatal("stat not counted")
	}
	if eng.InFlight() != 0 {
		t.Fatal("window not released")
	}
}

func TestAddImmUpdatesMemoryInPlace(t *testing.T) {
	e, eng, image, reg := newEngine(t, Default())
	isa.SetLane(image, 0, 40)
	isa.SetLane(image, 1, -2)
	inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.AddImm, Addr: 0, Size: 8, Imm: 2}
	eng.Submit(inst, func(sim.Cycle) {})
	e.Run()
	if isa.LaneAt(image, 0) != 42 || isa.LaneAt(image, 1) != 0 {
		t.Fatalf("addimm result = %d,%d", isa.LaneAt(image, 0), isa.LaneAt(image, 1))
	}
	// Update instructions write DRAM back.
	if reg.Total("dram.", "writes") != 1 {
		t.Fatalf("writes = %d, want 1", reg.Total("dram.", "writes"))
	}
}

func TestCompareSwap(t *testing.T) {
	e, eng, image, _ := newEngine(t, Default())
	isa.SetLane(image, 0, 7)
	var old []byte
	inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CompareSwap, Addr: 0,
		Imm: 7, Imm2: 99, OnResult: func(r []byte) { old = append([]byte(nil), r...) }}
	eng.Submit(inst, func(sim.Cycle) {})
	e.Run()
	if isa.LaneAt(image, 0) != 99 {
		t.Fatalf("cas did not swap: %d", isa.LaneAt(image, 0))
	}
	if isa.LaneAt(old, 0) != 7 {
		t.Fatalf("cas old value = %d", isa.LaneAt(old, 0))
	}
	// Failed CAS does not write.
	e2, eng2, image2, reg2 := newEngine(t, Default())
	isa.SetLane(image2, 0, 5)
	eng2.Submit(&isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CompareSwap, Addr: 0,
		Imm: 7, Imm2: 99}, func(sim.Cycle) {})
	e2.Run()
	if isa.LaneAt(image2, 0) != 5 {
		t.Fatal("failed cas overwrote memory")
	}
	if reg2.Total("dram.", "writes") != 0 {
		t.Fatal("failed cas wrote DRAM")
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	cfg := Default()
	cfg.MaxInFlight = 2
	e, eng, _, reg := newEngine(t, cfg)
	accepted := 0
	for i := 0; i < 4; i++ {
		inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpEQ,
			Addr: mem.Addr(i * 256), Size: 64, Imm: 1}
		if eng.Submit(inst, func(sim.Cycle) {}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 (window)", accepted)
	}
	if reg.Scope("hmc").Get("window_rejects") != 2 {
		t.Fatal("rejects not counted")
	}
	e.Run()
	if eng.InFlight() != 0 {
		t.Fatal("window never drained")
	}
}

func TestWrongTargetPanics(t *testing.T) {
	_, eng, _, _ := newEngine(t, Default())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong target did not panic")
		}
	}()
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad, Size: 64}, func(sim.Cycle) {})
}

func TestInvalidInstructionPanics(t *testing.T) {
	_, eng, _, _ := newEngine(t, Default())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid instruction did not panic")
		}
	}()
	eng.Submit(&isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.Add, Size: 64},
		func(sim.Cycle) {})
}

func TestParallelCmpReadsAcrossVaults(t *testing.T) {
	e, eng, _, _ := newEngine(t, Default())
	// 16 cmpreads to 16 different vaults: wall time should be far below
	// 16 serialized round trips.
	var last sim.Cycle
	for i := 0; i < 16; i++ {
		inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpGE,
			Addr: mem.Addr(i * 256), Size: 256, Imm: 0}
		if !eng.Submit(inst, func(now sim.Cycle) {
			if now > last {
				last = now
			}
		}) {
			t.Fatalf("submit %d refused", i)
		}
	}
	e.Run()
	oneRT := sim.Cycle(280 + 40) // dram + links, roughly
	if last > 4*oneRT {
		t.Fatalf("16 parallel cmpreads took %d cycles (> 4 round trips)", last)
	}
}

func TestSameRowCmpReadsSerialiseOnBank(t *testing.T) {
	e, eng, _, _ := newEngine(t, Default())
	// 4 cmpreads within the same 256B row: bank tRC serialises them.
	var last sim.Cycle
	for i := 0; i < 4; i++ {
		inst := &isa.OffloadInst{Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpGE,
			Addr: mem.Addr(i * 64), Size: 64, Imm: 0}
		eng.Submit(inst, func(now sim.Cycle) {
			if now > last {
				last = now
			}
		})
	}
	e.Run()
	// 4 closed-page same-bank accesses: >= 3*tRC + access ≈ 1400.
	if last < 1300 {
		t.Fatalf("same-row cmpreads finished at %d; bank serialisation missing", last)
	}
}
