// Package hmc implements the HMC baseline's logic-layer execution: the
// HMC 2.1 update instructions (extended per the paper with operand sizes
// from 16 B up to 256 B and a load-compare instruction) executed by one
// functional unit per vault, plus the host-side controller that sends
// instruction packets over the SerDes links and bounds the number of
// in-flight instructions.
//
// Instructions execute functionally against the backing image so tests
// can verify the computed bitmasks and in-place updates.
package hmc

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config parameterises the HMC instruction path.
type Config struct {
	// FULatency is the per-vault functional-unit latency in CPU cycles
	// (Table I: 1 cycle, logical bitwise & integer units).
	FULatency sim.Cycle
	// MaxInFlight bounds host-side outstanding HMC instructions — the
	// memory controller's atomic-request window. This is the knob that
	// controls how much vault parallelism one core can extract from
	// HMC-ISA offload.
	MaxInFlight int
	// RequestBytes is the instruction packet payload (operand pattern /
	// immediate). The HMC spec's 16-byte request is the paper's "small
	// HMC instruction size" limitation.
	RequestBytes uint32
}

// Default returns the paper's HMC baseline parameters.
func Default() Config {
	return Config{FULatency: 1, MaxInFlight: 16, RequestBytes: 16}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.FULatency == 0 || c.MaxInFlight <= 0 {
		return fmt.Errorf("hmc: bad config %+v", c)
	}
	return nil
}

// Engine is the HMC baseline offload path. It satisfies the processor's
// OffloadPort interface.
type Engine struct {
	cfg    Config
	engine *sim.Engine
	links  *link.Controller
	vaults *dram.HMC
	geom   mem.Geometry
	image  []byte

	inFlight int
	opFree   []*hmcOp

	// Scratch for apply's lane expansion and mask compaction. Valid
	// only within one apply call; OnResult consumers must not retain
	// the slice (the query layer compares and discards it).
	laneScratch [isa.RegisterBytes]byte
	maskScratch [isa.RegisterBytes / 8]byte

	executed  *stats.Counter
	cmpReads  *stats.Counter
	updates   *stats.Counter
	rejected  *stats.Counter
	maskBytes *stats.Counter
}

// hmcOp is one pooled in-flight instruction: the link packet, the vault
// request it becomes inside the cube, and the pre-bound callbacks for
// every hop. Submit draws one; the response delivery releases it.
type hmcOp struct {
	e    *Engine
	inst *isa.OffloadInst
	done func(now sim.Cycle)
	pkt  link.Packet
	req  mem.Request

	execFn      func(p *link.Packet)
	readDoneFn  func(now sim.Cycle)
	writeDoneFn func(now sim.Cycle)
	deliverFn   func(now sim.Cycle)

	// wb records apply's write-back decision between the DRAM read
	// completing (where the functional effect happens, exactly as
	// before the refactor) and the FU latency elapsing.
	wb bool
}

// OnEvent implements sim.Handler: the functional-unit latency elapsed;
// write back if needed, else complete toward the response link.
func (op *hmcOp) OnEvent(now sim.Cycle, _ uint64) {
	e := op.e
	e.executed.Inc()
	if !op.wb {
		op.pkt.Complete()
		return
	}
	op.req = mem.Request{Addr: op.inst.Addr, Size: sizeOf(op.inst), Kind: mem.Write, Done: op.writeDoneFn}
	e.vaults.Access(&op.req)
}

// New builds the baseline engine over the given DRAM and link models.
// image is the functional backing store (its length bounds the usable
// physical address space).
func New(engine *sim.Engine, cfg Config, links *link.Controller, vaults *dram.HMC, image []byte, reg *stats.Registry) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := reg.Scope("hmc")
	return &Engine{
		cfg:       cfg,
		engine:    engine,
		links:     links,
		vaults:    vaults,
		geom:      vaults.Geom,
		image:     image,
		executed:  sc.Counter("instructions"),
		cmpReads:  sc.Counter("cmp_reads"),
		updates:   sc.Counter("updates"),
		rejected:  sc.Counter("window_rejects"),
		maskBytes: sc.Counter("mask_bytes_returned"),
	}, nil
}

// getOp draws a pooled instruction context.
func (e *Engine) getOp() *hmcOp {
	if n := len(e.opFree); n > 0 {
		op := e.opFree[n-1]
		e.opFree = e.opFree[:n-1]
		return op
	}
	op := &hmcOp{e: e}
	op.execFn = op.exec
	op.readDoneFn = op.readDone
	op.writeDoneFn = func(sim.Cycle) { op.pkt.Complete() }
	op.deliverFn = op.deliver
	return op
}

// Submit implements the processor offload port for TargetHMC
// instructions. It reports false when the in-flight window is full.
func (e *Engine) Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool {
	if inst.Target != isa.TargetHMC {
		panic(fmt.Sprintf("hmc: wrong target %s", inst.Target))
	}
	if err := inst.Validate(); err != nil {
		panic("hmc: invalid instruction: " + err.Error())
	}
	if e.inFlight >= e.cfg.MaxInFlight {
		e.rejected.Inc()
		return false
	}
	e.inFlight++

	loc := e.geom.Decompose(inst.Addr)
	respPayload := uint32(0)
	if inst.Op == isa.CmpRead {
		respPayload = isa.MaskBytes(inst.Size)
	}
	op := e.getOp()
	op.inst = inst
	op.done = done
	op.pkt = link.Packet{
		Vault:       loc.Vault,
		ReqPayload:  e.cfg.RequestBytes,
		RespPayload: respPayload,
		Execute:     op.execFn,
		Done:        op.deliverFn,
	}
	e.links.Send(&op.pkt)
	return true
}

// exec runs cube-side on instruction arrival: issue the DRAM read.
func (op *hmcOp) exec(*link.Packet) {
	op.req = mem.Request{Addr: op.inst.Addr, Size: sizeOf(op.inst), Kind: mem.Read, Done: op.readDoneFn}
	op.e.vaults.Access(&op.req)
}

// readDone fires when the operand read completes: the functional effect
// applies here (visible to anything that reads the image afterwards),
// then the FU latency elapses before write-back / response.
func (op *hmcOp) readDone(now sim.Cycle) {
	op.wb = op.e.apply(op.inst)
	op.e.engine.ScheduleEvent(now+op.e.cfg.FULatency, op, 0)
}

// deliver fires on the requester side: release the window slot and the
// op, then complete toward the core.
func (op *hmcOp) deliver(now sim.Cycle) {
	e := op.e
	done := op.done
	op.inst, op.done = nil, nil
	e.opFree = append(e.opFree, op)
	e.inFlight--
	done(now)
}

// apply performs the functional effect; it reports whether the
// instruction writes DRAM back. The mask handed to OnResult lives in
// the engine's scratch buffer: consumers compare and discard it within
// the call.
func (e *Engine) apply(inst *isa.OffloadInst) bool {
	data := e.image[inst.Addr : uint64(inst.Addr)+uint64(sizeOf(inst))]
	switch inst.Op {
	case isa.CmpRead:
		e.cmpReads.Inc()
		lanes := e.laneScratch[:inst.Size]
		if len(inst.Pattern) > 0 {
			isa.LaneOpPattern(inst.ALU, lanes, data, inst.Pattern, int(inst.Size))
		} else {
			isa.LaneOpImm(inst.ALU, lanes, data, inst.Imm, int(inst.Size))
		}
		mask := e.maskScratch[:isa.MaskBytes(inst.Size)]
		isa.CompactMask(mask, lanes, int(inst.Size))
		e.maskBytes.Add(uint64(len(mask)))
		if inst.OnResult != nil {
			inst.OnResult(mask)
		}
		return false
	case isa.AddImm:
		e.updates.Inc()
		isa.LaneOpImm(isa.Add, data, data, inst.Imm, int(inst.Size))
		return true
	case isa.CompareSwap:
		e.updates.Inc()
		old := isa.LaneAt(data, 0)
		swapped := old == inst.Imm
		if swapped {
			isa.SetLane(data, 0, inst.Imm2)
		}
		if inst.OnResult != nil {
			res := e.laneScratch[:isa.LaneBytes]
			isa.SetLane(res, 0, old)
			inst.OnResult(res)
		}
		return swapped
	default:
		panic(fmt.Sprintf("hmc: cannot execute %s", inst.Op))
	}
}

func sizeOf(inst *isa.OffloadInst) uint32 {
	if inst.Op == isa.CompareSwap {
		return isa.LaneBytes
	}
	return inst.Size
}

// Reset clears the in-flight window. Abandoned ops go with the engine's
// event queue; counters are zeroed by the registry reset the machine
// performs alongside.
func (e *Engine) Reset() { e.inFlight = 0 }

// InFlight reports the current window occupancy (for tests).
func (e *Engine) InFlight() int { return e.inFlight }
