// Package hmc implements the HMC baseline's logic-layer execution: the
// HMC 2.1 update instructions (extended per the paper with operand sizes
// from 16 B up to 256 B and a load-compare instruction) executed by one
// functional unit per vault, plus the host-side controller that sends
// instruction packets over the SerDes links and bounds the number of
// in-flight instructions.
//
// Instructions execute functionally against the backing image so tests
// can verify the computed bitmasks and in-place updates.
package hmc

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/dram"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/link"
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Config parameterises the HMC instruction path.
type Config struct {
	// FULatency is the per-vault functional-unit latency in CPU cycles
	// (Table I: 1 cycle, logical bitwise & integer units).
	FULatency sim.Cycle
	// MaxInFlight bounds host-side outstanding HMC instructions — the
	// memory controller's atomic-request window. This is the knob that
	// controls how much vault parallelism one core can extract from
	// HMC-ISA offload.
	MaxInFlight int
	// RequestBytes is the instruction packet payload (operand pattern /
	// immediate). The HMC spec's 16-byte request is the paper's "small
	// HMC instruction size" limitation.
	RequestBytes uint32
}

// Default returns the paper's HMC baseline parameters.
func Default() Config {
	return Config{FULatency: 1, MaxInFlight: 16, RequestBytes: 16}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.FULatency == 0 || c.MaxInFlight <= 0 {
		return fmt.Errorf("hmc: bad config %+v", c)
	}
	return nil
}

// Engine is the HMC baseline offload path. It satisfies the processor's
// OffloadPort interface.
type Engine struct {
	cfg    Config
	engine *sim.Engine
	links  *link.Controller
	vaults *dram.HMC
	geom   mem.Geometry
	image  []byte

	inFlight int

	executed  *stats.Counter
	cmpReads  *stats.Counter
	updates   *stats.Counter
	rejected  *stats.Counter
	maskBytes *stats.Counter
}

// New builds the baseline engine over the given DRAM and link models.
// image is the functional backing store (its length bounds the usable
// physical address space).
func New(engine *sim.Engine, cfg Config, links *link.Controller, vaults *dram.HMC, image []byte, reg *stats.Registry) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sc := reg.Scope("hmc")
	return &Engine{
		cfg:       cfg,
		engine:    engine,
		links:     links,
		vaults:    vaults,
		geom:      vaults.Geom,
		image:     image,
		executed:  sc.Counter("instructions"),
		cmpReads:  sc.Counter("cmp_reads"),
		updates:   sc.Counter("updates"),
		rejected:  sc.Counter("window_rejects"),
		maskBytes: sc.Counter("mask_bytes_returned"),
	}, nil
}

// Submit implements the processor offload port for TargetHMC
// instructions. It reports false when the in-flight window is full.
func (e *Engine) Submit(inst *isa.OffloadInst, done func(now sim.Cycle)) bool {
	if inst.Target != isa.TargetHMC {
		panic(fmt.Sprintf("hmc: wrong target %s", inst.Target))
	}
	if err := inst.Validate(); err != nil {
		panic("hmc: invalid instruction: " + err.Error())
	}
	if e.inFlight >= e.cfg.MaxInFlight {
		e.rejected.Inc()
		return false
	}
	e.inFlight++

	loc := e.geom.Decompose(inst.Addr)
	respPayload := uint32(0)
	if inst.Op == isa.CmpRead {
		respPayload = isa.MaskBytes(inst.Size)
	}
	e.links.Send(&link.Packet{
		Vault:       loc.Vault,
		ReqPayload:  e.cfg.RequestBytes,
		RespPayload: respPayload,
		Execute: func(complete func()) {
			e.execute(inst, complete)
		},
		Done: func(now sim.Cycle) {
			e.inFlight--
			done(now)
		},
	})
	return true
}

// execute runs one instruction in the vault: DRAM read, FU op, and (for
// updates) DRAM write-back, then completes toward the response link.
func (e *Engine) execute(inst *isa.OffloadInst, complete func()) {
	size := inst.Size
	if inst.Op == isa.CompareSwap {
		size = isa.LaneBytes
	}
	read := &mem.Request{Addr: inst.Addr, Size: size, Kind: mem.Read,
		Done: func(now sim.Cycle) {
			writeBack := e.apply(inst)
			after := now + e.cfg.FULatency
			e.engine.Schedule(after, func() {
				e.executed.Inc()
				if !writeBack {
					complete()
					return
				}
				e.vaults.Access(&mem.Request{Addr: inst.Addr, Size: size, Kind: mem.Write,
					Done: func(sim.Cycle) { complete() }})
			})
		}}
	e.vaults.Access(read)
}

// apply performs the functional effect; it reports whether the
// instruction writes DRAM back.
func (e *Engine) apply(inst *isa.OffloadInst) bool {
	data := e.image[inst.Addr : uint64(inst.Addr)+uint64(sizeOf(inst))]
	switch inst.Op {
	case isa.CmpRead:
		e.cmpReads.Inc()
		lanes := make([]byte, inst.Size)
		if len(inst.Pattern) > 0 {
			isa.LaneOpPattern(inst.ALU, lanes, data, inst.Pattern, int(inst.Size))
		} else {
			isa.LaneOpImm(inst.ALU, lanes, data, inst.Imm, int(inst.Size))
		}
		mask := make([]byte, isa.MaskBytes(inst.Size))
		isa.CompactMask(mask, lanes, int(inst.Size))
		e.maskBytes.Add(uint64(len(mask)))
		if inst.OnResult != nil {
			inst.OnResult(mask)
		}
		return false
	case isa.AddImm:
		e.updates.Inc()
		isa.LaneOpImm(isa.Add, data, data, inst.Imm, int(inst.Size))
		return true
	case isa.CompareSwap:
		e.updates.Inc()
		old := isa.LaneAt(data, 0)
		swapped := old == inst.Imm
		if swapped {
			isa.SetLane(data, 0, inst.Imm2)
		}
		if inst.OnResult != nil {
			res := make([]byte, isa.LaneBytes)
			isa.SetLane(res, 0, old)
			inst.OnResult(res)
		}
		return swapped
	default:
		panic(fmt.Sprintf("hmc: cannot execute %s", inst.Op))
	}
}

func sizeOf(inst *isa.OffloadInst) uint32 {
	if inst.Op == isa.CompareSwap {
		return isa.LaneBytes
	}
	return inst.Size
}

// InFlight reports the current window occupancy (for tests).
func (e *Engine) InFlight() int { return e.inFlight }
