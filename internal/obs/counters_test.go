package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// buildRegistry assembles a registry with the per-instance scope shapes
// the machine uses: numbered vaults and links plus flat component
// scopes.
func buildRegistry() *stats.Registry {
	reg := stats.NewRegistry()
	reg.Scope("dram.vault00").Counter("reads").Add(3)
	reg.Scope("dram.vault01").Counter("reads").Add(4)
	reg.Scope("link0").Counter("req_packets").Add(10)
	reg.Scope("link3").Counter("req_packets").Add(5)
	reg.Scope("l1d").Counter("read_hits").Add(100)
	reg.Scope("hipe").Counter("squashed").Add(7)
	return reg
}

func TestCaptureCollapsesInstanceScopes(t *testing.T) {
	reg := buildRegistry()
	eng := sim.NewEngine()
	eng.Schedule(0, func() {})
	eng.Schedule(1000, func() {}) // heap lane
	eng.Run()

	c := Capture(reg, eng)
	want := map[string]uint64{
		"dram.reads":              7,
		"link.req_packets":        15,
		"l1d.read_hits":           100,
		"hipe.squashed":           7,
		"engine.events_scheduled": 2,
		"engine.events_executed":  2,
		"engine.ring_lane_events": 1,
		"engine.heap_lane_events": 1,
	}
	if c.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d\n%s", c.Len(), len(want), c)
	}
	for k, v := range want {
		got, ok := c.Get(k)
		if !ok || got != v {
			t.Errorf("Get(%q) = %d, %v; want %d", k, got, ok, v)
		}
	}
	// Keys come out sorted.
	keys := c.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not strictly sorted: %v", keys)
		}
	}
}

func TestCollapseScope(t *testing.T) {
	cases := map[string]string{
		"dram.vault00": "dram",
		"dram.vault31": "dram",
		"link0":        "link",
		"link12":       "link",
		"linkage":      "linkage", // non-numeric suffix stays
		"link":         "link",
		"l1d":          "l1d",
		"cpu0":         "cpu0",
	}
	for in, want := range cases {
		if got := collapseScope(in); got != want {
			t.Errorf("collapseScope(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountersAddMergesKeywise(t *testing.T) {
	a := fromMap(map[string]uint64{"x.a": 1, "x.b": 2})
	b := fromMap(map[string]uint64{"x.b": 3, "x.c": 4})
	a.Add(b)
	for k, v := range map[string]uint64{"x.a": 1, "x.b": 5, "x.c": 4} {
		if got, _ := a.Get(k); got != v {
			t.Errorf("after Add, %q = %d, want %d", k, got, v)
		}
	}
	if got, _ := b.Get("x.b"); got != 3 {
		t.Errorf("Add mutated its argument: x.b = %d", got)
	}
	// Nil and empty arguments are no-ops.
	before := a.String()
	a.Add(nil)
	a.Add(&Counters{})
	if a.String() != before {
		t.Error("Add(nil/empty) changed the snapshot")
	}
}

func TestCountersJSONRoundTripAndOrder(t *testing.T) {
	c := fromMap(map[string]uint64{"b.z": 2, "a.y": 1, "c.x": 3})
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a.y":1,"b.z":2,"c.x":3}`
	if string(data) != want {
		t.Fatalf("MarshalJSON = %s, want %s", data, want)
	}
	var back Counters
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != c.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back.String(), c.String())
	}
}

func TestCountersCSVAndString(t *testing.T) {
	c := fromMap(map[string]uint64{"b": 2, "a": 1})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "counter,value\na,1\nb,2\n" {
		t.Fatalf("WriteCSV = %q", got)
	}
	if !strings.Contains(c.String(), "a") || !strings.Contains(c.String(), "2") {
		t.Fatalf("String() = %q", c.String())
	}
	// Nil snapshot: empty everything, no panics.
	var nilC *Counters
	if nilC.Len() != 0 || nilC.Keys() != nil || nilC.String() != "" || nilC.Clone() != nil {
		t.Error("nil Counters not inert")
	}
	if _, ok := nilC.Get("a"); ok {
		t.Error("nil Counters Get reported a key")
	}
	buf.Reset()
	if err := nilC.WriteCSV(&buf); err != nil || buf.String() != "counter,value\n" {
		t.Errorf("nil WriteCSV = %q, %v", buf.String(), err)
	}
}

func TestCaptureDeterministic(t *testing.T) {
	a := Capture(buildRegistry(), nil)
	b := Capture(buildRegistry(), nil)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("captures differ:\n%s\n%s", ja, jb)
	}
}
