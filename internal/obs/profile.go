// The CLI profiling hooks: Go CPU/heap profiles and the runtime
// execution trace, bundled so every command wires the same three flags
// the same way. These profile the simulator process itself (wall-clock
// performance of the Go code), not simulated time — the virtual-time
// tracer in trace.go covers that side.
package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profile bundles the -cpuprofile/-memprofile/-trace-out hooks of a
// command. Empty paths disable the corresponding profile; the zero
// value is fully disabled and Start/Stop are no-ops on it.
type Profile struct {
	// CPUPath receives a pprof CPU profile covering Start..Stop.
	CPUPath string
	// MemPath receives a pprof heap profile snapshotted at Stop.
	MemPath string
	// TracePath receives a runtime/trace execution trace of Start..Stop.
	TracePath string

	cpuFile   *os.File
	traceFile *os.File
}

// Enabled reports whether any profile output is requested.
func (p *Profile) Enabled() bool {
	return p != nil && (p.CPUPath != "" || p.MemPath != "" || p.TracePath != "")
}

// Start opens the requested profile outputs and begins profiling. On
// error, anything already started is stopped again.
func (p *Profile) Start() error {
	if p == nil {
		return nil
	}
	if p.CPUPath != "" {
		f, err := os.Create(p.CPUPath)
		if err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	if p.TracePath != "" {
		f, err := os.Create(p.TracePath)
		if err != nil {
			p.stopCPU()
			return fmt.Errorf("obs: execution trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return fmt.Errorf("obs: execution trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

func (p *Profile) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// Stop ends profiling and writes the heap profile (if requested). It
// returns the first error encountered but always stops everything.
func (p *Profile) Stop() error {
	if p == nil {
		return nil
	}
	var first error
	p.stopCPU()
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("obs: execution trace: %w", err)
		}
		p.traceFile = nil
	}
	if p.MemPath != "" {
		f, err := os.Create(p.MemPath)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("obs: heap profile: %w", err)
			}
		} else {
			// An up-to-date heap profile wants a GC first.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("obs: heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("obs: heap profile: %w", err)
			}
		}
	}
	return first
}
