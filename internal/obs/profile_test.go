package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileDisabled(t *testing.T) {
	var p Profile
	if p.Enabled() {
		t.Fatal("zero Profile reports enabled")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilP *Profile
	if nilP.Enabled() || nilP.Start() != nil || nilP.Stop() != nil {
		t.Fatal("nil Profile not inert")
	}
}

func TestProfileWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	p := &Profile{
		CPUPath:   filepath.Join(dir, "cpu.pprof"),
		MemPath:   filepath.Join(dir, "mem.pprof"),
		TracePath: filepath.Join(dir, "exec.trace"),
	}
	if !p.Enabled() {
		t.Fatal("configured Profile reports disabled")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUPath, p.MemPath, p.TracePath} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile output", path)
		}
	}
}

func TestProfileStartErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	p := &Profile{
		CPUPath:   filepath.Join(dir, "cpu.pprof"),
		TracePath: filepath.Join(dir, "no-such-dir", "exec.trace"),
	}
	if err := p.Start(); err == nil {
		p.Stop()
		t.Fatal("Start succeeded with an unwritable trace path")
	}
	// The CPU profile started before the failure must have been stopped:
	// a fresh Start on a clean Profile must succeed.
	p2 := &Profile{CPUPath: filepath.Join(dir, "cpu2.pprof")}
	if err := p2.Start(); err != nil {
		t.Fatalf("CPU profiling left running after failed Start: %v", err)
	}
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
}
