// Trace exporters: Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) and a flat span CSV. Both render spans in record
// order with hand-built, field-ordered JSON — no map iteration anywhere
// — so an export is byte-identical across runs and worker counts.
package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Go string always marshals; keep the exporter total anyway.
		return `"?"`
	}
	return string(b)
}

// WriteChromeJSON writes the trace in Chrome trace_event format. The
// time unit is simulated cycles presented as trace microseconds (1
// cycle = 1 µs), so viewer timelines read directly in cycles. Track
// metadata (process/thread names) is emitted first, then every span in
// record order.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			bw.WriteString("\n")
			first = false
		} else {
			bw.WriteString(",\n")
		}
	}
	if t != nil {
		for _, tn := range t.tracks {
			sep()
			kind := "process_name"
			if tn.thread {
				kind = "thread_name"
			}
			bw.WriteString(`{"name":"` + kind + `","ph":"M","pid":` + strconv.Itoa(tn.pid) +
				`,"tid":` + strconv.Itoa(tn.tid) + `,"args":{"name":` + jstr(tn.name) + `}}`)
		}
		for i := range t.spans {
			sep()
			writeChromeEvent(bw, &t.spans[i])
		}
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// writeChromeEvent renders one span as a trace_event object with a
// fixed field order.
func writeChromeEvent(bw *bufio.Writer, s *Span) {
	bw.WriteString(`{"name":` + jstr(s.Name) +
		`,"cat":` + jstr(s.Cat) +
		`,"ph":"` + s.Phase.chromePh() +
		`","ts":` + strconv.FormatUint(s.Ts, 10))
	if s.Phase == PhaseComplete {
		bw.WriteString(`,"dur":` + strconv.FormatUint(s.Dur, 10))
	}
	bw.WriteString(`,"pid":` + strconv.Itoa(s.Pid) + `,"tid":` + strconv.Itoa(s.Tid))
	switch s.Phase {
	case PhaseBegin, PhaseEnd:
		bw.WriteString(`,"id":` + strconv.Itoa(s.ID))
	case PhaseInstant:
		bw.WriteString(`,"s":"t"`)
	}
	if len(s.Args) > 0 {
		bw.WriteString(`,"args":{`)
		for i, a := range s.Args {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(jstr(a.Key) + ":" + jstr(a.Val))
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// SpanCSVHeader is the column layout of WriteCSV: one row per span in
// record order, args flattened to "key=value" pairs joined with ";".
var SpanCSVHeader = []string{
	"phase", "name", "cat", "pid", "tid", "id", "ts_cycles", "dur_cycles", "args",
}

// WriteCSV writes the spans as a flat CSV with SpanCSVHeader's columns.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(SpanCSVHeader); err != nil {
		return err
	}
	if t != nil {
		for i := range t.spans {
			s := &t.spans[i]
			pairs := make([]string, len(s.Args))
			for j, a := range s.Args {
				pairs[j] = a.Key + "=" + a.Val
			}
			rec := []string{
				s.Phase.String(),
				s.Name,
				s.Cat,
				strconv.Itoa(s.Pid),
				strconv.Itoa(s.Tid),
				strconv.Itoa(s.ID),
				strconv.FormatUint(s.Ts, 10),
				strconv.FormatUint(s.Dur, 10),
				strings.Join(pairs, ";"),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
