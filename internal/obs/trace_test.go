package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTrace records a tiny request: an async request span on the
// router track, a routing instant, two shard tasks on a pool track,
// and a merge instant.
func buildTrace() *Trace {
	tr := NewTrace()
	tr.NameProcess(0, "requests")
	tr.NameProcess(1, "pool 0 (hipe)")
	tr.NameThread(1, 0, "shard 0")
	tr.NameThread(1, 1, "shard 1")
	tr.Begin("q0", "request", 0, 0, 100, Arg{"client", "3"})
	tr.Instant("route", "routing", 0, 0, 100, Arg{"arch", "hipe"})
	tr.Complete("q0/shard0", "shard", 1, 0, 100, 300)
	tr.Complete("q0/shard1", "shard", 1, 1, 100, 350, Arg{"matches", "17"})
	tr.Instant("merge", "merge", 0, 0, 350)
	tr.End("q0", "request", 0, 0, 350)
	return tr
}

func TestTraceRecording(t *testing.T) {
	tr := buildTrace()
	if !tr.On() {
		t.Fatal("enabled trace reports On() == false")
	}
	if tr.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", tr.Len())
	}
	spans := tr.Spans()
	if spans[0].Phase != PhaseBegin || spans[5].Phase != PhaseEnd {
		t.Fatalf("async span not bracketed: %v ... %v", spans[0].Phase, spans[5].Phase)
	}
	if spans[3].Dur != 250 {
		t.Fatalf("shard1 Dur = %d, want 250", spans[3].Dur)
	}
	if spans[2].Pid != 1 || spans[2].Tid != 0 {
		t.Fatalf("shard0 track = (%d, %d), want (1, 0)", spans[2].Pid, spans[2].Tid)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.On() {
		t.Fatal("nil trace reports On() == true")
	}
	// Every recording method must be a safe no-op on nil.
	tr.Begin("a", "b", 0, 0, 0)
	tr.End("a", "b", 0, 0, 1)
	tr.Complete("a", "b", 0, 0, 0, 1)
	tr.Instant("a", "b", 0, 0, 0)
	tr.NameProcess(0, "p")
	tr.NameThread(0, 0, "t")
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace retained spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-trace Chrome export invalid JSON: %s", buf.String())
	}
	buf.Reset()
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 {
		t.Fatalf("nil-trace CSV has %d lines, want header only", lines)
	}
}

func TestChromeExportShape(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", out)
	}
	// Structure the viewers depend on.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 4 metadata events + 6 spans.
	if len(doc.TraceEvents) != 10 {
		t.Fatalf("traceEvents count = %d, want 10", len(doc.TraceEvents))
	}
	for _, frag := range []string{
		`"ph":"M"`, `"process_name"`, `"thread_name"`, // track metadata
		`"ph":"b"`, `"ph":"e"`, `"ph":"X"`, `"ph":"i"`, // phases
		`"dur":200`,              // shard0 complete span
		`"s":"t"`,                // instant scope
		`"args":{"arch":"hipe"}`, // routing annotation
		`"displayTimeUnit":"ms"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("export missing %s", frag)
		}
	}
	// Async begin/end must share cat and id for the viewer to pair them.
	var begin, end map[string]any
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "b":
			begin = ev
		case "e":
			end = ev
		}
	}
	if begin == nil || end == nil {
		t.Fatal("async pair missing")
	}
	if begin["cat"] != end["cat"] || begin["id"] != end["id"] {
		t.Fatalf("async pair mismatched: %v vs %v", begin, end)
	}
}

func TestSpanCSV(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("CSV has %d lines, want header + 6 spans", len(lines))
	}
	if lines[0] != strings.Join(SpanCSVHeader, ",") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[4], "matches=17") {
		t.Fatalf("args not flattened: %q", lines[4])
	}
}

func TestExportsByteDeterministic(t *testing.T) {
	var j1, j2, c1, c2 bytes.Buffer
	a, b := buildTrace(), buildTrace()
	if err := a.WriteChromeJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("Chrome JSON export not byte-deterministic")
	}
	if err := a.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("span CSV export not byte-deterministic")
	}
}
