package obs

import "testing"

// TestCountersDisabledZeroAlloc pins the off state of the observability
// layer to zero allocations: the disabled tracer (nil *Trace) and the
// On() gate that call sites wrap span-argument construction in must not
// allocate, so a run with observability off pays nothing. CI's
// bench-smoke job runs this pin alongside the engine and stats ones.
func TestCountersDisabledZeroAlloc(t *testing.T) {
	var tr *Trace
	if n := testing.AllocsPerRun(100, func() {
		// The call-site pattern: gate first, record only when on.
		if tr.On() {
			tr.Instant("route", "routing", 0, 0, 0, Arg{"arch", "hipe"})
		}
		tr.Begin("q", "request", 0, 0, 0)
		tr.Complete("q/shard0", "shard", 1, 0, 0, 10)
		tr.End("q", "request", 0, 0, 10)
	}); n != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", n)
	}
	var p *Profile
	if n := testing.AllocsPerRun(100, func() {
		if p.Enabled() {
			t.Error("nil profile reports enabled")
		}
	}); n != 0 {
		t.Fatalf("disabled profile check allocates: %v allocs/op", n)
	}
}
