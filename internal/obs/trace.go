// The virtual-time request tracer. A Trace records spans in simulated
// cycles — never wall-clock time — from the single-threaded virtual-
// time replay of a load test, so a trace is byte-identical at any
// executor worker count. The off state is a nil *Trace: every recording
// method is a nil-safe no-op, and call sites gate argument construction
// behind On() so a disabled trace costs nothing, not even allocations.
package obs

// Phase is a span's Chrome trace_event phase.
type Phase uint8

const (
	// PhaseComplete is a duration span with an explicit start and
	// duration (Chrome ph "X") — one shard task on one machine track.
	PhaseComplete Phase = iota
	// PhaseBegin / PhaseEnd bracket an async span (Chrome ph "b"/"e"),
	// matched by (Cat, ID) — one request from arrival to completion,
	// spanning machine tracks.
	PhaseBegin
	PhaseEnd
	// PhaseInstant is a point event (Chrome ph "i") — an admission,
	// routing or shed decision.
	PhaseInstant
)

// String returns the phase's span-CSV spelling.
func (p Phase) String() string {
	switch p {
	case PhaseComplete:
		return "complete"
	case PhaseBegin:
		return "begin"
	case PhaseEnd:
		return "end"
	default:
		return "instant"
	}
}

// chromePh returns the phase's trace_event code.
func (p Phase) chromePh() string {
	switch p {
	case PhaseComplete:
		return "X"
	case PhaseBegin:
		return "b"
	case PhaseEnd:
		return "e"
	default:
		return "i"
	}
}

// Arg is one span annotation, rendered into the trace_event "args"
// object. Values are pre-rendered strings so recording never carries
// type switches into the replay loop.
type Arg struct {
	Key string
	Val string
}

// Span is one recorded trace event. Ts and Dur are simulated cycles;
// the Chrome exporter maps one cycle to one trace microsecond.
type Span struct {
	Phase Phase
	Name  string
	Cat   string
	// Pid/Tid place the span on a track: by convention pid 0 is the
	// request/router track and pid 1+p is replica pool p (tid = shard).
	Pid int
	Tid int
	// ID matches async begin/end pairs within a category (the request
	// index).
	ID   int
	Ts   uint64
	Dur  uint64
	Args []Arg
}

// trackName is one piece of track metadata (process or thread name).
type trackName struct {
	pid, tid int
	name     string
	thread   bool
}

// Trace is an append-only span timeline. The zero value via New is
// ready to record; a nil *Trace is the disabled tracer — every method
// no-ops, On reports false.
type Trace struct {
	spans  []Span
	tracks []trackName
}

// NewTrace returns an empty, enabled trace.
func NewTrace() *Trace { return &Trace{} }

// On reports whether the tracer is recording. Call sites use it to
// gate span-argument construction, which keeps the disabled path
// allocation-free.
func (t *Trace) On() bool { return t != nil }

// Len reports the recorded span count.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in record order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// Complete records a duration span: [start, end) on track (pid, tid).
func (t *Trace) Complete(name, cat string, pid, tid int, start, end uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Phase: PhaseComplete, Name: name, Cat: cat,
		Pid: pid, Tid: tid, Ts: start, Dur: end - start, Args: args})
}

// Begin opens an async span matched by (cat, id).
func (t *Trace) Begin(name, cat string, pid, id int, ts uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Phase: PhaseBegin, Name: name, Cat: cat,
		Pid: pid, ID: id, Ts: ts, Args: args})
}

// End closes the async span opened with the same (cat, id).
func (t *Trace) End(name, cat string, pid, id int, ts uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Phase: PhaseEnd, Name: name, Cat: cat,
		Pid: pid, ID: id, Ts: ts, Args: args})
}

// Instant records a point event on track (pid, tid).
func (t *Trace) Instant(name, cat string, pid, tid int, ts uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Phase: PhaseInstant, Name: name, Cat: cat,
		Pid: pid, Tid: tid, Ts: ts, Args: args})
}

// NameProcess labels a pid track in the exported trace.
func (t *Trace) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.tracks = append(t.tracks, trackName{pid: pid, name: name})
}

// NameThread labels a (pid, tid) track in the exported trace.
func (t *Trace) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.tracks = append(t.tracks, trackName{pid: pid, tid: tid, name: name, thread: true})
}
