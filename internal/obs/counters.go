// Package obs is the observability layer of the reproduction: a
// machine counter snapshot (Counters), a virtual-time request tracer
// (Trace) with Chrome trace_event and CSV exporters, and the CLI
// profiling hooks (Profile).
//
// Everything in this package is off by default and free when off: no
// simulation or serving hot path calls into obs unless a caller opted
// in (serve/sweep Options knobs, CLI flags), the off state of the
// tracer is a nil *Trace whose methods are no-ops, and a counter
// snapshot is one registry walk after a run — never inside one.
//
// Everything is deterministic when on: snapshots order their keys,
// traces are recorded only from single-threaded virtual-time replays,
// and both export byte-identically at any executor worker count (the
// determinism.sh gate).
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Entry is one counter in a snapshot: a "scope.counter" key and its
// value.
type Entry struct {
	Key   string
	Value uint64
}

// Counters is a deterministic machine-counter snapshot: the full
// counter registry of one simulated run (plus the event engine's
// scheduler accounting), flattened to sorted "scope.counter" keys.
// Per-instance scopes collapse to their component family — the 32
// "dram.vaultNN" scopes sum into "dram", the four "linkN" scopes into
// "link" — so snapshots from different machine geometries stay
// comparable and mergeable.
//
// Snapshots merge with Add (shard runs into a request, requests into a
// report) and export as ordered JSON, CSV cells, or an aligned text
// block. The zero value is an empty snapshot.
type Counters struct {
	entries []Entry // sorted by Key
}

// collapseScope maps a per-instance scope name to its component family.
func collapseScope(name string) string {
	if strings.HasPrefix(name, "dram.vault") {
		return "dram"
	}
	if strings.HasPrefix(name, "link") && len(name) > 4 {
		digits := name[4:]
		all := true
		for i := 0; i < len(digits); i++ {
			if digits[i] < '0' || digits[i] > '9' {
				all = false
				break
			}
		}
		if all {
			return "link"
		}
	}
	return name
}

// Capture snapshots reg (and, when non-nil, eng's scheduler accounting
// under the "engine" scope) into a sorted Counters. It walks the
// registry once; nothing is retained, so the machine is free to Reset.
func Capture(reg *stats.Registry, eng *sim.Engine) *Counters {
	acc := map[string]uint64{}
	if reg != nil {
		for _, sc := range reg.Scopes() {
			family := collapseScope(sc.Name())
			for _, cn := range sc.Counters() {
				acc[family+"."+cn] += sc.Get(cn)
			}
		}
	}
	if eng != nil {
		es := eng.Stats()
		acc["engine.events_scheduled"] += es.Scheduled
		acc["engine.events_executed"] += es.Executed
		acc["engine.ring_lane_events"] += es.RingEvents
		acc["engine.heap_lane_events"] += es.HeapEvents
	}
	return fromMap(acc)
}

// NewCounters builds a snapshot from a plain key → value map — how the
// serving layer surfaces its own totals (recovery actions, shed
// counts) next to the machine counters. The map is not retained.
func NewCounters(m map[string]uint64) *Counters { return fromMap(m) }

func fromMap(acc map[string]uint64) *Counters {
	c := &Counters{entries: make([]Entry, 0, len(acc))}
	for k, v := range acc {
		c.entries = append(c.entries, Entry{Key: k, Value: v})
	}
	sort.Slice(c.entries, func(i, j int) bool { return c.entries[i].Key < c.entries[j].Key })
	return c
}

// Len reports the number of keys.
func (c *Counters) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Entries returns the snapshot's entries in sorted key order.
func (c *Counters) Entries() []Entry {
	if c == nil {
		return nil
	}
	return append([]Entry(nil), c.entries...)
}

// Keys returns the sorted keys.
func (c *Counters) Keys() []string {
	if c == nil {
		return nil
	}
	out := make([]string, len(c.entries))
	for i, e := range c.entries {
		out[i] = e.Key
	}
	return out
}

// Get reports the value at key (0, false when absent). Keys are sorted,
// so the lookup is a binary search.
func (c *Counters) Get(key string) (uint64, bool) {
	if c == nil {
		return 0, false
	}
	i := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].Key >= key })
	if i < len(c.entries) && c.entries[i].Key == key {
		return c.entries[i].Value, true
	}
	return 0, false
}

// Add merges o into c, summing values key-wise (keys only o has are
// inserted). Both snapshots stay sorted; o is unchanged.
func (c *Counters) Add(o *Counters) {
	if o == nil || len(o.entries) == 0 {
		return
	}
	merged := make([]Entry, 0, len(c.entries)+len(o.entries))
	i, j := 0, 0
	for i < len(c.entries) && j < len(o.entries) {
		switch {
		case c.entries[i].Key == o.entries[j].Key:
			merged = append(merged, Entry{c.entries[i].Key, c.entries[i].Value + o.entries[j].Value})
			i++
			j++
		case c.entries[i].Key < o.entries[j].Key:
			merged = append(merged, c.entries[i])
			i++
		default:
			merged = append(merged, o.entries[j])
			j++
		}
	}
	merged = append(merged, c.entries[i:]...)
	merged = append(merged, o.entries[j:]...)
	c.entries = merged
}

// Clone returns an independent copy.
func (c *Counters) Clone() *Counters {
	if c == nil {
		return nil
	}
	return &Counters{entries: append([]Entry(nil), c.entries...)}
}

// String renders the snapshot as aligned "key value" lines in key
// order — stable output for golden tests and report sections.
func (c *Counters) String() string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range c.entries {
		fmt.Fprintf(&b, "%-36s %d\n", e.Key, e.Value)
	}
	return b.String()
}

// MarshalJSON emits the snapshot as one JSON object with keys in sorted
// order — deterministic, unlike a Go map's marshalling of insertion
// history, and byte-stable across runs.
func (c *Counters) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, e := range c.entries {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(e.Key)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		fmt.Fprintf(&b, ":%d", e.Value)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (c *Counters) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*c = *fromMap(m)
	return nil
}

// WriteCSV writes the snapshot as a two-column key,value CSV.
func (c *Counters) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "counter,value\n"); err != nil {
		return err
	}
	if c == nil {
		return nil
	}
	for _, e := range c.entries {
		if _, err := fmt.Fprintf(w, "%s,%d\n", e.Key, e.Value); err != nil {
			return err
		}
	}
	return nil
}
