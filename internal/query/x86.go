package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// x86Tuple generates the AVX tuple-at-a-time scan over the NSM layout:
// load the whole 64-byte tuple (in OpSize pieces), lane-compare the
// predicate fields against the GE/LE patterns, branch on the combined
// match, and materialise matching tuples — the paper's Figure 1a flow.
func (w *Workload) x86Tuple() *chunkedStream {
	p := w.Plan
	S := p.OpSize
	chunksPerTuple := int(db.TupleBytes / S)
	if chunksPerTuple == 0 {
		chunksPerTuple = 1
	}
	vr := &vregs{}
	group := 0
	groups := (w.Table.N + p.Unroll - 1) / p.Unroll
	matched := 0

	const pcBase = 0x1000
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		var ops []isa.MicroOp
		pc := uint64(pcBase)
		emit := func(u isa.MicroOp) {
			u.PC = pc
			pc += 4
			ops = append(ops, u)
		}
		for u := 0; u < p.Unroll; u++ {
			i := group*p.Unroll + u
			if i >= w.Table.N {
				break
			}
			// Load the entire tuple: the row-store wastes bandwidth on
			// unused fields — the cache-pollution effect of §II-B.
			var firstChunk isa.Reg
			for k := 0; k < chunksPerTuple; k++ {
				dst := vr.fresh()
				if k == 0 {
					firstChunk = dst
				}
				emit(isa.MicroOp{Class: isa.Load, Dst: dst,
					Addr: w.NSM.TupleAddr(i) + mem.Addr(k)*mem.Addr(S), Size: S})
			}
			// Predicates live in the first 16 bytes: two pattern
			// compares and a mask AND.
			ge := vr.fresh()
			le := vr.fresh()
			m := vr.fresh()
			emit(isa.MicroOp{Class: isa.VecCmp, Dst: ge, Src1: firstChunk, Size: S})
			emit(isa.MicroOp{Class: isa.VecCmp, Dst: le, Src1: firstChunk, Size: S})
			emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: ge, Src2: le})
			// Data-dependent branch: materialise on match.
			match := w.tupleMatch(i)
			emit(isa.MicroOp{Class: isa.Branch, Src1: m, Taken: match})
			if match {
				emit(isa.MicroOp{Class: isa.Store,
					Addr: w.Materialize + mem.Addr(matched*db.TupleBytes),
					Size: db.TupleBytes})
				matched++
			}
		}
		// Loop overhead once per unrolled group.
		emit(isa.MicroOp{Class: isa.IntALU, Dst: vr.fresh()})
		emit(isa.MicroOp{Class: isa.Branch, Taken: group != groups-1})
		group++
		return ops
	}}
}

// x86Column generates the AVX column-at-a-time scan over the DSM layout:
// three passes (shipdate, discount, quantity), each producing/refining a
// packed bitmask in memory — the paper's Figure 1b flow. Branchless
// except for loop control.
func (w *Workload) x86Column() *chunkedStream {
	p := w.Plan
	S := p.OpSize
	maskBytes := isa.MaskBytes(S)
	chunks := w.Table.N * db.ColumnWidth / int(S)
	groups := (chunks + p.Unroll - 1) / p.Unroll
	vr := &vregs{}
	stage := 0
	group := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if stage >= len(predCols) {
			return nil
		}
		col := predCols[stage]
		var ops []isa.MicroOp
		pc := uint64(0x2000 + 0x400*stage)
		emit := func(u isa.MicroOp) {
			u.PC = pc
			pc += 4
			ops = append(ops, u)
		}
		for u := 0; u < p.Unroll; u++ {
			c := group*p.Unroll + u
			if c >= chunks {
				break
			}
			dataAddr := w.DSM.ColBase[col] + mem.Addr(c)*mem.Addr(S)
			maskAddr := w.MaskBase[col] + mem.Addr(c)*mem.Addr(maskBytes)
			d := vr.fresh()
			emit(isa.MicroOp{Class: isa.Load, Dst: d, Addr: dataAddr, Size: S})
			m := vr.fresh()
			switch stage {
			case 0: // shipdate: >= lo AND < hi
				a, b := vr.fresh(), vr.fresh()
				emit(isa.MicroOp{Class: isa.VecCmp, Dst: a, Src1: d, Size: S})
				emit(isa.MicroOp{Class: isa.VecCmp, Dst: b, Src1: d, Size: S})
				emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: a, Src2: b})
			case 1: // discount: between lo and hi, AND previous mask
				prev := vr.fresh()
				emit(isa.MicroOp{Class: isa.Load, Dst: prev,
					Addr: w.MaskBase[predCols[0]] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
				a, b, t := vr.fresh(), vr.fresh(), vr.fresh()
				emit(isa.MicroOp{Class: isa.VecCmp, Dst: a, Src1: d, Size: S})
				emit(isa.MicroOp{Class: isa.VecCmp, Dst: b, Src1: d, Size: S})
				emit(isa.MicroOp{Class: isa.IntALU, Dst: t, Src1: a, Src2: b})
				emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: t, Src2: prev})
			case 2: // quantity: < hi, AND previous mask
				prev := vr.fresh()
				emit(isa.MicroOp{Class: isa.Load, Dst: prev,
					Addr: w.MaskBase[predCols[1]] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
				a := vr.fresh()
				emit(isa.MicroOp{Class: isa.VecCmp, Dst: a, Src1: d, Size: S})
				emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: a, Src2: prev})
			}
			emit(isa.MicroOp{Class: isa.Store, Addr: maskAddr, Size: maskBytes, Src1: m})
		}
		emit(isa.MicroOp{Class: isa.IntALU, Dst: vr.fresh()})
		emit(isa.MicroOp{Class: isa.Branch, Taken: group != groups-1})
		group++
		if group >= groups {
			group = 0
			stage++
		}
		return ops
	}}
}
