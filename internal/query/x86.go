package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// x86Tuple generates the AVX tuple-at-a-time scan over the NSM layout:
// load the whole 64-byte tuple (in OpSize pieces), lane-compare the
// predicate fields against the GE/LE patterns, branch on the combined
// match, and materialise matching tuples — the paper's Figure 1a flow.
func (w *Workload) x86Tuple() *chunkedStream {
	p := w.Plan
	S := p.OpSize
	chunksPerTuple := int(db.TupleBytes / S)
	if chunksPerTuple == 0 {
		chunksPerTuple = 1
	}
	vr := &vregs{}
	group := 0
	groups := (w.Table.N + p.Unroll - 1) / p.Unroll
	matched := 0

	const pcBase = 0x1000
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		e := newEmitter(pcBase)
		first, last := blockBounds(group, p.Unroll, w.Table.N)
		for i := first; i < last; i++ {
			// Load the entire tuple: the row-store wastes bandwidth on
			// unused fields — the cache-pollution effect of §II-B.
			var firstChunk isa.Reg
			for k := 0; k < chunksPerTuple; k++ {
				dst := vr.fresh()
				if k == 0 {
					firstChunk = dst
				}
				e.emit(isa.MicroOp{Class: isa.Load, Dst: dst,
					Addr: w.NSM.TupleAddr(i) + mem.Addr(k)*mem.Addr(S), Size: S})
			}
			// Predicates live in the first 16 bytes: two pattern
			// compares and a mask AND.
			ge := vr.fresh()
			le := vr.fresh()
			m := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: ge, Src1: firstChunk, Size: S})
			e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: le, Src1: firstChunk, Size: S})
			e.emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: ge, Src2: le})
			// Data-dependent branch: materialise on match.
			match := w.tupleMatch(i)
			e.emit(isa.MicroOp{Class: isa.Branch, Src1: m, Taken: match})
			if match {
				e.emit(isa.MicroOp{Class: isa.Store,
					Addr: w.Materialize + mem.Addr(matched*db.TupleBytes),
					Size: db.TupleBytes})
				matched++
			}
		}
		// Loop overhead once per unrolled group.
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// q1x86Tuple generates the AVX tuple-at-a-time Q01 aggregation over the
// NSM layout: load the tuple, compare the shipdate filter, branch on
// the match, then branch again on the group key — the returnflag and
// linestatus dispatch whose direction depends on in-memory data, which
// is exactly the control flow the paper's predication argument targets
// — and accumulate the group's four running sums in registers.
func (w *Workload) q1x86Tuple() *chunkedStream {
	p := w.Plan
	S := p.OpSize
	chunksPerTuple := int(db.TupleBytes / S)
	if chunksPerTuple == 0 {
		chunksPerTuple = 1
	}
	st := w.Desc.Stages[0]
	vr := &vregs{}
	acc := &cpuAcc{vr: vr}
	group := 0
	groups := (w.Table.N + p.Unroll - 1) / p.Unroll

	const pcBase = 0x8000
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		e := newEmitter(pcBase)
		first, last := blockBounds(group, p.Unroll, w.Table.N)
		for i := first; i < last; i++ {
			var firstChunk isa.Reg
			for k := 0; k < chunksPerTuple; k++ {
				dst := vr.fresh()
				if k == 0 {
					firstChunk = dst
				}
				e.emit(isa.MicroOp{Class: isa.Load, Dst: dst,
					Addr: w.NSM.TupleAddr(i) + mem.Addr(k)*mem.Addr(S), Size: S})
			}
			// Filter compare(s) over the predicate lanes.
			m := firstChunk
			for range st.Bounds {
				c := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: c, Src1: firstChunk, Size: S})
				if m != firstChunk {
					nm := vr.fresh()
					e.emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: c})
					m = nm
				} else {
					m = c
				}
			}
			match := w.tupleMatch(i)
			e.emit(isa.MicroOp{Class: isa.Branch, Src1: m, Taken: match})
			if !match {
				continue
			}
			// Group dispatch and accumulates over the already-loaded
			// tuple registers.
			w.emitTupleAccumulate(e.emit, acc, i, firstChunk)
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// q1x86Column generates the AVX column-at-a-time Q01 aggregation over
// the DSM layout: per chunk, compare the shipdate filter into a lane
// mask, load the key and measure columns, and for every group build the
// membership mask (two key compares ANDed with the filter) and fold the
// masked lanes into vector accumulators — branchless masked
// accumulation, the column-store analogue of Figure 1b extended with a
// grouped reduction.
func (w *Workload) q1x86Column() *chunkedStream {
	p := w.Plan
	S := p.OpSize
	chunks := w.Table.N * db.ColumnWidth / int(S)
	groups := (chunks + p.Unroll - 1) / p.Unroll
	st := w.Desc.Stages[0]
	vr := &vregs{}
	acc := &cpuAcc{vr: vr}
	group := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		e := newEmitter(0x8800)
		first, last := blockBounds(group, p.Unroll, chunks)
		for c := first; c < last; c++ {
			load := func(col int) isa.Reg {
				d := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Load, Dst: d,
					Addr: w.DSM.ColBase[col] + mem.Addr(c)*mem.Addr(S), Size: S})
				return d
			}
			ship := load(st.Col)
			m := ship
			for range st.Bounds {
				cr := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: cr, Src1: ship, Size: S})
				if m != ship {
					nm := vr.fresh()
					e.emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: cr})
					m = nm
				} else {
					m = cr
				}
			}
			rfv := load(db.FieldReturnFlag)
			lsv := load(db.FieldLineStatus)
			qty := load(db.FieldQuantity)
			price := load(db.FieldExtendedPrice)
			disc := load(db.FieldDiscount)
			rev := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.VecALU, Dst: rev, Src1: price, Src2: disc, Size: S})
			for g := 0; g < w.Desc.Groups; g++ {
				ka, kb := vr.fresh(), vr.fresh()
				e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: ka, Src1: rfv, Size: S})
				e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: kb, Src1: lsv, Size: S})
				km := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: km, Src1: ka, Src2: kb})
				gm := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: gm, Src1: km, Src2: m})
				masked := func(src isa.Reg) isa.Reg {
					t := vr.fresh()
					e.emit(isa.MicroOp{Class: isa.VecALU, Dst: t, Src1: src, Src2: gm, Size: S})
					return t
				}
				acc.add(e.emit, isa.IntALU, g, AggCount, gm)
				acc.add(e.emit, isa.IntALU, g, AggQty, masked(qty))
				acc.add(e.emit, isa.IntALU, g, AggPrice, masked(price))
				acc.add(e.emit, isa.IntALU, g, AggRevenue, masked(rev))
			}
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// x86Column generates the AVX column-at-a-time scan over the DSM layout:
// three passes (shipdate, discount, quantity), each producing/refining a
// packed bitmask in memory — the paper's Figure 1b flow. Branchless
// except for loop control.
func (w *Workload) x86Column() *chunkedStream {
	p := w.Plan
	S := p.OpSize
	maskBytes := isa.MaskBytes(S)
	chunks := w.Table.N * db.ColumnWidth / int(S)
	groups := (chunks + p.Unroll - 1) / p.Unroll
	stages := w.Desc.Stages
	vr := &vregs{}
	stage := 0
	group := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if stage >= len(stages) {
			return nil
		}
		st := stages[stage]
		col := st.Col
		e := newEmitter(uint64(0x2000 + 0x400*stage))
		first, last := blockBounds(group, p.Unroll, chunks)
		for c := first; c < last; c++ {
			dataAddr := w.DSM.ColBase[col] + mem.Addr(c)*mem.Addr(S)
			maskAddr := w.MaskBase[col] + mem.Addr(c)*mem.Addr(maskBytes)
			d := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.Load, Dst: d, Addr: dataAddr, Size: S})
			m := vr.fresh()
			// Refinement stages reload the previous column's bitmask.
			var prev isa.Reg
			if stage > 0 {
				prev = vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Load, Dst: prev,
					Addr: w.MaskBase[stages[stage-1].Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
			}
			// One vector compare per stage bound, then mask combines.
			regs := make([]isa.Reg, len(st.Bounds))
			for i := range st.Bounds {
				regs[i] = vr.fresh()
				e.emit(isa.MicroOp{Class: isa.VecCmp, Dst: regs[i], Src1: d, Size: S})
			}
			cur := regs[0]
			for _, r := range regs[1:] {
				dst := m
				if stage > 0 {
					dst = vr.fresh() // intermediate: the prev-mask AND still follows
				}
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: dst, Src1: cur, Src2: r})
				cur = dst
			}
			switch {
			case stage > 0:
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: cur, Src2: prev})
			case len(regs) == 1:
				m = cur // single unrefined bound: the compare is the mask
			}
			e.emit(isa.MicroOp{Class: isa.Store, Addr: maskAddr, Size: maskBytes, Src1: m})
		}
		e.loopTail(vr, group != groups-1)
		group++
		if group >= groups {
			group = 0
			stage++
		}
		return e.ops
	}}
}
