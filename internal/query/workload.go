package query

import (
	"bytes"
	"fmt"
	"math"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/mem"
)

// Workload is a prepared scan: table laid into a machine's image, output
// regions allocated, reference results computed, and a µop generator
// ready to stream.
type Workload struct {
	Plan  Plan
	Table *db.Table
	M     *machine.Machine

	// Layouts (one of the two is populated, per the strategy).
	NSM db.NSMLayout
	DSM db.DSMLayout

	// Output regions.
	MaskBase    map[int]mem.Addr // per predicate column (DSM) — one bit per tuple
	FinalMask   mem.Addr         // final bitmask region (both strategies)
	Materialize mem.Addr         // matched-tuple region (NSM)

	// AccRegion holds the in-memory aggregation accumulator (one 256 B
	// vector of per-lane partial sums) for Aggregate plans.
	AccRegion mem.Addr

	// Pattern rows for NSM lane compares (HIVE registers load them; HMC
	// CmpReads carry them as instruction patterns).
	PatternGE mem.Addr
	PatternLE mem.Addr
	patGE     []int32
	patLE     []int32

	// Reference results.
	Ref      *db.ReferenceResult
	colMasks map[int][]byte
	// prefix[i] = AND of column masks up to predicate stage i
	// (0=shipdate, 1=+discount, 2=+quantity).
	prefix [3][]byte

	// Runtime verification of engine-computed results.
	mismatches int
	checked    int
}

// predCols is the column evaluation order of the scan.
var predCols = [3]int{db.FieldShipDate, db.FieldDiscount, db.FieldQuantity}

// Prepare lays the table into m's image and builds all bookkeeping.
func Prepare(m *machine.Machine, t *db.Table, p Plan) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if t.N == 0 {
		return nil, fmt.Errorf("query: empty table")
	}
	if t.N%64 != 0 {
		// Keeps every op size an exact divisor of the data; the paper's
		// 1 GB table trivially satisfies this.
		return nil, fmt.Errorf("query: tuple count %d must be a multiple of 64", t.N)
	}
	w := &Workload{
		Plan:     p,
		Table:    t,
		M:        m,
		MaskBase: make(map[int]mem.Addr),
		colMasks: make(map[int][]byte),
	}
	a := db.NewArena(uint64(len(m.Image)))

	switch p.Strategy {
	case TupleAtATime:
		w.NSM = db.LayoutNSM(m.Image, a, t)
		// Pattern rows: per-lane constants tiled every 16 lanes (one
		// tuple). CmpGE pattern / CmpLE pattern; filler lanes always in
		// range.
		w.patGE, w.patLE = tuplePatterns(p.Q)
		w.PatternGE = writePattern(m.Image, a, w.patGE)
		w.PatternLE = writePattern(m.Image, a, w.patLE)
		// Lane-mask region: one bit per 32-bit lane of tuple data.
		lanes := t.N * db.TupleBytes / 4
		w.FinalMask = a.Alloc(uint64(lanes/8), 256)
		w.Materialize = a.Alloc(uint64(t.N*db.TupleBytes), 256)
	case ColumnAtATime:
		w.DSM = db.LayoutDSM(m.Image, a, t)
		// Chunks below 8 tuples still occupy a whole mask byte, so the
		// region is chunks×MaskBytes, not N/8.
		tuplesPerChunk := int(p.OpSize) / db.ColumnWidth
		regionBytes := uint64(t.N / tuplesPerChunk * int(isa.MaskBytes(p.OpSize)))
		for _, col := range predCols {
			w.MaskBase[col] = a.Alloc(regionBytes, 256)
		}
		w.FinalMask = w.MaskBase[db.FieldQuantity]
		if p.Aggregate {
			// Per-lane partial sums are 32-bit: bound the table so the
			// worst-case lane sum (every 64th tuple matching at maximum
			// revenue ≈ 1.06e6) cannot overflow.
			if t.N > 1<<20 {
				return nil, fmt.Errorf("query: aggregation lanes would risk overflow beyond %d tuples", 1<<20)
			}
			w.AccRegion = a.Alloc(isa.RegisterBytes, 256)
		}
	}

	w.Ref = db.Reference(t, p.Q)
	for _, col := range predCols {
		w.colMasks[col] = db.ColumnMask(t, p.Q, col)
	}
	w.prefix[0] = w.colMasks[db.FieldShipDate]
	w.prefix[1] = andMasks(w.prefix[0], w.colMasks[db.FieldDiscount])
	w.prefix[2] = andMasks(w.prefix[1], w.colMasks[db.FieldQuantity])
	return w, nil
}

func andMasks(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] & b[i]
	}
	return out
}

// tuplePatterns builds the per-lane GE and LE constants for one 16-field
// tuple: predicate fields carry the Q06 bounds, other lanes always match.
func tuplePatterns(q db.Q06) (ge, le []int32) {
	ge = make([]int32, db.NumFields)
	le = make([]int32, db.NumFields)
	for f := 0; f < db.NumFields; f++ {
		ge[f] = math.MinInt32
		le[f] = math.MaxInt32
	}
	ge[db.FieldShipDate] = q.ShipLo
	le[db.FieldShipDate] = q.ShipHi - 1
	ge[db.FieldDiscount] = q.DiscLo
	le[db.FieldDiscount] = q.DiscHi
	le[db.FieldQuantity] = q.QtyHi - 1
	return ge, le
}

// writePattern stores a 16-lane pattern tiled across one 256 B row.
func writePattern(image []byte, a *db.Arena, pat []int32) mem.Addr {
	base := a.Alloc(256, 256)
	for i := 0; i < 64; i++ {
		isa.SetLane(image[uint64(base):], i, pat[i%len(pat)])
	}
	return base
}

// tupleLaneMatch reports whether tuple i fully matches per the reference
// (used for branch outcomes in tuple-at-a-time plans).
func (w *Workload) tupleMatch(i int) bool {
	return w.Ref.Bitmask[i/8]&(1<<(i%8)) != 0
}

// expectTupleMask returns the packed GE/LE lane masks a pattern compare
// over [first, first+n) tuples should produce.
func (w *Workload) expectPatternMasks(firstTuple, nBytes int) (ge, le []byte) {
	lanes := nBytes / 4
	glanes := make([]byte, nBytes)
	llanes := make([]byte, nBytes)
	base := uint64(w.NSM.TupleAddr(firstTuple))
	for i := 0; i < lanes; i++ {
		v := isa.LaneAt(w.M.Image[base:], i)
		if v >= w.patGE[i%db.NumFields] {
			isa.SetLane(glanes, i, -1)
		}
		if v <= w.patLE[i%db.NumFields] {
			isa.SetLane(llanes, i, -1)
		}
	}
	ge = make([]byte, isa.MaskBytes(uint32(nBytes)))
	le = make([]byte, isa.MaskBytes(uint32(nBytes)))
	isa.CompactMask(ge, glanes, nBytes)
	isa.CompactMask(le, llanes, nBytes)
	return ge, le
}

// expectedMaskRegion lays a per-tuple bitmask out the way the chunked
// scan stores it: each chunk of OpSize/4 tuples occupies
// MaskBytes(OpSize) bytes (for chunks smaller than 8 tuples the packing
// differs from a flat bitmask).
func (w *Workload) expectedMaskRegion(flat []byte) []byte {
	tuplesPerChunk := int(w.Plan.OpSize) / db.ColumnWidth
	maskBytes := int(isa.MaskBytes(w.Plan.OpSize))
	chunks := w.Table.N / tuplesPerChunk
	out := make([]byte, chunks*maskBytes)
	for c := 0; c < chunks; c++ {
		piece := packBits(flat, c*tuplesPerChunk, (c+1)*tuplesPerChunk)
		copy(out[c*maskBytes:], piece)
	}
	return out
}

// check records an engine-result comparison.
func (w *Workload) check(got, want []byte) {
	w.checked++
	if !bytes.Equal(got, want) {
		w.mismatches++
	}
}

// Checked reports how many engine results were cross-checked at runtime.
func (w *Workload) Checked() int { return w.checked }

// Mismatches reports runtime cross-check failures (must be zero).
func (w *Workload) Mismatches() int { return w.mismatches }

// Stream builds the µop stream for the plan.
func (w *Workload) Stream() *chunkedStream {
	switch w.Plan.Arch {
	case X86:
		if w.Plan.Strategy == TupleAtATime {
			return w.x86Tuple()
		}
		return w.x86Column()
	case HMC:
		if w.Plan.Strategy == TupleAtATime {
			return w.hmcTuple()
		}
		return w.hmcColumn()
	case HIVE:
		if w.Plan.Strategy == TupleAtATime {
			return w.pimTuple(isa.TargetHIVE)
		}
		if w.Plan.Fused {
			return w.hiveFusedColumn()
		}
		return w.hiveColumn()
	case HIPE:
		return w.hipeColumn()
	}
	panic("query: unreachable")
}

// Verify checks the functional outcome of a completed run against the
// reference evaluator. Which artifacts exist depends on the plan:
// engine-written bitmask regions for HIVE/HIPE, runtime cross-checks for
// HMC, and (by construction) nothing for x86, whose correctness is the
// reference itself.
func (w *Workload) Verify() error {
	if w.mismatches > 0 {
		return fmt.Errorf("query %s: %d of %d runtime result checks failed",
			w.Plan, w.mismatches, w.checked)
	}
	switch {
	case w.Plan.Arch == HIVE && w.Plan.Strategy == ColumnAtATime,
		w.Plan.Arch == HIPE:
		// The final bitmask region must equal the reference bitmask in
		// the chunked storage layout (each chunk's tuple bits packed
		// into MaskBytes(OpSize) bytes).
		want := w.expectedMaskRegion(w.Ref.Bitmask)
		got := w.M.Image[w.FinalMask : uint64(w.FinalMask)+uint64(len(want))]
		if !bytes.Equal(got, want) {
			return fmt.Errorf("query %s: final bitmask differs from reference (%d vs %d matches)",
				w.Plan, isa.PopcountMask(got), isa.PopcountMask(want))
		}
	}
	if w.Plan.Aggregate {
		// The engine's accumulator vector must sum to the reference
		// revenue.
		var got int64
		acc := w.M.Image[w.AccRegion : uint64(w.AccRegion)+isa.RegisterBytes]
		for i := 0; i < isa.LanesPerReg; i++ {
			got += int64(isa.LaneAt(acc, i))
		}
		if got != w.Ref.Revenue {
			return fmt.Errorf("query %s: in-memory revenue %d, reference %d", w.Plan, got, w.Ref.Revenue)
		}
	}
	switch {
	case w.Plan.Arch == HIVE && w.Plan.Strategy == TupleAtATime:
		// The engine wrote packed GE&LE lane masks; tuple i matches iff
		// its three predicate lane bits are all set in both masks — the
		// generator cross-checked each chunk at runtime (w.checked>0).
		if w.checked == 0 {
			return fmt.Errorf("query %s: no runtime checks ran", w.Plan)
		}
	case w.Plan.Arch == HMC:
		if w.checked == 0 {
			return fmt.Errorf("query %s: no runtime checks ran", w.Plan)
		}
	}
	return nil
}
