package query

import (
	"bytes"
	"fmt"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/mem"
)

// Workload is a prepared scan: table laid into a machine's image, output
// regions allocated, reference results computed, and a µop generator
// ready to stream.
type Workload struct {
	Plan  Plan
	Table *db.Table
	M     *machine.Machine

	// Desc is the plan's compiled query description; every generator
	// reads its predicate stages (and, for Q1Agg, its group-by shape)
	// from here instead of a hard-wired query.
	Desc Desc

	// Layouts (one of the two is populated, per the strategy).
	NSM db.NSMLayout
	DSM db.DSMLayout

	// Output regions.
	MaskBase    map[int]mem.Addr // per predicate column (DSM) — one bit per tuple
	FinalMask   mem.Addr         // final bitmask region (both strategies)
	Materialize mem.Addr         // matched-tuple region (NSM, selection scans)

	// AccRegion holds in-memory aggregation accumulators: one 256 B
	// vector of per-lane partial sums for the Q06 Aggregate extension,
	// or Groups×NumAggs vectors for Q01 plans on the engine
	// architectures (HIVE/HIPE).
	AccRegion mem.Addr

	// ValidRow is a 256 B row whose first OpSize/4 lanes are all-ones
	// and the rest zero. Vector loads below the full register width
	// leave a register's tail lanes untouched (zero), but compares over
	// those lanes still produce mask bits; ANDing the filter mask with
	// this row confines the predicated accumulation to real tuples.
	ValidRow mem.Addr

	// Pattern rows for NSM lane compares (HIVE registers load them; HMC
	// CmpReads carry them as instruction patterns).
	PatternGE mem.Addr
	PatternLE mem.Addr
	patGE     []int32
	patLE     []int32

	// Reference results (Ref for selection scans, Ref1 for aggregation).
	Ref  *db.ReferenceResult
	Ref1 *db.Q1Result
	// matchMask is the flat full-predicate bitmask (Ref.Bitmask or
	// Ref1.Bitmask), the branch-outcome oracle for tuple plans.
	matchMask []byte
	// prefix[i] = AND of stage masks up to predicate stage i.
	prefix [][]byte
	// groupMask[g] = prefix[last] ∧ group-g membership (Q1Agg only).
	groupMask [][]byte

	// Runtime verification of engine-computed results.
	mismatches int
	checked    int
}

// maxGroupChunks bounds the chunk count of an engine-aggregated Q01
// plan: per-lane partial sums are 32-bit and the worst-case per-chunk
// addend is one maximal discounted revenue (≈1.06e6), so beyond ~2025
// chunks a lane could overflow.
const maxGroupChunks = 2025

// ValidateFor extends Validate with the table-dependent envelope: an
// engine-aggregated Q01 plan keeps 32-bit per-lane partial sums, so
// its chunk count (tuples per operation) is bounded. Grid expansion
// and serve admission use this so oversized cells trim or reject up
// front instead of aborting a run mid-sweep.
func (p Plan) ValidateFor(tuples int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Auto() {
		// Validate accepted the shape; the table-dependent envelope
		// holds when at least one backend substitution survives it.
		for _, b := range Backends() {
			q := p
			q.Arch = b.Arch()
			if q.ValidateFor(tuples) == nil {
				return nil
			}
		}
		return fmt.Errorf("query: auto plan %s fits no registered backend for %d tuples", p, tuples)
	}
	if p.Kind == Q1Agg && p.Strategy == ColumnAtATime &&
		(p.Arch == HIVE || p.Arch == HIPE) {
		if chunks := tuples / (int(p.OpSize) / db.ColumnWidth); chunks > maxGroupChunks {
			return fmt.Errorf("query: %d chunks of %d B risk 32-bit lane overflow in group accumulators (max %d; raise the op size or shard the table)",
				chunks, p.OpSize, maxGroupChunks)
		}
	}
	return nil
}

// Prepare lays the table into m's image and builds all bookkeeping.
func Prepare(m *machine.Machine, t *db.Table, p Plan) (*Workload, error) {
	if p.Auto() {
		return nil, fmt.Errorf("query: auto plan %s must be resolved to a registered backend before preparing", p)
	}
	if err := p.ValidateFor(t.N); err != nil {
		return nil, err
	}
	if t.N == 0 {
		return nil, fmt.Errorf("query: empty table")
	}
	if t.N%64 != 0 {
		// Keeps every op size an exact divisor of the data; the paper's
		// 1 GB table trivially satisfies this.
		return nil, fmt.Errorf("query: tuple count %d must be a multiple of 64", t.N)
	}
	if p.Arch == HIPE && (p.Aggregate || p.Kind == Q1Agg) && !m.HIPE.ZeroingSquash() {
		// The accumulating plans feed unpredicated Adds from predicated
		// temporaries: only zeroing-mask squash semantics guarantee a
		// squashed temp contributes zero. On the paper-literal
		// "leave dst unchanged" ablation machine the temps would carry
		// stale data into the accumulators, so refuse up front.
		return nil, fmt.Errorf("query: %s accumulates through predicated temporaries and requires the HIPE engine's zeroing-squash semantics", p)
	}
	w := &Workload{
		Plan:     p,
		Table:    t,
		M:        m,
		Desc:     p.Desc(),
		MaskBase: make(map[int]mem.Addr),
	}
	a := db.NewArena(uint64(len(m.Image)))

	switch p.Strategy {
	case TupleAtATime:
		w.NSM = db.LayoutNSM(m.Image, a, t)
		// Pattern rows: per-lane constants tiled every 16 lanes (one
		// tuple). CmpGE pattern / CmpLE pattern; filler lanes always in
		// range.
		w.patGE, w.patLE = tuplePatternsDesc(w.Desc)
		w.PatternGE = writePattern(m.Image, a, w.patGE)
		w.PatternLE = writePattern(m.Image, a, w.patLE)
		// Lane-mask region: one bit per 32-bit lane of tuple data.
		lanes := t.N * db.TupleBytes / 4
		w.FinalMask = a.Alloc(uint64(lanes/8), 256)
		w.Materialize = a.Alloc(uint64(t.N*db.TupleBytes), 256)
	case ColumnAtATime:
		if w.Desc.Grouped() {
			// The aggregation plans touch the group-key columns; they
			// append after the standard four so the Q06 layout is
			// byte-identical with or without them.
			w.DSM = db.LayoutDSM(m.Image, a, t,
				db.FieldShipDate, db.FieldDiscount, db.FieldQuantity,
				db.FieldExtendedPrice, db.FieldReturnFlag, db.FieldLineStatus)
		} else {
			w.DSM = db.LayoutDSM(m.Image, a, t)
		}
		// Chunks below 8 tuples still occupy a whole mask byte, so the
		// region is chunks×MaskBytes, not N/8.
		tuplesPerChunk := int(p.OpSize) / db.ColumnWidth
		regionBytes := uint64(t.N / tuplesPerChunk * int(isa.MaskBytes(p.OpSize)))
		for _, st := range w.Desc.Stages {
			w.MaskBase[st.Col] = a.Alloc(regionBytes, 256)
		}
		w.FinalMask = w.MaskBase[w.Desc.Stages[len(w.Desc.Stages)-1].Col]
		if p.Aggregate {
			// Per-lane partial sums are 32-bit: bound the table so the
			// worst-case lane sum (every 64th tuple matching at maximum
			// revenue ≈ 1.06e6) cannot overflow.
			if t.N > 1<<20 {
				return nil, fmt.Errorf("query: aggregation lanes would risk overflow beyond %d tuples", 1<<20)
			}
			w.AccRegion = a.Alloc(isa.RegisterBytes, 256)
		}
		if w.Desc.Grouped() && (p.Arch == HIVE || p.Arch == HIPE) {
			// The engines keep one accumulator register per (group,
			// aggregate); ValidateFor bounded the chunk count so the
			// 32-bit lanes cannot overflow.
			w.AccRegion = a.Alloc(uint64(w.Desc.Groups*NumAggs)*isa.RegisterBytes, 256)
			w.ValidRow = a.Alloc(256, 256)
			for i := 0; i < tuplesPerChunk; i++ {
				isa.SetLane(m.Image[uint64(w.ValidRow):], i, -1)
			}
		}
	}

	switch w.Desc.Kind {
	case Q1Agg:
		w.Ref1 = db.ReferenceQ1(t, p.Q1)
		w.matchMask = w.Ref1.Bitmask
	default:
		w.Ref = db.Reference(t, p.Q)
		w.matchMask = w.Ref.Bitmask
	}
	w.prefix = make([][]byte, len(w.Desc.Stages))
	for i, st := range w.Desc.Stages {
		m := stageMask(t, st)
		if i > 0 {
			m = andMasks(w.prefix[i-1], m)
		}
		w.prefix[i] = m
	}
	if w.Desc.Grouped() {
		w.groupMask = make([][]byte, w.Desc.Groups)
		filter := w.prefix[len(w.prefix)-1]
		for g := range w.groupMask {
			rf, ls := groupKey(g)
			gm := make([]byte, len(filter))
			for i := 0; i < t.N; i++ {
				if filter[i/8]&(1<<(i%8)) != 0 && t.ReturnFlag[i] == rf && t.LineStatus[i] == ls {
					gm[i/8] |= 1 << (i % 8)
				}
			}
			w.groupMask[g] = gm
		}
	}
	return w, nil
}

func andMasks(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] & b[i]
	}
	return out
}

// writePattern stores a 16-lane pattern tiled across one 256 B row.
func writePattern(image []byte, a *db.Arena, pat []int32) mem.Addr {
	base := a.Alloc(256, 256)
	for i := 0; i < 64; i++ {
		isa.SetLane(image[uint64(base):], i, pat[i%len(pat)])
	}
	return base
}

// tupleMatch reports whether tuple i fully matches per the reference
// (used for branch outcomes in tuple-at-a-time plans).
func (w *Workload) tupleMatch(i int) bool {
	return w.matchMask[i/8]&(1<<(i%8)) != 0
}

// tupleGroup reports tuple i's group index (Q1Agg plans).
func (w *Workload) tupleGroup(i int) int {
	return db.GroupID(w.Table.ReturnFlag[i], w.Table.LineStatus[i])
}

// accAddr is the address of the (group, aggregate) accumulator vector.
func (w *Workload) accAddr(g, agg int) mem.Addr {
	return w.AccRegion + mem.Addr((g*NumAggs+agg)*isa.RegisterBytes)
}

// expectPatternMasks returns the packed GE/LE lane masks a pattern compare
// over [first, first+n) tuples should produce.
func (w *Workload) expectPatternMasks(firstTuple, nBytes int) (ge, le []byte) {
	lanes := nBytes / 4
	glanes := make([]byte, nBytes)
	llanes := make([]byte, nBytes)
	base := uint64(w.NSM.TupleAddr(firstTuple))
	for i := 0; i < lanes; i++ {
		v := isa.LaneAt(w.M.Image[base:], i)
		if v >= w.patGE[i%db.NumFields] {
			isa.SetLane(glanes, i, -1)
		}
		if v <= w.patLE[i%db.NumFields] {
			isa.SetLane(llanes, i, -1)
		}
	}
	ge = make([]byte, isa.MaskBytes(uint32(nBytes)))
	le = make([]byte, isa.MaskBytes(uint32(nBytes)))
	isa.CompactMask(ge, glanes, nBytes)
	isa.CompactMask(le, llanes, nBytes)
	return ge, le
}

// expectedMaskRegion lays a per-tuple bitmask out the way the chunked
// scan stores it: each chunk of OpSize/4 tuples occupies
// MaskBytes(OpSize) bytes (for chunks smaller than 8 tuples the packing
// differs from a flat bitmask).
func (w *Workload) expectedMaskRegion(flat []byte) []byte {
	tuplesPerChunk := int(w.Plan.OpSize) / db.ColumnWidth
	maskBytes := int(isa.MaskBytes(w.Plan.OpSize))
	chunks := w.Table.N / tuplesPerChunk
	out := make([]byte, chunks*maskBytes)
	for c := 0; c < chunks; c++ {
		piece := packBits(flat, c*tuplesPerChunk, (c+1)*tuplesPerChunk)
		copy(out[c*maskBytes:], piece)
	}
	return out
}

// check records an engine-result comparison.
func (w *Workload) check(got, want []byte) {
	w.checked++
	if !bytes.Equal(got, want) {
		w.mismatches++
	}
}

// Checked reports how many engine results were cross-checked at runtime.
func (w *Workload) Checked() int { return w.checked }

// Mismatches reports runtime cross-check failures (must be zero).
func (w *Workload) Mismatches() int { return w.mismatches }

// GroupResults returns the per-group aggregates of a verified Q1Agg run,
// in db.GroupID order (nil for selection plans). Call after Verify: for
// the engine architectures the values were checked against the
// in-memory accumulators, for the baselines against the runtime mask
// cross-checks.
func (w *Workload) GroupResults() []db.GroupAgg {
	if w.Ref1 == nil {
		return nil
	}
	out := make([]db.GroupAgg, len(w.Ref1.Groups))
	copy(out, w.Ref1.Groups[:])
	return out
}

// Verify checks the functional outcome of a completed run against the
// reference evaluator. Which artifacts exist depends on the plan:
// engine-written bitmask regions and group accumulators for HIVE/HIPE,
// runtime cross-checks for HMC, and (by construction) nothing for x86,
// whose correctness is the reference itself.
func (w *Workload) Verify() error {
	if w.mismatches > 0 {
		return fmt.Errorf("query %s: %d of %d runtime result checks failed",
			w.Plan, w.mismatches, w.checked)
	}
	if w.Desc.Kind == Q1Agg {
		return w.verifyQ1()
	}
	switch {
	case w.Plan.Arch == HIVE && w.Plan.Strategy == ColumnAtATime,
		w.Plan.Arch == HIPE:
		// The final bitmask region must equal the reference bitmask in
		// the chunked storage layout (each chunk's tuple bits packed
		// into MaskBytes(OpSize) bytes).
		want := w.expectedMaskRegion(w.Ref.Bitmask)
		got := w.M.Image[w.FinalMask : uint64(w.FinalMask)+uint64(len(want))]
		if !bytes.Equal(got, want) {
			return fmt.Errorf("query %s: final bitmask differs from reference (%d vs %d matches)",
				w.Plan, isa.PopcountMask(got), isa.PopcountMask(want))
		}
	}
	if w.Plan.Aggregate {
		// The engine's accumulator vector must sum to the reference
		// revenue.
		got := laneSum(w.M.Image, w.AccRegion)
		if got != w.Ref.Revenue {
			return fmt.Errorf("query %s: in-memory revenue %d, reference %d", w.Plan, got, w.Ref.Revenue)
		}
	}
	switch {
	case w.Plan.Arch == HIVE && w.Plan.Strategy == TupleAtATime:
		// The engine wrote packed GE&LE lane masks; tuple i matches iff
		// its three predicate lane bits are all set in both masks — the
		// generator cross-checked each chunk at runtime (w.checked>0).
		if w.checked == 0 {
			return fmt.Errorf("query %s: no runtime checks ran", w.Plan)
		}
	case w.Plan.Arch == HMC:
		if w.checked == 0 {
			return fmt.Errorf("query %s: no runtime checks ran", w.Plan)
		}
	}
	return nil
}

// verifyQ1 checks a grouped-aggregation run. The engine architectures
// spilled their accumulator registers to AccRegion: each (group,
// aggregate) register's lane sum must equal the reference evaluator's
// value. The baselines verified their bitmasks at runtime.
func (w *Workload) verifyQ1() error {
	engine := w.Plan.Strategy == ColumnAtATime &&
		(w.Plan.Arch == HIVE || w.Plan.Arch == HIPE)
	if engine {
		if w.Plan.Arch == HIVE {
			// HIVE's filter pass stored the chunked filter bitmask.
			want := w.expectedMaskRegion(w.Ref1.Bitmask)
			got := w.M.Image[w.FinalMask : uint64(w.FinalMask)+uint64(len(want))]
			if !bytes.Equal(got, want) {
				return fmt.Errorf("query %s: filter bitmask differs from reference (%d vs %d matches)",
					w.Plan, isa.PopcountMask(got), isa.PopcountMask(want))
			}
		}
		for g := 0; g < w.Desc.Groups; g++ {
			ref := w.Ref1.Groups[g]
			want := [NumAggs]int64{ref.Count, ref.SumQty, ref.SumPrice, ref.SumRevenue}
			for agg := 0; agg < NumAggs; agg++ {
				got := laneSum(w.M.Image, w.accAddr(g, agg))
				if got != want[agg] {
					return fmt.Errorf("query %s: group %d %s: in-memory %d, reference %d",
						w.Plan, g, AggName(agg), got, want[agg])
				}
			}
		}
		return nil
	}
	switch w.Plan.Arch {
	case HMC, HIVE:
		if w.checked == 0 {
			return fmt.Errorf("query %s: no runtime checks ran", w.Plan)
		}
	}
	return nil
}
