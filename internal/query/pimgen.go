package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// The HIVE/HIPE generators emit software-pipelined lock blocks: all of a
// wave's DRAM loads are hoisted to the top of the block so the
// interlocked register bank can overlap them, then the per-chunk compute
// follows. The wave depth is bounded by the unroll factor and by
// register pressure — and register pressure is where HIPE pays: a
// predicated chain keeps each chunk's running mask register live across
// the whole block, halving the usable wave depth versus HIVE. That is
// the micro-architectural reading of the paper's "additional data
// dependencies" costing HIPE ~15% against HIVE.

// hiveWave is HIVE's maximum wave depth: one data register per chunk
// (r0..r29), three shared temporaries (r30..r32), two pattern registers
// (r33, r34).
const hiveWave = 30

// hipeWave is HIPE's maximum wave depth: each chunk needs a data
// register and a live mask register (rX = j, rM = 15+j), plus shared
// temporaries r30..r32.
const hipeWave = 15

// pimTuple generates the HIVE tuple-at-a-time scan: per wave, a lock
// block hoists the tuple-data loads, pattern-compares each chunk against
// the bound registers, and stores the lane bitmasks; the processor then
// fetches each bitmask, branches per tuple and materialises matches.
// Lock blocks are serialised through the processor — the control
// dependency the paper blames for HIVE's tuple-at-a-time behaviour.
func (w *Workload) pimTuple(target isa.Target) *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	tuplesPerChunk := S / db.TupleBytes
	stride := S
	if tuplesPerChunk == 0 {
		tuplesPerChunk = 1
		stride = db.TupleBytes
	}
	chunks := w.Table.N / tuplesPerChunk
	wave := p.Unroll
	if wave > hiveWave {
		wave = hiveWave
	}
	groups := (chunks + wave - 1) / wave
	maskBytes := isa.MaskBytes(p.OpSize)

	const regGE, regLE = 33, 34
	const tmpA, tmpB = 30, 31
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	setupDone := false
	group := 0
	matched := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if !setupDone {
			setupDone = true
			// One-time block: load the GE/LE pattern rows into the two
			// reserved bound registers.
			e := newEmitter(0x5000)
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Lock})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VLoad,
				Dst: regGE, Addr: w.PatternGE, Size: 256})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VLoad,
				Dst: regLE, Addr: w.PatternLE, Size: 256})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Unlock})
			return e.ops
		}
		if group >= groups {
			return nil
		}
		e := newEmitter(0x5100)
		first, last := blockBounds(group, wave, chunks)
		oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Lock})
		// Phase A: hoisted data loads, one register per chunk.
		for c := first; c < last; c++ {
			rD := uint8(c - first)
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VLoad,
				Dst: rD, Addr: w.NSM.Base + mem.Addr(c*stride), Size: p.OpSize})
		}
		// Phase B: per-chunk pattern compares into shared temporaries,
		// bitmask stored straight out of the temp.
		for c := first; c < last; c++ {
			rD := uint8(c - first)
			firstTuple := c * tuplesPerChunk
			wantGE, wantLE := w.expectPatternMasks(firstTuple, S)
			want := make([]byte, len(wantGE))
			for i := range want {
				want[i] = wantGE[i] & wantLE[i]
			}
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VALU,
				ALU: isa.CmpGE, Dst: tmpA, Src1: rD, Src2: regGE})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VALU,
				ALU: isa.CmpLE, Dst: tmpB, Src1: rD, Src2: regLE})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VALU,
				ALU: isa.And, Dst: tmpA, Src1: tmpA, Src2: tmpB})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VMaskStore,
				Src1: tmpA, Addr: w.FinalMask + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize,
				OnResult: func(r []byte) { w.check(r, want) }})
		}
		unlockAck := oc.emitUnlock(e, target)

		// Processor control flow: fetch each chunk's bitmask, test per
		// tuple, materialise matches.
		for c := first; c < last; c++ {
			lm := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.Load, Dst: lm, Src1: unlockAck,
				Addr: w.FinalMask + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
			for t := 0; t < tuplesPerChunk; t++ {
				i := c*tuplesPerChunk + t
				tv := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: lm})
				match := w.tupleMatch(i)
				e.emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: match})
				if match {
					e.emit(isa.MicroOp{Class: isa.Store,
						Addr: w.Materialize + mem.Addr(matched*db.TupleBytes), Size: db.TupleBytes})
					matched++
				}
			}
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// q1pimTuple generates the HIVE tuple-at-a-time Q01 aggregation: per
// wave, a lock block hoists the tuple-data loads and pattern-compares
// the shipdate filter, storing lane bitmasks; the processor fetches
// each bitmask, branches per tuple, reloads matching tuples through the
// cache, branches on the group key and accumulates in registers — the
// aggregation decision still round-trips through the processor.
func (w *Workload) q1pimTuple(target isa.Target) *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	tuplesPerChunk := S / db.TupleBytes
	stride := S
	if tuplesPerChunk == 0 {
		tuplesPerChunk = 1
		stride = db.TupleBytes
	}
	chunks := w.Table.N / tuplesPerChunk
	wave := p.Unroll
	if wave > hiveWave {
		wave = hiveWave
	}
	groups := (chunks + wave - 1) / wave
	maskBytes := isa.MaskBytes(p.OpSize)

	const regLE = 33
	const tmpA = 30
	vr := &vregs{}
	acc := &cpuAcc{vr: vr}
	oc := &offloadChain{vr: vr}
	setupDone := false
	group := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if !setupDone {
			setupDone = true
			// One-time block: load the LE pattern row into the bound
			// register (Q01's filter is a single upper bound).
			e := newEmitter(0xA000)
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Lock})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VLoad,
				Dst: regLE, Addr: w.PatternLE, Size: 256})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Unlock})
			return e.ops
		}
		if group >= groups {
			return nil
		}
		e := newEmitter(0xA100)
		first, last := blockBounds(group, wave, chunks)
		oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Lock})
		// Phase A: hoisted data loads, one register per chunk.
		for c := first; c < last; c++ {
			rD := uint8(c - first)
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VLoad,
				Dst: rD, Addr: w.NSM.Base + mem.Addr(c*stride), Size: p.OpSize})
		}
		// Phase B: per-chunk filter compare, bitmask stored from the temp.
		for c := first; c < last; c++ {
			rD := uint8(c - first)
			firstTuple := c * tuplesPerChunk
			_, wantLE := w.expectPatternMasks(firstTuple, S)
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VALU,
				ALU: isa.CmpLE, Dst: tmpA, Src1: rD, Src2: regLE})
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VMaskStore,
				Src1: tmpA, Addr: w.FinalMask + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize,
				OnResult: func(r []byte) { w.check(r, wantLE) }})
		}
		unlockAck := oc.emitUnlock(e, target)

		// Processor control flow: fetch each chunk's bitmask, branch per
		// tuple, accumulate matching tuples' groups.
		for c := first; c < last; c++ {
			lm := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.Load, Dst: lm, Src1: unlockAck,
				Addr: w.FinalMask + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
			for t := 0; t < tuplesPerChunk; t++ {
				i := c*tuplesPerChunk + t
				tv := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: lm})
				match := w.tupleMatch(i)
				e.emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: match})
				if !match {
					continue
				}
				tup := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Load, Dst: tup,
					Addr: w.NSM.TupleAddr(i), Size: db.TupleBytes})
				w.emitTupleAccumulate(e.emit, acc, i, tup)
			}
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// hiveColumn generates HIVE's column-at-a-time scan (Figure 3b/3c): per
// column, software-pipelined lock blocks compute the chunk bitmasks
// in-memory; between columns the processor must fetch every bitmask back
// from DRAM and branch to decide which portions of the next column to
// process — the round trip HIPE eliminates.
func (w *Workload) hiveColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	stages := w.Desc.Stages
	wave := p.Unroll
	if wave > hiveWave {
		wave = hiveWave
	}

	const tmpA, tmpB, tmpP = 30, 31, 32
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	stage := 0
	pos := 0 // index into the selected chunk list of this stage
	selected := make([]int, 0, chunks)
	for c := 0; c < chunks; c++ {
		selected = append(selected, c) // stage 0 processes everything
	}

	return &chunkedStream{next: func() []isa.MicroOp {
		for pos >= len(selected) {
			// Advance to the next column; recompute the chunks that can
			// still produce matches.
			stage++
			pos = 0
			if stage >= len(stages) {
				return nil
			}
			next := selected[:0]
			for c := 0; c < chunks; c++ {
				if bitRange(w.prefix[stage-1], c*tuplesPerChunk, (c+1)*tuplesPerChunk) {
					next = append(next, c)
				}
			}
			selected = next
			if len(selected) == 0 {
				stage = len(stages)
				return nil
			}
		}
		st := stages[stage]
		col := st.Col
		e := newEmitter(uint64(0x6000 + 0x400*stage))

		first := pos
		last := first + wave
		if last > len(selected) {
			last = len(selected)
		}
		oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
		// Phase A: hoisted column-data loads.
		for k := first; k < last; k++ {
			c := selected[k]
			rD := uint8(k - first)
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad,
				Dst: rD, Addr: w.DSM.ColBase[col] + mem.Addr(c*S), Size: p.OpSize})
		}
		// Phase B: per-chunk compares, previous-column mask AND, store —
		// the bound list comes from the query description.
		for k := first; k < last; k++ {
			c := selected[k]
			rD := uint8(k - first)
			t0 := c * tuplesPerChunk
			want := packBits(w.prefix[stage], t0, t0+tuplesPerChunk)
			if stage > 0 {
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VMaskLoad,
					Dst: tmpP, Addr: w.MaskBase[stages[stage-1].Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize})
			}
			dst := [2]uint8{tmpA, tmpB}
			for i, b := range st.Bounds {
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
					ALU: b.Kind, Dst: dst[i], Src1: rD, UseImm: true, Imm: b.Imm})
			}
			if len(st.Bounds) == 2 {
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
					ALU: isa.And, Dst: tmpA, Src1: tmpA, Src2: tmpB})
			}
			if stage > 0 {
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
					ALU: isa.And, Dst: tmpA, Src1: tmpA, Src2: tmpP})
			}
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VMaskStore,
				Src1: tmpA, Addr: w.MaskBase[col] + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize,
				OnResult: func(r []byte) { w.check(r, want) }})
		}
		unlockAck := oc.emitUnlock(e, isa.TargetHIVE)

		// Processor decision round trip: fetch each fresh bitmask from
		// memory (first touch per line goes to DRAM) and branch on
		// whether the next column needs this chunk.
		for k := first; k < last; k++ {
			c := selected[k]
			lm := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.Load, Dst: lm, Src1: unlockAck,
				Addr: w.MaskBase[col] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
			tv := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: lm})
			empty := !bitRange(w.prefix[stage], c*tuplesPerChunk, (c+1)*tuplesPerChunk)
			e.emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: empty})
		}
		e.emit(isa.MicroOp{Class: isa.Branch, Taken: last != len(selected)})
		pos = last
		return e.ops
	}}
}

// hipeColumn generates the HIPE predicated scan — the paper's
// contribution in action. One pass over the chunks: each lock block
// hoists the shipdate loads of a wave, then touches discount and
// quantity only under predicates chained off the running mask's zero
// flag, and stores the final bitmask under a predicate too. No bitmask
// ever travels to the processor and no branch depends on in-memory data
// — but the predication match logic must wait for each flag before it
// can decide, and every predicated instruction reads the flag through
// the match logic: the "additional data dependencies" behind the
// paper's 15% cost against HIVE's unconditional full scan.
func (w *Workload) hipeColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	stages := w.Desc.Stages
	blocks := (chunks + p.Unroll - 1) / p.Unroll

	const tmpA, tmpB, tmpC = 30, 31, 32
	// regAcc accumulates per-lane revenue partial sums for Aggregate
	// plans (the in-memory Q06 aggregation extension).
	const regAcc = 33
	// Aggregation keeps each chunk's discount vector live through the
	// whole chunk (the revenue multiply needs it after the quantity
	// stage), costing a third register per chunk and shrinking the wave.
	wave := hipeWave
	if p.Aggregate {
		wave = 10
	}
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	block := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if block >= blocks {
			return nil
		}
		e := newEmitter(0x7000)
		first, last := blockBounds(block, p.Unroll, chunks)
		nz := func(reg uint8) isa.Predicate {
			return isa.Predicate{Valid: true, Reg: reg, WhenZero: false}
		}
		hipe := func(inst isa.OffloadInst) *isa.OffloadInst {
			inst.Target = isa.TargetHIPE
			return &inst
		}

		oc.emit(e, hipe(isa.OffloadInst{Op: isa.Lock}))
		for ws := first; ws < last; ws += wave {
			we := ws + wave
			if we > last {
				we = last
			}
			regX := func(k int) uint8 { return uint8(k - ws) }        // data register
			regM := func(k int) uint8 { return uint8(wave + k - ws) } // running mask
			// regC holds the chunk's discount vector for the revenue
			// multiply (Aggregate plans only).
			regC := func(k int) uint8 { return uint8(2*wave + k - ws) }
			// Predicate stages, straight from the query description: a
			// load phase (predicated after the first stage — squashed
			// chunks never touch DRAM) then a compute phase that refines
			// each chunk's running mask register.
			for s, st := range stages {
				dataReg := regX
				if p.Aggregate && st.Col == db.FieldDiscount {
					dataReg = regC // discounts stay live for the revenue multiply
				}
				for k := ws; k < we; k++ {
					ld := isa.OffloadInst{Op: isa.VLoad, Dst: dataReg(k),
						Addr: w.DSM.ColBase[st.Col] + mem.Addr(k*S), Size: p.OpSize}
					if s > 0 {
						ld.Pred = nz(regM(k))
					}
					oc.emit(e, hipe(ld))
				}
				last := s == len(stages)-1
				for k := ws; k < we; k++ {
					pred := isa.Predicate{}
					if s > 0 {
						pred = nz(regM(k))
					}
					dst := [2]uint8{tmpA, tmpB}
					for i, b := range st.Bounds {
						d := dst[i]
						if s == 0 && len(st.Bounds) == 1 {
							d = regM(k) // single first-stage bound is the mask
						}
						oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: b.Kind,
							Dst: d, Src1: dataReg(k), UseImm: true, Imm: b.Imm, Pred: pred}))
					}
					switch {
					case s == 0 && len(st.Bounds) == 2:
						oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
							Dst: regM(k), Src1: tmpA, Src2: tmpB}))
					case s > 0 && len(st.Bounds) == 2:
						oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
							Dst: tmpC, Src1: tmpA, Src2: tmpB, Pred: pred}))
						oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
							Dst: regM(k), Src1: tmpC, Src2: regM(k), Pred: pred}))
					case s > 0 && len(st.Bounds) == 1:
						oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
							Dst: regM(k), Src1: tmpA, Src2: regM(k), Pred: pred}))
					}
					if last {
						t0 := k * tuplesPerChunk
						want := packBits(w.prefix[len(stages)-1], t0, t0+tuplesPerChunk)
						oc.emit(e, hipe(isa.OffloadInst{Op: isa.VMaskStore, Src1: regM(k),
							Addr: w.FinalMask + mem.Addr(k)*mem.Addr(maskBytes), Size: p.OpSize,
							Pred:     nz(regM(k)),
							OnResult: func(r []byte) { w.check(r, want) }}))
					}
				}
			}
			if p.Aggregate {
				// Phase G: the Q06 aggregation in memory. Extended
				// prices load only for matching chunks; the masked
				// products accumulate into the shared accumulator. The
				// Add itself is unpredicated so a squash (which zeroes
				// its tmp operand) cannot zero the accumulator.
				for k := ws; k < we; k++ {
					oc.emit(e, hipe(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
						Addr: w.DSM.ColBase[db.FieldExtendedPrice] + mem.Addr(k*S), Size: p.OpSize,
						Pred: nz(regM(k))}))
					oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.Mul,
						Dst: tmpA, Src1: regX(k), Src2: regC(k), Pred: nz(regM(k))}))
					oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
						Dst: tmpA, Src1: tmpA, Src2: regM(k), Pred: nz(regM(k))}))
					oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.Add,
						Dst: regAcc, Src1: regAcc, Src2: tmpA}))
				}
			}
		}
		if p.Aggregate && block == blocks-1 {
			// Spill the accumulator so the processor (and verification)
			// can read the per-lane partial sums.
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.VStore, Src1: regAcc,
				Addr: w.AccRegion, Size: isa.RegisterBytes}))
		}
		oc.emitUnlock(e, isa.TargetHIPE)
		e.emit(isa.MicroOp{Class: isa.Branch, Taken: block != blocks-1})
		block++
		return e.ops
	}}
}
