package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// hmcTuple generates the HMC-baseline tuple-at-a-time scan: per chunk of
// OpSize bytes of tuple data, two load-compare instructions (GE and LE
// lane patterns) execute inside the vault; the processor ANDs the
// returned bitmasks, branches per tuple, and materialises matches with
// cache-assisted stores.
func (w *Workload) hmcTuple() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	// A chunk covers whole tuples for S >= 64, or the predicate-bearing
	// prefix of a single tuple for smaller sizes.
	tuplesPerChunk := S / db.TupleBytes
	stride := S
	if tuplesPerChunk == 0 {
		tuplesPerChunk = 1
		stride = db.TupleBytes
	}
	chunks := w.Table.N / tuplesPerChunk
	groups := (chunks + p.Unroll - 1) / p.Unroll
	lanePattern := w.patternLanes()

	vr := &vregs{}
	group := 0
	matched := 0
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		e := newEmitter(0x3000)
		first, last := blockBounds(group, p.Unroll, chunks)
		for c := first; c < last; c++ {
			firstTuple := c * tuplesPerChunk
			addr := w.NSM.Base + mem.Addr(c*stride)
			wantGE, wantLE := w.expectPatternMasks(firstTuple, S)

			g, l := vr.fresh(), vr.fresh()
			e.emit(isa.MicroOp{Class: isa.Offload, Dst: g, Offload: &isa.OffloadInst{
				Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpGE,
				Addr: addr, Size: p.OpSize, Pattern: lanePattern,
				OnResult: func(r []byte) { w.check(r, wantGE) },
			}})
			e.emit(isa.MicroOp{Class: isa.Offload, Dst: l, Offload: &isa.OffloadInst{
				Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpLE,
				Addr: addr, Size: p.OpSize, Pattern: w.patternLanesLE(),
				OnResult: func(r []byte) { w.check(r, wantLE) },
			}})
			m := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: g, Src2: l})
			for t := 0; t < tuplesPerChunk; t++ {
				i := firstTuple + t
				tv := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: m})
				match := w.tupleMatch(i)
				e.emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: match})
				if match {
					e.emit(isa.MicroOp{Class: isa.Store,
						Addr: w.Materialize + mem.Addr(matched*db.TupleBytes),
						Size: db.TupleBytes})
					matched++
				}
			}
			// Store the chunk's bitmask with cache assistance.
			e.emit(isa.MicroOp{Class: isa.Store, Src1: m,
				Addr: w.FinalMask + mem.Addr(c)*mem.Addr(isa.MaskBytes(p.OpSize)),
				Size: isa.MaskBytes(p.OpSize)})
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// patternLanes returns the GE pattern truncated/tiled to the instruction
// immediate (at most one tuple of 16 lanes, fewer for sub-tuple ops).
func (w *Workload) patternLanes() []int32 {
	n := int(w.Plan.OpSize) / 4
	if n > db.NumFields {
		n = db.NumFields
	}
	return w.patGE[:n]
}

func (w *Workload) patternLanesLE() []int32 {
	n := int(w.Plan.OpSize) / 4
	if n > db.NumFields {
		n = db.NumFields
	}
	return w.patLE[:n]
}

// expectColCmp computes the packed bitmask a lane-uniform CmpRead over
// column values [t0, t0+n) must return.
func (w *Workload) expectColCmp(col int, kind isa.ALUKind, imm int32, t0, n int) []byte {
	vals := w.columnValues(col)
	lanes := make([]byte, n*4)
	for i := 0; i < n; i++ {
		v := vals[t0+i]
		hit := false
		switch kind {
		case isa.CmpGE:
			hit = v >= imm
		case isa.CmpLE:
			hit = v <= imm
		case isa.CmpLT:
			hit = v < imm
		case isa.CmpGT:
			hit = v > imm
		case isa.CmpEQ:
			hit = v == imm
		case isa.CmpNE:
			hit = v != imm
		}
		if hit {
			isa.SetLane(lanes, i, -1)
		}
	}
	out := make([]byte, isa.MaskBytes(uint32(n*4)))
	isa.CompactMask(out, lanes, n*4)
	return out
}

func (w *Workload) columnValues(col int) []int32 {
	return columnSlice(w.Table, col)
}

// q1hmcTuple generates the HMC-baseline tuple-at-a-time Q01
// aggregation: per chunk of tuple data, one load-compare instruction
// evaluates the shipdate filter pattern inside the vault; the bitmask
// round-trips to the processor, which branches per tuple, reloads
// matching tuples through the cache hierarchy, branches again on the
// group key, and accumulates the group's running sums in registers.
func (w *Workload) q1hmcTuple() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	tuplesPerChunk := S / db.TupleBytes
	stride := S
	if tuplesPerChunk == 0 {
		tuplesPerChunk = 1
		stride = db.TupleBytes
	}
	chunks := w.Table.N / tuplesPerChunk
	groups := (chunks + p.Unroll - 1) / p.Unroll
	lanePattern := w.patternLanesLE()

	vr := &vregs{}
	acc := &cpuAcc{vr: vr}
	group := 0
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		e := newEmitter(0x9000)
		first, last := blockBounds(group, p.Unroll, chunks)
		for c := first; c < last; c++ {
			firstTuple := c * tuplesPerChunk
			addr := w.NSM.Base + mem.Addr(c*stride)
			_, wantLE := w.expectPatternMasks(firstTuple, S)

			m := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.Offload, Dst: m, Offload: &isa.OffloadInst{
				Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpLE,
				Addr: addr, Size: p.OpSize, Pattern: lanePattern,
				OnResult: func(r []byte) { w.check(r, wantLE) },
			}})
			for t := 0; t < tuplesPerChunk; t++ {
				i := firstTuple + t
				tv := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: m})
				match := w.tupleMatch(i)
				e.emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: match})
				if !match {
					continue
				}
				// Cache-path reload of the matching tuple, then the
				// shared group-dispatch-and-accumulate block.
				tup := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Load, Dst: tup,
					Addr: w.NSM.TupleAddr(i), Size: db.TupleBytes})
				w.emitTupleAccumulate(e.emit, acc, i, tup)
			}
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// q1hmcColumn generates the HMC-baseline column-at-a-time Q01
// aggregation: per chunk, load-compare instructions evaluate the
// shipdate filter and every group-key value in the vaults, each bitmask
// round-trips to the processor, and the processor reloads the measure
// columns through the cache hierarchy to fold masked lanes into its
// register accumulators — branchless, but every group-membership
// decision crosses the SerDes links twice.
func (w *Workload) q1hmcColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	groups := (chunks + p.Unroll - 1) / p.Unroll
	st := w.Desc.Stages[0]

	vr := &vregs{}
	acc := &cpuAcc{vr: vr}
	group := 0
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		e := newEmitter(0x9800)
		first, last := blockBounds(group, p.Unroll, chunks)
		for c := first; c < last; c++ {
			t0 := c * tuplesPerChunk
			cmpRead := func(col int, kind isa.ALUKind, imm int32) isa.Reg {
				want := w.expectColCmp(col, kind, imm, t0, tuplesPerChunk)
				r := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Offload, Dst: r, Offload: &isa.OffloadInst{
					Target: isa.TargetHMC, Op: isa.CmpRead, ALU: kind,
					Addr: w.DSM.ColBase[col] + mem.Addr(c*S), Size: p.OpSize, Imm: imm,
					OnResult: func(r []byte) { w.check(r, want) },
				}})
				return r
			}
			// Filter bitmask in the vault.
			m := isa.RegNone
			for _, b := range st.Bounds {
				r := cmpRead(st.Col, b.Kind, b.Imm)
				if m == isa.RegNone {
					m = r
				} else {
					nm := vr.fresh()
					e.emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: r})
					m = nm
				}
			}
			// Key bitmasks in the vault, one compare per distinct value.
			rfMask := make([]isa.Reg, db.RFValues)
			for v := range rfMask {
				rfMask[v] = cmpRead(db.FieldReturnFlag, isa.CmpEQ, int32(v))
			}
			lsMask := make([]isa.Reg, db.LSValues)
			for v := range lsMask {
				lsMask[v] = cmpRead(db.FieldLineStatus, isa.CmpEQ, int32(v))
			}
			// Measure columns reload through the cache hierarchy, in
			// line-sized pieces.
			load := func(col int) isa.Reg {
				base := w.DSM.ColBase[col] + mem.Addr(c*S)
				var d isa.Reg
				for off := 0; off < S; off += 64 {
					piece := S - off
					if piece > 64 {
						piece = 64
					}
					d = vr.fresh()
					e.emit(isa.MicroOp{Class: isa.Load, Dst: d,
						Addr: base + mem.Addr(off), Size: uint32(piece)})
				}
				return d
			}
			qty := load(db.FieldQuantity)
			price := load(db.FieldExtendedPrice)
			disc := load(db.FieldDiscount)
			rev := vr.fresh()
			e.emit(isa.MicroOp{Class: isa.IntMul, Dst: rev, Src1: price, Src2: disc})
			for g := 0; g < w.Desc.Groups; g++ {
				rf, ls := groupKey(g)
				km := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: km, Src1: rfMask[rf], Src2: lsMask[ls]})
				gm := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: gm, Src1: km, Src2: m})
				masked := func(src isa.Reg) isa.Reg {
					t := vr.fresh()
					e.emit(isa.MicroOp{Class: isa.IntALU, Dst: t, Src1: src, Src2: gm})
					return t
				}
				acc.add(e.emit, isa.IntALU, g, AggCount, gm)
				acc.add(e.emit, isa.IntALU, g, AggQty, masked(qty))
				acc.add(e.emit, isa.IntALU, g, AggPrice, masked(price))
				acc.add(e.emit, isa.IntALU, g, AggRevenue, masked(rev))
			}
		}
		e.loopTail(vr, group != groups-1)
		group++
		return e.ops
	}}
}

// hmcColumn generates the HMC-baseline column-at-a-time scan: per column
// chunk, lane-uniform load-compare instructions run in the vaults, the
// processor combines the returned masks with the running bitmask (read
// and written with cache assistance) — branchless except loop control.
func (w *Workload) hmcColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	groups := (chunks + p.Unroll - 1) / p.Unroll

	stages := w.Desc.Stages
	vr := &vregs{}
	stage := 0
	group := 0
	return &chunkedStream{next: func() []isa.MicroOp {
		if stage >= len(stages) {
			return nil
		}
		st := stages[stage]
		col := st.Col
		e := newEmitter(uint64(0x4000 + 0x400*stage))
		first, last := blockBounds(group, p.Unroll, chunks)
		for c := first; c < last; c++ {
			t0 := c * tuplesPerChunk
			dataAddr := w.DSM.ColBase[col] + mem.Addr(c*S)
			var results []isa.Reg
			// One load-compare per stage bound, straight from the
			// description.
			for _, cm := range st.Bounds {
				cm := cm
				want := w.expectColCmp(col, cm.Kind, cm.Imm, t0, tuplesPerChunk)
				r := vr.fresh()
				results = append(results, r)
				e.emit(isa.MicroOp{Class: isa.Offload, Dst: r, Offload: &isa.OffloadInst{
					Target: isa.TargetHMC, Op: isa.CmpRead, ALU: cm.Kind,
					Addr: dataAddr, Size: p.OpSize, Imm: cm.Imm,
					OnResult: func(r []byte) { w.check(r, want) },
				}})
			}
			m := results[0]
			for _, r := range results[1:] {
				nm := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: r})
				m = nm
			}
			if stage > 0 {
				prev := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Load, Dst: prev,
					Addr: w.MaskBase[stages[stage-1].Col] + mem.Addr(c)*mem.Addr(maskBytes),
					Size: maskBytes})
				nm := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: prev})
				m = nm
			}
			e.emit(isa.MicroOp{Class: isa.Store, Src1: m,
				Addr: w.MaskBase[col] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
		}
		e.loopTail(vr, group != groups-1)
		group++
		if group >= groups {
			group = 0
			stage++
		}
		return e.ops
	}}
}
