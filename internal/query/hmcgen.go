package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// hmcTuple generates the HMC-baseline tuple-at-a-time scan: per chunk of
// OpSize bytes of tuple data, two load-compare instructions (GE and LE
// lane patterns) execute inside the vault; the processor ANDs the
// returned bitmasks, branches per tuple, and materialises matches with
// cache-assisted stores.
func (w *Workload) hmcTuple() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	// A chunk covers whole tuples for S >= 64, or the predicate-bearing
	// prefix of a single tuple for smaller sizes.
	tuplesPerChunk := S / db.TupleBytes
	stride := S
	if tuplesPerChunk == 0 {
		tuplesPerChunk = 1
		stride = db.TupleBytes
	}
	chunks := w.Table.N / tuplesPerChunk
	groups := (chunks + p.Unroll - 1) / p.Unroll
	lanePattern := w.patternLanes()

	vr := &vregs{}
	group := 0
	matched := 0
	return &chunkedStream{next: func() []isa.MicroOp {
		if group >= groups {
			return nil
		}
		var ops []isa.MicroOp
		pc := uint64(0x3000)
		emit := func(u isa.MicroOp) {
			u.PC = pc
			pc += 4
			ops = append(ops, u)
		}
		for u := 0; u < p.Unroll; u++ {
			c := group*p.Unroll + u
			if c >= chunks {
				break
			}
			firstTuple := c * tuplesPerChunk
			addr := w.NSM.Base + mem.Addr(c*stride)
			wantGE, wantLE := w.expectPatternMasks(firstTuple, S)

			g, l := vr.fresh(), vr.fresh()
			emit(isa.MicroOp{Class: isa.Offload, Dst: g, Offload: &isa.OffloadInst{
				Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpGE,
				Addr: addr, Size: p.OpSize, Pattern: lanePattern,
				OnResult: func(r []byte) { w.check(r, wantGE) },
			}})
			emit(isa.MicroOp{Class: isa.Offload, Dst: l, Offload: &isa.OffloadInst{
				Target: isa.TargetHMC, Op: isa.CmpRead, ALU: isa.CmpLE,
				Addr: addr, Size: p.OpSize, Pattern: w.patternLanesLE(),
				OnResult: func(r []byte) { w.check(r, wantLE) },
			}})
			m := vr.fresh()
			emit(isa.MicroOp{Class: isa.IntALU, Dst: m, Src1: g, Src2: l})
			for t := 0; t < tuplesPerChunk; t++ {
				i := firstTuple + t
				tv := vr.fresh()
				emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: m})
				match := w.tupleMatch(i)
				emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: match})
				if match {
					emit(isa.MicroOp{Class: isa.Store,
						Addr: w.Materialize + mem.Addr(matched*db.TupleBytes),
						Size: db.TupleBytes})
					matched++
				}
			}
			// Store the chunk's bitmask with cache assistance.
			emit(isa.MicroOp{Class: isa.Store, Src1: m,
				Addr: w.FinalMask + mem.Addr(c)*mem.Addr(isa.MaskBytes(p.OpSize)),
				Size: isa.MaskBytes(p.OpSize)})
		}
		emit(isa.MicroOp{Class: isa.IntALU, Dst: vr.fresh()})
		emit(isa.MicroOp{Class: isa.Branch, Taken: group != groups-1})
		group++
		return ops
	}}
}

// patternLanes returns the GE pattern truncated/tiled to the instruction
// immediate (at most one tuple of 16 lanes, fewer for sub-tuple ops).
func (w *Workload) patternLanes() []int32 {
	n := int(w.Plan.OpSize) / 4
	if n > db.NumFields {
		n = db.NumFields
	}
	return w.patGE[:n]
}

func (w *Workload) patternLanesLE() []int32 {
	n := int(w.Plan.OpSize) / 4
	if n > db.NumFields {
		n = db.NumFields
	}
	return w.patLE[:n]
}

// expectColCmp computes the packed bitmask a lane-uniform CmpRead over
// column values [t0, t0+n) must return.
func (w *Workload) expectColCmp(col int, kind isa.ALUKind, imm int32, t0, n int) []byte {
	vals := w.columnValues(col)
	lanes := make([]byte, n*4)
	for i := 0; i < n; i++ {
		v := vals[t0+i]
		hit := false
		switch kind {
		case isa.CmpGE:
			hit = v >= imm
		case isa.CmpLE:
			hit = v <= imm
		case isa.CmpLT:
			hit = v < imm
		case isa.CmpGT:
			hit = v > imm
		case isa.CmpEQ:
			hit = v == imm
		case isa.CmpNE:
			hit = v != imm
		}
		if hit {
			isa.SetLane(lanes, i, -1)
		}
	}
	out := make([]byte, isa.MaskBytes(uint32(n*4)))
	isa.CompactMask(out, lanes, n*4)
	return out
}

func (w *Workload) columnValues(col int) []int32 {
	switch col {
	case db.FieldShipDate:
		return w.Table.ShipDate
	case db.FieldDiscount:
		return w.Table.Discount
	case db.FieldQuantity:
		return w.Table.Quantity
	default:
		return w.Table.ExtendedPrice
	}
}

// hmcColumn generates the HMC-baseline column-at-a-time scan: per column
// chunk, lane-uniform load-compare instructions run in the vaults, the
// processor combines the returned masks with the running bitmask (read
// and written with cache assistance) — branchless except loop control.
func (w *Workload) hmcColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	groups := (chunks + p.Unroll - 1) / p.Unroll
	q := p.Q

	vr := &vregs{}
	stage := 0
	group := 0
	return &chunkedStream{next: func() []isa.MicroOp {
		if stage >= len(predCols) {
			return nil
		}
		col := predCols[stage]
		var ops []isa.MicroOp
		pc := uint64(0x4000 + 0x400*stage)
		emit := func(u isa.MicroOp) {
			u.PC = pc
			pc += 4
			ops = append(ops, u)
		}
		// Per-stage compare set: kinds and immediates.
		type cmp struct {
			kind isa.ALUKind
			imm  int32
		}
		var cmps []cmp
		switch stage {
		case 0:
			cmps = []cmp{{isa.CmpGE, q.ShipLo}, {isa.CmpLT, q.ShipHi}}
		case 1:
			cmps = []cmp{{isa.CmpGE, q.DiscLo}, {isa.CmpLE, q.DiscHi}}
		case 2:
			cmps = []cmp{{isa.CmpLT, q.QtyHi}}
		}
		for u := 0; u < p.Unroll; u++ {
			c := group*p.Unroll + u
			if c >= chunks {
				break
			}
			t0 := c * tuplesPerChunk
			dataAddr := w.DSM.ColBase[col] + mem.Addr(c*S)
			var results []isa.Reg
			for _, cm := range cmps {
				cm := cm
				want := w.expectColCmp(col, cm.kind, cm.imm, t0, tuplesPerChunk)
				r := vr.fresh()
				results = append(results, r)
				emit(isa.MicroOp{Class: isa.Offload, Dst: r, Offload: &isa.OffloadInst{
					Target: isa.TargetHMC, Op: isa.CmpRead, ALU: cm.kind,
					Addr: dataAddr, Size: p.OpSize, Imm: cm.imm,
					OnResult: func(r []byte) { w.check(r, want) },
				}})
			}
			m := results[0]
			for _, r := range results[1:] {
				nm := vr.fresh()
				emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: r})
				m = nm
			}
			if stage > 0 {
				prev := vr.fresh()
				emit(isa.MicroOp{Class: isa.Load, Dst: prev,
					Addr: w.MaskBase[predCols[stage-1]] + mem.Addr(c)*mem.Addr(maskBytes),
					Size: maskBytes})
				nm := vr.fresh()
				emit(isa.MicroOp{Class: isa.IntALU, Dst: nm, Src1: m, Src2: prev})
				m = nm
			}
			emit(isa.MicroOp{Class: isa.Store, Src1: m,
				Addr: w.MaskBase[col] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
		}
		emit(isa.MicroOp{Class: isa.IntALU, Dst: vr.fresh()})
		emit(isa.MicroOp{Class: isa.Branch, Taken: group != groups-1})
		group++
		if group >= groups {
			group = 0
			stage++
		}
		return ops
	}}
}
