package query

import (
	"reflect"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"x86", "hmc", "hive", "hipe"}
	if got := BackendNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("BackendNames() = %v, want %v", got, want)
	}
	for _, b := range Backends() {
		a, ok := ParseArch(b.Name())
		if !ok || a != b.Arch() {
			t.Errorf("ParseArch(%q) = %v, %t; want %v", b.Name(), a, ok, b.Arch())
		}
	}
	if a, ok := ParseArch("auto"); !ok || a != ArchAuto {
		t.Errorf("ParseArch(auto) = %v, %t", a, ok)
	}
	if _, ok := ParseArch("riscv"); ok {
		t.Error("ParseArch accepted an unregistered name")
	}
	if ArchAuto.String() != "auto" {
		t.Errorf("ArchAuto.String() = %q", ArchAuto)
	}
}

// TestCapsMatchValidate pins the capability reports to the validation
// rules: a plan inside a backend's reported envelope must validate, and
// a plan outside it must not.
func TestCapsMatchValidate(t *testing.T) {
	for _, b := range Backends() {
		caps := b.Caps()
		for _, strat := range []Strategy{TupleAtATime, ColumnAtATime} {
			for _, op := range []uint32{16, 32, 64, 128, 256} {
				for _, unroll := range []int{1, 8, 32} {
					for _, fused := range []bool{false, true} {
						for _, agg := range []bool{false, true} {
							p := Plan{Arch: b.Arch(), Strategy: strat, OpSize: op,
								Unroll: unroll, Fused: fused, Aggregate: agg, Q: db.DefaultQ06()}
							inCaps := caps.Supports(strat) &&
								op <= caps.MaxOpSize && unroll <= caps.MaxUnroll &&
								(!fused || (caps.Fused && strat == ColumnAtATime)) &&
								(!agg || caps.Aggregate)
							err := p.Validate()
							if inCaps && err != nil {
								t.Errorf("%s: inside %s caps but Validate: %v", p, b.Name(), err)
							}
							if !inCaps && err == nil {
								t.Errorf("%s: outside %s caps but validates", p, b.Name())
							}
						}
					}
				}
			}
		}
	}
}

func TestAutoCandidates(t *testing.T) {
	auto := Plan{Arch: ArchAuto, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	archsOf := func(plans []Plan) []Arch {
		out := make([]Arch, len(plans))
		for i, p := range plans {
			out[i] = p.Arch
		}
		return out
	}
	// 256 B column: every cube backend, x86 excluded by its 64 B cap.
	if got := archsOf(auto.Candidates(4096)); !reflect.DeepEqual(got, []Arch{HMC, HIVE, HIPE}) {
		t.Errorf("256B column candidates = %v", got)
	}
	// 64 B / unroll 8: all four backends qualify.
	small := auto
	small.OpSize, small.Unroll = 64, 8
	if got := archsOf(small.Candidates(4096)); !reflect.DeepEqual(got, []Arch{X86, HMC, HIVE, HIPE}) {
		t.Errorf("64B column candidates = %v", got)
	}
	// Tuple-at-a-time excludes HIPE (column-only backend).
	tup := auto
	tup.Strategy = TupleAtATime
	if got := archsOf(tup.Candidates(4096)); !reflect.DeepEqual(got, []Arch{HMC, HIVE}) {
		t.Errorf("256B tuple candidates = %v", got)
	}
	if err := auto.ValidateFor(4096); err != nil {
		t.Errorf("auto plan with candidates failed ValidateFor: %v", err)
	}
	// An auto plan no backend admits must not validate.
	bad := auto
	bad.Strategy = TupleAtATime
	bad.Aggregate = true
	if err := bad.Validate(); err == nil {
		t.Error("auto plan outside every envelope validated")
	}
}

func TestPrepareRejectsAuto(t *testing.T) {
	p := Plan{Arch: ArchAuto, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	if _, err := Prepare(nil, nil, p); err == nil {
		t.Fatal("Prepare accepted an unresolved auto plan")
	}
}
