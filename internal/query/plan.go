// Package query implements the benchmark workloads. Every plan
// compiles from a small declarative query description (desc.go) — an
// ordered predicate pipeline plus, for aggregations, group-by keys and
// an aggregate list. Two workload families ship: the paper's TPC-H
// Query 06 selection scan (Q6Select) and the TPC-H Query 01-style
// grouped aggregation (Q1Agg). Both compile four ways —
//
//   - x86: AVX-512 µops through the cache hierarchy;
//   - HMC: extended HMC 2.1 load-compare instructions, control flow and
//     bitmask assembly on the processor;
//   - HIVE: lock/unlock register-bank programs in the logic layer,
//     control flow (bitmask fetch + skip decisions) on the processor;
//   - HIPE: one predicated register-bank program per chunk group —
//     control flow converted to data flow inside the memory.
//
// Each generator produces a lazy µop stream for the core model plus the
// functional bookkeeping needed to verify the simulated result against
// the db package's reference evaluators (final bitmasks for selections,
// per-group accumulator lane sums for aggregations).
package query

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
)

// Arch selects the execution model.
type Arch uint8

// Architectures evaluated in the paper.
const (
	X86 Arch = iota
	HMC
	HIVE
	HIPE
)

var archNames = [...]string{"x86", "hmc", "hive", "hipe"}

// String implements fmt.Stringer.
func (a Arch) String() string {
	if a == ArchAuto {
		return "auto"
	}
	if int(a) < len(archNames) {
		return archNames[a]
	}
	return fmt.Sprintf("arch(%d)", uint8(a))
}

// Strategy selects the scan strategy / storage layout pair.
type Strategy uint8

// Scan strategies (each implies its layout, as in the paper).
const (
	// TupleAtATime scans the NSM (row-store) layout tuple by tuple,
	// materialising matching tuples.
	TupleAtATime Strategy = iota
	// ColumnAtATime scans the DSM (column-store) layout column by
	// column, maintaining an intermediate bitmask.
	ColumnAtATime
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == TupleAtATime {
		return "tuple-at-a-time"
	}
	return "column-at-a-time"
}

// Plan is one experiment configuration.
type Plan struct {
	Arch     Arch
	Strategy Strategy
	// OpSize is the memory operation width in bytes: 16..256 for the
	// cube architectures, 16..64 for x86 (AVX-512 limit).
	OpSize uint32
	// Unroll is the loop unrolling depth: 1..32 (x86 compilers stop at 8
	// per the paper).
	Unroll int
	// Fused selects HIVE's best-case column plan: one pass that loads
	// and compares all three predicate columns per chunk and combines
	// the masks in the register bank — the "full scan in columns" of the
	// paper's Figure 3d, with no per-column bitmask round trips to the
	// processor. Only meaningful for Arch == HIVE, ColumnAtATime.
	Fused bool
	// Aggregate extends the HIPE scan with the full Query 06 aggregation
	// — sum(l_extendedprice * l_discount) over matches — computed by the
	// engine's Mul/Add lanes under predication, so the whole query
	// executes in memory (an extension beyond the paper's select-scan
	// evaluation). Only valid for Arch == HIPE, Kind == Q6Select.
	Aggregate bool
	// Kind selects the workload family: Q6Select (zero value, the
	// paper's selection scan over Q) or Q1Agg (the grouped aggregation
	// over Q1). JSON-omitted at the default so Q06 exports are
	// unchanged by the field's existence.
	Kind QueryKind `json:",omitempty"`
	// Q is the Query 06 predicate (Kind == Q6Select).
	Q db.Q06
	// Q1 is the Query 01 predicate (Kind == Q1Agg).
	Q1 db.Q01 `json:",omitzero"`
}

var validOpSizes = map[uint32]bool{16: true, 32: true, 64: true, 128: true, 256: true}

// Auto reports whether the plan awaits backend resolution by the
// adaptive planner.
func (p Plan) Auto() bool { return p.Arch == ArchAuto }

// Validate rejects configurations outside the paper's evaluated space.
// Per-backend constraints come from the registry's capability reports;
// an auto plan validates when at least one registered backend could
// resolve it.
func (p Plan) Validate() error {
	if !validOpSizes[p.OpSize] {
		return fmt.Errorf("query: op size %d not in {16,32,64,128,256}", p.OpSize)
	}
	if p.Unroll < 1 || p.Unroll > 32 {
		return fmt.Errorf("query: unroll %d outside 1..32", p.Unroll)
	}
	if p.Kind != Q6Select && p.Kind != Q1Agg {
		return fmt.Errorf("query: unknown query kind %d", p.Kind)
	}
	if p.Kind == Q1Agg {
		if p.Fused {
			return fmt.Errorf("query: the fused variant is a Q06 plan; Q01 aggregation is already one pass")
		}
		if p.Aggregate {
			return fmt.Errorf("query: Aggregate is the Q06 revenue extension; Q01 plans always aggregate")
		}
	}
	if p.Auto() {
		for _, b := range Backends() {
			q := p
			q.Arch = b.Arch()
			if q.Validate() == nil {
				return nil
			}
		}
		return fmt.Errorf("query: auto plan %s fits no registered backend's envelope", p)
	}
	be, ok := BackendFor(p.Arch)
	if !ok {
		return fmt.Errorf("query: unknown architecture %d", p.Arch)
	}
	caps := be.Caps()
	if p.Fused && !(caps.Fused && p.Strategy == ColumnAtATime) {
		return fmt.Errorf("query: fused plans only exist for HIVE column-at-a-time")
	}
	if p.Aggregate && !caps.Aggregate {
		return fmt.Errorf("query: in-memory aggregation is the HIPE extension plan")
	}
	if !caps.Supports(p.Strategy) {
		other := TupleAtATime
		if p.Strategy == TupleAtATime {
			other = ColumnAtATime
		}
		return fmt.Errorf("query: the %s backend defines no %s plan (%s only)",
			be.Name(), p.Strategy, other)
	}
	if p.OpSize > caps.MaxOpSize {
		return fmt.Errorf("query: %s op size %d exceeds the backend's %d B envelope", be.Name(), p.OpSize, caps.MaxOpSize)
	}
	if p.Unroll > caps.MaxUnroll {
		return fmt.Errorf("query: %s unroll %d exceeds the backend's %d", be.Name(), p.Unroll, caps.MaxUnroll)
	}
	return nil
}

// String renders a plan identifier like "hive/column-at-a-time/256B/32x"
// (Q01 aggregation plans carry a "/q1" suffix).
func (p Plan) String() string {
	suffix := ""
	if p.Fused {
		suffix = "/fused"
	}
	if p.Kind == Q1Agg {
		suffix += "/q1"
	}
	return fmt.Sprintf("%s/%s/%dB/%dx%s", p.Arch, p.Strategy, p.OpSize, p.Unroll, suffix)
}

// chunkedStream materialises µops group by group, so multi-million-µop
// programs never exist in memory at once.
type chunkedStream struct {
	next func() []isa.MicroOp
	buf  []isa.MicroOp
	done bool
}

// Next implements cpu.Stream.
func (s *chunkedStream) Next() (isa.MicroOp, bool) {
	for len(s.buf) == 0 {
		if s.done {
			return isa.MicroOp{}, false
		}
		s.buf = s.next()
		if s.buf == nil {
			s.done = true
			return isa.MicroOp{}, false
		}
	}
	op := s.buf[0]
	s.buf = s.buf[1:]
	return op, true
}

// vregs hands out fresh virtual CPU registers.
type vregs struct{ next isa.Reg }

func (v *vregs) fresh() isa.Reg {
	v.next++
	return v.next
}

// bitRange reports whether any of mask's bits [lo, hi) is set.
func bitRange(mask []byte, lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if i/8 < len(mask) && mask[i/8]&(1<<(i%8)) != 0 {
			return true
		}
	}
	return false
}

// packBits extracts bits [lo, hi) of mask into a fresh little-endian
// packed slice.
func packBits(mask []byte, lo, hi int) []byte {
	out := make([]byte, (hi-lo+7)/8)
	for i := lo; i < hi; i++ {
		if i/8 < len(mask) && mask[i/8]&(1<<(i%8)) != 0 {
			j := i - lo
			out[j/8] |= 1 << (j % 8)
		}
	}
	return out
}
