// Shared µop-stream plumbing for the registered backends: the PC-tracking
// emitter every generator writes through, the per-block loop epilogue,
// the in-order offload chain, and the accumulator clear/spill/verify
// epilogues of the engine aggregation plans. Before the registry layer
// existed each generator carried its own copy of this code; the golden
// stream tests pin that the shared helpers emit byte-identical µops.
package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// emitter accumulates one chunked-stream block: µops append with
// auto-incrementing PCs, 4 bytes apart — the instruction spacing all
// generators share.
type emitter struct {
	pc  uint64
	ops []isa.MicroOp
}

func newEmitter(pc uint64) *emitter { return &emitter{pc: pc} }

// emit appends one µop at the current PC.
func (e *emitter) emit(u isa.MicroOp) {
	u.PC = e.pc
	e.pc += 4
	e.ops = append(e.ops, u)
}

// loopTail emits the per-block loop overhead every processor-driven
// generator repeats: the induction-variable update and the backward
// branch, taken while more blocks follow.
func (e *emitter) loopTail(vr *vregs, more bool) {
	e.emit(isa.MicroOp{Class: isa.IntALU, Dst: vr.fresh()})
	e.emit(isa.MicroOp{Class: isa.Branch, Taken: more})
}

// blockBounds returns the half-open [first, last) item range of block b
// when items are processed per at a time out of total.
func blockBounds(b, per, total int) (first, last int) {
	first = b * per
	last = first + per
	if last > total {
		last = total
	}
	return first, last
}

// offloadChain forces the processor to issue an engine's instructions in
// program order: each offload µop depends on its predecessor, modelling
// the in-order instruction stream a real host controller maintains.
type offloadChain struct {
	vr    *vregs
	chain isa.Reg
}

func (oc *offloadChain) emit(e *emitter, inst *isa.OffloadInst) isa.Reg {
	dst := oc.vr.fresh()
	e.emit(isa.MicroOp{Class: isa.Offload, Dst: dst, Src1: oc.chain, Offload: inst})
	oc.chain = dst
	return dst
}

// emitUnlock emits the block-ending unlock WITHOUT advancing the chain:
// the next block streams toward the engine while this block drains (the
// engine's in-order queue still serialises execution), and only the
// processor-side consumers of the block's results (bitmask fetches) wait
// on the returned ack register. Issue order of the unlock versus the
// next block's first instruction is preserved because both depend on the
// same predecessor and the core's ready queue and single load port keep
// FIFO order.
func (oc *offloadChain) emitUnlock(e *emitter, target isa.Target) isa.Reg {
	pre := oc.chain
	ack := oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.Unlock})
	oc.chain = pre
	return ack
}

// laneSum folds a spilled 256 B accumulator register's 64 lanes into
// the scalar the reference evaluator reports — the verify side of the
// accumulator-spill epilogue, shared by the Q06 revenue extension and
// every (group, aggregate) check of the Q01 plans.
func laneSum(image []byte, base mem.Addr) int64 {
	acc := image[uint64(base) : uint64(base)+isa.RegisterBytes]
	var sum int64
	for i := 0; i < isa.LanesPerReg; i++ {
		sum += int64(isa.LaneAt(acc, i))
	}
	return sum
}

// Q01 register-bank allocation shared by the engine aggregation plans.
// Every (group, aggregate) pair keeps a live accumulator register, so
// the wave depth collapses to one chunk — the register-pressure cost of
// grouped aggregation, the same trade the paper discusses for
// predication (§III): more live state per chunk, less software
// pipelining.
const (
	q1RegFilter = 0 // filter mask (HIPE: compare result; HIVE: mask reload)
	q1RegRf     = 1 // returnflag chunk
	q1RegLs     = 2 // linestatus chunk
	q1RegQty    = 3 // quantity chunk
	q1RegPrice  = 4 // extendedprice chunk
	q1RegDisc   = 5 // discount chunk
	q1RegRev    = 6 // per-lane discounted revenue (price × discount)
	q1RegTmpA   = 7
	q1RegTmpB   = 8
	q1RegGroup  = 9  // current group-membership mask
	q1RegShip   = 10 // shipdate chunk (HIPE one-pass only)
	q1RegValid  = 11 // lane-validity mask (HIPE one-pass only)
	q1RegAcc    = 12 // accumulators: q1RegAcc + g*NumAggs + agg
)

// q1AccReg names the (group, aggregate) accumulator register.
func q1AccReg(g, agg int) uint8 { return uint8(q1RegAcc + g*NumAggs + agg) }

// q1Columns is the key/measure column load order of the engine plans.
var q1Columns = [...]struct {
	reg uint8
	col int
}{
	{q1RegRf, db.FieldReturnFlag},
	{q1RegLs, db.FieldLineStatus},
	{q1RegQty, db.FieldQuantity},
	{q1RegPrice, db.FieldExtendedPrice},
	{q1RegDisc, db.FieldDiscount},
}

// q1EmitGroups emits the per-group masked accumulation for one chunk:
// the two key compares AND the filter mask into the membership mask,
// COUNT accumulates by lane-subtracting the all-ones mask, and the
// three sums AND their measure vector with the mask before adding. On
// HIPE every mask-building and masking instruction is predicated — on
// the filter flag first, then on the group mask's own zero flag, so a
// group absent from a chunk squashes its accumulation inside the
// memory. The running Adds/Subs stay unpredicated: a squash zeroes its
// temp operand (zeroing-mask semantics), never the accumulator.
func (w *Workload) q1EmitGroups(e *emitter, oc *offloadChain, target isa.Target) {
	predicated := target == isa.TargetHIPE
	eng := func(inst isa.OffloadInst) *isa.OffloadInst {
		inst.Target = target
		return &inst
	}
	nzF := isa.Predicate{}
	if predicated {
		nzF = isa.Predicate{Valid: true, Reg: q1RegFilter, WhenZero: false}
	}
	for g := 0; g < w.Desc.Groups; g++ {
		rf, ls := groupKey(g)
		oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpEQ,
			Dst: q1RegTmpA, Src1: q1RegRf, UseImm: true, Imm: rf, Pred: nzF}))
		oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpEQ,
			Dst: q1RegTmpB, Src1: q1RegLs, UseImm: true, Imm: ls, Pred: nzF}))
		oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
			Dst: q1RegTmpA, Src1: q1RegTmpA, Src2: q1RegTmpB, Pred: nzF}))
		oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
			Dst: q1RegGroup, Src1: q1RegTmpA, Src2: q1RegFilter, Pred: nzF}))
		nzG := isa.Predicate{}
		if predicated {
			nzG = isa.Predicate{Valid: true, Reg: q1RegGroup, WhenZero: false}
		}
		// COUNT: the mask lanes are -1 per member, so subtracting the
		// mask adds one per member.
		oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.Sub,
			Dst: q1AccReg(g, AggCount), Src1: q1AccReg(g, AggCount), Src2: q1RegGroup}))
		for _, ma := range [...]struct {
			agg int
			src uint8
		}{
			{AggQty, q1RegQty}, {AggPrice, q1RegPrice}, {AggRevenue, q1RegRev},
		} {
			oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
				Dst: q1RegTmpB, Src1: ma.src, Src2: q1RegGroup, Pred: nzG}))
			oc.emit(e, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.Add,
				Dst: q1AccReg(g, ma.agg), Src1: q1AccReg(g, ma.agg), Src2: q1RegTmpB}))
		}
	}
}

// q1ClearAccs emits the accumulator initialisation: every (group,
// aggregate) register XORs with itself to zero. The filter pass (HIVE)
// reuses the high registers for chunk data, so the aggregation pass
// cannot assume a pristine bank.
func (w *Workload) q1ClearAccs(e *emitter, oc *offloadChain, target isa.Target) {
	for g := 0; g < w.Desc.Groups; g++ {
		for agg := 0; agg < NumAggs; agg++ {
			r := q1AccReg(g, agg)
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VALU,
				ALU: isa.Xor, Dst: r, Src1: r, Src2: r})
		}
	}
}

// q1SpillAccs emits the final accumulator spill: every (group,
// aggregate) register stores its per-lane partial sums to the AccRegion
// so the processor — and verification — can read them.
func (w *Workload) q1SpillAccs(e *emitter, oc *offloadChain, target isa.Target) {
	for g := 0; g < w.Desc.Groups; g++ {
		for agg := 0; agg < NumAggs; agg++ {
			oc.emit(e, &isa.OffloadInst{Target: target, Op: isa.VStore,
				Src1: q1AccReg(g, agg), Addr: w.accAddr(g, agg), Size: isa.RegisterBytes})
		}
	}
}
