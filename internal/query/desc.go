// The declarative query description layer: every plan compiles from a
// Desc — an ordered predicate pipeline plus, for aggregation queries,
// the group-by keys and aggregate list — instead of hard-wiring the
// TPC-H Query 06 shape into each generator. The Q06 descriptions
// compile to exactly the µop streams the hard-wired generators
// produced, so figure tables and sweep exports are unchanged; the Q01
// description is what opens the grouped-aggregation workload family.
package query

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
)

// QueryKind selects the workload family a plan executes.
type QueryKind uint8

const (
	// Q6Select is the paper's TPC-H Query 06 selection scan (default).
	Q6Select QueryKind = iota
	// Q1Agg is the TPC-H Query 01-style grouped aggregation: filter on
	// shipdate, group by (returnflag, linestatus), accumulate per-group
	// COUNT/SUM over quantity, extendedprice and discounted revenue.
	Q1Agg
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case Q6Select:
		return "q6"
	case Q1Agg:
		return "q1"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Bound is one compare of a column value against an immediate.
type Bound struct {
	Kind isa.ALUKind
	Imm  int32
}

// Stage is one predicate column's evaluation: the AND of its bounds.
// Column-at-a-time plans evaluate stages in order, refining a running
// bitmask; tuple-at-a-time plans fold every stage into one pattern
// compare over the whole tuple.
type Stage struct {
	Col    int
	Bounds []Bound
}

// Aggregates of the Q1 family, in accumulator order. Averages (the
// avg_qty/avg_price/avg_disc of Query 01) derive from the sums and
// counts at presentation time.
const (
	AggCount = iota
	AggQty
	AggPrice
	AggRevenue
	NumAggs
)

// aggNames index by Agg*.
var aggNames = [NumAggs]string{"count", "sum_qty", "sum_price", "sum_revenue"}

// AggName names an aggregate index (for exports and reports).
func AggName(a int) string { return aggNames[a] }

// Desc is the declarative description a plan compiles from.
type Desc struct {
	Kind   QueryKind
	Stages []Stage
	// GroupBy lists the group-key columns (empty for selection scans).
	GroupBy []int
	// Groups is the group cardinality of the GroupBy keys (0 for
	// selection scans). Aggregation plans keep one accumulator register
	// per (group, aggregate) pair.
	Groups int
}

// Grouped reports whether the description carries a group-by clause.
func (d Desc) Grouped() bool { return len(d.GroupBy) > 0 }

// Desc compiles the plan's predicate into its declarative description.
func (p Plan) Desc() Desc {
	switch p.Kind {
	case Q1Agg:
		return Desc{
			Kind: Q1Agg,
			Stages: []Stage{
				{Col: db.FieldShipDate, Bounds: []Bound{{isa.CmpLE, p.Q1.ShipCut}}},
			},
			GroupBy: []int{db.FieldReturnFlag, db.FieldLineStatus},
			Groups:  db.NumGroups,
		}
	default: // Q6Select
		q := p.Q
		return Desc{
			Kind: Q6Select,
			Stages: []Stage{
				{Col: db.FieldShipDate, Bounds: []Bound{{isa.CmpGE, q.ShipLo}, {isa.CmpLT, q.ShipHi}}},
				{Col: db.FieldDiscount, Bounds: []Bound{{isa.CmpGE, q.DiscLo}, {isa.CmpLE, q.DiscHi}}},
				{Col: db.FieldQuantity, Bounds: []Bound{{isa.CmpLT, q.QtyHi}}},
			},
		}
	}
}

// groupKey returns the key values of group g in GroupBy column order —
// the immediates a plan compares the key columns against to build the
// group-membership mask.
func groupKey(g int) (rf, ls int32) {
	return int32(g / db.LSValues), int32(g % db.LSValues)
}

// match1 evaluates one bound against a value.
func match1(b Bound, v int32) bool {
	switch b.Kind {
	case isa.CmpEQ:
		return v == b.Imm
	case isa.CmpNE:
		return v != b.Imm
	case isa.CmpLT:
		return v < b.Imm
	case isa.CmpLE:
		return v <= b.Imm
	case isa.CmpGT:
		return v > b.Imm
	case isa.CmpGE:
		return v >= b.Imm
	default:
		panic(fmt.Sprintf("query: bound with non-compare kind %s", b.Kind))
	}
}

// Match evaluates the stage (the AND of its bounds) against one value —
// the primitive the cost model's selectivity profiler shares with the
// reference mask builders.
func (st Stage) Match(v int32) bool { return stageMatch(st, v) }

// Column maps a field index to the table column backing it.
func Column(t *db.Table, col int) []int32 { return columnSlice(t, col) }

// stageMatch evaluates a stage (the AND of its bounds) against a value.
func stageMatch(st Stage, v int32) bool {
	for _, b := range st.Bounds {
		if !match1(b, v) {
			return false
		}
	}
	return true
}

// stageMask evaluates one stage over its whole column — the oracle for
// the per-column intermediate bitmasks of column-at-a-time plans.
func stageMask(t *db.Table, st Stage) []byte {
	vals := columnSlice(t, st.Col)
	mask := make([]byte, (t.N+7)/8)
	for i := 0; i < t.N; i++ {
		if stageMatch(st, vals[i]) {
			mask[i/8] |= 1 << (i % 8)
		}
	}
	return mask
}

// columnSlice maps a field index to the table column backing it.
func columnSlice(t *db.Table, col int) []int32 {
	switch col {
	case db.FieldShipDate:
		return t.ShipDate
	case db.FieldDiscount:
		return t.Discount
	case db.FieldQuantity:
		return t.Quantity
	case db.FieldExtendedPrice:
		return t.ExtendedPrice
	case db.FieldReturnFlag:
		return t.ReturnFlag
	case db.FieldLineStatus:
		return t.LineStatus
	default:
		panic(fmt.Sprintf("query: field %d has no column", col))
	}
}

// tuplePatternsDesc builds the per-lane GE and LE constants for one
// 16-field tuple from the description: predicate fields carry their
// bounds, every other lane always matches. This is what a
// tuple-at-a-time pattern compare (HMC CmpRead immediates, HIVE bound
// registers) evaluates in a single instruction.
func tuplePatternsDesc(d Desc) (ge, le []int32) {
	ge = make([]int32, db.NumFields)
	le = make([]int32, db.NumFields)
	for f := 0; f < db.NumFields; f++ {
		ge[f] = minInt32
		le[f] = maxInt32
	}
	for _, st := range d.Stages {
		for _, b := range st.Bounds {
			switch b.Kind {
			case isa.CmpGE:
				ge[st.Col] = b.Imm
			case isa.CmpGT:
				ge[st.Col] = b.Imm + 1
			case isa.CmpLE:
				le[st.Col] = b.Imm
			case isa.CmpLT:
				le[st.Col] = b.Imm - 1
			case isa.CmpEQ:
				ge[st.Col] = b.Imm
				le[st.Col] = b.Imm
			default:
				panic(fmt.Sprintf("query: pattern bound kind %s", b.Kind))
			}
		}
	}
	return ge, le
}

const (
	minInt32 = -1 << 31
	maxInt32 = 1<<31 - 1
)

// cpuAcc models processor-register accumulators for the baseline Q01
// plans: one renamed-register dependency chain per (group, aggregate),
// so the out-of-order core sees exactly the serial add chains a scalar
// aggregation loop carries — independent groups overlap, updates to one
// group's running sum serialise.
type cpuAcc struct {
	vr   *vregs
	regs [db.NumGroups][NumAggs]isa.Reg
}

// add emits one accumulate µop (class IntALU for add-into-sum, IntMul
// where the addend itself is a product) chained onto the (g, agg)
// accumulator, reading src.
func (a *cpuAcc) add(emit func(isa.MicroOp), class isa.OpClass, g, agg int, src isa.Reg) {
	dst := a.vr.fresh()
	emit(isa.MicroOp{Class: class, Dst: dst, Src1: a.regs[g][agg], Src2: src})
	a.regs[g][agg] = dst
}

// emitTupleAccumulate emits the processor-side scalar accumulation of
// one matching tuple, shared by every tuple-at-a-time Q01 plan: two
// data-dependent branches on the group key (the dispatch whose
// direction is in-memory data), the revenue multiply, and the four
// aggregate updates chained onto the group's register accumulators.
// tup is the register holding the tuple's data.
func (w *Workload) emitTupleAccumulate(emit func(isa.MicroOp), acc *cpuAcc, i int, tup isa.Reg) {
	g := w.tupleGroup(i)
	rf, ls := groupKey(g)
	gid := acc.vr.fresh()
	emit(isa.MicroOp{Class: isa.IntALU, Dst: gid, Src1: tup})
	emit(isa.MicroOp{Class: isa.Branch, Src1: gid, Taken: rf == db.ReturnFlagN})
	emit(isa.MicroOp{Class: isa.Branch, Src1: gid, Taken: ls == db.LineStatusO})
	rev := acc.vr.fresh()
	emit(isa.MicroOp{Class: isa.IntMul, Dst: rev, Src1: tup})
	acc.add(emit, isa.IntALU, g, AggCount, gid)
	acc.add(emit, isa.IntALU, g, AggQty, tup)
	acc.add(emit, isa.IntALU, g, AggPrice, tup)
	acc.add(emit, isa.IntALU, g, AggRevenue, rev)
}
