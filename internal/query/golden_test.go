package query

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/machine"
)

// The golden stream pins: every valid arch×strategy×opsize×unroll×
// {Q6,Q1}×{fused,aggregate} combination's full µop stream is serialised
// canonically and hashed, and the hashes are committed. Any refactor of
// the generators or the registry layer that changes a single byte of a
// single µop — opcode, register, address, size, predicate, offload
// payload — changes a hash and fails this test. Regenerate with
//
//	go test ./internal/query -run TestGoldenStreams -update-golden
//
// only when a stream change is intended and called out in the PR.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_streams.json from the current generators")

const goldenTuples = 256

// goldenPlans enumerates the pinned combination space: the full cross
// product of the evaluated axes, trimmed by ValidateFor exactly the way
// grid expansion trims it.
func goldenPlans() []Plan {
	var plans []Plan
	for _, kind := range []QueryKind{Q6Select, Q1Agg} {
		for _, arch := range []Arch{X86, HMC, HIVE, HIPE} {
			for _, strat := range []Strategy{TupleAtATime, ColumnAtATime} {
				for _, op := range []uint32{16, 32, 64, 128, 256} {
					for _, unroll := range []int{1, 8, 32} {
						for _, fused := range []bool{false, true} {
							for _, agg := range []bool{false, true} {
								p := Plan{Arch: arch, Strategy: strat, OpSize: op,
									Unroll: unroll, Fused: fused, Aggregate: agg, Kind: kind}
								if kind == Q1Agg {
									p.Q1 = db.DefaultQ01()
								} else {
									p.Q = db.DefaultQ06()
								}
								if p.ValidateFor(goldenTuples) != nil {
									continue
								}
								plans = append(plans, p)
							}
						}
					}
				}
			}
		}
	}
	return plans
}

// fmtMicroOp renders every field of a µop (and its offload payload, when
// present) into one canonical line. OnResult is a verification callback,
// not part of the instruction encoding, and is deliberately excluded.
func fmtMicroOp(b *strings.Builder, u isa.MicroOp) {
	fmt.Fprintf(b, "pc=%#x class=%s dst=%d src1=%d src2=%d addr=%#x size=%d taken=%t uc=%t",
		u.PC, u.Class, u.Dst, u.Src1, u.Src2, uint64(u.Addr), u.Size, u.Taken, u.Uncacheable)
	if in := u.Offload; in != nil {
		fmt.Fprintf(b, " off[target=%s op=%s alu=%s dst=%d src1=%d src2=%d addr=%#x size=%d imm=%d imm2=%d useimm=%t fp=%t pred=%t/%d/%t pat=%v]",
			in.Target, in.Op, in.ALU, in.Dst, in.Src1, in.Src2, uint64(in.Addr), in.Size,
			in.Imm, in.Imm2, in.UseImm, in.FP, in.Pred.Valid, in.Pred.Reg, in.Pred.WhenZero, in.Pattern)
	}
	b.WriteByte('\n')
}

// streamHash drains a plan's whole µop stream and hashes its canonical
// serialisation.
func streamHash(t *testing.T, p Plan) (hash string, ops int) {
	t.Helper()
	mc := machine.Default()
	mc.ImageBytes = db.ImageBytesFor(goldenTuples)
	m, err := machine.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.GenerateMemo(goldenTuples, 42)
	w, err := Prepare(m, tab, p)
	if err != nil {
		t.Fatalf("%s: %v", p, err)
	}
	h := sha256.New()
	var b strings.Builder
	s := w.Stream()
	for {
		u, ok := s.Next()
		if !ok {
			break
		}
		b.Reset()
		fmtMicroOp(&b, u)
		h.Write([]byte(b.String()))
		ops++
	}
	return hex.EncodeToString(h.Sum(nil)), ops
}

type goldenEntry struct {
	Hash string `json:"hash"`
	Ops  int    `json:"ops"`
}

func goldenPath() string { return filepath.Join("testdata", "golden_streams.json") }

// TestGoldenStreams asserts that every pinned plan combination still
// generates a byte-identical µop stream.
func TestGoldenStreams(t *testing.T) {
	plans := goldenPlans()
	got := make(map[string]goldenEntry, len(plans))
	for _, p := range plans {
		hash, ops := streamHash(t, p)
		got[p.String()] = goldenEntry{Hash: hash, Ops: ops}
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]goldenEntry, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d plans)", goldenPath(), len(got))
		return
	}

	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	want := map[string]goldenEntry{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file pins %d plans, generators produce %d", len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: pinned plan no longer generated", k)
			continue
		}
		if g != w {
			t.Errorf("%s: stream changed: got %d ops hash %s, want %d ops hash %s",
				k, g.Ops, g.Hash, w.Ops, w.Hash)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new plan combination not pinned (run -update-golden)", k)
		}
	}
}
