package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// hiveFusedColumn generates HIVE's best-case column scan (the paper's
// Figure 3d "full scan in columns"): one pass in which every chunk's
// three predicate columns are loaded unconditionally, compared, and
// AND-combined in the register bank, storing only the final bitmask. No
// intermediate bitmask ever reaches the processor and no branch depends
// on in-memory data — but, unlike HIPE, nothing is skipped either: all
// three columns are always read, which is where HIPE's DRAM energy
// saving comes from.
//
// The structure is deliberately identical to the HIPE plan with the
// predicates removed (same wave depth, same phases), so the measured
// HIPE-vs-HIVE gap isolates the cost of predication itself: the extra
// sequencer occupancy of every predicated instruction's flag read and
// the data dependencies on flag producers.
func (w *Workload) hiveFusedColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	q := p.Q
	blocks := (chunks + p.Unroll - 1) / p.Unroll

	const tmpA, tmpB = 30, 31
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	block := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if block >= blocks {
			return nil
		}
		e := newEmitter(0x6800)
		first, last := blockBounds(block, p.Unroll, chunks)
		hive := func(inst isa.OffloadInst) *isa.OffloadInst {
			inst.Target = isa.TargetHIVE
			return &inst
		}

		oc.emit(e, hive(isa.OffloadInst{Op: isa.Lock}))
		for ws := first; ws < last; ws += hipeWave {
			we := ws + hipeWave
			if we > last {
				we = last
			}
			regX := func(k int) uint8 { return uint8(k - ws) }
			regM := func(k int) uint8 { return uint8(hipeWave + k - ws) }
			// Phase A: hoisted shipdate loads.
			for k := ws; k < we; k++ {
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldShipDate] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase B+C: shipdate range into the chunk's mask register,
			// then immediately reuse the data register for the discount
			// load — the unpredicated plan is free to hoist it here.
			for k := ws; k < we; k++ {
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpGE,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.ShipLo}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLT,
					Dst: tmpB, Src1: regX(k), UseImm: true, Imm: q.ShipHi}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: tmpB}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldDiscount] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase D+E: discount range refined into the running mask,
			// quantity load hoisted behind it.
			for k := ws; k < we; k++ {
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpGE,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.DiscLo}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLE,
					Dst: tmpB, Src1: regX(k), UseImm: true, Imm: q.DiscHi}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: tmpA, Src1: tmpA, Src2: tmpB}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: regM(k)}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldQuantity] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase F: quantity compare, final AND, bitmask store.
			for k := ws; k < we; k++ {
				t0 := k * tuplesPerChunk
				want := packBits(w.prefix[2], t0, t0+tuplesPerChunk)
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLT,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.QtyHi}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: regM(k)}))
				oc.emit(e, hive(isa.OffloadInst{Op: isa.VMaskStore, Src1: regM(k),
					Addr: w.FinalMask + mem.Addr(k)*mem.Addr(maskBytes), Size: p.OpSize,
					OnResult: func(r []byte) { w.check(r, want) }}))
			}
		}
		oc.emitUnlock(e, isa.TargetHIVE)
		e.emit(isa.MicroOp{Class: isa.Branch, Taken: block != blocks-1})
		block++
		return e.ops
	}}
}

// q1hiveColumn generates HIVE's two-phase Q01 aggregation. Phase one is
// a filter pass: lock blocks compute each chunk's shipdate bitmask in
// the register bank and store it; the processor then fetches every
// bitmask back from DRAM and branches on whether the chunk holds any
// filtered tuple — the round trip HIPE eliminates. Phase two revisits
// the surviving chunks: the filter mask reloads into the bank, the key
// and measure columns load unconditionally, and every group's masked
// accumulation executes whether or not the group occurs in the chunk.
// A final block spills the 24 accumulator registers.
func (w *Workload) q1hiveColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	st := w.Desc.Stages[0]
	wave := p.Unroll
	if wave > hiveWave {
		wave = hiveWave
	}

	const tmpA, tmpB = 30, 31
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	phase := 0
	pos := 0
	spilled := false
	var selected []int

	return &chunkedStream{next: func() []isa.MicroOp {
		if phase == 0 && pos >= chunks {
			// Filter pass complete: select the chunks with matches, and
			// zero the accumulator registers the filter pass clobbered.
			phase, pos = 1, 0
			for c := 0; c < chunks; c++ {
				if bitRange(w.prefix[0], c*tuplesPerChunk, (c+1)*tuplesPerChunk) {
					selected = append(selected, c)
				}
			}
			e := newEmitter(0xB200)
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
			w.q1ClearAccs(e, oc, isa.TargetHIVE)
			oc.emitUnlock(e, isa.TargetHIVE)
			return e.ops
		}
		if phase == 1 && pos >= len(selected) {
			if spilled {
				return nil
			}
			// One final block spills the accumulators.
			spilled = true
			e := newEmitter(0xB800)
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
			w.q1SpillAccs(e, oc, isa.TargetHIVE)
			oc.emitUnlock(e, isa.TargetHIVE)
			return e.ops
		}
		if phase == 0 {
			// Filter pass: software-pipelined lock blocks, one register
			// per chunk, bitmasks stored for the processor's decision.
			e := newEmitter(0xB000)
			first, last := blockBounds(pos/wave, wave, chunks)
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
			for c := first; c < last; c++ {
				rD := uint8(c - first)
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad,
					Dst: rD, Addr: w.DSM.ColBase[st.Col] + mem.Addr(c*S), Size: p.OpSize})
			}
			for c := first; c < last; c++ {
				rD := uint8(c - first)
				t0 := c * tuplesPerChunk
				want := packBits(w.prefix[0], t0, t0+tuplesPerChunk)
				dst := [2]uint8{tmpA, tmpB}
				for i, b := range st.Bounds {
					oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
						ALU: b.Kind, Dst: dst[i], Src1: rD, UseImm: true, Imm: b.Imm})
				}
				if len(st.Bounds) == 2 {
					oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
						ALU: isa.And, Dst: tmpA, Src1: tmpA, Src2: tmpB})
				}
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VMaskStore,
					Src1: tmpA, Addr: w.MaskBase[st.Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize,
					OnResult: func(r []byte) { w.check(r, want) }})
			}
			unlockAck := oc.emitUnlock(e, isa.TargetHIVE)
			// Processor decision round trip: fetch each bitmask, branch
			// on whether the aggregation pass needs this chunk.
			for c := first; c < last; c++ {
				lm := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.Load, Dst: lm, Src1: unlockAck,
					Addr: w.MaskBase[st.Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
				tv := vr.fresh()
				e.emit(isa.MicroOp{Class: isa.IntALU, Dst: tv, Src1: lm})
				empty := !bitRange(w.prefix[0], c*tuplesPerChunk, (c+1)*tuplesPerChunk)
				e.emit(isa.MicroOp{Class: isa.Branch, Src1: tv, Taken: empty})
			}
			e.emit(isa.MicroOp{Class: isa.Branch, Taken: last != chunks})
			pos = last
			return e.ops
		}
		// Aggregation pass: one lock block per group of surviving
		// chunks, each chunk folded sequentially into the live
		// accumulators.
		e := newEmitter(0xB400)
		first := pos
		last := first + p.Unroll
		if last > len(selected) {
			last = len(selected)
		}
		oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
		for k := first; k < last; k++ {
			c := selected[k]
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VMaskLoad,
				Dst: q1RegFilter, Addr: w.MaskBase[st.Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize})
			for _, ld := range q1Columns {
				oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad,
					Dst: ld.reg, Addr: w.DSM.ColBase[ld.col] + mem.Addr(c*S), Size: p.OpSize})
			}
			oc.emit(e, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
				ALU: isa.Mul, Dst: q1RegRev, Src1: q1RegPrice, Src2: q1RegDisc})
			w.q1EmitGroups(e, oc, isa.TargetHIVE)
		}
		oc.emitUnlock(e, isa.TargetHIVE)
		e.emit(isa.MicroOp{Class: isa.Branch, Taken: last != len(selected)})
		pos = last
		return e.ops
	}}
}

// q1hipeColumn generates the HIPE predicated one-pass Q01 aggregation —
// the paper's predication argument applied to a grouped aggregate. Each
// chunk's shipdate filter computes into a mask register whose zero flag
// then gates, inside the memory, (a) the key and measure column loads —
// chunks wholly past the cutoff never touch DRAM — and (b) every
// group's masked accumulation, each predicated on its own membership
// mask's flag, so a group absent from a chunk costs squashed sequencer
// slots instead of functional-unit operations and flag waits. No
// bitmask ever travels to the processor and no branch depends on
// in-memory data.
func (w *Workload) q1hipeColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	st := w.Desc.Stages[0]
	blocks := (chunks + p.Unroll - 1) / p.Unroll

	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	setupDone := false
	block := 0
	nz := func(reg uint8) isa.Predicate {
		return isa.Predicate{Valid: true, Reg: reg, WhenZero: false}
	}
	hipe := func(inst isa.OffloadInst) *isa.OffloadInst {
		inst.Target = isa.TargetHIPE
		return &inst
	}

	return &chunkedStream{next: func() []isa.MicroOp {
		if !setupDone {
			setupDone = true
			// One-time block: load the lane-validity row (sub-register
			// chunks would otherwise leak tail-lane mask bits into the
			// accumulators) and zero the accumulator registers.
			e := newEmitter(0xC000)
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.Lock}))
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.VLoad,
				Dst: q1RegValid, Addr: w.ValidRow, Size: 256}))
			w.q1ClearAccs(e, oc, isa.TargetHIPE)
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.Unlock}))
			return e.ops
		}
		if block >= blocks {
			return nil
		}
		e := newEmitter(0xC100)
		first, last := blockBounds(block, p.Unroll, chunks)
		oc.emit(e, hipe(isa.OffloadInst{Op: isa.Lock}))
		for c := first; c < last; c++ {
			// Filter stage: unpredicated shipdate load and compare,
			// confined to the chunk's real lanes.
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.VLoad, Dst: q1RegShip,
				Addr: w.DSM.ColBase[st.Col] + mem.Addr(c*S), Size: p.OpSize}))
			dst := [2]uint8{q1RegTmpA, q1RegTmpB}
			for i, b := range st.Bounds {
				oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: b.Kind,
					Dst: dst[i], Src1: q1RegShip, UseImm: true, Imm: b.Imm}))
			}
			if len(st.Bounds) == 2 {
				oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: q1RegTmpA, Src1: q1RegTmpA, Src2: q1RegTmpB}))
			}
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
				Dst: q1RegFilter, Src1: q1RegTmpA, Src2: q1RegValid}))
			// Key and measure loads, predicated on the filter flag:
			// chunks wholly past the cutoff never touch DRAM.
			for _, ld := range q1Columns {
				oc.emit(e, hipe(isa.OffloadInst{Op: isa.VLoad, Dst: ld.reg,
					Addr: w.DSM.ColBase[ld.col] + mem.Addr(c*S), Size: p.OpSize,
					Pred: nz(q1RegFilter)}))
			}
			oc.emit(e, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.Mul,
				Dst: q1RegRev, Src1: q1RegPrice, Src2: q1RegDisc, Pred: nz(q1RegFilter)}))
			w.q1EmitGroups(e, oc, isa.TargetHIPE)
		}
		if block == blocks-1 {
			w.q1SpillAccs(e, oc, isa.TargetHIPE)
		}
		oc.emitUnlock(e, isa.TargetHIPE)
		e.emit(isa.MicroOp{Class: isa.Branch, Taken: block != blocks-1})
		block++
		return e.ops
	}}
}
