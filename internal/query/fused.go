package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// hiveFusedColumn generates HIVE's best-case column scan (the paper's
// Figure 3d "full scan in columns"): one pass in which every chunk's
// three predicate columns are loaded unconditionally, compared, and
// AND-combined in the register bank, storing only the final bitmask. No
// intermediate bitmask ever reaches the processor and no branch depends
// on in-memory data — but, unlike HIPE, nothing is skipped either: all
// three columns are always read, which is where HIPE's DRAM energy
// saving comes from.
//
// The structure is deliberately identical to the HIPE plan with the
// predicates removed (same wave depth, same phases), so the measured
// HIPE-vs-HIVE gap isolates the cost of predication itself: the extra
// sequencer occupancy of every predicated instruction's flag read and
// the data dependencies on flag producers.
func (w *Workload) hiveFusedColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	q := p.Q
	blocks := (chunks + p.Unroll - 1) / p.Unroll

	const tmpA, tmpB = 30, 31
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	block := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if block >= blocks {
			return nil
		}
		var ops []isa.MicroOp
		pc := uint64(0x6800)
		first := block * p.Unroll
		last := first + p.Unroll
		if last > chunks {
			last = chunks
		}
		hive := func(inst isa.OffloadInst) *isa.OffloadInst {
			inst.Target = isa.TargetHIVE
			return &inst
		}

		oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.Lock}))
		for ws := first; ws < last; ws += hipeWave {
			we := ws + hipeWave
			if we > last {
				we = last
			}
			regX := func(k int) uint8 { return uint8(k - ws) }
			regM := func(k int) uint8 { return uint8(hipeWave + k - ws) }
			// Phase A: hoisted shipdate loads.
			for k := ws; k < we; k++ {
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldShipDate] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase B+C: shipdate range into the chunk's mask register,
			// then immediately reuse the data register for the discount
			// load — the unpredicated plan is free to hoist it here.
			for k := ws; k < we; k++ {
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpGE,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.ShipLo}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLT,
					Dst: tmpB, Src1: regX(k), UseImm: true, Imm: q.ShipHi}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: tmpB}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldDiscount] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase D+E: discount range refined into the running mask,
			// quantity load hoisted behind it.
			for k := ws; k < we; k++ {
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpGE,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.DiscLo}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLE,
					Dst: tmpB, Src1: regX(k), UseImm: true, Imm: q.DiscHi}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: tmpA, Src1: tmpA, Src2: tmpB}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: regM(k)}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldQuantity] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase F: quantity compare, final AND, bitmask store.
			for k := ws; k < we; k++ {
				t0 := k * tuplesPerChunk
				want := packBits(w.prefix[2], t0, t0+tuplesPerChunk)
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLT,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.QtyHi}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: regM(k)}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VMaskStore, Src1: regM(k),
					Addr: w.FinalMask + mem.Addr(k)*mem.Addr(maskBytes), Size: p.OpSize,
					OnResult: func(r []byte) { w.check(r, want) }}))
			}
		}
		oc.emitUnlock(&ops, &pc, isa.TargetHIVE)
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Branch, Taken: block != blocks-1})
		block++
		return ops
	}}
}
