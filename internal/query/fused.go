package query

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/isa"
	"github.com/hipe-sim/hipe/internal/mem"
)

// hiveFusedColumn generates HIVE's best-case column scan (the paper's
// Figure 3d "full scan in columns"): one pass in which every chunk's
// three predicate columns are loaded unconditionally, compared, and
// AND-combined in the register bank, storing only the final bitmask. No
// intermediate bitmask ever reaches the processor and no branch depends
// on in-memory data — but, unlike HIPE, nothing is skipped either: all
// three columns are always read, which is where HIPE's DRAM energy
// saving comes from.
//
// The structure is deliberately identical to the HIPE plan with the
// predicates removed (same wave depth, same phases), so the measured
// HIPE-vs-HIVE gap isolates the cost of predication itself: the extra
// sequencer occupancy of every predicated instruction's flag read and
// the data dependencies on flag producers.
func (w *Workload) hiveFusedColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	q := p.Q
	blocks := (chunks + p.Unroll - 1) / p.Unroll

	const tmpA, tmpB = 30, 31
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	block := 0

	return &chunkedStream{next: func() []isa.MicroOp {
		if block >= blocks {
			return nil
		}
		var ops []isa.MicroOp
		pc := uint64(0x6800)
		first := block * p.Unroll
		last := first + p.Unroll
		if last > chunks {
			last = chunks
		}
		hive := func(inst isa.OffloadInst) *isa.OffloadInst {
			inst.Target = isa.TargetHIVE
			return &inst
		}

		oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.Lock}))
		for ws := first; ws < last; ws += hipeWave {
			we := ws + hipeWave
			if we > last {
				we = last
			}
			regX := func(k int) uint8 { return uint8(k - ws) }
			regM := func(k int) uint8 { return uint8(hipeWave + k - ws) }
			// Phase A: hoisted shipdate loads.
			for k := ws; k < we; k++ {
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldShipDate] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase B+C: shipdate range into the chunk's mask register,
			// then immediately reuse the data register for the discount
			// load — the unpredicated plan is free to hoist it here.
			for k := ws; k < we; k++ {
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpGE,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.ShipLo}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLT,
					Dst: tmpB, Src1: regX(k), UseImm: true, Imm: q.ShipHi}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: tmpB}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldDiscount] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase D+E: discount range refined into the running mask,
			// quantity load hoisted behind it.
			for k := ws; k < we; k++ {
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpGE,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.DiscLo}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLE,
					Dst: tmpB, Src1: regX(k), UseImm: true, Imm: q.DiscHi}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: tmpA, Src1: tmpA, Src2: tmpB}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: regM(k)}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VLoad, Dst: regX(k),
					Addr: w.DSM.ColBase[db.FieldQuantity] + mem.Addr(k*S), Size: p.OpSize}))
			}
			// Phase F: quantity compare, final AND, bitmask store.
			for k := ws; k < we; k++ {
				t0 := k * tuplesPerChunk
				want := packBits(w.prefix[2], t0, t0+tuplesPerChunk)
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpLT,
					Dst: tmpA, Src1: regX(k), UseImm: true, Imm: q.QtyHi}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: regM(k), Src1: tmpA, Src2: regM(k)}))
				oc.emit(&ops, &pc, hive(isa.OffloadInst{Op: isa.VMaskStore, Src1: regM(k),
					Addr: w.FinalMask + mem.Addr(k)*mem.Addr(maskBytes), Size: p.OpSize,
					OnResult: func(r []byte) { w.check(r, want) }}))
			}
		}
		oc.emitUnlock(&ops, &pc, isa.TargetHIVE)
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Branch, Taken: block != blocks-1})
		block++
		return ops
	}}
}

// Q01 register-bank allocation shared by the engine aggregation plans.
// Every (group, aggregate) pair keeps a live accumulator register, so
// the wave depth collapses to one chunk — the register-pressure cost of
// grouped aggregation, the same trade the paper discusses for
// predication (§III): more live state per chunk, less software
// pipelining.
const (
	q1RegFilter = 0 // filter mask (HIPE: compare result; HIVE: mask reload)
	q1RegRf     = 1 // returnflag chunk
	q1RegLs     = 2 // linestatus chunk
	q1RegQty    = 3 // quantity chunk
	q1RegPrice  = 4 // extendedprice chunk
	q1RegDisc   = 5 // discount chunk
	q1RegRev    = 6 // per-lane discounted revenue (price × discount)
	q1RegTmpA   = 7
	q1RegTmpB   = 8
	q1RegGroup  = 9  // current group-membership mask
	q1RegShip   = 10 // shipdate chunk (HIPE one-pass only)
	q1RegValid  = 11 // lane-validity mask (HIPE one-pass only)
	q1RegAcc    = 12 // accumulators: q1RegAcc + g*NumAggs + agg
)

// q1AccReg names the (group, aggregate) accumulator register.
func q1AccReg(g, agg int) uint8 { return uint8(q1RegAcc + g*NumAggs + agg) }

// q1EmitGroups emits the per-group masked accumulation for one chunk:
// the two key compares AND the filter mask into the membership mask,
// COUNT accumulates by lane-subtracting the all-ones mask, and the
// three sums AND their measure vector with the mask before adding. On
// HIPE every mask-building and masking instruction is predicated — on
// the filter flag first, then on the group mask's own zero flag, so a
// group absent from a chunk squashes its accumulation inside the
// memory. The running Adds/Subs stay unpredicated: a squash zeroes its
// temp operand (zeroing-mask semantics), never the accumulator.
func (w *Workload) q1EmitGroups(ops *[]isa.MicroOp, pc *uint64, oc *offloadChain, target isa.Target) {
	predicated := target == isa.TargetHIPE
	eng := func(inst isa.OffloadInst) *isa.OffloadInst {
		inst.Target = target
		return &inst
	}
	nzF := isa.Predicate{}
	if predicated {
		nzF = isa.Predicate{Valid: true, Reg: q1RegFilter, WhenZero: false}
	}
	for g := 0; g < w.Desc.Groups; g++ {
		rf, ls := groupKey(g)
		oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpEQ,
			Dst: q1RegTmpA, Src1: q1RegRf, UseImm: true, Imm: rf, Pred: nzF}))
		oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.CmpEQ,
			Dst: q1RegTmpB, Src1: q1RegLs, UseImm: true, Imm: ls, Pred: nzF}))
		oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
			Dst: q1RegTmpA, Src1: q1RegTmpA, Src2: q1RegTmpB, Pred: nzF}))
		oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
			Dst: q1RegGroup, Src1: q1RegTmpA, Src2: q1RegFilter, Pred: nzF}))
		nzG := isa.Predicate{}
		if predicated {
			nzG = isa.Predicate{Valid: true, Reg: q1RegGroup, WhenZero: false}
		}
		// COUNT: the mask lanes are -1 per member, so subtracting the
		// mask adds one per member.
		oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.Sub,
			Dst: q1AccReg(g, AggCount), Src1: q1AccReg(g, AggCount), Src2: q1RegGroup}))
		for _, ma := range [...]struct {
			agg int
			src uint8
		}{
			{AggQty, q1RegQty}, {AggPrice, q1RegPrice}, {AggRevenue, q1RegRev},
		} {
			oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
				Dst: q1RegTmpB, Src1: ma.src, Src2: q1RegGroup, Pred: nzG}))
			oc.emit(ops, pc, eng(isa.OffloadInst{Op: isa.VALU, ALU: isa.Add,
				Dst: q1AccReg(g, ma.agg), Src1: q1AccReg(g, ma.agg), Src2: q1RegTmpB}))
		}
	}
}

// q1Columns is the key/measure column load order of the engine plans.
var q1Columns = [...]struct {
	reg uint8
	col int
}{
	{q1RegRf, db.FieldReturnFlag},
	{q1RegLs, db.FieldLineStatus},
	{q1RegQty, db.FieldQuantity},
	{q1RegPrice, db.FieldExtendedPrice},
	{q1RegDisc, db.FieldDiscount},
}

// q1ClearAccs emits the accumulator initialisation: every (group,
// aggregate) register XORs with itself to zero. The filter pass (HIVE)
// reuses the high registers for chunk data, so the aggregation pass
// cannot assume a pristine bank.
func (w *Workload) q1ClearAccs(ops *[]isa.MicroOp, pc *uint64, oc *offloadChain, target isa.Target) {
	for g := 0; g < w.Desc.Groups; g++ {
		for agg := 0; agg < NumAggs; agg++ {
			r := q1AccReg(g, agg)
			oc.emit(ops, pc, &isa.OffloadInst{Target: target, Op: isa.VALU,
				ALU: isa.Xor, Dst: r, Src1: r, Src2: r})
		}
	}
}

// q1SpillAccs emits the final accumulator spill: every (group,
// aggregate) register stores its per-lane partial sums to the AccRegion
// so the processor — and verification — can read them.
func (w *Workload) q1SpillAccs(ops *[]isa.MicroOp, pc *uint64, oc *offloadChain, target isa.Target) {
	for g := 0; g < w.Desc.Groups; g++ {
		for agg := 0; agg < NumAggs; agg++ {
			oc.emit(ops, pc, &isa.OffloadInst{Target: target, Op: isa.VStore,
				Src1: q1AccReg(g, agg), Addr: w.accAddr(g, agg), Size: isa.RegisterBytes})
		}
	}
}

// q1hiveColumn generates HIVE's two-phase Q01 aggregation. Phase one is
// a filter pass: lock blocks compute each chunk's shipdate bitmask in
// the register bank and store it; the processor then fetches every
// bitmask back from DRAM and branches on whether the chunk holds any
// filtered tuple — the round trip HIPE eliminates. Phase two revisits
// the surviving chunks: the filter mask reloads into the bank, the key
// and measure columns load unconditionally, and every group's masked
// accumulation executes whether or not the group occurs in the chunk.
// A final block spills the 24 accumulator registers.
func (w *Workload) q1hiveColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	maskBytes := isa.MaskBytes(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	st := w.Desc.Stages[0]
	wave := p.Unroll
	if wave > hiveWave {
		wave = hiveWave
	}

	const tmpA, tmpB = 30, 31
	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	phase := 0
	pos := 0
	spilled := false
	var selected []int

	return &chunkedStream{next: func() []isa.MicroOp {
		var ops []isa.MicroOp
		if phase == 0 && pos >= chunks {
			// Filter pass complete: select the chunks with matches, and
			// zero the accumulator registers the filter pass clobbered.
			phase, pos = 1, 0
			for c := 0; c < chunks; c++ {
				if bitRange(w.prefix[0], c*tuplesPerChunk, (c+1)*tuplesPerChunk) {
					selected = append(selected, c)
				}
			}
			pc := uint64(0xB200)
			oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
			w.q1ClearAccs(&ops, &pc, oc, isa.TargetHIVE)
			oc.emitUnlock(&ops, &pc, isa.TargetHIVE)
			return ops
		}
		if phase == 1 && pos >= len(selected) {
			if spilled {
				return nil
			}
			// One final block spills the accumulators.
			spilled = true
			pc := uint64(0xB800)
			oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
			w.q1SpillAccs(&ops, &pc, oc, isa.TargetHIVE)
			oc.emitUnlock(&ops, &pc, isa.TargetHIVE)
			return ops
		}
		if phase == 0 {
			// Filter pass: software-pipelined lock blocks, one register
			// per chunk, bitmasks stored for the processor's decision.
			pc := uint64(0xB000)
			first := pos
			last := pos + wave
			if last > chunks {
				last = chunks
			}
			oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
			for c := first; c < last; c++ {
				rD := uint8(c - first)
				oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad,
					Dst: rD, Addr: w.DSM.ColBase[st.Col] + mem.Addr(c*S), Size: p.OpSize})
			}
			for c := first; c < last; c++ {
				rD := uint8(c - first)
				t0 := c * tuplesPerChunk
				want := packBits(w.prefix[0], t0, t0+tuplesPerChunk)
				dst := [2]uint8{tmpA, tmpB}
				for i, b := range st.Bounds {
					oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
						ALU: b.Kind, Dst: dst[i], Src1: rD, UseImm: true, Imm: b.Imm})
				}
				if len(st.Bounds) == 2 {
					oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
						ALU: isa.And, Dst: tmpA, Src1: tmpA, Src2: tmpB})
				}
				oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VMaskStore,
					Src1: tmpA, Addr: w.MaskBase[st.Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize,
					OnResult: func(r []byte) { w.check(r, want) }})
			}
			unlockAck := oc.emitUnlock(&ops, &pc, isa.TargetHIVE)
			// Processor decision round trip: fetch each bitmask, branch
			// on whether the aggregation pass needs this chunk.
			for c := first; c < last; c++ {
				lm := vr.fresh()
				ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Load, Dst: lm, Src1: unlockAck,
					Addr: w.MaskBase[st.Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: maskBytes})
				pc += 4
				tv := vr.fresh()
				ops = append(ops, isa.MicroOp{PC: pc, Class: isa.IntALU, Dst: tv, Src1: lm})
				pc += 4
				empty := !bitRange(w.prefix[0], c*tuplesPerChunk, (c+1)*tuplesPerChunk)
				ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Branch, Src1: tv, Taken: empty})
				pc += 4
			}
			ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Branch, Taken: last != chunks})
			pos = last
			return ops
		}
		// Aggregation pass: one lock block per group of surviving
		// chunks, each chunk folded sequentially into the live
		// accumulators.
		pc := uint64(0xB400)
		first := pos
		last := pos + p.Unroll
		if last > len(selected) {
			last = len(selected)
		}
		oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.Lock})
		for k := first; k < last; k++ {
			c := selected[k]
			oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VMaskLoad,
				Dst: q1RegFilter, Addr: w.MaskBase[st.Col] + mem.Addr(c)*mem.Addr(maskBytes), Size: p.OpSize})
			for _, ld := range q1Columns {
				oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VLoad,
					Dst: ld.reg, Addr: w.DSM.ColBase[ld.col] + mem.Addr(c*S), Size: p.OpSize})
			}
			oc.emit(&ops, &pc, &isa.OffloadInst{Target: isa.TargetHIVE, Op: isa.VALU,
				ALU: isa.Mul, Dst: q1RegRev, Src1: q1RegPrice, Src2: q1RegDisc})
			w.q1EmitGroups(&ops, &pc, oc, isa.TargetHIVE)
		}
		oc.emitUnlock(&ops, &pc, isa.TargetHIVE)
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Branch, Taken: last != len(selected)})
		pos = last
		return ops
	}}
}

// q1hipeColumn generates the HIPE predicated one-pass Q01 aggregation —
// the paper's predication argument applied to a grouped aggregate. Each
// chunk's shipdate filter computes into a mask register whose zero flag
// then gates, inside the memory, (a) the key and measure column loads —
// chunks wholly past the cutoff never touch DRAM — and (b) every
// group's masked accumulation, each predicated on its own membership
// mask's flag, so a group absent from a chunk costs squashed sequencer
// slots instead of functional-unit operations and flag waits. No
// bitmask ever travels to the processor and no branch depends on
// in-memory data.
func (w *Workload) q1hipeColumn() *chunkedStream {
	p := w.Plan
	S := int(p.OpSize)
	tuplesPerChunk := S / db.ColumnWidth
	chunks := w.Table.N / tuplesPerChunk
	st := w.Desc.Stages[0]
	blocks := (chunks + p.Unroll - 1) / p.Unroll

	vr := &vregs{}
	oc := &offloadChain{vr: vr}
	setupDone := false
	block := 0
	nz := func(reg uint8) isa.Predicate {
		return isa.Predicate{Valid: true, Reg: reg, WhenZero: false}
	}
	hipe := func(inst isa.OffloadInst) *isa.OffloadInst {
		inst.Target = isa.TargetHIPE
		return &inst
	}

	return &chunkedStream{next: func() []isa.MicroOp {
		var ops []isa.MicroOp
		pc := uint64(0xC000)
		if !setupDone {
			setupDone = true
			// One-time block: load the lane-validity row (sub-register
			// chunks would otherwise leak tail-lane mask bits into the
			// accumulators) and zero the accumulator registers.
			oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.Lock}))
			oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VLoad,
				Dst: q1RegValid, Addr: w.ValidRow, Size: 256}))
			w.q1ClearAccs(&ops, &pc, oc, isa.TargetHIPE)
			oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.Unlock}))
			return ops
		}
		if block >= blocks {
			return nil
		}
		pc = uint64(0xC100)
		first := block * p.Unroll
		last := first + p.Unroll
		if last > chunks {
			last = chunks
		}
		oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.Lock}))
		for c := first; c < last; c++ {
			// Filter stage: unpredicated shipdate load and compare,
			// confined to the chunk's real lanes.
			oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VLoad, Dst: q1RegShip,
				Addr: w.DSM.ColBase[st.Col] + mem.Addr(c*S), Size: p.OpSize}))
			dst := [2]uint8{q1RegTmpA, q1RegTmpB}
			for i, b := range st.Bounds {
				oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VALU, ALU: b.Kind,
					Dst: dst[i], Src1: q1RegShip, UseImm: true, Imm: b.Imm}))
			}
			if len(st.Bounds) == 2 {
				oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
					Dst: q1RegTmpA, Src1: q1RegTmpA, Src2: q1RegTmpB}))
			}
			oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.And,
				Dst: q1RegFilter, Src1: q1RegTmpA, Src2: q1RegValid}))
			// Key and measure loads, predicated on the filter flag:
			// chunks wholly past the cutoff never touch DRAM.
			for _, ld := range q1Columns {
				oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VLoad, Dst: ld.reg,
					Addr: w.DSM.ColBase[ld.col] + mem.Addr(c*S), Size: p.OpSize,
					Pred: nz(q1RegFilter)}))
			}
			oc.emit(&ops, &pc, hipe(isa.OffloadInst{Op: isa.VALU, ALU: isa.Mul,
				Dst: q1RegRev, Src1: q1RegPrice, Src2: q1RegDisc, Pred: nz(q1RegFilter)}))
			w.q1EmitGroups(&ops, &pc, oc, isa.TargetHIPE)
		}
		if block == blocks-1 {
			w.q1SpillAccs(&ops, &pc, oc, isa.TargetHIPE)
		}
		oc.emitUnlock(&ops, &pc, isa.TargetHIPE)
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.Branch, Taken: block != blocks-1})
		block++
		return ops
	}}
}
