// The backend registry: every execution architecture is one registered
// Backend — a compiler from a prepared Workload to a µop stream plus a
// static capability report. Plan validation, the CLIs' architecture
// lists and the adaptive planner (internal/cost, internal/serve) all
// consult the registry instead of hard-wiring the four architectures,
// so adding a backend is one Register call, not a sweep across the
// stack.
package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hipe-sim/hipe/internal/isa"
)

// Stream is a lazily-generated µop stream (the shape cpu.Stream
// consumes): Next returns the following µop until the program ends.
type Stream interface {
	Next() (isa.MicroOp, bool)
}

// Caps is a backend's static capability and constraint report: the
// envelope of plans it can compile, mirroring the paper's evaluated
// space. Plan.Validate enforces it; the planner uses it to trim
// candidate backends before costing them.
type Caps struct {
	// TupleAtATime / ColumnAtATime report the scan strategies the
	// backend compiles.
	TupleAtATime  bool
	ColumnAtATime bool
	// MaxOpSize is the largest memory operation width in bytes.
	MaxOpSize uint32
	// MaxUnroll is the deepest loop unrolling the backend's compiler
	// supports.
	MaxUnroll int
	// Fused marks support for the fused full-scan variant (one pass,
	// no intermediate bitmask round trips).
	Fused bool
	// Aggregate marks support for the in-memory Q06 revenue aggregation
	// extension.
	Aggregate bool
}

// Supports reports whether the backend compiles the given strategy.
func (c Caps) Supports(s Strategy) bool {
	if s == TupleAtATime {
		return c.TupleAtATime
	}
	return c.ColumnAtATime
}

// Backend is one registered execution architecture: a µop-stream
// compiler for prepared workloads plus its static capability report.
type Backend interface {
	// Arch is the architecture the backend implements.
	Arch() Arch
	// Name is the backend's registered name (the CLI spelling).
	Name() string
	// Caps reports the backend's capability envelope.
	Caps() Caps
	// Compile generates the µop stream for a prepared workload whose
	// (validated) plan names this backend.
	Compile(w *Workload) Stream
}

// registry maps architectures to their registered backends. Backends
// register at package init; the map is read-only afterwards, so
// concurrent readers need no locking.
var registry = map[Arch]Backend{}

// Register adds a backend to the registry. It panics on a duplicate
// architecture — backend identity is 1:1 with the Arch enum.
func Register(b Backend) {
	if _, dup := registry[b.Arch()]; dup {
		panic(fmt.Sprintf("query: backend %s registered twice", b.Name()))
	}
	registry[b.Arch()] = b
}

// BackendFor returns the backend registered for an architecture.
func BackendFor(a Arch) (Backend, bool) {
	b, ok := registry[a]
	return b, ok
}

// Backends returns the registered backends in architecture order — the
// deterministic iteration order planners and CLIs use.
func Backends() []Backend {
	out := make([]Backend, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Arch() < out[j].Arch() })
	return out
}

// BackendNames returns the registered backend names in architecture
// order — what CLI error messages list instead of a hard-coded string.
func BackendNames() []string {
	bs := Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	return names
}

// ArchAuto is the adaptive planner's sentinel architecture: a plan
// carrying it names no backend — the cost model resolves it to the
// predicted-fastest registered backend (given the workload's
// selectivity profile) before the plan compiles. Validate accepts an
// auto plan when at least one registered backend could serve as its
// resolution; compiling an unresolved auto plan panics.
const ArchAuto Arch = 0xFF

// ParseArch resolves a backend name (or "auto") to its architecture.
func ParseArch(name string) (Arch, bool) {
	if name == ArchAuto.String() {
		return ArchAuto, true
	}
	for _, b := range Backends() {
		if b.Name() == name {
			return b.Arch(), true
		}
	}
	return 0, false
}

// ArchChoices renders the valid -arch spellings for CLI usage errors:
// the registered backend names plus the planner's "auto".
func ArchChoices() string {
	return strings.Join(append(BackendNames(), ArchAuto.String()), ", ")
}

// Candidates returns the concrete plans an auto plan can resolve to:
// the plan with each registered backend's architecture substituted,
// trimmed to the backends whose envelope admits the plan's shape for an
// n-row table, in architecture order. A non-auto plan returns itself
// when valid. This is the sweep engine's resolution rule — the cell
// keeps its shape axes and the planner picks among backends that can
// run that shape; the serving layer instead routes among per-backend
// best shapes (see serve.DefaultPlan).
func (p Plan) Candidates(tuples int) []Plan {
	if p.Arch != ArchAuto {
		if p.ValidateFor(tuples) != nil {
			return nil
		}
		return []Plan{p}
	}
	var out []Plan
	for _, b := range Backends() {
		q := p
		q.Arch = b.Arch()
		if q.ValidateFor(tuples) == nil {
			out = append(out, q)
		}
	}
	return out
}

// Stream builds the µop stream for the workload's plan through its
// registered backend.
func (w *Workload) Stream() Stream {
	b, ok := BackendFor(w.Plan.Arch)
	if !ok {
		panic(fmt.Sprintf("query: plan %s names no registered backend (auto plans must be resolved before compiling)", w.Plan))
	}
	return b.Compile(w)
}

// The four architectures of the paper, registered behind the Backend
// interface. Each Compile dispatches on the workload's query kind and
// strategy to the generator that produces the architecture's µop
// stream.

func init() {
	Register(x86Backend{})
	Register(hmcBackend{})
	Register(hiveBackend{})
	Register(hipeBackend{})
}

type x86Backend struct{}

func (x86Backend) Arch() Arch   { return X86 }
func (x86Backend) Name() string { return X86.String() }
func (x86Backend) Caps() Caps {
	// AVX-512 caps vector ops at 64 B; the paper's compilers stop
	// unrolling at 8.
	return Caps{TupleAtATime: true, ColumnAtATime: true, MaxOpSize: 64, MaxUnroll: 8}
}
func (x86Backend) Compile(w *Workload) Stream {
	if w.Desc.Kind == Q1Agg {
		if w.Plan.Strategy == TupleAtATime {
			return w.q1x86Tuple()
		}
		return w.q1x86Column()
	}
	if w.Plan.Strategy == TupleAtATime {
		return w.x86Tuple()
	}
	return w.x86Column()
}

type hmcBackend struct{}

func (hmcBackend) Arch() Arch   { return HMC }
func (hmcBackend) Name() string { return HMC.String() }
func (hmcBackend) Caps() Caps {
	return Caps{TupleAtATime: true, ColumnAtATime: true, MaxOpSize: 256, MaxUnroll: 32}
}
func (hmcBackend) Compile(w *Workload) Stream {
	if w.Desc.Kind == Q1Agg {
		if w.Plan.Strategy == TupleAtATime {
			return w.q1hmcTuple()
		}
		return w.q1hmcColumn()
	}
	if w.Plan.Strategy == TupleAtATime {
		return w.hmcTuple()
	}
	return w.hmcColumn()
}

type hiveBackend struct{}

func (hiveBackend) Arch() Arch   { return HIVE }
func (hiveBackend) Name() string { return HIVE.String() }
func (hiveBackend) Caps() Caps {
	return Caps{TupleAtATime: true, ColumnAtATime: true, MaxOpSize: 256, MaxUnroll: 32, Fused: true}
}
func (hiveBackend) Compile(w *Workload) Stream {
	if w.Desc.Kind == Q1Agg {
		if w.Plan.Strategy == TupleAtATime {
			return w.q1pimTuple(isa.TargetHIVE)
		}
		return w.q1hiveColumn()
	}
	if w.Plan.Strategy == TupleAtATime {
		return w.pimTuple(isa.TargetHIVE)
	}
	if w.Plan.Fused {
		return w.hiveFusedColumn()
	}
	return w.hiveColumn()
}

type hipeBackend struct{}

func (hipeBackend) Arch() Arch   { return HIPE }
func (hipeBackend) Name() string { return HIPE.String() }
func (hipeBackend) Caps() Caps {
	// The predicated plan is defined for column-at-a-time scans; the
	// in-memory Q06 aggregation is its extension.
	return Caps{ColumnAtATime: true, MaxOpSize: 256, MaxUnroll: 32, Aggregate: true}
}
func (hipeBackend) Compile(w *Workload) Stream {
	if w.Desc.Kind == Q1Agg {
		return w.q1hipeColumn()
	}
	return w.hipeColumn()
}
