package query

import (
	"testing"
	"testing/quick"

	"github.com/hipe-sim/hipe/internal/db"
)

// Property: for any seed, op size and unroll depth, every architecture's
// simulated scan computes the reference answer — the strongest
// cross-module invariant of the reproduction (code generators, engines,
// lane semantics, mask layout and verification all have to agree).
func TestPlanSpaceAgreementProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("plan-space sweep")
	}
	opSizes := []uint32{16, 32, 64, 128, 256}
	f := func(seedRaw uint16, sizeIdx, unrollRaw uint8, fused, clustered bool) bool {
		seed := uint64(seedRaw) + 1
		size := opSizes[int(sizeIdx)%len(opSizes)]
		unroll := int(unrollRaw)%32 + 1
		var tab *db.Table
		if clustered {
			tab = db.GenerateClustered(512, seed, 20)
		} else {
			tab = db.Generate(512, seed)
		}
		plans := []Plan{
			{Arch: HMC, Strategy: ColumnAtATime, OpSize: size, Unroll: unroll, Q: db.DefaultQ06()},
			{Arch: HIVE, Strategy: ColumnAtATime, OpSize: size, Unroll: unroll, Fused: fused, Q: db.DefaultQ06()},
			{Arch: HIPE, Strategy: ColumnAtATime, OpSize: size, Unroll: unroll, Q: db.DefaultQ06()},
			{Arch: HMC, Strategy: TupleAtATime, OpSize: size, Unroll: unroll, Q: db.DefaultQ06()},
			{Arch: HIVE, Strategy: TupleAtATime, OpSize: size, Unroll: unroll, Q: db.DefaultQ06()},
		}
		for _, p := range plans {
			if err := p.Validate(); err != nil {
				return false
			}
			m := testMachine(t)
			w, err := Prepare(m, tab, p)
			if err != nil {
				t.Logf("%s: prepare: %v", p, err)
				return false
			}
			if m.Run(w.Stream()) == 0 {
				t.Logf("%s: zero cycles", p)
				return false
			}
			if err := w.Verify(); err != nil {
				t.Logf("%s: %v", p, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: the in-memory aggregation matches the reference revenue for
// arbitrary seeds and unrolls.
func TestAggregationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("plan-space sweep")
	}
	f := func(seedRaw uint16, unrollRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		unroll := int(unrollRaw)%32 + 1
		tab := db.Generate(512, seed)
		p := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256,
			Unroll: unroll, Aggregate: true, Q: db.DefaultQ06()}
		m := testMachine(t)
		w, err := Prepare(m, tab, p)
		if err != nil {
			return false
		}
		m.Run(w.Stream())
		return w.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two runs of the same plan on the same data take exactly
// the same number of cycles — the simulation is bit-reproducible.
func TestSimulationDeterminism(t *testing.T) {
	tab := db.Generate(1024, 99)
	p := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 16, Q: db.DefaultQ06()}
	var prev uint64
	for i := 0; i < 3; i++ {
		m := testMachine(t)
		w, err := Prepare(m, tab, p)
		if err != nil {
			t.Fatal(err)
		}
		c := uint64(m.Run(w.Stream()))
		if i > 0 && c != prev {
			t.Fatalf("run %d took %d cycles, previous %d", i, c, prev)
		}
		prev = c
	}
}
