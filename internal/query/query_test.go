package query

import (
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/machine"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.Default()
	cfg.ImageBytes = 8 << 20
	cfg.DRAM.RefreshInterval = 0 // deterministic small-run timings
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runPlan(t *testing.T, tab *db.Table, p Plan) (*Workload, uint64) {
	t.Helper()
	m := testMachine(t)
	w, err := Prepare(m, tab, p)
	if err != nil {
		t.Fatal(err)
	}
	cycles := uint64(m.Run(w.Stream()))
	if cycles == 0 {
		t.Fatalf("%s: zero cycles", p)
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	return w, cycles
}

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{Arch: X86, Strategy: TupleAtATime, OpSize: 64, Unroll: 8, Q: db.DefaultQ06()},
		{Arch: HMC, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()},
		{Arch: HIVE, Strategy: TupleAtATime, OpSize: 16, Unroll: 1, Q: db.DefaultQ06()},
		{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 128, Unroll: 4, Q: db.DefaultQ06()},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%s rejected: %v", p, err)
		}
	}
	bad := []Plan{
		{Arch: X86, Strategy: TupleAtATime, OpSize: 128, Unroll: 1}, // x86 >64B
		{Arch: X86, Strategy: TupleAtATime, OpSize: 64, Unroll: 16}, // x86 >8x
		{Arch: HMC, Strategy: TupleAtATime, OpSize: 48, Unroll: 1},  // bad size
		{Arch: HMC, Strategy: TupleAtATime, OpSize: 64, Unroll: 64}, // bad unroll
		{Arch: HIPE, Strategy: TupleAtATime, OpSize: 64, Unroll: 1}, // hipe tuple
		{Arch: Arch(9), Strategy: TupleAtATime, OpSize: 64, Unroll: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32}
	if p.String() != "hive/column-at-a-time/256B/32x" {
		t.Fatalf("plan string = %q", p.String())
	}
}

func TestPrepareRejects(t *testing.T) {
	m := testMachine(t)
	if _, err := Prepare(m, &db.Table{N: 0}, Plan{Arch: X86, Strategy: TupleAtATime, OpSize: 64, Unroll: 1, Q: db.DefaultQ06()}); err == nil {
		t.Fatal("empty table accepted")
	}
	if _, err := Prepare(m, db.Generate(100, 1), Plan{Arch: X86, Strategy: TupleAtATime, OpSize: 64, Unroll: 1, Q: db.DefaultQ06()}); err == nil {
		t.Fatal("non-multiple-of-64 table accepted")
	}
	if _, err := Prepare(m, db.Generate(128, 1), Plan{Arch: X86, Strategy: TupleAtATime, OpSize: 128, Unroll: 1, Q: db.DefaultQ06()}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

const testN = 1024

func TestX86TuplePlan(t *testing.T) {
	tab := db.Generate(testN, 3)
	for _, S := range []uint32{16, 64} {
		p := Plan{Arch: X86, Strategy: TupleAtATime, OpSize: S, Unroll: 4, Q: db.DefaultQ06()}
		runPlan(t, tab, p)
	}
}

func TestX86ColumnPlan(t *testing.T) {
	tab := db.Generate(testN, 3)
	p := Plan{Arch: X86, Strategy: ColumnAtATime, OpSize: 64, Unroll: 4, Q: db.DefaultQ06()}
	runPlan(t, tab, p)
}

func TestHMCTuplePlan(t *testing.T) {
	tab := db.Generate(testN, 4)
	for _, S := range []uint32{16, 256} {
		p := Plan{Arch: HMC, Strategy: TupleAtATime, OpSize: S, Unroll: 4, Q: db.DefaultQ06()}
		w, _ := runPlan(t, tab, p)
		if w.Checked() == 0 {
			t.Fatalf("%s: no runtime checks", p)
		}
	}
}

func TestHMCColumnPlan(t *testing.T) {
	tab := db.Generate(testN, 4)
	p := Plan{Arch: HMC, Strategy: ColumnAtATime, OpSize: 256, Unroll: 8, Q: db.DefaultQ06()}
	w, _ := runPlan(t, tab, p)
	if w.Checked() == 0 {
		t.Fatal("no runtime checks")
	}
}

func TestHIVETuplePlan(t *testing.T) {
	tab := db.Generate(testN, 5)
	for _, S := range []uint32{16, 256} {
		p := Plan{Arch: HIVE, Strategy: TupleAtATime, OpSize: S, Unroll: 2, Q: db.DefaultQ06()}
		w, _ := runPlan(t, tab, p)
		if w.Checked() == 0 {
			t.Fatalf("%s: no runtime checks", p)
		}
	}
}

func TestHIVEColumnPlan(t *testing.T) {
	tab := db.Generate(testN, 5)
	for _, U := range []int{1, 8} {
		p := Plan{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: U, Q: db.DefaultQ06()}
		w, _ := runPlan(t, tab, p)
		if w.Checked() == 0 {
			t.Fatalf("%s: no runtime checks", p)
		}
	}
}

func TestHIPEColumnPlan(t *testing.T) {
	tab := db.Generate(testN, 6)
	for _, U := range []int{1, 8, 32} {
		p := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: U, Q: db.DefaultQ06()}
		w, _ := runPlan(t, tab, p)
		if w.Checked() == 0 {
			t.Fatalf("%s: no runtime checks", p)
		}
	}
}

// HIPE on smaller op sizes squashes chunks whose shipdate window is
// empty; with uniform data and 16 B chunks (4 tuples) squashes are
// frequent, and the bitmask must still be exactly right.
func TestHIPESquashCorrectness(t *testing.T) {
	tab := db.Generate(testN, 7)
	p := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 16, Unroll: 8, Q: db.DefaultQ06()}
	w, _ := runPlan(t, tab, p)
	squashed := w.M.Registry.Scope("hipe").Get("squashed")
	if squashed == 0 {
		t.Fatal("16 B HIPE scan never squashed on uniform data")
	}
	saved := w.M.Registry.Scope("hipe").Get("squashed_dram_bytes")
	if saved == 0 {
		t.Fatal("no DRAM bytes saved by predication")
	}
}

// The faithfulness tripwire of the whole reproduction: all four
// architectures compute the same answer on the same data.
func TestAllArchitecturesAgree(t *testing.T) {
	tab := db.Generate(testN, 8)
	plans := []Plan{
		{Arch: X86, Strategy: ColumnAtATime, OpSize: 64, Unroll: 8, Q: db.DefaultQ06()},
		{Arch: HMC, Strategy: ColumnAtATime, OpSize: 256, Unroll: 16, Q: db.DefaultQ06()},
		{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 16, Q: db.DefaultQ06()},
		{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 16, Q: db.DefaultQ06()},
	}
	for _, p := range plans {
		w, cycles := runPlan(t, tab, p)
		t.Logf("%-32s %8d cycles, %d checks", p, cycles, w.Checked())
	}
}

// Unrolling must speed HIVE up dramatically (the Figure 3c effect).
func TestUnrollingSpeedsUpHIVE(t *testing.T) {
	tab := db.Generate(2048, 9)
	p1 := Plan{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 1, Q: db.DefaultQ06()}
	p32 := Plan{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}
	_, c1 := runPlan(t, tab, p1)
	_, c32 := runPlan(t, tab, p32)
	if c32*2 >= c1 {
		t.Fatalf("unroll 32 (%d cycles) not at least 2x faster than unroll 1 (%d)", c32, c1)
	}
}

// HIPE must beat HIVE when lock blocks are serialised (low unroll),
// because it needs one pass instead of three plus mask round trips.
func TestHIPEBeatsHIVEAtLowUnroll(t *testing.T) {
	tab := db.Generate(2048, 10)
	ph := Plan{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 1, Q: db.DefaultQ06()}
	pp := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 1, Q: db.DefaultQ06()}
	_, ch := runPlan(t, tab, ph)
	_, cp := runPlan(t, tab, pp)
	if cp >= ch {
		t.Fatalf("HIPE (%d) not faster than HIVE (%d) at unroll 1", cp, ch)
	}
}

// The in-memory aggregation extension: the whole of Query 06 — selection
// plus sum(l_extendedprice*l_discount) — executes inside the memory, and
// the accumulator must equal the reference revenue exactly.
func TestHIPEInMemoryAggregation(t *testing.T) {
	tab := db.Generate(2048, 11)
	for _, U := range []int{1, 32} {
		p := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: U,
			Aggregate: true, Q: db.DefaultQ06()}
		w, cycles := runPlan(t, tab, p)
		if w.Ref.Revenue == 0 {
			t.Fatal("degenerate workload: zero revenue")
		}
		t.Logf("aggregated plan %s: %d cycles, revenue %d", p, cycles, w.Ref.Revenue)
	}
	// Aggregation is HIPE-only.
	bad := Plan{Arch: HIVE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 1,
		Aggregate: true, Q: db.DefaultQ06()}
	if bad.Validate() == nil {
		t.Fatal("aggregate accepted on HIVE")
	}
}
