package query

// Verification of the Q01 grouped-aggregation workload family: every
// architecture × layout × operation-size point must produce per-group
// aggregates (engine accumulators for HIVE/HIPE, runtime mask checks
// for the baselines) that match the internal/db reference evaluator —
// Workload.Verify enforces it, these tests sweep the envelope.

import (
	"strings"
	"testing"

	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/machine"
)

func q1Plan(arch Arch, strat Strategy, opSize uint32, unroll int) Plan {
	return Plan{Arch: arch, Strategy: strat, OpSize: opSize, Unroll: unroll,
		Kind: Q1Agg, Q1: db.DefaultQ01()}
}

func TestQ1PlanValidation(t *testing.T) {
	good := []Plan{
		q1Plan(X86, TupleAtATime, 64, 8),
		q1Plan(X86, ColumnAtATime, 16, 1),
		q1Plan(HMC, TupleAtATime, 256, 32),
		q1Plan(HMC, ColumnAtATime, 128, 16),
		q1Plan(HIVE, TupleAtATime, 256, 32),
		q1Plan(HIVE, ColumnAtATime, 256, 32),
		q1Plan(HIPE, ColumnAtATime, 256, 32),
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%s rejected: %v", p, err)
		}
	}
	bad := []struct {
		name string
		plan Plan
		want string
	}{
		{"hipe tuple", q1Plan(HIPE, TupleAtATime, 256, 1), "column-at-a-time"},
		{"fused q1", func() Plan {
			p := q1Plan(HIVE, ColumnAtATime, 256, 32)
			p.Fused = true
			return p
		}(), "fused"},
		{"aggregate q1", func() Plan {
			p := q1Plan(HIPE, ColumnAtATime, 256, 32)
			p.Aggregate = true
			return p
		}(), "Q06 revenue extension"},
		{"unknown kind", Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32, Kind: QueryKind(9)}, "unknown query kind"},
	}
	for _, tc := range bad {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("%s: %+v accepted", tc.name, tc.plan)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestQ1PlanString(t *testing.T) {
	p := q1Plan(HIPE, ColumnAtATime, 256, 32)
	if got := p.String(); got != "hipe/column-at-a-time/256B/32x/q1" {
		t.Fatalf("plan string = %q", got)
	}
}

func TestQ1DescShape(t *testing.T) {
	d := q1Plan(HIPE, ColumnAtATime, 256, 32).Desc()
	if d.Kind != Q1Agg || !d.Grouped() || d.Groups != db.NumGroups {
		t.Fatalf("Q1 desc = %+v", d)
	}
	if len(d.Stages) != 1 || d.Stages[0].Col != db.FieldShipDate || len(d.Stages[0].Bounds) != 1 {
		t.Fatalf("Q1 stages = %+v", d.Stages)
	}
	d6 := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 32, Q: db.DefaultQ06()}.Desc()
	if d6.Kind != Q6Select || d6.Grouped() || len(d6.Stages) != 3 {
		t.Fatalf("Q6 desc = %+v", d6)
	}
}

// TestQ1AllArchitecturesVerify sweeps the architectures, both layouts
// and the operation sizes; Verify (called inside runPlan) compares the
// grouped aggregates against the reference evaluator.
func TestQ1AllArchitecturesVerify(t *testing.T) {
	tab := db.Generate(1024, 42)
	plans := []Plan{
		q1Plan(X86, TupleAtATime, 16, 1),
		q1Plan(X86, TupleAtATime, 64, 8),
		q1Plan(X86, ColumnAtATime, 64, 8),
		q1Plan(HMC, TupleAtATime, 64, 4),
		q1Plan(HMC, TupleAtATime, 256, 32),
		q1Plan(HMC, ColumnAtATime, 16, 2),
		q1Plan(HMC, ColumnAtATime, 256, 32),
		q1Plan(HIVE, TupleAtATime, 256, 8),
		q1Plan(HIVE, ColumnAtATime, 16, 2),
		q1Plan(HIVE, ColumnAtATime, 64, 8),
		q1Plan(HIVE, ColumnAtATime, 256, 32),
		q1Plan(HIPE, ColumnAtATime, 16, 2),
		q1Plan(HIPE, ColumnAtATime, 64, 8),
		q1Plan(HIPE, ColumnAtATime, 256, 32),
	}
	for _, p := range plans {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			w, cycles := runPlan(t, tab, p)
			if cycles == 0 {
				t.Fatal("zero cycles")
			}
			if got := w.GroupResults(); len(got) != db.NumGroups {
				t.Fatalf("GroupResults returned %d groups", len(got))
			}
			// The baselines must have cross-checked engine masks.
			if p.Arch == HMC || (p.Arch == HIVE && p.Strategy == TupleAtATime) {
				if w.Checked() == 0 {
					t.Fatal("no runtime checks ran")
				}
			}
		})
	}
}

// TestQ1NonDefaultPredicate moves the cutoff into the middle of the
// date range, changing every group's membership, and re-verifies.
func TestQ1NonDefaultPredicate(t *testing.T) {
	tab := db.Generate(1024, 7)
	q := db.Q01{ShipCut: db.Day19950617} // ~49% selectivity, no open lineitems
	for _, arch := range []Arch{X86, HMC, HIVE, HIPE} {
		p := q1Plan(arch, ColumnAtATime, 256, 8)
		if arch == X86 {
			p.OpSize, p.Unroll = 64, 8
		}
		p.Q1 = q
		runPlan(t, tab, p)
	}
}

// TestQ1ClusteredSquashesLoads pins the energy story: on a
// date-clustered table the chunks past the Q01 cutoff are contiguous,
// so HIPE's predicated key/measure loads squash and skip DRAM reads.
func TestQ1ClusteredSquashesLoads(t *testing.T) {
	// A mid-range cutoff on a date-ordered table leaves roughly half
	// the chunks wholly past the filter — each one squashes its five
	// predicated loads.
	tab := db.GenerateClustered(4096, 42, 0)
	m := testMachine(t)
	p := q1Plan(HIPE, ColumnAtATime, 256, 8)
	p.Q1 = db.Q01{ShipCut: db.Day19950617}
	w, err := Prepare(m, tab, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(w.Stream())
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	if saved := m.Registry.Scope("hipe").Get("squashed_dram_bytes"); saved == 0 {
		t.Fatal("clustered Q01 scan squashed no DRAM reads")
	}
}

func TestQ1OverflowGuard(t *testing.T) {
	// 16 B chunks of a large table exceed the 32-bit accumulator-lane
	// budget on the engine architectures; the envelope check must
	// refuse — both as a plain validation (so sweeps can trim the cell
	// up front) and at Prepare.
	const n = 256 * 1024
	if err := q1Plan(HIPE, ColumnAtATime, 16, 1).ValidateFor(n); err == nil {
		t.Fatal("ValidateFor accepted an overflow-prone cell")
	} else if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("unexpected error: %v", err)
	}
	tab := db.Generate(n, 1)
	m := testMachine(t)
	if _, err := Prepare(m, tab, q1Plan(HIPE, ColumnAtATime, 16, 1)); err == nil {
		t.Fatal("overflow-prone plan accepted")
	} else if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The baselines accumulate in 64-bit processor registers; the same
	// table is fine there.
	if _, err := Prepare(m, tab, q1Plan(HMC, ColumnAtATime, 16, 1)); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
}

func TestQ1RequiresZeroingSquash(t *testing.T) {
	// The accumulating HIPE plans feed unpredicated Adds from
	// predicated temporaries; on the paper-literal non-zeroing ablation
	// machine a squash would leak stale data into the accumulators, so
	// Prepare must refuse rather than fail deep in verification.
	cfg := machine.Default()
	cfg.ImageBytes = 8 << 20
	cfg.HIPE.ZeroingSquash = false
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Generate(1024, 42)
	if _, err := Prepare(m, tab, q1Plan(HIPE, ColumnAtATime, 256, 8)); err == nil {
		t.Fatal("Q01 HIPE plan accepted on a non-zeroing-squash machine")
	} else if !strings.Contains(err.Error(), "zeroing-squash") {
		t.Fatalf("unexpected error: %v", err)
	}
	q6agg := Plan{Arch: HIPE, Strategy: ColumnAtATime, OpSize: 256, Unroll: 8,
		Aggregate: true, Q: db.DefaultQ06()}
	if _, err := Prepare(m, tab, q6agg); err == nil {
		t.Fatal("Q06 Aggregate plan accepted on a non-zeroing-squash machine")
	}
	// Non-accumulating plans remain valid on that machine.
	if _, err := Prepare(m, tab, Plan{Arch: HIPE, Strategy: ColumnAtATime,
		OpSize: 256, Unroll: 8, Q: db.DefaultQ06()}); err != nil {
		t.Fatalf("plain scan rejected: %v", err)
	}
}
