package cache

import "github.com/hipe-sim/hipe/internal/mem"

// prefetcher observes the demand access stream and proposes line
// addresses to fetch ahead.
type prefetcher interface {
	observe(addr mem.Addr, miss bool) []mem.Addr
}

const pfTableSize = 16

// stridePrefetcher tracks per-4KiB-region strides and, once the same
// stride is seen twice, fetches degree strides ahead. This is the classic
// table-based stride prefetcher attached to the L1 in Table I.
type stridePrefetcher struct {
	lineBytes uint32
	degree    uint32
	entries   [pfTableSize]strideEntry
}

type strideEntry struct {
	valid      bool
	region     uint64
	lastAddr   mem.Addr
	stride     int64
	confidence uint8
}

func newStridePrefetcher(lineBytes, degree uint32) *stridePrefetcher {
	if degree == 0 {
		degree = 2
	}
	return &stridePrefetcher{lineBytes: lineBytes, degree: degree}
}

func (p *stridePrefetcher) observe(addr mem.Addr, miss bool) []mem.Addr {
	region := uint64(addr) >> 12
	slot := &p.entries[region%pfTableSize]
	if !slot.valid || slot.region != region {
		*slot = strideEntry{valid: true, region: region, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(slot.lastAddr)
	if stride == 0 {
		return nil
	}
	if stride == slot.stride {
		if slot.confidence < 3 {
			slot.confidence++
		}
	} else {
		slot.stride = stride
		slot.confidence = 1
	}
	slot.lastAddr = addr
	if slot.confidence < 2 {
		return nil
	}
	var out []mem.Addr
	for d := uint32(1); d <= p.degree; d++ {
		target := int64(addr) + stride*int64(d)
		if target < 0 {
			break
		}
		out = append(out, mem.Addr(target))
	}
	return out
}

// streamPrefetcher detects sequential miss streams (ascending line-by-line
// within a region) and runs degree lines ahead of the demand stream. This
// models the L2 stream prefetcher in Table I.
type streamPrefetcher struct {
	lineBytes uint32
	degree    uint32
	entries   [pfTableSize]streamEntry
}

type streamEntry struct {
	valid    bool
	region   uint64
	lastLine uint64
	trained  bool
}

func newStreamPrefetcher(lineBytes, degree uint32) *streamPrefetcher {
	if degree == 0 {
		degree = 4
	}
	return &streamPrefetcher{lineBytes: lineBytes, degree: degree}
}

func (p *streamPrefetcher) observe(addr mem.Addr, miss bool) []mem.Addr {
	if !miss {
		return nil
	}
	lineNo := uint64(addr) / uint64(p.lineBytes)
	region := uint64(addr) >> 12
	slot := &p.entries[region%pfTableSize]
	if !slot.valid || slot.region != region {
		*slot = streamEntry{valid: true, region: region, lastLine: lineNo}
		return nil
	}
	ascending := lineNo == slot.lastLine+1
	slot.lastLine = lineNo
	if !ascending {
		slot.trained = false
		return nil
	}
	slot.trained = true
	var out []mem.Addr
	for d := uint64(1); d <= uint64(p.degree); d++ {
		out = append(out, mem.Addr((lineNo+d)*uint64(p.lineBytes)))
	}
	return out
}
