package cache

import "github.com/hipe-sim/hipe/internal/mem"

// prefetcher observes the demand access stream and proposes line
// addresses to fetch ahead, appending them to buf (whose backing array
// the caller reuses across observations, keeping training
// allocation-free).
type prefetcher interface {
	observe(buf []mem.Addr, addr mem.Addr, miss bool) []mem.Addr
	// reset forgets all training state (machine reset).
	reset()
}

const pfTableSize = 16

// stridePrefetcher tracks per-4KiB-region strides and, once the same
// stride is seen twice, fetches degree strides ahead. This is the classic
// table-based stride prefetcher attached to the L1 in Table I.
type stridePrefetcher struct {
	lineBytes uint32
	degree    uint32
	entries   [pfTableSize]strideEntry
}

type strideEntry struct {
	valid      bool
	region     uint64
	lastAddr   mem.Addr
	stride     int64
	confidence uint8
}

func newStridePrefetcher(lineBytes, degree uint32) *stridePrefetcher {
	if degree == 0 {
		degree = 2
	}
	return &stridePrefetcher{lineBytes: lineBytes, degree: degree}
}

func (p *stridePrefetcher) observe(buf []mem.Addr, addr mem.Addr, miss bool) []mem.Addr {
	region := uint64(addr) >> 12
	slot := &p.entries[region%pfTableSize]
	if !slot.valid || slot.region != region {
		*slot = strideEntry{valid: true, region: region, lastAddr: addr}
		return buf
	}
	stride := int64(addr) - int64(slot.lastAddr)
	if stride == 0 {
		return buf
	}
	if stride == slot.stride {
		if slot.confidence < 3 {
			slot.confidence++
		}
	} else {
		slot.stride = stride
		slot.confidence = 1
	}
	slot.lastAddr = addr
	if slot.confidence < 2 {
		return buf
	}
	for d := uint32(1); d <= p.degree; d++ {
		target := int64(addr) + stride*int64(d)
		if target < 0 {
			break
		}
		buf = append(buf, mem.Addr(target))
	}
	return buf
}

// streamPrefetcher detects sequential miss streams (ascending line-by-line
// within a region) and runs degree lines ahead of the demand stream. This
// models the L2 stream prefetcher in Table I.
type streamPrefetcher struct {
	lineBytes uint32
	degree    uint32
	entries   [pfTableSize]streamEntry
}

type streamEntry struct {
	valid    bool
	region   uint64
	lastLine uint64
	trained  bool
}

func newStreamPrefetcher(lineBytes, degree uint32) *streamPrefetcher {
	if degree == 0 {
		degree = 4
	}
	return &streamPrefetcher{lineBytes: lineBytes, degree: degree}
}

func (p *streamPrefetcher) observe(buf []mem.Addr, addr mem.Addr, miss bool) []mem.Addr {
	if !miss {
		return buf
	}
	lineNo := uint64(addr) / uint64(p.lineBytes)
	region := uint64(addr) >> 12
	slot := &p.entries[region%pfTableSize]
	if !slot.valid || slot.region != region {
		*slot = streamEntry{valid: true, region: region, lastLine: lineNo}
		return buf
	}
	ascending := lineNo == slot.lastLine+1
	slot.lastLine = lineNo
	if !ascending {
		slot.trained = false
		return buf
	}
	slot.trained = true
	for d := uint64(1); d <= uint64(p.degree); d++ {
		buf = append(buf, mem.Addr((lineNo+d)*uint64(p.lineBytes)))
	}
	return buf
}

// reset implements prefetcher.
func (p *stridePrefetcher) reset() {
	p.entries = [pfTableSize]strideEntry{}
}

// reset implements prefetcher.
func (p *streamPrefetcher) reset() {
	p.entries = [pfTableSize]streamEntry{}
}
